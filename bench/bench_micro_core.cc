// M1: microbenchmarks for the core data structures — segment-tree math,
// serialization, hashing, DHT store. google-benchmark based.
#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/serde.h"
#include "dht/store.h"
#include "meta/layout.h"
#include "meta/node.h"

namespace blobseer {
namespace {

void BM_UpdateNodeSet(benchmark::State& state) {
  const uint64_t psize = 64 * 1024;
  const uint64_t pages = static_cast<uint64_t>(state.range(0));
  const uint64_t total = pages * psize;
  Rng rng(42);
  for (auto _ : state) {
    uint64_t off = rng.Uniform(pages) * psize;
    uint64_t len = std::min<uint64_t>(16, pages - off / psize) * psize;
    auto set = meta::UpdateNodeSet(Extent{off, len}, total, psize);
    benchmark::DoNotOptimize(set);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateNodeSet)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_UpdateBorderBlocks(benchmark::State& state) {
  const uint64_t psize = 64 * 1024;
  const uint64_t pages = static_cast<uint64_t>(state.range(0));
  const uint64_t total = pages * psize;
  Rng rng(42);
  for (auto _ : state) {
    uint64_t off = rng.Uniform(pages) * psize;
    uint64_t len = std::min<uint64_t>(16, pages - off / psize) * psize;
    auto borders = meta::UpdateBorderBlocks(Extent{off, len}, total, psize);
    benchmark::DoNotOptimize(borders);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateBorderBlocks)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_MetaNodeCodec(benchmark::State& state) {
  meta::MetaNode leaf = meta::MetaNode::Leaf(
      {meta::PageFragment{PageId{1, 2}, {7}, 0, 65536, 0}}, 12, 3);
  for (auto _ : state) {
    BinaryWriter w;
    leaf.EncodeTo(&w);
    meta::MetaNode decoded;
    BinaryReader r{Slice(w.buffer())};
    benchmark::DoNotOptimize(decoded.DecodeFrom(&r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetaNodeCodec);

void BM_Fnv1a64(benchmark::State& state) {
  std::string key(static_cast<size_t>(state.range(0)), 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(Slice(key)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(33)->Arg(256);

void BM_KvStorePutGet(benchmark::State& state) {
  dht::KvStore store(16);
  Rng rng(7);
  std::string value(128, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    meta::NodeKey key{1, i++, Extent{rng.Next() % 1024, 64}};
    std::string k = key.ToDhtKey();
    benchmark::DoNotOptimize(store.Put(Slice(k), Slice(value)));
    std::string out;
    benchmark::DoNotOptimize(store.Get(Slice(k), &out));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_KvStorePutGet)->Threads(1)->Threads(8);

}  // namespace
}  // namespace blobseer

BENCHMARK_MAIN();
