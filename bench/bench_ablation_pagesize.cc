// A2 — ablation: page size sweep. Figure 2(a) only contrasts 64 KB and
// 256 KB; this bench sweeps psize across two orders of magnitude on the
// simulated cluster to expose the trade-off the paper's choice sits on:
// small pages inflate per-page overhead (more leaves, more provider
// round trips), huge pages reduce parallelism and inflate unaligned-write
// amplification.
#include <cinttypes>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sim_cluster.h"

using namespace blobseer;

namespace {

struct Point {
  double append_mbps = 0;
  double read_mbps = 0;
  uint64_t meta_keys = 0;
};

Point RunPsize(uint64_t psize, uint64_t total_bytes) {
  simnet::SimScheduler sched;
  Point p;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 32;
    opts.num_client_nodes = 1;
    core::SimCluster cluster(&sched, opts);
    sched.SetCurrentNode(cluster.client_node(0));
    client::ClientOptions copts;
    copts.data_fanout = 16;
    auto client = cluster.NewClient(copts);
    auto id = client->Create(psize);
    if (!id.ok()) return;

    const uint64_t piece = 4 << 20;
    std::string chunk(piece, 'p');
    double t0 = sched.Now();
    Version last = 0;
    for (uint64_t sent = 0; sent < total_bytes; sent += piece) {
      auto v = client->Append(*id, Slice(chunk));
      if (!v.ok()) return;
      last = *v;
    }
    p.append_mbps = static_cast<double>(total_bytes) / (sched.Now() - t0);
    if (!client->Sync(*id, last).ok()) return;

    t0 = sched.Now();
    std::string out;
    if (!client->Read(*id, last, 0, total_bytes, &out).ok()) return;
    p.read_mbps = static_cast<double>(total_bytes) / (sched.Now() - t0);
    uint64_t bytes = 0;
    (void)client->dht().TotalStats(&p.meta_keys, &bytes);
  });
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  uint64_t total =
      bench::FlagU64(argc, argv, "total_mb", quick ? 8 : 32) * 1024 * 1024;

  printf("== Ablation A2: page size sweep (simulated cluster, 32 provider "
         "nodes) ==\n\n");
  bench::Table table({"psize", "append MB/s", "read MB/s", "meta nodes"});
  for (uint64_t kb : {16, 64, 256, 1024}) {
    Point p = RunPsize(kb * 1024, total);
    table.AddRow({StrFormat("%" PRIu64 " KB", kb),
                  StrFormat("%.1f", p.append_mbps),
                  StrFormat("%.1f", p.read_mbps), std::to_string(p.meta_keys)});
  }
  table.Print();
  printf("\nshape check: throughput should rise with page size (fewer "
         "per-page round trips)\nwhile metadata node count falls roughly "
         "linearly in 1/psize.\n");
  return 0;
}
