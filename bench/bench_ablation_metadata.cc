// A1 — ablation: distributed segment-tree metadata (BlobSeer) vs a
// centralized metadata server (the design of the systems the paper
// contrasts itself with in sections 1 and 6: Lustre/PVFS/GFS-style).
//
// Both systems run on the same simulated cluster (117.5 MB/s NICs, 0.1 ms
// latency) with the identical data path (pages stored on data providers).
// They differ only in metadata:
//   * BlobSeer: ~1 + log2(N) immutable tree nodes written to a DHT spread
//     over all nodes, fully in parallel across writers;
//   * centralized: one RPC to a single metadata node that copies the
//     predecessor's full page table (N refs) under a global lock; the copy
//     cost is charged in virtual time at 20 ns per page ref.
//
// Reported: aggregate page-aligned-update throughput for W concurrent
// writers at several blob sizes, plus metadata stored. Expected shape: the
// centralized server is competitive (even ahead) on small blobs — fewer
// round trips — but its per-update O(N) work collapses as the blob grows
// and it cannot use more writers; BlobSeer's cost stays O(log N) and
// scales with writers.
#include <cinttypes>

#include "baseline/central_meta.h"
#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/sim_cluster.h"

using namespace blobseer;

namespace {

constexpr uint64_t kPsize = 16384;

// Aggregate updates/s for each writer count in `writer_counts`, doing
// page-aligned single-page overwrites on an N-page blob through the full
// BlobSeer stack. One cluster and one pre-population serve all phases.
std::vector<double> RunBlobSeer(const std::vector<size_t>& writer_counts,
                                size_t updates_each, uint64_t blob_pages) {
  simnet::SimScheduler sched;
  std::vector<double> rates;
  sched.Run([&] {
    size_t max_writers = writer_counts.back();
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 16;
    opts.num_client_nodes = max_writers;
    opts.provider_cpu_us = 100;  // 16 KB pages: cheap requests
    core::SimCluster cluster(&sched, opts);
    sched.SetCurrentNode(cluster.client_node(0));
    client::ClientOptions copts;
    copts.data_fanout = 16;
    auto owner = cluster.NewClient(copts);
    auto id = owner->Create(kPsize);
    if (!id.ok()) return;
    // Pre-populate in 4 MB slabs.
    std::string slab(4 << 20, 'b');
    uint64_t remaining = blob_pages * kPsize;
    Version last = 0;
    while (remaining > 0) {
      uint64_t n = std::min<uint64_t>(slab.size(), remaining);
      auto v = owner->Append(*id, Slice(slab.data(), n));
      if (!v.ok()) return;
      last = *v;
      remaining -= n;
    }
    if (!owner->Sync(*id, last).ok()) return;

    for (size_t writers : writer_counts) {
      double t0 = sched.Now();
      std::vector<simnet::SimScheduler::TaskId> tasks;
      for (size_t w = 0; w < writers; w++) {
        tasks.push_back(sched.Spawn([&, w] {
          sched.SetCurrentNode(cluster.client_node(w));
          auto client = cluster.NewClient(copts);
          Rng rng(w + 1);
          std::string data(kPsize, static_cast<char>('A' + w % 26));
          for (size_t i = 0; i < updates_each; i++) {
            uint64_t page = rng.Uniform(blob_pages);
            auto v = client->Write(*id, Slice(data), page * kPsize);
            if (!v.ok()) {
              fprintf(stderr, "bs write: %s\n", v.status().ToString().c_str());
              return;
            }
          }
        }));
      }
      for (auto t : tasks) sched.Join(t);
      rates.push_back(static_cast<double>(writers * updates_each) /
                      ((sched.Now() - t0) / 1e6));
    }
  });
  return rates;
}

// Same workload against the centralized metadata server (data path
// identical: one page stored on a provider, then one metadata RPC).
std::vector<double> RunCentral(const std::vector<size_t>& writer_counts,
                               size_t updates_each, uint64_t blob_pages) {
  simnet::SimScheduler sched;
  std::vector<double> rates;
  sched.Run([&] {
    size_t max_writers = writer_counts.back();
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 16;
    opts.num_client_nodes = max_writers + 1;  // last hosts the meta server
    opts.provider_cpu_us = 100;
    core::SimCluster cluster(&sched, opts);
    sched.SetCurrentNode(cluster.client_node(max_writers));

    auto central = std::make_shared<baseline::CentralMetaService>();
    central->set_update_cost_hook([&sched](uint64_t refs) {
      // 50 us base + 20 ns per copied page ref, in virtual time.
      sched.SleepFor(50.0 + 0.02 * static_cast<double>(refs));
    });
    std::string central_addr = simnet::SimTransport::MakeAddress(
        cluster.client_node(max_writers), "centralmeta");
    cluster.transport().SetServiceProfile(central_addr, {0.0, 1});
    if (!cluster.transport().Serve(central_addr, central).ok()) return;

    baseline::CentralMetaClient meta(&cluster.transport(), central_addr);
    auto id = meta.Create(kPsize);
    if (!id.ok()) return;
    {
      std::vector<baseline::PageRef> init(blob_pages);
      for (uint64_t p = 0; p < blob_pages; p++) {
        init[p] = baseline::PageRef{PageId{1, p}, ProviderId(p % 16)};
      }
      if (!meta.Update(*id, 0, init, blob_pages * kPsize).ok()) return;
    }
    for (size_t phase = 0; phase < writer_counts.size(); phase++) {
      size_t writers = writer_counts[phase];
      double t0 = sched.Now();
      std::vector<simnet::SimScheduler::TaskId> tasks;
      for (size_t w = 0; w < writers; w++) {
        tasks.push_back(sched.Spawn([&, w, phase] {
          sched.SetCurrentNode(cluster.client_node(w));
          provider::ProviderClient pages(&cluster.transport());
          baseline::CentralMetaClient m(&cluster.transport(), central_addr);
          Rng rng(w + 1);
          std::string data(kPsize, static_cast<char>('A' + w % 26));
          for (size_t i = 0; i < updates_each; i++) {
            uint64_t page = rng.Uniform(blob_pages);
            PageId pid{(phase + 1) * 1000 + w + 100, i + 1};
            std::string prov_addr = simnet::SimTransport::MakeAddress(
                cluster.provider_node(page % 16), "provider");
            if (!pages.WritePage(prov_addr, pid, Slice(data)).ok()) return;
            if (!m.Update(*id, page, {{pid, ProviderId(page % 16)}},
                          blob_pages * kPsize)
                     .ok())
              return;
          }
        }));
      }
      for (auto t : tasks) sched.Join(t);
      rates.push_back(static_cast<double>(writers * updates_each) /
                      ((sched.Now() - t0) / 1e6));
    }
  });
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  size_t updates = bench::FlagU64(argc, argv, "updates_each", quick ? 4 : 30);

  printf("== Ablation A1: distributed segment-tree vs centralized metadata ==\n");
  printf("   (simulated cluster, 16 data providers, 16 KB pages, "
         "page-aligned random overwrites)\n\n");

  const std::vector<size_t> writer_counts = {1, 4, 16};
  const std::vector<uint64_t> blob_sizes =
      quick ? std::vector<uint64_t>{1024}
            : std::vector<uint64_t>{1024, 8192, 32768};
  for (uint64_t blob_pages : blob_sizes) {
    printf("-- blob size: %" PRIu64 " pages (%s) --\n\n", blob_pages,
           HumanBytes(blob_pages * kPsize).c_str());
    bench::Table table({"writers", "blobseer upd/s", "central upd/s",
                        "central refs copied/upd", "blobseer meta keys/upd"});
    uint64_t bs_keys = 1;
    for (uint64_t p = 1; p < blob_pages; p *= 2) bs_keys++;
    std::vector<double> bs = RunBlobSeer(writer_counts, updates, blob_pages);
    std::vector<double> ct = RunCentral(writer_counts, updates, blob_pages);
    for (size_t i = 0; i < writer_counts.size(); i++) {
      table.AddRow({std::to_string(writer_counts[i]),
                    StrFormat("%.0f", i < bs.size() ? bs[i] : 0.0),
                    StrFormat("%.0f", i < ct.size() ? ct[i] : 0.0),
                    std::to_string(blob_pages),
                    StrFormat("~%" PRIu64, bs_keys)});
    }
    table.Print();
    printf("\n");
  }
  printf("shape check: the centralized server is fine on small blobs but "
         "its O(N)-per-update\ncopy flattens throughput as the blob grows; "
         "BlobSeer stays O(log N) per update and\nscales with the number "
         "of concurrent writers.\n");
  return 0;
}
