// A4 — ablation: concurrent writers and appenders scaling (paper section
// 4.3, "support for heavy access concurrency"): data and metadata writes
// proceed in parallel; only version assignment and publication serialize at
// the version manager. Aggregate throughput should scale with writers until
// provider/DHT contention, not the versioning protocol, saturates.
//
// Also sweeps the provider-allocation strategies (the paper notes the
// provider manager's distribution strategy is central to avoiding
// serialization on providers).
#include <cinttypes>
#include <thread>

#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "core/cluster.h"

using namespace blobseer;

namespace {

constexpr uint64_t kPsize = 64 * 1024;
constexpr uint64_t kAppendBytes = 4 * kPsize;

double RunWriters(size_t writers, size_t appends_each,
                  const std::string& allocation, bool distinct_blobs) {
  core::ClusterOptions opts;
  opts.num_providers = 8;
  opts.num_meta = 8;
  opts.allocation = allocation;
  auto cluster = core::EmbeddedCluster::Start(opts);
  if (!cluster.ok()) return 0;
  auto owner = (*cluster)->NewClient();
  if (!owner.ok()) return 0;

  std::vector<BlobId> ids;
  size_t nblobs = distinct_blobs ? writers : 1;
  for (size_t b = 0; b < nblobs; b++) {
    auto id = (*owner)->Create(kPsize);
    if (!id.ok()) return 0;
    ids.push_back(*id);
  }

  Stopwatch sw;
  std::vector<std::thread> threads;
  for (size_t w = 0; w < writers; w++) {
    threads.emplace_back([&, w] {
      auto client = (*cluster)->NewClient();
      if (!client.ok()) return;
      std::string data(kAppendBytes, static_cast<char>('a' + w % 26));
      BlobId id = ids[distinct_blobs ? w : 0];
      for (size_t i = 0; i < appends_each; i++) {
        if (!(*client)->Append(id, Slice(data)).ok()) return;
      }
    });
  }
  for (auto& t : threads) t.join();
  double secs = sw.ElapsedSeconds();
  return static_cast<double>(writers * appends_each * kAppendBytes) / secs /
         1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  size_t appends = bench::FlagU64(argc, argv, "appends_each", quick ? 8 : 50);

  printf("== Ablation A4: concurrent update scaling ==\n");
  printf("   (8 providers + 8 metadata nodes, %zu x 256 KB appends per "
         "writer)\n\n",
         appends);

  {
    bench::Table table({"writers", "same blob MB/s", "distinct blobs MB/s"});
    std::vector<size_t> writer_counts =
        quick ? std::vector<size_t>{1, 2, 4}
              : std::vector<size_t>{1, 2, 4, 8, 16};
    for (size_t w : writer_counts) {
      double shared = RunWriters(w, appends, "round_robin", false);
      double distinct = RunWriters(w, appends, "round_robin", true);
      table.AddRow({std::to_string(w), StrFormat("%.0f", shared),
                    StrFormat("%.0f", distinct)});
    }
    table.Print();
  }

  printf("\n-- allocation strategy sweep (8 writers, one blob) --\n\n");
  {
    bench::Table table({"strategy", "aggregate MB/s"});
    for (const char* strat :
         {"round_robin", "random", "least_loaded", "power_of_two"}) {
      table.AddRow({strat, StrFormat("%.0f", RunWriters(8, appends, strat,
                                                        false))});
    }
    table.Print();
  }
  printf("\nshape check: same-blob scaling should track distinct-blob "
         "scaling closely\n(version assignment is the only shared step); "
         "allocation strategies should be within\na small factor of each "
         "other on this uniform workload.\n");
  return 0;
}
