// Async-client pipelining bench: one client, TCP loopback cluster.
//
// Compares 64 blocking appends fanned over the default 16-thread executor
// (each append parks a worker thread for its full RPC latency) against 64
// async appends issued from a single thread (the continuation chains
// pipeline every RPC; nothing blocks). The async side must sustain the
// whole window in flight at once, so its throughput bounds how far the
// client is from "one thread per operation".
//
// Exits non-zero if the async pipeline fails to beat the blocking fan-out —
// this is the acceptance gate for the futures-based client API.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "client/blob_client.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/future.h"
#include "core/cluster.h"

namespace {

using namespace blobseer;          // NOLINT
using namespace blobseer::bench;   // NOLINT
using client::BlobClient;

struct RunResult {
  double seconds = 0;
  uint64_t ops = 0;
  uint64_t bytes = 0;
  double ops_per_sec() const { return ops / seconds; }
  double mb_per_sec() const { return bytes / seconds / (1 << 20); }
};

// `ops` blocking appends through a `threads`-wide executor, `window` at a
// time: the classic thread-per-operation client.
RunResult RunSync(BlobClient* client, BlobId id, const std::string& payload,
                  uint64_t ops, size_t threads, size_t window) {
  ThreadPoolExecutor pool(threads);
  Stopwatch timer;
  Status st = pool.ParallelFor(ops, window, [&](size_t) {
    auto v = client->Append(id, payload);
    return v.ok() ? Status::OK() : v.status();
  });
  RunResult r;
  r.seconds = timer.ElapsedSeconds();
  r.ops = ops;
  r.bytes = ops * payload.size();
  if (!st.ok()) {
    fprintf(stderr, "sync appends failed: %s\n", st.ToString().c_str());
    exit(1);
  }
  return r;
}

// `ops` async appends from ONE thread, `window` in flight at a time.
RunResult RunAsync(BlobClient* client, BlobId id, const std::string& payload,
                   uint64_t ops, size_t window) {
  Stopwatch timer;
  uint64_t issued = 0;
  Status first;
  while (issued < ops) {
    size_t wave = std::min<uint64_t>(window, ops - issued);
    std::vector<Future<Version>> in_flight;
    in_flight.reserve(wave);
    for (size_t i = 0; i < wave; i++)
      in_flight.push_back(client->AppendAsync(id, payload));
    issued += wave;
    auto all = WhenAll(std::move(in_flight)).Wait();
    if (!all.ok() && first.ok()) first = all.status();
    if (all.ok() && first.ok()) first = FirstError(*all);
  }
  RunResult r;
  r.seconds = timer.ElapsedSeconds();
  r.ops = ops;
  r.bytes = ops * payload.size();
  if (!first.ok()) {
    fprintf(stderr, "async appends failed: %s\n", first.ToString().c_str());
    exit(1);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  const uint64_t ops = FlagU64(argc, argv, "ops", quick ? 64 : 512);
  const uint64_t psize = FlagU64(argc, argv, "psize", 16 * 1024);
  const uint64_t pages_per_op = FlagU64(argc, argv, "pages", 4);
  const size_t window = FlagU64(argc, argv, "window", 64);
  const size_t threads = FlagU64(argc, argv, "threads", 16);

  core::ClusterOptions copts;
  copts.num_providers = 4;
  copts.num_meta = 4;
  copts.transport = "tcp";
  auto cluster = core::EmbeddedCluster::Start(copts);
  if (!cluster.ok()) {
    fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  auto client = (*cluster)->NewClient();
  if (!client.ok()) return 1;

  std::string payload(psize * pages_per_op, 'a');
  printf("async-client bench: %llu appends x %llu KiB over TCP loopback, "
         "window %zu\n  sync: %zu-thread executor, blocking Append\n"
         "  async: single issuing thread, AppendAsync pipeline\n\n",
         static_cast<unsigned long long>(ops),
         static_cast<unsigned long long>(payload.size() / 1024), window,
         threads);

  // Warm up: descriptor/directory caches and TCP connections.
  auto warm = (*client)->Create(psize);
  if (!warm.ok()) return 1;
  if (!(*client)->Append(*warm, payload).ok()) return 1;

  auto sync_blob = (*client)->Create(psize);
  if (!sync_blob.ok()) return 1;
  RunResult sync_r =
      RunSync(client->get(), *sync_blob, payload, ops, threads, window);

  auto async_blob = (*client)->Create(psize);
  if (!async_blob.ok()) return 1;
  RunResult async_r =
      RunAsync(client->get(), *async_blob, payload, ops, window);

  Table table({"mode", "ops/s", "MB/s", "seconds"});
  auto row = [&](const char* name, const RunResult& r) {
    char a[32], b[32], c[32];
    snprintf(a, sizeof(a), "%.0f", r.ops_per_sec());
    snprintf(b, sizeof(b), "%.1f", r.mb_per_sec());
    snprintf(c, sizeof(c), "%.3f", r.seconds);
    table.AddRow({name, a, b, c});
  };
  row("sync-16thr", sync_r);
  row("async-1thr", async_r);
  table.Print();

  double speedup = async_r.ops_per_sec() / sync_r.ops_per_sec();
  // At smoke scale (64 ops) loopback TCP saturates the server CPU and the
  // async/sync gap narrows to ~1.1x (see ROADMAP PR-3 findings); under a
  // loaded machine the two separately-timed passes jitter past each other,
  // so the quick gate keeps headroom. The full run stays strict.
  const double floor = quick ? 0.7 : 1.0;
  printf("\nasync/sync speedup = %.2fx (gate: async with %zu in flight must "
         "stay above %.1fx of blocking fan-out)\n",
         speedup, window, floor);
  if (speedup <= floor) {
    fprintf(stderr,
            "FAIL: async pipeline (%.0f ops/s) fell below %.1fx of %zu "
            "blocking appends on the %zu-thread executor (%.0f ops/s)\n",
            async_r.ops_per_sec(), floor, window, threads,
            sync_r.ops_per_sec());
    return 1;
  }
  printf("[ok]\n");
  return 0;
}
