// Async-client pipelining bench, two passes:
//
//   loopback — one client on a TCP loopback cluster. 64 blocking appends
//     fanned over the default 16-thread executor (each append parks a
//     worker thread for its full RPC latency) against 64 async appends
//     issued from a single thread (the continuation chains pipeline every
//     RPC; nothing blocks). Loopback RTT is ~0, so at smoke scale the gap
//     narrows to CPU scheduling and the gate keeps headroom.
//
//   simnet — the same comparison under a scripted 2 ms one-way latency in
//     virtual time: 16 simulated blocking workers against a single async
//     issuer with 64 in flight. Here the RPC latency is real (simulated)
//     and deterministic, so the async-pipelining win is visible and gated
//     strictly: the pipeline must beat thread-per-op by >= 1.3x.
//
// Results are also written as JSON (--json=PATH, default
// BENCH_async_client.json) and the process exits non-zero when a gate
// fails — this is the acceptance gate for the futures-based client API.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "client/blob_client.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/future.h"
#include "core/cluster.h"
#include "core/sim_cluster.h"

namespace {

using namespace blobseer;          // NOLINT
using namespace blobseer::bench;   // NOLINT
using client::BlobClient;

struct RunResult {
  double seconds = 0;
  uint64_t ops = 0;
  uint64_t bytes = 0;
  double ops_per_sec() const { return seconds > 0 ? ops / seconds : 0; }
  double mb_per_sec() const {
    return seconds > 0 ? bytes / seconds / (1 << 20) : 0;
  }
};

// `ops` blocking appends through `pool`, `window` at a time: the classic
// thread-per-operation client. Works on real threads (ThreadPoolExecutor)
// and on sim tasks (SimExecutor) — the clock decides what "seconds" means.
RunResult RunSync(BlobClient* client, Clock* clock, Executor* pool, BlobId id,
                  const std::string& payload, uint64_t ops, size_t window) {
  const uint64_t t0 = clock->NowMicros();
  Status st = pool->ParallelFor(ops, window, [&](size_t) {
    auto v = client->Append(id, payload);
    return v.ok() ? Status::OK() : v.status();
  });
  RunResult r;
  r.seconds = double(clock->NowMicros() - t0) / 1e6;
  r.ops = ops;
  r.bytes = ops * payload.size();
  if (!st.ok()) {
    fprintf(stderr, "sync appends failed: %s\n", st.ToString().c_str());
    exit(1);
  }
  return r;
}

// `ops` async appends from ONE thread (or sim task), `window` in flight at
// a time.
RunResult RunAsync(BlobClient* client, Clock* clock, BlobId id,
                   const std::string& payload, uint64_t ops, size_t window) {
  const uint64_t t0 = clock->NowMicros();
  uint64_t issued = 0;
  Status first;
  while (issued < ops) {
    size_t wave = std::min<uint64_t>(window, ops - issued);
    std::vector<Future<Version>> in_flight;
    in_flight.reserve(wave);
    for (size_t i = 0; i < wave; i++)
      in_flight.push_back(client->AppendAsync(id, payload));
    issued += wave;
    auto all = WhenAll(std::move(in_flight)).Wait(client->executor());
    if (!all.ok() && first.ok()) first = all.status();
    if (all.ok() && first.ok()) first = FirstError(*all);
  }
  RunResult r;
  r.seconds = double(clock->NowMicros() - t0) / 1e6;
  r.ops = ops;
  r.bytes = ops * payload.size();
  if (!first.ok()) {
    fprintf(stderr, "async appends failed: %s\n", first.ToString().c_str());
    exit(1);
  }
  return r;
}

JsonObject ResultJson(const RunResult& r) {
  JsonObject o;
  o.PutU64("ops", r.ops);
  o.PutDouble("seconds", r.seconds);
  o.PutDouble("ops_per_sec", r.ops_per_sec());
  o.PutDouble("mb_per_sec", r.mb_per_sec());
  return o;
}

void PrintPass(const char* name, const RunResult& sync_r,
               const RunResult& async_r) {
  Table table({"mode", "ops/s", "MB/s", "seconds"});
  auto row = [&](const char* mode, const RunResult& r) {
    char a[32], b[32], c[32];
    snprintf(a, sizeof(a), "%.0f", r.ops_per_sec());
    snprintf(b, sizeof(b), "%.1f", r.mb_per_sec());
    snprintf(c, sizeof(c), "%.3f", r.seconds);
    table.AddRow({mode, a, b, c});
  };
  printf("\n-- %s --\n", name);
  row("sync-fanout", sync_r);
  row("async-1thr", async_r);
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = QuickMode(argc, argv);
  const uint64_t ops = FlagU64(argc, argv, "ops", quick ? 64 : 512);
  const uint64_t psize = FlagU64(argc, argv, "psize", 16 * 1024);
  const uint64_t pages_per_op = FlagU64(argc, argv, "pages", 4);
  const size_t window = FlagU64(argc, argv, "window", 64);
  const size_t threads = FlagU64(argc, argv, "threads", 16);
  const double sim_latency_us =
      FlagDouble(argc, argv, "sim-latency-us", 2000.0);
  const std::string json_path =
      FlagValue(argc, argv, "json", "BENCH_async_client.json");

  printf("async-client bench: %llu appends x %llu KiB, window %zu\n"
         "  sync: %zu-way blocking fan-out   async: single issuer, "
         "AppendAsync pipeline\n",
         static_cast<unsigned long long>(ops),
         static_cast<unsigned long long>(psize * pages_per_op / 1024), window,
         threads);

  // ---- Pass 1: TCP loopback, real time. -------------------------------
  core::ClusterOptions copts;
  copts.num_providers = 4;
  copts.num_meta = 4;
  copts.transport = "tcp";
  auto cluster = core::EmbeddedCluster::Start(copts);
  if (!cluster.ok()) {
    fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  auto client = (*cluster)->NewClient();
  if (!client.ok()) return 1;

  std::string payload(psize * pages_per_op, 'a');
  // Warm up: descriptor/directory caches and TCP connections.
  auto warm = (*client)->Create(psize);
  if (!warm.ok()) return 1;
  if (!(*client)->Append(*warm, payload).ok()) return 1;

  RunResult sync_r, async_r;
  {
    auto sync_blob = (*client)->Create(psize);
    if (!sync_blob.ok()) return 1;
    ThreadPoolExecutor pool(threads);
    sync_r = RunSync(client->get(), RealClock::Default(), &pool, *sync_blob,
                     payload, ops, window);
    auto async_blob = (*client)->Create(psize);
    if (!async_blob.ok()) return 1;
    async_r = RunAsync(client->get(), RealClock::Default(), *async_blob,
                       payload, ops, window);
  }
  PrintPass("TCP loopback (real time)", sync_r, async_r);

  double loop_speedup = async_r.ops_per_sec() / sync_r.ops_per_sec();
  // At smoke scale (64 ops) loopback TCP saturates the server CPU and the
  // async/sync gap narrows to ~1.1x (see ROADMAP PR-3 findings); under a
  // loaded machine the two separately-timed passes jitter past each other,
  // so the quick gate keeps headroom. The full run stays strict.
  const double loop_floor = quick ? 0.7 : 1.0;

  // ---- Pass 2: simnet, scripted RTT, virtual time. --------------------
  // With a real (simulated) network latency each blocking append parks its
  // worker for the full chain of RPC round trips, while the async issuer
  // keeps `window` chains in flight — the pipelining win the loopback pass
  // cannot show. Virtual time makes the ratio deterministic.
  const uint64_t sim_ops = quick ? 64 : 256;
  RunResult sim_sync, sim_async;
  bool sim_setup_ok = false;
  {
    simnet::SimScheduler sched;
    sched.Run([&] {
      core::SimClusterOptions so;
      so.num_provider_nodes = 8;
      so.num_client_nodes = 1;
      so.page_store = "memory";
      so.net.latency_us = sim_latency_us;
      so.provider_cpu_us = 100.0;
      so.provider_concurrency = 4;
      core::SimCluster sim(&sched, so);
      auto sim_client = sim.NewClient();

      uint32_t caller = sched.CurrentNode();
      sched.SetCurrentNode(sim.client_node(0));
      auto task = sched.Spawn([&] {
        auto sync_blob = sim_client->Create(psize);
        if (!sync_blob.ok()) return;
        // Warm the directory cache so both passes start equal.
        if (!sim_client->Append(*sync_blob, payload).ok()) return;
        sim_sync = RunSync(sim_client.get(), &sim.clock(), &sim.executor(),
                           *sync_blob, payload, sim_ops, threads);
        auto async_blob = sim_client->Create(psize);
        if (!async_blob.ok()) return;
        sim_async = RunAsync(sim_client.get(), &sim.clock(), *async_blob,
                             payload, sim_ops, window);
        sim_setup_ok = true;
      });
      sched.SetCurrentNode(caller);
      sched.Join(task);
    });
  }
  if (!sim_setup_ok) {
    fprintf(stderr, "simnet pass setup failed\n");
    return 1;
  }
  PrintPass("simnet, 2ms one-way RTT (virtual time)", sim_sync, sim_async);

  double sim_speedup = sim_async.ops_per_sec() / sim_sync.ops_per_sec();
  const double sim_floor = 1.3;

  printf("\nasync/sync speedup: loopback %.2fx (gate > %.1fx), simnet %.2fx "
         "(gate > %.1fx)\n",
         loop_speedup, loop_floor, sim_speedup, sim_floor);

  bool loop_pass = loop_speedup > loop_floor;
  bool sim_pass = sim_speedup > sim_floor;

  JsonObject doc;
  doc.PutString("bench", "async_client");
  doc.PutBool("quick", quick);
  JsonObject config;
  config.PutU64("ops", ops);
  config.PutU64("psize", psize);
  config.PutU64("pages_per_op", pages_per_op);
  config.PutU64("window", window);
  config.PutU64("threads", threads);
  doc.PutObject("config", config);
  JsonObject loop;
  loop.PutObject("sync", ResultJson(sync_r));
  loop.PutObject("async", ResultJson(async_r));
  loop.PutDouble("speedup", loop_speedup);
  loop.PutDouble("gate_min_speedup", loop_floor);
  loop.PutBool("gate_pass", loop_pass);
  doc.PutObject("loopback", loop);
  JsonObject sim_obj;
  sim_obj.PutDouble("latency_us", sim_latency_us);
  sim_obj.PutU64("ops", sim_ops);
  sim_obj.PutObject("sync", ResultJson(sim_sync));
  sim_obj.PutObject("async", ResultJson(sim_async));
  sim_obj.PutDouble("speedup", sim_speedup);
  sim_obj.PutDouble("gate_min_speedup", sim_floor);
  sim_obj.PutBool("gate_pass", sim_pass);
  doc.PutObject("simnet", sim_obj);
  if (!WriteJsonFile(json_path, doc)) return 1;

  if (!loop_pass) {
    fprintf(stderr,
            "FAIL: loopback async pipeline (%.0f ops/s) fell below %.1fx of "
            "the blocking fan-out (%.0f ops/s)\n",
            async_r.ops_per_sec(), loop_floor, sync_r.ops_per_sec());
  }
  if (!sim_pass) {
    fprintf(stderr,
            "FAIL: simnet async pipeline (%.0f ops/s) fell below %.1fx of "
            "the blocking fan-out (%.0f ops/s) at %.0fus one-way latency\n",
            sim_async.ops_per_sec(), sim_floor, sim_sync.ops_per_sec(),
            sim_latency_us);
  }
  if (loop_pass && sim_pass) printf("[ok]\n");
  return loop_pass && sim_pass ? 0 : 1;
}
