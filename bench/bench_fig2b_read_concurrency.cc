// E2 — Figure 2(b): "Read throughput under concurrency".
//
// Paper setup (section 5): 175 nodes; version manager and provider manager
// on two dedicated nodes; a data provider and a metadata provider
// co-deployed on the remaining 173; a blob is appended until it is large;
// then 1 / 100 / 175 concurrent readers — *co-deployed on the provider
// nodes* — each read a distinct 64 MB chunk (psize = 64 KB) and the average
// per-reader bandwidth is reported.
//
// Expected shape (paper): 60 MB/s for one reader, degrading only mildly to
// 49 MB/s at 175 concurrent readers ("very good scalability").
//
// The blob and chunk sizes scale down with --chunk_mb to keep simulation
// time reasonable; the shape is insensitive to the scale because both the
// per-reader ceiling (client pipeline) and the aggregate ceiling (provider
// service capacity) scale with it.
#include <cinttypes>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sim_cluster.h"

using namespace blobseer;

namespace {

struct Outcome {
  double avg_mbps = 0;
  double min_mbps = 0;
  double max_mbps = 0;
};

Outcome RunReaders(size_t provider_nodes, size_t readers, uint64_t psize,
                   uint64_t chunk_bytes, double provider_cpu_us,
                   size_t read_fanout) {
  simnet::SimScheduler sched;
  Outcome out;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = provider_nodes;
    opts.num_client_nodes = 1;  // the writer that pre-populates the blob
    opts.provider_cpu_us = provider_cpu_us;
    core::SimCluster cluster(&sched, opts);
    sched.SetCurrentNode(cluster.client_node(0));

    client::ClientOptions wopts;
    wopts.data_fanout = 16;
    auto writer = cluster.NewClient(wopts);
    auto id = writer->Create(psize);
    if (!id.ok()) return;

    // Pre-populate: `readers` distinct chunks (append in 8 MB pieces to
    // bound per-op buffer sizes).
    uint64_t total = chunk_bytes * readers;
    std::string piece(std::min<uint64_t>(total, 8 << 20), 'd');
    uint64_t appended = 0;
    Version last = 0;
    while (appended < total) {
      uint64_t n = std::min<uint64_t>(piece.size(), total - appended);
      auto v = writer->Append(*id, Slice(piece.data(), n));
      if (!v.ok()) {
        fprintf(stderr, "prepopulate failed: %s\n",
                v.status().ToString().c_str());
        return;
      }
      last = *v;
      appended += n;
    }
    if (!writer->Sync(*id, last).ok()) return;

    // Readers co-deployed on provider nodes (paper: "deployed on nodes
    // that already run a data and metadata provider").
    std::vector<double> mbps(readers, 0.0);
    std::vector<simnet::SimScheduler::TaskId> tasks;
    for (size_t r = 0; r < readers; r++) {
      tasks.push_back(sched.Spawn([&, r] {
        sched.SetCurrentNode(
            cluster.provider_node(r % cluster.num_provider_nodes()));
        client::ClientOptions ropts;
        ropts.data_fanout = read_fanout;
        ropts.meta_fanout = 16;
        auto reader = cluster.NewClient(ropts);
        double t0 = sched.Now();
        std::string buf;
        Status s = reader->Read(*id, last, r * chunk_bytes, chunk_bytes, &buf);
        if (!s.ok()) {
          fprintf(stderr, "read %zu failed: %s\n", r, s.ToString().c_str());
          return;
        }
        mbps[r] = static_cast<double>(chunk_bytes) / (sched.Now() - t0);
      }));
    }
    for (auto t : tasks) sched.Join(t);

    out.min_mbps = 1e18;
    for (double m : mbps) {
      out.avg_mbps += m;
      out.min_mbps = std::min(out.min_mbps, m);
      out.max_mbps = std::max(out.max_mbps, m);
    }
    out.avg_mbps /= static_cast<double>(readers);
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  uint64_t psize = bench::FlagU64(argc, argv, "psize_kb", 64) * 1024;
  uint64_t chunk =
      bench::FlagU64(argc, argv, "chunk_mb", quick ? 2 : 8) * 1024 * 1024;
  size_t provider_nodes =
      bench::FlagU64(argc, argv, "providers", quick ? 16 : 173);
  double provider_cpu = bench::FlagDouble(argc, argv, "provider_cpu_us", 1300);
  size_t read_fanout = bench::FlagU64(argc, argv, "read_fanout", 4);

  printf("== Figure 2(b): read throughput under concurrency ==\n");
  printf("   (%zu co-deployed data+meta provider nodes; readers co-deployed "
         "on provider nodes;\n    each reader reads a distinct %" PRIu64
         " MB chunk, psize %" PRIu64 " KB)\n\n",
         provider_nodes, chunk >> 20, psize >> 10);

  bench::Table table({"concurrent readers", "avg MB/s per reader",
                      "min MB/s", "max MB/s", "aggregate MB/s"});
  std::vector<size_t> reader_counts =
      quick ? std::vector<size_t>{1, 8, 16} : std::vector<size_t>{1, 100, 175};
  std::vector<double> avgs;
  for (size_t n : reader_counts) {
    Outcome o = RunReaders(provider_nodes, n, psize, chunk, provider_cpu,
                           read_fanout);
    avgs.push_back(o.avg_mbps);
    table.AddRow({std::to_string(n), StrFormat("%.1f", o.avg_mbps),
                  StrFormat("%.1f", o.min_mbps), StrFormat("%.1f", o.max_mbps),
                  StrFormat("%.1f", o.avg_mbps * n)});
  }
  table.Print();

  const size_t max_readers = reader_counts.back();
  printf("\nshape checks (paper: 60 MB/s at 1 reader -> 49 MB/s at 175):\n");
  printf("  degradation 1 -> %zu readers: %.1f%% (paper: ~18%%)\n",
         max_readers, 100.0 * (avgs.front() - avgs.back()) / avgs.front());
  printf("  aggregate bandwidth scales from %.0f MB/s to %.0f MB/s\n",
         avgs.front(), avgs.back() * static_cast<double>(max_readers));
  return 0;
}
