// A5 — ablation: page-store backend sweep (memory vs. file-per-page vs.
// log-structured) over the fig-2a append workload.
//
// The paper's providers served immutable pages from RAM (the memory
// engine); a production deployment needs durability. This bench quantifies
// what each durable backend costs:
//   * file:  one file per page, fsync + atomic rename per Put — a metadata
//            flush and an inode for every page (the layout Sears & van
//            Ingen show degrading at scale).
//   * log:   append-only segments with leader-based group commit — many
//            concurrent Puts share one fdatasync per flush window.
//   * log-nosync: the same store with the durability window open (syncs
//            only on segment seal), an upper bound for the log layout.
//
// Three sweeps: raw store-level Put throughput with concurrent writers
// (where group commit shows up), a raw-I/O backend x iodepth sweep of the
// log store (psync pwrite/fdatasync vs. batched io_uring submissions, the
// fig-2a append shape driven at increasing queue depth, plus paired
// psync/uring-direct gate rows), then the full BlobSeer stack appending a
// blob through an embedded cluster with each backend configured, the same
// workload shape as bench_fig2a_append measured in wall-clock time.
//
// `--probe-io-uring` prints whether this kernel supports io_uring and
// exits (0 = available, 3 = not) — CI uses it to decide whether to run the
// test suites with BLOBSEER_IO_BACKEND=uring.
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "core/cluster.h"
#include "pagelog/io_backend.h"
#include "pagelog/log_page_store.h"
#include "provider/page_store.h"

using namespace blobseer;

namespace {

struct StoreResult {
  double mbps = 0;
  double puts_per_sec = 0;
  provider::PageStoreStats stats;
};

/// `backend` is "memory", "file", or "log[-nosync][:IO]" where IO selects
/// the raw-I/O backend ("psync", "uring", "uring-direct"). Bare "log" rows
/// pin psync explicitly so the baseline is stable regardless of the
/// BLOBSEER_IO_BACKEND environment.
std::unique_ptr<provider::PageStore> MakeBackend(const std::string& backend,
                                                 const std::string& dir) {
  if (backend == "memory") return provider::MakeMemoryPageStore();
  if (backend == "file") return provider::MakeFilePageStore(dir);
  std::string log = backend;
  pagelog::LogPageStoreOptions opts;
  opts.io_backend = "psync";
  size_t colon = log.find(':');
  if (colon != std::string::npos) {
    opts.io_backend = log.substr(colon + 1);
    log = log.substr(0, colon);
  }
  if (log == "log-nosync") opts.sync = false;
  return pagelog::MakeLogPageStore(dir, opts);
}

/// W concurrent writers each Put `pages_per_writer` pages of `psize` bytes.
StoreResult RunStoreSweep(const std::string& backend, const std::string& dir,
                          size_t writers, uint64_t pages_per_writer,
                          uint64_t psize) {
  std::filesystem::remove_all(dir);
  auto store = MakeBackend(backend, dir);
  std::string payload(psize, 'p');

  Stopwatch timer;
  std::vector<std::thread> threads;
  for (size_t w = 0; w < writers; w++) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < pages_per_writer; i++) {
        PageId id{w + 1, i};
        Status s = store->Put(id, Slice(payload));
        if (!s.ok()) {
          fprintf(stderr, "put failed (%s): %s\n", backend.c_str(),
                  s.ToString().c_str());
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double secs = timer.ElapsedSeconds();

  StoreResult r;
  uint64_t total_pages = writers * pages_per_writer;
  r.mbps = static_cast<double>(total_pages * psize) / (1 << 20) / secs;
  r.puts_per_sec = static_cast<double>(total_pages) / secs;
  r.stats = store->GetStats();
  store.reset();
  std::filesystem::remove_all(dir);
  return r;
}

/// Full-stack fig-2a shape: one client appends `total` bytes in
/// `append_bytes` chunks into a fresh blob on a cluster whose providers run
/// `page_store` (with `io_backend` selecting the raw-I/O path of "log:"
/// stores); returns wall-clock append MB/s.
double RunClusterAppend(const std::string& page_store, uint64_t psize,
                        uint64_t total, uint64_t append_bytes,
                        const std::string& io_backend = "psync") {
  core::ClusterOptions opts;
  opts.num_providers = 4;
  opts.num_meta = 4;
  opts.page_store = page_store;
  opts.io_backend = io_backend;
  auto cluster = core::EmbeddedCluster::Start(opts);
  if (!cluster.ok()) return -1;
  auto client = (*cluster)->NewClient();
  if (!client.ok()) return -1;
  auto id = (*client)->Create(psize);
  if (!id.ok()) return -1;

  std::string chunk(append_bytes, 'a');
  Stopwatch timer;
  for (uint64_t appended = 0; appended < total; appended += append_bytes) {
    auto v = (*client)->Append(*id, Slice(chunk));
    if (!v.ok()) {
      fprintf(stderr, "append failed: %s\n", v.status().ToString().c_str());
      return -1;
    }
  }
  return static_cast<double>(total) / (1 << 20) / timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--probe-io-uring") {
      bool avail = pagelog::IoUringSupported();
      printf("io_uring: %s\n", avail ? "available" : "unavailable");
      return avail ? 0 : 3;
    }
  }
  const bool quick = bench::QuickMode(argc, argv);
  const uint64_t psize = bench::FlagU64(argc, argv, "psize_kb", 64) * 1024;
  const size_t writers = bench::FlagU64(argc, argv, "writers", 4);
  const uint64_t pages_per_writer =
      bench::FlagU64(argc, argv, "pages_per_writer", quick ? 48 : 256);
  const uint64_t total_mb =
      bench::FlagU64(argc, argv, "total_mb", quick ? 4 : 32);
  const uint64_t append_kb = bench::FlagU64(argc, argv, "append_kb", 1024);

  std::string root =
      (std::filesystem::temp_directory_path() /
       StrFormat("bs_ablation_store_%d", static_cast<int>(::getpid())))
          .string();

  printf("== Ablation A5: page-store backend sweep ==\n");
  printf("   (%zu writers x %" PRIu64 " pages of %" PRIu64
         " KB; store dir %s)\n\n",
         writers, pages_per_writer, psize >> 10, root.c_str());

  const std::vector<std::string> backends = {"memory", "file", "log",
                                             "log-nosync"};
  bench::Table store_table({"backend", "put MB/s", "puts/s", "syncs",
                            "segments", "dead bytes"});
  bench::JsonObject store_json;
  double file_mbps = 0, log_mbps = 0;
  for (const auto& b : backends) {
    StoreResult r =
        RunStoreSweep(b, root + "/" + b, writers, pages_per_writer, psize);
    if (b == "file") file_mbps = r.mbps;
    if (b == "log") log_mbps = r.mbps;
    store_table.AddRow({b, StrFormat("%.1f", r.mbps),
                        StrFormat("%.0f", r.puts_per_sec),
                        std::to_string(r.stats.syncs),
                        std::to_string(r.stats.segments),
                        std::to_string(r.stats.dead_bytes)});
    bench::JsonObject row;
    row.PutDouble("put_mbps", r.mbps);
    row.PutDouble("puts_per_sec", r.puts_per_sec);
    row.PutU64("syncs", r.stats.syncs);
    row.PutU64("segments", r.stats.segments);
    row.PutU64("dead_bytes", r.stats.dead_bytes);
    store_json.PutObject(b, row);
  }
  store_table.Print();
  // Quick/smoke runs keep headroom: at smoke scale (few hundred puts) a
  // single slow fsync on a loaded or overlay filesystem swings the ratio
  // by tens of percent (0.6-1.4x observed on container overlayfs); the
  // floor still catches the log store collapsing — a per-put-fsync
  // regression reads as ~0.2x.
  const double speedup_floor = quick ? 0.5 : 1.0;
  const bool log_wins = log_mbps >= speedup_floor * file_mbps;
  printf("\nshape check: log (group-commit fdatasync) should beat file "
         "(fsync+rename per page):\n  log/file speedup = %.1fx "
         "(floor %.1fx) %s\n",
         file_mbps > 0 ? log_mbps / file_mbps : 0.0, speedup_floor,
         log_wins ? "[ok]" : "[REGRESSION]");

  // -------------------------------------------------------------------------
  // Raw-I/O backend x iodepth sweep: the fig-2a append shape driven at
  // increasing queue depth through the log store's psync and uring
  // backends. Each row appears twice: sync=true (every Put group-commit
  // durable — both backends are fdatasync-bound at the device, so the
  // ratio mostly shows submission batching shaving the per-record pwrites)
  // and sync=false (the paper's RAM-provider throughput mode with the
  // durability window open — here uring's staged appends replace two
  // pwrite syscalls per record with a memcpy). Records default to 512
  // bytes: small records are where the per-record syscall tax dominates
  // and the batching seam has something to batch; at page-cache-bandwidth
  // record sizes every backend converges on the device writeback rate.
  // -------------------------------------------------------------------------
  const uint64_t io_psize = bench::FlagU64(argc, argv, "io_psize", 512);
  const uint64_t io_pages =
      bench::FlagU64(argc, argv, "io_pages_per_writer", quick ? 64 : 2048);
  const bool uring_avail = pagelog::IoUringSupported();
  std::vector<size_t> iodepths =
      quick ? std::vector<size_t>{1, 8} : std::vector<size_t>{1, 4, 8, 16, 32};

  printf("\n== Raw-I/O backend sweep (fig-2a append at increasing iodepth, "
         "%" PRIu64 " B records, %" PRIu64 " pages/writer) ==\n",
         io_psize, io_pages);
  if (!uring_avail)
    printf("   (io_uring unavailable on this kernel: psync rows only)\n");
  printf("\n");

  std::vector<std::string> io_backends = {"psync"};
  if (uring_avail) {
    io_backends.push_back("uring");
    io_backends.push_back("uring-direct");
  }
  bench::Table io_table({"backend", "iodepth", "sync", "put MB/s", "puts/s",
                         "submissions", "sqes"});
  bench::JsonObject io_json;
  for (size_t depth : iodepths) {
    for (bool sync : {true, false}) {
      double psync_mbps = 0;
      for (const auto& io : io_backends) {
        std::string spec = (sync ? "log:" : "log-nosync:") + io;
        StoreResult r = RunStoreSweep(spec, root + "/iosweep", depth,
                                      io_pages, io_psize);
        if (io == "psync") psync_mbps = r.mbps;
        io_table.AddRow({io, std::to_string(depth), sync ? "y" : "n",
                         StrFormat("%.1f", r.mbps),
                         StrFormat("%.0f", r.puts_per_sec),
                         std::to_string(r.stats.io_submissions),
                         std::to_string(r.stats.io_sqes)});
        bench::JsonObject row;
        row.PutString("io_backend", io);
        row.PutU64("iodepth", depth);
        row.PutBool("sync", sync);
        row.PutDouble("put_mbps", r.mbps);
        row.PutDouble("puts_per_sec", r.puts_per_sec);
        row.PutU64("io_submissions", r.stats.io_submissions);
        row.PutU64("io_sqes", r.stats.io_sqes);
        row.PutU64("bytes_written", r.stats.bytes_written);
        row.PutU64("syncs", r.stats.syncs);
        if (io != "psync" && psync_mbps > 0)
          row.PutDouble("vs_psync", r.mbps / psync_mbps);
        io_json.PutObject(StrFormat("%s-d%zu-%s", io.c_str(), depth,
                                    sync ? "sync" : "nosync"),
                          row);
      }
    }
  }
  io_table.Print();

  // Gate: uring-direct must beat psync by >= 1.2x on open-window appends
  // once the driver keeps >= 8 appends in flight. Device throughput on a
  // shared VM swings by 2-3x over seconds (writeback backlog, noisy
  // neighbours), so a ratio of rows measured minutes apart is noise: each
  // comparison here runs the two backends back to back on the same
  // workload — sync() between them drains the psync row's dirty pages so
  // the O_DIRECT row is not competing with its predecessor's writeback —
  // and each depth takes the median of three such pairs. Quick/smoke runs
  // skip the gate (a 64-page run is noise-dominated), and kernels without
  // io_uring skip it too (fallback correctness is covered by the tests).
  const double io_gate_floor = 1.2;
  const uint64_t io_gate_puts =
      bench::FlagU64(argc, argv, "io_gate_puts", 256 * 1024);
  const bool io_gated = !quick && uring_avail;
  double io_gate_min_ratio = -1;
  bench::JsonObject io_gate_json;
  if (io_gated) {
    printf("\nperf gate: paired psync / uring-direct rows (sync=n, "
           "%" PRIu64 " B records, %" PRIu64 " puts/row):\n",
           io_psize, io_gate_puts);
    for (size_t depth : {8, 16, 32}) {
      uint64_t per_writer = io_gate_puts / depth;
      std::vector<double> ratios;
      bench::JsonObject depth_json;
      for (int rep = 0; rep < 3; rep++) {
        StoreResult p = RunStoreSweep("log-nosync:psync", root + "/iogate",
                                      depth, per_writer, io_psize);
        ::sync();
        StoreResult u = RunStoreSweep("log-nosync:uring-direct",
                                      root + "/iogate", depth, per_writer,
                                      io_psize);
        double ratio = p.mbps > 0 ? u.mbps / p.mbps : 0;
        ratios.push_back(ratio);
        bench::JsonObject pair;
        pair.PutDouble("psync_mbps", p.mbps);
        pair.PutDouble("uring_direct_mbps", u.mbps);
        pair.PutDouble("ratio", ratio);
        depth_json.PutObject(StrFormat("rep%d", rep), pair);
      }
      std::sort(ratios.begin(), ratios.end());
      double median = ratios[ratios.size() / 2];
      depth_json.PutDouble("median_ratio", median);
      io_gate_json.PutObject(StrFormat("d%zu", depth), depth_json);
      printf("  iodepth %2zu: ratios %.2fx %.2fx %.2fx -> median %.2fx\n",
             depth, ratios[0], ratios[1], ratios[2], median);
      if (io_gate_min_ratio < 0 || median < io_gate_min_ratio)
        io_gate_min_ratio = median;
    }
  }
  const bool io_gate_pass = !io_gated || io_gate_min_ratio >= io_gate_floor;
  if (uring_avail) {
    printf("%suring-direct vs psync (sync=n, iodepth >= 8): min median "
           "ratio = %.2fx (floor %.1fx) %s\n",
           io_gated ? "" : "\n", io_gate_min_ratio, io_gate_floor,
           io_gated ? (io_gate_pass ? "[ok]" : "[REGRESSION]")
                    : "[not gated in quick mode]");
  }

  printf("\n== Full-stack append (fig-2a workload, wall clock) ==\n");
  printf("   (embedded cluster, 4 providers; 1 client appends %" PRIu64
         " MB in %" PRIu64 " KB chunks, %" PRIu64 " KB pages)\n\n",
         total_mb, append_kb, psize >> 10);
  bench::Table cluster_table({"backend", "append MB/s"});
  bench::JsonObject cluster_json;
  for (const auto& b : backends) {
    std::string spec = b == "memory" ? std::string("memory")
                       : b == "file" ? "file:" + root + "/cluster_file"
                                     : "log:" + root + "/cluster_" + b;
    if (b == "log-nosync") continue;  // cluster wiring uses default options
    double mbps =
        RunClusterAppend(spec, psize, total_mb << 20, append_kb << 10);
    cluster_table.AddRow({b, StrFormat("%.1f", mbps)});
    cluster_json.PutDouble(b, mbps);
    std::filesystem::remove_all(root);
  }
  if (uring_avail) {
    double mbps = RunClusterAppend("log:" + root + "/cluster_log_uring", psize,
                                   total_mb << 20, append_kb << 10, "uring");
    cluster_table.AddRow({"log-uring", StrFormat("%.1f", mbps)});
    cluster_json.PutDouble("log-uring", mbps);
    std::filesystem::remove_all(root);
  }
  cluster_table.Print();
  std::filesystem::remove_all(root);

  bench::JsonObject config;
  config.PutU64("psize", psize);
  config.PutU64("writers", writers);
  config.PutU64("pages_per_writer", pages_per_writer);
  config.PutU64("total_mb", total_mb);
  config.PutU64("append_kb", append_kb);
  config.PutU64("io_psize", io_psize);
  config.PutU64("io_pages_per_writer", io_pages);
  config.PutU64("io_gate_puts", io_gate_puts);
  bench::JsonObject gate;
  gate.PutDouble("log_over_file", file_mbps > 0 ? log_mbps / file_mbps : 0.0);
  gate.PutDouble("gate_min_speedup", speedup_floor);
  gate.PutBool("gate_pass", log_wins);
  bench::JsonObject io_gate;
  io_gate.PutBool("uring_available", uring_avail);
  io_gate.PutDouble("min_median_ratio_nosync_iodepth8plus", io_gate_min_ratio);
  io_gate.PutDouble("gate_min_speedup", io_gate_floor);
  io_gate.PutBool("gated", io_gated);
  io_gate.PutBool("gate_pass", io_gate_pass);
  io_gate.PutObject("paired_rows", io_gate_json);
  bench::JsonObject doc;
  doc.PutString("bench", "ablation_store");
  doc.PutBool("quick", quick);
  doc.PutObject("config", config);
  doc.PutObject("store_sweep", store_json);
  doc.PutObject("io_sweep", io_json);
  doc.PutObject("cluster_append_mbps", cluster_json);
  doc.PutObject("log_vs_file", gate);
  doc.PutObject("uring_vs_psync", io_gate);
  const std::string json_path =
      bench::FlagValue(argc, argv, "json", "BENCH_store.json");
  if (!bench::WriteJsonFile(json_path, doc)) return 1;

  // Perf gate: the log store losing to file-per-page is a regression, but
  // the comparison is only meaningful in optimized builds (sanitizer/debug
  // instrumentation taxes the log store's CRC path far more than the file
  // store's single write+fsync) and on a quiet machine (ctest runs this
  // smoke RUN_SERIAL for that reason).
#ifdef NDEBUG
  return log_wins && io_gate_pass ? 0 : 1;
#else
  return 0;
#endif
}
