// A5 — ablation: page-store backend sweep (memory vs. file-per-page vs.
// log-structured) over the fig-2a append workload.
//
// The paper's providers served immutable pages from RAM (the memory
// engine); a production deployment needs durability. This bench quantifies
// what each durable backend costs:
//   * file:  one file per page, fsync + atomic rename per Put — a metadata
//            flush and an inode for every page (the layout Sears & van
//            Ingen show degrading at scale).
//   * log:   append-only segments with leader-based group commit — many
//            concurrent Puts share one fdatasync per flush window.
//   * log-nosync: the same store with the durability window open (syncs
//            only on segment seal), an upper bound for the log layout.
//
// Two sweeps: raw store-level Put throughput with concurrent writers
// (where group commit shows up), then the full BlobSeer stack appending a
// blob through an embedded cluster with each backend configured, the same
// workload shape as bench_fig2a_append measured in wall-clock time.
#include <cinttypes>

#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "core/cluster.h"
#include "pagelog/log_page_store.h"
#include "provider/page_store.h"

using namespace blobseer;

namespace {

struct StoreResult {
  double mbps = 0;
  double puts_per_sec = 0;
  provider::PageStoreStats stats;
};

std::unique_ptr<provider::PageStore> MakeBackend(const std::string& backend,
                                                 const std::string& dir) {
  if (backend == "file") return provider::MakeFilePageStore(dir);
  if (backend == "log") return pagelog::MakeLogPageStore(dir);
  if (backend == "log-nosync") {
    pagelog::LogPageStoreOptions opts;
    opts.sync = false;
    return pagelog::MakeLogPageStore(dir, opts);
  }
  return provider::MakeMemoryPageStore();
}

/// W concurrent writers each Put `pages_per_writer` pages of `psize` bytes.
StoreResult RunStoreSweep(const std::string& backend, const std::string& dir,
                          size_t writers, uint64_t pages_per_writer,
                          uint64_t psize) {
  std::filesystem::remove_all(dir);
  auto store = MakeBackend(backend, dir);
  std::string payload(psize, 'p');

  Stopwatch timer;
  std::vector<std::thread> threads;
  for (size_t w = 0; w < writers; w++) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < pages_per_writer; i++) {
        PageId id{w + 1, i};
        Status s = store->Put(id, Slice(payload));
        if (!s.ok()) {
          fprintf(stderr, "put failed (%s): %s\n", backend.c_str(),
                  s.ToString().c_str());
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double secs = timer.ElapsedSeconds();

  StoreResult r;
  uint64_t total_pages = writers * pages_per_writer;
  r.mbps = static_cast<double>(total_pages * psize) / (1 << 20) / secs;
  r.puts_per_sec = static_cast<double>(total_pages) / secs;
  r.stats = store->GetStats();
  store.reset();
  std::filesystem::remove_all(dir);
  return r;
}

/// Full-stack fig-2a shape: one client appends `total` bytes in
/// `append_bytes` chunks into a fresh blob on a cluster whose providers run
/// `page_store`; returns wall-clock append MB/s.
double RunClusterAppend(const std::string& page_store, uint64_t psize,
                        uint64_t total, uint64_t append_bytes) {
  core::ClusterOptions opts;
  opts.num_providers = 4;
  opts.num_meta = 4;
  opts.page_store = page_store;
  auto cluster = core::EmbeddedCluster::Start(opts);
  if (!cluster.ok()) return -1;
  auto client = (*cluster)->NewClient();
  if (!client.ok()) return -1;
  auto id = (*client)->Create(psize);
  if (!id.ok()) return -1;

  std::string chunk(append_bytes, 'a');
  Stopwatch timer;
  for (uint64_t appended = 0; appended < total; appended += append_bytes) {
    auto v = (*client)->Append(*id, Slice(chunk));
    if (!v.ok()) {
      fprintf(stderr, "append failed: %s\n", v.status().ToString().c_str());
      return -1;
    }
  }
  return static_cast<double>(total) / (1 << 20) / timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  const uint64_t psize = bench::FlagU64(argc, argv, "psize_kb", 64) * 1024;
  const size_t writers = bench::FlagU64(argc, argv, "writers", 4);
  const uint64_t pages_per_writer =
      bench::FlagU64(argc, argv, "pages_per_writer", quick ? 48 : 256);
  const uint64_t total_mb =
      bench::FlagU64(argc, argv, "total_mb", quick ? 4 : 32);
  const uint64_t append_kb = bench::FlagU64(argc, argv, "append_kb", 1024);

  std::string root =
      (std::filesystem::temp_directory_path() /
       StrFormat("bs_ablation_store_%d", static_cast<int>(::getpid())))
          .string();

  printf("== Ablation A5: page-store backend sweep ==\n");
  printf("   (%zu writers x %" PRIu64 " pages of %" PRIu64
         " KB; store dir %s)\n\n",
         writers, pages_per_writer, psize >> 10, root.c_str());

  const std::vector<std::string> backends = {"memory", "file", "log",
                                             "log-nosync"};
  bench::Table store_table({"backend", "put MB/s", "puts/s", "syncs",
                            "segments", "dead bytes"});
  bench::JsonObject store_json;
  double file_mbps = 0, log_mbps = 0;
  for (const auto& b : backends) {
    StoreResult r =
        RunStoreSweep(b, root + "/" + b, writers, pages_per_writer, psize);
    if (b == "file") file_mbps = r.mbps;
    if (b == "log") log_mbps = r.mbps;
    store_table.AddRow({b, StrFormat("%.1f", r.mbps),
                        StrFormat("%.0f", r.puts_per_sec),
                        std::to_string(r.stats.syncs),
                        std::to_string(r.stats.segments),
                        std::to_string(r.stats.dead_bytes)});
    bench::JsonObject row;
    row.PutDouble("put_mbps", r.mbps);
    row.PutDouble("puts_per_sec", r.puts_per_sec);
    row.PutU64("syncs", r.stats.syncs);
    row.PutU64("segments", r.stats.segments);
    row.PutU64("dead_bytes", r.stats.dead_bytes);
    store_json.PutObject(b, row);
  }
  store_table.Print();
  // Quick/smoke runs keep headroom: at smoke scale (few hundred puts) a
  // single slow fsync on a loaded or overlay filesystem swings the ratio
  // by tens of percent (0.6-1.4x observed on container overlayfs); the
  // floor still catches the log store collapsing — a per-put-fsync
  // regression reads as ~0.2x.
  const double speedup_floor = quick ? 0.5 : 1.0;
  const bool log_wins = log_mbps >= speedup_floor * file_mbps;
  printf("\nshape check: log (group-commit fdatasync) should beat file "
         "(fsync+rename per page):\n  log/file speedup = %.1fx "
         "(floor %.1fx) %s\n",
         file_mbps > 0 ? log_mbps / file_mbps : 0.0, speedup_floor,
         log_wins ? "[ok]" : "[REGRESSION]");

  printf("\n== Full-stack append (fig-2a workload, wall clock) ==\n");
  printf("   (embedded cluster, 4 providers; 1 client appends %" PRIu64
         " MB in %" PRIu64 " KB chunks, %" PRIu64 " KB pages)\n\n",
         total_mb, append_kb, psize >> 10);
  bench::Table cluster_table({"backend", "append MB/s"});
  bench::JsonObject cluster_json;
  for (const auto& b : backends) {
    std::string spec = b == "memory" ? std::string("memory")
                       : b == "file" ? "file:" + root + "/cluster_file"
                                     : "log:" + root + "/cluster_" + b;
    if (b == "log-nosync") continue;  // cluster wiring uses default options
    double mbps =
        RunClusterAppend(spec, psize, total_mb << 20, append_kb << 10);
    cluster_table.AddRow({b, StrFormat("%.1f", mbps)});
    cluster_json.PutDouble(b, mbps);
    std::filesystem::remove_all(root);
  }
  cluster_table.Print();
  std::filesystem::remove_all(root);

  bench::JsonObject config;
  config.PutU64("psize", psize);
  config.PutU64("writers", writers);
  config.PutU64("pages_per_writer", pages_per_writer);
  config.PutU64("total_mb", total_mb);
  config.PutU64("append_kb", append_kb);
  bench::JsonObject gate;
  gate.PutDouble("log_over_file", file_mbps > 0 ? log_mbps / file_mbps : 0.0);
  gate.PutDouble("gate_min_speedup", speedup_floor);
  gate.PutBool("gate_pass", log_wins);
  bench::JsonObject doc;
  doc.PutString("bench", "ablation_store");
  doc.PutBool("quick", quick);
  doc.PutObject("config", config);
  doc.PutObject("store_sweep", store_json);
  doc.PutObject("cluster_append_mbps", cluster_json);
  doc.PutObject("log_vs_file", gate);
  const std::string json_path =
      bench::FlagValue(argc, argv, "json", "BENCH_store.json");
  if (!bench::WriteJsonFile(json_path, doc)) return 1;

  // Perf gate: the log store losing to file-per-page is a regression, but
  // the comparison is only meaningful in optimized builds (sanitizer/debug
  // instrumentation taxes the log store's CRC path far more than the file
  // store's single write+fsync) and on a quiet machine (ctest runs this
  // smoke RUN_SERIAL for that reason).
#ifdef NDEBUG
  return log_wins ? 0 : 1;
#else
  return 0;
#endif
}
