// Shared helpers for the figure-reproduction benchmarks: flag parsing,
// paper-style table output, and machine-readable JSON result files.
#ifndef BLOBSEER_BENCH_BENCH_UTIL_H_
#define BLOBSEER_BENCH_BENCH_UTIL_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace blobseer::bench {

/// --name=value flag lookup.
inline std::string FlagValue(int argc, char** argv, const std::string& name,
                             const std::string& def) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; i++) {
    if (strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::string(argv[i]).substr(prefix.size());
  }
  return def;
}

inline uint64_t FlagU64(int argc, char** argv, const std::string& name,
                        uint64_t def) {
  std::string v = FlagValue(argc, argv, name, "");
  return v.empty() ? def : strtoull(v.c_str(), nullptr, 10);
}

inline double FlagDouble(int argc, char** argv, const std::string& name,
                         double def) {
  std::string v = FlagValue(argc, argv, name, "");
  return v.empty() ? def : strtod(v.c_str(), nullptr);
}

inline bool FlagBool(int argc, char** argv, const std::string& name,
                     bool def) {
  std::string v = FlagValue(argc, argv, name, def ? "true" : "false");
  return v == "true" || v == "1" || v == "yes";
}

/// True when the bench should run a seconds-scale smoke workload instead of
/// the full paper-figure sweep: `--quick` on the command line, or
/// BLOBSEER_BENCH_SMOKE set (non-empty, not "0") in the environment. CI uses
/// the environment form so paper benches cannot silently bit-rot.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--quick") == 0) return true;
  }
  if (FlagBool(argc, argv, "quick", false)) return true;
  const char* env = getenv("BLOBSEER_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && strcmp(env, "0") != 0;
}

/// Aligned table printer: header row then data rows, also echoed as CSV
/// lines prefixed with "csv," for scripting.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(columns_.size());
    for (size_t c = 0; c < columns_.size(); c++) width[c] = columns_[c].size();
    for (const auto& r : rows_) {
      for (size_t c = 0; c < r.size() && c < width.size(); c++) {
        if (r[c].size() > width[c]) width[c] = r[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      printf("  ");
      for (size_t c = 0; c < r.size(); c++) {
        printf("%-*s  ", static_cast<int>(width[c]), r[c].c_str());
      }
      printf("\n");
    };
    print_row(columns_);
    std::string rule;
    for (size_t c = 0; c < columns_.size(); c++) {
      rule += std::string(width[c], '-') + "  ";
    }
    printf("  %s\n", rule.c_str());
    for (const auto& r : rows_) print_row(r);
    // CSV echo for downstream plotting.
    printf("\n");
    auto csv_row = [](const std::vector<std::string>& r) {
      printf("csv");
      for (const auto& cell : r) printf(",%s", cell.c_str());
      printf("\n");
    };
    csv_row(columns_);
    for (const auto& r : rows_) csv_row(r);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

namespace internal {
inline std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}
}  // namespace internal

class JsonObject;

/// Ordered JSON array builder — the workload benches emit throughput
/// timelines and per-bucket series as arrays alongside JsonObject fields.
class JsonArray {
 public:
  void AddU64(uint64_t value) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%" PRIu64, value);
    items_.emplace_back(buf);
  }
  void AddDouble(double value) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.6g", value);
    items_.emplace_back(buf);
  }
  void AddString(const std::string& value) {
    items_.emplace_back(internal::JsonQuote(value));
  }
  void AddRendered(std::string rendered) {  // pre-rendered object/array
    items_.push_back(std::move(rendered));
  }

  std::string Render() const {
    std::string out = "[";
    for (size_t i = 0; i < items_.size(); i++) {
      if (i > 0) out += ", ";
      out += items_[i];
    }
    return out + "]";
  }

 private:
  std::vector<std::string> items_;
};

/// Insertion-ordered JSON object builder for bench result files. Values are
/// rendered on Put; nested objects nest via PutObject. Only what the
/// benches need — strings are escaped for quotes and backslashes, numbers
/// are emitted verbatim.
class JsonObject {
 public:
  void PutU64(const std::string& key, uint64_t value) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%" PRIu64, value);
    fields_.emplace_back(key, buf);
  }
  void PutDouble(const std::string& key, double value) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void PutBool(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void PutString(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, internal::JsonQuote(value));
  }
  void PutObject(const std::string& key, const JsonObject& obj) {
    fields_.emplace_back(key, obj.Render());
  }
  void PutArray(const std::string& key, const JsonArray& arr) {
    fields_.emplace_back(key, arr.Render());
  }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); i++) {
      if (i > 0) out += ", ";
      out += internal::JsonQuote(fields_[i].first) + ": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Writes a bench result document to `path` (pretty enough: one object,
/// trailing newline). Honoured destination of the shared --json=PATH flag;
/// returns false (with a note on stderr) when the file cannot be written.
inline bool WriteJsonFile(const std::string& path, const JsonObject& doc) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::string body = doc.Render();
  fprintf(f, "%s\n", body.c_str());
  fclose(f);
  printf("\nresults written to %s\n", path.c_str());
  return true;
}

}  // namespace blobseer::bench

#endif  // BLOBSEER_BENCH_BENCH_UTIL_H_
