// Shared helpers for the figure-reproduction benchmarks: flag parsing and
// paper-style table output.
#ifndef BLOBSEER_BENCH_BENCH_UTIL_H_
#define BLOBSEER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace blobseer::bench {

/// --name=value flag lookup.
inline std::string FlagValue(int argc, char** argv, const std::string& name,
                             const std::string& def) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; i++) {
    if (strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::string(argv[i]).substr(prefix.size());
  }
  return def;
}

inline uint64_t FlagU64(int argc, char** argv, const std::string& name,
                        uint64_t def) {
  std::string v = FlagValue(argc, argv, name, "");
  return v.empty() ? def : strtoull(v.c_str(), nullptr, 10);
}

inline double FlagDouble(int argc, char** argv, const std::string& name,
                         double def) {
  std::string v = FlagValue(argc, argv, name, "");
  return v.empty() ? def : strtod(v.c_str(), nullptr);
}

inline bool FlagBool(int argc, char** argv, const std::string& name,
                     bool def) {
  std::string v = FlagValue(argc, argv, name, def ? "true" : "false");
  return v == "true" || v == "1" || v == "yes";
}

/// True when the bench should run a seconds-scale smoke workload instead of
/// the full paper-figure sweep: `--quick` on the command line, or
/// BLOBSEER_BENCH_SMOKE set (non-empty, not "0") in the environment. CI uses
/// the environment form so paper benches cannot silently bit-rot.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--quick") == 0) return true;
  }
  if (FlagBool(argc, argv, "quick", false)) return true;
  const char* env = getenv("BLOBSEER_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && strcmp(env, "0") != 0;
}

/// Aligned table printer: header row then data rows, also echoed as CSV
/// lines prefixed with "csv," for scripting.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(columns_.size());
    for (size_t c = 0; c < columns_.size(); c++) width[c] = columns_[c].size();
    for (const auto& r : rows_) {
      for (size_t c = 0; c < r.size() && c < width.size(); c++) {
        if (r[c].size() > width[c]) width[c] = r[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      printf("  ");
      for (size_t c = 0; c < r.size(); c++) {
        printf("%-*s  ", static_cast<int>(width[c]), r[c].c_str());
      }
      printf("\n");
    };
    print_row(columns_);
    std::string rule;
    for (size_t c = 0; c < columns_.size(); c++) {
      rule += std::string(width[c], '-') + "  ";
    }
    printf("  %s\n", rule.c_str());
    for (const auto& r : rows_) print_row(r);
    // CSV echo for downstream plotting.
    printf("\n");
    auto csv_row = [](const std::vector<std::string>& r) {
      printf("csv");
      for (const auto& cell : r) printf(",%s", cell.c_str());
      printf("\n");
    };
    csv_row(columns_);
    for (const auto& r : rows_) csv_row(r);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace blobseer::bench

#endif  // BLOBSEER_BENCH_BENCH_UTIL_H_
