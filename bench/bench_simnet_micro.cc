// E3 — validation of the section-5 testbed constants inside the simulator:
// point-to-point bandwidth must match the measured 117.5 MB/s TCP rate and
// the 0.1 ms latency of the Grid'5000 Rennes cluster, and fair sharing must
// split the NIC evenly.
#include <cinttypes>

#include "bench_util.h"
#include "common/string_util.h"
#include "simnet/network.h"

using namespace blobseer;
using simnet::SimNetwork;
using simnet::SimNetworkOptions;
using simnet::SimScheduler;

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  double nic = bench::FlagDouble(argc, argv, "nic_mbps", 117.5) * 1e6;
  double latency = bench::FlagDouble(argc, argv, "latency_us", 100);
  const uint64_t xfer_bytes = quick ? (1ull << 26) : (1ull << 30);

  printf("== Simnet micro-validation (paper section 5 constants) ==\n\n");
  bench::Table table({"scenario", "expected", "measured"});

  {  // Point-to-point bandwidth.
    SimScheduler sched;
    double mbps = 0;
    sched.Run([&] {
      SimNetworkOptions opts;
      opts.nic_bytes_per_sec = nic;
      opts.latency_us = latency;
      SimNetwork net(&sched, 2, opts);
      const uint64_t bytes = xfer_bytes;
      double t0 = sched.Now();
      net.Transfer(0, 1, bytes);
      mbps = static_cast<double>(bytes) / (sched.Now() - t0);
    });
    table.AddRow({StrFormat("%" PRIu64 " MiB point-to-point",
                            xfer_bytes >> 20),
                  StrFormat("%.1f MB/s", nic / 1e6),
                  StrFormat("%.1f MB/s", mbps)});
  }
  {  // Latency (zero-byte message).
    SimScheduler sched;
    double us = 0;
    sched.Run([&] {
      SimNetworkOptions opts;
      opts.nic_bytes_per_sec = nic;
      opts.latency_us = latency;
      SimNetwork net(&sched, 2, opts);
      double t0 = sched.Now();
      net.Transfer(0, 1, 0);
      us = sched.Now() - t0;
    });
    table.AddRow({"one-way latency", StrFormat("%.1f us", latency),
                  StrFormat("%.1f us", us)});
  }
  for (int flows : {2, 4, 8}) {  // Fair sharing of one uplink.
    SimScheduler sched;
    double per_flow = 0;
    sched.Run([&] {
      SimNetworkOptions opts;
      opts.nic_bytes_per_sec = nic;
      opts.latency_us = 0;
      SimNetwork net(&sched, 1 + static_cast<size_t>(flows), opts);
      const uint64_t bytes = 64ull << 20;
      double t0 = sched.Now();
      std::vector<SimScheduler::TaskId> ids;
      for (int f = 0; f < flows; f++) {
        ids.push_back(sched.Spawn([&net, f, bytes] {
          net.Transfer(0, static_cast<uint32_t>(f + 1), bytes);
        }));
      }
      for (auto id : ids) sched.Join(id);
      per_flow = static_cast<double>(bytes) * flows / (sched.Now() - t0) /
                 static_cast<double>(flows);
    });
    // per_flow is in bytes/us, numerically equal to MB/s.
    table.AddRow({StrFormat("%d flows sharing an uplink", flows),
                  StrFormat("%.1f MB/s each", nic / 1e6 / flows),
                  StrFormat("%.1f MB/s each", per_flow)});
  }
  {  // Max-min vs endpoint-share on an asymmetric pattern.
    for (auto sharing : {SimNetworkOptions::Sharing::kEndpointShare,
                         SimNetworkOptions::Sharing::kMaxMin}) {
      SimScheduler sched;
      double elapsed = 0;
      sched.Run([&] {
        SimNetworkOptions opts;
        opts.nic_bytes_per_sec = nic;
        opts.latency_us = 0;
        opts.sharing = sharing;
        SimNetwork net(&sched, 4, opts);
        double t0 = sched.Now();
        // Node 0 sends to 1 and 2; node 3 also sends to 1.
        auto a = sched.Spawn([&] { net.Transfer(0, 1, 32 << 20); });
        auto b = sched.Spawn([&] { net.Transfer(0, 2, 32 << 20); });
        auto c = sched.Spawn([&] { net.Transfer(3, 1, 32 << 20); });
        sched.Join(a);
        sched.Join(b);
        sched.Join(c);
        elapsed = sched.Now() - t0;
      });
      table.AddRow(
          {sharing == SimNetworkOptions::Sharing::kMaxMin
               ? "asymmetric pattern, max-min"
               : "asymmetric pattern, endpoint-share",
           "-", StrFormat("%.0f ms total", elapsed / 1000)});
    }
  }
  table.Print();
  return 0;
}
