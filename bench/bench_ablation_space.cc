// A3 — ablation: versioning space overhead (paper section 4.3, "efficient
// use of storage space").
//
// K successive partial overwrites of an N-page blob. BlobSeer stores only
// the newly written pages plus O(log N) metadata nodes per version while
// every snapshot stays fully readable; a copy-on-snapshot store would pay
// N pages per version, a centralized page-table store N page-refs of
// metadata per version.
#include <cinttypes>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/cluster.h"

using namespace blobseer;

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  const uint64_t psize = bench::FlagU64(argc, argv, "psize_kb", 64) * 1024;
  const uint64_t blob_pages =
      bench::FlagU64(argc, argv, "blob_pages", quick ? 64 : 256);
  const uint64_t versions =
      bench::FlagU64(argc, argv, "versions", quick ? 16 : 64);
  const uint64_t pages_per_update =
      bench::FlagU64(argc, argv, "pages_per_update", 4);

  printf("== Ablation A3: storage overhead of versioning ==\n");
  printf("   (%" PRIu64 "-page blob, %" PRIu64 " versions, %" PRIu64
         " pages overwritten per version)\n\n",
         blob_pages, versions, pages_per_update);

  core::ClusterOptions opts;
  opts.num_providers = 8;
  opts.num_meta = 8;
  auto cluster = core::EmbeddedCluster::Start(opts);
  if (!cluster.ok()) return 1;
  auto client = (*cluster)->NewClient();
  if (!client.ok()) return 1;

  auto id = (*client)->Create(psize);
  if (!id.ok()) return 1;
  std::string base(blob_pages * psize, 'b');
  auto v0 = (*client)->Append(*id, Slice(base));
  if (!v0.ok() || !(*client)->Sync(*id, *v0).ok()) return 1;

  bench::Table table({"version", "logical bytes (all snapshots)",
                      "physical page bytes", "metadata bytes",
                      "full-copy page bytes (baseline)", "savings"});
  Rng rng(7);
  std::string data(pages_per_update * psize, 'x');
  for (uint64_t k = 1; k <= versions; k++) {
    uint64_t page = rng.Uniform(blob_pages - pages_per_update);
    auto v = (*client)->Write(*id, Slice(data), page * psize);
    if (!v.ok()) {
      fprintf(stderr, "write failed: %s\n", v.status().ToString().c_str());
      return 1;
    }
    if (k % 8 == 0 || k == 1) {
      if (!(*client)->Sync(*id, *v).ok()) return 1;
      uint64_t pages_held = 0, page_bytes = 0, meta_keys = 0, meta_bytes = 0;
      (void)(*cluster)->TotalProviderUsage(&pages_held, &page_bytes);
      (void)(*cluster)->TotalMetadataUsage(&meta_keys, &meta_bytes);
      uint64_t logical = (k + 1) * blob_pages * psize;
      uint64_t full_copy = logical;  // one materialized copy per snapshot
      table.AddRow(
          {std::to_string(k + 1), HumanBytes(logical), HumanBytes(page_bytes),
           HumanBytes(meta_bytes), HumanBytes(full_copy),
           StrFormat("%.1fx", static_cast<double>(full_copy) /
                                  static_cast<double>(page_bytes + meta_bytes))});
    }
  }
  table.Print();

  // Every version stays readable after all that sharing.
  std::string out;
  Status s = (*client)->Read(*id, 1, 0, blob_pages * psize, &out);
  printf("\nverification: snapshot 1 still fully readable after %" PRIu64
         " versions: %s\n",
         versions, s.ToString().c_str());
  printf("shape check: physical growth per version ~= %" PRIu64
         " KB (written pages) + O(log N) metadata,\nwhile the full-copy "
         "baseline grows %" PRIu64 " KB per version.\n",
         pages_per_update * psize / 1024, blob_pages * psize / 1024);
  return s.ok() ? 0 : 1;
}
