// A3 — ablation: versioning space overhead and the lifecycle levers that
// bound it (paper section 4.3, "efficient use of storage space").
//
// Three passes over the same K-overwrites-of-an-N-page-blob workload:
//
//   baseline   — never delete anything: every snapshot's pages accumulate
//                (the pre-lifecycle behaviour, and the paper's own cost of
//                keeping all versions);
//   retention  — keep_last_k retention + GC sweeper + pagelog
//                auto-compaction: expired snapshots are discarded, their
//                pages swept and their segments compacted. Gate: live bytes
//                after GC must be <= 0.5x the baseline;
//   dedup      — a 50%-duplicate workload (every page written twice, once
//                per blob) with content-hash dedup on. Gate: pages stored
//                < pages written.
//
// Results are also written as JSON (--json=PATH, default BENCH_space.json)
// and the process exits non-zero when a gate fails, so CI can hold the
// line on the space story.
#include <cinttypes>
#include <filesystem>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/cluster.h"
#include "lifecycle/gc_sweeper.h"
#include "lifecycle/retention.h"
#include "vmanager/client.h"

using namespace blobseer;

namespace {

struct SpaceConfig {
  uint64_t psize = 0;
  uint64_t blob_pages = 0;
  uint64_t versions = 0;
  uint64_t pages_per_update = 0;
  uint32_t keep_last_k = 4;
  std::string root;
};

struct PassResult {
  uint64_t pages = 0;
  uint64_t live_bytes = 0;
  uint64_t meta_bytes = 0;
  uint64_t compactions = 0;
  uint64_t dead_bytes = 0;
  lifecycle::GcStats gc;
};

/// The shared overwrite workload: an N-page blob, then K random
/// `pages_per_update`-page overwrites (same seed in every pass). With
/// `retain`, a keep-last-k policy is installed and the GC sweeper runs to
/// quiescence before measuring.
bool RunOverwritePass(const SpaceConfig& cfg, bool retain, PassResult* out) {
  std::string dir = cfg.root + (retain ? "/retention" : "/baseline");
  std::filesystem::remove_all(dir);
  core::ClusterOptions opts;
  opts.num_providers = 4;
  opts.num_meta = 4;
  opts.page_store = "log:" + dir;
  // GC deletes feed segment dead ratios; compaction triggers itself. Small
  // segments so deletes land in sealed ones at bench scale.
  opts.log_compact_dead_ratio = retain ? 0.3 : 0.0;
  opts.log_segment_target_bytes = 8 * cfg.psize;
  auto cluster = core::EmbeddedCluster::Start(opts);
  if (!cluster.ok()) return false;
  auto client = (*cluster)->NewClient();
  if (!client.ok()) return false;

  auto id = (*client)->Create(cfg.psize);
  if (!id.ok()) return false;
  std::string base(cfg.blob_pages * cfg.psize, 'b');
  auto v0 = (*client)->Append(*id, Slice(base));
  if (!v0.ok() || !(*client)->Sync(*id, *v0).ok()) return false;

  Rng rng(7);
  std::string data(cfg.pages_per_update * cfg.psize, 'x');
  Version last = *v0;
  for (uint64_t k = 1; k <= cfg.versions; k++) {
    uint64_t page = rng.Uniform(cfg.blob_pages - cfg.pages_per_update);
    auto v = (*client)->Write(*id, Slice(data), page * cfg.psize);
    if (!v.ok()) {
      fprintf(stderr, "write failed: %s\n", v.status().ToString().c_str());
      return false;
    }
    last = *v;
    if (k % 8 == 0 && !(*client)->Sync(*id, last).ok()) return false;
  }
  if (!(*client)->Sync(*id, last).ok()) return false;

  if (retain) {
    vmanager::VersionManagerClient vm((*cluster)->transport(),
                                      (*cluster)->vmanager_address());
    lifecycle::RetentionPolicy policy;
    policy.keep_last_k = cfg.keep_last_k;
    if (!vm.SetRetention(*id, policy).ok()) return false;
    lifecycle::GcOptions go;
    go.interval_us = 0;  // driven by hand below
    go.max_sweep_per_pass = 1 << 16;
    (*cluster)->pmanager().StartGcSweeper(
        nullptr, RealClock::Default(), (*cluster)->transport(),
        (*cluster)->vmanager_address(), (*cluster)->dht_addresses(),
        dht::DhtClientOptions{}, go);
    lifecycle::GcSweeper* gc = (*cluster)->pmanager().gc_sweeper();
    uint64_t before = ~uint64_t{0};
    for (int pass = 0; pass < 32; pass++) {
      Status st = gc->RunOnePass(RealClock::Default()->NowMicros());
      if (!st.ok()) {
        fprintf(stderr, "gc pass failed: %s\n", st.ToString().c_str());
        return false;
      }
      uint64_t pages = 0, bytes = 0;
      (void)(*cluster)->TotalProviderUsage(&pages, &bytes);
      if (pages == before) break;  // quiescent
      before = pages;
    }
    out->gc = gc->GetStats();
  }

  uint64_t meta_keys = 0;
  (void)(*cluster)->TotalProviderUsage(&out->pages, &out->live_bytes);
  (void)(*cluster)->TotalMetadataUsage(&meta_keys, &out->meta_bytes);
  for (size_t i = 0; i < (*cluster)->num_providers(); i++) {
    provider::PageStoreStats st = (*cluster)->provider(i).store().GetStats();
    out->compactions += st.compactions;
    out->dead_bytes += st.dead_bytes;
  }

  // Every retained snapshot must still read back in full.
  std::string check;
  Status s = (*client)->Read(*id, last, 0, cfg.blob_pages * cfg.psize, &check);
  if (!s.ok()) {
    fprintf(stderr, "post-pass read failed: %s\n", s.ToString().c_str());
    return false;
  }
  return true;
}

/// 50%-duplicate workload: every version's pages are written to two blobs
/// by a dedup-enabled client — the second write should adopt, not store.
bool RunDedupPass(const SpaceConfig& cfg, uint64_t* written_pages,
                  uint64_t* stored_pages, uint64_t* dedup_hits) {
  core::ClusterOptions opts;
  opts.num_providers = 4;
  opts.num_meta = 4;
  auto cluster = core::EmbeddedCluster::Start(opts);
  if (!cluster.ok()) return false;
  client::ClientOptions copts;
  copts.dedup = true;
  auto client = (*cluster)->NewClient(copts);
  if (!client.ok()) return false;

  auto a = (*client)->Create(cfg.psize);
  auto b = (*client)->Create(cfg.psize);
  if (!a.ok() || !b.ok()) return false;
  *written_pages = 0;
  for (uint64_t k = 0; k < cfg.versions; k++) {
    // Unique content per version, repeated across the two blobs.
    std::string data(cfg.pages_per_update * cfg.psize, '\0');
    Rng rng(1000 + k);
    for (auto& c : data) c = static_cast<char>('a' + rng.Uniform(26));
    for (BlobId id : {*a, *b}) {
      auto v = (*client)->Write(id, Slice(data), 0);
      if (!v.ok() || !(*client)->Sync(id, *v).ok()) return false;
      *written_pages += cfg.pages_per_update;
    }
  }
  uint64_t bytes = 0;
  (void)(*cluster)->TotalProviderUsage(stored_pages, &bytes);
  *dedup_hits = (*client)->GetStats().dedup_hits;

  // Both blobs must read back the shared bytes exactly.
  std::string want, got;
  {
    std::string data(cfg.pages_per_update * cfg.psize, '\0');
    Rng rng(1000 + cfg.versions - 1);
    for (auto& c : data) c = static_cast<char>('a' + rng.Uniform(26));
    want = data;
  }
  for (BlobId id : {*a, *b}) {
    auto recent = (*client)->GetRecent(id);
    if (!recent.ok()) return false;
    if (!(*client)->Read(id, recent->version, 0, want.size(), &got).ok() ||
        got != want) {
      fprintf(stderr, "dedup read mismatch on blob %" PRIu64 "\n", id);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  SpaceConfig cfg;
  cfg.psize = bench::FlagU64(argc, argv, "psize_kb", quick ? 16 : 64) * 1024;
  cfg.blob_pages =
      bench::FlagU64(argc, argv, "blob_pages", quick ? 64 : 256);
  cfg.versions = bench::FlagU64(argc, argv, "versions", quick ? 16 : 64);
  // A quarter of the blob per version: enough churn that keep-last-k
  // retention reclaims well past the 0.5x gate.
  cfg.pages_per_update =
      bench::FlagU64(argc, argv, "pages_per_update", cfg.blob_pages / 4);
  cfg.keep_last_k = static_cast<uint32_t>(
      bench::FlagU64(argc, argv, "keep_last_k", 4));
  cfg.root = bench::FlagValue(
      argc, argv, "dir",
      std::filesystem::temp_directory_path().string() + "/bs_bench_space");
  const std::string json_path =
      bench::FlagValue(argc, argv, "json", "BENCH_space.json");

  printf("== Ablation A3: storage overhead of versioning + lifecycle ==\n");
  printf("   (%" PRIu64 "-page blob, %" PRIu64 " versions, %" PRIu64
         " pages overwritten per version, keep_last_k=%u)\n\n",
         cfg.blob_pages, cfg.versions, cfg.pages_per_update, cfg.keep_last_k);

  PassResult baseline, retained;
  if (!RunOverwritePass(cfg, /*retain=*/false, &baseline)) return 1;
  if (!RunOverwritePass(cfg, /*retain=*/true, &retained)) return 1;
  uint64_t written = 0, stored = 0, hits = 0;
  if (!RunDedupPass(cfg, &written, &stored, &hits)) return 1;
  std::filesystem::remove_all(cfg.root);

  const double ratio = baseline.live_bytes == 0
                           ? 1.0
                           : static_cast<double>(retained.live_bytes) /
                                 static_cast<double>(baseline.live_bytes);
  const bool gc_gate = ratio <= 0.5;
  const bool dedup_gate = stored < written;

  bench::Table table({"pass", "pages", "live bytes", "meta bytes", "note"});
  table.AddRow({"baseline (never delete)", std::to_string(baseline.pages),
                HumanBytes(baseline.live_bytes),
                HumanBytes(baseline.meta_bytes), "all snapshots kept"});
  table.AddRow(
      {"retention + GC + compaction", std::to_string(retained.pages),
       HumanBytes(retained.live_bytes), HumanBytes(retained.meta_bytes),
       StrFormat("%.2fx of baseline, %" PRIu64 " pages swept, %" PRIu64
                 " log compactions",
                 ratio, retained.gc.pages_swept, retained.compactions)});
  table.AddRow({"dedup (50% duplicates)", std::to_string(stored),
                HumanBytes(stored * cfg.psize), "-",
                StrFormat("%" PRIu64 " written, %" PRIu64 " adopted", written,
                          hits)});
  table.Print();

  printf("\ngates: retention live bytes <= 0.5x baseline: %.2fx %s\n", ratio,
         gc_gate ? "[ok]" : "[REGRESSION]");
  printf("       dedup stored pages < written pages: %" PRIu64 " < %" PRIu64
         " %s\n",
         stored, written, dedup_gate ? "[ok]" : "[REGRESSION]");

  bench::JsonObject config;
  config.PutU64("psize", cfg.psize);
  config.PutU64("blob_pages", cfg.blob_pages);
  config.PutU64("versions", cfg.versions);
  config.PutU64("pages_per_update", cfg.pages_per_update);
  config.PutU64("keep_last_k", cfg.keep_last_k);
  bench::JsonObject base_obj;
  base_obj.PutU64("pages", baseline.pages);
  base_obj.PutU64("live_bytes", baseline.live_bytes);
  base_obj.PutU64("meta_bytes", baseline.meta_bytes);
  bench::JsonObject gc_obj;
  gc_obj.PutU64("pages", retained.pages);
  gc_obj.PutU64("live_bytes", retained.live_bytes);
  gc_obj.PutU64("meta_bytes", retained.meta_bytes);
  gc_obj.PutU64("versions_discarded", retained.gc.versions_discarded);
  gc_obj.PutU64("pages_swept", retained.gc.pages_swept);
  gc_obj.PutU64("nodes_retired", retained.gc.nodes_retired);
  gc_obj.PutU64("log_compactions", retained.compactions);
  gc_obj.PutDouble("ratio_vs_baseline", ratio);
  gc_obj.PutDouble("gate_max_ratio", 0.5);
  gc_obj.PutBool("gate_pass", gc_gate);
  bench::JsonObject dedup_obj;
  dedup_obj.PutU64("written_pages", written);
  dedup_obj.PutU64("stored_pages", stored);
  dedup_obj.PutU64("dedup_hits", hits);
  dedup_obj.PutBool("gate_pass", dedup_gate);
  bench::JsonObject doc;
  doc.PutString("bench", "ablation_space");
  doc.PutBool("quick", quick);
  doc.PutObject("config", config);
  doc.PutObject("baseline", base_obj);
  doc.PutObject("retention_gc", gc_obj);
  doc.PutObject("dedup", dedup_obj);
  if (!bench::WriteJsonFile(json_path, doc)) return 1;

  return gc_gate && dedup_gate ? 0 : 1;
}
