// E1 — Figure 2(a): "Append throughput as a blob dynamically grows".
//
// Paper setup (section 5): Grid'5000 Rennes; version manager and provider
// manager on dedicated nodes; a data provider and a metadata provider
// co-deployed on each of the remaining nodes (50 or 175); one client
// appends 64 MB into a fresh blob while the append bandwidth is monitored
// as a function of the blob's size in pages; page size 64 KB and 256 KB.
//
// Expected shape (paper): bandwidth stays high as the blob grows (85–105
// MB/s on a 117.5 MB/s NIC), with slight decreases each time the number of
// pages crosses a power of two (the metadata tree gains a level); larger
// pages perform better; 175 providers edge out 50.
//
// This binary runs the *real* BlobSeer stack on the simnet cluster model
// (117.5 MB/s full-duplex NICs, 0.1 ms latency); the metadata node cache is
// disabled so every border descent pays its true round trips.
#include <cinttypes>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/sim_cluster.h"

using namespace blobseer;

namespace {

struct SeriesPoint {
  uint64_t pages;
  double mbps;
};

std::vector<SeriesPoint> RunSeries(size_t providers, uint64_t psize,
                                   uint64_t total_bytes, uint64_t append_bytes,
                                   double provider_cpu_us, bool cache) {
  simnet::SimScheduler sched;
  std::vector<SeriesPoint> series;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = providers;
    opts.num_client_nodes = 1;
    opts.provider_cpu_us = provider_cpu_us;
    core::SimCluster cluster(&sched, opts);
    sched.SetCurrentNode(cluster.client_node(0));

    client::ClientOptions copts;
    copts.cache_metadata = cache;
    copts.data_fanout = 16;
    copts.meta_fanout = 16;
    auto client = cluster.NewClient(copts);

    auto id = client->Create(psize);
    if (!id.ok()) return;
    std::string chunk(append_bytes, 'a');
    uint64_t appended = 0;
    while (appended < total_bytes) {
      double t0 = sched.Now();
      auto v = client->Append(*id, Slice(chunk));
      if (!v.ok()) {
        fprintf(stderr, "append failed: %s\n", v.status().ToString().c_str());
        return;
      }
      double dt_us = sched.Now() - t0;
      appended += append_bytes;
      series.push_back(SeriesPoint{appended / psize,
                                   static_cast<double>(append_bytes) / dt_us});
    }
  });
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  uint64_t total =
      bench::FlagU64(argc, argv, "total_mb", quick ? 8 : 64) * 1024 * 1024;
  uint64_t append = bench::FlagU64(argc, argv, "append_kb", 1024) * 1024;
  double provider_cpu = bench::FlagDouble(argc, argv, "provider_cpu_us", 1300);
  bool cache = bench::FlagBool(argc, argv, "cache", false);

  printf("== Figure 2(a): append throughput as the blob grows ==\n");
  printf("   (simulated Grid'5000 profile: 117.5 MB/s NIC, 0.1 ms latency;\n");
  printf("    single client appends %" PRIu64 " MB in %" PRIu64
         " KB appends; metadata cache %s)\n\n",
         total >> 20, append >> 10, cache ? "on" : "off");

  struct Config {
    uint64_t psize;
    size_t providers;
  };
  std::vector<Config> configs = {
      {64 * 1024, 175}, {256 * 1024, 175}, {64 * 1024, 50}, {256 * 1024, 50}};

  std::vector<std::vector<SeriesPoint>> all;
  for (const Config& c : configs) {
    all.push_back(RunSeries(c.providers, c.psize, total, append, provider_cpu,
                            cache));
  }

  bench::Table table({"pages(64K)/4", "64K,175prov MB/s", "256K,175prov MB/s",
                      "64K,50prov MB/s", "256K,50prov MB/s"});
  // Rows aligned by appended bytes (each append adds the same byte count in
  // all configs).
  size_t rows = all[0].size();
  for (size_t i = 0; i < rows; i++) {
    std::vector<std::string> cells;
    cells.push_back(std::to_string(all[0][i].pages));
    for (size_t c = 0; c < all.size(); c++) {
      cells.push_back(StrFormat("%.1f", all[c][i].mbps));
    }
    table.AddRow(std::move(cells));
  }
  table.Print();

  // Shape summary used by EXPERIMENTS.md.
  auto avg = [](const std::vector<SeriesPoint>& s, size_t from, size_t to) {
    double sum = 0;
    size_t n = 0;
    for (size_t i = from; i < to && i < s.size(); i++, n++) sum += s[i].mbps;
    return n ? sum / n : 0.0;
  };
  printf("\nshape checks:\n");
  for (size_t c = 0; c < configs.size(); c++) {
    double head = avg(all[c], 0, 8);
    double tail = avg(all[c], all[c].size() - 8, all[c].size());
    printf("  psize=%3" PRIu64 "K providers=%3zu  first-8 %.1f MB/s  "
           "last-8 %.1f MB/s  (decline %.1f%%)\n",
           configs[c].psize >> 10, configs[c].providers, head, tail,
           100.0 * (head - tail) / head);
  }
  printf("  256K curves should sit above 64K curves; bandwidth should stay "
         "a large fraction of the 117.5 MB/s NIC; dips at power-of-two page "
         "counts.\n");
  return 0;
}
