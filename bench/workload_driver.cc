// Workload driver: replays declarative multi-tenant traffic specs
// (docs/workload.md) through the async BlobClient against all three
// harnesses — embedded in-process, real TCP loopback daemons, and the
// simulated network — and, on simnet, runs membership/chaos campaigns at
// 1000+ providers in virtual time (kill waves mid-traffic, flash crowds
// during rebuild, decommission storms, scripted latency). Every campaign
// emits a BENCH_workload_*.json trajectory artifact with per-op latency
// percentiles, a throughput timeline, and cluster counters.
//
//   workload_driver --quick                        # smoke every campaign
//   workload_driver --harness=simnet --scenario=flash_crowd
//   workload_driver --campaign=scale --providers=2000 --kill-wave=100
//   workload_driver --spec=my.wl --wl:ops=5000 --wl:zipf_theta=1.2
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/blob_client.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "core/cluster.h"
#include "core/sim_cluster.h"
#include "pmanager/client.h"
#include "workload/generator.h"
#include "workload/histogram.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace {

using blobseer::RealClock;
using blobseer::Status;
using blobseer::StrFormat;
using blobseer::bench::FlagU64;
using blobseer::bench::FlagValue;
using blobseer::bench::JsonArray;
using blobseer::bench::JsonObject;
using blobseer::bench::QuickMode;
using blobseer::bench::Table;
using blobseer::bench::WriteJsonFile;
using blobseer::workload::GenerateSchedule;
using blobseer::workload::LatencyHistogram;
using blobseer::workload::RunnerOptions;
using blobseer::workload::Schedule;
using blobseer::workload::Timeline;
using blobseer::workload::WorkloadReport;
using blobseer::workload::WorkloadRunner;
using blobseer::workload::WorkloadSpec;

// ---------------------------------------------------------------------------
// Aggregated campaign outcome (any harness).

struct CampaignStats {
  WorkloadReport report;
  uint64_t retained_checked = 0;
  bool verify_ok = false;
  std::string verify_error;
  blobseer::client::ClientStats client{};
  blobseer::pmanager::PmStatsResponse pm{};
  bool have_pm = false;
  uint64_t store_pages = 0;
  uint64_t store_bytes = 0;
  /// Wall seconds on real harnesses, virtual seconds on simnet.
  double elapsed_s = 0;
};

void MergeClientStats(blobseer::client::ClientStats* into,
                      const blobseer::client::ClientStats& s) {
  into->writes += s.writes;
  into->appends += s.appends;
  into->reads += s.reads;
  into->bytes_written += s.bytes_written;
  into->bytes_read += s.bytes_read;
  into->pages_stored += s.pages_stored;
  into->meta_nodes_written += s.meta_nodes_written;
  into->failover_reads += s.failover_reads;
  into->read_repairs += s.read_repairs;
  into->degraded_writes += s.degraded_writes;
  into->locations_published += s.locations_published;
  into->location_seeds += s.location_seeds;
  into->location_refreshes += s.location_refreshes;
  into->dedup_hits += s.dedup_hits;
}

// ---------------------------------------------------------------------------
// JSON rendering (shared schema across every campaign artifact).

JsonObject SpecJson(const WorkloadSpec& spec) {
  JsonObject o;
  for (const auto& [key, value] : spec.Items()) {
    if (key == "scenario") {
      o.PutString(key, value);
    } else if (key == "read_fraction" || key == "zipf_theta" ||
               key == "append_fraction" || key == "flash_crowd_at") {
      o.PutDouble(key, strtod(value.c_str(), nullptr));
    } else {
      o.PutU64(key, strtoull(value.c_str(), nullptr, 10));
    }
  }
  return o;
}

JsonObject LatencyJson(const LatencyHistogram& h) {
  JsonObject o;
  o.PutU64("count", h.count());
  o.PutDouble("mean", h.mean_us());
  o.PutU64("p50", h.Percentile(0.50));
  o.PutU64("p90", h.Percentile(0.90));
  o.PutU64("p99", h.Percentile(0.99));
  o.PutU64("p999", h.Percentile(0.999));
  o.PutU64("max", h.max_us());
  return o;
}

JsonObject TimelineJson(const Timeline& t) {
  JsonObject o;
  o.PutDouble("bucket_s", double(t.bucket_us()) / 1e6);
  JsonArray ops;
  JsonArray mbytes;
  for (size_t i = 0; i < t.ops().size(); i++) {
    ops.AddU64(t.ops()[i]);
    mbytes.AddDouble(double(t.bytes()[i]) / 1e6);
  }
  o.PutArray("ops", ops);
  o.PutArray("mbytes", mbytes);
  return o;
}

JsonObject OpsJson(const WorkloadReport& r) {
  JsonObject o;
  o.PutU64("issued", r.ops_issued);
  o.PutU64("creates", r.creates);
  o.PutU64("reads", r.reads);
  o.PutU64("appends", r.appends);
  o.PutU64("writes", r.writes);
  o.PutU64("departures", r.departures);
  o.PutU64("read_bytes", r.read_bytes);
  o.PutU64("written_bytes", r.written_bytes);
  o.PutU64("verified_reads", r.verified_reads);
  o.PutU64("verify_failures", r.verify_failures);
  o.PutU64("not_found_reads", r.not_found_reads);
  o.PutU64("read_errors", r.read_errors);
  o.PutU64("write_errors", r.write_errors);
  return o;
}

JsonObject ClientJson(const blobseer::client::ClientStats& s) {
  JsonObject o;
  o.PutU64("writes", s.writes);
  o.PutU64("appends", s.appends);
  o.PutU64("reads", s.reads);
  o.PutU64("bytes_written", s.bytes_written);
  o.PutU64("bytes_read", s.bytes_read);
  o.PutU64("pages_stored", s.pages_stored);
  o.PutU64("meta_nodes_written", s.meta_nodes_written);
  o.PutU64("failover_reads", s.failover_reads);
  o.PutU64("read_repairs", s.read_repairs);
  o.PutU64("degraded_writes", s.degraded_writes);
  o.PutU64("locations_published", s.locations_published);
  o.PutU64("location_seeds", s.location_seeds);
  o.PutU64("location_refreshes", s.location_refreshes);
  return o;
}

JsonObject PmJson(const blobseer::pmanager::PmStatsResponse& s) {
  JsonObject o;
  o.PutU64("providers", s.providers);
  o.PutU64("alive", s.alive);
  o.PutU64("suspect", s.suspect);
  o.PutU64("dead", s.dead);
  o.PutU64("draining", s.draining);
  o.PutU64("allocations", s.allocations);
  o.PutU64("located_pages", s.located_pages);
  o.PutU64("under_replicated", s.under_replicated);
  o.PutU64("rebuilt_pages", s.rebuilt_pages);
  return o;
}

JsonObject StatsJson(const CampaignStats& st) {
  JsonObject o;
  o.PutDouble("elapsed_s", st.elapsed_s);
  const WorkloadReport& r = st.report;
  uint64_t window_ops = r.reads + r.appends + r.writes;
  o.PutDouble("ops_per_sec",
              st.elapsed_s > 0 ? double(window_ops) / st.elapsed_s : 0);
  o.PutDouble("read_mbps", st.elapsed_s > 0
                               ? double(r.read_bytes) / 1e6 / st.elapsed_s
                               : 0);
  o.PutDouble("write_mbps", st.elapsed_s > 0
                                ? double(r.written_bytes) / 1e6 / st.elapsed_s
                                : 0);
  o.PutObject("ops", OpsJson(r));
  JsonObject lat;
  lat.PutObject("read", LatencyJson(r.read_latency));
  lat.PutObject("write", LatencyJson(r.write_latency));
  o.PutObject("latency_us", lat);
  o.PutObject("timeline", TimelineJson(r.timeline));
  o.PutObject("client", ClientJson(st.client));
  if (st.have_pm) o.PutObject("pm", PmJson(st.pm));
  JsonObject store;
  store.PutU64("pages", st.store_pages);
  store.PutU64("bytes", st.store_bytes);
  o.PutObject("store", store);
  JsonObject verify;
  verify.PutBool("ok", st.verify_ok);
  verify.PutU64("retained_versions_checked", st.retained_checked);
  if (!st.verify_ok) verify.PutString("error", st.verify_error);
  o.PutObject("verify", verify);
  return o;
}

// ---------------------------------------------------------------------------
// Campaign configuration.

struct DriverConfig {
  bool quick = false;
  WorkloadSpec spec;         // mixed-campaign spec (per worker; seed+w)
  size_t workers = 2;
  size_t providers = 4;      // real harnesses
  size_t sim_providers = 50; // simnet mixed harness
  uint32_t replication = 2;
  uint32_t write_quorum = 0;
  size_t window = 32;
  std::string json_prefix = "BENCH_workload";
  // Scale campaign.
  size_t scale_providers = 1000;
  size_t scale_workers = 4;
  size_t scale_dht_nodes = 64;
  size_t kill_wave = 20;
  size_t decommission = 2;
};

uint64_t WindowOpCount(const Schedule& s) {
  uint64_t n = 0;
  for (const auto& op : s.ops) {
    if (op.kind != blobseer::workload::OpKind::kCreate &&
        op.kind != blobseer::workload::OpKind::kDepart) {
      n++;
    }
  }
  return n;
}

bool MixedGates(const CampaignStats& st, JsonObject* gates) {
  const WorkloadReport& r = st.report;
  bool no_write_errors = r.write_errors == 0;
  bool no_read_errors = r.read_errors == 0 && r.not_found_reads == 0;
  bool reads_verified = r.verify_failures == 0 && r.verified_reads > 0;
  bool pass =
      no_write_errors && no_read_errors && reads_verified && st.verify_ok;
  gates->PutBool("no_write_errors", no_write_errors);
  gates->PutBool("no_read_errors", no_read_errors);
  gates->PutBool("reads_verified", reads_verified);
  gates->PutBool("retained_verified", st.verify_ok);
  gates->PutBool("pass", pass);
  return pass;
}

void AddSummaryRow(Table* summary, const std::string& campaign,
                   const std::string& harness, const CampaignStats& st,
                   bool pass) {
  const WorkloadReport& r = st.report;
  summary->AddRow(
      {campaign, harness, StrFormat("%" PRIu64, r.reads + r.appends + r.writes),
       StrFormat("%" PRIu64, r.read_latency.Percentile(0.99)),
       StrFormat("%" PRIu64, r.write_latency.Percentile(0.99)),
       StrFormat("%" PRIu64,
                 r.verify_failures + r.read_errors + r.write_errors),
       pass ? "yes" : "NO"});
}

// ---------------------------------------------------------------------------
// Mixed campaign on the real harnesses (embedded inproc / TCP loopback):
// one OS thread per worker, each with its own client, tenants and seed.

bool RunRealMixed(const DriverConfig& cfg, const std::string& harness,
                  Table* summary) {
  printf("\n=== mixed campaign · %s · %zu workers x %" PRIu64
         " ops · r=%u w=%u ===\n",
         harness.c_str(), cfg.workers, cfg.spec.ops, cfg.replication,
         cfg.write_quorum);
  blobseer::core::ClusterOptions co;
  co.transport = harness == "tcp" ? "tcp" : "inproc";
  co.num_providers = cfg.providers;
  co.num_meta = 4;
  co.page_store = "memory";
  co.replication = cfg.replication;
  co.write_quorum = cfg.write_quorum;
  auto cluster = blobseer::core::EmbeddedCluster::Start(co);
  if (!cluster.ok()) {
    fprintf(stderr, "cluster start failed: %s\n",
            cluster.status().ToString().c_str());
    return false;
  }

  blobseer::Clock* clock = RealClock::Default();
  const uint64_t epoch = clock->NowMicros();
  std::vector<std::unique_ptr<blobseer::client::BlobClient>> clients;
  std::vector<std::unique_ptr<WorkloadRunner>> runners;
  std::vector<WorkloadSpec> specs;
  std::vector<Schedule> schedules;
  for (size_t w = 0; w < cfg.workers; w++) {
    auto client = (*cluster)->NewClient();
    if (!client.ok()) {
      fprintf(stderr, "client start failed: %s\n",
              client.status().ToString().c_str());
      return false;
    }
    clients.push_back(std::move(*client));
    WorkloadSpec spec = cfg.spec;
    spec.seed += w;  // distinct tenants + schedule per worker
    specs.push_back(spec);
    schedules.push_back(GenerateSchedule(spec));
    RunnerOptions ro;
    ro.window = cfg.window;
    ro.epoch_us = epoch;
    ro.timeline_bucket_us = 500 * 1000;
    runners.push_back(std::make_unique<WorkloadRunner>(clients[w].get(),
                                                       clock, ro));
  }

  std::vector<Status> statuses(cfg.workers);
  std::vector<std::thread> threads;
  for (size_t w = 0; w < cfg.workers; w++) {
    threads.emplace_back([&, w] {
      statuses[w] = runners[w]->Run(specs[w], schedules[w]);
    });
  }
  for (auto& t : threads) t.join();

  CampaignStats st;
  st.verify_ok = true;
  for (size_t w = 0; w < cfg.workers; w++) {
    if (!statuses[w].ok()) {
      st.verify_ok = false;
      st.verify_error = statuses[w].ToString();
    }
    uint64_t checked = 0;
    Status vs = runners[w]->VerifyRetained(/*allow_not_found=*/false,
                                           &checked);
    if (!vs.ok() && st.verify_ok) {
      st.verify_ok = false;
      st.verify_error = vs.ToString();
    }
    st.retained_checked += checked;
    st.report.Merge(runners[w]->report());
    MergeClientStats(&st.client, clients[w]->GetStats());
  }
  st.elapsed_s = double(clock->NowMicros() - epoch) / 1e6;
  (*cluster)->TotalProviderUsage(&st.store_pages, &st.store_bytes);
  blobseer::pmanager::ProviderManagerClient pm((*cluster)->transport(),
                                               (*cluster)->pmanager_address());
  auto pm_stats = pm.FetchStats();
  if (pm_stats.ok()) {
    st.pm = *pm_stats;
    st.have_pm = true;
  }

  JsonObject doc;
  doc.PutString("bench", "workload");
  doc.PutString("campaign", "mixed");
  doc.PutString("harness", harness);
  doc.PutBool("quick", cfg.quick);
  doc.PutObject("spec", SpecJson(cfg.spec));
  JsonObject cl;
  cl.PutU64("providers", cfg.providers);
  cl.PutU64("replication", cfg.replication);
  cl.PutU64("write_quorum", cfg.write_quorum);
  cl.PutU64("workers", cfg.workers);
  cl.PutU64("window", cfg.window);
  doc.PutObject("cluster", cl);
  doc.PutObject("results", StatsJson(st));
  JsonObject gates;
  bool pass = MixedGates(st, &gates);
  doc.PutObject("gates", gates);
  WriteJsonFile(cfg.json_prefix + "_mixed_" + harness + ".json", doc);
  AddSummaryRow(summary, "mixed", harness, st, pass);
  if (!st.verify_ok) {
    fprintf(stderr, "verification failed: %s\n", st.verify_error.c_str());
  }
  return pass;
}

// ---------------------------------------------------------------------------
// Mixed campaign on simnet: same spec, virtual time, workers as sim tasks
// on dedicated client nodes.

bool RunSimMixed(const DriverConfig& cfg, Table* summary) {
  printf("\n=== mixed campaign · simnet · %zu providers · %zu workers x %"
         PRIu64 " ops ===\n",
         cfg.sim_providers, cfg.workers, cfg.spec.ops);
  blobseer::simnet::SimScheduler sched;
  CampaignStats st;
  bool pass = false;
  JsonObject doc;
  sched.Run([&] {
    blobseer::core::SimClusterOptions so;
    so.num_provider_nodes = cfg.sim_providers;
    so.num_client_nodes = cfg.workers;
    so.page_store = "memory";
    so.replication = cfg.replication;
    so.write_quorum = cfg.write_quorum;
    blobseer::core::SimCluster cluster(&sched, so);

    const uint64_t epoch = cluster.clock().NowMicros();
    std::vector<std::unique_ptr<blobseer::client::BlobClient>> clients;
    std::vector<std::unique_ptr<WorkloadRunner>> runners;
    std::vector<WorkloadSpec> specs;
    std::vector<Schedule> schedules;
    std::vector<Status> statuses(cfg.workers);
    std::vector<blobseer::simnet::SimScheduler::TaskId> tasks;
    for (size_t w = 0; w < cfg.workers; w++) {
      clients.push_back(cluster.NewClient());
      WorkloadSpec spec = cfg.spec;
      spec.seed += w;
      specs.push_back(spec);
      schedules.push_back(GenerateSchedule(spec));
      RunnerOptions ro;
      ro.window = cfg.window;
      ro.epoch_us = epoch;
      ro.timeline_bucket_us = 500 * 1000;
      runners.push_back(std::make_unique<WorkloadRunner>(
          clients[w].get(), &cluster.clock(), ro));
    }
    for (size_t w = 0; w < cfg.workers; w++) {
      uint32_t caller = sched.CurrentNode();
      sched.SetCurrentNode(cluster.client_node(w));
      tasks.push_back(sched.Spawn(
          [&, w] { statuses[w] = runners[w]->Run(specs[w], schedules[w]); }));
      sched.SetCurrentNode(caller);
    }
    for (auto id : tasks) sched.Join(id);

    st.verify_ok = true;
    for (size_t w = 0; w < cfg.workers; w++) {
      if (!statuses[w].ok()) {
        st.verify_ok = false;
        st.verify_error = statuses[w].ToString();
      }
      uint64_t checked = 0;
      Status vs = runners[w]->VerifyRetained(/*allow_not_found=*/false,
                                             &checked);
      if (!vs.ok() && st.verify_ok) {
        st.verify_ok = false;
        st.verify_error = vs.ToString();
      }
      st.retained_checked += checked;
      st.report.Merge(runners[w]->report());
      MergeClientStats(&st.client, clients[w]->GetStats());
    }
    st.elapsed_s = double(cluster.clock().NowMicros() - epoch) / 1e6;
    for (size_t i = 0; i < cfg.sim_providers; i++) {
      auto ps = cluster.provider(i).store().GetStats();
      st.store_pages += ps.pages;
      st.store_bytes += ps.bytes;
    }
    blobseer::pmanager::ProviderManagerClient pm(&cluster.transport(),
                                                 cluster.pm_address());
    auto pm_stats = pm.FetchStats();
    if (pm_stats.ok()) {
      st.pm = *pm_stats;
      st.have_pm = true;
    }
  });

  doc.PutString("bench", "workload");
  doc.PutString("campaign", "mixed");
  doc.PutString("harness", "simnet");
  doc.PutBool("quick", cfg.quick);
  doc.PutObject("spec", SpecJson(cfg.spec));
  JsonObject cl;
  cl.PutU64("providers", cfg.sim_providers);
  cl.PutU64("replication", cfg.replication);
  cl.PutU64("write_quorum", cfg.write_quorum);
  cl.PutU64("workers", cfg.workers);
  cl.PutU64("window", cfg.window);
  doc.PutObject("cluster", cl);
  doc.PutObject("results", StatsJson(st));
  JsonObject gates;
  bool mixed_pass = MixedGates(st, &gates);
  doc.PutObject("gates", gates);
  WriteJsonFile(cfg.json_prefix + "_mixed_simnet.json", doc);
  AddSummaryRow(summary, "mixed", "simnet", st, mixed_pass);
  if (!st.verify_ok) {
    fprintf(stderr, "verification failed: %s\n", st.verify_error.c_str());
  }
  pass = mixed_pass;
  return pass;
}

// ---------------------------------------------------------------------------
// 1000-provider chaos campaign on simnet: mixed zipfian traffic with a
// flash crowd, then mid-traffic a kill wave + decommission storm while the
// fabric latency triples (scripted congestion); the failure detector and
// rebuilder heal it and the campaign gates on zero incorrect reads plus
// time-to-restore-r (reported in the JSON).

bool RunScale(const DriverConfig& cfg, Table* summary) {
  printf("\n=== scale campaign · simnet · %zu providers · kill wave %zu · "
         "decommission %zu ===\n",
         cfg.scale_providers, cfg.kill_wave, cfg.decommission);

  WorkloadSpec spec;  // mixed + flash crowd, sized for the campaign
  spec.tenants = 4;
  spec.psize = 4096;
  spec.initial_pages = 2;
  spec.ops = cfg.quick ? 60 : 200;
  spec.read_fraction = 0.6;
  spec.zipf_theta = 0.9;
  spec.write_pages_max = 2;
  spec.read_pages_max = 2;
  spec.version_lag_max = 2;
  spec.flash_crowd_at = 0.55;  // lands during detection/rebuild
  spec.flash_crowd_ops = cfg.quick ? 16 : 64;

  const uint64_t hb_us = 2 * 1000 * 1000;
  const uint64_t suspect_us = 5 * 1000 * 1000;
  const uint64_t dead_us = 10 * 1000 * 1000;
  const uint64_t rebuild_us = 2 * 1000 * 1000;

  blobseer::simnet::SimScheduler sched;
  CampaignStats st;
  bool healed = false;
  double kill_at_s = -1;
  double restore_s = -1;
  uint64_t dead_seen = 0;
  uint64_t rebuilt_pages = 0;
  bool ran = false;

  sched.Run([&] {
    blobseer::core::SimClusterOptions so;
    so.num_provider_nodes = cfg.scale_providers;
    so.num_client_nodes = cfg.scale_workers;
    so.num_dht_nodes = cfg.scale_dht_nodes;
    so.page_store = "memory";
    so.replication = 3;
    so.write_quorum = 2;
    so.heartbeat_interval_us = hb_us;
    so.suspect_after_us = suspect_us;
    so.dead_after_us = dead_us;
    so.rebuild_interval_us = rebuild_us;
    so.rebuild_max_moves = 4096;
    blobseer::core::SimCluster cluster(&sched, so);

    const uint64_t epoch = cluster.clock().NowMicros();
    std::vector<std::unique_ptr<blobseer::client::BlobClient>> clients;
    std::vector<std::unique_ptr<WorkloadRunner>> runners;
    std::vector<WorkloadSpec> specs;
    std::vector<Schedule> schedules;
    std::vector<Status> statuses(cfg.scale_workers);
    uint64_t total_window_ops = 0;
    for (size_t w = 0; w < cfg.scale_workers; w++) {
      clients.push_back(cluster.NewClient());
      WorkloadSpec wspec = spec;
      wspec.seed += w;
      specs.push_back(wspec);
      schedules.push_back(GenerateSchedule(wspec));
      total_window_ops += WindowOpCount(schedules.back());
      RunnerOptions ro;
      ro.window = 16;
      ro.epoch_us = epoch;
      ro.timeline_bucket_us = 1000 * 1000;
      // Pace traffic so it spans the kill wave, the 10s detection window
      // and part of the rebuild — the flash crowd then lands while the
      // cluster is degraded instead of after everything has drained.
      ro.think_time_us = 150 * 1000;
      runners.push_back(std::make_unique<WorkloadRunner>(
          clients[w].get(), &cluster.clock(), ro));
    }

    std::vector<blobseer::simnet::SimScheduler::TaskId> tasks;
    for (size_t w = 0; w < cfg.scale_workers; w++) {
      uint32_t caller = sched.CurrentNode();
      sched.SetCurrentNode(cluster.client_node(w));
      tasks.push_back(sched.Spawn(
          [&, w] { statuses[w] = runners[w]->Run(specs[w], schedules[w]); }));
      sched.SetCurrentNode(caller);
    }

    // Chaos controller: waits for half the traffic, then kills a spread
    // wave + decommissions a few more providers while tripling the fabric
    // latency, and polls the provider manager until replication heals.
    auto progress = [&] {
      uint64_t done = 0;
      for (auto& r : runners) done += r->completed_ops();
      return done;
    };
    std::vector<size_t> victims;
    for (size_t i = 0; i < cfg.kill_wave; i++) {
      victims.push_back(i * cfg.scale_providers / cfg.kill_wave);
    }
    std::vector<size_t> drains;
    for (size_t i = 0; drains.size() < cfg.decommission; i++) {
      size_t candidate = cfg.scale_providers - 1 - i;
      bool is_victim = false;
      for (size_t v : victims) is_victim |= (v == candidate);
      if (!is_victim) drains.push_back(candidate);
    }
    uint32_t caller = sched.CurrentNode();
    sched.SetCurrentNode(cluster.pm_node());
    auto chaos = sched.Spawn([&] {
      while (progress() < total_window_ops / 2) {
        cluster.clock().SleepForMicros(100 * 1000);
      }
      const uint64_t kill_at = cluster.clock().NowMicros();
      kill_at_s = double(kill_at - epoch) / 1e6;
      const double base_latency = cluster.net().latency_us();
      cluster.net().set_latency_us(base_latency * 3);  // scripted congestion
      cluster.StopProviders(victims);
      for (size_t d : drains) cluster.Decommission(d);
      blobseer::pmanager::ProviderManagerClient pm(&cluster.transport(),
                                                   cluster.pm_address());
      const uint64_t deadline = kill_at + 600ull * 1000 * 1000;
      for (;;) {
        auto stats = pm.FetchStats();
        bool drained = true;
        for (size_t d : drains) {
          auto dr = cluster.Decommission(d);  // idempotent drain poll
          drained &= dr.ok() && dr->drained;
        }
        if (stats.ok()) {
          dead_seen = stats->dead;
          rebuilt_pages = stats->rebuilt_pages;
          if (stats->dead >= victims.size() && stats->under_replicated == 0 &&
              drained) {
            healed = true;
            restore_s =
                double(cluster.clock().NowMicros() - kill_at) / 1e6;
            break;
          }
        }
        if (cluster.clock().NowMicros() > deadline) break;
        cluster.clock().SleepForMicros(rebuild_us);
      }
      cluster.net().set_latency_us(base_latency);  // congestion clears
    });
    sched.SetCurrentNode(caller);

    for (auto id : tasks) sched.Join(id);
    sched.Join(chaos);

    st.verify_ok = true;
    for (size_t w = 0; w < cfg.scale_workers; w++) {
      if (!statuses[w].ok()) {
        st.verify_ok = false;
        st.verify_error = statuses[w].ToString();
      }
      uint64_t checked = 0;
      // Post-chaos: NotFound is clean, wrong bytes are not.
      Status vs =
          runners[w]->VerifyRetained(/*allow_not_found=*/true, &checked);
      if (!vs.ok() && st.verify_ok) {
        st.verify_ok = false;
        st.verify_error = vs.ToString();
      }
      st.retained_checked += checked;
      st.report.Merge(runners[w]->report());
      MergeClientStats(&st.client, clients[w]->GetStats());
    }
    st.elapsed_s = double(cluster.clock().NowMicros() - epoch) / 1e6;
    for (size_t i = 0; i < cfg.scale_providers; i++) {
      auto ps = cluster.provider(i).store().GetStats();
      st.store_pages += ps.pages;
      st.store_bytes += ps.bytes;
    }
    blobseer::pmanager::ProviderManagerClient pm(&cluster.transport(),
                                                 cluster.pm_address());
    auto pm_stats = pm.FetchStats();
    if (pm_stats.ok()) {
      st.pm = *pm_stats;
      st.have_pm = true;
    }
    ran = true;
  });

  const WorkloadReport& r = st.report;
  bool zero_incorrect = r.verify_failures == 0 && r.read_errors == 0;
  bool pass = ran && healed && zero_incorrect && st.verify_ok;

  JsonObject doc;
  doc.PutString("bench", "workload");
  doc.PutString("campaign", StrFormat("scale%zu", cfg.scale_providers));
  doc.PutString("harness", "simnet");
  doc.PutBool("quick", cfg.quick);
  doc.PutObject("spec", SpecJson(spec));
  JsonObject cl;
  cl.PutU64("providers", cfg.scale_providers);
  cl.PutU64("dht_nodes", cfg.scale_dht_nodes);
  cl.PutU64("replication", 3);
  cl.PutU64("write_quorum", 2);
  cl.PutU64("workers", cfg.scale_workers);
  cl.PutU64("heartbeat_interval_us", hb_us);
  cl.PutU64("suspect_after_us", suspect_us);
  cl.PutU64("dead_after_us", dead_us);
  cl.PutU64("rebuild_interval_us", rebuild_us);
  doc.PutObject("cluster", cl);
  doc.PutObject("results", StatsJson(st));
  JsonObject chaos;
  chaos.PutU64("kill_wave", cfg.kill_wave);
  chaos.PutU64("decommissioned", cfg.decommission);
  chaos.PutDouble("kill_at_s", kill_at_s);
  chaos.PutDouble("time_to_restore_s", restore_s);
  chaos.PutBool("healed", healed);
  chaos.PutU64("dead_detected", dead_seen);
  chaos.PutU64("rebuilt_pages", rebuilt_pages);
  doc.PutObject("chaos", chaos);
  JsonObject gates;
  gates.PutBool("healed", healed);
  gates.PutBool("zero_incorrect_reads", zero_incorrect);
  gates.PutBool("retained_verified", st.verify_ok);
  gates.PutBool("pass", pass);
  doc.PutObject("gates", gates);
  WriteJsonFile(cfg.json_prefix +
                    StrFormat("_scale%zu.json", cfg.scale_providers),
                doc);

  printf("  kill at %.2fs (virtual), %s, time-to-restore-r %.2fs, "
         "%" PRIu64 " rebuilt pages, %" PRIu64 " write errors during chaos\n",
         kill_at_s, healed ? "healed" : "NOT HEALED", restore_s,
         rebuilt_pages, r.write_errors);
  AddSummaryRow(summary, StrFormat("scale%zu", cfg.scale_providers), "simnet",
                st, pass);
  if (!st.verify_ok) {
    fprintf(stderr, "verification failed: %s\n", st.verify_error.c_str());
  }
  return pass;
}

void ShrinkForQuick(WorkloadSpec* spec) {
  spec->ops = std::min<uint64_t>(spec->ops, 64);
  spec->tenants = std::min<uint64_t>(spec->tenants, 4);
  spec->initial_pages = std::min<uint64_t>(spec->initial_pages, 8);
  spec->read_pages_max = std::min<uint64_t>(spec->read_pages_max, 4);
  spec->read_pages_min = std::min(spec->read_pages_min, spec->read_pages_max);
  spec->write_pages_max = std::min<uint64_t>(spec->write_pages_max, 4);
  spec->write_pages_min =
      std::min(spec->write_pages_min, spec->write_pages_max);
  spec->flash_crowd_ops = std::min<uint64_t>(spec->flash_crowd_ops, 16);
  spec->arrivals = std::min<uint64_t>(spec->arrivals, 2);
  spec->departures = std::min<uint64_t>(spec->departures, 2);
}

}  // namespace

int main(int argc, char** argv) {
  DriverConfig cfg;
  cfg.quick = QuickMode(argc, argv);
  std::string harness = FlagValue(argc, argv, "harness", "all");
  std::string campaign = FlagValue(argc, argv, "campaign", "all");
  std::string scenario = FlagValue(argc, argv, "scenario", "mixed");
  std::string spec_file = FlagValue(argc, argv, "spec", "");
  cfg.json_prefix =
      FlagValue(argc, argv, "json-prefix", cfg.json_prefix);

  // Spec resolution order: preset (or .wl file) -> quick sizing -> --wl:
  // overrides, so explicit overrides always win.
  blobseer::Result<WorkloadSpec> spec =
      spec_file.empty() ? WorkloadSpec::Preset(scenario)
                        : WorkloadSpec::ParseFile(spec_file);
  if (!spec.ok()) {
    fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  cfg.spec = *spec;
  if (cfg.quick) ShrinkForQuick(&cfg.spec);
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    if (arg.rfind("--wl:", 0) != 0) continue;
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      fprintf(stderr, "expected --wl:key=value, got %s\n", arg.c_str());
      return 1;
    }
    Status s = cfg.spec.Set(arg.substr(5, eq - 5), arg.substr(eq + 1));
    if (!s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  Status valid = cfg.spec.Validate();
  if (!valid.ok()) {
    fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 1;
  }

  cfg.workers = FlagU64(argc, argv, "workers", cfg.quick ? 2 : 4);
  cfg.providers = FlagU64(argc, argv, "providers", cfg.quick ? 4 : 6);
  cfg.sim_providers = FlagU64(argc, argv, "sim-providers", 50);
  cfg.replication =
      uint32_t(FlagU64(argc, argv, "replication", cfg.replication));
  cfg.write_quorum =
      uint32_t(FlagU64(argc, argv, "write-quorum", cfg.write_quorum));
  cfg.window = FlagU64(argc, argv, "window", cfg.window);
  cfg.scale_providers =
      FlagU64(argc, argv, "scale-providers", cfg.scale_providers);
  cfg.scale_workers = FlagU64(argc, argv, "scale-workers", cfg.scale_workers);
  cfg.scale_dht_nodes =
      FlagU64(argc, argv, "scale-dht-nodes", cfg.scale_dht_nodes);
  cfg.kill_wave =
      FlagU64(argc, argv, "kill-wave", cfg.quick ? 20 : cfg.kill_wave * 2);
  cfg.decommission = FlagU64(argc, argv, "decommission", cfg.decommission);

  printf("workload driver · scenario=%s%s · campaign=%s · harness=%s\n",
         cfg.spec.scenario.c_str(), cfg.quick ? " (quick)" : "",
         campaign.c_str(), harness.c_str());
  printf("schedule fingerprint: %016" PRIx64 "\n",
         GenerateSchedule(cfg.spec).Fingerprint());

  Table summary({"campaign", "harness", "window ops", "p99 read us",
                 "p99 write us", "errors", "pass"});
  bool all_pass = true;
  const bool run_mixed = campaign == "all" || campaign == "mixed";
  const bool run_scale = campaign == "all" || campaign == "scale";
  if (run_mixed && (harness == "all" || harness == "embedded")) {
    all_pass &= RunRealMixed(cfg, "embedded", &summary);
  }
  if (run_mixed && (harness == "all" || harness == "tcp")) {
    all_pass &= RunRealMixed(cfg, "tcp", &summary);
  }
  if (run_mixed && (harness == "all" || harness == "simnet")) {
    all_pass &= RunSimMixed(cfg, &summary);
  }
  if (run_scale) {
    all_pass &= RunScale(cfg, &summary);
  }

  printf("\n");
  summary.Print();
  printf("\nworkload driver: %s\n", all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}
