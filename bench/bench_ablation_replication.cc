// A6 — ablation: page replication factor sweep (r = 1/2/3) over the fig-2a
// append workload plus a sequential read-back, and a degraded read pass
// with one provider killed (r >= 2 must keep serving via failover).
//
// The paper's evaluation ran unreplicated RAM providers; production keeps
// data available under churn by storing each page on r distinct providers
// (section 3.1). Writes pay r transfers per page (write quorum = all), so
// the interesting question is how much of the fan-out the async pipeline
// hides. The exit code enforces the headline: r=2 append throughput must
// stay within 2.5x of r=1.
#include <cinttypes>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "core/cluster.h"

using namespace blobseer;

namespace {

struct SweepResult {
  double append_mbps = 0;
  double read_mbps = 0;
  double degraded_read_mbps = 0;  // one provider killed (r >= 2 only)
  uint64_t failover_reads = 0;
};

SweepResult RunSweep(uint32_t replication, uint64_t psize, uint64_t total,
                     uint64_t append_bytes) {
  SweepResult res;
  core::ClusterOptions opts;
  opts.num_providers = 6;
  opts.num_meta = 4;
  opts.replication = replication;
  auto cluster = core::EmbeddedCluster::Start(opts);
  if (!cluster.ok()) return res;
  auto client = (*cluster)->NewClient();
  if (!client.ok()) return res;
  auto id = (*client)->Create(psize);
  if (!id.ok()) return res;

  std::string chunk(append_bytes, 'r');
  Stopwatch timer;
  Version last = 0;
  for (uint64_t appended = 0; appended < total; appended += append_bytes) {
    auto v = (*client)->Append(*id, Slice(chunk));
    if (!v.ok()) {
      fprintf(stderr, "append failed (r=%u): %s\n", replication,
              v.status().ToString().c_str());
      return res;
    }
    last = *v;
  }
  res.append_mbps =
      static_cast<double>(total) / (1 << 20) / timer.ElapsedSeconds();
  if (!(*client)->Sync(*id, last).ok()) return res;

  auto read_pass = [&]() -> double {
    Stopwatch read_timer;
    std::string out;
    for (uint64_t off = 0; off < total; off += append_bytes) {
      if (!(*client)->Read(*id, last, off, append_bytes, &out).ok()) return -1;
    }
    return static_cast<double>(total) / (1 << 20) /
           read_timer.ElapsedSeconds();
  };
  res.read_mbps = read_pass();

  if (replication >= 2) {
    // Degraded mode: any single provider death must be absorbed by
    // failover to the surviving replicas.
    if (!(*cluster)->StopProvider(0).ok()) return res;
    res.degraded_read_mbps = read_pass();
    res.failover_reads = (*client)->GetStats().failover_reads;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  const uint64_t psize = bench::FlagU64(argc, argv, "psize_kb", 64) * 1024;
  const uint64_t total_mb =
      bench::FlagU64(argc, argv, "total_mb", quick ? 4 : 32);
  const uint64_t append_kb = bench::FlagU64(argc, argv, "append_kb", 512);

  printf("== Ablation A6: replication factor sweep ==\n");
  printf("   (6 providers, in-process transport; 1 client appends %" PRIu64
         " MB in %" PRIu64 " KB chunks, %" PRIu64
         " KB pages; degraded pass kills provider 0)\n\n",
         total_mb, append_kb, psize >> 10);

  bench::Table table({"r", "append MB/s", "read MB/s", "degraded read MB/s",
                      "failover reads"});
  double r1_append = 0, r2_append = 0;
  bool degraded_ok = true;
  for (uint32_t r = 1; r <= 3; r++) {
    SweepResult res =
        RunSweep(r, psize, total_mb << 20, append_kb << 10);
    if (r == 1) r1_append = res.append_mbps;
    if (r == 2) r2_append = res.append_mbps;
    if (r >= 2 && res.degraded_read_mbps <= 0) degraded_ok = false;
    table.AddRow({std::to_string(r), StrFormat("%.1f", res.append_mbps),
                  StrFormat("%.1f", res.read_mbps),
                  r >= 2 ? StrFormat("%.1f", res.degraded_read_mbps) : "-",
                  r >= 2 ? std::to_string(res.failover_reads) : "-"});
  }
  table.Print();

  const bool write_cost_ok =
      r1_append > 0 && r2_append > 0 && r2_append * 2.5 >= r1_append;
  printf("\nshape checks:\n");
  printf("  r=2 append within 2.5x of r=1: %.2fx slower %s\n",
         r2_append > 0 ? r1_append / r2_append : 0.0,
         write_cost_ok ? "[ok]" : "[REGRESSION]");
  printf("  degraded reads (one provider down) succeed at r>=2: %s\n",
         degraded_ok ? "[ok]" : "[REGRESSION]");
  return write_cost_ok && degraded_ok ? 0 : 1;
}
