// A6 — ablation: page replication factor and write quorum sweep over the
// fig-2a append workload plus a sequential read-back, a kill-mid-sweep
// degraded *write* pass and a degraded read pass.
//
// The paper's evaluation ran unreplicated RAM providers; production keeps
// data available under churn by storing each page on r distinct providers
// (section 3.1) and acking writes at w of r (ClientOptions::write_quorum,
// docs/liveness.md). Writes pay r transfers per page, so one question is
// how much of the fan-out the async pipeline hides; the other is write
// availability: mid-sweep a provider is killed (and stays in the
// allocation rotation — the failure detector is off here, the worst case)
// and the sweep keeps appending. A separate churn pass runs the full
// self-healing stack (heartbeats + rebuilder): kill mid-sweep, measure the
// time until replication is restored on the survivors and the degraded-read
// rate before/after the heal. The exit code enforces the headlines:
// r=2/w=2 append throughput stays within budget of r=1, degraded reads
// succeed at r >= 2, degraded writes SUCCEED at w < r (they fail by design
// at w = r — the chaos suite regression-gates that side), and the churn
// pass restores r with zero failovers afterwards.
#include <cinttypes>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "core/cluster.h"
#include "pmanager/client.h"

using namespace blobseer;

namespace {

struct SweepResult {
  double append_mbps = 0;
  double read_mbps = 0;
  double degraded_write_mbps = 0;  // appends after the mid-sweep kill
  bool degraded_write_ok = false;  // every post-kill append succeeded
  bool degraded_write_ran = false;
  double degraded_read_mbps = 0;
  uint64_t failover_reads = 0;
  uint64_t degraded_writes = 0;  // pages acked below a full replica set
};

SweepResult RunSweep(uint32_t replication, uint32_t quorum, uint64_t psize,
                     uint64_t total, uint64_t append_bytes) {
  SweepResult res;
  core::ClusterOptions opts;
  opts.num_providers = 6;
  opts.num_meta = 4;
  opts.replication = replication;
  opts.write_quorum = quorum;
  auto cluster = core::EmbeddedCluster::Start(opts);
  if (!cluster.ok()) return res;
  auto client = (*cluster)->NewClient();
  if (!client.ok()) return res;
  auto id = (*client)->Create(psize);
  if (!id.ok()) return res;

  std::string chunk(append_bytes, 'r');
  Stopwatch timer;
  Version last = 0;
  for (uint64_t appended = 0; appended < total; appended += append_bytes) {
    auto v = (*client)->Append(*id, Slice(chunk));
    if (!v.ok()) {
      fprintf(stderr, "append failed (r=%u w=%u): %s\n", replication, quorum,
              v.status().ToString().c_str());
      return res;
    }
    last = *v;
  }
  res.append_mbps =
      static_cast<double>(total) / (1 << 20) / timer.ElapsedSeconds();
  if (!(*client)->Sync(*id, last).ok()) return res;

  auto read_pass = [&](uint64_t upto) -> double {
    Stopwatch read_timer;
    std::string out;
    for (uint64_t off = 0; off < upto; off += append_bytes) {
      if (!(*client)->Read(*id, last, off, append_bytes, &out).ok()) return -1;
    }
    return static_cast<double>(upto) / (1 << 20) / read_timer.ElapsedSeconds();
  };
  res.read_mbps = read_pass(total);

  if (replication >= 2) {
    // Kill mid-sweep, then keep appending. The dead provider stays in the
    // rotation (no heartbeats here), so at w=r these appends fail by
    // design; at w < r the quorum must absorb every failed replica put.
    if (!(*cluster)->StopProvider(0).ok()) return res;
    res.degraded_write_ran = true;
    res.degraded_write_ok = true;
    Stopwatch degraded;
    uint64_t written = 0;
    for (uint64_t n = 0; n < total; n += append_bytes) {
      auto v = (*client)->Append(*id, Slice(chunk));
      if (!v.ok()) {
        res.degraded_write_ok = false;
        break;
      }
      last = *v;
      written += append_bytes;
    }
    if (res.degraded_write_ok && (*client)->Sync(*id, last).ok()) {
      res.degraded_write_mbps = static_cast<double>(written) / (1 << 20) /
                                degraded.ElapsedSeconds();
    }
    // Degraded reads: any single provider death must be absorbed by
    // failover to the surviving replicas (of the healthy-phase data).
    res.degraded_read_mbps = read_pass(total);
    res.failover_reads = (*client)->GetStats().failover_reads;
    res.degraded_writes = (*client)->GetStats().degraded_writes;
  }
  return res;
}

struct ChurnResult {
  bool ran = false;
  bool healed = false;        // r restored on the survivors within deadline
  double restore_seconds = 0; // kill -> under_replicated == 0
  uint64_t rebuilt_pages = 0;
  double during_read_mbps = 0;  // read pass right after the kill
  double after_read_mbps = 0;   // read pass after the heal, fresh client
  uint64_t during_failovers = 0;
  uint64_t after_failovers = 0;
  double during_rate = 0;  // failovers per page fetched
  double after_rate = 0;
};

// The sweeps above run with the detector off; this pass runs the full
// self-healing stack (heartbeats + background rebuilder), kills a provider
// mid-sweep and times how long until replication is back to r=3 on the
// survivors. Reads right after the kill quantify the degraded window
// (stale location entries fail over to survivors); a fresh client after
// the heal must see zero failovers.
ChurnResult RunChurnPass(uint64_t psize, uint64_t total,
                         uint64_t append_bytes) {
  ChurnResult res;
  core::ClusterOptions opts;
  opts.num_providers = 6;
  opts.num_meta = 4;
  opts.replication = 3;
  opts.write_quorum = 2;
  opts.heartbeat_interval_us = 10 * 1000;
  opts.suspect_after_us = 80 * 1000;
  opts.dead_after_us = 200 * 1000;
  opts.rebuild_interval_us = 20 * 1000;
  opts.rebuild_max_moves = 512;
  auto cluster = core::EmbeddedCluster::Start(opts);
  if (!cluster.ok()) return res;
  auto client = (*cluster)->NewClient();
  if (!client.ok()) return res;
  auto id = (*client)->Create(psize);
  if (!id.ok()) return res;

  std::string chunk(append_bytes, 'c');
  Version last = 0;
  uint64_t appended = 0;
  auto append_until = [&](uint64_t target) -> bool {
    for (; appended < target; appended += append_bytes) {
      auto v = (*client)->Append(*id, Slice(chunk));
      if (!v.ok()) {
        fprintf(stderr, "churn append failed: %s\n",
                v.status().ToString().c_str());
        return false;
      }
      last = *v;
    }
    return true;
  };
  if (!append_until(total / 2)) return res;
  res.ran = true;

  const ProviderId victim = (*cluster)->provider_id(0);
  Stopwatch restore;
  if (!(*cluster)->StopProvider(0).ok()) return res;
  // Keep appending through the kill: the w=2-of-3 quorum absorbs the
  // corpse until the detector drops it from the allocation rotation.
  if (!append_until(total)) return res;
  if (!(*client)->Sync(*id, last).ok()) return res;

  auto read_pass = [&](double* mbps, uint64_t* failovers) -> bool {
    auto reader = (*cluster)->NewClient();
    if (!reader.ok()) return false;
    Stopwatch t;
    std::string out;
    for (uint64_t off = 0; off < total; off += append_bytes) {
      if (!(*reader)->Read(*id, last, off, append_bytes, &out).ok())
        return false;
    }
    *mbps = static_cast<double>(total) / (1 << 20) / t.ElapsedSeconds();
    *failovers = (*reader)->GetStats().failover_reads;
    return true;
  };
  if (!read_pass(&res.during_read_mbps, &res.during_failovers)) return res;

  pmanager::ProviderManagerClient pm((*cluster)->transport(),
                                     (*cluster)->pmanager_address());
  auto* table = (*cluster)->pmanager().location_table();
  while (restore.ElapsedSeconds() < 60.0 && !res.healed) {
    auto st = pm.FetchStats();
    if (!st.ok()) return res;
    res.rebuilt_pages = st->rebuilt_pages;
    res.healed = st->dead >= 1 && st->under_replicated == 0 &&
                 table->CountOn(victim) == 0;
    if (!res.healed) RealClock::Default()->SleepForMicros(10 * 1000);
  }
  res.restore_seconds = restore.ElapsedSeconds();
  if (!res.healed) return res;
  if (!read_pass(&res.after_read_mbps, &res.after_failovers)) return res;

  const double pieces = static_cast<double>(total) / psize;
  res.during_rate = static_cast<double>(res.during_failovers) / pieces;
  res.after_rate = static_cast<double>(res.after_failovers) / pieces;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  const uint64_t psize = bench::FlagU64(argc, argv, "psize_kb", 64) * 1024;
  const uint64_t total_mb =
      bench::FlagU64(argc, argv, "total_mb", quick ? 4 : 32);
  const uint64_t append_kb = bench::FlagU64(argc, argv, "append_kb", 512);

  printf("== Ablation A6: replication factor x write quorum sweep ==\n");
  printf("   (6 providers, in-process transport; 1 client appends %" PRIu64
         " MB in %" PRIu64 " KB chunks, %" PRIu64
         " KB pages; degraded passes kill provider 0 mid-sweep and keep "
         "appending)\n\n",
         total_mb, append_kb, psize >> 10);

  struct Config {
    uint32_t r, w;
  };
  const Config kConfigs[] = {{1, 1}, {2, 2}, {2, 1}, {3, 3}, {3, 2}};

  bench::Table table({"r", "w", "append MB/s", "read MB/s",
                      "degraded write MB/s", "degraded read MB/s",
                      "failover reads", "short-quorum pages"});
  double r1_append = 0, r2_append = 0;
  bool degraded_reads_ok = true;
  bool degraded_writes_ok = true;
  bench::JsonObject sweep_json;
  for (const Config& cfg : kConfigs) {
    SweepResult res =
        RunSweep(cfg.r, cfg.w, psize, total_mb << 20, append_kb << 10);
    bench::JsonObject row;
    row.PutU64("r", cfg.r);
    row.PutU64("w", cfg.w);
    row.PutDouble("append_mbps", res.append_mbps);
    row.PutDouble("read_mbps", res.read_mbps);
    if (res.degraded_write_ran) {
      row.PutBool("degraded_write_ok", res.degraded_write_ok);
      row.PutDouble("degraded_write_mbps", res.degraded_write_mbps);
      row.PutDouble("degraded_read_mbps", res.degraded_read_mbps);
      row.PutU64("failover_reads", res.failover_reads);
      row.PutU64("short_quorum_pages", res.degraded_writes);
    }
    sweep_json.PutObject(StrFormat("r%u_w%u", cfg.r, cfg.w), row);
    if (cfg.r == 1 && cfg.w == 1) r1_append = res.append_mbps;
    if (cfg.r == 2 && cfg.w == 2) r2_append = res.append_mbps;
    if (cfg.r >= 2 && res.degraded_read_mbps <= 0) degraded_reads_ok = false;
    if (res.degraded_write_ran && cfg.w < cfg.r && !res.degraded_write_ok)
      degraded_writes_ok = false;
    std::string degraded_write_cell = "-";
    if (res.degraded_write_ran) {
      degraded_write_cell = res.degraded_write_ok
                                ? StrFormat("%.1f", res.degraded_write_mbps)
                                : std::string("fail");
    }
    table.AddRow({std::to_string(cfg.r), std::to_string(cfg.w),
                  StrFormat("%.1f", res.append_mbps),
                  StrFormat("%.1f", res.read_mbps), degraded_write_cell,
                  cfg.r >= 2 ? StrFormat("%.1f", res.degraded_read_mbps) : "-",
                  cfg.r >= 2 ? std::to_string(res.failover_reads) : "-",
                  cfg.r >= 2 ? std::to_string(res.degraded_writes) : "-"});
  }
  table.Print();

  printf("\n== Churn pass: kill mid-sweep with self-healing on ==\n");
  printf("   (r=3 w=2, heartbeats 10ms / dead 200ms / rebuild 20ms; kill "
         "provider 0 at half-sweep, keep appending, read degraded, wait for "
         "the rebuilder, read again)\n\n");
  ChurnResult churn = RunChurnPass(psize, total_mb << 20, append_kb << 10);
  const bool churn_ok =
      churn.ran && churn.healed && churn.after_failovers == 0;
  if (churn.ran) {
    printf("  time-to-restore-r:    %s\n",
           churn.healed ? StrFormat("%.2f s (%" PRIu64 " pages rebuilt)",
                                    churn.restore_seconds,
                                    churn.rebuilt_pages)
                              .c_str()
                        : "NOT RESTORED within 60 s");
    printf("  degraded reads:       %.1f MB/s, %" PRIu64
           " failovers (%.3f per page)\n",
           churn.during_read_mbps, churn.during_failovers, churn.during_rate);
    printf("  post-heal reads:      %.1f MB/s, %" PRIu64
           " failovers (%.3f per page)\n",
           churn.after_read_mbps, churn.after_failovers, churn.after_rate);
  } else {
    printf("  churn pass failed to run\n");
  }

  // Under parallel ctest load (smoke mode) the fsync-free inproc numbers
  // get noisy; the quick gate carries headroom, the full run stays strict.
  const double budget = quick ? 3.5 : 2.5;
  const bool write_cost_ok =
      r1_append > 0 && r2_append > 0 && r2_append * budget >= r1_append;
  printf("\nshape checks:\n");
  printf("  r=2/w=2 append within %.1fx of r=1: %.2fx slower %s\n", budget,
         r2_append > 0 ? r1_append / r2_append : 0.0,
         write_cost_ok ? "[ok]" : "[REGRESSION]");
  printf("  degraded reads (one provider down) succeed at r>=2: %s\n",
         degraded_reads_ok ? "[ok]" : "[REGRESSION]");
  printf("  degraded writes (kill mid-sweep) succeed at w<r: %s\n",
         degraded_writes_ok ? "[ok]" : "[REGRESSION]");
  printf("  churn pass restores r=3, post-heal reads clean: %s\n",
         churn_ok ? "[ok]" : "[REGRESSION]");
  printf("  (w=r degraded writes fail by design; chaos_test gates that "
         "side)\n");

  bench::JsonObject config;
  config.PutU64("psize", psize);
  config.PutU64("total_mb", total_mb);
  config.PutU64("append_kb", append_kb);
  bench::JsonObject churn_json;
  churn_json.PutBool("ran", churn.ran);
  churn_json.PutBool("healed", churn.healed);
  churn_json.PutDouble("time_to_restore_s", churn.restore_seconds);
  churn_json.PutU64("rebuilt_pages", churn.rebuilt_pages);
  churn_json.PutDouble("degraded_read_mbps", churn.during_read_mbps);
  churn_json.PutDouble("post_heal_read_mbps", churn.after_read_mbps);
  churn_json.PutU64("degraded_failovers", churn.during_failovers);
  churn_json.PutU64("post_heal_failovers", churn.after_failovers);
  bench::JsonObject gates;
  gates.PutDouble("r2w2_slowdown_vs_r1",
                  r2_append > 0 ? r1_append / r2_append : 0.0);
  gates.PutDouble("gate_max_slowdown", budget);
  gates.PutBool("write_cost_ok", write_cost_ok);
  gates.PutBool("degraded_reads_ok", degraded_reads_ok);
  gates.PutBool("degraded_writes_ok", degraded_writes_ok);
  gates.PutBool("churn_ok", churn_ok);
  bench::JsonObject doc;
  doc.PutString("bench", "ablation_replication");
  doc.PutBool("quick", quick);
  doc.PutObject("config", config);
  doc.PutObject("sweep", sweep_json);
  doc.PutObject("churn", churn_json);
  doc.PutObject("gates", gates);
  const std::string json_path =
      bench::FlagValue(argc, argv, "json", "BENCH_replication.json");
  if (!bench::WriteJsonFile(json_path, doc)) return 1;

  return write_cost_ok && degraded_reads_ok && degraded_writes_ok && churn_ok
             ? 0
             : 1;
}
