// Workload subsystem tests: spec parsing and validation, schedule
// determinism (same spec => byte-identical schedule, the property campaign
// artifacts depend on), schedule shape (creates before use, churn and flash
// crowds land where the spec says), histogram percentiles, and end-to-end
// runner campaigns on the embedded and simnet harnesses with
// reference-model-verified reads. A scale smoke drives SimCluster at 300
// providers through a kill wave to hold the line on the O(n) registration
// and teardown paths the 1000-provider campaigns need.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/cluster.h"
#include "core/sim_cluster.h"
#include "pmanager/client.h"
#include "workload/generator.h"
#include "workload/histogram.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace blobseer {
namespace {

using workload::GenerateSchedule;
using workload::LatencyHistogram;
using workload::Op;
using workload::OpKind;
using workload::RunnerOptions;
using workload::Schedule;
using workload::Timeline;
using workload::WorkloadReport;
using workload::WorkloadRunner;
using workload::WorkloadSpec;

// ---------------------------------------------------------------------------
// Spec.

TEST(WorkloadSpec, PresetsExpandAndValidate) {
  for (const auto& name : WorkloadSpec::PresetNames()) {
    auto spec = WorkloadSpec::Preset(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec->scenario, name);
    EXPECT_TRUE(spec->Validate().ok()) << name;
  }
  EXPECT_FALSE(WorkloadSpec::Preset("no_such_preset").ok());
}

TEST(WorkloadSpec, ParseAppliesScenarioFirstThenOverrides) {
  auto spec = WorkloadSpec::Parse(
      "# comment\n"
      "ops = 99\n"
      "scenario = flash_crowd\n"   // selects preset even though it is late
      "zipf_theta = 1.25\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->scenario, "flash_crowd");
  EXPECT_EQ(spec->ops, 99u);                 // override survived the preset
  EXPECT_DOUBLE_EQ(spec->zipf_theta, 1.25);
  EXPECT_GT(spec->flash_crowd_ops, 0u);      // preset field kept
}

TEST(WorkloadSpec, RejectsBadInput) {
  EXPECT_FALSE(WorkloadSpec::Parse("bogus_key = 3\n").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("ops = twelve\n").ok());
  EXPECT_FALSE(WorkloadSpec::Parse("psize = 3000\n").ok());  // not 2^k
  EXPECT_FALSE(WorkloadSpec::Parse("read_fraction = 1.5\n").ok());
  // Departures must leave at least one tenant.
  EXPECT_FALSE(WorkloadSpec::Parse("tenants = 2\ndepartures = 2\n").ok());
  WorkloadSpec spec;
  EXPECT_FALSE(spec.Set("read_pages_min", "9").ok() &&
               spec.Validate().ok());  // min > max
}

TEST(WorkloadSpec, ItemsRoundTrip) {
  auto spec = WorkloadSpec::Preset("tenant_churn");
  ASSERT_TRUE(spec.ok());
  WorkloadSpec rebuilt;
  for (const auto& [key, value] : spec->Items()) {
    ASSERT_TRUE(rebuilt.Set(key, value).ok()) << key << "=" << value;
  }
  EXPECT_EQ(rebuilt.DebugString(), spec->DebugString());
}

// ---------------------------------------------------------------------------
// Generator determinism + shape.

TEST(WorkloadGenerator, SameSpecSameSchedule) {
  for (const auto& name : WorkloadSpec::PresetNames()) {
    auto spec = WorkloadSpec::Preset(name);
    ASSERT_TRUE(spec.ok());
    spec->ops = 256;
    Schedule a = GenerateSchedule(*spec);
    Schedule b = GenerateSchedule(*spec);
    EXPECT_EQ(a.Canonical(), b.Canonical()) << name;
    EXPECT_EQ(a.Fingerprint(), b.Fingerprint()) << name;
  }
}

TEST(WorkloadGenerator, SeedChangesSchedule) {
  auto spec = WorkloadSpec::Preset("mixed");
  ASSERT_TRUE(spec.ok());
  Schedule a = GenerateSchedule(*spec);
  spec->seed++;
  Schedule b = GenerateSchedule(*spec);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(WorkloadGenerator, PayloadIsDeterministic) {
  EXPECT_EQ(workload::MakePayload(7, 64), workload::MakePayload(7, 64));
  EXPECT_NE(workload::MakePayload(7, 64), workload::MakePayload(8, 64));
  EXPECT_EQ(workload::MakePayload(7, 4096).size(), 4096u);
}

TEST(WorkloadGenerator, TenantsCreatedBeforeUseAndChurnApplied) {
  auto spec = WorkloadSpec::Preset("tenant_churn");
  ASSERT_TRUE(spec.ok());
  spec->ops = 300;
  Schedule s = GenerateSchedule(*spec);
  std::set<uint32_t> created;
  uint64_t creates = 0, departs = 0;
  for (const Op& op : s.ops) {
    if (op.kind == OpKind::kCreate) {
      creates++;
      created.insert(op.tenant);
      continue;
    }
    EXPECT_TRUE(created.count(op.tenant)) << op.DebugString();
    if (op.kind == OpKind::kDepart) departs++;
  }
  EXPECT_EQ(creates, spec->tenants + spec->arrivals);
  EXPECT_EQ(departs, spec->departures);
}

TEST(WorkloadGenerator, FlashCrowdBurstsOnTheHotTenant) {
  auto spec = WorkloadSpec::Preset("flash_crowd");
  ASSERT_TRUE(spec.ok());
  spec->ops = 200;
  spec->flash_crowd_ops = 32;
  Schedule s = GenerateSchedule(*spec);
  uint64_t flash = 0;
  std::set<uint32_t> targets;
  for (const Op& op : s.ops) {
    if (!op.flash) continue;
    flash++;
    targets.insert(op.tenant);
    EXPECT_EQ(op.kind, OpKind::kRead) << op.DebugString();
    EXPECT_EQ(op.version_lag, 0u) << op.DebugString();
  }
  EXPECT_EQ(flash, spec->flash_crowd_ops);
  EXPECT_EQ(targets.size(), 1u);  // everyone piles onto one blob
}

TEST(WorkloadGenerator, ZipfSkewsTowardHotTenantsAndMixHolds) {
  auto spec = WorkloadSpec::Preset("mixed");
  ASSERT_TRUE(spec.ok());
  spec->ops = 4000;
  spec->zipf_theta = 1.1;
  spec->read_fraction = 0.7;
  Schedule s = GenerateSchedule(*spec);
  std::map<uint32_t, uint64_t> per_tenant;
  uint64_t reads = 0, scheduled = 0;
  for (const Op& op : s.ops) {
    if (op.kind == OpKind::kCreate || op.kind == OpKind::kDepart) continue;
    scheduled++;
    per_tenant[op.tenant]++;
    if (op.kind == OpKind::kRead) reads++;
  }
  // Hottest tenant must dominate the coldest by a wide margin at theta=1.1.
  EXPECT_GT(per_tenant[0], 4 * per_tenant[uint32_t(spec->tenants - 1)] + 1);
  double read_frac = double(reads) / double(scheduled);
  EXPECT_NEAR(read_frac, 0.7, 0.05);
}

// ---------------------------------------------------------------------------
// Histogram.

TEST(WorkloadHistogram, ExactBelowSixteenAndPercentiles) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; v++) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min_us(), 1u);
  EXPECT_EQ(h.max_us(), 1000u);
  // ~6% relative bucket error above 16us.
  EXPECT_NEAR(double(h.Percentile(0.5)), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(double(h.Percentile(0.99)), 990.0, 990.0 * 0.07);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
}

TEST(WorkloadHistogram, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, all;
  for (uint64_t v = 0; v < 500; v++) {
    a.Record(v * 3 + 1);
    all.Record(v * 3 + 1);
    b.Record(v * 7 + 2);
    all.Record(v * 7 + 2);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.max_us(), all.max_us());
  EXPECT_EQ(a.Percentile(0.5), all.Percentile(0.5));
  EXPECT_EQ(a.Percentile(0.999), all.Percentile(0.999));
}

TEST(WorkloadHistogram, TimelineBucketsAndMerge) {
  Timeline t;
  t.Init(1000, 1000);  // epoch 1000us, 1ms buckets
  t.Record(1500, 10);
  t.Record(2500, 20);
  t.Record(900, 5);  // before epoch: clamps to bucket 0
  Timeline u;
  u.Init(1000, 1000);
  u.Record(2600, 40);
  t.Merge(u);
  ASSERT_GE(t.ops().size(), 2u);
  EXPECT_EQ(t.ops()[0], 2u);
  EXPECT_EQ(t.bytes()[0], 15u);
  EXPECT_EQ(t.ops()[1], 2u);
  EXPECT_EQ(t.bytes()[1], 60u);
}

// ---------------------------------------------------------------------------
// End-to-end campaigns.

void ExpectCleanReport(const WorkloadReport& r) {
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_EQ(r.read_errors, 0u);
  EXPECT_EQ(r.not_found_reads, 0u);
  EXPECT_EQ(r.write_errors, 0u);
  EXPECT_GT(r.verified_reads, 0u);
  EXPECT_GT(r.appends + r.writes, 0u);
  EXPECT_EQ(r.read_latency.count(), r.reads);
  EXPECT_EQ(r.write_latency.count(), r.appends + r.writes);
}

TEST(WorkloadRunnerE2E, MixedCampaignOnEmbeddedCluster) {
  core::ClusterOptions co;
  co.num_providers = 4;
  co.num_meta = 4;
  co.page_store = "memory";
  co.replication = 2;
  auto cluster = core::EmbeddedCluster::Start(co);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());

  auto spec = WorkloadSpec::Preset("mixed");
  ASSERT_TRUE(spec.ok());
  spec->tenants = 4;
  spec->initial_pages = 2;
  spec->ops = 96;
  Schedule schedule = GenerateSchedule(*spec);

  WorkloadRunner runner(client->get(), RealClock::Default());
  ASSERT_TRUE(runner.Run(*spec, schedule).ok());
  ExpectCleanReport(runner.report());
  EXPECT_EQ(runner.completed_ops(),
            runner.report().reads + runner.report().appends +
                runner.report().writes);

  uint64_t checked = 0;
  EXPECT_TRUE(runner.VerifyRetained(/*allow_not_found=*/false, &checked).ok());
  EXPECT_GT(checked, 0u);
}

TEST(WorkloadRunnerE2E, ChurnCampaignOnSimnet) {
  simnet::SimScheduler sched;
  bool checked_flag = false;
  sched.Run([&] {
    core::SimClusterOptions so;
    so.num_provider_nodes = 8;
    so.num_client_nodes = 1;
    so.page_store = "memory";
    so.replication = 2;
    core::SimCluster cluster(&sched, so);
    auto client = cluster.NewClient();

    auto spec = WorkloadSpec::Preset("tenant_churn");
    ASSERT_TRUE(spec.ok());
    spec->ops = 96;
    spec->initial_pages = 2;
    Schedule schedule = GenerateSchedule(*spec);

    WorkloadRunner runner(client.get(), &cluster.clock());
    uint32_t caller = sched.CurrentNode();
    sched.SetCurrentNode(cluster.client_node(0));
    auto task = sched.Spawn(
        [&] { ASSERT_TRUE(runner.Run(*spec, schedule).ok()); });
    sched.SetCurrentNode(caller);
    sched.Join(task);

    ExpectCleanReport(runner.report());
    EXPECT_GT(runner.report().departures, 0u);
    // Virtual-time latencies are deterministic and nonzero.
    EXPECT_GT(runner.report().read_latency.min_us(), 0u);

    uint64_t checked = 0;
    EXPECT_TRUE(
        runner.VerifyRetained(/*allow_not_found=*/false, &checked).ok());
    EXPECT_GT(checked, 0u);
    checked_flag = true;
  });
  EXPECT_TRUE(checked_flag);
}

// ---------------------------------------------------------------------------
// Scale smoke: the registration, heartbeat and wave-teardown paths must
// stay O(n)-ish or the 1000-provider campaigns stop fitting in CI. 300
// providers with a capped DHT ring and a 30-victim kill wave runs in
// seconds; a reintroduced O(n^2) scan shows up as a timeout here first.

TEST(WorkloadScale, SimClusterKillWaveAt300Providers) {
  constexpr size_t kProviders = 300;
  constexpr size_t kWave = 30;
  constexpr uint64_t kBeat = 500 * 1000;
  simnet::SimScheduler sched;
  bool checked_flag = false;
  sched.Run([&] {
    core::SimClusterOptions so;
    so.num_provider_nodes = kProviders;
    so.num_client_nodes = 1;
    so.num_dht_nodes = 16;
    so.page_store = "memory";
    so.replication = 3;
    so.write_quorum = 2;
    so.heartbeat_interval_us = kBeat;
    so.suspect_after_us = 3 * kBeat;
    so.dead_after_us = 6 * kBeat;
    core::SimCluster cluster(&sched, so);
    ASSERT_EQ(cluster.dht_addresses().size(), 16u);

    pmanager::ProviderManagerClient pm(&cluster.transport(),
                                       cluster.pm_address());
    auto before = pm.FetchStats();
    ASSERT_TRUE(before.ok());
    EXPECT_EQ(before->providers, kProviders);

    // Write a little traffic so victims hold pages.
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    std::string payload(4096 * 8, 'w');
    auto v = client->Append(*id, payload);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(client->Sync(*id, *v).ok());

    std::vector<size_t> victims;
    for (size_t i = 0; i < kWave; i++)
      victims.push_back(i * kProviders / kWave);
    ASSERT_TRUE(cluster.StopProviders(victims).ok());

    // Let the detector expire the wave, then the directory must show
    // exactly the victims dead and everyone else alive.
    cluster.clock().SleepForMicros(so.dead_after_us + 2 * kBeat);
    auto after = pm.FetchStats();
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->dead, kWave);
    EXPECT_EQ(after->alive, kProviders - kWave);

    // Survivors still serve the blob (r=3 spread absorbs a 10% wave).
    std::string out;
    EXPECT_TRUE(client->Read(*id, *v, 0, payload.size(), &out).ok());
    EXPECT_EQ(out, payload);
    checked_flag = true;
  });
  EXPECT_TRUE(checked_flag);
}

// Registration must be address-stable (same address re-registers under the
// same id) — RestartProvider and the scale campaigns depend on it.
TEST(WorkloadScale, ReRegistrationKeepsIds) {
  simnet::SimScheduler sched;
  bool checked_flag = false;
  sched.Run([&] {
    core::SimClusterOptions so;
    so.num_provider_nodes = 20;
    so.page_store = "memory";
    core::SimCluster cluster(&sched, so);
    pmanager::ProviderManagerClient pm(&cluster.transport(),
                                       cluster.pm_address());
    for (size_t i = 0; i < cluster.num_provider_nodes(); i++) {
      auto again = pm.Register(cluster.provider_addresses()[i], 0);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again, cluster.provider_id(i)) << i;
    }
    auto stats = pm.FetchStats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->providers, cluster.num_provider_nodes());
    checked_flag = true;
  });
  EXPECT_TRUE(checked_flag);
}

}  // namespace
}  // namespace blobseer
