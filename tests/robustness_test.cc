// Robustness: decoder fuzzing (malformed bytes must fail cleanly, never
// crash), protocol misuse, and a mixed read/write/branch stress run with
// full reference checking.
#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "core/cluster.h"
#include "dht/messages.h"
#include "meta/node.h"
#include "pmanager/messages.h"
#include "provider/messages.h"
#include "reference_blob.h"
#include "rpc/call.h"
#include "vmanager/messages.h"

namespace blobseer {
namespace {

using testing::ReferenceBlob;
using testing::TestPayload;

// --- Decoder fuzzing --------------------------------------------------------

template <typename Msg>
void FuzzDecode(uint64_t seed, int iters) {
  Rng rng(seed);
  for (int i = 0; i < iters; i++) {
    size_t len = rng.Uniform(200);
    std::string junk(len, '\0');
    for (auto& c : junk) c = static_cast<char>(rng.Next());
    Msg msg;
    BinaryReader r{Slice(junk)};
    // Must return (any status); must not crash or hang.
    (void)msg.DecodeFrom(&r);
  }
}

TEST(FuzzDecodeTest, MetaNodeSurvivesGarbage) {
  FuzzDecode<meta::MetaNode>(1, 3000);
}
TEST(FuzzDecodeTest, VmTicketSurvivesGarbage) {
  FuzzDecode<vmanager::AssignTicket>(2, 3000);
}
TEST(FuzzDecodeTest, DirectoryResponseSurvivesGarbage) {
  FuzzDecode<pmanager::DirectoryResponse>(3, 3000);
}
TEST(FuzzDecodeTest, MultiGetResponseSurvivesGarbage) {
  FuzzDecode<dht::MultiGetResponse>(4, 3000);
}
TEST(FuzzDecodeTest, ProviderReadRequestSurvivesGarbage) {
  FuzzDecode<provider::ReadRequest>(5, 3000);
}
TEST(FuzzDecodeTest, BlobDescriptorSurvivesGarbage) {
  FuzzDecode<BlobDescriptor>(6, 3000);
}

// Truncation at every byte offset of a valid encoding must fail cleanly or
// succeed (when the prefix happens to decode), never crash.
TEST(FuzzDecodeTest, TruncationSweepOnMetaNode) {
  meta::MetaNode leaf = meta::MetaNode::Leaf(
      {meta::PageFragment{PageId{1, 2}, {3}, 4, 5, 6},
       meta::PageFragment{PageId{7, 8}, {9}, 10, 11, 12}},
      42, 3);
  BinaryWriter w;
  leaf.EncodeTo(&w);
  for (size_t cut = 0; cut < w.buffer().size(); cut++) {
    meta::MetaNode decoded;
    BinaryReader r{Slice(w.buffer().data(), cut)};
    Status s = decoded.DecodeFrom(&r);
    EXPECT_FALSE(s.ok()) << "decoded from truncated prefix " << cut;
  }
}

// --- Service-level misuse ----------------------------------------------------

TEST(MisuseTest, ServicesRejectGarbagePayloads) {
  core::ClusterOptions opts;
  opts.num_providers = 1;
  opts.num_meta = 1;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  Rng rng(17);
  std::vector<rpc::Method> methods = {
      rpc::Method::kDhtPut,          rpc::Method::kDhtGet,
      rpc::Method::kProviderWrite,   rpc::Method::kProviderRead,
      rpc::Method::kPmRegister,      rpc::Method::kPmAllocate,
      rpc::Method::kVmCreateBlob,    rpc::Method::kVmAssignVersion,
      rpc::Method::kVmBranch,        rpc::Method::kVmGetSize,
  };
  std::vector<std::string> addrs = {
      (*cluster)->dht_addresses()[0], (*cluster)->dht_addresses()[0],
      (*cluster)->provider_addresses()[0], (*cluster)->provider_addresses()[0],
      (*cluster)->pmanager_address(), (*cluster)->pmanager_address(),
      (*cluster)->vmanager_address(), (*cluster)->vmanager_address(),
      (*cluster)->vmanager_address(), (*cluster)->vmanager_address(),
  };
  for (size_t m = 0; m < methods.size(); m++) {
    auto ch = (*cluster)->transport()->Connect(addrs[m]);
    ASSERT_TRUE(ch.ok());
    for (int i = 0; i < 50; i++) {
      std::string junk(rng.Uniform(64), '\0');
      for (auto& c : junk) c = static_cast<char>(rng.Next());
      std::string out;
      // Any status is fine; the service must stay alive.
      (void)(*ch)->Call(methods[m], Slice(junk), &out);
    }
  }
  // Cluster still functional after the abuse.
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  client::Blob blob(client->get(), *id);
  auto v = blob.AppendSync(TestPayload(1, 100));
  ASSERT_TRUE(v.ok());
  std::string outb;
  ASSERT_TRUE(blob.Read(*v, 0, 100, &outb).ok());
  EXPECT_EQ(outb, TestPayload(1, 100));
}

TEST(MisuseTest, WrongMethodBlockForService) {
  core::ClusterOptions opts;
  opts.num_providers = 1;
  opts.num_meta = 1;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto ch = (*cluster)->transport()->Connect((*cluster)->vmanager_address());
  ASSERT_TRUE(ch.ok());
  std::string out;
  Status s = (*ch)->Call(rpc::Method::kDhtPut, Slice(""), &out);
  EXPECT_TRUE(s.IsNotSupported());
}

// --- Mixed stress with reference checking ------------------------------------

TEST(StressTest, MixedWorkloadKeepsEverySnapshotConsistent) {
  core::ClusterOptions opts;
  opts.num_providers = 5;
  opts.num_meta = 5;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto owner = (*cluster)->NewClient();
  ASSERT_TRUE(owner.ok());
  auto id = (*owner)->Create(128);
  ASSERT_TRUE(id.ok());
  client::Blob blob(owner->get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 2000)).ok());

  constexpr int kThreads = 6;
  constexpr int kOpsEach = 15;
  std::mutex mu;
  // version -> (is_append, offset, data); appends record offset at publish.
  std::map<Version, std::tuple<bool, uint64_t, std::string>> ops;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      auto client = (*cluster)->NewClient();
      ASSERT_TRUE(client.ok());
      Rng rng(t * 31 + 7);
      for (int i = 0; i < kOpsEach; i++) {
        std::string data = TestPayload(t * 1000 + i, 1 + rng.Uniform(700));
        if (rng.OneIn(2)) {
          auto v = (*client)->Append(*id, Slice(data));
          ASSERT_TRUE(v.ok()) << v.status().ToString();
          std::lock_guard<std::mutex> lock(mu);
          ops[*v] = {true, 0, data};
        } else {
          uint64_t off = rng.Uniform(1500);
          auto v = (*client)->Write(*id, Slice(data), off);
          ASSERT_TRUE(v.ok()) << v.status().ToString();
          std::lock_guard<std::mutex> lock(mu);
          ops[*v] = {false, off, data};
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(ops.size(), size_t{kThreads * kOpsEach});
  ASSERT_TRUE((*owner)->Sync(*id, ops.rbegin()->first).ok());

  ReferenceBlob ref;
  ref.ApplyAppend(TestPayload(0, 2000));
  for (auto& [v, op] : ops) {
    auto& [is_append, off, data] = op;
    Version got = is_append ? ref.ApplyAppend(data) : ref.ApplyWrite(data, off);
    ASSERT_EQ(got, v);
  }
  for (Version v = 1; v <= ref.latest(); v += 3) {
    std::string out;
    ASSERT_TRUE((*owner)->Read(*id, v, 0, ref.Size(v), &out).ok()) << v;
    ASSERT_EQ(out, ref.Contents(v)) << "snapshot " << v;
  }
  std::string out;
  Version last = ref.latest();
  ASSERT_TRUE((*owner)->Read(*id, last, 0, ref.Size(last), &out).ok());
  ASSERT_EQ(out, ref.Contents(last));
}

}  // namespace
}  // namespace blobseer
