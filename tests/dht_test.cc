// DHT tests: store semantics, placement distribution, replicated client,
// replica failover.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "common/random.h"
#include "common/string_util.h"
#include "dht/client.h"
#include "dht/placement.h"
#include "dht/service.h"
#include "dht/store.h"
#include "rpc/inproc.h"

namespace blobseer::dht {
namespace {

TEST(KvStoreTest, PutGetDelete) {
  KvStore store(4);
  std::string v;
  EXPECT_TRUE(store.Get(Slice("k"), &v).IsNotFound());
  ASSERT_TRUE(store.Put(Slice("k"), Slice("v1")).ok());
  ASSERT_TRUE(store.Get(Slice("k"), &v).ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE(store.Put(Slice("k"), Slice("v2")).ok());  // overwrite allowed
  ASSERT_TRUE(store.Get(Slice("k"), &v).ok());
  EXPECT_EQ(v, "v2");
  ASSERT_TRUE(store.Delete(Slice("k")).ok());
  EXPECT_TRUE(store.Get(Slice("k"), &v).IsNotFound());
  ASSERT_TRUE(store.Delete(Slice("k")).ok());  // idempotent
}

TEST(KvStoreTest, StatsTrackKeysAndBytes) {
  KvStore store(4);
  ASSERT_TRUE(store.Put(Slice("alpha"), Slice("12345")).ok());
  ASSERT_TRUE(store.Put(Slice("beta"), Slice("1")).ok());
  StoreStats st = store.GetStats();
  EXPECT_EQ(st.keys, 2u);
  EXPECT_EQ(st.bytes, 5 + 5 + 4 + 1u);
  ASSERT_TRUE(store.Delete(Slice("alpha")).ok());
  st = store.GetStats();
  EXPECT_EQ(st.keys, 1u);
  EXPECT_EQ(st.bytes, 5u);
}

TEST(KvStoreTest, ConcurrentMixedOps) {
  KvStore store(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; i++) {
        std::string k = StrFormat("key-%d-%d", t, i);
        ASSERT_TRUE(store.Put(Slice(k), Slice(k)).ok());
        std::string v;
        ASSERT_TRUE(store.Get(Slice(k), &v).ok());
        ASSERT_EQ(v, k);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.GetStats().keys, 8 * 500u);
}

TEST(PlacementTest, StaticIsDeterministicAndInRange) {
  StaticPlacement p(7);
  for (int i = 0; i < 100; i++) {
    std::string k = "key" + std::to_string(i);
    size_t n = p.NodeFor(Slice(k));
    EXPECT_LT(n, 7u);
    EXPECT_EQ(n, p.NodeFor(Slice(k)));
  }
}

TEST(PlacementTest, StaticSpreadsKeys) {
  StaticPlacement p(8);
  std::map<size_t, int> counts;
  for (int i = 0; i < 8000; i++) {
    counts[p.NodeFor(Slice("key" + std::to_string(i)))]++;
  }
  ASSERT_EQ(counts.size(), 8u);
  for (auto& [node, c] : counts) {
    EXPECT_GT(c, 700) << "node " << node << " starved";
    EXPECT_LT(c, 1300) << "node " << node << " overloaded";
  }
}

TEST(PlacementTest, ReplicasAreDistinct) {
  for (auto make : {MakeStaticPlacement, +[](size_t n) {
         return MakeRingPlacement(n, 64);
       }}) {
    auto p = make(5);
    for (int i = 0; i < 50; i++) {
      auto reps = p->ReplicaNodes(Slice("k" + std::to_string(i)), 3);
      ASSERT_EQ(reps.size(), 3u);
      EXPECT_NE(reps[0], reps[1]);
      EXPECT_NE(reps[1], reps[2]);
      EXPECT_NE(reps[0], reps[2]);
    }
  }
}

TEST(PlacementTest, ReplicasClampToNodeCount) {
  StaticPlacement p(2);
  EXPECT_EQ(p.ReplicaNodes(Slice("k"), 5).size(), 2u);
}

TEST(PlacementTest, RingIsMostlyStableUnderGrowth) {
  RingPlacement before(10, 64);
  RingPlacement after(11, 64);
  int moved = 0;
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; i++) {
    std::string k = "stable" + std::to_string(i);
    if (before.NodeFor(Slice(k)) != after.NodeFor(Slice(k))) moved++;
  }
  // Consistent hashing should move roughly 1/11 of keys, far below the
  // ~10/11 a mod-N scheme would move.
  EXPECT_LT(moved, kKeys / 4);
  EXPECT_GT(moved, 0);
}

class DhtClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; i++) {
      auto svc = std::make_shared<DhtService>();
      services_.push_back(svc);
      std::string addr = StrFormat("inproc://dht-%d", i);
      ASSERT_TRUE(net_.Serve(addr, svc).ok());
      addresses_.push_back(addr);
    }
  }

  rpc::InProcNetwork net_;
  std::vector<std::shared_ptr<DhtService>> services_;
  std::vector<std::string> addresses_;
};

TEST_F(DhtClientTest, PutGetAcrossNodes) {
  DhtClient client(&net_, addresses_);
  for (int i = 0; i < 200; i++) {
    std::string k = "key" + std::to_string(i);
    ASSERT_TRUE(client.Put(Slice(k), Slice("value" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 200; i++) {
    std::string v;
    ASSERT_TRUE(client.Get(Slice("key" + std::to_string(i)), &v).ok());
    EXPECT_EQ(v, "value" + std::to_string(i));
  }
  // Keys actually spread across nodes.
  int populated = 0;
  for (auto& svc : services_) {
    if (svc->store().GetStats().keys > 0) populated++;
  }
  EXPECT_GE(populated, 3);
}

TEST_F(DhtClientTest, MissingKeyIsNotFound) {
  DhtClient client(&net_, addresses_);
  std::string v;
  EXPECT_TRUE(client.Get(Slice("nope"), &v).IsNotFound());
}

TEST_F(DhtClientTest, ReplicationSurvivesPrimaryLoss) {
  DhtClientOptions opts;
  opts.replication = 2;
  DhtClient client(&net_, addresses_, opts);
  std::vector<std::string> keys;
  for (int i = 0; i < 100; i++) {
    keys.push_back("rk" + std::to_string(i));
    ASSERT_TRUE(client.Put(Slice(keys.back()), Slice("v")).ok());
  }
  // Kill one node: every key must remain readable via its replica.
  ASSERT_TRUE(net_.StopServing(addresses_[1]).ok());
  for (const auto& k : keys) {
    std::string v;
    ASSERT_TRUE(client.Get(Slice(k), &v).ok()) << "lost key " << k;
    EXPECT_EQ(v, "v");
  }
}

TEST_F(DhtClientTest, WithoutReplicationLossIsVisible) {
  DhtClient client(&net_, addresses_);
  StaticPlacement placement(addresses_.size());
  std::string victim_key;
  for (int i = 0; i < 1000 && victim_key.empty(); i++) {
    std::string k = "vk" + std::to_string(i);
    if (placement.NodeFor(Slice(k)) == 2) victim_key = k;
  }
  ASSERT_FALSE(victim_key.empty());
  ASSERT_TRUE(client.Put(Slice(victim_key), Slice("v")).ok());
  ASSERT_TRUE(net_.StopServing(addresses_[2]).ok());
  std::string v;
  EXPECT_FALSE(client.Get(Slice(victim_key), &v).ok());
}

TEST_F(DhtClientTest, TotalStatsAggregates) {
  DhtClient client(&net_, addresses_);
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        client.Put(Slice("sk" + std::to_string(i)), Slice("0123456789")).ok());
  }
  uint64_t keys, bytes;
  ASSERT_TRUE(client.TotalStats(&keys, &bytes).ok());
  EXPECT_EQ(keys, 50u);
  EXPECT_GT(bytes, 500u);
}

}  // namespace
}  // namespace blobseer::dht
