// Readers racing the GC sweeper under churn (simnet, virtual time): a
// writer keeps overwriting a blob under a keep-last-k retention policy
// while the provider-manager-hosted sweeper discards and sweeps expired
// versions on its own loop — with a provider killed and restarted in the
// middle. The contract: reads of retained versions always succeed with
// exact contents; reads of expired versions either succeed with exact
// contents (the read won the race) or fail NotFound — never garbage bytes,
// never a crash.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "client/blob_handle.h"
#include "core/sim_cluster.h"
#include "lifecycle/retention.h"
#include "reference_blob.h"
#include "vmanager/client.h"

namespace blobseer {
namespace {

using client::Blob;
using testing::TestPayload;

constexpr uint64_t kMs = 1000;  // microseconds per millisecond

// Detector/rebuild cadence shared with rereplication_test.cc, plus a GC
// pass every 400 ms of virtual time.
constexpr uint64_t kBeat = 100 * kMs;
constexpr uint64_t kSuspectAfter = 500 * kMs;
constexpr uint64_t kDeadAfter = 1500 * kMs;
constexpr uint64_t kRebuildEvery = 200 * kMs;
constexpr uint64_t kGcEvery = 400 * kMs;

core::SimClusterOptions GcChurnOptions() {
  core::SimClusterOptions opts;
  opts.num_provider_nodes = 5;
  opts.page_store = "memory";
  opts.replication = 3;
  opts.write_quorum = 2;
  opts.heartbeat_interval_us = kBeat;
  opts.suspect_after_us = kSuspectAfter;
  opts.dead_after_us = kDeadAfter;
  opts.rebuild_interval_us = kRebuildEvery;
  opts.gc_interval_us = kGcEvery;
  opts.gc_max_sweep = 4096;
  return opts;
}

TEST(LifecycleChurnTest, ReadersNeverSeeGarbageWhileGcSweeps) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    core::SimCluster cluster(&sched, GcChurnOptions());
    auto client = cluster.NewClient();
    constexpr uint64_t kPage = 4096;
    constexpr size_t kPagesPerVersion = 2;
    constexpr size_t kVersions = 20;
    constexpr uint32_t kKeep = 3;

    auto id = client->Create(kPage);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    vmanager::VersionManagerClient vm(&cluster.transport(),
                                      cluster.vm_address());
    ASSERT_TRUE(
        vm.SetRetention(*id, lifecycle::RetentionPolicy{kKeep, 0}).ok());

    // contents[v] is the exact body snapshot v must read back as.
    std::vector<std::string> contents(kVersions + 1);
    size_t stale_ok = 0, stale_gone = 0;
    for (size_t i = 1; i <= kVersions; i++) {
      std::string payload = TestPayload(i, kPagesPerVersion * kPage);
      auto v = blob.WriteSync(payload, 0);
      ASSERT_TRUE(v.ok()) << "write " << i << ": " << v.status().ToString();
      ASSERT_EQ(*v, i);
      contents[i] = payload;

      // Kill a provider mid-run and bring it back later: the sweeper's
      // pass loop keeps firing across the failure and the recovery.
      if (i == 8) {
        ASSERT_TRUE(cluster.StopProvider(1).ok());
      }
      if (i == 14) {
        ASSERT_TRUE(cluster.RestartProvider(1).ok());
      }

      // Space the writes out so sweeper passes interleave with them.
      cluster.clock().SleepForMicros(150 * kMs);

      // The freshly published version is inside the retention window: its
      // read must succeed with exact contents no matter what GC is doing.
      std::string out;
      ASSERT_TRUE(blob.Read(i, 0, contents[i].size(), &out).ok())
          << "retained v" << i;
      ASSERT_EQ(out, contents[i]) << "retained v" << i;

      // A version well past the window races the sweeper: by the time we
      // read it, it may be untouched, discarded, or mid-sweep. OK implies
      // byte-exact contents; the only acceptable failure is NotFound.
      if (i > kKeep + 2) {
        Version stale = i - kKeep - 2;
        Status st = blob.Read(stale, 0, contents[stale].size(), &out);
        if (st.ok()) {
          ASSERT_EQ(out, contents[stale]) << "stale v" << stale;
          stale_ok++;
        } else {
          ASSERT_TRUE(st.IsNotFound())
              << "stale v" << stale << ": " << st.ToString();
          stale_gone++;
        }
      }
    }

    // Let the sweeper catch up, then check the steady state: the newest
    // kKeep versions are readable and exact, older ones are gone.
    cluster.clock().SleepForMicros(4 * kGcEvery);
    std::string out;
    for (Version v = kVersions - kKeep + 1; v <= kVersions; v++) {
      ASSERT_TRUE(blob.Read(v, 0, contents[v].size(), &out).ok())
          << "v" << v;
      ASSERT_EQ(out, contents[v]) << "v" << v;
    }
    for (Version v = 1; v <= kVersions - kKeep; v++) {
      EXPECT_TRUE(blob.Read(v, 0, kPage, &out).IsNotFound()) << "v" << v;
    }
    EXPECT_GT(stale_gone, 0u) << "GC never won the race — test too lenient";

    auto stats = cluster.pmanager().gc_sweeper()->GetStats();
    EXPECT_GT(stats.passes, 0u);
    EXPECT_GT(stats.versions_discarded, 0u);
    EXPECT_GT(stats.pages_swept, 0u);
    checked = true;
  });
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace blobseer
