// Unaligned I/O: fragment-chain leaves, edge-page resolution, chain
// compaction (the paper's "slightly more complex" case, DESIGN.md 3.2).
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "reference_blob.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using client::ClientOptions;
using testing::ReferenceBlob;
using testing::TestPayload;

class UnalignedTest : public ::testing::Test {
 protected:
  void Start(ClientOptions copts = {}) {
    core::ClusterOptions opts;
    opts.num_providers = 4;
    opts.num_meta = 4;
    auto cluster = core::EmbeddedCluster::Start(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).ValueUnsafe();
    auto client = cluster_->NewClient(copts);
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).ValueUnsafe();
  }

  std::unique_ptr<core::EmbeddedCluster> cluster_;
  std::unique_ptr<BlobClient> client_;
};

TEST_F(UnalignedTest, SubPageWritePreservesNeighbours) {
  Start();
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  std::string base = TestPayload(1, 64);
  ASSERT_TRUE(blob.AppendSync(base).ok());
  // Overwrite bytes [10, 20) inside the single page.
  std::string patch = TestPayload(2, 10);
  ASSERT_TRUE(blob.WriteSync(patch, 10).ok());
  std::string out;
  ASSERT_TRUE(blob.Read(2, 0, 64, &out).ok());
  std::string want = base;
  want.replace(10, 10, patch);
  EXPECT_EQ(out, want);
  // The sub-page write stored only its own bytes.
  uint64_t pages, bytes;
  ASSERT_TRUE(cluster_->TotalProviderUsage(&pages, &bytes).ok());
  EXPECT_EQ(bytes, 64u + 10u);
}

TEST_F(UnalignedTest, WriteSpanningPagesWithRaggedEdges) {
  Start();
  auto id = client_->Create(32);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  std::string base = TestPayload(1, 160);  // 5 pages
  ASSERT_TRUE(blob.AppendSync(base).ok());
  ref.ApplyAppend(base);
  // [17, 113): partial head page, 2 full pages, partial tail page.
  std::string patch = TestPayload(2, 96);
  ASSERT_TRUE(blob.WriteSync(patch, 17).ok());
  ref.ApplyWrite(patch, 17);
  std::string out;
  ASSERT_TRUE(blob.Read(2, 0, 160, &out).ok());
  EXPECT_EQ(out, ref.Contents(2));
  // Version 1 untouched.
  ASSERT_TRUE(blob.Read(1, 0, 160, &out).ok());
  EXPECT_EQ(out, base);
}

TEST_F(UnalignedTest, UnalignedAppendsChainCorrectly) {
  Start();
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  // Appends of awkward sizes: page boundaries land mid-append.
  for (int i = 0; i < 30; i++) {
    std::string data = TestPayload(i, 7 + (i * 13) % 90);
    ASSERT_TRUE(blob.AppendSync(data).ok()) << "append " << i;
    ref.ApplyAppend(data);
  }
  for (Version v = 1; v <= ref.latest(); v++) {
    std::string out;
    ASSERT_TRUE(blob.Read(v, 0, ref.Size(v), &out).ok()) << "v" << v;
    ASSERT_EQ(out, ref.Contents(v)) << "v" << v;
  }
}

TEST_F(UnalignedTest, RepeatedSubPageWritesGrowAChainThatStillReads) {
  ClientOptions copts;
  copts.max_chain = 1000;  // effectively disable compaction
  Start(copts);
  auto id = client_->Create(256);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  std::string base = TestPayload(0, 256);
  ASSERT_TRUE(blob.AppendSync(base).ok());
  ref.ApplyAppend(base);
  // 40 tiny writes at varying offsets within the page.
  for (int i = 1; i <= 40; i++) {
    std::string patch = TestPayload(i, 5);
    uint64_t off = (i * 37) % 250;
    ASSERT_TRUE(blob.WriteSync(patch, off).ok());
    ref.ApplyWrite(patch, off);
  }
  for (Version v = 1; v <= ref.latest(); v += 7) {
    std::string out;
    ASSERT_TRUE(blob.Read(v, 0, 256, &out).ok());
    ASSERT_EQ(out, ref.Contents(v)) << "v" << v;
  }
  std::string out;
  ASSERT_TRUE(blob.Read(ref.latest(), 0, 256, &out).ok());
  EXPECT_EQ(out, ref.Contents(ref.latest()));
}

TEST_F(UnalignedTest, CompactionBoundsChainAndPreservesContent) {
  ClientOptions copts;
  copts.max_chain = 4;
  Start(copts);
  auto id = client_->Create(128);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  std::string base = TestPayload(0, 128);
  ASSERT_TRUE(blob.AppendSync(base).ok());
  ref.ApplyAppend(base);
  for (int i = 1; i <= 24; i++) {
    std::string patch = TestPayload(i, 9);
    uint64_t off = (i * 31) % 119;
    ASSERT_TRUE(blob.WriteSync(patch, off).ok());
    ref.ApplyWrite(patch, off);
  }
  EXPECT_GT(client_->GetStats().compactions, 0u);
  for (Version v = 1; v <= ref.latest(); v++) {
    std::string out;
    ASSERT_TRUE(blob.Read(v, 0, 128, &out).ok());
    ASSERT_EQ(out, ref.Contents(v)) << "v" << v;
  }
}

TEST_F(UnalignedTest, AppendAfterUnalignedEndMergesTailPage) {
  Start();
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  // Leave the blob at an unaligned size, then append: the append's head
  // page must merge with the existing tail content.
  ASSERT_TRUE(blob.AppendSync(TestPayload(1, 50)).ok());
  ASSERT_TRUE(blob.AppendSync(TestPayload(2, 100)).ok());
  ASSERT_TRUE(blob.AppendSync(TestPayload(3, 3)).ok());
  ReferenceBlob ref;
  ref.ApplyAppend(TestPayload(1, 50));
  ref.ApplyAppend(TestPayload(2, 100));
  ref.ApplyAppend(TestPayload(3, 3));
  std::string out;
  ASSERT_TRUE(blob.Read(3, 0, 153, &out).ok());
  EXPECT_EQ(out, ref.Contents(3));
  ASSERT_TRUE(blob.Read(2, 40, 70, &out).ok());
  EXPECT_EQ(out, ref.Read(2, 40, 70));
}

TEST_F(UnalignedTest, GrowThroughWriteExtendingTail) {
  Start();
  auto id = client_->Create(32);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(1, 40)).ok());
  // Write overlapping the end and extending the blob: offset 30, len 30.
  std::string patch = TestPayload(2, 30);
  ASSERT_TRUE(blob.WriteSync(patch, 30).ok());
  auto size = blob.GetSize(2);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 60u);
  ReferenceBlob ref;
  ref.ApplyAppend(TestPayload(1, 40));
  ref.ApplyWrite(patch, 30);
  std::string out;
  ASSERT_TRUE(blob.Read(2, 0, 60, &out).ok());
  EXPECT_EQ(out, ref.Contents(2));
}

TEST_F(UnalignedTest, SingleByteGranularity) {
  Start();
  auto id = client_->Create(8);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  for (int i = 0; i < 20; i++) {
    std::string one(1, static_cast<char>('A' + i));
    ASSERT_TRUE(blob.AppendSync(one).ok());
    ref.ApplyAppend(one);
  }
  std::string out;
  ASSERT_TRUE(blob.Read(20, 0, 20, &out).ok());
  EXPECT_EQ(out, "ABCDEFGHIJKLMNOPQRST");
  for (int i = 0; i < 10; i++) {
    std::string one(1, static_cast<char>('a' + i));
    ASSERT_TRUE(blob.WriteSync(one, i * 2).ok());
    ref.ApplyWrite(one, i * 2);
  }
  ASSERT_TRUE(blob.Read(30, 0, 20, &out).ok());
  EXPECT_EQ(out, ref.Contents(30));
}

}  // namespace
}  // namespace blobseer
