// BRANCH semantics (paper section 2.1): cheap branching, shared history,
// independent evolution, metadata/data sharing across branches.
#include <gtest/gtest.h>

#include <thread>

#include "core/cluster.h"
#include "reference_blob.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using testing::ReferenceBlob;
using testing::TestPayload;

class BranchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ClusterOptions opts;
    opts.num_providers = 4;
    opts.num_meta = 4;
    auto cluster = core::EmbeddedCluster::Start(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).ValueUnsafe();
    auto client = cluster_->NewClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).ValueUnsafe();
  }

  std::unique_ptr<core::EmbeddedCluster> cluster_;
  std::unique_ptr<BlobClient> client_;
};

TEST_F(BranchTest, BranchReadsSharedHistory) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  for (int i = 0; i < 5; i++) {
    std::string data = TestPayload(i, 100);
    ASSERT_TRUE(blob.AppendSync(data).ok());
    ref.ApplyAppend(data);
  }
  auto branch = blob.Branch(3);
  ASSERT_TRUE(branch.ok());
  EXPECT_NE(branch->id(), *id);
  // Every version up to the branch point reads identically.
  for (Version v = 1; v <= 3; v++) {
    std::string a, b;
    ASSERT_TRUE(blob.Read(v, 0, ref.Size(v), &a).ok());
    ASSERT_TRUE(branch->Read(v, 0, ref.Size(v), &b).ok());
    EXPECT_EQ(a, b);
  }
  // Versions beyond the branch point exist only on the parent.
  std::string out;
  EXPECT_FALSE(branch->Read(4, 0, 10, &out).ok());
  auto recent = branch->GetRecent();
  ASSERT_TRUE(recent.ok());
  EXPECT_EQ(recent->version, 3u);
}

TEST_F(BranchTest, BranchesDivergeIndependently) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  std::string base = TestPayload(0, 300);
  ASSERT_TRUE(blob.AppendSync(base).ok());
  ref.ApplyAppend(base);

  auto branch = blob.Branch(1);
  ASSERT_TRUE(branch.ok());
  ReferenceBlob bref = ref.BranchAt(1);

  // Parent appends, branch overwrites; interleaved.
  for (int i = 1; i <= 8; i++) {
    std::string pdata = TestPayload(1000 + i, 60);
    ASSERT_TRUE(blob.AppendSync(pdata).ok());
    ref.ApplyAppend(pdata);
    std::string bdata = TestPayload(2000 + i, 45);
    uint64_t off = (i * 37) % 250;
    ASSERT_TRUE(branch->WriteSync(bdata, off).ok());
    bref.ApplyWrite(bdata, off);
  }
  for (Version v = 1; v <= ref.latest(); v++) {
    std::string out;
    ASSERT_TRUE(blob.Read(v, 0, ref.Size(v), &out).ok());
    ASSERT_EQ(out, ref.Contents(v)) << "parent v" << v;
  }
  for (Version v = 1; v <= bref.latest(); v++) {
    std::string out;
    ASSERT_TRUE(branch->Read(v, 0, bref.Size(v), &out).ok());
    ASSERT_EQ(out, bref.Contents(v)) << "branch v" << v;
  }
}

TEST_F(BranchTest, BranchIsCheap) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 64 * 32)).ok());  // 32 pages

  uint64_t pages_before, bytes_before, keys_before, mbytes_before;
  ASSERT_TRUE(cluster_->TotalProviderUsage(&pages_before, &bytes_before).ok());
  ASSERT_TRUE(cluster_->TotalMetadataUsage(&keys_before, &mbytes_before).ok());

  auto branch = blob.Branch(1);
  ASSERT_TRUE(branch.ok());

  // Branching allocated no pages and wrote no metadata (O(1) in data size).
  uint64_t pages_after, bytes_after, keys_after, mbytes_after;
  ASSERT_TRUE(cluster_->TotalProviderUsage(&pages_after, &bytes_after).ok());
  ASSERT_TRUE(cluster_->TotalMetadataUsage(&keys_after, &mbytes_after).ok());
  EXPECT_EQ(pages_before, pages_after);
  EXPECT_EQ(keys_before, keys_after);

  // A one-page branch write shares all other pages with the parent.
  ASSERT_TRUE(branch->WriteSync(TestPayload(1, 64), 0).ok());
  ASSERT_TRUE(cluster_->TotalProviderUsage(&pages_after, &bytes_after).ok());
  EXPECT_EQ(pages_after, pages_before + 1);
}

TEST_F(BranchTest, NestedBranches) {
  auto id = client_->Create(32);
  ASSERT_TRUE(id.ok());
  Blob a(client_.get(), *id);
  ReferenceBlob aref;
  for (int i = 0; i < 3; i++) {
    std::string d = TestPayload(i, 70);
    ASSERT_TRUE(a.AppendSync(d).ok());
    aref.ApplyAppend(d);
  }
  auto b = a.Branch(2);
  ASSERT_TRUE(b.ok());
  ReferenceBlob bref = aref.BranchAt(2);
  std::string bd = TestPayload(100, 40);
  ASSERT_TRUE(b->AppendSync(bd).ok());
  bref.ApplyAppend(bd);

  // Branch of the branch, below the first branch point: resolves through
  // two levels of ancestry to the original blob's metadata.
  auto c = b->Branch(1);
  ASSERT_TRUE(c.ok());
  ReferenceBlob cref = bref.BranchAt(1);
  std::string cd = TestPayload(200, 25);
  ASSERT_TRUE(c->AppendSync(cd).ok());
  cref.ApplyAppend(cd);

  for (auto [handle, ref] :
       {std::make_pair(&a, &aref), {b.operator->(), &bref},
        {c.operator->(), &cref}}) {
    for (Version v = 1; v <= ref->latest(); v++) {
      std::string out;
      ASSERT_TRUE(handle->Read(v, 0, ref->Size(v), &out).ok());
      ASSERT_EQ(out, ref->Contents(v));
    }
  }
}

TEST_F(BranchTest, BranchFromEmptySnapshot) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 10)).ok());
  auto empty_branch = blob.Branch(0);
  ASSERT_TRUE(empty_branch.ok());
  auto recent = empty_branch->GetRecent();
  ASSERT_TRUE(recent.ok());
  EXPECT_EQ(recent->version, 0u);
  std::string d = TestPayload(1, 20);
  ASSERT_TRUE(empty_branch->AppendSync(d).ok());
  std::string out;
  ASSERT_TRUE(empty_branch->Read(1, 0, 20, &out).ok());
  EXPECT_EQ(out, d);
}

TEST_F(BranchTest, ConcurrentWritersOnSeparateBranches) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 500)).ok());

  constexpr int kBranches = 4;
  std::vector<Blob> branches;
  for (int i = 0; i < kBranches; i++) {
    auto b = blob.Branch(1);
    ASSERT_TRUE(b.ok());
    branches.push_back(*b);
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kBranches; i++) {
    threads.emplace_back([&, i] {
      ReferenceBlob ref;
      ref.ApplyAppend(TestPayload(0, 500));
      for (int k = 1; k <= 10; k++) {
        std::string d = TestPayload(i * 100 + k, 33);
        auto v = branches[i].AppendSync(d);
        ASSERT_TRUE(v.ok());
        ASSERT_EQ(*v, ref.ApplyAppend(d));
      }
      std::string out;
      ASSERT_TRUE(
          branches[i].Read(ref.latest(), 0, ref.Size(ref.latest()), &out).ok());
      ASSERT_EQ(out, ref.Contents(ref.latest()));
    });
  }
  for (auto& t : threads) t.join();
}

TEST_F(BranchTest, BranchValidation) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(client_->Branch(*id, 3).ok());  // unpublished
  EXPECT_FALSE(client_->Branch(999, 0).ok());  // unknown blob
}

}  // namespace
}  // namespace blobseer
