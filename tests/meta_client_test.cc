// MetaClient unit tests: node round trips, the immutable-node cache,
// tree walks over hand-built trees, border descent edge cases, and the
// per-operation memo.
#include <gtest/gtest.h>

#include "dht/client.h"
#include "dht/service.h"
#include "meta/layout.h"
#include "meta/meta_client.h"
#include "rpc/inproc.h"

namespace blobseer::meta {
namespace {

class MetaClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; i++) {
      auto svc = std::make_shared<dht::DhtService>();
      std::string addr = "inproc://meta-" + std::to_string(i);
      ASSERT_TRUE(net_.Serve(addr, svc).ok());
      addresses_.push_back(addr);
    }
    dht_ = std::make_unique<dht::DhtClient>(&net_, addresses_);
  }

  MetaClient NewClient(bool cache = true, size_t capacity = 1024) {
    MetaClientOptions opts;
    opts.cache_enabled = cache;
    opts.cache_capacity = capacity;
    return MetaClient(dht_.get(), &executor_, opts);
  }

  // Writes the 4-page tree of paper Figure 1(a): version 1, psize 1.
  void WriteFigure1aTree(MetaClient* mc) {
    ASSERT_TRUE(mc->PutNode(NodeKey{1, 1, {0, 4}}, MetaNode::Inner(1, 1)).ok());
    ASSERT_TRUE(mc->PutNode(NodeKey{1, 1, {0, 2}}, MetaNode::Inner(1, 1)).ok());
    ASSERT_TRUE(mc->PutNode(NodeKey{1, 1, {2, 2}}, MetaNode::Inner(1, 1)).ok());
    for (uint64_t p = 0; p < 4; p++) {
      ASSERT_TRUE(
          mc->PutNode(NodeKey{1, 1, {p, 1}},
                      MetaNode::Leaf({PageFragment{PageId{1, p + 1}, {0}, 0, 1, 0}},
                                     kNoVersion, 1))
              .ok());
    }
  }

  rpc::InProcNetwork net_;
  std::vector<std::string> addresses_;
  std::unique_ptr<dht::DhtClient> dht_;
  SerialExecutor executor_;
};

TEST_F(MetaClientTest, PutGetRoundTrip) {
  MetaClient mc = NewClient();
  NodeKey key{7, 3, Extent{64, 64}};
  MetaNode node = MetaNode::Inner(2, kNoVersion);
  ASSERT_TRUE(mc.PutNode(key, node).ok());
  auto got = mc.GetNode(key);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->left_version, 2u);
  EXPECT_EQ(got->right_version, kNoVersion);
  EXPECT_TRUE(mc.GetNode(NodeKey{7, 4, Extent{64, 64}}).status().IsNotFound());
}

TEST_F(MetaClientTest, CacheServesRepeatReadsAndInvalidates) {
  MetaClient mc = NewClient();
  NodeKey key{1, 1, Extent{0, 8}};
  ASSERT_TRUE(mc.PutNode(key, MetaNode::Inner(1, 1)).ok());
  // PutNode seeds the cache: this read must hit.
  ASSERT_TRUE(mc.GetNode(key).ok());
  MetaCacheStats st = mc.GetCacheStats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 0u);
  mc.InvalidateCache();
  ASSERT_TRUE(mc.GetNode(key).ok());
  st = mc.GetCacheStats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  // And the re-fetch repopulated it.
  ASSERT_TRUE(mc.GetNode(key).ok());
  EXPECT_EQ(mc.GetCacheStats().hits, 2u);
}

TEST_F(MetaClientTest, CacheEvictsAtCapacity) {
  MetaClient mc = NewClient(true, /*capacity=*/4);
  for (uint64_t i = 0; i < 16; i++) {
    ASSERT_TRUE(
        mc.PutNode(NodeKey{1, i + 1, Extent{0, 2}}, MetaNode::Inner(1, 1))
            .ok());
  }
  // Oldest entries evicted: reading version 1 must miss.
  ASSERT_TRUE(mc.GetNode(NodeKey{1, 1, Extent{0, 2}}).ok());
  EXPECT_GE(mc.GetCacheStats().misses, 1u);
}

TEST_F(MetaClientTest, DisabledCacheAlwaysFetches) {
  MetaClient mc = NewClient(false);
  NodeKey key{1, 1, Extent{0, 2}};
  ASSERT_TRUE(mc.PutNode(key, MetaNode::Inner(1, 1)).ok());
  ASSERT_TRUE(mc.GetNode(key).ok());
  ASSERT_TRUE(mc.GetNode(key).ok());
  MetaCacheStats st = mc.GetCacheStats();
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.puts, 0u);
}

TEST_F(MetaClientTest, ReadMetaCollectsExactlyTheIntersectingLeaves) {
  MetaClient mc = NewClient();
  WriteFigure1aTree(&mc);
  BranchAncestry anc({{1, kMaxVersion}});
  std::vector<LeafRef> leaves;
  ASSERT_TRUE(mc.ReadMeta(anc, 1, 4, 1, Extent{1, 2}, &leaves).ok());
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0].block.offset + leaves[1].block.offset, 1u + 2u);
  // Full range.
  ASSERT_TRUE(mc.ReadMeta(anc, 1, 4, 1, Extent{0, 4}, &leaves).ok());
  EXPECT_EQ(leaves.size(), 4u);
  // Out-of-range read rejected before any fetch.
  EXPECT_TRUE(mc.ReadMeta(anc, 1, 4, 1, Extent{2, 3}, &leaves).IsOutOfRange());
  EXPECT_TRUE(mc.ReadMeta(anc, 0, 0, 1, Extent{0, 1}, &leaves).IsOutOfRange());
}

TEST_F(MetaClientTest, ReadMetaDetectsHolesAndTypeMismatches) {
  MetaClient mc = NewClient();
  BranchAncestry anc({{1, kMaxVersion}});
  // Root whose right child is a hole, but blob_size says 4 pages: reading
  // the right half must report corruption.
  ASSERT_TRUE(
      mc.PutNode(NodeKey{1, 1, {0, 4}}, MetaNode::Inner(1, kNoVersion)).ok());
  ASSERT_TRUE(mc.PutNode(NodeKey{1, 1, {0, 2}}, MetaNode::Inner(1, 1)).ok());
  std::vector<LeafRef> leaves;
  EXPECT_TRUE(mc.ReadMeta(anc, 1, 4, 1, Extent{2, 2}, &leaves).IsCorruption());
  // Inner node stored where a leaf must live.
  ASSERT_TRUE(mc.PutNode(NodeKey{1, 1, {0, 1}}, MetaNode::Inner(1, 1)).ok());
  ASSERT_TRUE(mc.PutNode(NodeKey{1, 1, {1, 1}}, MetaNode::Inner(1, 1)).ok());
  EXPECT_TRUE(mc.ReadMeta(anc, 1, 4, 1, Extent{0, 1}, &leaves).IsCorruption());
}

TEST_F(MetaClientTest, ResolveBlockVersionWalksToTheLabel) {
  MetaClient mc = NewClient();
  // Figure 1(b): version 2 overwrote pages 1-2 of the 4-page version 1.
  WriteFigure1aTree(&mc);
  ASSERT_TRUE(mc.PutNode(NodeKey{1, 2, {0, 4}}, MetaNode::Inner(2, 2)).ok());
  ASSERT_TRUE(mc.PutNode(NodeKey{1, 2, {0, 2}}, MetaNode::Inner(1, 2)).ok());
  ASSERT_TRUE(mc.PutNode(NodeKey{1, 2, {2, 2}}, MetaNode::Inner(2, 1)).ok());

  BranchAncestry anc({{1, kMaxVersion}});
  // Published root of v2: label of (0,4) is 2; page 0's leaf label is 1
  // (shared with v1), page 1's is 2.
  auto root = mc.ResolveBlockVersion(anc, 2, 4, 1, Extent{0, 4});
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, 2u);
  auto page0 = mc.ResolveBlockVersion(anc, 2, 4, 1, Extent{0, 1});
  ASSERT_TRUE(page0.ok());
  EXPECT_EQ(*page0, 1u);
  auto mid = mc.ResolveBlockVersion(anc, 2, 4, 1, Extent{2, 2});
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, 2u);
}

TEST_F(MetaClientTest, ResolveBlockVersionEdgeCases) {
  MetaClient mc = NewClient();
  WriteFigure1aTree(&mc);
  BranchAncestry anc({{1, kMaxVersion}});
  // Nothing published: every block is a hole.
  auto none = mc.ResolveBlockVersion(anc, 0, 0, 1, Extent{0, 1});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, kNoVersion);
  // Beyond the published span: hole.
  auto beyond = mc.ResolveBlockVersion(anc, 1, 4, 1, Extent{4, 2});
  ASSERT_TRUE(beyond.ok());
  EXPECT_EQ(*beyond, kNoVersion);
  // Strictly containing the published root: must come from the version
  // manager, so the client reports Internal.
  EXPECT_TRUE(mc.ResolveBlockVersion(anc, 1, 4, 1, Extent{0, 8})
                  .status()
                  .IsInternal());
}

TEST_F(MetaClientTest, MemoAvoidsRepeatFetchesWithinOneOperation) {
  MetaClient mc = NewClient(/*cache=*/false);
  WriteFigure1aTree(&mc);
  BranchAncestry anc({{1, kMaxVersion}});
  dht::StoreStats before_total{};
  uint64_t keys0 = 0, bytes0 = 0;
  ASSERT_TRUE(dht_->TotalStats(&keys0, &bytes0).ok());

  MetaClient::NodeMemo memo;
  // Resolving all four leaves shares the root and mid-level fetches.
  for (uint64_t p = 0; p < 4; p++) {
    auto v = mc.ResolveBlockVersion(anc, 1, 4, 1, Extent{p, 1}, &memo);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 1u);
  }
  // Distinct nodes on the 4 paths: root + 2 mid nodes = 3 fetches (leaf
  // labels come from the parents). The memo holds exactly those.
  EXPECT_EQ(memo.size(), 3u);
  (void)before_total;
}

TEST_F(MetaClientTest, WriteNodesBatchIsAtomicPerNode) {
  MetaClient mc = NewClient();
  std::vector<std::pair<NodeKey, MetaNode>> nodes;
  for (uint64_t i = 0; i < 50; i++) {
    nodes.emplace_back(NodeKey{9, 1, Extent{i, 1}},
                       MetaNode::Leaf({PageFragment{PageId{9, i}, {0}, 0, 1, 0}},
                                      kNoVersion, 1));
  }
  ASSERT_TRUE(mc.WriteNodes(nodes).ok());
  for (uint64_t i = 0; i < 50; i++) {
    auto got = mc.GetNode(NodeKey{9, 1, Extent{i, 1}});
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->fragments[0].pid, (PageId{9, i}));
  }
}

TEST_F(MetaClientTest, BranchAncestryRoutesVersionsToOrigins) {
  // Blob 2 branched from blob 1 at version 3: nodes of versions <= 3 are
  // keyed by origin blob 1.
  MetaClient mc = NewClient();
  ASSERT_TRUE(mc.PutNode(NodeKey{1, 2, {0, 2}}, MetaNode::Inner(2, 2)).ok());
  ASSERT_TRUE(mc.PutNode(NodeKey{2, 4, {0, 2}}, MetaNode::Inner(4, 2)).ok());
  BranchAncestry anc({{1, 3}, {2, kMaxVersion}});
  EXPECT_EQ(anc.Resolve(2), 1u);
  EXPECT_EQ(anc.Resolve(3), 1u);
  EXPECT_EQ(anc.Resolve(4), 2u);
  // Descent through the branch point mixes origins transparently.
  auto label = mc.ResolveBlockVersion(anc, 4, 2, 1, Extent{0, 1});
  ASSERT_TRUE(label.ok());
  EXPECT_EQ(*label, 4u);
  auto shared = mc.ResolveBlockVersion(anc, 2, 2, 1, Extent{0, 1});
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(*shared, 2u);
}

}  // namespace
}  // namespace blobseer::meta
