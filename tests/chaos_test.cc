// Simnet chaos harness: deterministic fault-injection schedules driven by
// the virtual clock — provider kills and restarts (SimCluster::StopProvider
// / RestartProvider), scripted heartbeat loss without process death
// (drop-RPC injection in SimTransport) — with reference-model verification
// after every phase. Gates the write-availability contract of the
// heartbeat-driven failure detector + w-of-r write quorum
// (docs/liveness.md): with r=3, w=2 a provider killed mid-write-burst
// costs no update, allocation excludes it once it expires to dead, and the
// same kill at w=r fails cleanly (regression-gated both ways).
#include <gtest/gtest.h>

#include <set>

#include "core/cluster.h"
#include "core/sim_cluster.h"
#include "pmanager/client.h"
#include "pmanager/strategy.h"
#include "reference_blob.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using pmanager::Liveness;
using pmanager::ProviderRecord;
using testing::ReferenceBlob;
using testing::TestPayload;

constexpr uint64_t kMs = 1000;  // microseconds per millisecond

// Beat every 100 ms; suspect after half a second of silence, dead after
// 1.5 s. Kills are followed by bursts well inside the suspect window (the
// detector must NOT have noticed yet) and by clock jumps well past the
// dead threshold (it must have).
constexpr uint64_t kBeat = 100 * kMs;
constexpr uint64_t kSuspectAfter = 500 * kMs;
constexpr uint64_t kDeadAfter = 1500 * kMs;

core::SimClusterOptions ChaosOptions(size_t providers, uint32_t r,
                                     uint32_t w) {
  core::SimClusterOptions opts;
  opts.num_provider_nodes = providers;
  opts.page_store = "memory";  // serve real bytes, not the null store
  opts.replication = r;
  opts.write_quorum = w;
  opts.heartbeat_interval_us = kBeat;
  opts.suspect_after_us = kSuspectAfter;
  opts.dead_after_us = kDeadAfter;
  return opts;
}

/// Phase gate: every version of the blob must read back exactly as the
/// serial reference model says.
void VerifyReference(Blob* blob, const ReferenceBlob& ref,
                     const char* phase) {
  for (Version v = 1; v <= ref.latest(); v++) {
    std::string out;
    ASSERT_TRUE(blob->Read(v, 0, ref.Size(v), &out).ok())
        << phase << " v" << v;
    ASSERT_EQ(out, ref.Contents(v)) << phase << " v" << v;
  }
}

void AppendChecked(Blob* blob, ReferenceBlob* ref, uint64_t salt,
                   size_t bytes) {
  std::string payload = TestPayload(salt, bytes);
  ASSERT_TRUE(blob->AppendSync(payload).ok()) << "salt " << salt;
  ref->ApplyAppend(payload);
}

Liveness LivenessOf(core::SimCluster* cluster, ProviderId id) {
  for (const ProviderRecord& r : cluster->pmanager().Records()) {
    if (r.id == id) return r.liveness;
  }
  ADD_FAILURE() << "provider " << id << " not registered";
  return Liveness::kDead;
}

/// Ids appearing anywhere in a fresh allocation of `pages` r-sets.
std::set<ProviderId> AllocatedIds(core::SimCluster* cluster, uint32_t pages,
                                  uint32_t r) {
  pmanager::ProviderManagerClient pm(&cluster->transport(),
                                     cluster->pm_address());
  auto sets = pm.AllocateReplicated(pages, r);
  std::set<ProviderId> ids;
  if (!sets.ok()) {
    ADD_FAILURE() << "allocation failed: " << sets.status().ToString();
    return ids;
  }
  for (const auto& set : *sets) ids.insert(set.begin(), set.end());
  return ids;
}

// --- Acceptance scenario: kill mid-burst at w < r --------------------------

TEST(ChaosSimTest, KillMidBurstSurvivesAtQuorumThenAllocationExcludesDead) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    core::SimCluster cluster(&sched, ChaosOptions(5, /*r=*/3, /*w=*/2));
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    ReferenceBlob ref;

    // Healthy warm-up.
    for (int i = 0; i < 3; i++)
      AppendChecked(&blob, &ref, i, 4096 * 4);
    VerifyReference(&blob, ref, "healthy");

    // Kill a provider, then burst before the detector can have noticed:
    // the dead provider is still handed out by allocation, its puts fail,
    // and the w=2-of-3 quorum must absorb every one of them.
    const size_t victim = 2;
    const ProviderId victim_id = 2;
    ASSERT_TRUE(cluster.StopProvider(victim).ok());
    EXPECT_EQ(LivenessOf(&cluster, victim_id), Liveness::kAlive)
        << "burst must race the detector";
    for (int i = 0; i < 6; i++)
      AppendChecked(&blob, &ref, 100 + i, 4096 * 5);
    EXPECT_GT(client->GetStats().degraded_writes, 0u)
        << "some replica set must have named the dead provider";
    VerifyReference(&blob, ref, "mid-burst kill");

    // Let the heartbeat silence expire to dead: a subsequent allocation
    // must exclude the victim — before it re-registers.
    cluster.clock().SleepForMicros(kDeadAfter + 2 * kBeat);
    EXPECT_EQ(LivenessOf(&cluster, victim_id), Liveness::kDead);
    std::set<ProviderId> allocated = AllocatedIds(&cluster, 20, 3);
    EXPECT_FALSE(allocated.empty());
    EXPECT_EQ(allocated.count(victim_id), 0u);
    // Writes are clean again (no dead provider in any set).
    uint64_t degraded_before = client->GetStats().degraded_writes;
    for (int i = 0; i < 3; i++)
      AppendChecked(&blob, &ref, 200 + i, 4096 * 4);
    EXPECT_EQ(client->GetStats().degraded_writes, degraded_before);
    VerifyReference(&blob, ref, "post-expiry");

    // Restart: re-registration flips the record alive immediately and the
    // provider rejoins the rotation (its in-memory store survived, like a
    // durable disk).
    ASSERT_TRUE(cluster.RestartProvider(victim).ok());
    EXPECT_EQ(LivenessOf(&cluster, victim_id), Liveness::kAlive);
    std::set<ProviderId> rejoined = AllocatedIds(&cluster, 20, 3);
    EXPECT_EQ(rejoined.count(victim_id), 1u);
    for (int i = 0; i < 3; i++)
      AppendChecked(&blob, &ref, 300 + i, 4096 * 4);
    VerifyReference(&blob, ref, "post-restart");
    checked = true;
  });
  EXPECT_TRUE(checked);
}

// --- Regression gate the other way: the same kill at w = r must fail ------

TEST(ChaosSimTest, KillMidBurstAtFullQuorumFailsCleanlyThenRoutesAround) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    // write_quorum = r: every replica must ack, the pre-quorum behaviour.
    core::SimCluster cluster(&sched, ChaosOptions(5, /*r=*/3, /*w=*/3));
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    ReferenceBlob ref;
    for (int i = 0; i < 3; i++)
      AppendChecked(&blob, &ref, i, 4096 * 4);

    ASSERT_TRUE(cluster.StopProvider(1).ok());
    EXPECT_EQ(LivenessOf(&cluster, 1), Liveness::kAlive);
    // 10 pages over 5 providers at r=3: replica sets certainly name the
    // dead provider, and with w=r one failed put sinks the update.
    auto failed = blob.Append(TestPayload(999, 4096 * 10));
    ASSERT_FALSE(failed.ok())
        << "w=r write with a dead replica must not succeed";
    VerifyReference(&blob, ref, "clean failure");

    // Once the detector expires the victim, allocation routes around it
    // and w=r writes work again on the 4 survivors.
    cluster.clock().SleepForMicros(kDeadAfter + 2 * kBeat);
    EXPECT_EQ(LivenessOf(&cluster, 1), Liveness::kDead);
    for (int i = 0; i < 3; i++)
      AppendChecked(&blob, &ref, 500 + i, 4096 * 4);
    VerifyReference(&blob, ref, "routed around");
    checked = true;
  });
  EXPECT_TRUE(checked);
}

// --- Scripted heartbeat loss: suspect, flap back, fallback ----------------

TEST(ChaosSimTest, SuspectFlapsBackAliveWithoutReregistration) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    core::SimCluster cluster(&sched, ChaosOptions(5, /*r=*/2, /*w=*/2));
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    ReferenceBlob ref;
    AppendChecked(&blob, &ref, 1, 4096 * 3);

    // Drop the provider's control-plane RPCs; its process (and the data
    // path) stays up. After the suspect window it must be excluded from
    // allocation while 4 alive providers cover r=2.
    const size_t flappy = 3;
    const ProviderId flappy_id = 3;
    cluster.SetHeartbeatLoss(flappy, true);
    cluster.clock().SleepForMicros(kSuspectAfter + 2 * kBeat);
    EXPECT_EQ(LivenessOf(&cluster, flappy_id), Liveness::kSuspect);
    EXPECT_GT(cluster.provider(flappy).heartbeat_failures(), 0u);
    std::set<ProviderId> allocated = AllocatedIds(&cluster, 20, 2);
    EXPECT_EQ(allocated.count(flappy_id), 0u);
    AppendChecked(&blob, &ref, 2, 4096 * 4);
    VerifyReference(&blob, ref, "suspect excluded");

    // Heartbeats resume before the dead threshold: the record flips back
    // to alive on the next beat — no re-registration, same id — and the
    // provider rejoins the rotation.
    cluster.SetHeartbeatLoss(flappy, false);
    cluster.clock().SleepForMicros(2 * kBeat);
    EXPECT_EQ(LivenessOf(&cluster, flappy_id), Liveness::kAlive);
    std::set<ProviderId> rejoined = AllocatedIds(&cluster, 20, 2);
    EXPECT_EQ(rejoined.count(flappy_id), 1u);
    AppendChecked(&blob, &ref, 3, 4096 * 4);
    VerifyReference(&blob, ref, "flapped back");
    checked = true;
  });
  EXPECT_TRUE(checked);
}

TEST(ChaosSimTest, SuspectFallbackKeepsWritesAliveWhenLiveBelowR) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    core::SimCluster cluster(&sched, ChaosOptions(4, /*r=*/3, /*w=*/3));
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    ReferenceBlob ref;
    AppendChecked(&blob, &ref, 1, 4096 * 3);

    // Two of four providers go heartbeat-silent (processes still up). Live
    // capacity (2) < r (3): allocation must fall back to suspects instead
    // of failing, and the writes land because only the control plane was
    // partitioned.
    cluster.SetHeartbeatLoss(2, true);
    cluster.SetHeartbeatLoss(3, true);
    cluster.clock().SleepForMicros(kSuspectAfter + 2 * kBeat);
    EXPECT_EQ(LivenessOf(&cluster, 2), Liveness::kSuspect);
    EXPECT_EQ(LivenessOf(&cluster, 3), Liveness::kSuspect);
    std::set<ProviderId> allocated = AllocatedIds(&cluster, 10, 3);
    EXPECT_TRUE(allocated.count(2) == 1 || allocated.count(3) == 1)
        << "live capacity < r must pull suspects into the pool";
    for (int i = 0; i < 3; i++)
      AppendChecked(&blob, &ref, 10 + i, 4096 * 4);
    VerifyReference(&blob, ref, "suspect fallback");
    checked = true;
  });
  EXPECT_TRUE(checked);
}

// --- Writes fail cleanly when too few replicas can ack --------------------

TEST(ChaosSimTest, WritesFailCleanlyWhenLiveBelowW) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    core::SimCluster cluster(&sched, ChaosOptions(4, /*r=*/3, /*w=*/2));
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    ReferenceBlob ref;
    for (int i = 0; i < 2; i++)
      AppendChecked(&blob, &ref, i, 4096 * 4);

    // Phase 1 — before expiry: the detector still hands out the two dead
    // providers, so replica sets naming both get one ack < w and the
    // update must fail at the quorum, cleanly.
    ASSERT_TRUE(cluster.StopProvider(1).ok());
    ASSERT_TRUE(cluster.StopProvider(2).ok());
    bool any_failed = false;
    for (int i = 0; i < 4 && !any_failed; i++) {
      std::string payload = TestPayload(600 + i, 4096 * 6);
      auto v = blob.Append(payload);
      if (v.ok()) {
        ref.ApplyAppend(payload);
      } else {
        any_failed = true;
      }
    }
    EXPECT_TRUE(any_failed)
        << "a replica set naming both dead providers must miss w=2";
    VerifyReference(&blob, ref, "quorum failure");

    // Phase 2 — after expiry: 2 alive + 0 suspect < r=3, so allocation
    // itself refuses with Unavailable (no sloppy write below the replica
    // target) — still a clean failure, and published data stays readable
    // (every r=3 set over 4 providers contains a survivor).
    cluster.clock().SleepForMicros(kDeadAfter + 2 * kBeat);
    EXPECT_EQ(LivenessOf(&cluster, 1), Liveness::kDead);
    EXPECT_EQ(LivenessOf(&cluster, 2), Liveness::kDead);
    auto v = blob.Append(TestPayload(700, 4096 * 2));
    EXPECT_TRUE(v.status().IsUnavailable()) << v.status().ToString();
    VerifyReference(&blob, ref, "allocation refusal");

    // Restarting one victim restores r-coverage; writes flow again.
    ASSERT_TRUE(cluster.RestartProvider(1).ok());
    EXPECT_EQ(LivenessOf(&cluster, 1), Liveness::kAlive);
    for (int i = 0; i < 2; i++)
      AppendChecked(&blob, &ref, 800 + i, 4096 * 4);
    VerifyReference(&blob, ref, "restored");
    checked = true;
  });
  EXPECT_TRUE(checked);
}

// --- Real-clock smoke: the same detector on the embedded cluster ----------

TEST(ChaosEmbeddedTest, RealClockHeartbeatsExpireAndRestartRejoins) {
  core::ClusterOptions opts;
  opts.num_providers = 3;
  opts.num_meta = 2;
  opts.replication = 2;
  opts.heartbeat_interval_us = 10 * kMs;
  opts.suspect_after_us = 100 * kMs;
  opts.dead_after_us = 250 * kMs;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  ReferenceBlob ref;
  std::string base = TestPayload(0, 64 * 6);
  ASSERT_TRUE(blob.AppendSync(base).ok());
  ref.ApplyAppend(base);

  ASSERT_TRUE((*cluster)->StopProvider(0).ok());
  // Poll (bounded) until the detector declares the victim dead; the two
  // survivors must keep beating through it all.
  auto liveness_of = [&](ProviderId pid) {
    for (const ProviderRecord& r : (*cluster)->pmanager().Records()) {
      if (r.id == pid) return r.liveness;
    }
    return Liveness::kDead;
  };
  Stopwatch deadline;
  while (deadline.ElapsedSeconds() < 10.0 &&
         liveness_of(0) != Liveness::kDead) {
    RealClock::Default()->SleepForMicros(10 * kMs);
  }
  ASSERT_EQ(liveness_of(0), Liveness::kDead);

  // Allocation now routes around the corpse: full-quorum r=2 writes on
  // the two survivors.
  std::string tail = TestPayload(1, 64 * 6);
  ASSERT_TRUE(blob.AppendSync(tail).ok());
  ref.ApplyAppend(tail);

  // Restart and rejoin. A fresh client is used for the post-restart write:
  // the old one may hold cached channels to the pre-restart endpoint
  // (real transports reconnect lazily; see docs/liveness.md).
  ASSERT_TRUE((*cluster)->RestartProvider(0).ok());
  Stopwatch rejoin;
  while (rejoin.ElapsedSeconds() < 10.0 &&
         liveness_of(0) != Liveness::kAlive) {
    RealClock::Default()->SleepForMicros(10 * kMs);
  }
  ASSERT_EQ(liveness_of(0), Liveness::kAlive);
  auto client2 = (*cluster)->NewClient();
  ASSERT_TRUE(client2.ok());
  Blob blob2(client2->get(), *id);
  std::string more = TestPayload(2, 64 * 6);
  ASSERT_TRUE(blob2.AppendSync(more).ok());
  ref.ApplyAppend(more);
  VerifyReference(&blob2, ref, "real-clock restart");

  uint64_t beats = (*cluster)->provider(1).heartbeats_sent();
  EXPECT_GT(beats, 0u);
}

}  // namespace
}  // namespace blobseer
