// Heavy-concurrency tests: the paper's central claim is that READ, WRITE
// and APPEND from many clients proceed in parallel with no application-
// level synchronization while remaining atomic and totally ordered
// (sections 4.2, 4.3). These tests replay the resulting version history
// against the serial reference model.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "core/cluster.h"
#include "reference_blob.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using testing::ReferenceBlob;
using testing::TestPayload;

class ConcurrentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ClusterOptions opts;
    opts.num_providers = 6;
    opts.num_meta = 6;
    auto cluster = core::EmbeddedCluster::Start(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).ValueUnsafe();
  }

  std::unique_ptr<BlobClient> NewClient() {
    auto c = cluster_->NewClient();
    EXPECT_TRUE(c.ok());
    return std::move(c).ValueUnsafe();
  }

  std::unique_ptr<core::EmbeddedCluster> cluster_;
};

TEST_F(ConcurrentTest, ConcurrentAppendersProduceASerialHistory) {
  auto owner = NewClient();
  auto id = owner->Create(64);
  ASSERT_TRUE(id.ok());

  constexpr int kWriters = 8;
  constexpr int kAppendsEach = 12;
  std::mutex mu;
  std::map<Version, std::string> by_version;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      auto client = NewClient();
      for (int i = 0; i < kAppendsEach; i++) {
        std::string data = TestPayload(w * 1000 + i, 30 + (w * 7 + i) % 120);
        auto v = client->Append(*id, Slice(data));
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_TRUE(by_version.emplace(*v, data).second)
            << "duplicate version " << *v;
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(by_version.size(), size_t{kWriters * kAppendsEach});
  // Versions are dense 1..N.
  EXPECT_EQ(by_version.begin()->first, 1u);
  EXPECT_EQ(by_version.rbegin()->first, Version{kWriters * kAppendsEach});

  ASSERT_TRUE(owner->Sync(*id, by_version.rbegin()->first).ok());

  // Replaying appends in version order must reproduce every snapshot.
  ReferenceBlob ref;
  for (auto& [v, data] : by_version) {
    ASSERT_EQ(ref.ApplyAppend(data), v);
  }
  for (Version v = 1; v <= ref.latest(); v += 5) {
    std::string out;
    ASSERT_TRUE(owner->Read(*id, v, 0, ref.Size(v), &out).ok()) << "v" << v;
    ASSERT_EQ(out, ref.Contents(v)) << "v" << v;
  }
  std::string out;
  ASSERT_TRUE(
      owner->Read(*id, ref.latest(), 0, ref.Size(ref.latest()), &out).ok());
  ASSERT_EQ(out, ref.Contents(ref.latest()));
}

TEST_F(ConcurrentTest, ConcurrentOverlappingWritesStayAtomic) {
  auto owner = NewClient();
  auto id = owner->Create(64);
  ASSERT_TRUE(id.ok());
  // Pre-size the blob so all writers hit a valid range.
  Blob blob(owner.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 1024)).ok());

  constexpr int kWriters = 6;
  constexpr int kWritesEach = 10;
  std::mutex mu;
  std::map<Version, std::pair<uint64_t, std::string>> by_version;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      auto client = NewClient();
      for (int i = 0; i < kWritesEach; i++) {
        // Overlapping unaligned ranges across writers.
        uint64_t off = (w * 131 + i * 61) % 900;
        std::string data = TestPayload(w * 100 + i, 40 + (i * 17) % 80);
        auto v = client->Write(*id, Slice(data), off);
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        by_version.emplace(*v, std::make_pair(off, data));
      }
    });
  }
  for (auto& t : threads) t.join();

  Version last = by_version.rbegin()->first;
  ASSERT_TRUE(owner->Sync(*id, last).ok());

  ReferenceBlob ref;
  ref.ApplyAppend(TestPayload(0, 1024));
  for (auto& [v, op] : by_version) {
    ASSERT_EQ(ref.ApplyWrite(op.second, op.first), v);
  }
  // Every intermediate snapshot equals the serial replay: updates applied
  // atomically, in version order, with no lost or interleaved bytes.
  for (Version v = 1; v <= ref.latest(); v++) {
    std::string out;
    ASSERT_TRUE(owner->Read(*id, v, 0, ref.Size(v), &out).ok()) << "v" << v;
    ASSERT_EQ(out, ref.Contents(v)) << "v" << v;
  }
}

TEST_F(ConcurrentTest, ReadersRunAgainstActiveWriters) {
  auto owner = NewClient();
  auto id = owner->Create(128);
  ASSERT_TRUE(id.ok());
  Blob blob(owner.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 2048)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> read_failures{0};
  std::atomic<int> reads_done{0};

  // Readers continuously read whatever GET_RECENT reports; every read must
  // return a complete, consistent snapshot (correct size, no errors).
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; r++) {
    readers.emplace_back([&] {
      auto client = NewClient();
      while (!stop.load()) {
        auto v = client->GetRecent(*id);
        if (!v.ok()) {
          read_failures++;
          continue;
        }
        std::string out;
        Status s = client->Read(*id, v->version, 0, v->size, &out);
        if (!s.ok() || out.size() != v->size) read_failures++;
        reads_done++;
      }
    });
  }

  auto writer = NewClient();
  ReferenceBlob ref;
  ref.ApplyAppend(TestPayload(0, 2048));
  for (int i = 1; i <= 30; i++) {
    std::string data = TestPayload(i, 64 + (i * 29) % 400);
    if (i % 3 == 0) {
      uint64_t off = (i * 173) % 1500;
      ASSERT_TRUE(writer->Write(*id, Slice(data), off).ok());
      ref.ApplyWrite(data, off);
    } else {
      ASSERT_TRUE(writer->Append(*id, Slice(data)).ok());
      ref.ApplyAppend(data);
    }
  }
  ASSERT_TRUE(writer->Sync(*id, ref.latest()).ok());
  // On a loaded machine the reader threads (each constructing its own
  // client) may not have completed a single loop by the time the scripted
  // writes finish; give them a bounded window before stopping.
  Stopwatch warmup;
  while (reads_done.load() == 0 && warmup.ElapsedSeconds() < 10.0) {
    RealClock::Default()->SleepForMicros(1000);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(read_failures.load(), 0);
  EXPECT_GT(reads_done.load(), 0);
  // Final contents match the reference.
  std::string out;
  ASSERT_TRUE(
      owner->Read(*id, ref.latest(), 0, ref.Size(ref.latest()), &out).ok());
  EXPECT_EQ(out, ref.Contents(ref.latest()));
}

TEST_F(ConcurrentTest, ManyBlobsUpdatedConcurrently) {
  constexpr int kBlobs = 6;
  auto owner = NewClient();
  std::vector<BlobId> ids;
  for (int i = 0; i < kBlobs; i++) {
    auto id = owner->Create(64);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  std::vector<std::thread> threads;
  for (int b = 0; b < kBlobs; b++) {
    threads.emplace_back([&, b] {
      auto client = NewClient();
      ReferenceBlob ref;
      for (int i = 0; i < 15; i++) {
        std::string data = TestPayload(b * 100 + i, 50);
        auto v = client->Append(ids[b], Slice(data));
        ASSERT_TRUE(v.ok());
        ASSERT_EQ(*v, ref.ApplyAppend(data));
      }
      ASSERT_TRUE(client->Sync(ids[b], ref.latest()).ok());
      std::string out;
      ASSERT_TRUE(
          client->Read(ids[b], ref.latest(), 0, 15 * 50, &out).ok());
      ASSERT_EQ(out, ref.Contents(ref.latest()));
    });
  }
  for (auto& t : threads) t.join();
}

TEST_F(ConcurrentTest, SharedClientIsThreadSafe) {
  auto client = NewClient();
  auto id = client->Create(64);
  ASSERT_TRUE(id.ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < 6; w++) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 10; i++) {
        std::string data = TestPayload(w * 50 + i, 77);
        if (!client->Append(*id, Slice(data)).ok()) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(client->Sync(*id, 60).ok());
  auto v = client->GetRecent(*id);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->version, 60u);
  EXPECT_EQ(v->size, 60u * 77u);
}

}  // namespace
}  // namespace blobseer
