// Data provider tests: the three page-store engines and the RPC service.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "provider/client.h"
#include "provider/page_store.h"
#include "provider/service.h"
#include "rpc/inproc.h"

namespace blobseer::provider {
namespace {

class PageStoreTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "file") {
      dir_ = ::testing::TempDir() + "/bs_pages_" +
             std::to_string(reinterpret_cast<uintptr_t>(this));
      store_ = MakeFilePageStore(dir_);
    } else if (GetParam() == "null") {
      store_ = MakeNullPageStore();
    } else {
      store_ = MakeMemoryPageStore();
    }
  }
  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  bool stores_content() const { return GetParam() != "null"; }

  std::unique_ptr<PageStore> store_;
  std::string dir_;
};

TEST_P(PageStoreTest, PutReadWholeAndRange) {
  PageId id{1, 1};
  ASSERT_TRUE(store_->Put(id, Slice("0123456789")).ok());
  std::string out;
  ASSERT_TRUE(store_->Read(id, 0, 0, &out).ok());  // len 0 = whole object
  ASSERT_EQ(out.size(), 10u);
  if (stores_content()) {
    EXPECT_EQ(out, "0123456789");
  }
  ASSERT_TRUE(store_->Read(id, 3, 4, &out).ok());
  ASSERT_EQ(out.size(), 4u);
  if (stores_content()) {
    EXPECT_EQ(out, "3456");
  }
}

TEST_P(PageStoreTest, ReadBeyondObjectFails) {
  PageId id{1, 2};
  ASSERT_TRUE(store_->Put(id, Slice("abc")).ok());
  std::string out;
  EXPECT_TRUE(store_->Read(id, 0, 4, &out).IsOutOfRange());
  EXPECT_TRUE(store_->Read(id, 4, 0, &out).IsOutOfRange());
}

TEST_P(PageStoreTest, MissingPageIsNotFound) {
  std::string out;
  EXPECT_TRUE(store_->Read(PageId{9, 9}, 0, 0, &out).IsNotFound());
}

TEST_P(PageStoreTest, IdempotentReplayAllowedRewriteRejected) {
  PageId id{1, 3};
  ASSERT_TRUE(store_->Put(id, Slice("samesize")).ok());
  // Same id, same size: idempotent replay of a retried RPC.
  EXPECT_TRUE(store_->Put(id, Slice("samesize")).ok());
  // Same id, different size: protocol violation (pages are immutable).
  EXPECT_TRUE(store_->Put(id, Slice("longer-content")).IsAlreadyExists());
}

TEST_P(PageStoreTest, DeleteFreesSpace) {
  PageId id{1, 4};
  ASSERT_TRUE(store_->Put(id, Slice("xxxxxxxx")).ok());
  EXPECT_EQ(store_->GetStats().pages, 1u);
  EXPECT_EQ(store_->GetStats().bytes, 8u);
  ASSERT_TRUE(store_->Delete(id).ok());
  EXPECT_EQ(store_->GetStats().pages, 0u);
  EXPECT_EQ(store_->GetStats().bytes, 0u);
  std::string out;
  EXPECT_TRUE(store_->Read(id, 0, 0, &out).IsNotFound());
  ASSERT_TRUE(store_->Delete(id).ok());  // idempotent
}

TEST_P(PageStoreTest, ManyPages) {
  for (uint64_t i = 0; i < 200; i++) {
    ASSERT_TRUE(store_->Put(PageId{7, i}, Slice("payload")).ok());
  }
  EXPECT_EQ(store_->GetStats().pages, 200u);
  std::string out;
  ASSERT_TRUE(store_->Read(PageId{7, 137}, 2, 3, &out).ok());
  if (stores_content()) {
    EXPECT_EQ(out, "ylo");
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, PageStoreTest,
                         ::testing::Values("memory", "file", "null"));

TEST(FilePageStoreTest, PersistsAcrossReopen) {
  std::string dir = ::testing::TempDir() + "/bs_persist";
  std::filesystem::remove_all(dir);
  {
    auto store = MakeFilePageStore(dir);
    ASSERT_TRUE(store->Put(PageId{3, 3}, Slice("durable")).ok());
  }
  {
    auto store = MakeFilePageStore(dir);
    std::string out;
    ASSERT_TRUE(store->Read(PageId{3, 3}, 0, 0, &out).ok());
    EXPECT_EQ(out, "durable");
  }
  std::filesystem::remove_all(dir);
}

TEST(ProviderServiceTest, EndToEndOverRpc) {
  rpc::InProcNetwork net;
  auto svc = std::make_shared<ProviderService>(MakeMemoryPageStore());
  ASSERT_TRUE(net.Serve("inproc://prov", svc).ok());

  ProviderClient client(&net);
  PageId id{5, 5};
  ASSERT_TRUE(client.WritePage("inproc://prov", id, Slice("hello page")).ok());
  std::string out;
  ASSERT_TRUE(client.ReadPage("inproc://prov", id, 6, 4, &out).ok());
  EXPECT_EQ(out, "page");
  uint64_t pages, bytes;
  ASSERT_TRUE(client.Stats("inproc://prov", &pages, &bytes).ok());
  EXPECT_EQ(pages, 1u);
  EXPECT_EQ(bytes, 10u);
  ASSERT_TRUE(client.DeletePage("inproc://prov", id).ok());
  EXPECT_TRUE(client.ReadPage("inproc://prov", id, 0, 0, &out).IsNotFound());
}

}  // namespace
}  // namespace blobseer::provider
