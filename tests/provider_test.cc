// Data provider tests: every page-store engine behind one parametrized
// fixture (memory, file, null, log) plus the RPC service.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "pagelog/log_page_store.h"
#include "provider/client.h"
#include "provider/page_store.h"
#include "provider/service.h"
#include "rpc/inproc.h"

namespace blobseer::provider {
namespace {

struct BackendParam {
  const char* name;
  bool stores_content;  ///< false for the size-only null engine
  bool durable;         ///< survives destroy + reopen on the same directory
};

void PrintTo(const BackendParam& p, std::ostream* os) { *os << p.name; }

std::unique_ptr<PageStore> MakeBackend(const std::string& name,
                                       const std::string& dir) {
  if (name == "file") return MakeFilePageStore(dir);
  if (name == "null") return MakeNullPageStore();
  if (name == "log") return pagelog::MakeLogPageStore(dir);
  return MakeMemoryPageStore();
}

class PageStoreTest : public ::testing::TestWithParam<BackendParam> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/bs_pages_" + GetParam().name + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    store_ = MakeBackend(GetParam().name, dir_);
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(dir_);
  }

  /// Destroys and reopens the store on the same directory (durable engines).
  void Reopen() {
    store_.reset();
    store_ = MakeBackend(GetParam().name, dir_);
  }

  bool stores_content() const { return GetParam().stores_content; }

  std::unique_ptr<PageStore> store_;
  std::string dir_;
};

TEST_P(PageStoreTest, PutReadWholeAndRange) {
  PageId id{1, 1};
  ASSERT_TRUE(store_->Put(id, Slice("0123456789")).ok());
  std::string out;
  ASSERT_TRUE(store_->Read(id, 0, 0, &out).ok());  // len 0 = whole object
  ASSERT_EQ(out.size(), 10u);
  if (stores_content()) {
    EXPECT_EQ(out, "0123456789");
  }
  ASSERT_TRUE(store_->Read(id, 3, 4, &out).ok());
  ASSERT_EQ(out.size(), 4u);
  if (stores_content()) {
    EXPECT_EQ(out, "3456");
  }
}

TEST_P(PageStoreTest, ReadBeyondObjectFails) {
  PageId id{1, 2};
  ASSERT_TRUE(store_->Put(id, Slice("abc")).ok());
  std::string out;
  EXPECT_TRUE(store_->Read(id, 0, 4, &out).IsOutOfRange());
  EXPECT_TRUE(store_->Read(id, 4, 0, &out).IsOutOfRange());
}

TEST_P(PageStoreTest, ReadRangeOverflowRejected) {
  PageId id{1, 5};
  ASSERT_TRUE(store_->Put(id, Slice("0123456789")).ok());
  std::string out;
  // offset + len wraps around uint64; must be OutOfRange, not a huge read.
  EXPECT_TRUE(store_->Read(id, 8, UINT64_MAX - 4, &out).IsOutOfRange());
  EXPECT_TRUE(store_->Read(id, UINT64_MAX, 2, &out).IsOutOfRange());
}

TEST_P(PageStoreTest, MissingPageIsNotFound) {
  std::string out;
  EXPECT_TRUE(store_->Read(PageId{9, 9}, 0, 0, &out).IsNotFound());
}

TEST_P(PageStoreTest, IdempotentReplayAllowedRewriteRejected) {
  PageId id{1, 3};
  ASSERT_TRUE(store_->Put(id, Slice("samesize")).ok());
  // Same id, same size: idempotent replay of a retried RPC.
  EXPECT_TRUE(store_->Put(id, Slice("samesize")).ok());
  // Same id, different size: protocol violation (pages are immutable).
  EXPECT_TRUE(store_->Put(id, Slice("longer-content")).IsAlreadyExists());
}

TEST_P(PageStoreTest, DeleteFreesSpace) {
  PageId id{1, 4};
  ASSERT_TRUE(store_->Put(id, Slice("xxxxxxxx")).ok());
  EXPECT_EQ(store_->GetStats().pages, 1u);
  EXPECT_EQ(store_->GetStats().bytes, 8u);
  ASSERT_TRUE(store_->Delete(id).ok());
  EXPECT_EQ(store_->GetStats().pages, 0u);
  EXPECT_EQ(store_->GetStats().bytes, 0u);
  std::string out;
  EXPECT_TRUE(store_->Read(id, 0, 0, &out).IsNotFound());
  ASSERT_TRUE(store_->Delete(id).ok());  // idempotent
}

TEST_P(PageStoreTest, ManyPages) {
  for (uint64_t i = 0; i < 200; i++) {
    ASSERT_TRUE(store_->Put(PageId{7, i}, Slice("payload")).ok());
  }
  EXPECT_EQ(store_->GetStats().pages, 200u);
  std::string out;
  ASSERT_TRUE(store_->Read(PageId{7, 137}, 2, 3, &out).ok());
  if (stores_content()) {
    EXPECT_EQ(out, "ylo");
  }
}

TEST_P(PageStoreTest, CompactIsAlwaysSafe) {
  for (uint64_t i = 0; i < 16; i++) {
    ASSERT_TRUE(store_->Put(PageId{8, i}, Slice("compactable")).ok());
  }
  for (uint64_t i = 0; i < 8; i++) {
    ASSERT_TRUE(store_->Delete(PageId{8, i}).ok());
  }
  ASSERT_TRUE(store_->Compact().ok());
  EXPECT_EQ(store_->GetStats().pages, 8u);
  std::string out;
  ASSERT_TRUE(store_->Read(PageId{8, 12}, 0, 0, &out).ok());
  if (stores_content()) {
    EXPECT_EQ(out, "compactable");
  }
}

TEST_P(PageStoreTest, PersistsAcrossReopen) {
  if (!GetParam().durable) GTEST_SKIP() << "engine is not durable";
  ASSERT_TRUE(store_->Put(PageId{3, 3}, Slice("durable")).ok());
  ASSERT_TRUE(store_->Put(PageId{3, 4}, Slice("")).ok());  // empty page
  Reopen();
  std::string out;
  ASSERT_TRUE(store_->Read(PageId{3, 3}, 0, 0, &out).ok());
  EXPECT_EQ(out, "durable");
  ASSERT_TRUE(store_->Read(PageId{3, 4}, 0, 0, &out).ok());
  EXPECT_EQ(out, "");
  EXPECT_EQ(store_->GetStats().pages, 2u);
  // Immutability survives the reopen too.
  EXPECT_TRUE(store_->Put(PageId{3, 3}, Slice("other-size")).IsAlreadyExists());
}

TEST_P(PageStoreTest, DeletePersistsAcrossReopen) {
  if (!GetParam().durable) GTEST_SKIP() << "engine is not durable";
  ASSERT_TRUE(store_->Put(PageId{4, 1}, Slice("kept")).ok());
  ASSERT_TRUE(store_->Put(PageId{4, 2}, Slice("gone")).ok());
  ASSERT_TRUE(store_->Delete(PageId{4, 2}).ok());
  Reopen();
  std::string out;
  ASSERT_TRUE(store_->Read(PageId{4, 1}, 0, 0, &out).ok());
  EXPECT_EQ(out, "kept");
  EXPECT_TRUE(store_->Read(PageId{4, 2}, 0, 0, &out).IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(
    Engines, PageStoreTest,
    ::testing::Values(BackendParam{"memory", true, false},
                      BackendParam{"file", true, true},
                      BackendParam{"null", false, false},
                      BackendParam{"log", true, true}),
    [](const ::testing::TestParamInfo<BackendParam>& info) {
      return std::string(info.param.name);
    });

TEST(ProviderServiceTest, EndToEndOverRpc) {
  rpc::InProcNetwork net;
  auto svc = std::make_shared<ProviderService>(MakeMemoryPageStore());
  ASSERT_TRUE(net.Serve("inproc://prov", svc).ok());

  ProviderClient client(&net);
  PageId id{5, 5};
  ASSERT_TRUE(client.WritePage("inproc://prov", id, Slice("hello page")).ok());
  std::string out;
  ASSERT_TRUE(client.ReadPage("inproc://prov", id, 6, 4, &out).ok());
  EXPECT_EQ(out, "page");
  uint64_t pages, bytes;
  ASSERT_TRUE(client.Stats("inproc://prov", &pages, &bytes).ok());
  EXPECT_EQ(pages, 1u);
  EXPECT_EQ(bytes, 10u);
  ASSERT_TRUE(client.DeletePage("inproc://prov", id).ok());
  EXPECT_TRUE(client.ReadPage("inproc://prov", id, 0, 0, &out).IsNotFound());
}

TEST(ProviderServiceTest, ExtendedStatsTravelTheRpc) {
  // The log-structured backend's extension fields (segments, dead_bytes,
  // syncs, compactions) and the delete counter must survive the Stats RPC
  // round trip field-for-field.
  std::string dir = ::testing::TempDir() + "/bs_stats_rpc";
  std::filesystem::remove_all(dir);
  rpc::InProcNetwork net;
  auto svc =
      std::make_shared<ProviderService>(pagelog::MakeLogPageStore(dir));
  ASSERT_TRUE(net.Serve("inproc://prov", svc).ok());

  ProviderClient client(&net);
  ASSERT_TRUE(
      client.WritePage("inproc://prov", PageId{1, 1}, Slice("abcd")).ok());
  ASSERT_TRUE(
      client.WritePage("inproc://prov", PageId{1, 2}, Slice("efgh")).ok());
  ASSERT_TRUE(client.DeletePage("inproc://prov", PageId{1, 1}).ok());

  auto stats = client.FetchStats("inproc://prov");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  PageStoreStats direct = svc->store().GetStats();
  EXPECT_EQ(stats->pages, direct.pages);
  EXPECT_EQ(stats->bytes, direct.bytes);
  EXPECT_EQ(stats->writes, direct.writes);
  EXPECT_EQ(stats->reads, direct.reads);
  EXPECT_EQ(stats->deletes, direct.deletes);
  EXPECT_EQ(stats->segments, direct.segments);
  EXPECT_EQ(stats->dead_bytes, direct.dead_bytes);
  EXPECT_EQ(stats->syncs, direct.syncs);
  EXPECT_EQ(stats->compactions, direct.compactions);
  EXPECT_EQ(stats->io_submissions, direct.io_submissions);
  EXPECT_EQ(stats->io_sqes, direct.io_sqes);
  EXPECT_EQ(stats->bytes_written, direct.bytes_written);
  EXPECT_EQ(stats->read_syscalls, direct.read_syscalls);
  EXPECT_EQ(stats->recovery_us, direct.recovery_us);
  // The log backend actually populates the extension fields.
  EXPECT_EQ(stats->deletes, 1u);
  EXPECT_GE(stats->segments, 1u);
  EXPECT_GT(stats->dead_bytes, 0u);
  EXPECT_GE(stats->syncs, 1u);
  EXPECT_GT(stats->io_submissions, 0u);
  EXPECT_GT(stats->bytes_written, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace blobseer::provider
