// End-to-end tests of the paper's interface (section 2.1) against an
// embedded cluster: single-client semantics, versioning, page sharing.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "reference_blob.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using testing::ReferenceBlob;
using testing::TestPayload;

class ClientBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ClusterOptions opts;
    opts.num_providers = 4;
    opts.num_meta = 4;
    auto cluster = core::EmbeddedCluster::Start(opts);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).ValueUnsafe();
    auto client = cluster_->NewClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).ValueUnsafe();
  }

  std::unique_ptr<core::EmbeddedCluster> cluster_;
  std::unique_ptr<BlobClient> client_;
};

TEST_F(ClientBasicTest, CreateReturnsDistinctIds) {
  auto a = client_->Create(64);
  auto b = client_->Create(64);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST_F(ClientBasicTest, EmptyBlobSemantics) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  auto v = client_->GetRecent(*id);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->version, 0u);
  EXPECT_EQ(v->size, 0u);
  std::string out;
  // Zero-length read of the empty snapshot succeeds...
  EXPECT_TRUE(client_->Read(*id, 0, 0, 0, &out).ok());
  // ...but any byte is out of range, and unpublished versions fail.
  EXPECT_TRUE(client_->Read(*id, 0, 0, 1, &out).IsOutOfRange());
  EXPECT_FALSE(client_->Read(*id, 1, 0, 1, &out).ok());
}

TEST_F(ClientBasicTest, AppendReadRoundTrip) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  std::string payload = TestPayload(1, 1000);  // ~16 pages
  auto v = blob.AppendSync(payload);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, 1u);
  std::string out;
  ASSERT_TRUE(blob.Read(1, 0, 1000, &out).ok());
  EXPECT_EQ(out, payload);
  // Partial reads at arbitrary unaligned boundaries.
  ASSERT_TRUE(blob.Read(1, 63, 130, &out).ok());
  EXPECT_EQ(out, payload.substr(63, 130));
  ASSERT_TRUE(blob.Read(1, 999, 1, &out).ok());
  EXPECT_EQ(out, payload.substr(999, 1));
}

TEST_F(ClientBasicTest, EveryVersionStaysReadable) {
  auto id = client_->Create(32);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  // A mix of appends and overwrites; verify all snapshots afterwards.
  struct Op {
    bool append;
    uint64_t offset;
    std::string data;
  };
  std::vector<Op> ops = {
      {true, 0, TestPayload(1, 100)},  {true, 0, TestPayload(2, 64)},
      {false, 32, TestPayload(3, 32)}, {false, 0, TestPayload(4, 200)},
      {true, 0, TestPayload(5, 17)},   {false, 150, TestPayload(6, 90)},
  };
  for (const Op& op : ops) {
    if (op.append) {
      auto v = blob.AppendSync(op.data);
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      ASSERT_EQ(*v, ref.ApplyAppend(op.data));
    } else {
      auto v = blob.WriteSync(op.data, op.offset);
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      ASSERT_EQ(*v, ref.ApplyWrite(op.data, op.offset));
    }
  }
  for (Version v = 0; v <= ref.latest(); v++) {
    auto size = blob.GetSize(v);
    ASSERT_TRUE(size.ok());
    ASSERT_EQ(*size, ref.Size(v)) << "version " << v;
    std::string out;
    ASSERT_TRUE(blob.Read(v, 0, *size, &out).ok()) << "version " << v;
    ASSERT_EQ(out, ref.Contents(v)) << "version " << v;
  }
}

TEST_F(ClientBasicTest, WriteBeyondEndFailsAndLeaksNothing) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(1, 64)).ok());
  auto bad = blob.Write(TestPayload(2, 10), 100);
  EXPECT_TRUE(bad.status().IsOutOfRange());
  // The rejected write's pre-stored pages were garbage-collected.
  uint64_t pages, bytes;
  ASSERT_TRUE(cluster_->TotalProviderUsage(&pages, &bytes).ok());
  EXPECT_EQ(pages, 1u);
  EXPECT_EQ(bytes, 64u);
  // The version chain is unharmed.
  auto v = blob.AppendSync(TestPayload(3, 10));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2u);
}

TEST_F(ClientBasicTest, ReadValidation) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(1, 100)).ok());
  std::string out;
  EXPECT_TRUE(blob.Read(1, 50, 51, &out).IsOutOfRange());
  EXPECT_FALSE(blob.Read(7, 0, 1, &out).ok());  // never published
  // In-flight (assigned, unpublished) version is not readable either.
  ASSERT_TRUE(client_->vmanager().AssignVersion(*id, true, 0, 10).ok());
  EXPECT_FALSE(blob.Read(2, 0, 1, &out).ok());
}

TEST_F(ClientBasicTest, UnmodifiedPagesArePhysicallyShared) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  // 8 pages, then overwrite one page; only 1 new page is stored (paper
  // section 4.3, "efficient use of storage space").
  ASSERT_TRUE(blob.AppendSync(TestPayload(1, 512)).ok());
  uint64_t pages0, bytes0;
  ASSERT_TRUE(cluster_->TotalProviderUsage(&pages0, &bytes0).ok());
  EXPECT_EQ(pages0, 8u);
  ASSERT_TRUE(blob.WriteSync(TestPayload(2, 64), 128).ok());
  uint64_t pages1, bytes1;
  ASSERT_TRUE(cluster_->TotalProviderUsage(&pages1, &bytes1).ok());
  EXPECT_EQ(pages1, 9u);
  EXPECT_EQ(bytes1 - bytes0, 64u);
  // Both versions still read correctly.
  std::string v1, v2;
  ASSERT_TRUE(blob.Read(1, 0, 512, &v1).ok());
  ASSERT_TRUE(blob.Read(2, 0, 512, &v2).ok());
  EXPECT_EQ(v1.substr(0, 128), v2.substr(0, 128));
  EXPECT_EQ(v2.substr(128, 64), TestPayload(2, 64));
  EXPECT_EQ(v1.substr(192), v2.substr(192));
}

TEST_F(ClientBasicTest, SyncTimesOutOnStalledVersion) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  // Stall the pipeline: an assigned version that never completes.
  ASSERT_TRUE(client_->vmanager().AssignVersion(*id, true, 0, 10).ok());
  EXPECT_TRUE(client_->Sync(*id, 1, 50 * 1000).IsTimedOut());
}

TEST_F(ClientBasicTest, GetRecentIsMonotonic) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  Version last = 0;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(blob.AppendSync(TestPayload(i, 33)).ok());
    auto v = blob.GetRecent();
    ASSERT_TRUE(v.ok());
    EXPECT_GE(v->version, last);
    last = v->version;
  }
  EXPECT_EQ(last, 10u);
}

TEST_F(ClientBasicTest, SecondClientSeesPublishedData) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  std::string payload = TestPayload(9, 300);
  ASSERT_TRUE(blob.AppendSync(payload).ok());

  auto other = cluster_->NewClient();
  ASSERT_TRUE(other.ok());
  std::string out;
  ASSERT_TRUE((*other)->Read(*id, 1, 0, 300, &out).ok());
  EXPECT_EQ(out, payload);
}

TEST_F(ClientBasicTest, LargeMultiPageReadAcrossManyUpdates) {
  auto id = client_->Create(128);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  for (int i = 0; i < 40; i++) {
    std::string data = TestPayload(i, 100 + i * 13);
    ASSERT_TRUE(blob.AppendSync(data).ok());
    ref.ApplyAppend(data);
  }
  std::string out;
  auto size = blob.GetSize(40);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(blob.Read(40, 0, *size, &out).ok());
  EXPECT_EQ(out, ref.Contents(40));
  // Middle slice spanning many update boundaries.
  ASSERT_TRUE(blob.Read(40, 500, 3000, &out).ok());
  EXPECT_EQ(out, ref.Read(40, 500, 3000));
}

TEST_F(ClientBasicTest, WorksOverTcpLoopback) {
  core::ClusterOptions opts;
  opts.num_providers = 3;
  opts.num_meta = 2;
  opts.transport = "tcp";
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  std::string payload = TestPayload(4, 1000);
  auto v = blob.AppendSync(payload);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  std::string out;
  ASSERT_TRUE(blob.Read(*v, 0, 1000, &out).ok());
  EXPECT_EQ(out, payload);
  ASSERT_TRUE(blob.WriteSync(TestPayload(5, 64), 10).ok());
  ASSERT_TRUE(blob.Read(2, 0, 1000, &out).ok());
  std::string want = payload;
  want.replace(10, 64, TestPayload(5, 64));
  EXPECT_EQ(out, want);
}

TEST_F(ClientBasicTest, FileBackedProvidersRoundTrip) {
  core::ClusterOptions opts;
  opts.num_providers = 2;
  opts.num_meta = 2;
  opts.page_store = "file:" + ::testing::TempDir() + "/bs_cluster_pages";
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  std::string payload = TestPayload(11, 500);
  ASSERT_TRUE(blob.AppendSync(payload).ok());
  std::string out;
  ASSERT_TRUE(blob.Read(1, 0, 500, &out).ok());
  EXPECT_EQ(out, payload);
}

}  // namespace
}  // namespace blobseer
