// Exhaustive and property tests for the segment-tree layout math — the
// correctness core of the paper's metadata scheme (section 4).
#include <gtest/gtest.h>

#include <set>

#include "common/math_util.h"
#include "common/random.h"
#include "meta/layout.h"

namespace blobseer::meta {
namespace {

TEST(LayoutTest, RootSizeMatchesPaperFigure1) {
  // Paper Figure 1: 4-page blob -> root covers (0,4); appending a fifth
  // page expands the root to (0,8). psize = 1 in the figure.
  EXPECT_EQ(RootSizeBytes(4, 1), 4u);
  EXPECT_EQ(RootSizeBytes(5, 1), 8u);
  EXPECT_EQ(RootSizeBytes(0, 1), 1u);
  EXPECT_EQ(RootSizeBytes(1, 64), 64u);
  EXPECT_EQ(RootSizeBytes(65, 64), 128u);
  EXPECT_EQ(RootSizeBytes(64 * 1024 * 3, 64 * 1024), 64u * 1024 * 4);
}

TEST(LayoutTest, NumPages) {
  EXPECT_EQ(NumPages(0, 4), 1u);
  EXPECT_EQ(NumPages(1, 4), 1u);
  EXPECT_EQ(NumPages(4, 4), 1u);
  EXPECT_EQ(NumPages(5, 4), 2u);
}

TEST(LayoutTest, BlockValidity) {
  EXPECT_TRUE(IsValidBlock(Extent{0, 4}, 4));
  EXPECT_TRUE(IsValidBlock(Extent{8, 8}, 4));
  EXPECT_FALSE(IsValidBlock(Extent{4, 8}, 4));   // misaligned
  EXPECT_FALSE(IsValidBlock(Extent{0, 12}, 4));  // not pow2 multiple
  EXPECT_FALSE(IsValidBlock(Extent{0, 2}, 4));   // smaller than a page
}

TEST(LayoutTest, ParentChildNavigation) {
  Extent leaf{12, 4};
  Extent parent = ParentBlock(leaf);
  EXPECT_EQ(parent, (Extent{8, 8}));
  EXPECT_EQ(LeftChildBlock(parent), (Extent{8, 4}));
  EXPECT_EQ(RightChildBlock(parent), (Extent{12, 4}));
  EXPECT_FALSE(IsLeftChild(leaf));
  EXPECT_TRUE(IsLeftChild(Extent{8, 4}));
}

TEST(LayoutTest, NodeSetMatchesPaperFigure1b) {
  // Paper Figure 1(b): overwriting pages 2 and 3 (0-based: offsets 1,2) of
  // a 4-page blob creates nodes (1,1), (2,1), (0,2), (2,2), (0,4).
  auto set = UpdateNodeSet(Extent{1, 2}, 4, 1);
  std::set<Extent> got(set.begin(), set.end());
  std::set<Extent> want{{1, 1}, {2, 1}, {0, 2}, {2, 2}, {0, 4}};
  EXPECT_EQ(got, want);
}

TEST(LayoutTest, NodeSetMatchesPaperFigure1cAppend) {
  // Paper Figure 1(c): appending the 5th page creates leaf (4,1), inner
  // (4,2), (4,4) and the new root (0,8).
  auto set = UpdateNodeSet(Extent{4, 1}, 5, 1);
  std::set<Extent> got(set.begin(), set.end());
  std::set<Extent> want{{4, 1}, {4, 2}, {4, 4}, {0, 8}};
  EXPECT_EQ(got, want);
}

TEST(LayoutTest, BorderBlocksForPaperFigure1b) {
  // The grey tree of Figure 1(b) weaves to white nodes (0,1) and (3,1).
  auto borders = UpdateBorderBlocks(Extent{1, 2}, 4, 1);
  std::set<Extent> got(borders.begin(), borders.end());
  std::set<Extent> want{{0, 1}, {3, 1}};
  EXPECT_EQ(got, want);
}

TEST(LayoutTest, BorderBlocksForPaperFigure1cAppend) {
  // The black tree of Figure 1(c) weaves to the old root (0,4) and the
  // never-written hole (5,1),(6,2).
  auto borders = UpdateBorderBlocks(Extent{4, 1}, 5, 1);
  std::set<Extent> got(borders.begin(), borders.end());
  std::set<Extent> want{{5, 1}, {6, 2}, {0, 4}};
  EXPECT_EQ(got, want);
}

TEST(LayoutTest, TreeDepth) {
  EXPECT_EQ(TreeDepth(1, 1), 1u);
  EXPECT_EQ(TreeDepth(2, 1), 2u);
  EXPECT_EQ(TreeDepth(4, 1), 3u);
  EXPECT_EQ(TreeDepth(5, 1), 4u);
  EXPECT_EQ(TreeDepth(0, 64), 1u);
}

TEST(LayoutTest, EdgePageBlocks) {
  // Aligned updates need no edge resolution.
  EXPECT_TRUE(EdgePageBlocks(Extent{0, 8}, 16, 4).empty());
  EXPECT_TRUE(EdgePageBlocks(Extent{4, 4}, 16, 4).empty());
  // Head partial page + tail partial page.
  auto head = EdgePageBlocks(Extent{6, 5}, 16, 4);
  ASSERT_EQ(head.size(), 2u);  // head page (4,4) and tail page (8,4)
  EXPECT_EQ(head[0], (Extent{4, 4}));
  EXPECT_EQ(head[1], (Extent{8, 4}));
  // Unaligned range with page-aligned end: only the head page.
  auto aligned_end = EdgePageBlocks(Extent{6, 6}, 16, 4);
  ASSERT_EQ(aligned_end.size(), 1u);
  EXPECT_EQ(aligned_end[0], (Extent{4, 4}));
  // Tail beyond old size: no tail resolution needed.
  auto grow = EdgePageBlocks(Extent{6, 5}, 8, 4);
  ASSERT_EQ(grow.size(), 1u);
  EXPECT_EQ(grow[0], (Extent{4, 4}));
  // Small write inside a single page: one edge block, not two.
  auto mid = EdgePageBlocks(Extent{5, 2}, 16, 4);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0], (Extent{4, 4}));
  // Write starting at 0 unaligned end within old size.
  auto tail = EdgePageBlocks(Extent{0, 6}, 16, 4);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], (Extent{4, 4}));
}

// ---- Exhaustive small-universe properties --------------------------------

class LayoutPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LayoutPropertyTest, NodeSetIsExactlyIntersectingBlocks) {
  const uint64_t psize = GetParam();
  for (uint64_t total_pages = 1; total_pages <= 24; total_pages++) {
    uint64_t total = total_pages * psize;
    for (uint64_t off = 0; off < total; off += psize) {
      for (uint64_t sz = psize; off + sz <= total; sz += psize) {
        Extent range{off, sz};
        auto set = UpdateNodeSet(range, total, psize);
        std::set<Extent> got(set.begin(), set.end());
        EXPECT_EQ(got.size(), set.size()) << "duplicate blocks";
        uint64_t root = RootSizeBytes(total, psize);
        // Every block in the set intersects the range, fits under the
        // root, and is valid.
        for (const Extent& b : set) {
          EXPECT_TRUE(IsValidBlock(b, psize));
          EXPECT_TRUE(b.Intersects(range));
          EXPECT_LE(b.size, root);
          EXPECT_TRUE(NodeSetContains(b, range, total, psize));
        }
        // Exactly one root block.
        EXPECT_EQ(got.count(Extent{0, root}), 1u);
        // Completeness: every valid intersecting block is present.
        for (uint64_t bs = psize; bs <= root; bs *= 2) {
          for (uint64_t bo = 0; bo < root; bo += bs) {
            Extent b{bo, bs};
            EXPECT_EQ(got.count(b) == 1, b.Intersects(range))
                << b.ToString() << " range " << range.ToString();
          }
        }
      }
    }
  }
}

TEST_P(LayoutPropertyTest, EveryNonRootNodeHasItsParentInTheSet) {
  const uint64_t psize = GetParam();
  for (uint64_t total_pages = 1; total_pages <= 24; total_pages++) {
    uint64_t total = total_pages * psize;
    uint64_t root = RootSizeBytes(total, psize);
    for (uint64_t off = 0; off < total; off += psize) {
      for (uint64_t sz = psize; off + sz <= total; sz += psize) {
        auto set = UpdateNodeSet(Extent{off, sz}, total, psize);
        std::set<Extent> got(set.begin(), set.end());
        for (const Extent& b : set) {
          if (b.size == root) continue;
          EXPECT_TRUE(got.count(ParentBlock(b)))
              << "orphan node " << b.ToString();
        }
      }
    }
  }
}

TEST_P(LayoutPropertyTest, BordersAreDisjointFromRangeAndCoverSiblings) {
  const uint64_t psize = GetParam();
  for (uint64_t total_pages = 1; total_pages <= 24; total_pages++) {
    uint64_t total = total_pages * psize;
    for (uint64_t off = 0; off < total; off += psize) {
      for (uint64_t sz = psize; off + sz <= total; sz += psize) {
        Extent range{off, sz};
        auto set = UpdateNodeSet(range, total, psize);
        std::set<Extent> in_set(set.begin(), set.end());
        auto borders = UpdateBorderBlocks(range, total, psize);
        std::set<Extent> border_set(borders.begin(), borders.end());
        for (const Extent& b : borders) {
          EXPECT_FALSE(b.Intersects(range));
          EXPECT_FALSE(in_set.count(b));
        }
        // Every inner node's children are either in the set or borders.
        for (const Extent& b : set) {
          if (IsLeafBlock(b, psize)) continue;
          for (Extent child : {LeftChildBlock(b), RightChildBlock(b)}) {
            EXPECT_TRUE(in_set.count(child) + border_set.count(child) == 1)
                << "child " << child.ToString() << " of " << b.ToString();
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PageSizes, LayoutPropertyTest,
                         ::testing::Values(1, 4, 64, 4096));

TEST(LayoutRandomTest, UnalignedRangesProduceConsistentSets) {
  Rng rng(2024);
  for (int iter = 0; iter < 2000; iter++) {
    uint64_t psize = uint64_t{1} << rng.Range(0, 12);
    uint64_t total = rng.Range(1, 5000);
    uint64_t off = rng.Range(0, total - 1);
    uint64_t sz = rng.Range(1, total - off);
    Extent range{off, sz};
    auto set = UpdateNodeSet(range, total, psize);
    uint64_t root = RootSizeBytes(total, psize);
    std::set<Extent> got(set.begin(), set.end());
    ASSERT_EQ(got.count(Extent{0, root}), 1u);
    uint64_t leaves = 0;
    for (const Extent& b : set) {
      ASSERT_TRUE(b.Intersects(range));
      ASSERT_TRUE(IsValidBlock(b, psize));
      if (IsLeafBlock(b, psize)) leaves++;
    }
    // Leaf count equals the number of pages the range touches.
    uint64_t first = off / psize;
    uint64_t last = (off + sz - 1) / psize;
    ASSERT_EQ(leaves, last - first + 1);
  }
}

}  // namespace
}  // namespace blobseer::meta
