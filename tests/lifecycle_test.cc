// Version lifecycle subsystem (docs/lifecycle.md): retention policy
// evaluation, the vmanager lifecycle RPC surface (set/get retention,
// version listing, discard rules), end-to-end mark-and-sweep GC on an
// embedded cluster, content-hash page dedup, and the interaction of the
// two — a deduplicated page shared across blobs must survive until the
// last version referencing it is discarded and swept.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/cluster.h"
#include "lifecycle/dedup.h"
#include "lifecycle/gc_sweeper.h"
#include "lifecycle/retention.h"
#include "reference_blob.h"
#include "vmanager/client.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using lifecycle::ExpiredVersions;
using lifecycle::RetentionPolicy;
using lifecycle::VersionFacts;
using testing::ReferenceBlob;
using testing::TestPayload;

// --- Retention policy evaluation (pure, no cluster) ------------------------

VersionFacts Published(Version v, uint64_t at_us, bool pinned = false) {
  return VersionFacts{v, at_us, /*published=*/true, /*discarded=*/false,
                      pinned};
}

TEST(RetentionTest, DisabledPolicyRetainsEverything) {
  std::vector<VersionFacts> facts;
  for (Version v = 1; v <= 10; v++) facts.push_back(Published(v, v));
  EXPECT_TRUE(ExpiredVersions(RetentionPolicy{}, facts, 1000).empty());
}

TEST(RetentionTest, KeepLastKExpiresOldestFirst) {
  std::vector<VersionFacts> facts;
  for (Version v = 1; v <= 6; v++) facts.push_back(Published(v, v));
  auto expired = ExpiredVersions(RetentionPolicy{/*keep_last_k=*/3, 0},
                                 facts, 1000);
  EXPECT_EQ(expired, (std::vector<Version>{1, 2, 3}));
}

TEST(RetentionTest, AgeRuleKeepsYoungSnapshots) {
  // Assigned at 100, 200, ..., 600; at now = 650 with a 300 us window the
  // versions younger than 300 us (assigned after 350) survive.
  std::vector<VersionFacts> facts;
  for (Version v = 1; v <= 6; v++) facts.push_back(Published(v, 100 * v));
  auto expired = ExpiredVersions(RetentionPolicy{0, /*younger_than=*/300},
                                 facts, 650);
  EXPECT_EQ(expired, (std::vector<Version>{1, 2, 3}));
}

TEST(RetentionTest, EitherRuleProtects) {
  // keep_last_k = 1 alone would expire v1..v3; the age rule additionally
  // protects v3 (assigned at 300, now 350, window 100).
  std::vector<VersionFacts> facts;
  for (Version v = 1; v <= 4; v++) facts.push_back(Published(v, 100 * v));
  auto expired =
      ExpiredVersions(RetentionPolicy{/*keep_last_k=*/1, 100}, facts, 350);
  EXPECT_EQ(expired, (std::vector<Version>{1, 2}));
}

TEST(RetentionTest, PinnedVersionsNeverExpireButConsumeRank) {
  // v2 is a branch point: it must survive an aggressive policy, and it
  // still counts toward "the newest k readable snapshots".
  std::vector<VersionFacts> facts = {
      Published(1, 1), Published(2, 2, /*pinned=*/true), Published(3, 3),
      Published(4, 4, /*pinned=*/true)};
  auto expired =
      ExpiredVersions(RetentionPolicy{/*keep_last_k=*/2, 0}, facts, 1000);
  // Newest two readable are v4 (pinned anyway) and v3; v2 is pinned.
  EXPECT_EQ(expired, (std::vector<Version>{1}));
}

TEST(RetentionTest, UnpublishedAndDiscardedAreNotCandidates) {
  std::vector<VersionFacts> facts;
  facts.push_back(Published(1, 1));
  VersionFacts unpublished{2, 2, false, false, false};
  VersionFacts discarded{3, 3, true, true, false};
  facts.push_back(unpublished);
  facts.push_back(discarded);
  facts.push_back(Published(4, 4));
  auto expired =
      ExpiredVersions(RetentionPolicy{/*keep_last_k=*/1, 0}, facts, 1000);
  // v4 is rank 1; v3 discarded and v2 unpublished are skipped entirely.
  EXPECT_EQ(expired, (std::vector<Version>{1}));
}

// --- vmanager lifecycle RPC surface ----------------------------------------

class LifecycleRpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ClusterOptions opts;
    opts.num_providers = 4;
    opts.num_meta = 2;
    auto c = core::EmbeddedCluster::Start(opts);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    cluster_ = std::move(*c);
    auto cl = cluster_->NewClient();
    ASSERT_TRUE(cl.ok());
    client_ = std::move(*cl);
    vm_ = std::make_unique<vmanager::VersionManagerClient>(
        cluster_->transport(), cluster_->vmanager_address());
  }

  std::unique_ptr<core::EmbeddedCluster> cluster_;
  std::unique_ptr<BlobClient> client_;
  std::unique_ptr<vmanager::VersionManagerClient> vm_;
};

TEST_F(LifecycleRpcTest, RetentionRoundTrip) {
  auto id = client_->Create(4096);
  ASSERT_TRUE(id.ok());

  // Fresh blobs carry the disabled policy.
  auto got = vm_->GetRetention(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->enabled());

  RetentionPolicy policy{/*keep_last_k=*/4, /*keep_younger_than_us=*/5000};
  ASSERT_TRUE(vm_->SetRetention(*id, policy).ok());
  got = vm_->GetRetention(*id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, policy);

  EXPECT_TRUE(vm_->SetRetention(12345, policy).IsNotFound());
  EXPECT_TRUE(vm_->GetRetention(12345).status().IsNotFound());
}

TEST_F(LifecycleRpcTest, ListVersionsReportsLifecycleFacts) {
  auto id = client_->Create(4096);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(blob.AppendSync(TestPayload(i, 4096)).ok());
  }

  auto versions = vm_->ListVersions(*id);
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions->size(), 3u);
  for (size_t i = 0; i < versions->size(); i++) {
    const auto& info = (*versions)[i];
    EXPECT_EQ(info.version, i + 1);
    EXPECT_EQ(info.size, 4096 * (i + 1));
    EXPECT_TRUE(info.published);
    EXPECT_FALSE(info.discarded);
    // Only the latest published snapshot is pinned here.
    EXPECT_EQ(info.pinned, i + 1 == versions->size()) << "v" << i + 1;
  }

  auto blobs = vm_->ListBlobs();
  ASSERT_TRUE(blobs.ok());
  ASSERT_EQ(blobs->size(), 1u);
  EXPECT_EQ((*blobs)[0], *id);
}

TEST_F(LifecycleRpcTest, DiscardRules) {
  auto id = client_->Create(4096);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(blob.AppendSync(TestPayload(i, 4096)).ok());
  }

  // The latest published snapshot is pinned; version 0 is never owned.
  EXPECT_TRUE(vm_->DiscardVersion(*id, 3).IsFailedPrecondition());
  EXPECT_TRUE(vm_->DiscardVersion(*id, 0).IsFailedPrecondition());
  EXPECT_TRUE(vm_->DiscardVersion(*id, 99).IsNotFound());

  ASSERT_TRUE(vm_->DiscardVersion(*id, 1).ok());
  EXPECT_TRUE(vm_->DiscardVersion(*id, 1).ok());  // idempotent

  // Discarded snapshots stop being readable immediately (before any GC
  // pass): size queries and reads observe NotFound.
  EXPECT_TRUE(vm_->GetSize(*id, 1).status().IsNotFound());
  std::string out;
  EXPECT_TRUE(blob.Read(1, 0, 4096, &out).IsNotFound());
  // v2 still reads the pages v1 appended: discard hides the snapshot, the
  // shared pages stay live through the surviving versions.
  ASSERT_TRUE(blob.Read(2, 0, 4096, &out).ok());
  EXPECT_EQ(out, TestPayload(0, 4096));

  auto st = vm_->GetStats();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->discarded, 1u);

  auto versions = vm_->ListVersions(*id);
  ASSERT_TRUE(versions.ok());
  EXPECT_TRUE((*versions)[0].discarded);
  EXPECT_FALSE((*versions)[1].discarded);
}

TEST_F(LifecycleRpcTest, BranchPointIsPinnedAgainstDiscard) {
  auto id = client_->Create(4096);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(blob.AppendSync(TestPayload(i, 4096)).ok());
  }
  auto branch = blob.Branch(2);
  ASSERT_TRUE(branch.ok());

  EXPECT_TRUE(vm_->DiscardVersion(*id, 2).IsFailedPrecondition());
  ASSERT_TRUE(vm_->DiscardVersion(*id, 1).ok());

  // The child blob reads its inherited history through the branch point.
  std::string out;
  ASSERT_TRUE(branch->Read(2, 0, 2 * 4096, &out).ok());
  EXPECT_EQ(out, TestPayload(0, 4096) + TestPayload(1, 4096));
}

// --- End-to-end GC on the embedded cluster ---------------------------------

// Hosts a sweeper on the cluster's provider manager with the loop disabled;
// tests drive RunOnePass deterministically.
lifecycle::GcSweeper* HostSweeper(core::EmbeddedCluster* cluster,
                                  size_t max_sweep = 4096) {
  lifecycle::GcOptions go;
  go.interval_us = 0;  // no background loop; tests call RunOnePass
  go.max_sweep_per_pass = max_sweep;
  cluster->pmanager().StartGcSweeper(
      /*executor=*/nullptr, RealClock::Default(), cluster->transport(),
      cluster->vmanager_address(), cluster->dht_addresses(),
      dht::DhtClientOptions{}, go);
  return cluster->pmanager().gc_sweeper();
}

class LifecycleGcTest : public ::testing::Test {
 protected:
  void StartCluster(client::ClientOptions copts = {}) {
    core::ClusterOptions opts;
    opts.num_providers = 4;
    opts.num_meta = 2;
    auto c = core::EmbeddedCluster::Start(opts);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    cluster_ = std::move(*c);
    auto cl = cluster_->NewClient(copts);
    ASSERT_TRUE(cl.ok());
    client_ = std::move(*cl);
    vm_ = std::make_unique<vmanager::VersionManagerClient>(
        cluster_->transport(), cluster_->vmanager_address());
  }

  uint64_t ProviderPages() {
    uint64_t pages = 0, bytes = 0;
    EXPECT_TRUE(cluster_->TotalProviderUsage(&pages, &bytes).ok());
    return pages;
  }

  std::unique_ptr<core::EmbeddedCluster> cluster_;
  std::unique_ptr<BlobClient> client_;
  std::unique_ptr<vmanager::VersionManagerClient> vm_;
};

TEST_F(LifecycleGcTest, RetentionDrivenSweepReclaimsOverwrittenVersions) {
  StartCluster();
  constexpr uint64_t kPage = 4096;
  constexpr size_t kPagesPerVersion = 4;
  constexpr size_t kVersions = 8;

  auto id = client_->Create(kPage);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref;
  // Full overwrites: every version replaces all four pages, so expired
  // versions own garbage pages that only GC can reclaim.
  for (size_t i = 0; i < kVersions; i++) {
    std::string payload = TestPayload(i, kPagesPerVersion * kPage);
    ASSERT_TRUE(blob.WriteSync(payload, 0).ok());
    ref.ApplyWrite(payload, 0);
  }
  EXPECT_EQ(ProviderPages(), kVersions * kPagesPerVersion);

  ASSERT_TRUE(
      vm_->SetRetention(*id, RetentionPolicy{/*keep_last_k=*/2, 0}).ok());
  lifecycle::GcSweeper* gc = HostSweeper(cluster_.get());
  ASSERT_TRUE(gc->RunOnePass(RealClock::Default()->NowMicros()).ok());

  // Six versions expired; only the last two keep their pages.
  EXPECT_EQ(ProviderPages(), 2 * kPagesPerVersion);
  auto stats = gc->GetStats();
  EXPECT_EQ(stats.versions_discarded, kVersions - 2);
  EXPECT_EQ(stats.versions_retired, kVersions - 2);
  EXPECT_EQ(stats.pages_swept, (kVersions - 2) * kPagesPerVersion);
  EXPECT_GT(stats.nodes_retired, 0u);
  EXPECT_EQ(stats.errors, 0u);

  // Retained versions read back exactly; expired ones are NotFound.
  std::string out;
  for (Version v = kVersions - 1; v <= kVersions; v++) {
    ASSERT_TRUE(blob.Read(v, 0, ref.Size(v), &out).ok()) << "v" << v;
    EXPECT_EQ(out, ref.Contents(v)) << "v" << v;
  }
  for (Version v = 1; v <= kVersions - 2; v++) {
    EXPECT_TRUE(blob.Read(v, 0, kPage, &out).IsNotFound()) << "v" << v;
  }

  // A second pass finds nothing new: the sweep is idempotent.
  ASSERT_TRUE(gc->RunOnePass(RealClock::Default()->NowMicros()).ok());
  auto again = gc->GetStats();
  EXPECT_EQ(again.versions_discarded, stats.versions_discarded);
  EXPECT_EQ(again.pages_swept, stats.pages_swept);
  EXPECT_EQ(ProviderPages(), 2 * kPagesPerVersion);
}

TEST_F(LifecycleGcTest, SweepBudgetTruncatesButConverges) {
  StartCluster();
  constexpr uint64_t kPage = 4096;
  auto id = client_->Create(kPage);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  for (size_t i = 0; i < 6; i++) {
    ASSERT_TRUE(blob.WriteSync(TestPayload(i, 4 * kPage), 0).ok());
  }
  ASSERT_TRUE(
      vm_->SetRetention(*id, RetentionPolicy{/*keep_last_k=*/1, 0}).ok());

  // A budget of 3 pages per pass needs several passes for 20 garbage pages.
  lifecycle::GcSweeper* gc = HostSweeper(cluster_.get(), /*max_sweep=*/3);
  for (int pass = 0; pass < 16 && ProviderPages() > 4; pass++) {
    ASSERT_TRUE(gc->RunOnePass(RealClock::Default()->NowMicros()).ok());
  }
  EXPECT_EQ(ProviderPages(), 4u);
  auto stats = gc->GetStats();
  EXPECT_EQ(stats.pages_swept, 20u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST_F(LifecycleGcTest, AppendOnlyHistorySharesPagesWithLiveVersions) {
  StartCluster();
  constexpr uint64_t kPage = 4096;
  auto id = client_->Create(kPage);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ReferenceBlob ref = [&] {
    ReferenceBlob r;
    for (size_t i = 0; i < 4; i++) {
      std::string payload = TestPayload(i, kPage);
      EXPECT_TRUE(blob.AppendSync(payload).ok());
      r.ApplyAppend(payload);
    }
    return r;
  }();
  EXPECT_EQ(ProviderPages(), 4u);

  // Expire all but the newest version. Appended pages are shared with the
  // surviving snapshot, so the mark phase must keep every one of them.
  ASSERT_TRUE(
      vm_->SetRetention(*id, RetentionPolicy{/*keep_last_k=*/1, 0}).ok());
  lifecycle::GcSweeper* gc = HostSweeper(cluster_.get());
  ASSERT_TRUE(gc->RunOnePass(RealClock::Default()->NowMicros()).ok());

  EXPECT_EQ(ProviderPages(), 4u);
  auto stats = gc->GetStats();
  EXPECT_EQ(stats.pages_swept, 0u);
  EXPECT_EQ(stats.versions_discarded, 3u);

  std::string out;
  ASSERT_TRUE(blob.Read(4, 0, ref.Size(4), &out).ok());
  EXPECT_EQ(out, ref.Contents(4));
}

// --- Content-hash dedup ----------------------------------------------------

TEST(DedupHashTest, HashIsDeterministicAndSizeSensitive) {
  std::string a = TestPayload(1, 4096);
  std::string b = TestPayload(2, 4096);
  EXPECT_EQ(lifecycle::HashPage(a), lifecycle::HashPage(a));
  EXPECT_NE(lifecycle::HashPage(a), lifecycle::HashPage(b));
  EXPECT_NE(lifecycle::HashPage(a),
            lifecycle::HashPage(Slice(a).SubSlice(1, a.size() - 1)));
  EXPECT_TRUE(lifecycle::HashPage(a).valid());

  PageId pid{7, 3};
  auto decoded = lifecycle::DecodeHashTarget(lifecycle::EncodeHashTarget(pid));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, pid);
  EXPECT_FALSE(lifecycle::DecodeHashTarget("junk").ok());
}

TEST_F(LifecycleGcTest, DedupStoresIdenticalPagesOnce) {
  client::ClientOptions copts;
  copts.dedup = true;
  StartCluster(copts);
  constexpr uint64_t kPage = 4096;

  auto a = client_->Create(kPage);
  auto b = client_->Create(kPage);
  ASSERT_TRUE(a.ok() && b.ok());
  Blob blob_a(client_.get(), *a);
  Blob blob_b(client_.get(), *b);

  // The same four pages written to two blobs: stored once, adopted once.
  std::string payload;
  for (int i = 0; i < 4; i++) payload += TestPayload(i, kPage);
  ASSERT_TRUE(blob_a.WriteSync(payload, 0).ok());
  ASSERT_TRUE(blob_b.WriteSync(payload, 0).ok());

  EXPECT_EQ(ProviderPages(), 4u);
  EXPECT_EQ(client_->GetStats().dedup_hits, 4u);

  std::string out;
  ASSERT_TRUE(blob_a.Read(1, 0, payload.size(), &out).ok());
  EXPECT_EQ(out, payload);
  ASSERT_TRUE(blob_b.Read(1, 0, payload.size(), &out).ok());
  EXPECT_EQ(out, payload);
}

TEST_F(LifecycleGcTest, DedupOffStoresEveryCopy) {
  StartCluster();  // default options: dedup disabled
  constexpr uint64_t kPage = 4096;
  auto a = client_->Create(kPage);
  auto b = client_->Create(kPage);
  ASSERT_TRUE(a.ok() && b.ok());
  std::string payload = TestPayload(0, 4 * kPage);
  ASSERT_TRUE(Blob(client_.get(), *a).WriteSync(payload, 0).ok());
  ASSERT_TRUE(Blob(client_.get(), *b).WriteSync(payload, 0).ok());
  EXPECT_EQ(ProviderPages(), 8u);
  EXPECT_EQ(client_->GetStats().dedup_hits, 0u);
}

TEST_F(LifecycleGcTest, SharedPageSurvivesUntilLastReferenceDiscarded) {
  client::ClientOptions copts;
  copts.dedup = true;
  StartCluster(copts);
  constexpr uint64_t kPage = 4096;

  auto a = client_->Create(kPage);
  auto b = client_->Create(kPage);
  ASSERT_TRUE(a.ok() && b.ok());
  Blob blob_a(client_.get(), *a);
  Blob blob_b(client_.get(), *b);

  // Both blobs' v1 share the same four pages (dedup adoption).
  std::string shared = TestPayload(42, 4 * kPage);
  ASSERT_TRUE(blob_a.WriteSync(shared, 0).ok());
  ASSERT_TRUE(blob_b.WriteSync(shared, 0).ok());
  EXPECT_EQ(ProviderPages(), 4u);

  // Overwrite both so v1 becomes expirable on each.
  ASSERT_TRUE(blob_a.WriteSync(TestPayload(1, 4 * kPage), 0).ok());
  ASSERT_TRUE(blob_b.WriteSync(TestPayload(2, 4 * kPage), 0).ok());
  EXPECT_EQ(ProviderPages(), 12u);

  lifecycle::GcSweeper* gc = HostSweeper(cluster_.get());

  // Expire only blob A's v1: the shared pages stay — blob B's v1 still
  // references them, and the mark phase walks every blob.
  ASSERT_TRUE(
      vm_->SetRetention(*a, RetentionPolicy{/*keep_last_k=*/1, 0}).ok());
  ASSERT_TRUE(gc->RunOnePass(RealClock::Default()->NowMicros()).ok());
  EXPECT_EQ(ProviderPages(), 12u);
  EXPECT_EQ(gc->GetStats().pages_swept, 0u);
  std::string out;
  ASSERT_TRUE(blob_b.Read(1, 0, shared.size(), &out).ok());
  EXPECT_EQ(out, shared);

  // Expire blob B's v1 too: the last reference is gone, the shared pages
  // and their 'H' hash links are reclaimed.
  ASSERT_TRUE(
      vm_->SetRetention(*b, RetentionPolicy{/*keep_last_k=*/1, 0}).ok());
  ASSERT_TRUE(gc->RunOnePass(RealClock::Default()->NowMicros()).ok());
  EXPECT_EQ(ProviderPages(), 8u);
  auto stats = gc->GetStats();
  EXPECT_EQ(stats.pages_swept, 4u);
  EXPECT_GT(stats.hash_links_removed, 0u);
  EXPECT_EQ(stats.errors, 0u);

  // A fresh write of the swept content must not resurrect the dead hash
  // link: it stores fresh pages and reads back correctly.
  ASSERT_TRUE(blob_a.WriteSync(shared, 0).ok());
  ASSERT_TRUE(blob_a.Read(3, 0, shared.size(), &out).ok());
  EXPECT_EQ(out, shared);
}

// --- pmanager stats surface ------------------------------------------------

TEST_F(LifecycleGcTest, PmStatsReportGcCounters) {
  StartCluster();
  constexpr uint64_t kPage = 4096;
  auto id = client_->Create(kPage);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  for (size_t i = 0; i < 4; i++) {
    ASSERT_TRUE(blob.WriteSync(TestPayload(i, 2 * kPage), 0).ok());
  }
  ASSERT_TRUE(
      vm_->SetRetention(*id, RetentionPolicy{/*keep_last_k=*/1, 0}).ok());
  lifecycle::GcSweeper* gc = HostSweeper(cluster_.get());
  ASSERT_TRUE(gc->RunOnePass(RealClock::Default()->NowMicros()).ok());

  pmanager::ProviderManagerClient pm(cluster_->transport(),
                                     cluster_->pmanager_address());
  auto st = pm.FetchStats();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->gc_passes, 1u);
  EXPECT_EQ(st->gc_versions_discarded, 3u);
  EXPECT_EQ(st->gc_versions_retired, 3u);
  EXPECT_EQ(st->gc_pages_swept, 6u);
}

}  // namespace
}  // namespace blobseer
