// Provider manager tests: allocation strategies and the registry service.
#include <gtest/gtest.h>

#include <set>

#include "pmanager/client.h"
#include "pmanager/service.h"
#include "pmanager/strategy.h"
#include "rpc/inproc.h"

namespace blobseer::pmanager {
namespace {

std::vector<ProviderRecord> MakeRecords(size_t n) {
  std::vector<ProviderRecord> recs;
  for (size_t i = 0; i < n; i++) {
    ProviderRecord r;
    r.id = static_cast<ProviderId>(i);
    r.address = "p" + std::to_string(i);
    recs.push_back(r);
  }
  return recs;
}

// r=1 sets flattened to their single member (the old flat-allocation shape).
std::vector<ProviderId> Flatten(const std::vector<ReplicaSet>& sets) {
  std::vector<ProviderId> out;
  for (const auto& s : sets) out.insert(out.end(), s.begin(), s.end());
  return out;
}

TEST(StrategyTest, RoundRobinIsPerfectlyEven) {
  auto recs = MakeRecords(5);
  auto strat = MakeRoundRobinStrategy();
  auto got = strat->Allocate(&recs, 50, 1);
  ASSERT_EQ(got.size(), 50u);
  for (const auto& r : recs) EXPECT_EQ(r.allocated_pages, 10u);
  // Consecutive allocations continue the cycle.
  auto got2 = Flatten(strat->Allocate(&recs, 5, 1));
  std::set<ProviderId> distinct(got2.begin(), got2.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(StrategyTest, LeastLoadedCorrectsImbalance) {
  auto recs = MakeRecords(3);
  recs[0].allocated_pages = 100;
  recs[1].allocated_pages = 50;
  auto strat = MakeLeastLoadedStrategy();
  auto got = strat->Allocate(&recs, 50, 1);
  ASSERT_EQ(got.size(), 50u);
  // All new pages go to the emptiest provider(s).
  EXPECT_EQ(recs[0].allocated_pages, 100u);
  EXPECT_LE(recs[1].allocated_pages, 67u);
  EXPECT_GE(recs[2].allocated_pages, 33u);
}

TEST(StrategyTest, RandomAndPowerOfTwoStayRoughlyBalanced) {
  for (auto name : {"random", "power_of_two"}) {
    auto recs = MakeRecords(8);
    auto strat = MakeStrategy(name);
    strat->Allocate(&recs, 8000, 1);
    for (const auto& r : recs) {
      EXPECT_GT(r.allocated_pages, 500u) << name;
      EXPECT_LT(r.allocated_pages, 1600u) << name;
    }
  }
}

TEST(StrategyTest, PowerOfTwoBeatsRandomOnMaxLoad) {
  auto recs_rand = MakeRecords(16);
  auto recs_p2 = MakeRecords(16);
  MakeRandomStrategy(99)->Allocate(&recs_rand, 16000, 1);
  MakePowerOfTwoStrategy(99)->Allocate(&recs_p2, 16000, 1);
  auto max_load = [](const std::vector<ProviderRecord>& v) {
    uint64_t m = 0;
    for (const auto& r : v) m = std::max(m, r.allocated_pages);
    return m;
  };
  EXPECT_LE(max_load(recs_p2), max_load(recs_rand));
}

TEST(StrategyTest, CapacityLimitsRespected) {
  auto recs = MakeRecords(2);
  recs[0].capacity_pages = 3;
  auto strat = MakeRoundRobinStrategy();
  auto got = strat->Allocate(&recs, 10, 1);
  ASSERT_EQ(got.size(), 10u);
  EXPECT_LE(recs[0].allocated_pages, 4u);  // can exceed cap by at most in-batch
  auto got2 = Flatten(strat->Allocate(&recs, 4, 1));
  for (ProviderId id : got2) EXPECT_EQ(id, 1u);  // provider 0 full
}

TEST(StrategyTest, DeadProvidersSkipped) {
  auto recs = MakeRecords(3);
  recs[1].liveness = Liveness::kDead;
  auto got = Flatten(MakeRoundRobinStrategy()->Allocate(&recs, 10, 1));
  for (ProviderId id : got) EXPECT_NE(id, 1u);
}

TEST(StrategyTest, SuspectFallbackKicksInMidAllocationWhenAliveRetire) {
  for (auto name : {"round_robin", "random", "least_loaded", "power_of_two"}) {
    // 3 alive providers with one page of headroom each, 2 roomy suspects,
    // r=2. Eligibility starts alive-only (3 >= r), but the alive providers
    // retire at capacity during the same Allocate call — the suspects must
    // then join the pool mid-allocation instead of the later pages failing
    // with short sets.
    auto recs = MakeRecords(5);
    for (size_t i = 0; i < 3; i++) {
      recs[i].capacity_pages = 1;
    }
    recs[3].liveness = Liveness::kSuspect;
    recs[4].liveness = Liveness::kSuspect;
    auto sets = MakeStrategy(name)->Allocate(&recs, 6, 2);
    ASSERT_EQ(sets.size(), 6u) << name;
    for (const auto& set : sets) {
      ASSERT_EQ(set.size(), 2u) << name;
      std::set<ProviderId> distinct(set.begin(), set.end());
      EXPECT_EQ(distinct.size(), 2u) << name;
    }
  }
}

TEST(StrategyTest, SuspectsExcludedUntilLiveCapacityBelowR) {
  for (auto name : {"round_robin", "random", "least_loaded", "power_of_two"}) {
    // 4 alive + 1 suspect at r=2: the suspect must not receive replicas.
    auto recs = MakeRecords(5);
    recs[3].liveness = Liveness::kSuspect;
    auto sets = MakeStrategy(name)->Allocate(&recs, 40, 2);
    ASSERT_EQ(sets.size(), 40u) << name;
    for (const auto& set : sets) {
      for (ProviderId id : set) EXPECT_NE(id, 3u) << name;
    }
    // 1 alive + 2 suspects + 1 dead at r=2: live capacity < r, so suspects
    // join the pool (sloppy membership) but the dead provider never does.
    auto few = MakeRecords(4);
    few[1].liveness = Liveness::kSuspect;
    few[2].liveness = Liveness::kSuspect;
    few[3].liveness = Liveness::kDead;
    auto fallback = MakeStrategy(name)->Allocate(&few, 10, 2);
    ASSERT_EQ(fallback.size(), 10u) << name;
    for (const auto& set : fallback) {
      ASSERT_EQ(set.size(), 2u) << name;
      for (ProviderId id : set) EXPECT_NE(id, 3u) << name;
    }
  }
}

class PmServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    svc_ = std::make_shared<ProviderManagerService>();
    ASSERT_TRUE(net_.Serve("inproc://pm", svc_).ok());
    client_ = std::make_unique<ProviderManagerClient>(&net_, "inproc://pm");
  }

  rpc::InProcNetwork net_;
  std::shared_ptr<ProviderManagerService> svc_;
  std::unique_ptr<ProviderManagerClient> client_;
};

TEST_F(PmServiceTest, RegisterAssignsStableIds) {
  auto a = client_->Register("inproc://prov-a", 0);
  auto b = client_->Register("inproc://prov-b", 0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  // Re-registration (provider restart) keeps the id.
  auto a2 = client_->Register("inproc://prov-a", 0);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(*a2, 0u);
}

TEST_F(PmServiceTest, AllocateWithoutProvidersFails) {
  EXPECT_TRUE(client_->AllocateReplicated(3, 1).status().IsUnavailable());
}

TEST_F(PmServiceTest, AllocateAndResolve) {
  ASSERT_TRUE(client_->Register("inproc://prov-a", 0).ok());
  ASSERT_TRUE(client_->Register("inproc://prov-b", 0).ok());
  auto sets = client_->AllocateReplicated(4, 1);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 4u);
  for (const auto& set : *sets) {
    ASSERT_EQ(set.size(), 1u);
    auto addr = client_->ResolveAddress(set[0]);
    ASSERT_TRUE(addr.ok());
    EXPECT_TRUE(addr->find("inproc://prov-") == 0);
  }
  EXPECT_TRUE(client_->ResolveAddress(42).status().IsNotFound());
}

TEST_F(PmServiceTest, HeartbeatOverridesLoadEstimate) {
  auto id = client_->Register("inproc://prov-a", 0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client_->AllocateReplicated(10, 1).ok());
  ASSERT_TRUE(client_->Heartbeat(*id, 3, 4096).ok());
  auto recs = svc_->Records();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].allocated_pages, 3u);
  EXPECT_TRUE(client_->Heartbeat(99, 0, 0).IsNotFound());
}

TEST_F(PmServiceTest, ZeroPageAllocationRejected) {
  ASSERT_TRUE(client_->Register("inproc://prov-a", 0).ok());
  EXPECT_TRUE(client_->AllocateReplicated(0, 1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace blobseer::pmanager
