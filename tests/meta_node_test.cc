// Metadata node codec and key tests.
#include <gtest/gtest.h>

#include "meta/node.h"

namespace blobseer::meta {
namespace {

TEST(NodeKeyTest, DhtKeyIsInjective) {
  NodeKey a{1, 2, Extent{0, 64}};
  NodeKey b{1, 2, Extent{64, 64}};
  NodeKey c{1, 3, Extent{0, 64}};
  NodeKey d{2, 2, Extent{0, 64}};
  EXPECT_NE(a.ToDhtKey(), b.ToDhtKey());
  EXPECT_NE(a.ToDhtKey(), c.ToDhtKey());
  EXPECT_NE(a.ToDhtKey(), d.ToDhtKey());
  EXPECT_EQ(a.ToDhtKey(), (NodeKey{1, 2, Extent{0, 64}}).ToDhtKey());
}

TEST(MetaNodeTest, InnerRoundTrip) {
  MetaNode n = MetaNode::Inner(5, kNoVersion);
  BinaryWriter w;
  n.EncodeTo(&w);
  MetaNode decoded;
  BinaryReader r{Slice(w.buffer())};
  ASSERT_TRUE(decoded.DecodeFrom(&r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_FALSE(decoded.is_leaf());
  EXPECT_EQ(decoded.left_version, 5u);
  EXPECT_EQ(decoded.right_version, kNoVersion);
}

TEST(MetaNodeTest, LeafRoundTrip) {
  MetaNode n = MetaNode::Leaf(
      {PageFragment{PageId{10, 20}, {}, 100, 28, 4},
       PageFragment{PageId{11, 21}, {}, 0, 100, 0}},
      7, 3);
  BinaryWriter w;
  n.EncodeTo(&w);
  MetaNode decoded;
  BinaryReader r{Slice(w.buffer())};
  ASSERT_TRUE(decoded.DecodeFrom(&r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_TRUE(decoded.is_leaf());
  EXPECT_EQ(decoded.prev_version, 7u);
  EXPECT_EQ(decoded.chain_len, 3u);
  ASSERT_EQ(decoded.fragments.size(), 2u);
  EXPECT_EQ(decoded.fragments[0], n.fragments[0]);
  EXPECT_EQ(decoded.fragments[1], n.fragments[1]);
}

TEST(MetaNodeTest, CorruptTypeRejected) {
  BinaryWriter w;
  w.PutU8(9);
  MetaNode n;
  BinaryReader r{Slice(w.buffer())};
  EXPECT_TRUE(n.DecodeFrom(&r).IsCorruption());
}

TEST(MetaNodeTest, TruncatedLeafRejected) {
  MetaNode n = MetaNode::Leaf({PageFragment{PageId{1, 1}, {}, 0, 8, 0}},
                              kNoVersion, 1);
  BinaryWriter w;
  n.EncodeTo(&w);
  MetaNode decoded;
  BinaryReader r{Slice(w.buffer().data(), w.buffer().size() - 3)};
  EXPECT_TRUE(decoded.DecodeFrom(&r).IsCorruption());
}

TEST(MetaNodeTest, ToStringIsInformative) {
  EXPECT_NE(MetaNode::Inner(1, 2).ToString().find("inner"),
            std::string::npos);
  EXPECT_NE(MetaNode::Leaf({}, kNoVersion, 1).ToString().find("leaf"),
            std::string::npos);
  EXPECT_NE((NodeKey{1, 2, Extent{0, 8}}).ToString().find("blob=1"),
            std::string::npos);
}

}  // namespace
}  // namespace blobseer::meta
