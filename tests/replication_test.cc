// Replicated data pages end to end: replica-set allocation strategies, the
// v2 leaf wire format, fan-out writes, failover reads with read repair, and
// kill-a-provider scenarios on both the TCP and simnet transports (the
// availability-under-churn behaviour of paper sections 3.1/4.3; volatility
// itself was future work there).
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/cluster.h"
#include "core/sim_cluster.h"
#include "meta/node.h"
#include "pagelog/log_page_store.h"
#include "pmanager/client.h"
#include "pmanager/service.h"
#include "pmanager/strategy.h"
#include "provider/service.h"
#include "reference_blob.h"
#include "rpc/inproc.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using meta::MetaNode;
using meta::NodeKey;
using meta::PageFragment;
using pmanager::MakeStrategy;
using pmanager::ProviderRecord;
using pmanager::ReplicaSet;
using testing::ReferenceBlob;
using testing::TestPayload;

std::vector<ProviderRecord> MakeRecords(size_t n) {
  std::vector<ProviderRecord> recs;
  for (size_t i = 0; i < n; i++) {
    ProviderRecord r;
    r.id = static_cast<ProviderId>(i);
    r.address = "p" + std::to_string(i);
    recs.push_back(r);
  }
  return recs;
}

// --- Allocation strategies -------------------------------------------------

TEST(ReplicaStrategyTest, AllStrategiesReturnDistinctReplicaSets) {
  for (auto name : {"round_robin", "random", "least_loaded", "power_of_two"}) {
    auto recs = MakeRecords(8);
    auto strat = MakeStrategy(name);
    auto sets = strat->Allocate(&recs, 100, 3);
    ASSERT_EQ(sets.size(), 100u) << name;
    for (const ReplicaSet& set : sets) {
      ASSERT_EQ(set.size(), 3u) << name;
      std::set<ProviderId> distinct(set.begin(), set.end());
      EXPECT_EQ(distinct.size(), 3u) << name;
    }
  }
}

TEST(ReplicaStrategyTest, ReplicaChargesKeepBalance) {
  // 6 providers, 300 pages at r=2: round robin spreads 600 replica charges
  // perfectly evenly; the load-aware schemes stay within 2x of the mean.
  auto rr = MakeRecords(6);
  MakeStrategy("round_robin")->Allocate(&rr, 300, 2);
  for (const auto& r : rr) EXPECT_EQ(r.allocated_pages, 100u);

  for (auto name : {"random", "least_loaded", "power_of_two"}) {
    auto recs = MakeRecords(6);
    MakeStrategy(name)->Allocate(&recs, 300, 2);
    uint64_t total = 0;
    for (const auto& r : recs) {
      EXPECT_GT(r.allocated_pages, 50u) << name;
      EXPECT_LT(r.allocated_pages, 200u) << name;
      total += r.allocated_pages;
    }
    EXPECT_EQ(total, 600u) << name;
  }
}

TEST(ReplicaStrategyTest, RoundRobinSpreadsConsecutivePrimaries) {
  auto recs = MakeRecords(4);
  auto sets = MakeStrategy("round_robin")->Allocate(&recs, 4, 2);
  ASSERT_EQ(sets.size(), 4u);
  // Primaries cycle the registration order; each secondary is the next
  // provider in the cycle (chained declustering).
  for (size_t k = 0; k < 4; k++) {
    EXPECT_EQ(sets[k][0], k % 4);
    EXPECT_EQ(sets[k][1], (k + 1) % 4);
  }
}

TEST(ReplicaStrategyTest, ShortSetsWhenFewerProvidersThanReplicas) {
  auto recs = MakeRecords(2);
  auto sets = MakeStrategy("round_robin")->Allocate(&recs, 3, 5);
  ASSERT_EQ(sets.size(), 3u);
  for (const auto& set : sets) EXPECT_EQ(set.size(), 2u);
}

TEST(ReplicaStrategyTest, DeadProvidersExcludedFromAllReplicas) {
  for (auto name : {"round_robin", "random", "least_loaded", "power_of_two"}) {
    auto recs = MakeRecords(5);
    recs[2].liveness = pmanager::Liveness::kDead;
    auto sets = MakeStrategy(name)->Allocate(&recs, 50, 2);
    for (const auto& set : sets) {
      for (ProviderId p : set) EXPECT_NE(p, 2u) << name;
    }
  }
}

TEST(ReplicaStrategyTest, SingleReplicaSetsForUnreplicatedCallers) {
  // The flat r=1 wrapper is gone: unreplicated callers allocate sets of one.
  auto recs = MakeRecords(5);
  auto strat = MakeStrategy("round_robin");
  auto got = strat->Allocate(&recs, 50, 1);
  ASSERT_EQ(got.size(), 50u);
  for (const auto& set : got) ASSERT_EQ(set.size(), 1u);
  for (const auto& r : recs) EXPECT_EQ(r.allocated_pages, 10u);
}

// --- Wire formats ----------------------------------------------------------

TEST(ReplicatedNodeSerdeTest, LeafRoundTripV3StoresOnlyPageIds) {
  MetaNode n = MetaNode::Leaf(
      {PageFragment{PageId{10, 20}, {}, 100, 28, 4},
       PageFragment{PageId{11, 21}, {}, 0, 100, 0}},
      7, 3);
  BinaryWriter w;
  n.EncodeTo(&w);
  MetaNode decoded;
  BinaryReader r{Slice(w.buffer())};
  ASSERT_TRUE(decoded.DecodeFrom(&r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_TRUE(decoded.is_leaf());
  ASSERT_EQ(decoded.fragments.size(), 2u);
  EXPECT_EQ(decoded.fragments[0], n.fragments[0]);
  EXPECT_EQ(decoded.fragments[1], n.fragments[1]);
}

TEST(ReplicatedNodeSerdeTest, V3EncodeDropsLegacyProviders) {
  // A fragment decoded from v2 (legacy_providers populated) re-encodes as
  // pure v3: the embedded set is never written back.
  MetaNode n =
      MetaNode::Leaf({PageFragment{PageId{10, 20}, {3, 5}, 0, 64, 0}}, 7, 1);
  BinaryWriter w;
  n.EncodeTo(&w);
  MetaNode decoded;
  BinaryReader r{Slice(w.buffer())};
  ASSERT_TRUE(decoded.DecodeFrom(&r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_EQ(decoded.fragments.size(), 1u);
  EXPECT_TRUE(decoded.fragments[0].legacy_providers.empty());
  EXPECT_EQ(decoded.fragments[0].pid, n.fragments[0].pid);
  EXPECT_EQ(decoded.fragments[0].len, 64u);
}

TEST(ReplicatedNodeSerdeTest, LegacyV2LeafStillDecodes) {
  // Format v2: tagged, replica set embedded per fragment. Hand-encoded to
  // pin the byte layout; decodes into legacy_providers.
  BinaryWriter w;
  w.PutU8(meta::kNodeFormatV2);
  w.PutU8(1);       // type = leaf
  w.PutU64(7);      // prev_version
  w.PutU32(3);      // chain_len
  w.PutU32(1);      // fragment count
  w.PutPageId(PageId{10, 20});
  w.PutU8(3);       // replica count
  w.PutU32(3);
  w.PutU32(5);
  w.PutU32(9);
  w.PutU32(100);    // page_off
  w.PutU32(28);     // len
  w.PutU32(4);      // data_off
  MetaNode decoded;
  BinaryReader r{Slice(w.buffer())};
  ASSERT_TRUE(decoded.DecodeFrom(&r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_TRUE(decoded.is_leaf());
  ASSERT_EQ(decoded.fragments.size(), 1u);
  EXPECT_EQ(decoded.fragments[0].legacy_providers,
            (std::vector<ProviderId>{3, 5, 9}));
  EXPECT_EQ(decoded.fragments[0].page_off, 100u);
  EXPECT_EQ(decoded.fragments[0].len, 28u);
}

TEST(ReplicatedNodeSerdeTest, LegacyV1LeafStillDecodes) {
  // Format v1 (pre-replication): no version marker, single provider id per
  // fragment. Hand-encoded to pin the byte layout.
  BinaryWriter w;
  w.PutU8(1);       // type = leaf (doubles as the v1 format signature)
  w.PutU64(7);      // prev_version
  w.PutU32(3);      // chain_len
  w.PutU32(1);      // fragment count
  w.PutPageId(PageId{10, 20});
  w.PutU32(6);      // the single provider
  w.PutU32(100);    // page_off
  w.PutU32(28);     // len
  w.PutU32(4);      // data_off
  MetaNode decoded;
  BinaryReader r{Slice(w.buffer())};
  ASSERT_TRUE(decoded.DecodeFrom(&r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  ASSERT_TRUE(decoded.is_leaf());
  EXPECT_EQ(decoded.prev_version, 7u);
  EXPECT_EQ(decoded.chain_len, 3u);
  ASSERT_EQ(decoded.fragments.size(), 1u);
  EXPECT_EQ(decoded.fragments[0].legacy_providers,
            (std::vector<ProviderId>{6}));
  EXPECT_EQ(decoded.fragments[0].page_off, 100u);
}

TEST(ReplicatedNodeSerdeTest, LegacyV1InnerStillDecodes) {
  BinaryWriter w;
  w.PutU8(0);  // type = inner, v1
  w.PutU64(5);
  w.PutU64(kNoVersion);
  MetaNode decoded;
  BinaryReader r{Slice(w.buffer())};
  ASSERT_TRUE(decoded.DecodeFrom(&r).ok());
  EXPECT_FALSE(decoded.is_leaf());
  EXPECT_EQ(decoded.left_version, 5u);
}

TEST(ReplicatedNodeSerdeTest, CorruptFormatAndReplicaCountRejected) {
  {
    BinaryWriter w;
    w.PutU8(9);  // neither a v1 type nor the v2 marker
    MetaNode n;
    BinaryReader r{Slice(w.buffer())};
    EXPECT_TRUE(n.DecodeFrom(&r).IsCorruption());
  }
  {
    // v2 leaf whose fragment claims an empty replica set.
    BinaryWriter w;
    w.PutU8(meta::kNodeFormatV2);
    w.PutU8(1);
    w.PutU64(kNoVersion);
    w.PutU32(1);
    w.PutU32(1);  // fragment count
    w.PutPageId(PageId{1, 1});
    w.PutU8(0);  // zero replicas: corrupt
    w.PutU32(0);
    w.PutU32(8);
    w.PutU32(0);
    MetaNode n;
    BinaryReader r{Slice(w.buffer())};
    EXPECT_TRUE(n.DecodeFrom(&r).IsCorruption());
  }
}

// --- Provider manager RPC --------------------------------------------------

class PmReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    svc_ = std::make_shared<pmanager::ProviderManagerService>();
    ASSERT_TRUE(net_.Serve("inproc://pm", svc_).ok());
    client_ =
        std::make_unique<pmanager::ProviderManagerClient>(&net_, "inproc://pm");
    for (int i = 0; i < 3; i++) {
      ASSERT_TRUE(
          client_->Register("inproc://prov-" + std::to_string(i), 0).ok());
    }
  }

  rpc::InProcNetwork net_;
  std::shared_ptr<pmanager::ProviderManagerService> svc_;
  std::unique_ptr<pmanager::ProviderManagerClient> client_;
};

TEST_F(PmReplicationTest, AllocateReplicatedReturnsDistinctSets) {
  auto sets = client_->AllocateReplicated(4, 2);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 4u);
  for (const auto& set : *sets) {
    ASSERT_EQ(set.size(), 2u);
    EXPECT_NE(set[0], set[1]);
  }
}

TEST_F(PmReplicationTest, ReplicationBeyondLiveProvidersUnavailable) {
  EXPECT_TRUE(client_->AllocateReplicated(2, 5).status().IsUnavailable());
  EXPECT_TRUE(
      client_->AllocateReplicated(2, 0).status().IsInvalidArgument());
  // The leaf wire format stores the replica count as one byte.
  EXPECT_TRUE(
      client_->AllocateReplicated(2, 256).status().IsInvalidArgument());
}

TEST_F(PmReplicationTest, FailedAllocationLeavesNoPhantomLoad) {
  // An allocation that cannot meet the replication factor must not charge
  // allocated_pages (it would skew load-aware strategies and, with
  // capacity limits, wedge providers that store nothing).
  ASSERT_TRUE(client_->AllocateReplicated(8, 4).status().IsUnavailable());
  for (const ProviderRecord& r : svc_->Records()) {
    EXPECT_EQ(r.allocated_pages, 0u);
  }
  auto ok = client_->AllocateReplicated(3, 2);
  ASSERT_TRUE(ok.ok());
  uint64_t total = 0;
  for (const ProviderRecord& r : svc_->Records()) total += r.allocated_pages;
  EXPECT_EQ(total, 6u);
}

// --- End to end: embedded cluster (inproc + TCP) ---------------------------

/// Appends `versions` multi-page payloads and returns the reference model.
ReferenceBlob FillBlob(Blob* blob, size_t versions, size_t bytes_per_append) {
  ReferenceBlob ref;
  for (size_t i = 0; i < versions; i++) {
    std::string payload = TestPayload(static_cast<int>(i), bytes_per_append);
    EXPECT_TRUE(blob->AppendSync(payload).ok());
    ref.ApplyAppend(payload);
  }
  return ref;
}

void ExpectAllVersionsReadable(Blob* blob, const ReferenceBlob& ref,
                               size_t versions) {
  for (Version v = 1; v <= versions; v++) {
    std::string out;
    ASSERT_TRUE(blob->Read(v, 0, ref.Size(v), &out).ok()) << "v" << v;
    ASSERT_EQ(out, ref.Contents(v)) << "v" << v;
  }
}

TEST(ReplicationClusterTest, KillAnyProviderTcpReadsStillSucceed) {
  core::ClusterOptions opts;
  opts.num_providers = 4;
  opts.num_meta = 2;
  opts.replication = 2;
  opts.transport = "tcp";
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());

  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  ReferenceBlob ref = FillBlob(&blob, 3, 64 * 6);

  // Mid-workload churn: kill a provider, then every read must still be
  // served by the surviving replica of each page.
  ASSERT_TRUE((*cluster)->StopProvider(1).ok());
  ExpectAllVersionsReadable(&blob, ref, 3);
  EXPECT_GT((*client)->GetStats().failover_reads, 0u);
}

TEST(ReplicationClusterTest, KillAnyProviderInprocReadsStillSucceed) {
  // Same scenario over the in-process transport, killing each provider in
  // turn on a fresh cluster (any single failure must be absorbed).
  for (size_t victim = 0; victim < 3; victim++) {
    core::ClusterOptions opts;
    opts.num_providers = 3;
    opts.num_meta = 2;
    opts.replication = 2;
    auto cluster = core::EmbeddedCluster::Start(opts);
    ASSERT_TRUE(cluster.ok());
    auto client = (*cluster)->NewClient();
    ASSERT_TRUE(client.ok());
    auto id = (*client)->Create(64);
    ASSERT_TRUE(id.ok());
    Blob blob(client->get(), *id);
    ReferenceBlob ref = FillBlob(&blob, 2, 64 * 5);
    ASSERT_TRUE((*cluster)->StopProvider(victim).ok());
    ExpectAllVersionsReadable(&blob, ref, 2);
  }
}

TEST(ReplicationClusterTest, ReadRepairRestoresLostReplica) {
  core::ClusterOptions opts;
  opts.num_providers = 3;
  opts.num_meta = 2;
  opts.replication = 2;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());

  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  std::string payload = TestPayload(1, 64);
  ASSERT_TRUE(blob.AppendSync(payload).ok());

  // White-box: the leaf for page block [0, 64) names the page object; its
  // replica set lives in the location index.
  auto leaf = (*client)->meta().GetNode(NodeKey{*id, 1, Extent{0, 64}});
  ASSERT_TRUE(leaf.ok());
  ASSERT_TRUE(leaf->is_leaf());
  ASSERT_EQ(leaf->fragments.size(), 1u);
  const PageFragment& frag = leaf->fragments[0];
  EXPECT_TRUE(frag.legacy_providers.empty());
  auto entry = (*client)->locator().Resolve(frag.pid);
  ASSERT_TRUE(entry.ok());
  ASSERT_EQ(entry->providers.size(), 2u);
  ProviderId lost = entry->providers[0];

  // Simulate a disk loss on the primary: the endpoint stays up but the
  // page object is gone.
  ASSERT_TRUE((*cluster)->provider(lost).store().Delete(frag.pid).ok());

  std::string out;
  ASSERT_TRUE(blob.Read(1, 0, 64, &out).ok());
  EXPECT_EQ(out, payload);
  EXPECT_GT((*client)->GetStats().failover_reads, 0u);

  // Read repair runs detached; poll until the primary holds the object
  // again (r restored).
  std::string repaired;
  Stopwatch deadline;
  while (deadline.ElapsedSeconds() < 10.0) {
    repaired.clear();
    if ((*cluster)->provider(lost).store().Read(frag.pid, 0, 0, &repaired).ok())
      break;
    RealClock::Default()->SleepForMicros(2000);
  }
  EXPECT_EQ(repaired, payload);
  EXPECT_GT((*client)->GetStats().read_repairs, 0u);

  // The repaired replica serves reads again without failover: break the
  // *other* replica and re-read.
  ASSERT_TRUE(
      (*cluster)->provider(entry->providers[1]).store().Delete(frag.pid).ok());
  out.clear();
  ASSERT_TRUE(blob.Read(1, 0, 64, &out).ok());
  EXPECT_EQ(out, payload);
}

TEST(ReplicationClusterTest, FailedReplicatedWriteDeletesAllIncarnations) {
  // 2 providers at r=3 cannot satisfy the write quorum: the update must
  // fail cleanly and leave no page objects behind on any provider.
  core::ClusterOptions opts;
  opts.num_providers = 2;
  opts.num_meta = 2;
  opts.replication = 3;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  std::string payload = TestPayload(0, 256);
  auto v = (*client)->Write(*id, Slice(payload), 0);
  ASSERT_TRUE(v.status().IsUnavailable()) << v.status().ToString();
  uint64_t pages = 0, bytes = 0;
  ASSERT_TRUE((*cluster)->TotalProviderUsage(&pages, &bytes).ok());
  EXPECT_EQ(pages, 0u);
  EXPECT_EQ(bytes, 0u);
}

TEST(ReplicationClusterTest, InflightWindowBoundsReplicatedWrites) {
  core::ClusterOptions opts;
  opts.num_providers = 4;
  opts.num_meta = 2;
  opts.replication = 2;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  client::ClientOptions copts;
  copts.max_inflight_pages = 2;  // 24-page update squeezed through 2 slots
  auto client = (*cluster)->NewClient(copts);
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  ReferenceBlob ref = FillBlob(&blob, 2, 64 * 24);
  ExpectAllVersionsReadable(&blob, ref, 2);
  EXPECT_EQ((*client)->GetStats().pages_stored, 48u);
}

TEST(ReplicationClusterTest, WindowedWriteFailsCleanlyWhenReplicaDies) {
  // Write quorum = all: with a dead provider still in the allocation
  // rotation, a windowed multi-page update must fail cleanly (the refill
  // stops after the first error) and leave earlier versions readable.
  core::ClusterOptions opts;
  opts.num_providers = 4;
  opts.num_meta = 2;
  opts.replication = 2;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  client::ClientOptions copts;
  copts.max_inflight_pages = 2;
  auto client = (*cluster)->NewClient(copts);
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  std::string base = TestPayload(0, 64 * 4);
  ASSERT_TRUE(blob.AppendSync(base).ok());

  ASSERT_TRUE((*cluster)->StopProvider(0).ok());
  // 16 pages across 4 providers at r=2: some replica set names provider 0.
  EXPECT_FALSE(blob.Append(TestPayload(1, 64 * 16)).ok());
  std::string out;
  ASSERT_TRUE(blob.Read(1, 0, base.size(), &out).ok());
  EXPECT_EQ(out, base);
}

TEST(ReplicationClusterTest, AbortRepairAndCompactionRunReplicated) {
  // The zero-fill abort repair and the chain-compaction path both store
  // pages through the replicated pipeline; exercise them at r=2.
  core::ClusterOptions opts;
  opts.num_providers = 3;
  opts.num_meta = 2;
  opts.replication = 2;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  client::ClientOptions copts;
  copts.max_chain = 2;  // force page compaction quickly
  auto client = (*cluster)->NewClient(copts);
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);

  ReferenceBlob ref;
  std::string base = TestPayload(0, 256);
  ASSERT_TRUE(blob.AppendSync(base).ok());
  ref.ApplyAppend(base);
  // Crashed writer (v2) with a healthy successor (v3): the abort cannot
  // retract, so it replays v2 as a zero-filled update through the
  // replicated write pipeline.
  ASSERT_TRUE((*client)->vmanager().AssignVersion(*id, false, 64, 128).ok());
  std::string tail = TestPayload(9, 64);
  ASSERT_TRUE((*client)->Append(*id, Slice(tail)).ok());
  ASSERT_TRUE((*client)->Abort(*id, 2).ok());
  ASSERT_TRUE((*client)->Sync(*id, 3).ok());
  ref.ApplyZeroFill(64, 128);
  ref.ApplyAppend(tail);
  EXPECT_GT((*client)->GetStats().repairs, 0u);
  // Unaligned writes grow the fragment chain past max_chain -> compaction.
  for (int i = 0; i < 4; i++) {
    std::string piece = TestPayload(static_cast<uint64_t>(i) + 1, 7);
    auto v = blob.WriteSync(piece, 3 + static_cast<uint64_t>(i) * 11);
    ASSERT_TRUE(v.ok());
    ref.ApplyWrite(piece, 3 + static_cast<uint64_t>(i) * 11);
  }
  EXPECT_GT((*client)->GetStats().compactions, 0u);
  Version last = 3 + 4;
  std::string out;
  ASSERT_TRUE(blob.Read(last, 0, ref.Size(last), &out).ok());
  EXPECT_EQ(out, ref.Contents(last));
}

// --- End to end: simulated Grid'5000 cluster -------------------------------

TEST(ReplicationSimTest, KillProviderUnderSimnetReadsStillSucceed) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 4;
    opts.page_store = "memory";  // serve real bytes, not the null store
    opts.replication = 2;
    core::SimCluster cluster(&sched, opts);
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    ReferenceBlob ref;
    for (int i = 0; i < 3; i++) {
      std::string payload = TestPayload(i, 4096 * 3);
      ASSERT_TRUE(blob.AppendSync(payload).ok());
      ref.ApplyAppend(payload);
    }
    ASSERT_TRUE(cluster.StopProvider(2).ok());
    for (Version v = 1; v <= 3; v++) {
      std::string out;
      ASSERT_TRUE(blob.Read(v, 0, ref.Size(v), &out).ok()) << "v" << v;
      ASSERT_EQ(out, ref.Contents(v)) << "v" << v;
    }
    EXPECT_GT(client->GetStats().failover_reads, 0u);
    checked = true;
  });
  EXPECT_TRUE(checked);
}

// --- Background compaction scheduler ---------------------------------------

TEST(CompactionSchedulerTest, PeriodicCompactReclaimsDeletedPages) {
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bs_compact_sched_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  pagelog::LogPageStoreOptions lopts;
  lopts.segment_target_bytes = 4096;  // seal segments fast
  provider::ProviderService svc(pagelog::MakeLogPageStore(dir, lopts));

  std::string payload(1024, 'x');
  for (uint64_t i = 0; i < 16; i++) {
    ASSERT_TRUE(svc.store().Put(PageId{1, i}, Slice(payload)).ok());
  }
  for (uint64_t i = 0; i < 14; i++) {
    ASSERT_TRUE(svc.store().Delete(PageId{1, i}).ok());
  }

  ThreadPoolExecutor executor(1);
  svc.StartPeriodicCompaction(&executor, 5 * 1000);  // 5 ms cadence
  Stopwatch deadline;
  while (deadline.ElapsedSeconds() < 10.0 &&
         (svc.compaction_passes() < 2 ||
          svc.store().GetStats().compactions == 0)) {
    RealClock::Default()->SleepForMicros(2000);
  }
  EXPECT_GE(svc.compaction_passes(), 2u);
  EXPECT_GT(svc.store().GetStats().compactions, 0u);
  svc.StopPeriodicCompaction();
  uint64_t passes_after_stop = svc.compaction_passes();
  RealClock::Default()->SleepForMicros(30 * 1000);
  EXPECT_EQ(svc.compaction_passes(), passes_after_stop);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace blobseer
