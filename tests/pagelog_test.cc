// Crash-recovery and compaction tests for the log-structured page store.
//
// These tests damage segment files on disk the way a power loss or bit rot
// would (truncated tail record, flipped payload byte) and assert the
// recovery contract from docs/pagelog_format.md: the intact record prefix
// of every segment is served, the torn tail is dropped.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "pagelog/format.h"
#include "pagelog/io_backend.h"
#include "pagelog/log_page_store.h"
#include "provider/page_store.h"

namespace blobseer::pagelog {
namespace {

using provider::PageStore;

// 1000-byte payloads against a 4 KiB segment target: 16-byte segment header
// plus three 1032-byte records fit, the fourth forces a rotation, so every
// segment holds exactly three pages and the layout is fully deterministic.
constexpr uint64_t kSegTarget = 4096;
constexpr size_t kPayload = 1000;

std::string PageContent(uint64_t n) {
  std::string s(kPayload, '\0');
  for (size_t i = 0; i < s.size(); i++)
    s[i] = static_cast<char>('a' + (n + i) % 26);
  return s;
}

class PageLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/bs_pagelog_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(dir_);
  }

  void Open(LogPageStoreOptions opts) {
    store_.reset();
    opts_ = opts;
    store_ = MakeLogPageStore(dir_, opts);
  }
  void Reopen() { Open(opts_); }

  std::vector<std::string> SegmentFiles() const {
    std::vector<std::string> files;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
      files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  static void TruncateFile(const std::string& path, uint64_t size) {
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size)), 0);
  }

  static void FlipByte(const std::string& path, uint64_t offset) {
    FILE* f = ::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    int c = ::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    ::fputc(c ^ 0x40, f);
    ASSERT_EQ(::fclose(f), 0);
  }

  void PutPages(uint64_t n, uint64_t id_hi = 1) {
    for (uint64_t i = 0; i < n; i++) {
      ASSERT_TRUE(store_->Put(PageId{id_hi, i}, Slice(PageContent(i))).ok())
          << "page " << i;
    }
  }

  LogPageStoreOptions opts_;
  std::unique_ptr<PageStore> store_;
  std::string dir_;
};

TEST_F(PageLogTest, RotationProducesDeterministicSegments) {
  LogPageStoreOptions opts;
  opts.segment_target_bytes = kSegTarget;
  Open(opts);
  PutPages(10);
  auto st = store_->GetStats();
  EXPECT_EQ(st.pages, 10u);
  EXPECT_EQ(st.segments, 4u);  // 3 + 3 + 3 + 1
  EXPECT_EQ(SegmentFiles().size(), 4u);
  for (uint64_t i = 0; i < 10; i++) {
    std::string out;
    ASSERT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).ok());
    EXPECT_EQ(out, PageContent(i));
  }
}

TEST_F(PageLogTest, CleanReopenRebuildsIndex) {
  LogPageStoreOptions opts;
  opts.segment_target_bytes = kSegTarget;
  Open(opts);
  PutPages(10);
  Reopen();
  auto st = store_->GetStats();
  EXPECT_EQ(st.pages, 10u);
  EXPECT_EQ(st.segments, 4u);
  for (uint64_t i = 0; i < 10; i++) {
    std::string out;
    ASSERT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).ok());
    EXPECT_EQ(out, PageContent(i));
  }
  // The store stays appendable after recovery.
  ASSERT_TRUE(store_->Put(PageId{1, 10}, Slice(PageContent(10))).ok());
  std::string out;
  ASSERT_TRUE(store_->Read(PageId{1, 10}, 0, 0, &out).ok());
  EXPECT_EQ(out, PageContent(10));
}

TEST_F(PageLogTest, TornTailRecordIsTruncatedOnReopen) {
  LogPageStoreOptions opts;
  opts.segment_target_bytes = kSegTarget;
  Open(opts);
  PutPages(10);  // last segment holds exactly page 9
  store_.reset();

  // Chop one byte off the last segment: page 9's record is now torn the way
  // a power loss mid-append leaves it.
  std::string last = SegmentFiles().back();
  uint64_t torn_size = std::filesystem::file_size(last) - 1;
  TruncateFile(last, torn_size);

  Reopen();
  auto st = store_->GetStats();
  EXPECT_EQ(st.pages, 9u);
  std::string out;
  for (uint64_t i = 0; i < 9; i++) {
    ASSERT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).ok());
    EXPECT_EQ(out, PageContent(i));
  }
  EXPECT_TRUE(store_->Read(PageId{1, 9}, 0, 0, &out).IsNotFound());
  // The torn bytes were physically dropped and the id is writable again.
  EXPECT_EQ(std::filesystem::file_size(last), torn_size - (kRecordHeaderSize +
                                                           kPayload - 1));
  ASSERT_TRUE(store_->Put(PageId{1, 9}, Slice(PageContent(9))).ok());
  ASSERT_TRUE(store_->Read(PageId{1, 9}, 0, 0, &out).ok());
  EXPECT_EQ(out, PageContent(9));
}

TEST_F(PageLogTest, CrcFlipDropsRecordAndSegmentTail) {
  LogPageStoreOptions opts;
  opts.segment_target_bytes = kSegTarget;
  Open(opts);
  PutPages(10);
  store_.reset();

  // Flip a payload byte of the FIRST record of the first segment. Recovery
  // must drop that record and everything after it in the same segment
  // (pages 0..2) while later segments (pages 3..9) stay intact.
  std::string first = SegmentFiles().front();
  FlipByte(first, kSegmentHeaderSize + kRecordHeaderSize + 17);

  Reopen();
  auto st = store_->GetStats();
  EXPECT_EQ(st.pages, 7u);
  std::string out;
  for (uint64_t i = 0; i < 3; i++) {
    EXPECT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).IsNotFound())
        << "page " << i;
  }
  for (uint64_t i = 3; i < 10; i++) {
    ASSERT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).ok()) << "page " << i;
    EXPECT_EQ(out, PageContent(i));
  }
}

TEST_F(PageLogTest, CompactionReclaimsDeadSegments) {
  LogPageStoreOptions opts;
  opts.segment_target_bytes = kSegTarget;
  opts.compact_min_dead_ratio = 0.5;
  opts.sync = false;
  Open(opts);
  PutPages(12);  // segments: [0,1,2] [3,4,5] [6,7,8] [9,10,11](active)
  // Segment 1 goes fully dead, segment 2 two-thirds dead, segment 3 stays.
  for (uint64_t i : {0, 1, 2, 3, 4}) {
    ASSERT_TRUE(store_->Delete(PageId{1, i}).ok());
  }
  auto before = store_->GetStats();
  EXPECT_EQ(before.pages, 7u);
  EXPECT_EQ(before.dead_bytes, 5u * kPayload);

  ASSERT_TRUE(store_->Compact().ok());
  auto after = store_->GetStats();
  EXPECT_EQ(after.pages, 7u);
  EXPECT_EQ(after.compactions, 2u);
  EXPECT_EQ(after.dead_bytes, 0u);  // page 5 was rewritten, victims unlinked
  std::string out;
  for (uint64_t i = 5; i < 12; i++) {
    ASSERT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).ok()) << "page " << i;
    EXPECT_EQ(out, PageContent(i));
  }

  // Compaction state must also survive a crash/reopen: the copied page is
  // served, the deleted ones stay deleted.
  Reopen();
  EXPECT_EQ(store_->GetStats().pages, 7u);
  for (uint64_t i = 0; i < 5; i++) {
    EXPECT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).IsNotFound());
  }
  for (uint64_t i = 5; i < 12; i++) {
    ASSERT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).ok()) << "page " << i;
    EXPECT_EQ(out, PageContent(i));
  }
}

TEST_F(PageLogTest, CrashedCompactionDuplicateCannotResurrectDeletedPage) {
  LogPageStoreOptions opts;
  opts.segment_target_bytes = kSegTarget;
  opts.compact_min_dead_ratio = 0.5;
  Open(opts);
  PutPages(4);  // segments: [0,1,2] [3](active)
  store_.reset();

  // Forge the on-disk artifact of a compaction that copied page 0 into the
  // last segment and crashed before unlinking the first: the same put
  // record now exists in two segments.
  std::string last = SegmentFiles().back();
  std::string payload = PageContent(0);
  char header[kRecordHeaderSize];
  EncodeRecordHeader(kRecordPut, PageId{1, 0}, Slice(payload), header);
  FILE* f = ::fopen(last.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(::fwrite(header, 1, kRecordHeaderSize, f), kRecordHeaderSize);
  ASSERT_EQ(::fwrite(payload.data(), 1, payload.size(), f), payload.size());
  ASSERT_EQ(::fclose(f), 0);

  Reopen();  // index points at the first incarnation, duplicate is tracked
  EXPECT_EQ(store_->GetStats().pages, 4u);

  // Delete page 0, then compact the first segment (now fully dead) away.
  // The tombstone must cover the duplicate too, or the next recovery
  // resurrects the deleted page from it.
  for (uint64_t i : {0, 1, 2}) {
    ASSERT_TRUE(store_->Delete(PageId{1, i}).ok());
  }
  ASSERT_TRUE(store_->Compact().ok());
  EXPECT_EQ(store_->GetStats().compactions, 1u);

  Reopen();
  std::string out;
  EXPECT_TRUE(store_->Read(PageId{1, 0}, 0, 0, &out).IsNotFound());
  EXPECT_EQ(store_->GetStats().pages, 1u);
  ASSERT_TRUE(store_->Read(PageId{1, 3}, 0, 0, &out).ok());
  EXPECT_EQ(out, PageContent(3));
}

TEST_F(PageLogTest, CompactionPreservesReadsUnderConcurrentPuts) {
  LogPageStoreOptions opts;
  opts.segment_target_bytes = 2048;
  opts.compact_min_dead_ratio = 0.3;
  opts.sync = false;
  Open(opts);

  // Prefill and punch holes so there is plenty to compact.
  constexpr uint64_t kPrefill = 60;
  for (uint64_t i = 0; i < kPrefill; i++) {
    ASSERT_TRUE(store_->Put(PageId{1, i}, Slice(PageContent(i))).ok());
  }
  for (uint64_t i = 0; i < kPrefill; i += 2) {
    ASSERT_TRUE(store_->Delete(PageId{1, i}).ok());
  }

  constexpr int kWriters = 2;
  constexpr uint64_t kPerWriter = 100;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter; i++) {
        PageId id{9, static_cast<uint64_t>(w) * kPerWriter + i};
        ASSERT_TRUE(store_->Put(id, Slice(PageContent(id.lo))).ok());
        std::string out;
        ASSERT_TRUE(store_->Read(id, 0, 0, &out).ok());
        ASSERT_EQ(out, PageContent(id.lo));
      }
    });
  }
  for (int round = 0; round < 10; round++) {
    ASSERT_TRUE(store_->Compact().ok());
  }
  for (auto& t : writers) t.join();
  ASSERT_TRUE(store_->Compact().ok());

  auto st = store_->GetStats();
  EXPECT_EQ(st.pages, kPrefill / 2 + kWriters * kPerWriter);
  EXPECT_GE(st.compactions, 1u);
  std::string out;
  for (uint64_t i = 1; i < kPrefill; i += 2) {
    ASSERT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).ok()) << "page " << i;
    EXPECT_EQ(out, PageContent(i));
  }
  for (uint64_t i = 0; i < kWriters * kPerWriter; i++) {
    ASSERT_TRUE(store_->Read(PageId{9, i}, 0, 0, &out).ok()) << "page " << i;
    EXPECT_EQ(out, PageContent(i));
  }

  // Everything above survives recovery too.
  Reopen();
  EXPECT_EQ(store_->GetStats().pages, kPrefill / 2 + kWriters * kPerWriter);
  for (uint64_t i = 1; i < kPrefill; i += 2) {
    ASSERT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).ok()) << "page " << i;
  }
}

TEST_F(PageLogTest, GroupCommitCoalescesConcurrentSyncs) {
  LogPageStoreOptions opts;
  opts.sync = true;
  Open(opts);

  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 25;
  std::string payload(512, 'g');
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        PageId id{static_cast<uint64_t>(t + 1), i};
        ASSERT_TRUE(store_->Put(id, Slice(payload)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  auto st = store_->GetStats();
  EXPECT_EQ(st.pages, kThreads * kPerThread);
  EXPECT_EQ(st.writes, kThreads * kPerThread);
  // Every put was durably acknowledged, yet group commit means the store
  // never needs more than one fdatasync per write (and under real
  // concurrency issues far fewer).
  EXPECT_GE(st.syncs, 1u);
  EXPECT_LE(st.syncs, st.writes + 2);  // +segment-create dir syncs

  Reopen();
  EXPECT_EQ(store_->GetStats().pages, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Raw-I/O backend seam (docs/pagelog_format.md, "The raw-I/O path"): the
// psync and io_uring backends must produce byte-identical segment files for
// identical operation sequences, recover identically from damage, and fall
// back to psync when unavailable. Tests that need a real io_uring kernel
// skip with a note elsewhere.
// ---------------------------------------------------------------------------

/// Backends to exercise: psync always, the uring variants when the kernel
/// cooperates (on other kernels the psync pass still runs, so the tests
/// never go dark).
std::vector<std::string> AvailableBackends() {
  std::vector<std::string> b = {"psync"};
  if (IoUringSupported()) {
    b.push_back("uring");
    b.push_back("uring-direct");
  }
  return b;
}

std::string FileBytes(const std::string& path) {
  FILE* f = ::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = ::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  ::fclose(f);
  return out;
}

TEST_F(PageLogTest, BackendsProduceByteIdenticalSegments) {
  if (!IoUringSupported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel; parity covered by "
                    "the psync-only suites";
  }
  // One deterministic single-threaded history: puts with rotation, deletes,
  // a compaction, more puts, then a clean close (which trims any O_DIRECT
  // alignment padding). Every backend must leave the same files behind.
  auto run = [&](const std::string& backend, const std::string& dir) {
    LogPageStoreOptions opts;
    opts.segment_target_bytes = kSegTarget;
    opts.compact_min_dead_ratio = 0.5;
    opts.io_backend = backend;
    auto store = MakeLogPageStore(dir, opts);
    for (uint64_t i = 0; i < 10; i++) {
      ASSERT_TRUE(store->Put(PageId{1, i}, Slice(PageContent(i))).ok());
    }
    for (uint64_t i : {0, 1, 2, 4}) {
      ASSERT_TRUE(store->Delete(PageId{1, i}).ok());
    }
    ASSERT_TRUE(store->Compact().ok());
    for (uint64_t i = 10; i < 14; i++) {
      ASSERT_TRUE(store->Put(PageId{2, i}, Slice(PageContent(i))).ok());
    }
    // Recovery must see the same state the writer left.
    store.reset();
    store = MakeLogPageStore(dir, opts);
    auto st = store->GetStats();
    EXPECT_EQ(st.pages, 10u) << backend;
    std::string out;
    for (uint64_t i = 5; i < 10; i++) {
      ASSERT_TRUE(store->Read(PageId{1, i}, 0, 0, &out).ok())
          << backend << " page " << i;
      EXPECT_EQ(out, PageContent(i));
    }
  };

  std::vector<std::string> backends = AvailableBackends();
  for (const auto& b : backends) run(b, dir_ + "/" + b);

  std::filesystem::path base = dir_ + "/" + backends[0];
  std::vector<std::string> names;
  for (const auto& e : std::filesystem::directory_iterator(base)) {
    names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  EXPECT_GT(names.size(), 1u);
  for (size_t i = 1; i < backends.size(); i++) {
    std::filesystem::path other = dir_ + "/" + backends[i];
    std::vector<std::string> other_names;
    for (const auto& e : std::filesystem::directory_iterator(other)) {
      other_names.push_back(e.path().filename().string());
    }
    std::sort(other_names.begin(), other_names.end());
    ASSERT_EQ(other_names, names) << backends[i];
    for (const auto& n : names) {
      EXPECT_EQ(FileBytes((other / n).string()), FileBytes((base / n).string()))
          << backends[i] << " segment " << n
          << " diverges from the psync layout";
    }
  }
}

TEST_F(PageLogTest, TornTailRecoveryIsBackendAgnostic) {
  for (const auto& backend : AvailableBackends()) {
    std::string dir = dir_ + "/" + backend;
    LogPageStoreOptions opts;
    opts.segment_target_bytes = kSegTarget;
    opts.io_backend = backend;
    auto store = MakeLogPageStore(dir, opts);
    for (uint64_t i = 0; i < 10; i++) {
      ASSERT_TRUE(store->Put(PageId{1, i}, Slice(PageContent(i))).ok());
    }
    store.reset();

    std::vector<std::string> files;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    TruncateFile(files.back(), std::filesystem::file_size(files.back()) - 1);

    store = MakeLogPageStore(dir, opts);
    EXPECT_EQ(store->GetStats().pages, 9u) << backend;
    std::string out;
    EXPECT_TRUE(store->Read(PageId{1, 9}, 0, 0, &out).IsNotFound()) << backend;
    ASSERT_TRUE(store->Put(PageId{1, 9}, Slice(PageContent(9))).ok())
        << backend;
    ASSERT_TRUE(store->Read(PageId{1, 9}, 0, 0, &out).ok()) << backend;
    EXPECT_EQ(out, PageContent(9));
  }
}

TEST_F(PageLogTest, CrcFlipRecoveryIsBackendAgnostic) {
  for (const auto& backend : AvailableBackends()) {
    std::string dir = dir_ + "/" + backend;
    LogPageStoreOptions opts;
    opts.segment_target_bytes = kSegTarget;
    opts.io_backend = backend;
    auto store = MakeLogPageStore(dir, opts);
    for (uint64_t i = 0; i < 10; i++) {
      ASSERT_TRUE(store->Put(PageId{1, i}, Slice(PageContent(i))).ok());
    }
    store.reset();

    std::vector<std::string> files;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
    FlipByte(files.front(), kSegmentHeaderSize + kRecordHeaderSize + 17);

    store = MakeLogPageStore(dir, opts);
    EXPECT_EQ(store->GetStats().pages, 7u) << backend;
    std::string out;
    for (uint64_t i = 0; i < 3; i++) {
      EXPECT_TRUE(store->Read(PageId{1, i}, 0, 0, &out).IsNotFound())
          << backend << " page " << i;
    }
    for (uint64_t i = 3; i < 10; i++) {
      ASSERT_TRUE(store->Read(PageId{1, i}, 0, 0, &out).ok())
          << backend << " page " << i;
      EXPECT_EQ(out, PageContent(i));
    }
  }
}

TEST_F(PageLogTest, StagedTailIsReadableBeforeFlush) {
  if (!IoUringSupported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  for (const std::string backend : {"uring", "uring-direct"}) {
    std::string dir = dir_ + "/" + backend;
    LogPageStoreOptions opts;
    opts.sync = false;  // appends stay staged in the arena until a flush
    opts.io_backend = backend;
    auto store = MakeLogPageStore(dir, opts);
    std::string out;
    for (uint64_t i = 0; i < 20; i++) {
      ASSERT_TRUE(store->Put(PageId{1, i}, Slice(PageContent(i))).ok());
      ASSERT_TRUE(store->Read(PageId{1, i}, 0, 0, &out).ok())
          << backend << " page " << i;
      ASSERT_EQ(out, PageContent(i)) << backend << " page " << i;
    }
    // Sub-range reads must also split correctly across the on-file /
    // staged boundary.
    ASSERT_TRUE(store->Read(PageId{1, 19}, 100, 50, &out).ok()) << backend;
    EXPECT_EQ(out, PageContent(19).substr(100, 50));
    // The staged tail reaches the file on close and survives recovery.
    store.reset();
    store = MakeLogPageStore(dir, opts);
    EXPECT_EQ(store->GetStats().pages, 20u) << backend;
    for (uint64_t i = 0; i < 20; i++) {
      ASSERT_TRUE(store->Read(PageId{1, i}, 0, 0, &out).ok())
          << backend << " page " << i;
      EXPECT_EQ(out, PageContent(i));
    }
  }
}

TEST_F(PageLogTest, UnknownIoBackendFallsBackToPsync) {
  LogPageStoreOptions opts;
  opts.io_backend = "not-a-backend";
  Open(opts);
  PutPages(3);
  std::string out;
  for (uint64_t i = 0; i < 3; i++) {
    ASSERT_TRUE(store_->Read(PageId{1, i}, 0, 0, &out).ok());
    EXPECT_EQ(out, PageContent(i));
  }
  // psync reports one submission per syscall, so sqes == submissions.
  auto st = store_->GetStats();
  EXPECT_EQ(st.io_sqes, st.io_submissions);
  EXPECT_GT(st.io_submissions, 0u);
}

TEST_F(PageLogTest, IoStatsTrackTheBackend) {
  for (const auto& backend : AvailableBackends()) {
    std::string dir = dir_ + "/" + backend;
    LogPageStoreOptions opts;
    opts.io_backend = backend;
    auto store = MakeLogPageStore(dir, opts);
    constexpr uint64_t kPages = 200;
    for (uint64_t i = 0; i < kPages; i++) {
      ASSERT_TRUE(store->Put(PageId{1, i}, Slice(PageContent(i))).ok());
    }
    auto st = store->GetStats();
    EXPECT_GT(st.io_submissions, 0u) << backend;
    EXPECT_GE(st.io_sqes, st.io_submissions / 2) << backend;
    EXPECT_GE(st.bytes_written, kPages * kPayload) << backend;
    EXPECT_EQ(st.recovery_us, 0u) << backend << " (fresh dir, nothing to scan)";

    // A reopen scans every record; the scan must be timed and the reads
    // counted.
    store.reset();
    store = MakeLogPageStore(dir, opts);
    std::string out;
    ASSERT_TRUE(store->Read(PageId{1, 0}, 0, 0, &out).ok()) << backend;
    st = store->GetStats();
    EXPECT_GT(st.recovery_us, 0u) << backend;
    EXPECT_GT(st.read_syscalls, 0u) << backend;
  }
}

TEST_F(PageLogTest, OpenFailureIsReportedByOperations) {
  // A plain file where the store directory should be makes open fail; the
  // error must surface through the API instead of crashing.
  FILE* f = ::fopen(dir_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ::fclose(f);
  auto store = MakeLogPageStore(dir_);
  std::string out;
  EXPECT_TRUE(store->Put(PageId{1, 1}, Slice("x")).IsIOError());
  EXPECT_TRUE(store->Read(PageId{1, 1}, 0, 0, &out).IsIOError());
  EXPECT_TRUE(store->Delete(PageId{1, 1}).IsIOError());
  EXPECT_TRUE(store->Compact().IsIOError());
  ::remove(dir_.c_str());
}

}  // namespace
}  // namespace blobseer::pagelog
