// Centralized-metadata baseline correctness (the ablation comparator).
#include <gtest/gtest.h>

#include <thread>

#include "baseline/central_meta.h"
#include "rpc/inproc.h"

namespace blobseer::baseline {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    svc_ = std::make_shared<CentralMetaService>();
    ASSERT_TRUE(net_.Serve("inproc://central", svc_).ok());
    client_ = std::make_unique<CentralMetaClient>(&net_, "inproc://central");
  }

  rpc::InProcNetwork net_;
  std::shared_ptr<CentralMetaService> svc_;
  std::unique_ptr<CentralMetaClient> client_;
};

TEST_F(BaselineTest, CreateAndUpdateVersions) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  std::vector<PageRef> refs = {{PageId{1, 1}, 0}, {PageId{1, 2}, 1}};
  auto r1 = client_->Update(*id, 0, refs, 128);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->version, 1u);
  EXPECT_EQ(r1->new_size, 128u);

  std::vector<PageRef> refs2 = {{PageId{2, 1}, 2}};
  auto r2 = client_->Update(*id, 1, refs2, 128);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->version, 2u);

  // Old version keeps its layout; new version sees the overwrite.
  auto l1 = client_->GetLayout(*id, 1, 0, 2);
  auto l2 = client_->GetLayout(*id, 2, 0, 2);
  ASSERT_TRUE(l1.ok() && l2.ok());
  EXPECT_EQ((*l1)[1].pid, (PageId{1, 2}));
  EXPECT_EQ((*l2)[1].pid, (PageId{2, 1}));
  EXPECT_EQ((*l2)[0].pid, (PageId{1, 1}));
}

TEST_F(BaselineTest, GetRecentTracksLatest) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Version v;
  uint64_t size;
  ASSERT_TRUE(client_->GetRecent(*id, &v, &size).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(client_->Update(*id, 0, {{PageId{1, 1}, 0}}, 64).ok());
  ASSERT_TRUE(client_->GetRecent(*id, &v, &size).ok());
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(size, 64u);
}

TEST_F(BaselineTest, ValidationErrors) {
  EXPECT_TRUE(client_->Create(7).status().IsInvalidArgument());
  EXPECT_TRUE(client_->Update(99, 0, {}, 0).status().IsNotFound());
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(client_->GetLayout(*id, 5, 0, 1).status().IsNotFound());
  ASSERT_TRUE(client_->Update(*id, 0, {{PageId{1, 1}, 0}}, 64).ok());
  EXPECT_TRUE(client_->GetLayout(*id, 1, 0, 2).status().IsOutOfRange());
}

TEST_F(BaselineTest, MetadataGrowsLinearlyPerVersion) {
  // The structural contrast with BlobSeer: K versions of an N-page blob
  // hold O(K*N) page refs centrally.
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  const uint64_t kPages = 64;
  std::vector<PageRef> initial;
  for (uint64_t i = 0; i < kPages; i++) initial.push_back({PageId{1, i}, 0});
  ASSERT_TRUE(client_->Update(*id, 0, initial, kPages * 64).ok());
  for (int k = 0; k < 9; k++) {
    ASSERT_TRUE(
        client_->Update(*id, k % kPages, {{PageId{2, uint64_t(k)}, 0}},
                        kPages * 64)
            .ok());
  }
  CentralMetaStats st = svc_->GetStats();
  EXPECT_EQ(st.versions, 10u);
  EXPECT_EQ(st.page_refs, 10 * kPages);
}

TEST_F(BaselineTest, ConcurrentUpdatersSerialize) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      CentralMetaClient c(&net_, "inproc://central");
      for (uint64_t i = 0; i < 25; i++) {
        auto r = c.Update(*id, 0,
                          {{PageId{uint64_t(t), i}, ProviderId(t)}}, 64);
        if (!r.ok()) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  Version v;
  uint64_t size;
  ASSERT_TRUE(client_->GetRecent(*id, &v, &size).ok());
  EXPECT_EQ(v, 100u);
}

}  // namespace
}  // namespace blobseer::baseline
