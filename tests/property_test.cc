// Randomized property testing: arbitrary interleavings of WRITE / APPEND /
// BRANCH / READ across several blobs, replayed against the serial
// reference model, plus random heartbeat/clock-advance interleavings
// against a reference liveness model. Seeds are part of the test name for
// reproducibility.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/cluster.h"
#include "pmanager/client.h"
#include "pmanager/service.h"
#include "reference_blob.h"
#include "rpc/inproc.h"

namespace blobseer {
namespace {

using client::BlobClient;
using testing::ReferenceBlob;
using testing::TestPayload;

struct TrackedBlob {
  BlobId id;
  ReferenceBlob ref;
};

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertyTest, RandomOpsMatchReferenceModel) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  core::ClusterOptions opts;
  opts.num_providers = 3;
  opts.num_meta = 3;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  client::ClientOptions copts;
  copts.max_chain = 3 + seed % 5;  // exercise compaction paths
  auto client_or = (*cluster)->NewClient(copts);
  ASSERT_TRUE(client_or.ok());
  BlobClient& client = **client_or;

  const uint64_t psize = uint64_t{1} << rng.Range(3, 7);  // 8..128
  std::vector<TrackedBlob> blobs;
  {
    auto id = client.Create(psize);
    ASSERT_TRUE(id.ok());
    blobs.push_back(TrackedBlob{*id, ReferenceBlob()});
  }

  const int kOps = 120;
  for (int op = 0; op < kOps; op++) {
    TrackedBlob& b = blobs[rng.Uniform(blobs.size())];
    uint64_t size = b.ref.Size(b.ref.latest());
    switch (rng.Uniform(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // append
        std::string data = TestPayload(seed * 1000 + op, rng.Range(1, 300));
        auto v = client.Append(b.id, Slice(data));
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        ASSERT_EQ(*v, b.ref.ApplyAppend(data)) << "op " << op;
        break;
      }
      case 4:
      case 5:
      case 6: {  // write somewhere valid (may extend)
        if (size == 0) break;
        uint64_t off = rng.Uniform(size + 1);
        std::string data = TestPayload(seed * 1000 + op, rng.Range(1, 200));
        auto v = client.Write(b.id, Slice(data), off);
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        ASSERT_EQ(*v, b.ref.ApplyWrite(data, off)) << "op " << op;
        break;
      }
      case 7: {  // read a random published snapshot range
        Version v = rng.Uniform(b.ref.latest() + 1);
        ASSERT_TRUE(client.Sync(b.id, v).ok());
        uint64_t vsize = b.ref.Size(v);
        if (vsize == 0) break;
        uint64_t off = rng.Uniform(vsize);
        uint64_t len = rng.Range(1, vsize - off);
        std::string out;
        ASSERT_TRUE(client.Read(b.id, v, off, len, &out).ok())
            << "op " << op << " v" << v;
        ASSERT_EQ(out, b.ref.Read(v, off, len)) << "op " << op << " v" << v;
        break;
      }
      case 8: {  // invalid op must fail cleanly
        std::string data = TestPayload(op, 10);
        EXPECT_FALSE(client.Write(b.id, Slice(data), size + 1 + rng.Uniform(50))
                         .ok());
        break;
      }
      case 9: {  // branch from a random published version
        if (blobs.size() >= 4) break;
        Version v = rng.Uniform(b.ref.latest() + 1);
        ASSERT_TRUE(client.Sync(b.id, v).ok());
        auto bid = client.Branch(b.id, v);
        ASSERT_TRUE(bid.ok()) << bid.status().ToString();
        blobs.push_back(TrackedBlob{*bid, b.ref.BranchAt(v)});
        break;
      }
    }
  }

  // Final audit: every snapshot of every blob equals the reference.
  for (TrackedBlob& b : blobs) {
    ASSERT_TRUE(client.Sync(b.id, b.ref.latest()).ok());
    for (Version v = 0; v <= b.ref.latest(); v++) {
      auto size = client.GetSize(b.id, v);
      ASSERT_TRUE(size.ok()) << "blob " << b.id << " v" << v;
      ASSERT_EQ(*size, b.ref.Size(v)) << "blob " << b.id << " v" << v;
      std::string out;
      ASSERT_TRUE(client.Read(b.id, v, 0, *size, &out).ok())
          << "blob " << b.id << " v" << v;
      ASSERT_EQ(out, b.ref.Contents(v)) << "blob " << b.id << " v" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Liveness state machine ------------------------------------------------

/// Deterministic test clock: time moves only when the test says so.
class ManualClock : public Clock {
 public:
  uint64_t NowMicros() override { return now_; }
  void SleepForMicros(uint64_t micros) override { now_ += micros; }
  void Advance(uint64_t micros) { now_ += micros; }

 private:
  uint64_t now_ = 1;
};

class LivenessPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Random interleavings of heartbeats, clock advances and allocations must
// never allocate a dead provider, never mark a provider dead while its
// beats are on time, and must agree with the reference liveness model
// derived purely from heartbeat ages.
TEST_P(LivenessPropertyTest, RandomBeatsAndClockAdvancesMatchReference) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  constexpr uint64_t kSuspectAfter = 500;
  constexpr uint64_t kDeadAfter = 1500;
  constexpr size_t kProviders = 6;

  ManualClock clock;
  auto svc = std::make_shared<pmanager::ProviderManagerService>(
      pmanager::MakeStrategy(seed % 2 == 0 ? "round_robin" : "least_loaded"),
      &clock, pmanager::LivenessOptions{kSuspectAfter, kDeadAfter});
  rpc::InProcNetwork net;
  ASSERT_TRUE(net.Serve("inproc://pm", svc).ok());
  pmanager::ProviderManagerClient client(&net, "inproc://pm");

  std::vector<uint64_t> last_beat(kProviders);
  for (size_t i = 0; i < kProviders; i++) {
    auto id = client.Register("inproc://prov-" + std::to_string(i), 0);
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(*id, i);
    last_beat[i] = clock.NowMicros();
  }

  auto expected = [&](size_t i) {
    uint64_t age = clock.NowMicros() - last_beat[i];
    if (age >= kDeadAfter) return pmanager::Liveness::kDead;
    if (age >= kSuspectAfter) return pmanager::Liveness::kSuspect;
    return pmanager::Liveness::kAlive;
  };

  for (int op = 0; op < 400; op++) {
    switch (rng.Uniform(3)) {
      case 0:
        clock.Advance(rng.Range(1, 400));
        break;
      case 1: {  // one provider beats (possibly one already presumed dead)
        size_t i = rng.Uniform(kProviders);
        ASSERT_TRUE(client.Heartbeat(static_cast<ProviderId>(i), 0, 0).ok());
        last_beat[i] = clock.NowMicros();
        break;
      }
      case 2: {  // allocate and audit the replica sets
        uint32_t r = 1 + static_cast<uint32_t>(rng.Uniform(4));
        size_t alive = 0, nondead = 0;
        for (size_t i = 0; i < kProviders; i++) {
          if (expected(i) == pmanager::Liveness::kAlive) alive++;
          if (expected(i) != pmanager::Liveness::kDead) nondead++;
        }
        auto sets =
            client.AllocateReplicated(1 + rng.Uniform(4), r);
        if (nondead < r) {
          // Not even the suspect fallback can reach r distinct providers.
          EXPECT_TRUE(sets.status().IsUnavailable()) << "op " << op;
          break;
        }
        ASSERT_TRUE(sets.ok()) << "op " << op << ": "
                               << sets.status().ToString();
        for (const auto& set : *sets) {
          for (ProviderId p : set) {
            // A dead provider must never be allocated...
            EXPECT_NE(expected(p), pmanager::Liveness::kDead)
                << "op " << op;
            // ...and suspects only enter when live capacity < r.
            if (expected(p) == pmanager::Liveness::kSuspect) {
              EXPECT_LT(alive, r) << "op " << op;
            }
          }
        }
        break;
      }
    }
    // The service's verdicts must match the reference model exactly; in
    // particular a provider whose beats are on time is never dead.
    auto records = svc->Records();
    ASSERT_EQ(records.size(), kProviders);
    for (const auto& rec : records) {
      EXPECT_EQ(rec.liveness, expected(rec.id)) << "op " << op << " provider "
                                                << rec.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LivenessPropertyTest,
                         ::testing::Values(7, 11, 23, 41, 59, 97));

}  // namespace
}  // namespace blobseer
