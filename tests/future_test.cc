// Unit tests for the promise/future primitive: continuation chaining,
// flattening, WhenAll fan-in, executor dispatch, sync-over-async waits,
// and abandoned-promise resolution.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/future.h"

namespace blobseer {
namespace {

TEST(FutureTest, ReadyFutureDeliversValue) {
  auto f = MakeReadyFuture<int>(42);
  auto r = f.Wait();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(FutureTest, ReadyFutureDeliversError) {
  auto f = MakeReadyFuture<int>(Result<int>(Status::NotFound("nope")));
  auto r = f.Wait();
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(FutureTest, SetBeforeAndAfterAttach) {
  {
    Promise<std::string> p;
    auto f = p.GetFuture();
    p.Set(std::string("early"));
    std::string got;
    f.OnReady(nullptr, [&](Result<std::string> r) { got = *r; });
    EXPECT_EQ(got, "early");
  }
  {
    Promise<std::string> p;
    auto f = p.GetFuture();
    std::string got;
    f.OnReady(nullptr, [&](Result<std::string> r) { got = *r; });
    EXPECT_TRUE(got.empty());
    p.Set(std::string("late"));
    EXPECT_EQ(got, "late");
  }
}

TEST(FutureTest, ThenTransformsValueAndMapsTypes) {
  // Result<U> return.
  auto doubled = MakeReadyFuture<int>(21).Then(
      [](Result<int> r) -> Result<int> { return *r * 2; });
  EXPECT_EQ(*doubled.Wait(), 42);
  // Plain-value return.
  auto stringified = MakeReadyFuture<int>(7).Then(
      [](Result<int> r) { return std::to_string(*r); });
  EXPECT_EQ(*stringified.Wait(), "7");
  // Status return maps to Future<Unit>.
  Future<Unit> ok = MakeReadyFuture<int>(1).Then(
      [](Result<int>) { return Status::OK(); });
  EXPECT_TRUE(ok.Wait().ok());
}

TEST(FutureTest, ThenReceivesAndPropagatesErrors) {
  bool saw_error = false;
  auto f = MakeReadyFuture<int>(Result<int>(Status::TimedOut("t")))
               .Then([&](Result<int> r) -> Result<int> {
                 saw_error = !r.ok();
                 return r.status();  // pass through
               });
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(f.Wait().status().IsTimedOut());
}

TEST(FutureTest, ThenFlattensReturnedFuture) {
  Promise<int> inner;
  auto f = MakeReadyFuture<int>(1).Then(
      [&](Result<int>) -> Future<int> { return inner.GetFuture(); });
  EXPECT_FALSE(f.Ready());
  inner.Set(99);
  EXPECT_EQ(*f.Wait(), 99);
}

TEST(FutureTest, ChainAcrossThreads) {
  Promise<int> p;
  auto f = p.GetFuture()
               .Then([](Result<int> r) -> Result<int> { return *r + 1; })
               .Then([](Result<int> r) -> Result<int> { return *r * 10; });
  std::thread t([&p] { p.Set(4); });
  EXPECT_EQ(*f.Wait(), 50);
  t.join();
}

TEST(FutureTest, ExecutorDispatchRunsOnPoolThread) {
  ThreadPoolExecutor pool(2);
  std::thread::id attach_thread = std::this_thread::get_id();
  Promise<int> p;
  auto f = p.GetFuture().Then(&pool, [&](Result<int> r) -> Result<int> {
    EXPECT_NE(std::this_thread::get_id(), attach_thread);
    return *r;
  });
  p.Set(5);
  EXPECT_EQ(*f.Wait(&pool), 5);
}

TEST(FutureTest, WhenAllPreservesOrderAndErrors) {
  std::vector<Promise<int>> promises(3);
  std::vector<Future<int>> futures;
  for (auto& p : promises) futures.push_back(p.GetFuture());
  auto all = WhenAll(std::move(futures));
  // Complete out of order.
  promises[2].Set(2);
  promises[0].Set(0);
  promises[1].Set(Status::Unavailable("mid"));
  auto r = all.Wait();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ(*(*r)[0], 0);
  EXPECT_TRUE((*r)[1].status().IsUnavailable());
  EXPECT_EQ(*(*r)[2], 2);
  EXPECT_TRUE(FirstError(*r).IsUnavailable());
}

TEST(FutureTest, WhenAllOfNothingIsReady) {
  auto all = WhenAll(std::vector<Future<int>>{});
  ASSERT_TRUE(all.Ready());
  EXPECT_TRUE(all.Wait()->empty());
}

TEST(FutureTest, AbandonedPromiseResolvesWithInternal) {
  Future<int> f;
  {
    Promise<int> p;
    f = p.GetFuture();
  }
  auto r = f.Wait();
  EXPECT_TRUE(r.status().IsInternal());
  EXPECT_NE(r.status().message().find("abandoned"), std::string::npos);
}

TEST(FutureTest, WaitParksUntilCompletion) {
  Promise<int> p;
  auto f = p.GetFuture();
  std::atomic<bool> set{false};
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    set.store(true);
    p.Set(7);
  });
  auto r = f.Wait();
  EXPECT_TRUE(set.load());
  EXPECT_EQ(*r, 7);
  t.join();
}

TEST(FutureTest, ManyConcurrentCompletions) {
  ThreadPoolExecutor pool(4);
  constexpr int kFutures = 256;
  std::vector<Promise<int>> promises(kFutures);
  std::vector<Future<int>> futures;
  for (auto& p : promises) futures.push_back(p.GetFuture());
  auto all = WhenAll(std::move(futures));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      for (int i = t; i < kFutures; i += 4) promises[i].Set(i);
    });
  }
  auto r = all.Wait();
  for (auto& th : threads) th.join();
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < kFutures; i++) EXPECT_EQ(*(*r)[i], i);
}

}  // namespace
}  // namespace blobseer
