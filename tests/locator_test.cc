// Locator subsystem tests: location-entry wire format, DHT compare-and-swap
// (store and client), the client-side LocationIndex (cache, publish, seed,
// CAS), the provider manager's page-location table, and direct
// Rebuilder::RunOnePass scenarios — heal, drain, rebalance, CAS conflict,
// deleted-entry cleanup and the per-pass move budget.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dht/client.h"
#include "dht/service.h"
#include "dht/store.h"
#include "locator/location.h"
#include "locator/rebuilder.h"
#include "locator/table.h"
#include "provider/client.h"
#include "provider/page_store.h"
#include "provider/service.h"
#include "rpc/inproc.h"

namespace blobseer::locator {
namespace {

// --- Wire format -----------------------------------------------------------

TEST(LocationKeyTest, KeysAreDistinctAndDeterministic) {
  EXPECT_EQ(LocationKey(PageId{1, 2}), LocationKey(PageId{1, 2}));
  EXPECT_NE(LocationKey(PageId{1, 2}), LocationKey(PageId{1, 3}));
  EXPECT_NE(LocationKey(PageId{1, 2}), LocationKey(PageId{2, 2}));
}

TEST(LocationEntrySerdeTest, RoundTrip) {
  LocationEntry e{7, {3, 1, 4}};
  BinaryWriter w;
  e.EncodeTo(&w);
  LocationEntry decoded;
  BinaryReader r{Slice(w.buffer())};
  ASSERT_TRUE(decoded.DecodeFrom(&r).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(decoded, e);
  EXPECT_TRUE(decoded.valid());
}

TEST(LocationEntrySerdeTest, TruncatedAndOversizedRejected) {
  LocationEntry e{1, {0, 1}};
  BinaryWriter w;
  e.EncodeTo(&w);
  {
    LocationEntry decoded;
    BinaryReader r{Slice(w.buffer().data(), w.buffer().size() - 2)};
    EXPECT_FALSE(decoded.DecodeFrom(&r).ok());
  }
  {
    // Claimed replica count larger than the remaining payload.
    BinaryWriter bad;
    bad.PutU64(1);
    bad.PutU32(1000);
    LocationEntry decoded;
    BinaryReader r{Slice(bad.buffer())};
    EXPECT_TRUE(decoded.DecodeFrom(&r).IsCorruption());
  }
}

TEST(LocationEntrySerdeTest, ValidRequiresEpochAndProviders) {
  EXPECT_FALSE((LocationEntry{0, {1}}).valid());
  EXPECT_FALSE((LocationEntry{1, {}}).valid());
  EXPECT_TRUE((LocationEntry{1, {1}}).valid());
}

// --- Compare-and-swap: store and DHT client --------------------------------

TEST(KvStoreCasTest, ExpectAbsentCreatesOnce) {
  dht::KvStore store(4);
  bool applied = false, present = false;
  std::string current;
  ASSERT_TRUE(store.Cas(Slice("k"), Slice(), Slice("v1"), true, &applied,
                        &present, &current)
                  .ok());
  EXPECT_TRUE(applied);
  EXPECT_TRUE(present);
  EXPECT_EQ(current, "v1");
  // A second create loses and reports the stored bytes.
  ASSERT_TRUE(store.Cas(Slice("k"), Slice(), Slice("v2"), true, &applied,
                        &present, &current)
                  .ok());
  EXPECT_FALSE(applied);
  EXPECT_EQ(current, "v1");
}

TEST(KvStoreCasTest, ConditionalOverwrite) {
  dht::KvStore store(4);
  ASSERT_TRUE(store.Put(Slice("k"), Slice("v1")).ok());
  bool applied = false, present = false;
  std::string current;
  // Mismatched expectation: not applied, current carries the stored bytes.
  ASSERT_TRUE(store.Cas(Slice("k"), Slice("zz"), Slice("v2"), false, &applied,
                        &present, &current)
                  .ok());
  EXPECT_FALSE(applied);
  EXPECT_TRUE(present);
  EXPECT_EQ(current, "v1");
  // Matching expectation installs.
  ASSERT_TRUE(store.Cas(Slice("k"), Slice("v1"), Slice("v2"), false, &applied,
                        &present, &current)
                  .ok());
  EXPECT_TRUE(applied);
  EXPECT_EQ(current, "v2");
  // CAS on a missing key: not applied, not present.
  ASSERT_TRUE(store.Cas(Slice("gone"), Slice("v1"), Slice("v2"), false,
                        &applied, &present, &current)
                  .ok());
  EXPECT_FALSE(applied);
  EXPECT_FALSE(present);
  EXPECT_TRUE(current.empty());
}

class DhtCasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; i++) {
      auto svc = std::make_shared<dht::DhtService>();
      services_.push_back(svc);
      std::string addr = "inproc://dht-" + std::to_string(i);
      ASSERT_TRUE(net_.Serve(addr, svc).ok());
      addresses_.push_back(addr);
    }
  }

  rpc::InProcNetwork net_;
  std::vector<std::shared_ptr<dht::DhtService>> services_;
  std::vector<std::string> addresses_;
};

TEST_F(DhtCasTest, CreateThenConditionalChain) {
  dht::DhtClient client(&net_, addresses_);
  bool applied = false;
  std::string current;
  ASSERT_TRUE(
      client.Cas(Slice("k"), Slice(), Slice("a"), true, &applied, &current)
          .ok());
  EXPECT_TRUE(applied);
  ASSERT_TRUE(
      client.Cas(Slice("k"), Slice("a"), Slice("b"), false, &applied, &current)
          .ok());
  EXPECT_TRUE(applied);
  // Stale expectation after the chain advanced.
  ASSERT_TRUE(
      client.Cas(Slice("k"), Slice("a"), Slice("c"), false, &applied, &current)
          .ok());
  EXPECT_FALSE(applied);
  EXPECT_EQ(current, "b");
  std::string v;
  ASSERT_TRUE(client.Get(Slice("k"), &v).ok());
  EXPECT_EQ(v, "b");
}

TEST_F(DhtCasTest, AppliedCasPropagatesToReplicas) {
  dht::DhtClientOptions opts;
  opts.replication = 2;
  dht::DhtClient client(&net_, addresses_, opts);
  bool applied = false;
  std::string current;
  ASSERT_TRUE(
      client.Cas(Slice("rk"), Slice(), Slice("v"), true, &applied, &current)
          .ok());
  ASSERT_TRUE(applied);
  // The winning value lands on both placement replicas.
  uint64_t keys = 0, bytes = 0;
  ASSERT_TRUE(client.TotalStats(&keys, &bytes).ok());
  EXPECT_EQ(keys, 2u);
}

// --- LocationIndex ---------------------------------------------------------

class LocationIndexTest : public DhtCasTest {
 protected:
  void SetUp() override {
    DhtCasTest::SetUp();
    dht_ = std::make_unique<dht::DhtClient>(&net_, addresses_);
  }

  std::unique_ptr<dht::DhtClient> dht_;
};

TEST_F(LocationIndexTest, PublishResolvesFromCacheThenFromDht) {
  LocationIndex index(dht_.get(), 8);
  PageId pid{1, 1};
  ASSERT_TRUE(index.Publish(pid, {2, 4}).ok());
  auto e = index.Resolve(pid);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->epoch, 1u);
  EXPECT_EQ(e->providers, (std::vector<ProviderId>{2, 4}));
  LocationIndexStats st = index.GetStats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 0u);
  // Invalidate: the next resolve misses the cache but refetches the entry.
  index.Invalidate(pid);
  e = index.Resolve(pid);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->providers, (std::vector<ProviderId>{2, 4}));
  st = index.GetStats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.invalidations, 1u);
}

TEST_F(LocationIndexTest, UnknownPageIsNotFound) {
  LocationIndex index(dht_.get(), 8);
  EXPECT_TRUE(index.Resolve(PageId{9, 9}).status().IsNotFound());
}

TEST_F(LocationIndexTest, SeedCreatesOnlyWhenAbsent) {
  LocationIndex a(dht_.get(), 8);
  LocationIndex b(dht_.get(), 8);
  PageId pid{2, 1};
  auto seeded = a.Seed(pid, {1, 3});
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded->epoch, 1u);
  EXPECT_EQ(seeded->providers, (std::vector<ProviderId>{1, 3}));
  EXPECT_EQ(a.GetStats().seeds, 1u);
  // A second reader seeding from stale legacy metadata adopts the stored
  // entry instead of overwriting it.
  auto lost = b.Seed(pid, {7, 8});
  ASSERT_TRUE(lost.ok());
  EXPECT_EQ(lost->providers, (std::vector<ProviderId>{1, 3}));
  EXPECT_EQ(b.GetStats().seeds, 0u);
}

TEST_F(LocationIndexTest, CompareAndSwapBumpsEpochAndDetectsConflict) {
  LocationIndex index(dht_.get(), 8);
  PageId pid{3, 1};
  ASSERT_TRUE(index.Publish(pid, {0, 1}).ok());
  LocationEntry e1{1, {0, 1}};
  auto e2 = index.CompareAndSwap(pid, e1, {0, 2});
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2->epoch, 2u);
  EXPECT_EQ(e2->providers, (std::vector<ProviderId>{0, 2}));
  // Stale expectation: a concurrent relocation already won.
  EXPECT_TRUE(index.CompareAndSwap(pid, e1, {0, 3}).status().IsAborted());
  // Entry deleted underneath: NotFound, distinct from the conflict case.
  ASSERT_TRUE(dht_->Delete(Slice(LocationKey(pid))).ok());
  index.Invalidate(pid);
  EXPECT_TRUE(index.CompareAndSwap(pid, *e2, {0, 3}).status().IsNotFound());
}

TEST_F(LocationIndexTest, CacheEvictsAtCapacityButDhtStillServes) {
  LocationIndex index(dht_.get(), 2);
  for (uint64_t i = 1; i <= 3; i++) {
    ASSERT_TRUE(index.Publish(PageId{4, i}, {0}).ok());
  }
  // The oldest entry was evicted: resolving it misses but refetches.
  auto e = index.Resolve(PageId{4, 1});
  ASSERT_TRUE(e.ok());
  EXPECT_GE(index.GetStats().misses, 1u);
}

// --- PageLocationTable -----------------------------------------------------

TEST(PageLocationTableTest, RecordLookupForget) {
  PageLocationTable table;
  PageId pid{1, 1};
  table.Record(pid, LocationEntry{1, {0, 2}});
  LocationEntry e;
  ASSERT_TRUE(table.Lookup(pid, &e));
  EXPECT_EQ(e.providers, (std::vector<ProviderId>{0, 2}));
  EXPECT_EQ(table.size(), 1u);
  table.Forget(pid);
  EXPECT_FALSE(table.Lookup(pid, &e));
  EXPECT_EQ(table.size(), 0u);
}

TEST(PageLocationTableTest, StaleEpochIgnored) {
  PageLocationTable table;
  PageId pid{1, 2};
  table.Record(pid, LocationEntry{3, {5}});
  // An out-of-order report with an older epoch must not roll back the move.
  table.Record(pid, LocationEntry{2, {4}});
  LocationEntry e;
  ASSERT_TRUE(table.Lookup(pid, &e));
  EXPECT_EQ(e.epoch, 3u);
  EXPECT_EQ(e.providers, (std::vector<ProviderId>{5}));
}

TEST(PageLocationTableTest, PagesOnAndCountOn) {
  PageLocationTable table;
  table.Record(PageId{1, 1}, LocationEntry{1, {0, 1}});
  table.Record(PageId{1, 2}, LocationEntry{1, {1, 2}});
  table.Record(PageId{1, 3}, LocationEntry{1, {2, 0}});
  EXPECT_EQ(table.CountOn(1), 2u);
  EXPECT_EQ(table.CountOn(3), 0u);
  auto on0 = table.PagesOn(0);
  EXPECT_EQ(on0.size(), 2u);
  EXPECT_EQ(table.Snapshot().size(), 3u);
}

// --- Rebuilder: direct RunOnePass scenarios --------------------------------

class RebuilderTest : public ::testing::Test {
 protected:
  static constexpr size_t kProviders = 4;

  void SetUp() override {
    for (size_t i = 0; i < kProviders; i++) {
      auto svc = std::make_shared<provider::ProviderService>(
          provider::MakeMemoryPageStore());
      std::string addr = "inproc://prov-" + std::to_string(i);
      ASSERT_TRUE(net_.Serve(addr, svc).ok());
      provider_services_.push_back(svc);
      provider_addresses_.push_back(addr);
      ProviderView v;
      v.id = static_cast<ProviderId>(i);
      v.address = addr;
      v.alive = v.up = true;
      views_.push_back(v);
    }
    auto dht_svc = std::make_shared<dht::DhtService>();
    ASSERT_TRUE(net_.Serve("inproc://dht", dht_svc).ok());
    dht_addresses_ = {"inproc://dht"};
    dht_ = std::make_unique<dht::DhtClient>(&net_, dht_addresses_);
    index_ = std::make_unique<LocationIndex>(dht_.get(), 0);
    pages_ = std::make_unique<provider::ProviderClient>(&net_);
  }

  Rebuilder NewRebuilder(RebuildOptions options = {}) {
    return Rebuilder(
        &table_, [this] { return views_; }, &net_, dht_addresses_,
        dht::DhtClientOptions{}, options);
  }

  /// Stores page bytes on every member, publishes the epoch-1 location
  /// entry and records it in the table — the state a client write leaves.
  void InstallPage(const PageId& pid, const std::vector<ProviderId>& members,
                   const std::string& bytes) {
    for (ProviderId m : members) {
      ASSERT_TRUE(
          pages_->WritePage(provider_addresses_[m], pid, Slice(bytes)).ok());
    }
    ASSERT_TRUE(index_->Publish(pid, members).ok());
    table_.Record(pid, LocationEntry{1, members});
  }

  void MarkDead(ProviderId id) {
    views_[id].alive = false;
    views_[id].up = false;
  }

  void MarkDraining(ProviderId id) {
    views_[id].alive = false;
    views_[id].draining = true;
  }

  rpc::InProcNetwork net_;
  std::vector<std::shared_ptr<provider::ProviderService>> provider_services_;
  std::vector<std::string> provider_addresses_;
  std::vector<ProviderView> views_;
  std::vector<std::string> dht_addresses_;
  std::unique_ptr<dht::DhtClient> dht_;
  std::unique_ptr<LocationIndex> index_;
  std::unique_ptr<provider::ProviderClient> pages_;
  PageLocationTable table_;
};

TEST_F(RebuilderTest, HealsDeadMemberOntoDifferentLiveProvider) {
  PageId pid{1, 1};
  InstallPage(pid, {0, 1}, "payload");
  MarkDead(1);
  Rebuilder r = NewRebuilder();
  EXPECT_EQ(r.RunOnePass(), 1u);
  EXPECT_EQ(r.GetStats().pages_rebuilt, 1u);

  // The committed entry names the survivor plus a fresh live provider.
  LocationEntry e;
  ASSERT_TRUE(table_.Lookup(pid, &e));
  EXPECT_EQ(e.epoch, 2u);
  EXPECT_EQ(e.providers, (std::vector<ProviderId>{0, 2}));
  auto stored = index_->Resolve(pid);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, e);
  // And the bytes were actually copied there.
  std::string out;
  ASSERT_TRUE(
      pages_->ReadPage(provider_addresses_[2], pid, 0, 0, &out).ok());
  EXPECT_EQ(out, "payload");
  // A second pass finds nothing to do.
  EXPECT_EQ(r.RunOnePass(), 0u);
}

TEST_F(RebuilderTest, DrainMovesPageOffAndDeletesVacatedCopy) {
  PageId pid{2, 1};
  InstallPage(pid, {0}, "drainme");
  MarkDraining(0);
  Rebuilder r = NewRebuilder();
  EXPECT_EQ(r.RunOnePass(), 1u);
  EXPECT_EQ(r.GetStats().pages_drained, 1u);

  LocationEntry e;
  ASSERT_TRUE(table_.Lookup(pid, &e));
  EXPECT_EQ(e.epoch, 2u);
  EXPECT_EQ(e.providers, (std::vector<ProviderId>{1}));
  std::string out;
  ASSERT_TRUE(
      pages_->ReadPage(provider_addresses_[1], pid, 0, 0, &out).ok());
  EXPECT_EQ(out, "drainme");
  // The draining provider is still up, so its vacated copy was deleted.
  EXPECT_TRUE(pages_->ReadPage(provider_addresses_[0], pid, 0, 0, &out)
                  .IsNotFound());
  EXPECT_EQ(table_.CountOn(0), 0u);
}

TEST_F(RebuilderTest, RebalanceSpreadsLoadOntoEmptyProvider) {
  // Three pages on provider 0, the rest empty: spread is 3 vs 0, so the
  // rebalance pass must migrate pages until the spread closes to one.
  for (uint64_t i = 1; i <= 3; i++) {
    InstallPage(PageId{3, i}, {0}, "rb");
  }
  Rebuilder r = NewRebuilder();
  size_t moved = r.RunOnePass();
  EXPECT_GE(moved, 1u);
  EXPECT_EQ(r.GetStats().pages_rebalanced, moved);
  EXPECT_LT(table_.CountOn(0), 3u);
}

TEST_F(RebuilderTest, RebalanceDisabledLeavesImbalance) {
  for (uint64_t i = 1; i <= 3; i++) {
    InstallPage(PageId{4, i}, {0}, "rb");
  }
  RebuildOptions options;
  options.rebalance = false;
  Rebuilder r = NewRebuilder(options);
  EXPECT_EQ(r.RunOnePass(), 0u);
  EXPECT_EQ(table_.CountOn(0), 3u);
}

TEST_F(RebuilderTest, StaleTableEntryLosesCasAndAdoptsFreshEntry) {
  // The DHT already holds the healed entry (epoch 2, {0, 2}) — say another
  // rebuilder moved the page — while this rebuilder's table is stale at
  // epoch 1 with the dead member still listed.
  PageId pid{5, 1};
  InstallPage(pid, {0, 1}, "cas");
  LocationEntry healed = {1, {0, 1}};
  auto installed = index_->CompareAndSwap(pid, healed, {0, 2});
  ASSERT_TRUE(installed.ok());
  ASSERT_TRUE(
      pages_->WritePage(provider_addresses_[2], pid, Slice("cas")).ok());
  table_.Record(pid, LocationEntry{1, {0, 1}});  // stale: pre-heal view
  MarkDead(1);

  Rebuilder r = NewRebuilder();
  EXPECT_EQ(r.RunOnePass(), 0u);
  RebuildStats st = r.GetStats();
  EXPECT_EQ(st.cas_conflicts, 1u);
  EXPECT_EQ(st.pages_rebuilt, 0u);
  // The conflict taught the table the authoritative entry.
  LocationEntry e;
  ASSERT_TRUE(table_.Lookup(pid, &e));
  EXPECT_EQ(e, *installed);
}

TEST_F(RebuilderTest, NoEligibleTargetCountsFailedMove) {
  // Every live provider already holds the page: nowhere to move it.
  PageId pid{6, 1};
  InstallPage(pid, {0, 1}, "stuck");
  MarkDead(1);
  MarkDead(2);
  MarkDead(3);
  Rebuilder r = NewRebuilder();
  EXPECT_EQ(r.RunOnePass(), 0u);
  EXPECT_GE(r.GetStats().failed_moves, 1u);
  LocationEntry e;
  ASSERT_TRUE(table_.Lookup(pid, &e));
  EXPECT_EQ(e.epoch, 1u);  // entry untouched
}

TEST_F(RebuilderTest, DeletedEntryIsForgotten) {
  // The table remembers a page whose location entry was deleted (the page
  // was garbage-collected): the pass must drop it, not resurrect it.
  PageId pid{7, 1};
  InstallPage(pid, {0, 1}, "gone");
  ASSERT_TRUE(dht_->Delete(Slice(LocationKey(pid))).ok());
  MarkDead(1);
  Rebuilder r = NewRebuilder();
  EXPECT_EQ(r.RunOnePass(), 0u);
  LocationEntry e;
  EXPECT_FALSE(table_.Lookup(pid, &e));
}

TEST_F(RebuilderTest, MoveBudgetBoundsEachPass) {
  for (uint64_t i = 1; i <= 3; i++) {
    InstallPage(PageId{8, i}, {0, 1}, "budget");
  }
  MarkDead(1);
  RebuildOptions options;
  options.max_moves_per_pass = 1;
  options.rebalance = false;
  Rebuilder r = NewRebuilder(options);
  EXPECT_EQ(r.RunOnePass(), 1u);
  EXPECT_EQ(r.RunOnePass(), 1u);
  EXPECT_EQ(r.RunOnePass(), 1u);
  EXPECT_EQ(r.RunOnePass(), 0u);
  EXPECT_EQ(r.GetStats().pages_rebuilt, 3u);
  EXPECT_EQ(table_.CountOn(1), 0u);
}

}  // namespace
}  // namespace blobseer::locator
