// Serial reference model for BlobSeer semantics: a blob is, logically, the
// sequence of byte states produced by applying updates in version order.
// Integration and property tests replay the system's history against this
// model to check linearizability of the versioning interface.
#ifndef BLOBSEER_TESTS_REFERENCE_BLOB_H_
#define BLOBSEER_TESTS_REFERENCE_BLOB_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace blobseer::testing {

/// Reference blob: version -> full contents.
class ReferenceBlob {
 public:
  ReferenceBlob() { versions_.push_back(""); }  // version 0: empty

  /// Applies a write at `offset`; returns the new version number.
  Version ApplyWrite(const std::string& data, uint64_t offset) {
    std::string next = versions_.back();
    if (offset + data.size() > next.size()) {
      next.resize(offset + data.size(), '\0');
    }
    next.replace(offset, data.size(), data);
    versions_.push_back(std::move(next));
    return versions_.size() - 1;
  }

  Version ApplyAppend(const std::string& data) {
    return ApplyWrite(data, versions_.back().size());
  }

  /// Registers a zero-filled update (the repair semantics of an aborted
  /// update).
  Version ApplyZeroFill(uint64_t offset, uint64_t size) {
    return ApplyWrite(std::string(size, '\0'), offset);
  }

  const std::string& Contents(Version v) const { return versions_.at(v); }
  uint64_t Size(Version v) const { return versions_.at(v).size(); }
  Version latest() const { return versions_.size() - 1; }

  std::string Read(Version v, uint64_t offset, uint64_t size) const {
    return versions_.at(v).substr(offset, size);
  }

  /// Branch: a new reference blob sharing history up to `v`.
  ReferenceBlob BranchAt(Version v) const {
    ReferenceBlob b;
    b.versions_.assign(versions_.begin(), versions_.begin() + v + 1);
    return b;
  }

 private:
  std::vector<std::string> versions_;
};

/// Deterministic pseudo-random payload, distinct per (tag, len) pair —
/// recognizable in failures.
inline std::string TestPayload(uint64_t tag, size_t len) {
  std::string s(len, '\0');
  uint64_t x = tag * 0x9E3779B97F4A7C15ULL + 12345;
  for (size_t i = 0; i < len; i++) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    s[i] = static_cast<char>('a' + ((x * 0x2545F4914F6CDD1DULL) >> 60));
  }
  return s;
}

}  // namespace blobseer::testing

#endif  // BLOBSEER_TESTS_REFERENCE_BLOB_H_
