// RPC layer tests: in-process and TCP transports, error propagation,
// composite dispatch, channel pooling, concurrent calls.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/executor.h"
#include "common/future.h"

#include "common/serde.h"
#include "rpc/call.h"
#include "rpc/channel_pool.h"
#include "rpc/inproc.h"
#include "rpc/service.h"
#include "rpc/tcp.h"

namespace blobseer::rpc {
namespace {

// Echo service on the DHT method block; also exposes a failing method.
class EchoService : public ServiceHandler {
 public:
  Status Handle(Method method, Slice payload, std::string* response) override {
    calls_.fetch_add(1);
    if (method == Method::kDhtPut) {
      *response = payload.ToString();
      return Status::OK();
    }
    if (method == Method::kDhtGet) {
      return Status::NotFound("echo: no such key");
    }
    return Status::NotSupported("echo");
  }
  int calls() const { return calls_.load(); }

 private:
  std::atomic<int> calls_{0};
};

class TransportTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "tcp") {
      tcp_ = std::make_unique<TcpTransport>();
      transport_ = tcp_.get();
      serve_address_ = "127.0.0.1:0";
    } else {
      inproc_ = std::make_unique<InProcNetwork>();
      transport_ = inproc_.get();
      serve_address_ = "inproc://echo";
    }
  }

  std::unique_ptr<TcpTransport> tcp_;
  std::unique_ptr<InProcNetwork> inproc_;
  Transport* transport_ = nullptr;
  std::string serve_address_;
};

TEST_P(TransportTest, RoundTrip) {
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  auto ch = transport_->Connect(*bound);
  ASSERT_TRUE(ch.ok());
  std::string out;
  ASSERT_TRUE((*ch)->Call(Method::kDhtPut, Slice("hello"), &out).ok());
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(svc->calls(), 1);
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
}

TEST_P(TransportTest, EmptyAndLargePayloads) {
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok());
  auto ch = transport_->Connect(*bound);
  ASSERT_TRUE(ch.ok());

  std::string out;
  ASSERT_TRUE((*ch)->Call(Method::kDhtPut, Slice(""), &out).ok());
  EXPECT_TRUE(out.empty());

  std::string big(3 * 1024 * 1024, 'x');
  big[1024] = '\0';  // binary-safe
  ASSERT_TRUE((*ch)->Call(Method::kDhtPut, Slice(big), &out).ok());
  EXPECT_EQ(out, big);
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
}

TEST_P(TransportTest, RemoteErrorPropagatesCodeAndMessage) {
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok());
  auto ch = transport_->Connect(*bound);
  ASSERT_TRUE(ch.ok());
  std::string out;
  Status s = (*ch)->Call(Method::kDhtGet, Slice("k"), &out);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "echo: no such key");
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
}

TEST_P(TransportTest, ConcurrentCallsThroughPool) {
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok());

  ChannelPool pool(transport_, 4);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; i++) {
        auto ch = pool.Get(*bound);
        if (!ch.ok()) {
          failures++;
          continue;
        }
        std::string payload = "msg-" + std::to_string(t * 1000 + i);
        std::string out;
        Status s = (*ch)->Call(Method::kDhtPut, Slice(payload), &out);
        if (!s.ok() || out != payload) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc->calls(), 400);
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
}

TEST_P(TransportTest, StoppedServerBecomesUnavailable) {
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok());
  auto ch = transport_->Connect(*bound);
  ASSERT_TRUE(ch.ok());
  std::string out;
  ASSERT_TRUE((*ch)->Call(Method::kDhtPut, Slice("x"), &out).ok());
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
  Status s = (*ch)->Call(Method::kDhtPut, Slice("y"), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable() || s.IsIOError()) << s.ToString();
}

TEST_P(TransportTest, AsyncCallCompletes) {
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok());
  auto ch = transport_->Connect(*bound);
  ASSERT_TRUE(ch.ok());
  auto done = std::make_shared<CondVarWaitEvent>();
  Status st = Status::Internal("callback never ran");
  std::string out;
  (*ch)->CallAsync(Method::kDhtPut, Slice("hello"),
                   [&, done](Status s, std::string payload) {
                     st = std::move(s);
                     out = std::move(payload);
                     done->Signal();
                   });
  done->Await();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
}

TEST_P(TransportTest, AsyncErrorCarriesCodeAndMessage) {
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok());
  auto ch = transport_->Connect(*bound);
  ASSERT_TRUE(ch.ok());
  auto done = std::make_shared<CondVarWaitEvent>();
  Status st;
  (*ch)->CallAsync(Method::kDhtGet, Slice("k"),
                   [&, done](Status s, std::string) {
                     st = std::move(s);
                     done->Signal();
                   });
  done->Await();
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
  EXPECT_EQ(st.message(), "echo: no such key");
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
}

TEST_P(TransportTest, ManyInFlightAsyncCallsOnOneChannel) {
  // The pipelined path: N requests issued before any response is consumed;
  // every callback must fire exactly once with its own payload.
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok());
  auto ch = transport_->Connect(*bound);
  ASSERT_TRUE(ch.ok());
  constexpr int kCalls = 64;
  std::mutex mu;
  std::condition_variable cv;
  int remaining = kCalls;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < kCalls; i++) {
    std::string payload = "pipelined-" + std::to_string(i);
    (*ch)->CallAsync(Method::kDhtPut, Slice(payload),
                     [&, expect = payload](Status s, std::string out) {
                       if (!s.ok() || out != expect) mismatches++;
                       std::lock_guard<std::mutex> lock(mu);
                       if (--remaining == 0) cv.notify_all();
                     });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(svc->calls(), kCalls);
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
}

TEST_P(TransportTest, AsyncCallAfterServerStopFails) {
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok());
  auto ch = transport_->Connect(*bound);
  ASSERT_TRUE(ch.ok());
  std::string out;
  ASSERT_TRUE((*ch)->Call(Method::kDhtPut, Slice("x"), &out).ok());
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
  auto done = std::make_shared<CondVarWaitEvent>();
  Status st;
  (*ch)->CallAsync(Method::kDhtPut, Slice("y"),
                   [&, done](Status s, std::string) {
                     st = std::move(s);
                     done->Signal();
                   });
  done->Await();
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsUnavailable() || st.IsIOError()) << st.ToString();
}

TEST_P(TransportTest, TypedAsyncCallThroughFuture) {
  auto svc = std::make_shared<EchoService>();
  auto bound = transport_->Serve(serve_address_, svc);
  ASSERT_TRUE(bound.ok());
  ChannelPool pool(transport_, 2);
  auto ch = pool.Get(*bound);
  ASSERT_TRUE(ch.ok());
  struct Echo {
    std::string text;
    void EncodeTo(BinaryWriter* w) const { w->PutString(text); }
    Status DecodeFrom(BinaryReader* r) { return r->GetString(&text); }
  };
  auto f = CallMethodAsync<Echo, Echo>(ch->get(), Method::kDhtPut,
                                       Echo{"typed-async"});
  auto result = f.Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->text, "typed-async");
  ASSERT_TRUE(transport_->StopServing(*bound).ok());
}

INSTANTIATE_TEST_SUITE_P(Transports, TransportTest,
                         ::testing::Values("inproc", "tcp"));

TEST(InProcTest, DuplicateServeFails) {
  InProcNetwork net;
  auto svc = std::make_shared<EchoService>();
  ASSERT_TRUE(net.Serve("inproc://a", svc).ok());
  EXPECT_TRUE(net.Serve("inproc://a", svc).status().IsAlreadyExists());
  EXPECT_EQ(net.endpoint_count(), 1u);
}

TEST(InProcTest, ConnectToUnknownEndpointFails) {
  InProcNetwork net;
  EXPECT_TRUE(net.Connect("inproc://nope").status().IsUnavailable());
}

TEST(TcpTest, BadAddressRejected) {
  TcpTransport t;
  auto svc = std::make_shared<EchoService>();
  EXPECT_FALSE(t.Serve("nonsense", svc).ok());
  EXPECT_FALSE(t.Serve("host:99999", svc).ok());
}

TEST(TcpTest, ConnectFailureIsUnavailable) {
  TcpTransport t;
  auto ch = t.Connect("127.0.0.1:1");  // nothing listens on port 1
  ASSERT_TRUE(ch.ok());  // lazy connect
  std::string out;
  Status s = (*ch)->Call(Method::kDhtPut, Slice("x"), &out);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
}

TEST(CompositeHandlerTest, RoutesByMethodBlock) {
  CompositeHandler composite;
  auto echo = std::make_shared<EchoService>();
  composite.Register(100, echo);
  std::string out;
  EXPECT_TRUE(composite.Handle(Method::kDhtPut, Slice("a"), &out).ok());
  EXPECT_TRUE(composite.Handle(Method::kProviderRead, Slice("a"), &out)
                  .IsNotSupported());
}

// Typed call helpers.
struct PingMsg {
  uint64_t value = 0;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(value); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&value); }
};

class TypedService : public ServiceHandler {
 public:
  Status Handle(Method method, Slice payload, std::string* response) override {
    if (method != Method::kDhtPut) return Status::NotSupported("typed");
    return DispatchTyped<PingMsg, PingMsg>(
        payload, response, [](const PingMsg& req, PingMsg* rsp) {
          rsp->value = req.value + 1;
          return Status::OK();
        });
  }
};

TEST(TypedCallTest, EncodesAndDecodes) {
  InProcNetwork net;
  ASSERT_TRUE(net.Serve("inproc://typed", std::make_shared<TypedService>()).ok());
  auto ch = net.Connect("inproc://typed");
  ASSERT_TRUE(ch.ok());
  PingMsg req{41}, rsp;
  ASSERT_TRUE(CallMethod(ch->get(), Method::kDhtPut, req, &rsp).ok());
  EXPECT_EQ(rsp.value, 42u);
}

TEST(TypedCallTest, MalformedPayloadIsCorruption) {
  TypedService svc;
  std::string out;
  EXPECT_TRUE(svc.Handle(Method::kDhtPut, Slice("xx"), &out).IsCorruption());
}

}  // namespace
}  // namespace blobseer::rpc
