// Simulator tests: virtual-time scheduler semantics, flow-level bandwidth
// model (validated against hand-computed transfer times and the exact
// max-min model), and the full BlobSeer stack on a simulated cluster.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/sim_cluster.h"
#include "reference_blob.h"
#include "simnet/network.h"
#include "simnet/sim.h"
#include "simnet/transport.h"

namespace blobseer::simnet {
namespace {

using blobseer::testing::TestPayload;

TEST(SimSchedulerTest, VirtualTimeAdvancesWithoutWallClock) {
  SimScheduler sched;
  double observed = -1;
  sched.Run([&] {
    EXPECT_EQ(sched.Now(), 0.0);
    sched.SleepFor(1e9);  // one virtual kilosecond, instant in real time
    observed = sched.Now();
  });
  EXPECT_EQ(observed, 1e9);
}

TEST(SimSchedulerTest, TasksInterleaveDeterministically) {
  SimScheduler sched;
  std::vector<int> order;
  sched.Run([&] {
    auto a = sched.Spawn([&] {
      sched.SleepFor(10);
      order.push_back(1);
      sched.SleepFor(20);  // wakes at t=30
      order.push_back(3);
    });
    auto b = sched.Spawn([&] {
      sched.SleepFor(20);
      order.push_back(2);
      sched.SleepFor(20);  // wakes at t=40
      order.push_back(4);
    });
    sched.Join(a);
    sched.Join(b);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimSchedulerTest, RepeatedRunsAreIdentical) {
  auto run_once = [] {
    SimScheduler sched;
    std::vector<std::pair<int, double>> trace;
    sched.Run([&] {
      std::vector<SimScheduler::TaskId> ids;
      for (int i = 0; i < 5; i++) {
        ids.push_back(sched.Spawn([&, i] {
          sched.SleepFor(10 * (i + 1));
          trace.push_back({i, sched.Now()});
          sched.SleepFor(7);
          trace.push_back({i + 100, sched.Now()});
        }));
      }
      for (auto id : ids) sched.Join(id);
    });
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimSchedulerTest, ConditionNotifyWakesWaiters) {
  SimScheduler sched;
  std::vector<double> wake_times;
  sched.Run([&] {
    SimCondition cond(&sched);
    auto waiter1 = sched.Spawn([&] {
      EXPECT_TRUE(cond.WaitUntil(SimScheduler::kNever));
      wake_times.push_back(sched.Now());
    });
    auto waiter2 = sched.Spawn([&] {
      EXPECT_FALSE(cond.WaitUntil(sched.Now() + 5));  // deadline first
      wake_times.push_back(sched.Now());
    });
    sched.SleepFor(50);
    cond.NotifyAll();
    sched.Join(waiter1);
    sched.Join(waiter2);
  });
  ASSERT_EQ(wake_times.size(), 2u);
  EXPECT_EQ(wake_times[0], 5.0);   // deadline waiter
  EXPECT_EQ(wake_times[1], 50.0);  // notified waiter
}

TEST(SimSchedulerTest, SemaphoreSerializesFifo) {
  SimScheduler sched;
  std::vector<int> order;
  sched.Run([&] {
    SimSemaphore sem(&sched, 1);
    std::vector<SimScheduler::TaskId> ids;
    for (int i = 0; i < 3; i++) {
      ids.push_back(sched.Spawn([&, i] {
        sched.SleepFor(i + 1);  // arrive in order 0,1,2
        sem.Acquire();
        order.push_back(i);
        sched.SleepFor(100);  // hold the slot
        sem.Release();
      }));
    }
    for (auto id : ids) sched.Join(id);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimExecutorTest, ParallelForCoversAllAndOverlaps) {
  SimScheduler sched;
  size_t n_done = 0;
  double elapsed = 0;
  sched.Run([&] {
    SimExecutor ex(&sched);
    double t0 = sched.Now();
    ASSERT_TRUE(ex.ParallelFor(8, 4, [&](size_t) {
                    sched.SleepFor(100);
                    n_done++;
                    return Status::OK();
                  }).ok());
    elapsed = sched.Now() - t0;
  });
  EXPECT_EQ(n_done, 8u);
  // 8 tasks of 100us at parallelism 4: two waves -> 200us, not 800us.
  EXPECT_EQ(elapsed, 200.0);
}

TEST(SimNetworkTest, SingleTransferMatchesHandComputation) {
  SimScheduler sched;
  double elapsed = 0;
  sched.Run([&] {
    SimNetworkOptions opts;
    opts.nic_bytes_per_sec = 100e6;
    opts.latency_us = 100;
    SimNetwork net(&sched, 3, opts);
    double t0 = sched.Now();
    net.Transfer(0, 1, 50'000'000);  // 50 MB at 100 MB/s = 0.5 s
    elapsed = sched.Now() - t0;
  });
  EXPECT_NEAR(elapsed, 100 + 0.5e6, 1.0);
}

TEST(SimNetworkTest, TwoFlowsShareTheSourceNic) {
  SimScheduler sched;
  double elapsed = 0;
  sched.Run([&] {
    SimNetworkOptions opts;
    opts.nic_bytes_per_sec = 100e6;
    opts.latency_us = 0;
    SimNetwork net(&sched, 3, opts);
    double t0 = sched.Now();
    auto a = sched.Spawn([&] { net.Transfer(0, 1, 10'000'000); });
    auto b = sched.Spawn([&] { net.Transfer(0, 2, 10'000'000); });
    sched.Join(a);
    sched.Join(b);
    elapsed = sched.Now() - t0;
  });
  // Both flows cross node 0's uplink: 20 MB total at 100 MB/s = 0.2 s.
  EXPECT_NEAR(elapsed, 0.2e6, 100.0);
}

TEST(SimNetworkTest, DisjointPairsDoNotInterfere) {
  SimScheduler sched;
  double elapsed = 0;
  sched.Run([&] {
    SimNetworkOptions opts;
    opts.nic_bytes_per_sec = 100e6;
    opts.latency_us = 0;
    SimNetwork net(&sched, 4, opts);
    double t0 = sched.Now();
    auto a = sched.Spawn([&] { net.Transfer(0, 1, 10'000'000); });
    auto b = sched.Spawn([&] { net.Transfer(2, 3, 10'000'000); });
    sched.Join(a);
    sched.Join(b);
    elapsed = sched.Now() - t0;
  });
  EXPECT_NEAR(elapsed, 0.1e6, 100.0);
}

TEST(SimNetworkTest, LateFlowSlowsEarlyFlow) {
  SimScheduler sched;
  double t_first = 0;
  sched.Run([&] {
    SimNetworkOptions opts;
    opts.nic_bytes_per_sec = 100e6;
    opts.latency_us = 0;
    SimNetwork net(&sched, 3, opts);
    auto a = sched.Spawn([&] {
      net.Transfer(0, 1, 10'000'000);
      t_first = sched.Now();
    });
    auto b = sched.Spawn([&] {
      sched.SleepFor(50'000);  // join 50 ms in
      net.Transfer(0, 2, 10'000'000);
    });
    sched.Join(a);
    sched.Join(b);
  });
  // Flow A: 5 MB alone (50 ms), then shares: remaining 5 MB at 50 MB/s
  // (100 ms) -> finishes at 150 ms.
  EXPECT_NEAR(t_first, 150'000, 200.0);
}

TEST(SimNetworkTest, EndpointShareMatchesMaxMinOnSymmetricLoad) {
  auto run = [](SimNetworkOptions::Sharing sharing) {
    SimScheduler sched;
    double elapsed = 0;
    sched.Run([&] {
      SimNetworkOptions opts;
      opts.nic_bytes_per_sec = 100e6;
      opts.latency_us = 0;
      opts.sharing = sharing;
      SimNetwork net(&sched, 9, opts);
      double t0 = sched.Now();
      std::vector<SimScheduler::TaskId> ids;
      // 8 readers each pulling 10 MB from a distinct provider.
      for (uint32_t i = 0; i < 4; i++) {
        ids.push_back(sched.Spawn(
            [&net, i] { net.Transfer(i + 1, 0, 10'000'000); }));
      }
      for (auto id : ids) sched.Join(id);
      elapsed = sched.Now() - t0;
    });
    return elapsed;
  };
  double endpoint = run(SimNetworkOptions::Sharing::kEndpointShare);
  double maxmin = run(SimNetworkOptions::Sharing::kMaxMin);
  EXPECT_NEAR(endpoint, maxmin, endpoint * 0.01);
  EXPECT_NEAR(endpoint, 0.4e6, 500.0);  // 40 MB through one downlink
}

TEST(SimNetworkTest, LoopbackBypassesNic) {
  SimScheduler sched;
  double elapsed = 0;
  sched.Run([&] {
    SimNetworkOptions opts;
    opts.nic_bytes_per_sec = 100e6;
    opts.latency_us = 100;
    SimNetwork net(&sched, 2, opts);
    double t0 = sched.Now();
    net.Transfer(1, 1, 1'000'000'000);
    elapsed = sched.Now() - t0;
  });
  EXPECT_EQ(elapsed, 100.0);
}

TEST(SimTransportTest, AddressParsing) {
  uint32_t node;
  std::string name;
  ASSERT_TRUE(SimTransport::ParseAddress("sim://17/provider", &node, &name).ok());
  EXPECT_EQ(node, 17u);
  EXPECT_EQ(name, "provider");
  EXPECT_FALSE(SimTransport::ParseAddress("tcp://17/x", &node, &name).ok());
  EXPECT_FALSE(SimTransport::ParseAddress("sim://17", &node, &name).ok());
  EXPECT_EQ(SimTransport::MakeAddress(3, "meta"), "sim://3/meta");
}

// Full BlobSeer stack in the simulator, with real page contents, verified
// against the reference model — proves the real code path runs unmodified
// on simnet.
TEST(SimClusterTest, EndToEndAppendWriteReadInVirtualTime) {
  SimScheduler sched;
  Status result = Status::Internal("did not run");
  double virtual_elapsed = 0;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 8;
    opts.num_client_nodes = 1;
    opts.page_store = "memory";  // verify real bytes
    core::SimCluster cluster(&sched, opts);
    sched.SetCurrentNode(cluster.client_node(0));
    auto client = cluster.NewClient();

    result = [&]() -> Status {
      auto id = client->Create(4096);
      if (!id.ok()) return id.status();
      blobseer::testing::ReferenceBlob ref;
      double t0 = sched.Now();
      for (int i = 0; i < 5; i++) {
        std::string data = TestPayload(i, 30000 + i * 1111);
        auto v = client->Append(*id, Slice(data));
        if (!v.ok()) return v.status();
        if (*v != ref.ApplyAppend(data)) return Status::Internal("version");
        BS_RETURN_NOT_OK(client->Sync(*id, *v));
      }
      std::string patch = TestPayload(99, 5000);
      auto vw = client->Write(*id, Slice(patch), 12345);
      if (!vw.ok()) return vw.status();
      ref.ApplyWrite(patch, 12345);
      BS_RETURN_NOT_OK(client->Sync(*id, *vw));
      for (Version v = 1; v <= ref.latest(); v++) {
        std::string out;
        BS_RETURN_NOT_OK(client->Read(*id, v, 0, ref.Size(v), &out));
        if (out != ref.Contents(v))
          return Status::Corruption("content mismatch at v" +
                                    std::to_string(v));
      }
      virtual_elapsed = sched.Now() - t0;
      return Status::OK();
    }();
  });
  ASSERT_TRUE(result.ok()) << result.ToString();
  // ~160 KB pushed through a 117.5 MB/s NIC: at least ~1.4 ms of virtual
  // time must have passed, and well under a virtual minute.
  EXPECT_GT(virtual_elapsed, 1000.0);
  EXPECT_LT(virtual_elapsed, 60e6);
}

TEST(SimClusterTest, ConcurrentSimClientsKeepTotalOrder) {
  SimScheduler sched;
  bool ok = false;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 6;
    opts.num_client_nodes = 3;
    opts.page_store = "memory";
    core::SimCluster cluster(&sched, opts);

    auto client0 = cluster.NewClient();
    sched.SetCurrentNode(cluster.client_node(0));
    auto id = client0->Create(4096);
    ASSERT_TRUE(id.ok());

    std::map<Version, std::string> by_version;
    std::vector<SimScheduler::TaskId> ids;
    for (int w = 0; w < 3; w++) {
      ids.push_back(sched.Spawn([&, w] {
        sched.SetCurrentNode(cluster.client_node(w));
        auto client = cluster.NewClient();
        for (int i = 0; i < 4; i++) {
          std::string data = TestPayload(w * 10 + i, 8000 + w * 100 + i);
          auto v = client->Append(*id, Slice(data));
          ASSERT_TRUE(v.ok()) << v.status().ToString();
          by_version[*v] = data;
        }
      }));
    }
    for (auto tid : ids) sched.Join(tid);

    ASSERT_EQ(by_version.size(), 12u);
    ASSERT_TRUE(client0->Sync(*id, 12).ok());
    blobseer::testing::ReferenceBlob ref;
    for (auto& [v, data] : by_version) ASSERT_EQ(ref.ApplyAppend(data), v);
    std::string out;
    ASSERT_TRUE(
        client0->Read(*id, 12, 0, ref.Size(12), &out).ok());
    ASSERT_EQ(out, ref.Contents(12));
    ok = true;
  });
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace blobseer::simnet
