// Version manager core tests: total ordering, publication, border sets for
// concurrent updates, abort/repair, branching (paper sections 2, 4.2).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/math_util.h"
#include "vmanager/core.h"

namespace blobseer::vmanager {
namespace {

TEST(VmCoreTest, CreateBlobValidatesPageSize) {
  VersionManagerCore vm;
  EXPECT_TRUE(vm.CreateBlob(0).status().IsInvalidArgument());
  EXPECT_TRUE(vm.CreateBlob(3).status().IsInvalidArgument());
  EXPECT_TRUE(vm.CreateBlob(uint64_t{1} << 31).status().IsInvalidArgument());
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  EXPECT_NE(d->id, kInvalidBlobId);
  EXPECT_EQ(d->psize, 64u);
  ASSERT_EQ(d->ancestry.size(), 1u);
  EXPECT_EQ(d->ancestry[0].origin, d->id);
}

TEST(VmCoreTest, FreshBlobHasPublishedEmptyVersionZero) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  Version v;
  uint64_t size;
  ASSERT_TRUE(vm.GetRecent(d->id, &v, &size).ok());
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(size, 0u);
  auto s0 = vm.GetSize(d->id, 0);
  ASSERT_TRUE(s0.ok());
  EXPECT_EQ(*s0, 0u);
  EXPECT_TRUE(vm.GetSize(d->id, 1).status().IsNotFound());
}

TEST(VmCoreTest, UnknownBlobIsNotFound) {
  VersionManagerCore vm;
  Version v;
  uint64_t s;
  EXPECT_TRUE(vm.GetRecent(77, &v, &s).IsNotFound());
  EXPECT_TRUE(vm.AssignVersion(77, true, 0, 1).status().IsNotFound());
  EXPECT_TRUE(vm.NotifySuccess(77, 1).IsNotFound());
}

TEST(VmCoreTest, AppendOffsetsChainAcrossInFlightUpdates) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  // Three concurrent appends: each sees the previous assignment's end,
  // even though nothing is published yet.
  auto t1 = vm.AssignVersion(d->id, true, 0, 100);
  auto t2 = vm.AssignVersion(d->id, true, 0, 50);
  auto t3 = vm.AssignVersion(d->id, true, 0, 6);
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());
  EXPECT_EQ(t1->version, 1u);
  EXPECT_EQ(t2->version, 2u);
  EXPECT_EQ(t3->version, 3u);
  EXPECT_EQ(t1->offset, 0u);
  EXPECT_EQ(t2->offset, 100u);
  EXPECT_EQ(t3->offset, 150u);
  EXPECT_EQ(t3->new_size, 156u);
}

TEST(VmCoreTest, WriteOffsetBeyondSizeFails) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(vm.AssignVersion(d->id, false, 1, 10).status().IsOutOfRange());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 64).ok());  // size now 64
  EXPECT_TRUE(vm.AssignVersion(d->id, false, 64, 10).ok());  // at end: ok
  EXPECT_TRUE(vm.AssignVersion(d->id, false, 80, 1).status().IsOutOfRange());
  EXPECT_TRUE(
      vm.AssignVersion(d->id, false, 0, 0).status().IsInvalidArgument());
}

TEST(VmCoreTest, PublicationIsTotalOrderDespiteOutOfOrderNotify) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  auto t1 = vm.AssignVersion(d->id, true, 0, 64);
  auto t2 = vm.AssignVersion(d->id, true, 0, 64);
  auto t3 = vm.AssignVersion(d->id, true, 0, 64);
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());

  // v3 and v2 finish before v1: nothing publishes.
  ASSERT_TRUE(vm.NotifySuccess(d->id, 3).ok());
  ASSERT_TRUE(vm.NotifySuccess(d->id, 2).ok());
  Version v;
  uint64_t size;
  ASSERT_TRUE(vm.GetRecent(d->id, &v, &size).ok());
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(vm.GetSize(d->id, 2).status().IsNotFound());

  // v1 completes: all three publish at once, in order.
  ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());
  ASSERT_TRUE(vm.GetRecent(d->id, &v, &size).ok());
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(size, 192u);
  EXPECT_EQ(*vm.GetSize(d->id, 2), 128u);
}

TEST(VmCoreTest, NotifyIsIdempotentAndValidated) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 10).ok());
  EXPECT_TRUE(vm.NotifySuccess(d->id, 5).IsNotFound());
  ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());
  ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());  // replay
}

TEST(VmCoreTest, AwaitPublishedBlocksUntilNotify) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 10).ok());
  EXPECT_TRUE(vm.AwaitPublished(d->id, 1, 0).IsTimedOut());
  EXPECT_TRUE(vm.AwaitPublished(d->id, 1, 5000).IsTimedOut());

  std::thread publisher([&] {
    RealClock::Default()->SleepForMicros(20 * 1000);
    ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());
  });
  EXPECT_TRUE(vm.AwaitPublished(d->id, 1, 5 * 1000 * 1000).ok());
  publisher.join();
  EXPECT_TRUE(vm.AwaitPublished(d->id, 1, 0).ok());
}

// --- Border sets (paper 4.2) ----------------------------------------------

TEST(VmCoreTest, FirstUpdateGetsNoBorders) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(1);  // psize 1: paper's Figure 1 scale
  ASSERT_TRUE(d.ok());
  auto t1 = vm.AssignVersion(d->id, true, 0, 4);
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(t1->borders.empty());
  EXPECT_EQ(t1->published, 0u);
}

TEST(VmCoreTest, ConcurrentWriterGetsInFlightBorders) {
  // Paper Figure 1 replay: blob of 4 pages (v1), then TWO concurrent
  // updates: v2 overwrites pages 1-2, v3 appends page 4. v3's tree needs
  // the node (0,4) — created by the *unpublished* v2 — as the left child
  // of its new root (0,8). The version manager must hand that mapping out.
  VersionManagerCore vm;
  auto d = vm.CreateBlob(1);
  ASSERT_TRUE(d.ok());
  auto t1 = vm.AssignVersion(d->id, true, 0, 4);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());

  auto t2 = vm.AssignVersion(d->id, false, 1, 2);  // write pages 1-2
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->published, 1u);  // v1 published; borders resolvable by descent
  EXPECT_TRUE(t2->borders.empty());

  auto t3 = vm.AssignVersion(d->id, true, 0, 1);  // append page 4 -> v3
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(t3->version, 3u);
  // Border blocks of v3: (0,4) [old root range], (5,1), (6,2) [holes].
  // (0,4) must resolve to the in-flight v2, which creates a new (0,4) root.
  bool found = false;
  for (const auto& b : t3->borders) {
    if (b.block == Extent{0, 4}) {
      EXPECT_EQ(b.version, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "missing in-flight border for (0,4)";
}

TEST(VmCoreTest, BordersPickTheNewestCoveringInFlight) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(1);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 8).ok());  // v1: 8 pages
  ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());
  // Two in-flight writes to page 0: v2 then v3.
  ASSERT_TRUE(vm.AssignVersion(d->id, false, 0, 1).ok());  // v2
  ASSERT_TRUE(vm.AssignVersion(d->id, false, 0, 1).ok());  // v3
  // v4 writes pages 4..7; its border (0,4) must resolve to v3 (not v2).
  auto t4 = vm.AssignVersion(d->id, false, 4, 4);
  ASSERT_TRUE(t4.ok());
  bool found = false;
  for (const auto& b : t4->borders) {
    if (b.block == Extent{0, 4}) {
      EXPECT_EQ(b.version, 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VmCoreTest, EdgePageBordersForUnalignedConcurrentWrites) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(4);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 16).ok());  // v1: 4 pages
  ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, false, 4, 4).ok());  // v2: page 1
  // v3 writes [6, 9): head edge page is page 1 = (4,4), last written by
  // in-flight v2.
  auto t3 = vm.AssignVersion(d->id, false, 6, 3);
  ASSERT_TRUE(t3.ok());
  bool found = false;
  for (const auto& b : t3->borders) {
    if (b.block == Extent{4, 4}) {
      EXPECT_EQ(b.version, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "edge page block not supplied";
}

// --- Abort ------------------------------------------------------------------

TEST(VmCoreTest, AbortNewestRetracts) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 64).ok());   // v1
  auto t2 = vm.AssignVersion(d->id, true, 0, 64);           // v2
  ASSERT_TRUE(t2.ok());
  auto outcome = vm.AbortUpdate(d->id, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->retracted);
  // The version number is reused by the next update.
  auto t2b = vm.AssignVersion(d->id, true, 0, 32);
  ASSERT_TRUE(t2b.ok());
  EXPECT_EQ(t2b->version, 2u);
  EXPECT_EQ(t2b->offset, 64u);  // v1's end, not the aborted v2's
}

TEST(VmCoreTest, AbortWithSuccessorsRequiresRepair) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  auto t1 = vm.AssignVersion(d->id, true, 0, 64);  // v1 (will abort)
  auto t2 = vm.AssignVersion(d->id, true, 0, 64);  // v2 depends on v1
  ASSERT_TRUE(t1.ok() && t2.ok());
  auto outcome = vm.AbortUpdate(d->id, 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->retracted);
  EXPECT_EQ(outcome->repair.version, 1u);
  EXPECT_EQ(outcome->repair.offset, 0u);
  EXPECT_EQ(outcome->repair.size, 64u);
  EXPECT_EQ(outcome->repair.new_size, 64u);
  // Repair completes like a normal update; the chain then publishes.
  ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());
  ASSERT_TRUE(vm.NotifySuccess(d->id, 2).ok());
  Version v;
  uint64_t size;
  ASSERT_TRUE(vm.GetRecent(d->id, &v, &size).ok());
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(size, 128u);
}

TEST(VmCoreTest, AbortValidation) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 64).ok());
  ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());
  EXPECT_TRUE(vm.AbortUpdate(d->id, 1).status().IsFailedPrecondition());
  EXPECT_TRUE(vm.AbortUpdate(d->id, 9).status().IsNotFound());
}

// --- Branching ---------------------------------------------------------------

TEST(VmCoreTest, BranchSharesHistoryAndDiverges) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 100).ok());
  ASSERT_TRUE(vm.NotifySuccess(d->id, 1).ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 100).ok());
  ASSERT_TRUE(vm.NotifySuccess(d->id, 2).ok());

  auto b = vm.Branch(d->id, 1);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b->ancestry.size(), 2u);
  EXPECT_EQ(b->ancestry[0].origin, d->id);
  EXPECT_EQ(b->ancestry[0].up_to, 1u);
  EXPECT_EQ(b->ancestry[1].origin, b->id);

  // Branch sees parent's v1 but not v2.
  EXPECT_EQ(*vm.GetSize(b->id, 1), 100u);
  EXPECT_TRUE(vm.GetSize(b->id, 2).status().IsNotFound());

  // First branch update produces v2 of the branch, appending after v1.
  auto t = vm.AssignVersion(b->id, true, 0, 10);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->version, 2u);
  EXPECT_EQ(t->offset, 100u);
  ASSERT_TRUE(vm.NotifySuccess(b->id, 2).ok());
  EXPECT_EQ(*vm.GetSize(b->id, 2), 110u);
  // Parent unaffected.
  EXPECT_EQ(*vm.GetSize(d->id, 2), 200u);
}

TEST(VmCoreTest, BranchOfBranchResolvesThroughAncestry) {
  VersionManagerCore vm;
  auto a = vm.CreateBlob(64);
  ASSERT_TRUE(a.ok());
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(vm.AssignVersion(a->id, true, 0, 10).ok());
    ASSERT_TRUE(vm.NotifySuccess(a->id, i + 1).ok());
  }
  auto b = vm.Branch(a->id, 3);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(vm.AssignVersion(b->id, true, 0, 10).ok());
  ASSERT_TRUE(vm.NotifySuccess(b->id, 4).ok());
  // Branch C off B at version 2: version 2 belongs to A.
  auto c = vm.Branch(b->id, 2);
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->ancestry.size(), 2u);
  EXPECT_EQ(c->ancestry[0].origin, a->id);
  EXPECT_EQ(c->ancestry[0].up_to, 2u);
  EXPECT_EQ(*vm.GetSize(c->id, 2), 20u);
}

TEST(VmCoreTest, BranchRequiresPublishedVersion) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(vm.AssignVersion(d->id, true, 0, 10).ok());
  EXPECT_TRUE(vm.Branch(d->id, 1).status().IsFailedPrecondition());
  EXPECT_TRUE(vm.Branch(d->id, 0).ok());  // empty snapshot is branchable
}

TEST(VmCoreTest, StatsCountAcrossBlobs) {
  VersionManagerCore vm;
  auto a = vm.CreateBlob(64);
  auto b = vm.CreateBlob(64);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(vm.AssignVersion(a->id, true, 0, 10).ok());
  ASSERT_TRUE(vm.AssignVersion(b->id, true, 0, 10).ok());
  ASSERT_TRUE(vm.NotifySuccess(a->id, 1).ok());
  VmStats st = vm.GetStats();
  EXPECT_EQ(st.blobs, 2u);
  EXPECT_EQ(st.assigned, 2u);
  EXPECT_EQ(st.published, 1u);
}

TEST(VmCoreTest, ConcurrentAssignersGetDistinctVersions) {
  VersionManagerCore vm;
  auto d = vm.CreateBlob(64);
  ASSERT_TRUE(d.ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::vector<std::vector<Version>> got(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        auto ticket = vm.AssignVersion(d->id, true, 0, 1);
        ASSERT_TRUE(ticket.ok());
        got[t].push_back(ticket->version);
        ASSERT_TRUE(vm.NotifySuccess(d->id, ticket->version).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<Version> all;
  for (auto& v : got) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  Version recent;
  uint64_t size;
  ASSERT_TRUE(vm.GetRecent(d->id, &recent, &size).ok());
  EXPECT_EQ(recent, static_cast<Version>(kThreads * kPerThread));
  EXPECT_EQ(size, static_cast<uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace blobseer::vmanager
