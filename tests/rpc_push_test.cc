// Server-push publication events and the event-driven TCP front door:
// pipelined requests complete behind a held AwaitPublished (no head-of-line
// blocking), parked subscriptions resolve at publish / drain at timeout /
// survive client disconnect, connection churn leaves the server thread
// count flat, ChannelPool connects outside its lock, and under simnet a
// SYNC resolves within ~1 RTT of the publish in virtual time.
#include <gtest/gtest.h>

#include <dirent.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "client/blob_client.h"
#include "common/executor.h"
#include "common/future.h"
#include "core/sim_cluster.h"
#include "rpc/channel_pool.h"
#include "rpc/inproc.h"
#include "rpc/tcp.h"
#include "simnet/sim.h"
#include "vmanager/client.h"
#include "vmanager/service.h"

namespace blobseer {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

double ElapsedMs(steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(steady_clock::now() -
                                                   since)
      .count();
}

// Spins (bounded) until `pred` holds; returns whether it did.
bool WaitFor(const std::function<bool()>& pred, int deadline_ms = 5000) {
  auto t0 = steady_clock::now();
  while (!pred()) {
    if (ElapsedMs(t0) > deadline_ms) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return true;
}

size_t CountThreads() {
  size_t n = 0;
  DIR* dir = opendir("/proc/self/task");
  if (!dir) return 0;
  while (dirent* e = readdir(dir)) {
    if (e->d_name[0] != '.') n++;
  }
  closedir(dir);
  return n;
}

// The tentpole regression: with the old one-thread-per-connection FIFO
// server, a held AwaitPublished stalled every request pipelined behind it
// on the same connection for the full hold. The reactor dispatches each
// frame to a worker and writes responses in completion order, so the
// pipelined calls finish in milliseconds while the hold stays parked.
TEST(RpcPushTcp, PipelinedRequestsCompleteBehindHeldAwait) {
  ThreadPoolExecutor timers(2);  // outlives the service: hosts watchdogs
  rpc::TcpTransport transport;
  auto svc = std::make_shared<vmanager::VersionManagerService>(nullptr,
                                                               &timers);
  auto bound = transport.Serve("127.0.0.1:0", svc);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // One channel: the hold and the pipelined calls share a connection.
  vmanager::VersionManagerClient vm(&transport, *bound, /*channels=*/1);

  auto desc = vm.CreateBlob(64);
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  ASSERT_TRUE(vm.AssignVersion(desc->id, true, 0, 8).ok());

  auto hold = vm.AwaitPublishedAsync(desc->id, 1, 10 * 1000 * 1000);
  ASSERT_TRUE(WaitFor([&] { return svc->core().waiter_count() == 1; }))
      << "await never parked server-side";

  auto t0 = steady_clock::now();
  for (int i = 0; i < 16; i++) {
    auto recent = vm.GetRecent(desc->id);
    ASSERT_TRUE(recent.ok()) << recent.status().ToString();
  }
  // 16 round trips behind the hold: milliseconds, not the 10 s hold. The
  // generous bound keeps slow CI out of the failure band while still
  // catching any return to FIFO semantics.
  EXPECT_LT(ElapsedMs(t0), 2000.0);

  ASSERT_TRUE(vm.NotifySuccess(desc->id, 1).ok());
  auto t1 = steady_clock::now();
  auto released = hold.Wait();
  EXPECT_TRUE(released.ok()) << released.status().ToString();
  EXPECT_LT(ElapsedMs(t1), 5000.0);  // pushed, not timed out at 10 s
  EXPECT_TRUE(WaitFor([&] { return svc->core().waiter_count() == 0; }));
}

// Satellite (a): connection churn must not accrete server threads. The
// reactor owns a fixed thread budget (one reactor + a bounded dispatch
// pool), so cycling many connections leaves /proc/self/task flat.
TEST(RpcPushTcp, ConnectionChurnKeepsThreadCountFlat) {
  rpc::TcpTransport transport;
  auto svc = std::make_shared<vmanager::VersionManagerService>();
  auto bound = transport.Serve("127.0.0.1:0", svc);
  ASSERT_TRUE(bound.ok());

  auto cycle = [&] {
    auto ch = transport.Connect(*bound);
    ASSERT_TRUE(ch.ok());
    std::string rsp;
    // ListBlobs decodes an empty request on any fresh core.
    Status st = (*ch)->Call(rpc::Method::kVmListBlobs, Slice(), &rsp);
    ASSERT_TRUE(st.ok()) << st.ToString();
  };
  cycle();  // warm-up: spins up the lazy dispatch pool
  size_t baseline = CountThreads();
  ASSERT_GT(baseline, 0u);
  for (int i = 0; i < 64; i++) cycle();
  // Client-side reader threads join with their channels; server-side the
  // reactor adds nothing per connection. Slack covers unrelated runtime
  // threads coming and going.
  EXPECT_LE(CountThreads(), baseline + 8);
}

class PushTransportTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    timers_ = std::make_unique<ThreadPoolExecutor>(2);
    if (GetParam() == "tcp") {
      tcp_ = std::make_unique<rpc::TcpTransport>();
      transport_ = tcp_.get();
      serve_address_ = "127.0.0.1:0";
    } else {
      inproc_ = std::make_unique<rpc::InProcNetwork>();
      transport_ = inproc_.get();
      serve_address_ = "inproc://vmanager";
    }
    svc_ = std::make_shared<vmanager::VersionManagerService>(nullptr,
                                                             timers_.get());
    auto bound = transport_->Serve(serve_address_, svc_);
    ASSERT_TRUE(bound.ok()) << bound.status().ToString();
    address_ = *bound;
  }

  void TearDown() override {
    if (transport_) (void)transport_->StopServing(address_);
  }

  // Declared first so watchdogs outlive the transport teardown.
  std::unique_ptr<ThreadPoolExecutor> timers_;
  std::unique_ptr<rpc::TcpTransport> tcp_;
  std::unique_ptr<rpc::InProcNetwork> inproc_;
  rpc::Transport* transport_ = nullptr;
  std::string serve_address_;
  std::string address_;
  std::shared_ptr<vmanager::VersionManagerService> svc_;
};

TEST_P(PushTransportTest, SubscriptionResolvesAtPublish) {
  vmanager::VersionManagerClient vm(transport_, address_);
  auto desc = vm.CreateBlob(64);
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(vm.AssignVersion(desc->id, true, 0, 8).ok());

  auto f = vm.AwaitPublishedAsync(desc->id, 1, 30 * 1000 * 1000);
  ASSERT_TRUE(WaitFor([&] { return svc_->core().waiter_count() == 1; }));
  // The parked subscription is observable through the stats RPC too (the
  // wire message gained the field this change).
  auto stats = vm.GetStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sync_waiters, 1u);

  ASSERT_TRUE(vm.NotifySuccess(desc->id, 1).ok());
  auto released = f.Wait();
  EXPECT_TRUE(released.ok()) << released.status().ToString();
  EXPECT_TRUE(WaitFor([&] { return svc_->core().waiter_count() == 0; }));
}

TEST_P(PushTransportTest, SubscriptionTimesOutAndDrains) {
  vmanager::VersionManagerClient vm(transport_, address_);
  auto desc = vm.CreateBlob(64);
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(vm.AssignVersion(desc->id, true, 0, 8).ok());

  auto t0 = steady_clock::now();
  Status st = vm.AwaitPublished(desc->id, 1, 200 * 1000);  // 200 ms
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
  EXPECT_GE(ElapsedMs(t0), 200.0);
  // The watchdog cancelled the waiter when it fired the timeout.
  EXPECT_TRUE(WaitFor([&] { return svc_->core().waiter_count() == 0; }));
}

INSTANTIATE_TEST_SUITE_P(Transports, PushTransportTest,
                         ::testing::Values("inproc", "tcp"));

// A client that vanishes mid-hold leaves its subscription parked; the
// publish then completes into a dead connection, which the reactor drops
// without taking the server down, and the registry drains.
TEST(RpcPushTcp, DisconnectedSubscriberDoesNotCrashPublishPath) {
  ThreadPoolExecutor timers(2);
  rpc::TcpTransport transport;
  auto svc = std::make_shared<vmanager::VersionManagerService>(nullptr,
                                                               &timers);
  auto bound = transport.Serve("127.0.0.1:0", svc);
  ASSERT_TRUE(bound.ok());
  vmanager::VersionManagerClient vm(&transport, *bound);
  auto desc = vm.CreateBlob(64);
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(vm.AssignVersion(desc->id, true, 0, 8).ok());

  Future<Unit> orphaned = [&] {
    vmanager::VersionManagerClient doomed(&transport, *bound, 1);
    auto f = doomed.AwaitPublishedAsync(desc->id, 1, 30 * 1000 * 1000);
    EXPECT_TRUE(WaitFor([&] { return svc->core().waiter_count() == 1; }));
    return f;
  }();  // destroys the doomed client's channel while the await is parked
  // The channel fails its in-flight call on teardown...
  EXPECT_FALSE(orphaned.Wait().ok());
  // ...but the server-side subscription is still parked; publishing fires
  // it into the dead connection.
  ASSERT_TRUE(svc->core().waiter_count() == 1);
  ASSERT_TRUE(vm.NotifySuccess(desc->id, 1).ok());
  EXPECT_TRUE(WaitFor([&] { return svc->core().waiter_count() == 0; }));
  // The endpoint is still healthy for connected clients.
  auto recent = vm.GetRecent(desc->id);
  ASSERT_TRUE(recent.ok());
  EXPECT_EQ(recent->version, 1u);
}

// Satellite (b): ChannelPool::Get dials outside its lock, so a slow
// connect to one endpoint cannot stall Get for every other endpoint.
TEST(ChannelPoolConnect, SlowEndpointDoesNotBlockOthers) {
  class NullChannel : public rpc::Channel {
   public:
    Status Call(rpc::Method, Slice, std::string*) override {
      return Status::OK();
    }
  };
  class GateTransport : public rpc::Transport {
   public:
    Result<std::string> Serve(const std::string&,
                              std::shared_ptr<rpc::ServiceHandler>) override {
      return Status::NotSupported("gate");
    }
    Status StopServing(const std::string&) override {
      return Status::NotSupported("gate");
    }
    Result<std::shared_ptr<rpc::Channel>> Connect(
        const std::string& address) override {
      if (address == "slow") {
        std::unique_lock<std::mutex> lock(mu_);
        slow_entered_ = true;
        cv_.notify_all();
        cv_.wait(lock, [&] { return released_; });
      }
      return {std::make_shared<NullChannel>()};
    }
    void AwaitSlowEntered() {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return slow_entered_; });
    }
    void Release() {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
      cv_.notify_all();
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool slow_entered_ = false;
    bool released_ = false;
  };

  GateTransport transport;
  rpc::ChannelPool pool(&transport, 2);
  std::thread slow_caller([&] {
    auto ch = pool.Get("slow");
    EXPECT_TRUE(ch.ok());
  });
  transport.AwaitSlowEntered();  // "slow" is now parked inside Connect
  auto t0 = steady_clock::now();
  auto fast = pool.Get("fast");
  EXPECT_TRUE(fast.ok());
  EXPECT_LT(ElapsedMs(t0), 2000.0);  // did not wait for the slow dial
  transport.Release();
  slow_caller.join();
}

// Acceptance criterion: with push, a SYNC against an in-flight version
// resolves within ~1 RTT of the publish in virtual time (publish request
// one way, pushed completion back the other), not at the next poll slice.
TEST(RpcPushSim, SyncResolvesWithinOneRttOfPublish) {
  simnet::SimScheduler sched;
  bool synced = false;
  double push_delay_us = -1;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 2;
    opts.net.latency_us = 1000.0;  // scripted 1 ms one-way => 2 ms RTT
    core::SimCluster cluster(&sched, opts);
    auto client = cluster.NewClient();  // blocking_sync: push path
    auto id = client->Create(64);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(client->vmanager().AssignVersion(*id, true, 0, 10).ok());
    double t_pub = -1;
    sched.Spawn([&] {
      sched.SleepFor(300 * 1000);  // publish 300 virtual ms in
      t_pub = sched.Now();
      EXPECT_TRUE(client->vmanager().NotifySuccess(*id, 1).ok());
    });
    auto f = client->SyncAsync(*id, 1, client::BlobClient::kNoTimeout);
    bool ok = f.Wait(client->executor()).ok();
    synced = ok;
    push_delay_us = sched.Now() - t_pub;
  });
  EXPECT_TRUE(synced);
  // Publish travels client->manager (1 ms) before the waiter fires, then
  // the pushed completion travels manager->client (1 ms): ~2 ms plus CPU
  // charges. Far below both the old 250 ms slice and any poll interval.
  EXPECT_GE(push_delay_us, 2 * 1000.0);
  EXPECT_LE(push_delay_us, 10 * 1000.0);
}

// Satellite (c): sync_poll_us = 0 is clamped. Unclamped, the poll loop's
// zero-length virtual naps would never advance the clock and this test
// would livelock inside sched.Run.
TEST(RpcPushSim, ZeroPollIntervalIsClampedNotLivelocked) {
  simnet::SimScheduler sched;
  bool synced = false;
  double elapsed_us = 0;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 2;
    core::SimCluster cluster(&sched, opts);
    client::ClientOptions copts;
    copts.blocking_sync = false;  // force the poll fallback
    copts.sync_poll_us = 0;
    auto client = cluster.NewClient(copts);
    auto id = client->Create(64);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(client->vmanager().AssignVersion(*id, true, 0, 10).ok());
    sched.Spawn([&] {
      sched.SleepFor(10 * 1000);  // publish 10 virtual ms in
      EXPECT_TRUE(client->vmanager().NotifySuccess(*id, 1).ok());
    });
    double t0 = sched.Now();
    auto f = client->SyncAsync(*id, 1, 1000 * 1000);
    synced = f.Wait(client->executor()).ok();
    elapsed_us = sched.Now() - t0;
  });
  EXPECT_TRUE(synced);
  EXPECT_GE(elapsed_us, 10 * 1000.0);  // saw the publish, i.e. time moved
}

}  // namespace
}  // namespace blobseer
