// Detector-triggered re-replication under churn, on both harnesses: kill a
// provider and the rebuilder restores r on different live providers (virtual
// time and real clock); a joining provider picks up existing load; a
// decommissioned provider drains with zero failed reads; pre-v3 metadata
// reads seed location entries; and a client whose location cache went stale
// behind a rebuilder move refreshes instead of failing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/sim_cluster.h"
#include "dht/client.h"
#include "locator/location.h"
#include "meta/node.h"
#include "pmanager/client.h"
#include "reference_blob.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using testing::ReferenceBlob;
using testing::TestPayload;

constexpr uint64_t kMs = 1000;  // microseconds per millisecond

// Detector thresholds shared by the sim scenarios (see chaos_test.cc).
constexpr uint64_t kBeat = 100 * kMs;
constexpr uint64_t kSuspectAfter = 500 * kMs;
constexpr uint64_t kDeadAfter = 1500 * kMs;
constexpr uint64_t kRebuildEvery = 200 * kMs;

core::SimClusterOptions ChurnOptions(size_t providers, uint32_t r,
                                     uint32_t w) {
  core::SimClusterOptions opts;
  opts.num_provider_nodes = providers;
  opts.page_store = "memory";
  opts.replication = r;
  opts.write_quorum = w;
  opts.heartbeat_interval_us = kBeat;
  opts.suspect_after_us = kSuspectAfter;
  opts.dead_after_us = kDeadAfter;
  opts.rebuild_interval_us = kRebuildEvery;
  return opts;
}

ReferenceBlob FillBlob(Blob* blob, size_t versions, size_t bytes_per_append) {
  ReferenceBlob ref;
  for (size_t i = 0; i < versions; i++) {
    std::string payload = TestPayload(static_cast<int>(i), bytes_per_append);
    EXPECT_TRUE(blob->AppendSync(payload).ok());
    ref.ApplyAppend(payload);
  }
  return ref;
}

void ExpectAllVersionsReadable(Blob* blob, const ReferenceBlob& ref) {
  for (Version v = 1; v <= ref.latest(); v++) {
    std::string out;
    ASSERT_TRUE(blob->Read(v, 0, ref.Size(v), &out).ok()) << "v" << v;
    ASSERT_EQ(out, ref.Contents(v)) << "v" << v;
  }
}

/// Every location entry must list exactly `r` providers, none of them
/// `excluded` — the shape the rebuilder is contracted to restore.
void ExpectLocationsHealed(locator::PageLocationTable* table, uint32_t r,
                           ProviderId excluded) {
  auto pages = table->Snapshot();
  ASSERT_FALSE(pages.empty());
  for (const auto& [pid, entry] : pages) {
    EXPECT_EQ(entry.providers.size(), r) << pid.ToString();
    for (ProviderId m : entry.providers) {
      EXPECT_NE(m, excluded) << pid.ToString();
    }
  }
}

// --- Simnet: kill -> detector -> re-replication restores r -----------------

TEST(RereplicationSimTest, KillRestoresReplicationOnDifferentProviders) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    core::SimCluster cluster(&sched, ChurnOptions(5, /*r=*/3, /*w=*/2));
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    ReferenceBlob ref = FillBlob(&blob, 4, 4096 * 4);

    const size_t victim = 1;
    const ProviderId victim_id = cluster.provider_id(victim);
    ASSERT_TRUE(cluster.StopProvider(victim).ok());
    // Let the silence expire to dead; then the rebuilder has work to do.
    cluster.clock().SleepForMicros(kDeadAfter + 2 * kBeat);

    pmanager::ProviderManagerClient pm(&cluster.transport(),
                                       cluster.pm_address());
    bool healed = false;
    for (int i = 0; i < 200 && !healed; i++) {
      auto st = pm.FetchStats();
      ASSERT_TRUE(st.ok());
      healed = st->dead >= 1 && st->under_replicated == 0;
      if (!healed) cluster.clock().SleepForMicros(kRebuildEvery);
    }
    ASSERT_TRUE(healed) << "rebuilder never cleared the backlog";
    auto st = pm.FetchStats();
    ASSERT_TRUE(st.ok());
    EXPECT_GT(st->rebuilt_pages, 0u);
    ExpectLocationsHealed(cluster.pmanager().location_table(), 3, victim_id);

    // A fresh client resolves only the healed entries: every read is clean
    // on the first replica it tries — no failover, full r restored.
    auto reader = cluster.NewClient();
    Blob blob2(reader.get(), *id);
    ExpectAllVersionsReadable(&blob2, ref);
    EXPECT_EQ(reader->GetStats().failover_reads, 0u);
    checked = true;
  });
  EXPECT_TRUE(checked);
}

// --- Simnet: decommission drains with zero failed reads --------------------

TEST(RereplicationSimTest, DecommissionDrainsWithZeroFailedReads) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    core::SimCluster cluster(&sched, ChurnOptions(5, /*r=*/2, /*w=*/0));
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    ReferenceBlob ref = FillBlob(&blob, 3, 4096 * 5);

    const size_t victim = 2;
    auto d = cluster.Decommission(victim);
    ASSERT_TRUE(d.ok());
    for (int i = 0; i < 200 && !d->drained; i++) {
      cluster.clock().SleepForMicros(kRebuildEvery);
      d = cluster.Decommission(victim);  // idempotent drain poll
      ASSERT_TRUE(d.ok());
    }
    ASSERT_TRUE(d->drained) << d->remaining_pages << " pages left";
    ExpectLocationsHealed(cluster.pmanager().location_table(), 2,
                          cluster.provider_id(victim));

    // The provider is empty: retiring it costs no read a thing.
    ASSERT_TRUE(cluster.StopProvider(victim).ok());
    auto reader = cluster.NewClient();
    Blob blob2(reader.get(), *id);
    ExpectAllVersionsReadable(&blob2, ref);
    EXPECT_EQ(reader->GetStats().failover_reads, 0u);
    checked = true;
  });
  EXPECT_TRUE(checked);
}

// --- Simnet: stale location cache refreshes behind a rebuilder move --------

TEST(RereplicationSimTest, StaleLocationCacheRefreshesAfterMove) {
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    // r=1: once the rebuilder moves a page, the client's cached replica set
    // is completely dead wood — the read must re-resolve, not fail.
    core::SimClusterOptions opts = ChurnOptions(3, /*r=*/1, /*w=*/0);
    core::SimCluster cluster(&sched, opts);
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    Blob blob(client.get(), *id);
    ReferenceBlob ref = FillBlob(&blob, 1, 4096 * 2);
    ExpectAllVersionsReadable(&blob, ref);  // warm every cache

    // Drain provider 0 (pages round-robin from 0, so it holds page 0): the
    // rebuilder moves its pages elsewhere and deletes the vacated copies.
    auto d = cluster.Decommission(0);
    ASSERT_TRUE(d.ok());
    for (int i = 0; i < 200 && !d->drained; i++) {
      cluster.clock().SleepForMicros(kRebuildEvery);
      d = cluster.Decommission(0);
      ASSERT_TRUE(d.ok());
    }
    ASSERT_TRUE(d->drained);

    // Same client, stale cache: the first attempt lands on the vacated
    // provider, exhausts the cached set, re-resolves and succeeds.
    ExpectAllVersionsReadable(&blob, ref);
    EXPECT_GT(client->GetStats().location_refreshes, 0u);
    checked = true;
  });
  EXPECT_TRUE(checked);
}

// --- Real clock: the same self-healing contract on the embedded cluster ----

TEST(RereplicationEmbeddedTest, RealClockKillRestoresReplication) {
  core::ClusterOptions opts;
  opts.num_providers = 5;
  opts.num_meta = 2;
  opts.replication = 3;
  opts.write_quorum = 2;
  opts.heartbeat_interval_us = 10 * kMs;
  opts.suspect_after_us = 80 * kMs;
  opts.dead_after_us = 200 * kMs;
  opts.rebuild_interval_us = 30 * kMs;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  ReferenceBlob ref = FillBlob(&blob, 3, 64 * 6);

  const size_t victim = 1;
  const ProviderId victim_id = (*cluster)->provider_id(victim);
  ASSERT_TRUE((*cluster)->StopProvider(victim).ok());

  // Poll (bounded) until the detector has fired AND the rebuilder cleared
  // the backlog: no location entry may still reference the corpse.
  locator::PageLocationTable* table = (*cluster)->pmanager().location_table();
  pmanager::ProviderManagerClient pm((*cluster)->transport(),
                                     (*cluster)->pmanager_address());
  Stopwatch deadline;
  bool healed = false;
  while (deadline.ElapsedSeconds() < 30.0 && !healed) {
    auto st = pm.FetchStats();
    ASSERT_TRUE(st.ok());
    healed = st->dead >= 1 && st->under_replicated == 0 &&
             table->CountOn(victim_id) == 0;
    if (!healed) RealClock::Default()->SleepForMicros(10 * kMs);
  }
  ASSERT_TRUE(healed) << "replication not restored within 30s";
  ExpectLocationsHealed(table, 3, victim_id);

  auto reader = (*cluster)->NewClient();
  ASSERT_TRUE(reader.ok());
  Blob blob2(reader->get(), *id);
  ExpectAllVersionsReadable(&blob2, ref);
  EXPECT_EQ((*reader)->GetStats().failover_reads, 0u);
}

TEST(RereplicationEmbeddedTest, JoinRebalancePullsPagesOntoNewProvider) {
  core::ClusterOptions opts;
  opts.num_providers = 3;
  opts.num_meta = 2;
  opts.replication = 2;
  opts.heartbeat_interval_us = 10 * kMs;
  opts.suspect_after_us = 100 * kMs;
  opts.dead_after_us = 300 * kMs;
  opts.rebuild_interval_us = 30 * kMs;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  ReferenceBlob ref = FillBlob(&blob, 4, 64 * 8);

  auto joined = (*cluster)->AddProvider();
  ASSERT_TRUE(joined.ok());
  const ProviderId new_id = (*cluster)->provider_id(*joined);

  // The joiner starts empty; rebalance must migrate existing pages onto it.
  locator::PageLocationTable* table = (*cluster)->pmanager().location_table();
  Stopwatch deadline;
  while (deadline.ElapsedSeconds() < 30.0 && table->CountOn(new_id) == 0) {
    RealClock::Default()->SleepForMicros(10 * kMs);
  }
  EXPECT_GT(table->CountOn(new_id), 0u) << "no page migrated to the joiner";

  // Moves are invisible to correctness: everything still reads back.
  auto reader = (*cluster)->NewClient();
  ASSERT_TRUE(reader.ok());
  Blob blob2(reader->get(), *id);
  ExpectAllVersionsReadable(&blob2, ref);
}

// --- Upgrade: pre-v3 metadata reads seed the location index ----------------

TEST(RereplicationUpgradeTest, V2MetadataReadSeedsLocationEntries) {
  core::ClusterOptions opts;
  opts.num_providers = 3;
  opts.num_meta = 2;
  opts.replication = 2;
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient();
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  ReferenceBlob ref = FillBlob(&blob, 1, 64 * 4);
  auto recent = (*client)->GetRecent(*id);
  ASSERT_TRUE(recent.ok());
  const Version v = recent->version;
  ASSERT_EQ(recent->size, 64u * 4);

  // Regress the blob to the pre-indirection state: rewrite every leaf in
  // wire format v2 with the replica set embedded, and delete the location
  // entries — exactly what a store upgraded in place would look like.
  dht::DhtClient dht((*cluster)->transport(), (*cluster)->dht_addresses());
  std::vector<PageId> pids;
  for (uint64_t p = 0; p < 4; p++) {
    meta::NodeKey key{*id, v, Extent{p * 64, 64}};
    std::string bytes;
    ASSERT_TRUE(dht.Get(Slice(key.ToDhtKey()), &bytes).ok());
    meta::MetaNode node;
    BinaryReader nr{Slice(bytes)};
    ASSERT_TRUE(node.DecodeFrom(&nr).ok());
    ASSERT_TRUE(node.is_leaf());
    ASSERT_EQ(node.fragments.size(), 1u);
    const meta::PageFragment& frag = node.fragments[0];
    ASSERT_TRUE(frag.legacy_providers.empty());  // v3 stores only the pid

    std::string lbytes;
    ASSERT_TRUE(dht.Get(Slice(locator::LocationKey(frag.pid)), &lbytes).ok());
    locator::LocationEntry entry;
    BinaryReader lr{Slice(lbytes)};
    ASSERT_TRUE(entry.DecodeFrom(&lr).ok());
    ASSERT_EQ(entry.providers.size(), 2u);

    BinaryWriter w;
    w.PutU8(meta::kNodeFormatV2);
    w.PutU8(1);  // type = leaf
    w.PutU64(node.prev_version);
    w.PutU32(node.chain_len);
    w.PutU32(1);  // fragment count
    w.PutPageId(frag.pid);
    w.PutU8(static_cast<uint8_t>(entry.providers.size()));
    for (ProviderId m : entry.providers) w.PutU32(m);
    w.PutU32(static_cast<uint32_t>(frag.page_off));
    w.PutU32(static_cast<uint32_t>(frag.len));
    w.PutU32(static_cast<uint32_t>(frag.data_off));
    ASSERT_TRUE(dht.Put(Slice(key.ToDhtKey()), Slice(w.buffer())).ok());
    ASSERT_TRUE(dht.Delete(Slice(locator::LocationKey(frag.pid))).ok());
    pids.push_back(frag.pid);
  }

  // A fresh client reads the v2 blob: every page resolves NotFound in the
  // location index, falls back to the embedded set, and seeds an entry.
  auto reader = (*cluster)->NewClient();
  ASSERT_TRUE(reader.ok());
  Blob blob2(reader->get(), *id);
  std::string out;
  ASSERT_TRUE(blob2.Read(v, 0, ref.Size(v), &out).ok());
  EXPECT_EQ(out, ref.Contents(v));
  EXPECT_EQ((*reader)->GetStats().location_seeds, 4u);
  EXPECT_EQ((*reader)->locator().GetStats().seeds, 4u);
  EXPECT_EQ((*reader)->GetStats().failover_reads, 0u);

  // The seeds are durable: the entries are back in the DHT for everyone.
  for (const PageId& pid : pids) {
    std::string lbytes;
    EXPECT_TRUE(dht.Get(Slice(locator::LocationKey(pid)), &lbytes).ok())
        << pid.ToString();
  }
}

}  // namespace
}  // namespace blobseer
