// Failure handling: writer crash (abort retraction and zero-fill repair),
// provider loss, stalled-pipeline recovery. The paper defers volatility
// and failures to future work; DESIGN.md 3.3 documents the scheme built
// here.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "reference_blob.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using testing::ReferenceBlob;
using testing::TestPayload;

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ClusterOptions opts;
    opts.num_providers = 4;
    opts.num_meta = 4;
    auto cluster = core::EmbeddedCluster::Start(opts);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).ValueUnsafe();
    auto client = cluster_->NewClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).ValueUnsafe();
  }

  std::unique_ptr<core::EmbeddedCluster> cluster_;
  std::unique_ptr<BlobClient> client_;
};

TEST_F(FailureTest, AbortOfNewestUpdateRetracts) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 100)).ok());
  // A "crashed" writer: version assigned, then nothing.
  auto ticket = client_->vmanager().AssignVersion(*id, true, 0, 50);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(client_->Abort(*id, ticket->version).ok());
  // The pipeline is clean: next update reuses the version number.
  auto v = blob.AppendSync(TestPayload(1, 10));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2u);
  auto size = blob.GetSize(2);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 110u);
}

TEST_F(FailureTest, AbortWithSuccessorRepairsAsZeroFill) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  std::string base = TestPayload(0, 256);
  ASSERT_TRUE(blob.AppendSync(base).ok());

  // Crashed writer gets v2 (a write over [64, 192)), then a healthy append
  // is assigned v3 and completes. v3 cannot publish until v2 resolves.
  auto dead = client_->vmanager().AssignVersion(*id, false, 64, 128);
  ASSERT_TRUE(dead.ok());
  ASSERT_EQ(dead->version, 2u);
  std::string tail = TestPayload(5, 64);
  auto v3 = client_->Append(*id, Slice(tail));
  ASSERT_TRUE(v3.ok());
  ASSERT_EQ(*v3, 3u);
  EXPECT_TRUE(client_->Sync(*id, 3, 30 * 1000).IsTimedOut());

  // Repair: v2 becomes a zero-filled update; the chain publishes.
  ASSERT_TRUE(client_->Abort(*id, 2).ok());
  ASSERT_TRUE(client_->Sync(*id, 3, 5 * 1000 * 1000).ok());

  ReferenceBlob ref;
  ref.ApplyAppend(base);
  ref.ApplyZeroFill(64, 128);
  ref.ApplyAppend(tail);
  for (Version v = 1; v <= 3; v++) {
    std::string out;
    ASSERT_TRUE(blob.Read(v, 0, ref.Size(v), &out).ok()) << "v" << v;
    ASSERT_EQ(out, ref.Contents(v)) << "v" << v;
  }
  EXPECT_GT(client_->GetStats().repairs, 0u);
}

TEST_F(FailureTest, RepairedUnalignedAbortKeepsNeighbours) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  std::string base = TestPayload(0, 200);
  ASSERT_TRUE(blob.AppendSync(base).ok());

  // Crashed unaligned write [10, 25) + healthy successor.
  ASSERT_TRUE(client_->vmanager().AssignVersion(*id, false, 10, 15).ok());
  auto v3 = client_->Append(*id, Slice(TestPayload(7, 30)));
  ASSERT_TRUE(v3.ok());
  ASSERT_TRUE(client_->Abort(*id, 2).ok());
  ASSERT_TRUE(client_->Sync(*id, 3).ok());

  ReferenceBlob ref;
  ref.ApplyAppend(base);
  ref.ApplyZeroFill(10, 15);
  ref.ApplyAppend(TestPayload(7, 30));
  std::string out;
  ASSERT_TRUE(blob.Read(2, 0, ref.Size(2), &out).ok());
  EXPECT_EQ(out, ref.Contents(2));
  ASSERT_TRUE(blob.Read(3, 0, ref.Size(3), &out).ok());
  EXPECT_EQ(out, ref.Contents(3));
}

TEST_F(FailureTest, ReadsFailCleanlyWhenProviderDies) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 64 * 8)).ok());
  // Kill a provider; some pages become unreachable (replication is future
  // work in the paper; we verify clean failure, not transparency).
  ASSERT_TRUE(cluster_->StopProvider(1).ok());
  std::string out;
  Status s = blob.Read(1, 0, 64 * 8, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable() || s.IsIOError()) << s.ToString();
}

TEST_F(FailureTest, WritesContinueWhenOtherProvidersRemain) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 64)).ok());
  ASSERT_TRUE(cluster_->StopProvider(2).ok());
  // The dead provider stays in the allocation rotation (no failure
  // detection yet), so writes may fail; after enough retries through the
  // rotation a client eventually succeeds on live providers. We verify
  // the specific contract: a write either fails cleanly or commits.
  int successes = 0;
  for (int i = 0; i < 8; i++) {
    auto v = blob.Append(TestPayload(i + 1, 64));
    if (v.ok()) {
      successes++;
      ASSERT_TRUE(client_->Sync(*id, *v).ok());
      std::string out;
      auto size = blob.GetSize(*v);
      ASSERT_TRUE(size.ok());
      ASSERT_TRUE(blob.Read(*v, *size - 64, 64, &out).ok());
      ASSERT_EQ(out, TestPayload(i + 1, 64));
    }
  }
  EXPECT_GT(successes, 0);
}

TEST_F(FailureTest, MetadataNodeLossDetectedOnRead) {
  core::ClusterOptions opts;
  opts.num_providers = 2;
  opts.num_meta = 1;  // all metadata on one node
  auto cluster = core::EmbeddedCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->NewClient([] {
    client::ClientOptions o;
    o.cache_metadata = false;  // force DHT reads
    return o;
  }());
  ASSERT_TRUE(client.ok());
  auto id = (*client)->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client->get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 128)).ok());
  ASSERT_TRUE((*cluster)->transport()->StopServing(
      (*cluster)->dht_addresses()[0]).ok());
  std::string out;
  EXPECT_FALSE(blob.Read(1, 0, 128, &out).ok());
}

}  // namespace
}  // namespace blobseer
