// Unit tests for the common substrate: Status/Result, Slice, serde, math,
// hashing, RNG, string utilities, executors.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/executor.h"
#include "common/hash.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace blobseer {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing blob");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing blob");
  EXPECT_EQ(s.ToString(), "NotFound: missing blob");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::IOError("disk");
  Status copy = s;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_EQ(copy.message(), "disk");
  Status moved = std::move(copy);
  EXPECT_TRUE(moved.IsIOError());
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status s = Status::Corruption("bad node").WithContext("read v7");
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "read v7: bad node");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 13; c++) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacro) {
  auto fails = []() -> Status {
    BS_RETURN_NOT_OK(Status::TimedOut("t"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsTimedOut());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    BS_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_TRUE(outer(true).status().IsInternal());
}

TEST(SliceTest, BasicViews) {
  std::string s = "hello world";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 11u);
  EXPECT_EQ(sl.SubSlice(6, 5).ToString(), "world");
  sl.RemovePrefix(6);
  EXPECT_EQ(sl.ToString(), "world");
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
}

TEST(ExtentTest, IntersectionAndContainment) {
  Extent a{0, 10};
  Extent b{5, 10};
  Extent c{10, 5};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(b.Intersects(c));
  EXPECT_TRUE(a.Contains(Extent{2, 3}));
  EXPECT_FALSE(a.Contains(b));
  EXPECT_EQ(a.Clip(b), (Extent{5, 5}));
  EXPECT_TRUE(a.Clip(c).empty());
}

TEST(MathTest, Pow2Helpers) {
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(12));
  EXPECT_EQ(Pow2Ceil(1), 1u);
  EXPECT_EQ(Pow2Ceil(3), 4u);
  EXPECT_EQ(Pow2Ceil(64), 64u);
  EXPECT_EQ(Pow2Ceil(65), 128u);
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(64), 6u);
  EXPECT_EQ(FloorLog2(65), 6u);
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(AlignDown(13, 4), 12u);
  EXPECT_EQ(AlignUp(13, 4), 16u);
}

TEST(SerdeTest, RoundTripScalars) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutU16(65535);
  w.PutU32(123456);
  w.PutU64(1ull << 60);
  w.PutBool(true);
  w.PutDouble(3.25);
  w.PutString("abc");
  w.PutExtent(Extent{5, 9});
  w.PutPageId(PageId{11, 22});

  BinaryReader r{Slice(w.buffer())};
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  bool b;
  double d;
  std::string s;
  Extent e;
  PageId p;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetBool(&b).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetExtent(&e).ok());
  ASSERT_TRUE(r.GetPageId(&p).ok());
  ASSERT_TRUE(r.ExpectEnd().ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 65535);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_TRUE(b);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "abc");
  EXPECT_EQ(e, (Extent{5, 9}));
  EXPECT_EQ(p, (PageId{11, 22}));
}

TEST(SerdeTest, TruncationDetected) {
  BinaryWriter w;
  w.PutU64(1);
  BinaryReader r{Slice(w.buffer().data(), 4)};
  uint64_t v;
  EXPECT_TRUE(r.GetU64(&v).IsCorruption());
}

TEST(SerdeTest, TrailingBytesDetected) {
  BinaryWriter w;
  w.PutU32(1);
  w.PutU32(2);
  BinaryReader r{Slice(w.buffer())};
  uint32_t v;
  ASSERT_TRUE(r.GetU32(&v).ok());
  EXPECT_TRUE(r.ExpectEnd().IsCorruption());
}

TEST(SerdeTest, BytesViewBorrowsInput) {
  BinaryWriter w;
  w.PutBytes(Slice("payload"));
  BinaryReader r{Slice(w.buffer())};
  Slice v;
  ASSERT_TRUE(r.GetBytesView(&v).ok());
  EXPECT_EQ(v.ToString(), "payload");
}

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Fnv1a64(Slice("key")), Fnv1a64(Slice("key")));
  EXPECT_NE(Fnv1a64(Slice("key")), Fnv1a64(Slice("kez")));
  EXPECT_NE(Mix64(1), Mix64(2));
}

TEST(HashTest, Crc32cKnownVectors) {
  // RFC 3720 appendix B test vector.
  EXPECT_EQ(Crc32c(Slice("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(Slice("")), 0u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(Slice(zeros)), 0x8A9136AAu);
}

TEST(HashTest, Crc32cExtendMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = Crc32cExtend(0, data.data(), 10);
  crc = Crc32cExtend(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, Crc32c(Slice(data)));
}

TEST(HashTest, Crc32cHardwarePathMatchesPortable) {
  // Crc32cExtend dispatches to SSE4.2 CRC32 instructions where the CPU has
  // them; whatever path runs must agree with the table-driven portable
  // implementation on every length (the hardware path handles 8/4/2/1-byte
  // tails differently).
  std::string data(1025, '\0');
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(i * 131 + 17);
  }
  for (size_t len : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 63u, 64u, 255u, 1024u,
                     1025u}) {
    EXPECT_EQ(Crc32cExtend(0, data.data(), len),
              internal::Crc32cExtendPortable(0, data.data(), len))
        << "len " << len;
    EXPECT_EQ(Crc32cExtend(0xDEADBEEF, data.data(), len),
              internal::Crc32cExtendPortable(0xDEADBEEF, data.data(), len))
        << "len " << len;
  }
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    EXPECT_LT(rng.NextDouble(), 1.0);
  }
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanRateMBps(117.5e6), "117.5 MB/s");
}

TEST(StringUtilTest, SplitJoin) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin({"a", "b"}, "+"), "a+b");
  EXPECT_TRUE(StartsWith("inproc://x", "inproc://"));
  EXPECT_FALSE(StartsWith("in", "inproc://"));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; i++) pool.Submit([&] { count++; });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecutorTest, SerialRunsInOrder) {
  SerialExecutor ex;
  std::vector<size_t> order;
  ASSERT_TRUE(ex.ParallelFor(5, 0, [&](size_t i) {
                  order.push_back(i);
                  return Status::OK();
                }).ok());
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ExecutorTest, ThreadPoolExecutorCoversAllIndices) {
  ThreadPoolExecutor ex(8);
  std::mutex mu;
  std::set<size_t> seen;
  ASSERT_TRUE(ex.ParallelFor(200, 16, [&](size_t i) {
                  std::lock_guard<std::mutex> lock(mu);
                  seen.insert(i);
                  return Status::OK();
                }).ok());
  EXPECT_EQ(seen.size(), 200u);
}

TEST(ExecutorTest, ReportsFirstError) {
  ThreadPoolExecutor ex(4);
  Status s = ex.ParallelFor(50, 8, [&](size_t i) {
    return i == 17 ? Status::Corruption("17") : Status::OK();
  });
  EXPECT_TRUE(s.IsCorruption());
}

TEST(ExecutorTest, EmptyBatchIsOk) {
  ThreadPoolExecutor ex(2);
  EXPECT_TRUE(ex.ParallelFor(0, 4, [](size_t) {
                  return Status::Internal("never");
                }).ok());
}

}  // namespace
}  // namespace blobseer
