// Multi-process integration: spawns real `blobseer_server` daemons (the
// deployment artifact) over TCP on loopback — version manager + provider
// manager in one process, two co-deployed provider+meta daemons — and runs
// the full client interface against them.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "client/blob_client.h"
#include "client/blob_handle.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "pmanager/client.h"
#include "reference_blob.h"
#include "rpc/tcp.h"

namespace blobseer {
namespace {

using testing::ReferenceBlob;
using testing::TestPayload;

std::string ServerBinary() {
  // ctest points here via the BLOBSEER_SERVER_BIN environment property
  // (tests/CMakeLists.txt); the relative candidates cover running the test
  // binary by hand from the build tree.
  if (const char* env = getenv("BLOBSEER_SERVER_BIN")) {
    if (access(env, X_OK) == 0) return env;
  }
  for (const char* candidate :
       {"../src/server/blobseer_server", "src/server/blobseer_server",
        "./blobseer_server", "build/src/server/blobseer_server"}) {
    if (access(candidate, X_OK) == 0) return candidate;
  }
  return "";
}

class ServerProcessTest : public ::testing::Test {
 protected:
  /// Extra flags for the manager daemon / every provider daemon.
  virtual std::vector<std::string> ManagerFlags() { return {}; }
  virtual std::vector<std::string> ProviderFlags() { return {}; }

  void SetUp() override {
    binary_ = ServerBinary();
    if (binary_.empty()) GTEST_SKIP() << "blobseer_server binary not found";
    // Ports derived from the pid (collisions across concurrent test runs)
    // plus a per-process sequence (each test in this binary gets fresh
    // ports, so a stale socket from the previous test can never satisfy a
    // probe), kept strictly below the ephemeral range (32768+): an
    // ephemeral listener of a concurrently-running TCP test must not be
    // able to squat our daemon's port.
    static int sequence = 0;
    int base = 10000 + ((getpid() * 13 + 1009 * sequence++) % 22000);
    manager_addr_ = StrFormat("127.0.0.1:%d", base);
    provider_addrs_ = {StrFormat("127.0.0.1:%d", base + 1),
                       StrFormat("127.0.0.1:%d", base + 2)};

    std::vector<std::string> manager_args = {"--listen=" + manager_addr_,
                                             "--roles=vmanager,pmanager"};
    for (const auto& f : ManagerFlags()) manager_args.push_back(f);
    Spawn(manager_args);
    ASSERT_TRUE(WaitReachable(manager_addr_)) << "managers did not start";
    for (const auto& addr : provider_addrs_) {
      std::vector<std::string> provider_args = {
          "--listen=" + addr, "--roles=provider,meta",
          "--pmanager=" + manager_addr_};
      for (const auto& f : ProviderFlags()) provider_args.push_back(f);
      Spawn(provider_args);
      ASSERT_TRUE(WaitReachable(addr, children_.back()))
          << "provider did not start";
    }
  }

  void TearDown() override {
    for (pid_t pid : children_) {
      kill(pid, SIGTERM);
    }
    for (pid_t pid : children_) {
      int status;
      waitpid(pid, &status, 0);
    }
  }

  void Spawn(std::vector<std::string> args) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(binary_.c_str()));
      for (auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      execv(binary_.c_str(), argv.data());
      _exit(127);
    }
    children_.push_back(pid);
  }

  bool WaitReachable(const std::string& addr, pid_t pid = -1) {
    rpc::TcpTransport probe;
    for (int i = 0; i < 200; i++) {
      if (pid > 0) {
        // A daemon that died at startup (port squatted, exec failure)
        // would otherwise read as "never came up" 10 s later; surface the
        // exit immediately instead.
        int status = 0;
        if (waitpid(pid, &status, WNOHANG) == pid) {
          ADD_FAILURE() << "daemon " << pid << " exited at startup, status "
                        << status;
          children_.erase(
              std::remove(children_.begin(), children_.end(), pid),
              children_.end());
          return false;
        }
      }
      auto ch = probe.Connect(addr);
      if (ch.ok()) {
        std::string out;
        Status s = (*ch)->Call(rpc::Method::kVmStats, Slice(""), &out);
        // Any response (even NotSupported on provider nodes) proves the
        // frame loop is up.
        if (s.ok() || !s.IsUnavailable()) return true;
      }
      RealClock::Default()->SleepForMicros(50 * 1000);
    }
    return false;
  }

  std::string binary_;
  std::string manager_addr_;
  std::vector<std::string> provider_addrs_;
  std::vector<pid_t> children_;
};

TEST_F(ServerProcessTest, FullInterfaceAgainstRealDaemons) {
  rpc::TcpTransport transport;
  client::BlobClient client(&transport, manager_addr_, manager_addr_,
                            provider_addrs_);

  auto id = client.Create(4096);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  client::Blob blob(&client, *id);
  ReferenceBlob ref;

  auto v1 = blob.AppendSync(TestPayload(1, 10000));
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ref.ApplyAppend(TestPayload(1, 10000));
  auto v2 = blob.WriteSync(TestPayload(2, 5000), 2500);
  ASSERT_TRUE(v2.ok());
  ref.ApplyWrite(TestPayload(2, 5000), 2500);

  for (Version v = 1; v <= 2; v++) {
    std::string out;
    ASSERT_TRUE(blob.Read(v, 0, ref.Size(v), &out).ok());
    EXPECT_EQ(out, ref.Contents(v)) << "v" << v;
  }

  auto branch = blob.Branch(1);
  ASSERT_TRUE(branch.ok());
  auto bv = branch->AppendSync(TestPayload(3, 100));
  ASSERT_TRUE(bv.ok());
  std::string out;
  ASSERT_TRUE(branch->Read(*bv, 10000, 100, &out).ok());
  EXPECT_EQ(out, TestPayload(3, 100));
}

TEST_F(ServerProcessTest, SurvivesProviderDaemonRestart) {
  rpc::TcpTransport transport;
  client::BlobClient client(&transport, manager_addr_, manager_addr_,
                            provider_addrs_);
  auto id = client.Create(4096);
  ASSERT_TRUE(id.ok());
  client::Blob blob(&client, *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(1, 8192)).ok());

  // Kill and restart one provider daemon; its in-memory pages are gone,
  // but new writes must succeed once it re-registers under its old id.
  pid_t victim = children_.back();
  kill(victim, SIGTERM);
  int status;
  waitpid(victim, &status, 0);
  children_.pop_back();
  Spawn({"--listen=" + provider_addrs_[1], "--roles=provider,meta",
         "--pmanager=" + manager_addr_});
  ASSERT_TRUE(WaitReachable(provider_addrs_[1]));

  bool wrote = false;
  for (int i = 0; i < 6 && !wrote; i++) {
    wrote = blob.AppendSync(TestPayload(10 + i, 4096)).ok();
  }
  EXPECT_TRUE(wrote);
}

// Daemon-level liveness: providers started with --heartbeat-interval beat
// to a pmanager armed with --suspect-after/--dead-after; killing one
// daemon must surface as a dead provider in PmStats while the survivor
// keeps itself alive (docs/liveness.md).
class ServerHeartbeatTest : public ServerProcessTest {
 protected:
  std::vector<std::string> ManagerFlags() override {
    return {"--suspect-after=1", "--dead-after=2"};
  }
  std::vector<std::string> ProviderFlags() override {
    return {"--heartbeat-interval=1"};
  }
};

TEST_F(ServerHeartbeatTest, KilledDaemonExpiresToDead) {
  rpc::TcpTransport transport;
  pmanager::ProviderManagerClient pm(&transport, manager_addr_);

  // Both daemons registered and beating. Registration happens after the
  // endpoint starts serving (what SetUp waited on), so poll briefly.
  Stopwatch registering;
  uint64_t providers = 0;
  while (registering.ElapsedSeconds() < 10.0 && providers < 2) {
    auto stats = pm.FetchStats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    providers = stats->providers;
    if (providers < 2) RealClock::Default()->SleepForMicros(50 * 1000);
  }
  ASSERT_EQ(providers, 2u) << "daemons never registered";

  pid_t victim = children_.back();
  kill(victim, SIGKILL);  // no graceful shutdown: beats just stop
  int status;
  waitpid(victim, &status, 0);
  children_.pop_back();

  Stopwatch deadline;
  uint64_t dead = 0;
  while (deadline.ElapsedSeconds() < 15.0 && dead == 0) {
    RealClock::Default()->SleepForMicros(200 * 1000);
    auto s = pm.FetchStats();
    ASSERT_TRUE(s.ok());
    dead = s->dead;
    // The surviving daemon must never expire to dead while it beats. (It
    // may dip into suspect transiently when the machine is loaded — a 1 s
    // threshold against real scheduling — so that is not asserted.)
    EXPECT_LE(s->dead, 1u);
  }
  EXPECT_EQ(dead, 1u) << "killed daemon never expired to dead";
}

}  // namespace
}  // namespace blobseer
