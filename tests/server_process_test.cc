// Multi-process integration: spawns real `blobseer_server` daemons (the
// deployment artifact) over TCP on loopback — version manager + provider
// manager in one process, two co-deployed provider+meta daemons — and runs
// the full client interface against them.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "client/blob_client.h"
#include "client/blob_handle.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "reference_blob.h"
#include "rpc/tcp.h"

namespace blobseer {
namespace {

using testing::ReferenceBlob;
using testing::TestPayload;

std::string ServerBinary() {
  for (const char* candidate :
       {"../src/blobseer_server", "src/blobseer_server",
        "./blobseer_server", "build/src/blobseer_server"}) {
    if (access(candidate, X_OK) == 0) return candidate;
  }
  return "";
}

class ServerProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    binary_ = ServerBinary();
    if (binary_.empty()) GTEST_SKIP() << "blobseer_server binary not found";
    // Ports derived from the pid to avoid collisions across test runs.
    int base = 20000 + (getpid() % 20000);
    manager_addr_ = StrFormat("127.0.0.1:%d", base);
    provider_addrs_ = {StrFormat("127.0.0.1:%d", base + 1),
                       StrFormat("127.0.0.1:%d", base + 2)};

    Spawn({"--listen=" + manager_addr_, "--roles=vmanager,pmanager"});
    ASSERT_TRUE(WaitReachable(manager_addr_)) << "managers did not start";
    for (const auto& addr : provider_addrs_) {
      Spawn({"--listen=" + addr, "--roles=provider,meta",
             "--pmanager=" + manager_addr_});
      ASSERT_TRUE(WaitReachable(addr)) << "provider did not start";
    }
  }

  void TearDown() override {
    for (pid_t pid : children_) {
      kill(pid, SIGTERM);
    }
    for (pid_t pid : children_) {
      int status;
      waitpid(pid, &status, 0);
    }
  }

  void Spawn(std::vector<std::string> args) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(binary_.c_str()));
      for (auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
      argv.push_back(nullptr);
      execv(binary_.c_str(), argv.data());
      _exit(127);
    }
    children_.push_back(pid);
  }

  bool WaitReachable(const std::string& addr) {
    rpc::TcpTransport probe;
    for (int i = 0; i < 100; i++) {
      auto ch = probe.Connect(addr);
      if (ch.ok()) {
        std::string out;
        Status s = (*ch)->Call(rpc::Method::kVmStats, Slice(""), &out);
        // Any response (even NotSupported on provider nodes) proves the
        // frame loop is up.
        if (s.ok() || !s.IsUnavailable()) return true;
      }
      RealClock::Default()->SleepForMicros(50 * 1000);
    }
    return false;
  }

  std::string binary_;
  std::string manager_addr_;
  std::vector<std::string> provider_addrs_;
  std::vector<pid_t> children_;
};

TEST_F(ServerProcessTest, FullInterfaceAgainstRealDaemons) {
  rpc::TcpTransport transport;
  client::BlobClient client(&transport, manager_addr_, manager_addr_,
                            provider_addrs_);

  auto id = client.Create(4096);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  client::Blob blob(&client, *id);
  ReferenceBlob ref;

  auto v1 = blob.AppendSync(TestPayload(1, 10000));
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ref.ApplyAppend(TestPayload(1, 10000));
  auto v2 = blob.WriteSync(TestPayload(2, 5000), 2500);
  ASSERT_TRUE(v2.ok());
  ref.ApplyWrite(TestPayload(2, 5000), 2500);

  for (Version v = 1; v <= 2; v++) {
    std::string out;
    ASSERT_TRUE(blob.Read(v, 0, ref.Size(v), &out).ok());
    EXPECT_EQ(out, ref.Contents(v)) << "v" << v;
  }

  auto branch = blob.Branch(1);
  ASSERT_TRUE(branch.ok());
  auto bv = branch->AppendSync(TestPayload(3, 100));
  ASSERT_TRUE(bv.ok());
  std::string out;
  ASSERT_TRUE(branch->Read(*bv, 10000, 100, &out).ok());
  EXPECT_EQ(out, TestPayload(3, 100));
}

TEST_F(ServerProcessTest, SurvivesProviderDaemonRestart) {
  rpc::TcpTransport transport;
  client::BlobClient client(&transport, manager_addr_, manager_addr_,
                            provider_addrs_);
  auto id = client.Create(4096);
  ASSERT_TRUE(id.ok());
  client::Blob blob(&client, *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(1, 8192)).ok());

  // Kill and restart one provider daemon; its in-memory pages are gone,
  // but new writes must succeed once it re-registers under its old id.
  pid_t victim = children_.back();
  kill(victim, SIGTERM);
  int status;
  waitpid(victim, &status, 0);
  children_.pop_back();
  Spawn({"--listen=" + provider_addrs_[1], "--roles=provider,meta",
         "--pmanager=" + manager_addr_});
  ASSERT_TRUE(WaitReachable(provider_addrs_[1]));

  bool wrote = false;
  for (int i = 0; i < 6 && !wrote; i++) {
    wrote = blob.AppendSync(TestPayload(10 + i, 4096)).ok();
  }
  EXPECT_TRUE(wrote);
}

}  // namespace
}  // namespace blobseer
