// End-to-end tests of the futures-based client API: many in-flight
// operations on one client, out-of-order completion, WhenAll fan-in,
// failure propagation through continuation chains, and timeout behavior
// under the simnet virtual clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/sim_cluster.h"
#include "reference_blob.h"

namespace blobseer {
namespace {

using client::Blob;
using client::BlobClient;
using testing::TestPayload;

class ClientAsyncTest : public ::testing::Test {
 protected:
  void Start(core::ClusterOptions opts) {
    auto cluster = core::EmbeddedCluster::Start(opts);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).ValueUnsafe();
    auto client = cluster_->NewClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(client).ValueUnsafe();
  }
  void SetUp() override {
    core::ClusterOptions opts;
    opts.num_providers = 4;
    opts.num_meta = 4;
    Start(opts);
  }

  std::unique_ptr<core::EmbeddedCluster> cluster_;
  std::unique_ptr<BlobClient> client_;
};

TEST_F(ClientAsyncTest, ManyInFlightAppendsOnOneClient) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  constexpr int kOps = 64;
  // Payloads must outlive the futures (Slice-borrow rule).
  std::vector<std::string> payloads;
  payloads.reserve(kOps);
  for (int i = 0; i < kOps; i++) payloads.push_back(TestPayload(i, 100));
  std::vector<Future<Version>> futures;
  futures.reserve(kOps);
  for (int i = 0; i < kOps; i++)
    futures.push_back(client_->AppendAsync(*id, payloads[i]));

  // WhenAll fan-in: versions 1..kOps each assigned exactly once.
  auto all = WhenAll(std::move(futures)).Wait(client_->executor());
  ASSERT_TRUE(all.ok());
  std::set<Version> versions;
  for (const auto& r : *all) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    versions.insert(*r);
  }
  EXPECT_EQ(versions.size(), static_cast<size_t>(kOps));
  EXPECT_EQ(*versions.begin(), 1u);
  EXPECT_EQ(*versions.rbegin(), static_cast<Version>(kOps));

  // Everything published and readable afterwards.
  ASSERT_TRUE(client_->Sync(*id, kOps).ok());
  auto recent = client_->GetRecent(*id);
  ASSERT_TRUE(recent.ok());
  EXPECT_EQ(recent->version, static_cast<Version>(kOps));
  EXPECT_EQ(recent->size, static_cast<uint64_t>(kOps) * 100);
}

TEST_F(ClientAsyncTest, AsyncWriteReadRoundTripOverTcp) {
  core::ClusterOptions opts;
  opts.num_providers = 3;
  opts.num_meta = 2;
  opts.transport = "tcp";
  Start(opts);

  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  std::string payload = TestPayload(7, 5000);  // ~79 pages
  auto version = client_->AppendAsync(*id, payload).Wait();
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  ASSERT_TRUE(client_->SyncAsync(*id, *version).Wait().ok());

  // Several overlapping async reads, collected out of issue order.
  std::vector<Future<std::string>> reads;
  reads.push_back(client_->ReadAsync(*id, *version, 0, 5000));
  reads.push_back(client_->ReadAsync(*id, *version, 63, 130));
  reads.push_back(client_->ReadAsync(*id, *version, 4999, 1));
  auto all = WhenAll(std::move(reads)).Wait();
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE((*all)[0].ok()) << (*all)[0].status().ToString();
  EXPECT_EQ(*(*all)[0], payload);
  EXPECT_EQ(*(*all)[1], payload.substr(63, 130));
  EXPECT_EQ(*(*all)[2], payload.substr(4999, 1));
}

TEST_F(ClientAsyncTest, ContinuationChainsObserveEachStage) {
  // A read-modify-write pipeline built purely from continuations.
  auto id = client_->Create(32);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  std::string first = TestPayload(1, 96);
  auto v1 = blob.AppendSyncAsync(first).Wait(client_->executor());
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();

  BlobClient* c = client_.get();
  BlobId bid = *id;
  auto payload = std::make_shared<std::string>();
  auto chained =
      c->ReadAsync(bid, *v1, 0, 96)
          .Then([c, bid, payload](Result<std::string> data) -> Future<Version> {
            if (!data.ok()) return MakeReadyFuture<Version>(data.status());
            *payload = std::move(*data);
            std::reverse(payload->begin(), payload->end());
            return c->WriteAsync(bid, *payload, 0);
          })
          .Then([c, bid](Result<Version> v) -> Future<Unit> {
            if (!v.ok()) return MakeReadyFuture(v.status());
            return c->SyncAsync(bid, *v);
          });
  ASSERT_TRUE(chained.Wait(client_->executor()).ok());

  std::string out;
  ASSERT_TRUE(client_->Read(bid, *v1 + 1, 0, 96, &out).ok());
  std::string want = first;
  std::reverse(want.begin(), want.end());
  EXPECT_EQ(out, want);
}

TEST_F(ClientAsyncTest, FailurePropagatesThroughChain) {
  // Unknown blob: the first stage fails and the error reaches the future.
  auto missing = client_->AppendAsync(12345, "data").Wait(client_->executor());
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();

  // Read beyond the snapshot: a mid-chain validation failure.
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(1, 100)).ok());
  auto r = client_->ReadAsync(*id, 1, 50, 51).Wait(client_->executor());
  EXPECT_TRUE(r.status().IsOutOfRange());
  // Unpublished version: publication check fails.
  auto r2 = client_->ReadAsync(*id, 9, 0, 1).Wait(client_->executor());
  EXPECT_FALSE(r2.ok());
}

TEST_F(ClientAsyncTest, FailedAsyncWriteLeaksNothing) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(1, 64)).ok());
  // Beyond-end write fails through the async chain, and its pre-stored
  // pages are garbage-collected before the future resolves.
  std::string data = TestPayload(2, 10);
  auto bad = client_->WriteAsync(*id, data, 100).Wait(client_->executor());
  EXPECT_TRUE(bad.status().IsOutOfRange());
  uint64_t pages, bytes;
  ASSERT_TRUE(cluster_->TotalProviderUsage(&pages, &bytes).ok());
  EXPECT_EQ(pages, 1u);
  EXPECT_EQ(bytes, 64u);
  // The version chain is unharmed.
  EXPECT_TRUE(blob.AppendSync(TestPayload(3, 10)).ok());
}

TEST_F(ClientAsyncTest, MixedReadersAndWritersInFlight) {
  auto id = client_->Create(64);
  ASSERT_TRUE(id.ok());
  Blob blob(client_.get(), *id);
  ASSERT_TRUE(blob.AppendSync(TestPayload(0, 640)).ok());

  std::vector<std::string> payloads;
  for (int i = 1; i <= 16; i++) payloads.push_back(TestPayload(i, 64));
  std::vector<Future<Version>> writes;
  std::vector<Future<std::string>> reads;
  for (int i = 0; i < 16; i++) {
    writes.push_back(client_->AppendAsync(*id, payloads[i]));
    reads.push_back(client_->ReadAsync(*id, 1, i * 40, 40));
  }
  auto wr = WhenAll(std::move(writes)).Wait(client_->executor());
  auto rr = WhenAll(std::move(reads)).Wait(client_->executor());
  ASSERT_TRUE(wr.ok());
  ASSERT_TRUE(rr.ok());
  for (const auto& w : *wr) ASSERT_TRUE(w.ok()) << w.status().ToString();
  std::string snapshot = TestPayload(0, 640);
  for (int i = 0; i < 16; i++) {
    ASSERT_TRUE((*rr)[i].ok()) << (*rr)[i].status().ToString();
    EXPECT_EQ(*(*rr)[i], snapshot.substr(i * 40, 40));
  }
}

TEST(ClientAsyncSimTest, TimeoutUnderVirtualClock) {
  // SyncAsync against a version that never publishes must resolve TimedOut
  // after *virtual* time passes — instantly in wall-clock terms.
  simnet::SimScheduler sched;
  Status sync_status;
  double virtual_elapsed = 0;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 3;
    core::SimCluster cluster(&sched, opts);
    // Coarse poll interval: every virtual poll is a real spawned sim task,
    // so a fine interval only adds thread churn (TSan keeps per-thread
    // state) without changing the semantics under test.
    client::ClientOptions copts;
    copts.sync_poll_us = 100 * 1000;
    auto client = cluster.NewClient(copts);
    auto id = client->Create(64);
    ASSERT_TRUE(id.ok());
    // Stall the pipeline: an assigned version that never completes.
    ASSERT_TRUE(client->vmanager().AssignVersion(*id, true, 0, 10).ok());
    double t0 = sched.Now();
    auto f = client->SyncAsync(*id, 1, 5 * 1000 * 1000);  // 5 virtual s
    sync_status = f.Wait(client->executor()).status();
    virtual_elapsed = sched.Now() - t0;
  });
  EXPECT_TRUE(sync_status.IsTimedOut()) << sync_status.ToString();
  EXPECT_GE(virtual_elapsed, 5.0 * 1000 * 1000);
}

TEST(ClientAsyncSimTest, OutOfOrderCompletionUnderSim) {
  // Two async appends from one sim task: the second (smaller) op can pass
  // the first in virtual time; both futures resolve correctly and the
  // version order is the assignment order.
  simnet::SimScheduler sched;
  bool checked = false;
  sched.Run([&] {
    core::SimClusterOptions opts;
    opts.num_provider_nodes = 4;
    core::SimCluster cluster(&sched, opts);
    auto client = cluster.NewClient();
    auto id = client->Create(4096);
    ASSERT_TRUE(id.ok());
    std::string big = TestPayload(1, 64 * 1024);
    std::string small = TestPayload(2, 4 * 1024);
    auto f_big = client->AppendAsync(*id, big);
    auto f_small = client->AppendAsync(*id, small);
    auto v_small = f_small.Wait(client->executor());
    auto v_big = f_big.Wait(client->executor());
    ASSERT_TRUE(v_big.ok()) << v_big.status().ToString();
    ASSERT_TRUE(v_small.ok()) << v_small.status().ToString();
    EXPECT_EQ(*v_big, 1u);
    EXPECT_EQ(*v_small, 2u);
    ASSERT_TRUE(client->Sync(*id, 2).ok());
    auto recent = client->GetRecent(*id);
    ASSERT_TRUE(recent.ok());
    EXPECT_EQ(recent->version, 2u);
    EXPECT_EQ(recent->size, big.size() + small.size());
    checked = true;
  });
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace blobseer
