#include "rpc/channel_pool.h"

namespace blobseer::rpc {

ChannelPool::ChannelPool(Transport* transport, size_t channels_per_endpoint)
    : transport_(transport),
      per_endpoint_(channels_per_endpoint == 0 ? 1 : channels_per_endpoint) {}

Result<std::shared_ptr<Channel>> ChannelPool::Get(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[address];
  if (e.channels.size() < per_endpoint_) {
    auto ch = transport_->Connect(address);
    if (!ch.ok()) return ch.status();
    e.channels.push_back(std::move(ch).ValueUnsafe());
    return e.channels.back();
  }
  e.next = (e.next + 1) % e.channels.size();
  return e.channels[e.next];
}

void ChannelPool::Invalidate(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(address);
}

}  // namespace blobseer::rpc
