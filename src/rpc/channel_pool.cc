#include "rpc/channel_pool.h"

namespace blobseer::rpc {

ChannelPool::ChannelPool(Transport* transport, size_t channels_per_endpoint)
    : transport_(transport),
      per_endpoint_(channels_per_endpoint == 0 ? 1 : channels_per_endpoint) {}

Result<std::shared_ptr<Channel>> ChannelPool::Get(const std::string& address) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& e = entries_[address];
    if (e.channels.size() >= per_endpoint_) {
      e.next = (e.next + 1) % e.channels.size();
      return e.channels[e.next];
    }
  }
  // Connect outside the lock: a TCP connect can block for seconds (SYN
  // retries to a dead endpoint), and holding the pool-wide mutex through it
  // would stall every Get to every *other* endpoint for the duration.
  auto ch = transport_->Connect(address);
  if (!ch.ok()) return ch.status();
  std::shared_ptr<Channel> fresh = std::move(ch).ValueUnsafe();

  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[address];
  if (e.channels.size() < per_endpoint_) {
    e.channels.push_back(std::move(fresh));
    return e.channels.back();
  }
  // Raced: concurrent Gets filled the slot. Return a pooled channel — the
  // pool must retain whatever it hands out (callers hold raw Channel*
  // across async completions on the strength of that retention) — and let
  // the unpooled fresh one die here.
  e.next = (e.next + 1) % e.channels.size();
  return e.channels[e.next];
}

void ChannelPool::Invalidate(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(address);
}

}  // namespace blobseer::rpc
