// Wire-level constants shared by all transports: method identifiers and
// frame layouts.
//
// TCP frame format v2 (correlation ids; body_len counts everything after
// itself):
//   Request frame : [u32 body_len][u64 corr_id][u32 method][payload...]
//   Response frame: [u32 body_len][u64 corr_id][u8 status_code]
//                   [u32 msg_len][msg][payload...]
// The correlation id is chosen by the client and echoed back verbatim, so
// the server answers each request the moment its handler completes —
// responses travel in completion order, not request order, and a held call
// (e.g. a parked AwaitPublished subscription) no longer blocks the requests
// pipelined behind it. v2 is a hard format bump over the id-less v1 frames:
// client and server always ship from the same tree.
//
// The in-process and simulated transports skip framing and pass the payload
// and Status through directly.
#ifndef BLOBSEER_RPC_WIRE_H_
#define BLOBSEER_RPC_WIRE_H_

#include <cstdint>

namespace blobseer::rpc {

/// Every RPC method in the system. Grouped by service in blocks of 100.
enum class Method : uint32_t {
  // DHT (metadata provider) service.
  kDhtPut = 100,
  kDhtGet = 101,
  kDhtDelete = 102,
  kDhtMultiGet = 103,
  kDhtStats = 104,
  kDhtCas = 105,

  // Data provider service.
  kProviderWrite = 200,
  kProviderRead = 201,
  kProviderDelete = 202,
  kProviderStats = 203,

  // Provider manager service.
  kPmRegister = 300,
  kPmHeartbeat = 301,
  kPmAllocate = 302,
  kPmDirectory = 303,
  kPmStats = 304,
  kPmReportLocations = 305,
  kPmDecommission = 306,

  // Version manager service.
  kVmCreateBlob = 400,
  kVmOpenBlob = 401,
  kVmAssignVersion = 402,
  kVmNotifySuccess = 403,
  kVmAbortUpdate = 404,
  kVmGetRecent = 405,
  kVmGetSize = 406,
  kVmAwaitPublished = 407,
  kVmBranch = 408,
  kVmStats = 409,
  kVmSetRetention = 410,
  kVmGetRetention = 411,
  kVmListVersions = 412,
  kVmDiscardVersion = 413,
  kVmListBlobs = 414,

  // Centralized-metadata baseline service (ablation comparator).
  kCentralCreate = 500,
  kCentralUpdate = 501,
  kCentralGetLayout = 502,
  kCentralGetRecent = 503,
};

/// Per-message fixed wire overhead (framing + TCP/IP headers) charged by the
/// simulated transport so small metadata RPCs have realistic cost.
inline constexpr uint32_t kWireOverheadBytes = 96;

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_WIRE_H_
