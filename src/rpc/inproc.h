// In-process transport: services and clients in one address space. The
// default substrate for unit/integration tests and the embedded cluster.
#ifndef BLOBSEER_RPC_INPROC_H_
#define BLOBSEER_RPC_INPROC_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "rpc/transport.h"

namespace blobseer::rpc {

/// A private in-process network namespace. Channels hold weak references to
/// handlers, so stopping a server makes existing channels observe
/// Unavailable — which lets tests inject node failures.
class InProcNetwork : public Transport {
 public:
  Result<std::string> Serve(const std::string& address,
                            std::shared_ptr<ServiceHandler> handler) override;
  Status StopServing(const std::string& address) override;
  Result<std::shared_ptr<Channel>> Connect(const std::string& address) override;

  /// Number of currently registered endpoints.
  size_t endpoint_count() const;

 private:
  // Registration wrapper: channels hold weak references to this, so
  // StopServing invalidates them even while callers still own the handler.
  struct Registration {
    std::shared_ptr<ServiceHandler> handler;
  };
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Registration>> endpoints_;
};

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_INPROC_H_
