// Typed request/response helpers layered over raw channels.
#ifndef BLOBSEER_RPC_CALL_H_
#define BLOBSEER_RPC_CALL_H_

#include <string>
#include <utility>

#include "common/future.h"
#include "common/serde.h"
#include "rpc/transport.h"

namespace blobseer::rpc {

/// Encodes `req`, performs the call, decodes into `*rsp`. Fails with
/// Corruption if the response has trailing bytes.
template <typename Request, typename Response>
Status CallMethod(Channel* channel, Method method, const Request& req,
                  Response* rsp) {
  BinaryWriter w;
  req.EncodeTo(&w);
  std::string out;
  BS_RETURN_NOT_OK(channel->Call(method, Slice(w.buffer()), &out));
  BinaryReader r{Slice(out)};
  BS_RETURN_NOT_OK(rsp->DecodeFrom(&r));
  return r.ExpectEnd();
}

/// Async counterpart: encodes `req` inline, issues CallAsync, decodes in the
/// completion callback. The returned future resolves on the transport's
/// completion context (see Channel::CallAsync). `channel` must stay alive
/// until the future resolves — channels obtained from a ChannelPool are
/// retained by the pool, which satisfies this.
template <typename Request, typename Response>
Future<Response> CallMethodAsync(Channel* channel, Method method,
                                 const Request& req) {
  BinaryWriter w;
  req.EncodeTo(&w);
  Promise<Response> p;
  Future<Response> f = p.GetFuture();
  channel->CallAsync(method, Slice(w.buffer()),
                     [p](Status st, std::string out) mutable {
                       if (!st.ok()) {
                         p.Set(std::move(st));
                         return;
                       }
                       Response rsp;
                       BinaryReader r{Slice(out)};
                       Status ds = rsp.DecodeFrom(&r);
                       if (ds.ok()) ds = r.ExpectEnd();
                       if (!ds.ok())
                         p.Set(std::move(ds));
                       else
                         p.Set(std::move(rsp));
                     });
  return f;
}

/// Server-side glue: decodes the payload into Request, invokes
/// `fn(req, &rsp)`, encodes the response.
template <typename Request, typename Response, typename F>
Status DispatchTyped(Slice payload, std::string* response, F&& fn) {
  Request req;
  BinaryReader r(payload);
  BS_RETURN_NOT_OK(req.DecodeFrom(&r));
  BS_RETURN_NOT_OK(r.ExpectEnd());
  Response rsp;
  BS_RETURN_NOT_OK(fn(req, &rsp));
  BinaryWriter w;
  rsp.EncodeTo(&w);
  *response = std::move(w).TakeBuffer();
  return Status::OK();
}

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_CALL_H_
