// Typed request/response helpers layered over raw channels.
#ifndef BLOBSEER_RPC_CALL_H_
#define BLOBSEER_RPC_CALL_H_

#include <string>

#include "common/serde.h"
#include "rpc/transport.h"

namespace blobseer::rpc {

/// Encodes `req`, performs the call, decodes into `*rsp`. Fails with
/// Corruption if the response has trailing bytes.
template <typename Request, typename Response>
Status CallMethod(Channel* channel, Method method, const Request& req,
                  Response* rsp) {
  BinaryWriter w;
  req.EncodeTo(&w);
  std::string out;
  BS_RETURN_NOT_OK(channel->Call(method, Slice(w.buffer()), &out));
  BinaryReader r{Slice(out)};
  BS_RETURN_NOT_OK(rsp->DecodeFrom(&r));
  return r.ExpectEnd();
}

/// Server-side glue: decodes the payload into Request, invokes
/// `fn(req, &rsp)`, encodes the response.
template <typename Request, typename Response, typename F>
Status DispatchTyped(Slice payload, std::string* response, F&& fn) {
  Request req;
  BinaryReader r(payload);
  BS_RETURN_NOT_OK(req.DecodeFrom(&r));
  BS_RETURN_NOT_OK(r.ExpectEnd());
  Response rsp;
  BS_RETURN_NOT_OK(fn(req, &rsp));
  BinaryWriter w;
  rsp.EncodeTo(&w);
  *response = std::move(w).TakeBuffer();
  return Status::OK();
}

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_CALL_H_
