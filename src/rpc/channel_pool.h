// Channel pooling: the client library spreads requests to one endpoint
// across several channels. A single TCP channel already pipelines many
// requests, the server dispatches them concurrently, and responses are
// matched by correlation id (so a slow call does not block the ones behind
// it); the pool's remaining job is client-side send parallelism — spreading
// request serialization and socket writes across connections.
#ifndef BLOBSEER_RPC_CHANNEL_POOL_H_
#define BLOBSEER_RPC_CHANNEL_POOL_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rpc/transport.h"

namespace blobseer::rpc {

class ChannelPool {
 public:
  /// `channels_per_endpoint` bounds how many concurrent channels are opened
  /// to any single address.
  ChannelPool(Transport* transport, size_t channels_per_endpoint);

  /// Returns a channel to `address`, opening one lazily; rotates round-robin
  /// across the pool for that endpoint.
  Result<std::shared_ptr<Channel>> Get(const std::string& address);

  /// Drops all channels for `address` (e.g. after repeated failures).
  void Invalidate(const std::string& address);

  /// True when the transport binds channels at connect time, i.e. when an
  /// Unavailable from a pooled channel may mean "stale channel to a
  /// restarted endpoint" and Invalidate + Get can reach it again.
  bool binding() const { return transport_->binds_at_connect(); }

 private:
  struct Entry {
    std::vector<std::shared_ptr<Channel>> channels;
    size_t next = 0;
  };
  Transport* transport_;
  size_t per_endpoint_;
  std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_CHANNEL_POOL_H_
