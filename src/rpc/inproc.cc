#include "rpc/inproc.h"

namespace blobseer::rpc {

namespace {

class InProcChannel : public Channel {
 public:
  InProcChannel(std::weak_ptr<void> registration, ServiceHandler* handler,
                std::string address)
      : registration_(std::move(registration)),
        handler_(handler),
        address_(std::move(address)) {}

  Status Call(Method method, Slice request, std::string* response) override {
    // Holding the registration alive for the duration of the call keeps
    // shutdown linearizable: either the call sees the endpoint or it gets
    // Unavailable.
    std::shared_ptr<void> pin = registration_.lock();
    if (!pin) return Status::Unavailable("endpoint gone: " + address_);
    response->clear();
    return handler_->Handle(method, request, response);
  }

  // Native async path: the handler's async entry point runs as an ordinary
  // function call, but a handler that parks the request (server-push, e.g.
  // an AwaitPublished subscription) completes `done` later from whatever
  // thread resolves it. The registration pin is held only across the
  // HandleAsync invocation — deliberately NOT captured into `done`, which
  // would cycle (service waiter -> callback -> pin -> registration ->
  // handler -> service) and leak every never-fired subscription.
  void CallAsync(Method method, Slice request, CallCallback done) override {
    std::shared_ptr<void> pin = registration_.lock();
    if (!pin) {
      done(Status::Unavailable("endpoint gone: " + address_), std::string());
      return;
    }
    handler_->HandleAsync(method, request, std::move(done));
  }

 private:
  std::weak_ptr<void> registration_;
  ServiceHandler* handler_;
  std::string address_;
};

}  // namespace

Result<std::string> InProcNetwork::Serve(
    const std::string& address, std::shared_ptr<ServiceHandler> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  auto reg = std::make_shared<Registration>();
  reg->handler = std::move(handler);
  auto [it, inserted] = endpoints_.emplace(address, std::move(reg));
  if (!inserted)
    return Status::AlreadyExists("inproc endpoint exists: " + address);
  return address;
}

Status InProcNetwork::StopServing(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  if (endpoints_.erase(address) == 0)
    return Status::NotFound("inproc endpoint: " + address);
  return Status::OK();
}

Result<std::shared_ptr<Channel>> InProcNetwork::Connect(
    const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(address);
  if (it == endpoints_.end())
    return Status::Unavailable("no inproc endpoint: " + address);
  return std::shared_ptr<Channel>(std::make_shared<InProcChannel>(
      std::weak_ptr<void>(it->second), it->second->handler.get(), address));
}

size_t InProcNetwork::endpoint_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_.size();
}

}  // namespace blobseer::rpc
