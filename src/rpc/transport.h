// Transport abstraction: the same services and clients run over in-process
// calls, TCP sockets, or the simnet virtual network.
#ifndef BLOBSEER_RPC_TRANSPORT_H_
#define BLOBSEER_RPC_TRANSPORT_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "rpc/wire.h"

namespace blobseer::rpc {

/// Server-side request handler. Implementations must be thread-safe: the
/// TCP transport invokes Handle concurrently from connection threads.
class ServiceHandler {
 public:
  virtual ~ServiceHandler() = default;

  /// Handles one request; on success fills `*response` with the encoded
  /// response payload. A non-OK status is propagated to the caller verbatim.
  virtual Status Handle(Method method, Slice payload,
                        std::string* response) = 0;
};

/// Client-side connection to one service endpoint. Call is synchronous;
/// open several channels (see ChannelPool) for parallel requests.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual Status Call(Method method, Slice request, std::string* response) = 0;
};

/// Factory for channels and servers on one kind of network.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Starts serving `handler` at `address`; returns the concrete bound
  /// address (useful with ephemeral TCP ports).
  virtual Result<std::string> Serve(const std::string& address,
                                    std::shared_ptr<ServiceHandler> handler) = 0;

  /// Stops the server at `address`. In-flight requests drain; subsequent
  /// calls observe Unavailable.
  virtual Status StopServing(const std::string& address) = 0;

  /// Opens a channel to `address`.
  virtual Result<std::shared_ptr<Channel>> Connect(
      const std::string& address) = 0;
};

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_TRANSPORT_H_
