// Transport abstraction: the same services and clients run over in-process
// calls, TCP sockets, or the simnet virtual network.
#ifndef BLOBSEER_RPC_TRANSPORT_H_
#define BLOBSEER_RPC_TRANSPORT_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "rpc/wire.h"

namespace blobseer::rpc {

/// Completion callback for one handled request: application status plus the
/// encoded response payload (empty on error). Invoked exactly once — inline
/// or later from any thread.
using HandlerDone = std::function<void(Status, std::string)>;

/// Server-side request handler. Implementations must be thread-safe: the
/// TCP transport invokes handlers concurrently from its dispatch workers.
class ServiceHandler {
 public:
  virtual ~ServiceHandler() = default;

  /// Handles one request; on success fills `*response` with the encoded
  /// response payload. A non-OK status is propagated to the caller verbatim.
  virtual Status Handle(Method method, Slice payload,
                        std::string* response) = 0;

  /// Async completion path: the handler may return before the request is
  /// answered and invoke `done` later from another thread (server-push —
  /// e.g. a parked AwaitPublished subscription completed at publish time).
  /// `payload` is only borrowed for the duration of this call: a handler
  /// that parks the request must copy what it needs first. Every transport
  /// drives requests through this entry point; the default wraps the
  /// synchronous Handle and completes inline.
  virtual void HandleAsync(Method method, Slice payload, HandlerDone done) {
    std::string response;
    Status st = Handle(method, payload, &response);
    done(std::move(st), std::move(response));
  }
};

/// Completion callback for CallAsync: transport-or-application status plus
/// the decoded response payload (empty on error).
using CallCallback = HandlerDone;

/// Client-side connection to one service endpoint. Call blocks the caller;
/// CallAsync never parks a caller thread on transports with a native
/// implementation (inproc dispatches the handler inline, tcp pipelines
/// correlation-id-tagged frames and completes from a per-connection reader
/// thread — responses may complete out of request order — simnet completes
/// from a spawned sim task). Channels pipeline, so one channel already
/// overlaps requests; a ChannelPool adds client-side send parallelism.
class Channel {
 public:
  virtual ~Channel() = default;
  virtual Status Call(Method method, Slice request, std::string* response) = 0;

  /// Issues the request and returns without waiting for the response;
  /// `done` is invoked exactly once with the outcome. `request` is only
  /// borrowed for the duration of this call — implementations that defer
  /// transmission copy it. `done` may run on an internal transport thread:
  /// keep it cheap and never block it on another RPC's completion.
  ///
  /// The base implementation is a blocking fallback (performs Call inline,
  /// then invokes `done` on the calling thread) so every transport is
  /// async-capable; real transports override it.
  virtual void CallAsync(Method method, Slice request, CallCallback done) {
    std::string response;
    Status st = Call(method, request, &response);
    done(std::move(st), std::move(response));
  }
};

/// Factory for channels and servers on one kind of network.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Starts serving `handler` at `address`; returns the concrete bound
  /// address (useful with ephemeral TCP ports).
  virtual Result<std::string> Serve(const std::string& address,
                                    std::shared_ptr<ServiceHandler> handler) = 0;

  /// Stops the server at `address`. In-flight requests drain; subsequent
  /// calls observe Unavailable.
  virtual Status StopServing(const std::string& address) = 0;

  /// Opens a channel to `address`.
  virtual Result<std::shared_ptr<Channel>> Connect(
      const std::string& address) = 0;

  /// True when a channel binds to the endpoint instance at Connect time, so
  /// a channel opened before a server restart keeps failing Unavailable
  /// after it (TCP sockets, inproc registrations). Clients then reconnect
  /// (ChannelPool::Invalidate + Get) on Unavailable. The simulated network
  /// resolves the endpoint per call and overrides this to false — its
  /// failure semantics must not gain hidden retries.
  virtual bool binds_at_connect() const { return true; }
};

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_TRANSPORT_H_
