#include "rpc/service.h"

namespace blobseer::rpc {

void CompositeHandler::Register(uint32_t method_block_base,
                                std::shared_ptr<ServiceHandler> handler) {
  blocks_[method_block_base] = std::move(handler);
}

ServiceHandler* CompositeHandler::RouteFor(Method method) const {
  uint32_t base = (static_cast<uint32_t>(method) / 100) * 100;
  auto it = blocks_.find(base);
  return it == blocks_.end() ? nullptr : it->second.get();
}

Status CompositeHandler::Handle(Method method, Slice payload,
                                std::string* response) {
  ServiceHandler* target = RouteFor(method);
  if (!target)
    return Status::NotSupported(
        "no service for method block " +
        std::to_string((static_cast<uint32_t>(method) / 100) * 100));
  return target->Handle(method, payload, response);
}

void CompositeHandler::HandleAsync(Method method, Slice payload,
                                   HandlerDone done) {
  ServiceHandler* target = RouteFor(method);
  if (!target) {
    done(Status::NotSupported(
             "no service for method block " +
             std::to_string((static_cast<uint32_t>(method) / 100) * 100)),
         std::string());
    return;
  }
  target->HandleAsync(method, payload, std::move(done));
}

}  // namespace blobseer::rpc
