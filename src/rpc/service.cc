#include "rpc/service.h"

namespace blobseer::rpc {

void CompositeHandler::Register(uint32_t method_block_base,
                                std::shared_ptr<ServiceHandler> handler) {
  blocks_[method_block_base] = std::move(handler);
}

Status CompositeHandler::Handle(Method method, Slice payload,
                                std::string* response) {
  uint32_t base = (static_cast<uint32_t>(method) / 100) * 100;
  auto it = blocks_.find(base);
  if (it == blocks_.end())
    return Status::NotSupported("no service for method block " +
                                std::to_string(base));
  return it->second->Handle(method, payload, response);
}

}  // namespace blobseer::rpc
