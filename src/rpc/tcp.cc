#include "rpc/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <set>
#include <thread>
#include <vector>

#include "common/executor.h"

#include "common/logging.h"
#include "common/serde.h"
#include "common/string_util.h"

namespace blobseer::rpc {

namespace {

constexpr uint32_t kMaxFrame = 256u * 1024 * 1024;

Status ReadFull(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t r = ::recv(fd, p, n, 0);
    if (r == 0) return Status::Unavailable("connection closed");
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv: %s", strerror(errno)));
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("send: %s", strerror(errno)));
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos)
    return Status::InvalidArgument("address must be host:port: " + address);
  *host = address.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  char* end = nullptr;
  long p = strtol(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p < 0 || p > 65535)
    return Status::InvalidArgument("bad port in address: " + address);
  *port = static_cast<uint16_t>(p);
  return Status::OK();
}

Status FillSockaddr(const std::string& host, uint16_t port,
                    sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* h = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (host == "0.0.0.0" || host.empty()) {
    addr->sin_addr.s_addr = INADDR_ANY;
  } else if (inet_pton(AF_INET, h, &addr->sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 host: " + host);
  }
  return Status::OK();
}

// Request body: [u32 method][payload]; response body:
// [u8 code][u32 msg_len][msg][payload].
Status WriteResponse(int fd, const Status& st, Slice payload) {
  std::string head;
  uint32_t msg_len = static_cast<uint32_t>(st.message().size());
  uint64_t body = 1 + 4 + msg_len + (st.ok() ? payload.size() : 0);
  if (body > kMaxFrame) return Status::InvalidArgument("response too large");
  uint32_t len = static_cast<uint32_t>(body);
  head.append(reinterpret_cast<const char*>(&len), 4);
  uint8_t code = static_cast<uint8_t>(st.code());
  head.push_back(static_cast<char>(code));
  head.append(reinterpret_cast<const char*>(&msg_len), 4);
  head.append(st.message());
  BS_RETURN_NOT_OK(WriteFull(fd, head.data(), head.size()));
  if (st.ok() && !payload.empty())
    return WriteFull(fd, payload.data(), payload.size());
  return Status::OK();
}

}  // namespace

/// One listening endpoint with its accept loop and connection threads.
class TcpServer {
 public:
  TcpServer(int listen_fd, std::shared_ptr<ServiceHandler> handler)
      : listen_fd_(listen_fd), handler_(std::move(handler)) {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~TcpServer() {
    stop_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    accept_thread_.join();
    for (auto& t : conn_threads_) t.join();
  }

 private:
  void AcceptLoop() {
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (stop_.load()) return;
        if (errno == EINTR) continue;
        BS_LOG(Warn) << "accept failed: " << strerror(errno);
        return;
      }
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_.load()) {
        ::close(fd);
        return;
      }
      conn_fds_.insert(fd);
      conn_threads_.emplace_back([this, fd] { ConnLoop(fd); });
    }
  }

  void ConnLoop(int fd) {
    std::string body;
    for (;;) {
      uint32_t len = 0;
      if (!ReadFull(fd, &len, 4).ok()) break;
      if (len < 4 || len > kMaxFrame) break;
      body.resize(len);
      if (!ReadFull(fd, body.data(), len).ok()) break;
      uint32_t method;
      std::memcpy(&method, body.data(), 4);
      std::string response;
      Status st = handler_->Handle(static_cast<Method>(method),
                                   Slice(body.data() + 4, len - 4), &response);
      if (!WriteResponse(fd, st, Slice(response)).ok()) break;
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.erase(fd);
  }

  int listen_fd_;
  std::shared_ptr<ServiceHandler> handler_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::mutex mu_;
  std::set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

namespace {

/// Reads one response frame. The returned status is transport-level; on OK,
/// `*app_status` carries the application outcome and `*payload` the body.
Status ReadResponseFrame(int fd, Status* app_status, std::string* payload) {
  uint32_t rlen = 0;
  BS_RETURN_NOT_OK(ReadFull(fd, &rlen, 4));
  if (rlen < 5 || rlen > kMaxFrame)
    return Status::Corruption("bad response frame length");
  std::string frame;
  frame.resize(rlen);
  BS_RETURN_NOT_OK(ReadFull(fd, frame.data(), rlen));
  uint8_t code = static_cast<uint8_t>(frame[0]);
  uint32_t msg_len;
  std::memcpy(&msg_len, frame.data() + 1, 4);
  if (5 + static_cast<uint64_t>(msg_len) > rlen)
    return Status::Corruption("bad response message length");
  if (code != 0) {
    *app_status = Status::FromCode(static_cast<StatusCode>(code),
                                   frame.substr(5, msg_len));
    payload->clear();
  } else {
    *app_status = Status::OK();
    payload->assign(frame.data() + 5 + msg_len, rlen - 5 - msg_len);
  }
  return Status::OK();
}

/// Pipelined channel: requests are framed onto the connection as they
/// arrive (writers serialized under mu_) and a per-connection reader thread
/// matches responses to callbacks in FIFO order — the server processes each
/// connection sequentially, so response order equals request order. Call is
/// a thin park-on-event wrapper over CallAsync, and a caller thread is
/// never blocked on the network on the async path.
///
/// On connection failure every in-flight request is transparently re-issued
/// once over a fresh connection (handles servers restarted between calls;
/// safe for BlobSeer's idempotent request set), then failed.
class TcpChannel : public Channel {
 public:
  explicit TcpChannel(std::string address) : address_(std::move(address)) {}

  ~TcpChannel() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      // Wake the reader; it owns the fd and closes it on exit, failing any
      // still-pending callbacks (closed_ suppresses their retry).
      if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    }
    for (auto& t : readers_) t.join();
  }

  Status Call(Method method, Slice request, std::string* response) override {
    auto event = std::make_shared<CondVarWaitEvent>();
    Status result;
    CallAsync(method, request, [&, event](Status st, std::string payload) {
      result = std::move(st);
      *response = std::move(payload);
      event->Signal();
    });
    event->Await();
    return result;
  }

  void CallAsync(Method method, Slice request, CallCallback done) override {
    // Local validation failures never touch the wire, so they must not
    // disturb the healthy pipeline (Submit treats write failures as
    // connection failures and re-issues every in-flight request).
    if (4 + static_cast<uint64_t>(request.size()) > kMaxFrame) {
      done(Status::InvalidArgument("request too large"), std::string());
      return;
    }
    Pending p;
    p.method = static_cast<uint32_t>(method);
    p.request = request.ToString();  // retained for the transparent retry
    p.done = std::move(done);
    p.retried = false;
    Submit(std::move(p));
  }

 private:
  struct Pending {
    uint32_t method = 0;
    std::string request;
    CallCallback done;
    bool retried = false;
  };

  void Submit(Pending p) {
    Status failure;
    std::deque<Pending> orphans;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        failure = Status::Unavailable("channel closed: " + address_);
        orphans.push_back(std::move(p));
      } else {
        if (fd_ < 0) failure = ConnectLocked();
        if (failure.ok()) failure = WriteRequestLocked(p);
        if (failure.ok()) {
          pending_.push_back(std::move(p));
          return;
        }
        // A mid-pipeline write failure strands every in-flight request:
        // tear the connection down and take them all for retry/failure.
        if (fd_ >= 0) {
          ::shutdown(fd_, SHUT_RDWR);
          fd_ = -1;
          gen_++;
        }
        orphans.swap(pending_);
        orphans.push_back(std::move(p));
      }
    }
    FailOrRetry(std::move(orphans), failure);
  }

  /// Re-issues each orphaned request once; requests already retried (or
  /// arriving after close) complete with `cause`. Runs without mu_ held.
  void FailOrRetry(std::deque<Pending> orphans, const Status& cause) {
    for (auto& p : orphans) {
      if (p.retried) {
        p.done(cause, std::string());
      } else {
        p.retried = true;
        Submit(std::move(p));
      }
    }
  }

  Status ConnectLocked() {
    std::string host;
    uint16_t port;
    BS_RETURN_NOT_OK(ParseHostPort(address_, &host, &port));
    sockaddr_in addr;
    BS_RETURN_NOT_OK(FillSockaddr(host, port, &addr));
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Status::Unavailable(
          StrFormat("connect %s: %s", address_.c_str(), strerror(errno)));
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
    uint64_t gen = ++gen_;
    readers_.emplace_back([this, fd, gen] { ReaderLoop(fd, gen); });
    return Status::OK();
  }

  Status WriteRequestLocked(const Pending& p) {
    uint64_t body = 4 + p.request.size();
    if (body > kMaxFrame) return Status::InvalidArgument("request too large");
    uint32_t len = static_cast<uint32_t>(body);
    std::string head;
    head.append(reinterpret_cast<const char*>(&len), 4);
    head.append(reinterpret_cast<const char*>(&p.method), 4);
    BS_RETURN_NOT_OK(WriteFull(fd_, head.data(), head.size()));
    if (!p.request.empty())
      BS_RETURN_NOT_OK(WriteFull(fd_, p.request.data(), p.request.size()));
    return Status::OK();
  }

  void ReaderLoop(int fd, uint64_t gen) {
    for (;;) {
      Status app_status;
      std::string payload;
      Status rs = ReadResponseFrame(fd, &app_status, &payload);
      if (!rs.ok()) {
        std::deque<Pending> orphans;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (gen_ == gen) {
            // This connection is still current: this thread owns teardown.
            fd_ = -1;
            gen_++;
            orphans.swap(pending_);
          }
        }
        ::close(fd);
        FailOrRetry(std::move(orphans), rs);
        return;
      }
      CallCallback done;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (gen_ != gen) {
          // This connection was already torn down by a writer; it owns no
          // channel state anymore.
          ::close(fd);
          return;
        }
        if (pending_.empty()) {
          // Unsolicited response: protocol violation. Tear the connection
          // down exactly like a read failure so later Submits reconnect
          // instead of writing into a stale descriptor.
          fd_ = -1;
          gen_++;
          ::close(fd);
          return;
        }
        done = std::move(pending_.front().done);
        pending_.pop_front();
      }
      done(std::move(app_status), std::move(payload));
    }
  }

  std::string address_;
  std::mutex mu_;
  int fd_ = -1;
  uint64_t gen_ = 0;
  bool closed_ = false;
  std::deque<Pending> pending_;
  std::vector<std::thread> readers_;  // joined in the destructor
};

}  // namespace

TcpTransport::TcpTransport() = default;
TcpTransport::~TcpTransport() = default;

Result<std::string> TcpTransport::Serve(
    const std::string& address, std::shared_ptr<ServiceHandler> handler) {
  std::string host;
  uint16_t port;
  BS_RETURN_NOT_OK(ParseHostPort(address, &host, &port));
  sockaddr_in addr;
  BS_RETURN_NOT_OK(FillSockaddr(host, port, &addr));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError(
        StrFormat("bind %s: %s", address.c_str(), strerror(errno)));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::IOError("listen");
  }
  sockaddr_in bound;
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    ::close(fd);
    return Status::IOError("getsockname");
  }
  char ip[INET_ADDRSTRLEN];
  inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof(ip));
  std::string bound_addr =
      StrFormat("%s:%u", host == "0.0.0.0" ? "127.0.0.1" : ip,
                static_cast<unsigned>(ntohs(bound.sin_port)));

  std::lock_guard<std::mutex> lock(mu_);
  if (servers_.count(bound_addr)) {
    ::close(fd);
    return Status::AlreadyExists("already serving: " + bound_addr);
  }
  servers_[bound_addr] = std::make_unique<TcpServer>(fd, std::move(handler));
  return bound_addr;
}

Status TcpTransport::StopServing(const std::string& address) {
  std::unique_ptr<TcpServer> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = servers_.find(address);
    if (it == servers_.end()) return Status::NotFound("server: " + address);
    victim = std::move(it->second);
    servers_.erase(it);
  }
  return Status::OK();  // destructor joins threads
}

Result<std::shared_ptr<Channel>> TcpTransport::Connect(
    const std::string& address) {
  return std::shared_ptr<Channel>(std::make_shared<TcpChannel>(address));
}

}  // namespace blobseer::rpc
