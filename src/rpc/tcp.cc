#include "rpc/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/logging.h"
#include "common/serde.h"
#include "common/string_util.h"

namespace blobseer::rpc {

namespace {

constexpr uint32_t kMaxFrame = 256u * 1024 * 1024;
/// Request body prefix: [u64 corr_id][u32 method].
constexpr uint32_t kReqHeaderBytes = 12;
/// Response body prefix: [u64 corr_id][u8 code][u32 msg_len].
constexpr uint32_t kRspHeaderBytes = 13;

Status ReadFull(int fd, void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t r = ::recv(fd, p, n, 0);
    if (r == 0) return Status::Unavailable("connection closed");
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv: %s", strerror(errno)));
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("send: %s", strerror(errno)));
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos)
    return Status::InvalidArgument("address must be host:port: " + address);
  *host = address.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  char* end = nullptr;
  long p = strtol(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p < 0 || p > 65535)
    return Status::InvalidArgument("bad port in address: " + address);
  *port = static_cast<uint16_t>(p);
  return Status::OK();
}

Status FillSockaddr(const std::string& host, uint16_t port,
                    sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* h = host == "localhost" ? "127.0.0.1" : host.c_str();
  if (host == "0.0.0.0" || host.empty()) {
    addr->sin_addr.s_addr = INADDR_ANY;
  } else if (inet_pton(AF_INET, h, &addr->sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 host: " + host);
  }
  return Status::OK();
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Encodes a complete response frame (see rpc/wire.h frame format v2).
std::string EncodeResponseFrame(uint64_t corr, const Status& st,
                                const std::string& payload) {
  uint32_t msg_len = static_cast<uint32_t>(st.message().size());
  uint64_t body = kRspHeaderBytes + msg_len + (st.ok() ? payload.size() : 0);
  if (body > kMaxFrame) {
    // Oversized response: fail the call instead of corrupting the stream.
    Status err = Status::InvalidArgument("response too large");
    return EncodeResponseFrame(corr, err, std::string());
  }
  std::string frame;
  frame.reserve(4 + body);
  uint32_t len = static_cast<uint32_t>(body);
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&corr), 8);
  frame.push_back(static_cast<char>(static_cast<uint8_t>(st.code())));
  frame.append(reinterpret_cast<const char*>(&msg_len), 4);
  frame.append(st.message());
  if (st.ok()) frame.append(payload);
  return frame;
}

}  // namespace

/// One listening endpoint, served by an epoll reactor thread.
///
/// The reactor owns every socket: it accepts connections, reads and parses
/// request frames, and writes response frames. Requests are dispatched to
/// the transport's worker executor, which invokes the service handler's
/// async entry point; the completion callback enqueues the encoded response
/// frame back to the reactor (eventfd wakeup), which writes it out whenever
/// the socket accepts it. Responses therefore leave in *completion* order —
/// a held call (e.g. a parked AwaitPublished subscription) does not block
/// the requests pipelined behind it on the same connection, and an idle
/// hold costs no thread anywhere.
///
/// Completion callbacks may outlive both their connection and this server
/// (a subscription can fire after StopServing); they reach the reactor only
/// through a shared Core with an `alive` flag, so late completions are
/// dropped instead of touching freed state.
class TcpServer {
 public:
  TcpServer(int listen_fd, std::shared_ptr<ServiceHandler> handler,
            Executor* dispatch)
      : listen_fd_(listen_fd),
        handler_(std::move(handler)),
        dispatch_(dispatch),
        core_(std::make_shared<Core>()) {
    SetNonBlocking(listen_fd_);
    epoll_fd_ = ::epoll_create1(0);
    BS_CHECK(epoll_fd_ >= 0) << "epoll_create1: " << strerror(errno);
    core_->wake_fd = ::eventfd(0, EFD_NONBLOCK);
    BS_CHECK(core_->wake_fd >= 0) << "eventfd: " << strerror(errno);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &listen_tag_;
    BS_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
    ev.data.ptr = &wake_tag_;
    BS_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, core_->wake_fd, &ev) == 0);
    reactor_ = std::thread([this] { ReactorLoop(); });
  }

  ~TcpServer() {
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      core_->stop = true;
      core_->WakeLocked();
    }
    reactor_.join();
    // In-flight handler invocations drain on the transport's dispatch
    // executor; their completions see core_->alive == false and drop.
  }

 private:
  struct Conn {
    int fd = -1;
    /// Set (under Core::mu) by the reactor when the connection dies; late
    /// completions for it are discarded.
    bool closed = false;
    // Reactor-thread-only state below.
    std::string inbuf;
    size_t inpos = 0;
    std::deque<std::string> outq;  ///< encoded frames awaiting the socket
    size_t outpos = 0;             ///< bytes of outq.front() already sent
    bool want_write = false;       ///< EPOLLOUT interest registered
  };

  /// State shared with handler-completion callbacks.
  struct Core {
    std::mutex mu;
    bool alive = true;
    bool stop = false;
    int wake_fd = -1;
    std::deque<std::pair<std::shared_ptr<Conn>, std::string>> completions;

    void WakeLocked() {
      if (wake_fd < 0) return;
      uint64_t one = 1;
      ssize_t r = ::write(wake_fd, &one, sizeof(one));
      (void)r;  // EAGAIN (counter saturated) still leaves the fd readable
    }

    void EnqueueResponse(std::shared_ptr<Conn> conn, std::string frame) {
      std::lock_guard<std::mutex> lock(mu);
      if (!alive || conn->closed) return;
      completions.emplace_back(std::move(conn), std::move(frame));
      WakeLocked();
    }
  };

  void ReactorLoop() {
    epoll_event events[64];
    for (;;) {
      int n = ::epoll_wait(epoll_fd_, events, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        BS_LOG(Warn) << "epoll_wait: " << strerror(errno);
        break;
      }
      bool stop = false;
      for (int i = 0; i < n; i++) {
        void* tag = events[i].data.ptr;
        if (tag == &listen_tag_) {
          AcceptReady();
        } else if (tag == &wake_tag_) {
          uint64_t drain;
          while (::read(core_->wake_fd, &drain, sizeof(drain)) > 0) {
          }
          DrainCompletions();
          std::lock_guard<std::mutex> lock(core_->mu);
          stop = core_->stop;
        } else {
          Conn* c = static_cast<Conn*>(tag);
          // The conn may have been closed by an earlier event in this
          // batch; its epoll registration is gone then, but the kernel can
          // still deliver events armed before the EPOLL_CTL_DEL.
          auto it = conns_.find(c->fd);
          if (it == conns_.end() || it->second.get() != c) continue;
          if (events[i].events & (EPOLLERR | EPOLLHUP)) {
            CloseConn(it->second);
            continue;
          }
          if (events[i].events & EPOLLIN) {
            if (!ReadReady(it->second)) continue;  // closed
          }
          if (events[i].events & EPOLLOUT) FlushWrites(it->second);
        }
      }
      if (stop) break;
    }
    // Teardown on the reactor thread: close every socket, then mark the
    // core dead so late completions become no-ops.
    std::vector<std::shared_ptr<Conn>> victims;
    for (auto& [fd, conn] : conns_) victims.push_back(conn);
    for (auto& conn : victims) CloseConn(conn);
    ::close(listen_fd_);
    ::close(epoll_fd_);
    std::lock_guard<std::mutex> lock(core_->mu);
    core_->alive = false;
    ::close(core_->wake_fd);
    core_->wake_fd = -1;
    core_->completions.clear();
  }

  void AcceptReady() {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno != ECONNABORTED) {
          BS_LOG(Warn) << "accept failed: " << strerror(errno);
        }
        return;
      }
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      conns_.emplace(fd, std::move(conn));
    }
  }

  /// Returns false when the connection was closed.
  bool ReadReady(const std::shared_ptr<Conn>& conn) {
    Conn* c = conn.get();
    char buf[64 * 1024];
    for (;;) {
      ssize_t r = ::recv(c->fd, buf, sizeof(buf), 0);
      if (r > 0) {
        c->inbuf.append(buf, static_cast<size_t>(r));
        if (r < static_cast<ssize_t>(sizeof(buf))) break;
        continue;
      }
      if (r == 0) {
        CloseConn(conn);
        return false;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(conn);
      return false;
    }
    return ParseFrames(conn);
  }

  /// Splits the connection's input buffer into request frames and
  /// dispatches each; returns false if a malformed frame closed the
  /// connection.
  bool ParseFrames(const std::shared_ptr<Conn>& conn) {
    Conn* c = conn.get();
    for (;;) {
      size_t avail = c->inbuf.size() - c->inpos;
      if (avail < 4) break;
      uint32_t len;
      std::memcpy(&len, c->inbuf.data() + c->inpos, 4);
      if (len < kReqHeaderBytes || len > kMaxFrame) {
        CloseConn(conn);
        return false;
      }
      if (avail < 4 + static_cast<uint64_t>(len)) break;
      const char* body = c->inbuf.data() + c->inpos + 4;
      uint64_t corr;
      uint32_t method;
      std::memcpy(&corr, body, 8);
      std::memcpy(&method, body + 8, 4);
      std::string payload(body + kReqHeaderBytes, len - kReqHeaderBytes);
      c->inpos += 4 + len;
      Dispatch(conn, corr, method, std::move(payload));
    }
    if (c->inpos > 0) {
      c->inbuf.erase(0, c->inpos);
      c->inpos = 0;
    }
    return true;
  }

  void Dispatch(std::shared_ptr<Conn> conn, uint64_t corr, uint32_t method,
                std::string payload) {
    // The dispatch task owns the handler (keeps the service alive past
    // StopServing while it runs) and the payload (HandleAsync only borrows
    // it); the completion needs neither — just the route back.
    dispatch_->Schedule([handler = handler_, core = core_,
                         conn = std::move(conn), corr, method,
                         payload = std::move(payload)] {
      handler->HandleAsync(
          static_cast<Method>(method), Slice(payload),
          [core, conn, corr](Status st, std::string rsp) {
            core->EnqueueResponse(conn, EncodeResponseFrame(corr, st, rsp));
          });
    });
  }

  void DrainCompletions() {
    std::deque<std::pair<std::shared_ptr<Conn>, std::string>> batch;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      batch.swap(core_->completions);
    }
    for (auto& [conn, frame] : batch) {
      if (conn->closed) continue;
      conn->outq.push_back(std::move(frame));
      FlushWrites(conn);
    }
  }

  void FlushWrites(const std::shared_ptr<Conn>& conn) {
    Conn* c = conn.get();
    if (c->closed) return;
    while (!c->outq.empty()) {
      const std::string& front = c->outq.front();
      ssize_t r = ::send(c->fd, front.data() + c->outpos,
                         front.size() - c->outpos, MSG_NOSIGNAL);
      if (r >= 0) {
        c->outpos += static_cast<size_t>(r);
        if (c->outpos == front.size()) {
          c->outq.pop_front();
          c->outpos = 0;
        }
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SetWriteInterest(c, true);
        return;
      }
      CloseConn(conn);
      return;
    }
    SetWriteInterest(c, false);
  }

  void SetWriteInterest(Conn* c, bool want) {
    if (c->want_write == want) return;
    c->want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.ptr = c;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void CloseConn(const std::shared_ptr<Conn>& conn) {
    Conn* c = conn.get();
    if (c->closed) return;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      c->closed = true;
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    conns_.erase(c->fd);
  }

  int listen_fd_;
  int epoll_fd_ = -1;
  int listen_tag_ = 0;  ///< epoll data.ptr sentinel for the listen socket
  int wake_tag_ = 0;    ///< epoll data.ptr sentinel for the wake eventfd
  std::shared_ptr<ServiceHandler> handler_;
  Executor* dispatch_;
  std::shared_ptr<Core> core_;
  std::map<int, std::shared_ptr<Conn>> conns_;  // reactor-thread only
  std::thread reactor_;
};

namespace {

/// Reads one response frame. The returned status is transport-level; on OK,
/// `*corr` identifies the request, `*app_status` carries the application
/// outcome and `*payload` the body.
Status ReadResponseFrame(int fd, uint64_t* corr, Status* app_status,
                         std::string* payload) {
  uint32_t rlen = 0;
  BS_RETURN_NOT_OK(ReadFull(fd, &rlen, 4));
  if (rlen < kRspHeaderBytes || rlen > kMaxFrame)
    return Status::Corruption("bad response frame length");
  std::string frame;
  frame.resize(rlen);
  BS_RETURN_NOT_OK(ReadFull(fd, frame.data(), rlen));
  std::memcpy(corr, frame.data(), 8);
  uint8_t code = static_cast<uint8_t>(frame[8]);
  uint32_t msg_len;
  std::memcpy(&msg_len, frame.data() + 9, 4);
  if (kRspHeaderBytes + static_cast<uint64_t>(msg_len) > rlen)
    return Status::Corruption("bad response message length");
  if (code != 0) {
    *app_status = Status::FromCode(static_cast<StatusCode>(code),
                                   frame.substr(kRspHeaderBytes, msg_len));
    payload->clear();
  } else {
    *app_status = Status::OK();
    payload->assign(frame.data() + kRspHeaderBytes + msg_len,
                    rlen - kRspHeaderBytes - msg_len);
  }
  return Status::OK();
}

/// Pipelined channel: requests are framed onto the connection as they
/// arrive (writers serialized under mu_) carrying a per-channel correlation
/// id, and a per-connection reader thread matches each response to its
/// callback by that id — responses complete in whatever order the server
/// finishes them. Call is a thin park-on-event wrapper over CallAsync, and
/// a caller thread is never blocked on the network on the async path.
///
/// On connection failure every in-flight request is transparently re-issued
/// once over a fresh connection (handles servers restarted between calls;
/// safe for BlobSeer's idempotent request set), then failed.
class TcpChannel : public Channel {
 public:
  explicit TcpChannel(std::string address) : address_(std::move(address)) {}

  ~TcpChannel() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      // Wake the reader; it owns the fd and closes it on exit, failing any
      // still-pending callbacks (closed_ suppresses their retry).
      if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    }
    for (auto& t : readers_) t.join();
  }

  Status Call(Method method, Slice request, std::string* response) override {
    auto event = std::make_shared<CondVarWaitEvent>();
    Status result;
    CallAsync(method, request, [&, event](Status st, std::string payload) {
      result = std::move(st);
      *response = std::move(payload);
      event->Signal();
    });
    event->Await();
    return result;
  }

  void CallAsync(Method method, Slice request, CallCallback done) override {
    // Local validation failures never touch the wire, so they must not
    // disturb the healthy pipeline (Submit treats write failures as
    // connection failures and re-issues every in-flight request).
    if (kReqHeaderBytes + static_cast<uint64_t>(request.size()) > kMaxFrame) {
      done(Status::InvalidArgument("request too large"), std::string());
      return;
    }
    Pending p;
    p.method = static_cast<uint32_t>(method);
    p.request = request.ToString();  // retained for the transparent retry
    p.done = std::move(done);
    p.retried = false;
    Submit(std::move(p));
  }

 private:
  struct Pending {
    uint32_t method = 0;
    std::string request;
    CallCallback done;
    bool retried = false;
  };

  void Submit(Pending p) {
    Status failure;
    std::deque<Pending> orphans;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        failure = Status::Unavailable("channel closed: " + address_);
        orphans.push_back(std::move(p));
      } else {
        if (fd_ < 0) failure = ConnectLocked();
        if (failure.ok()) {
          uint64_t corr = next_corr_++;
          failure = WriteRequestLocked(corr, p);
          if (failure.ok()) {
            pending_.emplace(corr, std::move(p));
            return;
          }
        }
        // A mid-pipeline write failure strands every in-flight request:
        // tear the connection down and take them all for retry/failure.
        if (fd_ >= 0) {
          ::shutdown(fd_, SHUT_RDWR);
          fd_ = -1;
          gen_++;
        }
        orphans = TakeAllPendingLocked();
        orphans.push_back(std::move(p));
      }
    }
    FailOrRetry(std::move(orphans), failure);
  }

  std::deque<Pending> TakeAllPendingLocked() {
    std::deque<Pending> out;
    for (auto& [corr, p] : pending_) out.push_back(std::move(p));
    pending_.clear();
    return out;
  }

  /// Re-issues each orphaned request once; requests already retried (or
  /// arriving after close) complete with `cause`. Runs without mu_ held.
  void FailOrRetry(std::deque<Pending> orphans, const Status& cause) {
    for (auto& p : orphans) {
      if (p.retried) {
        p.done(cause, std::string());
      } else {
        p.retried = true;
        Submit(std::move(p));
      }
    }
  }

  Status ConnectLocked() {
    std::string host;
    uint16_t port;
    BS_RETURN_NOT_OK(ParseHostPort(address_, &host, &port));
    sockaddr_in addr;
    BS_RETURN_NOT_OK(FillSockaddr(host, port, &addr));
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return Status::Unavailable(
          StrFormat("connect %s: %s", address_.c_str(), strerror(errno)));
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;
    uint64_t gen = ++gen_;
    readers_.emplace_back([this, fd, gen] { ReaderLoop(fd, gen); });
    return Status::OK();
  }

  Status WriteRequestLocked(uint64_t corr, const Pending& p) {
    uint64_t body = kReqHeaderBytes + p.request.size();
    if (body > kMaxFrame) return Status::InvalidArgument("request too large");
    uint32_t len = static_cast<uint32_t>(body);
    std::string head;
    head.append(reinterpret_cast<const char*>(&len), 4);
    head.append(reinterpret_cast<const char*>(&corr), 8);
    head.append(reinterpret_cast<const char*>(&p.method), 4);
    BS_RETURN_NOT_OK(WriteFull(fd_, head.data(), head.size()));
    if (!p.request.empty())
      BS_RETURN_NOT_OK(WriteFull(fd_, p.request.data(), p.request.size()));
    return Status::OK();
  }

  void ReaderLoop(int fd, uint64_t gen) {
    for (;;) {
      uint64_t corr = 0;
      Status app_status;
      std::string payload;
      Status rs = ReadResponseFrame(fd, &corr, &app_status, &payload);
      if (!rs.ok()) {
        std::deque<Pending> orphans;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (gen_ == gen) {
            // This connection is still current: this thread owns teardown.
            fd_ = -1;
            gen_++;
            orphans = TakeAllPendingLocked();
          }
        }
        ::close(fd);
        FailOrRetry(std::move(orphans), rs);
        return;
      }
      CallCallback done;
      bool protocol_violation = false;
      std::deque<Pending> orphans;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (gen_ != gen) {
          // This connection was already torn down by a writer; it owns no
          // channel state anymore.
          ::close(fd);
          return;
        }
        auto it = pending_.find(corr);
        if (it == pending_.end()) {
          // Unknown correlation id: protocol violation. Tear the
          // connection down like a read failure (remaining in-flight
          // requests retry over a fresh connection) so later Submits
          // never write into a stream we no longer trust.
          fd_ = -1;
          gen_++;
          orphans = TakeAllPendingLocked();
          protocol_violation = true;
        } else {
          done = std::move(it->second.done);
          pending_.erase(it);
        }
      }
      if (protocol_violation) {
        ::close(fd);
        FailOrRetry(std::move(orphans),
                    Status::Corruption("unknown correlation id"));
        return;
      }
      done(std::move(app_status), std::move(payload));
    }
  }

  std::string address_;
  std::mutex mu_;
  int fd_ = -1;
  uint64_t gen_ = 0;
  uint64_t next_corr_ = 1;
  bool closed_ = false;
  std::map<uint64_t, Pending> pending_;  ///< corr id -> in-flight request
  std::vector<std::thread> readers_;     // joined in the destructor
};

}  // namespace

TcpTransport::TcpTransport() = default;
TcpTransport::~TcpTransport() = default;

Result<std::string> TcpTransport::Serve(
    const std::string& address, std::shared_ptr<ServiceHandler> handler) {
  std::string host;
  uint16_t port;
  BS_RETURN_NOT_OK(ParseHostPort(address, &host, &port));
  sockaddr_in addr;
  BS_RETURN_NOT_OK(FillSockaddr(host, port, &addr));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError(
        StrFormat("bind %s: %s", address.c_str(), strerror(errno)));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::IOError("listen");
  }
  sockaddr_in bound;
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    ::close(fd);
    return Status::IOError("getsockname");
  }
  char ip[INET_ADDRSTRLEN];
  inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof(ip));
  std::string bound_addr =
      StrFormat("%s:%u", host == "0.0.0.0" ? "127.0.0.1" : ip,
                static_cast<unsigned>(ntohs(bound.sin_port)));

  std::lock_guard<std::mutex> lock(mu_);
  if (servers_.count(bound_addr)) {
    ::close(fd);
    return Status::AlreadyExists("already serving: " + bound_addr);
  }
  // The dispatch workers are shared by every server on this transport and
  // created lazily so client-only transports never spawn them.
  if (!dispatch_)
    dispatch_ = std::make_unique<ThreadPoolExecutor>(kDispatchThreads);
  servers_[bound_addr] =
      std::make_unique<TcpServer>(fd, std::move(handler), dispatch_.get());
  return bound_addr;
}

Status TcpTransport::StopServing(const std::string& address) {
  std::unique_ptr<TcpServer> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = servers_.find(address);
    if (it == servers_.end()) return Status::NotFound("server: " + address);
    victim = std::move(it->second);
    servers_.erase(it);
  }
  return Status::OK();  // destructor joins the reactor thread
}

Result<std::shared_ptr<Channel>> TcpTransport::Connect(
    const std::string& address) {
  return std::shared_ptr<Channel>(std::make_shared<TcpChannel>(address));
}

}  // namespace blobseer::rpc
