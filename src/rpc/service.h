// Helpers for composing multiple services behind one endpoint (the paper
// co-deploys a data provider and a metadata provider per node).
#ifndef BLOBSEER_RPC_SERVICE_H_
#define BLOBSEER_RPC_SERVICE_H_

#include <map>
#include <memory>
#include <vector>

#include "rpc/transport.h"

namespace blobseer::rpc {

/// Routes each method-id block to the service registered for it, so one
/// endpoint can host e.g. both a DHT node and a data provider.
class CompositeHandler : public ServiceHandler {
 public:
  /// Registers `handler` for the method block [base, base+100).
  void Register(uint32_t method_block_base,
                std::shared_ptr<ServiceHandler> handler);

  Status Handle(Method method, Slice payload, std::string* response) override;
  void HandleAsync(Method method, Slice payload, HandlerDone done) override;

 private:
  /// nullptr when no service owns the method's block.
  ServiceHandler* RouteFor(Method method) const;

  std::map<uint32_t, std::shared_ptr<ServiceHandler>> blocks_;
};

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_SERVICE_H_
