// TCP socket transport: length-prefixed frames, one OS thread per accepted
// connection (appropriate for the deployment sizes BlobSeer targets per
// node: tens of concurrent clients).
#ifndef BLOBSEER_RPC_TCP_H_
#define BLOBSEER_RPC_TCP_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "rpc/transport.h"

namespace blobseer::rpc {

class TcpServer;

/// Transport over real sockets. Addresses are "host:port"; serve with port 0
/// to bind an ephemeral port (the returned address carries the real one).
class TcpTransport : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  Result<std::string> Serve(const std::string& address,
                            std::shared_ptr<ServiceHandler> handler) override;
  Status StopServing(const std::string& address) override;
  Result<std::shared_ptr<Channel>> Connect(const std::string& address) override;

 private:
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<TcpServer>> servers_;
};

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_TCP_H_
