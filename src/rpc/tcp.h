// TCP socket transport: length-prefixed, correlation-id-tagged frames served
// by one epoll reactor thread per listening endpoint. The reactor never runs
// application code — requests are handed to a shared dispatch pool and the
// encoded responses are written back in completion order, so a held call
// (e.g. a parked AwaitPublished subscription) blocks neither its connection
// nor a server thread.
#ifndef BLOBSEER_RPC_TCP_H_
#define BLOBSEER_RPC_TCP_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/executor.h"
#include "rpc/transport.h"

namespace blobseer::rpc {

class TcpServer;

/// Transport over real sockets. Addresses are "host:port"; serve with port 0
/// to bind an ephemeral port (the returned address carries the real one).
class TcpTransport : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  Result<std::string> Serve(const std::string& address,
                            std::shared_ptr<ServiceHandler> handler) override;
  Status StopServing(const std::string& address) override;
  Result<std::shared_ptr<Channel>> Connect(const std::string& address) override;

 private:
  /// Handler-dispatch workers shared by every server on this transport.
  static constexpr size_t kDispatchThreads = 16;

  std::mutex mu_;
  // Declared before servers_ so it is destroyed after them: server teardown
  // only joins the reactor; in-flight handler tasks drain here.
  std::unique_ptr<ThreadPoolExecutor> dispatch_;
  std::map<std::string, std::unique_ptr<TcpServer>> servers_;
};

}  // namespace blobseer::rpc

#endif  // BLOBSEER_RPC_TCP_H_
