#include "dht/store.h"

#include "common/hash.h"

namespace blobseer::dht {

KvStore::KvStore(size_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

size_t KvStore::ShardFor(Slice key) const {
  return static_cast<size_t>(Fnv1a64(key)) % shards_.size();
}

Status KvStore::Put(Slice key, Slice value) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  Shard& s = shards_[ShardFor(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(std::string(key.data(), key.size()));
  if (it == s.map.end()) {
    s.map.emplace(key.ToString(), value.ToString());
    keys_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(key.size() + value.size(), std::memory_order_relaxed);
  } else {
    bytes_.fetch_sub(it->second.size(), std::memory_order_relaxed);
    it->second = value.ToString();
    bytes_.fetch_add(value.size(), std::memory_order_relaxed);
  }
  return Status::OK();
}

Status KvStore::Get(Slice key, std::string* value) {
  gets_.fetch_add(1, std::memory_order_relaxed);
  Shard& s = shards_[ShardFor(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(std::string(key.data(), key.size()));
  if (it == s.map.end()) return Status::NotFound("dht key");
  hits_.fetch_add(1, std::memory_order_relaxed);
  *value = it->second;
  return Status::OK();
}

Status KvStore::Delete(Slice key) {
  deletes_.fetch_add(1, std::memory_order_relaxed);
  Shard& s = shards_[ShardFor(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(std::string(key.data(), key.size()));
  if (it != s.map.end()) {
    bytes_.fetch_sub(it->first.size() + it->second.size(),
                     std::memory_order_relaxed);
    keys_.fetch_sub(1, std::memory_order_relaxed);
    s.map.erase(it);
  }
  return Status::OK();
}

Status KvStore::Cas(Slice key, Slice expected, Slice value,
                    bool expect_absent, bool* applied, bool* present,
                    std::string* current) {
  *applied = false;
  Shard& s = shards_[ShardFor(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(std::string(key.data(), key.size()));
  const bool exists = it != s.map.end();
  const bool match = expect_absent
                         ? !exists
                         : exists && Slice(it->second) == expected;
  if (match) {
    puts_.fetch_add(1, std::memory_order_relaxed);
    if (exists) {
      bytes_.fetch_sub(it->second.size(), std::memory_order_relaxed);
      it->second = value.ToString();
      bytes_.fetch_add(value.size(), std::memory_order_relaxed);
    } else {
      s.map.emplace(key.ToString(), value.ToString());
      keys_.fetch_add(1, std::memory_order_relaxed);
      bytes_.fetch_add(key.size() + value.size(), std::memory_order_relaxed);
    }
    *applied = true;
    *present = true;
    *current = value.ToString();
    return Status::OK();
  }
  *present = exists;
  *current = exists ? it->second : std::string();
  return Status::OK();
}

StoreStats KvStore::GetStats() const {
  StoreStats st;
  st.keys = keys_.load();
  st.bytes = bytes_.load();
  st.puts = puts_.load();
  st.gets = gets_.load();
  st.hits = hits_.load();
  st.deletes = deletes_.load();
  return st;
}

}  // namespace blobseer::dht
