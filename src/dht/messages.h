// Wire messages for the DHT (metadata provider) service.
#ifndef BLOBSEER_DHT_MESSAGES_H_
#define BLOBSEER_DHT_MESSAGES_H_

#include <string>
#include <vector>

#include "common/serde.h"

namespace blobseer::dht {

struct PutRequest {
  std::string key;
  std::string value;
  void EncodeTo(BinaryWriter* w) const {
    w->PutString(key);
    w->PutString(value);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetString(&key));
    return r->GetString(&value);
  }
};

struct PutResponse {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct GetRequest {
  std::string key;
  void EncodeTo(BinaryWriter* w) const { w->PutString(key); }
  Status DecodeFrom(BinaryReader* r) { return r->GetString(&key); }
};

struct GetResponse {
  std::string value;
  void EncodeTo(BinaryWriter* w) const { w->PutString(value); }
  Status DecodeFrom(BinaryReader* r) { return r->GetString(&value); }
};

struct DeleteRequest {
  std::string key;
  void EncodeTo(BinaryWriter* w) const { w->PutString(key); }
  Status DecodeFrom(BinaryReader* r) { return r->GetString(&key); }
};

struct DeleteResponse {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

/// Single-key compare-and-swap: installs `value` iff the stored value
/// equals `expected` (or iff the key is absent, with `expect_absent`). A
/// mismatch is a *successful* RPC (applied = false, current bytes
/// returned), so callers can re-learn and retry without conflating
/// conflicts with transport failures. The location index (src/locator)
/// serializes replica-set reconfigurations through this.
struct CasRequest {
  std::string key;
  std::string expected;  // ignored when expect_absent
  std::string value;
  bool expect_absent = false;
  void EncodeTo(BinaryWriter* w) const {
    w->PutString(key);
    w->PutString(expected);
    w->PutString(value);
    w->PutBool(expect_absent);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetString(&key));
    BS_RETURN_NOT_OK(r->GetString(&expected));
    BS_RETURN_NOT_OK(r->GetString(&value));
    return r->GetBool(&expect_absent);
  }
};

struct CasResponse {
  bool applied = false;
  /// Whether the key exists after the call; `current` holds its bytes then
  /// (the new value on success, the conflicting one on mismatch).
  bool present = false;
  std::string current;
  void EncodeTo(BinaryWriter* w) const {
    w->PutBool(applied);
    w->PutBool(present);
    w->PutString(current);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetBool(&applied));
    BS_RETURN_NOT_OK(r->GetBool(&present));
    return r->GetString(&current);
  }
};

struct MultiGetRequest {
  std::vector<std::string> keys;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU32(static_cast<uint32_t>(keys.size()));
    for (const auto& k : keys) w->PutString(k);
  }
  Status DecodeFrom(BinaryReader* r) {
    uint32_t n;
    BS_RETURN_NOT_OK(r->GetU32(&n));
    // Each key costs at least its 4-byte length prefix.
    if (static_cast<uint64_t>(n) * 4 > r->remaining())
      return Status::Corruption("multiget count exceeds payload");
    keys.resize(n);
    for (auto& k : keys) BS_RETURN_NOT_OK(r->GetString(&k));
    return Status::OK();
  }
};

struct MultiGetResponse {
  /// found[i] says whether keys[i] existed; values carries entries only for
  /// found keys, in order.
  std::vector<uint8_t> found;
  std::vector<std::string> values;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU32(static_cast<uint32_t>(found.size()));
    for (uint8_t f : found) w->PutU8(f);
    w->PutU32(static_cast<uint32_t>(values.size()));
    for (const auto& v : values) w->PutString(v);
  }
  Status DecodeFrom(BinaryReader* r) {
    uint32_t n;
    BS_RETURN_NOT_OK(r->GetU32(&n));
    if (n > r->remaining())
      return Status::Corruption("multiget found-count exceeds payload");
    found.resize(n);
    for (auto& f : found) BS_RETURN_NOT_OK(r->GetU8(&f));
    BS_RETURN_NOT_OK(r->GetU32(&n));
    if (static_cast<uint64_t>(n) * 4 > r->remaining())
      return Status::Corruption("multiget value-count exceeds payload");
    values.resize(n);
    for (auto& v : values) BS_RETURN_NOT_OK(r->GetString(&v));
    return Status::OK();
  }
};

struct StatsRequest {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct StatsResponse {
  uint64_t keys = 0;
  uint64_t bytes = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t hits = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(keys);
    w->PutU64(bytes);
    w->PutU64(puts);
    w->PutU64(gets);
    w->PutU64(hits);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&keys));
    BS_RETURN_NOT_OK(r->GetU64(&bytes));
    BS_RETURN_NOT_OK(r->GetU64(&puts));
    BS_RETURN_NOT_OK(r->GetU64(&gets));
    return r->GetU64(&hits);
  }
};

}  // namespace blobseer::dht

#endif  // BLOBSEER_DHT_MESSAGES_H_
