// Key-to-node placement strategies. The paper's prototype used a "simple
// static distribution scheme"; we provide that plus a consistent-hash ring
// as an extension.
#ifndef BLOBSEER_DHT_PLACEMENT_H_
#define BLOBSEER_DHT_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/slice.h"

namespace blobseer::dht {

/// Maps keys to node indices in [0, num_nodes).
class Placement {
 public:
  virtual ~Placement() = default;

  /// Primary node for a key.
  virtual size_t NodeFor(Slice key) const = 0;

  /// `replicas` distinct nodes for a key, primary first. If fewer nodes than
  /// replicas exist, returns all nodes.
  virtual std::vector<size_t> ReplicaNodes(Slice key, size_t replicas) const;

  virtual size_t num_nodes() const = 0;
};

/// Paper-faithful static distribution: hash(key) mod n.
class StaticPlacement : public Placement {
 public:
  explicit StaticPlacement(size_t num_nodes);
  size_t NodeFor(Slice key) const override;
  size_t num_nodes() const override { return num_nodes_; }

 private:
  size_t num_nodes_;
};

/// Consistent-hash ring with virtual nodes: stable placement when nodes join
/// or leave (extension; exercised in tests, not required by the paper).
class RingPlacement : public Placement {
 public:
  RingPlacement(size_t num_nodes, size_t vnodes_per_node = 64);
  size_t NodeFor(Slice key) const override;
  std::vector<size_t> ReplicaNodes(Slice key, size_t replicas) const override;
  size_t num_nodes() const override { return num_nodes_; }

 private:
  size_t num_nodes_;
  std::vector<std::pair<uint64_t, uint32_t>> ring_;  // (hash, node) sorted
};

std::unique_ptr<Placement> MakeStaticPlacement(size_t num_nodes);
std::unique_ptr<Placement> MakeRingPlacement(size_t num_nodes,
                                             size_t vnodes_per_node = 64);

}  // namespace blobseer::dht

#endif  // BLOBSEER_DHT_PLACEMENT_H_
