// Client view of the distributed metadata store: placement + replication
// over a set of DHT node endpoints.
#ifndef BLOBSEER_DHT_CLIENT_H_
#define BLOBSEER_DHT_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/future.h"
#include "dht/messages.h"
#include "dht/placement.h"
#include "rpc/channel_pool.h"
#include "rpc/transport.h"

namespace blobseer::dht {

struct DhtClientOptions {
  /// How many replicas each key is written to (read falls back in order).
  size_t replication = 1;
  /// Channels opened per endpoint for parallel requests.
  size_t channels_per_endpoint = 4;
  /// Placement scheme: "static" (paper) or "ring".
  std::string placement = "static";
};

class DhtClient {
 public:
  /// `nodes` lists the DHT endpoints; placement is by index, so all clients
  /// must use the same ordered list (the provider manager distributes it).
  DhtClient(rpc::Transport* transport, std::vector<std::string> nodes,
            DhtClientOptions options = {});

  Status Put(Slice key, Slice value);
  Status Get(Slice key, std::string* value);
  Status Delete(Slice key);

  /// Single-key compare-and-swap, linearized on the key's *first* placement
  /// replica (every client derives the same one from the shared node list);
  /// on success the new value is propagated to the remaining replicas with
  /// plain puts. OK with `*applied == false` means the expectation did not
  /// hold — `*current` then carries the conflicting stored bytes (empty and
  /// `*applied == false` with a missing key unless `expect_absent`). Pass
  /// `expect_absent` to create-if-absent (the `expected` bytes are ignored).
  Status Cas(Slice key, Slice expected, Slice value, bool expect_absent,
             bool* applied, std::string* current);

  /// Async variants with the same replica semantics: PutAsync resolves OK
  /// once at least one replica accepted (replicas written in parallel);
  /// GetAsync falls back across replicas in placement order; DeleteAsync
  /// and CasAsync mirror their sync forms.
  Future<Unit> PutAsync(Slice key, Slice value);
  Future<std::string> GetAsync(Slice key);
  Future<Unit> DeleteAsync(Slice key);
  Future<CasResponse> CasAsync(Slice key, Slice expected, Slice value,
                               bool expect_absent);

  /// Aggregate stats across all nodes.
  Status TotalStats(uint64_t* keys, uint64_t* bytes);

  size_t num_nodes() const { return nodes_.size(); }
  const DhtClientOptions& options() const { return options_; }

 private:
  rpc::Transport* transport_;
  std::vector<std::string> nodes_;
  DhtClientOptions options_;
  std::unique_ptr<Placement> placement_;
  rpc::ChannelPool pool_;
};

}  // namespace blobseer::dht

#endif  // BLOBSEER_DHT_CLIENT_H_
