// Sharded in-memory key/value store backing one DHT node.
#ifndef BLOBSEER_DHT_STORE_H_
#define BLOBSEER_DHT_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace blobseer::dht {

struct StoreStats {
  uint64_t keys = 0;
  uint64_t bytes = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t deletes = 0;
};

/// Thread-safe hash map sharded by key hash to reduce lock contention under
/// the heavily concurrent metadata access the paper targets.
class KvStore {
 public:
  explicit KvStore(size_t num_shards = 16);

  /// Inserts or overwrites. Metadata nodes are immutable, so overwrites of
  /// an existing key with different bytes indicate a protocol bug; they are
  /// still applied (last-writer-wins) but counted in stats.
  Status Put(Slice key, Slice value);

  Status Get(Slice key, std::string* value);
  /// Removes the key; OK whether or not it existed (idempotent).
  Status Delete(Slice key);

  /// Atomic conditional overwrite under the key's shard lock: installs
  /// `value` iff the stored bytes equal `expected` (or iff the key is
  /// absent, with `expect_absent`). Always returns OK; `*applied` reports
  /// the outcome, `*present`/`*current` the post-call state of the key.
  Status Cas(Slice key, Slice expected, Slice value, bool expect_absent,
             bool* applied, bool* present, std::string* current);

  StoreStats GetStats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::string> map;
  };
  size_t ShardFor(Slice key) const;

  std::vector<Shard> shards_;
  mutable std::atomic<uint64_t> puts_{0}, gets_{0}, hits_{0}, deletes_{0};
  std::atomic<uint64_t> bytes_{0}, keys_{0};
};

}  // namespace blobseer::dht

#endif  // BLOBSEER_DHT_STORE_H_
