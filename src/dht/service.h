// DHT node service: the "metadata provider" role of the paper's
// architecture, exposed over any rpc::Transport.
#ifndef BLOBSEER_DHT_SERVICE_H_
#define BLOBSEER_DHT_SERVICE_H_

#include <memory>

#include "dht/store.h"
#include "rpc/transport.h"

namespace blobseer::dht {

class DhtService : public rpc::ServiceHandler {
 public:
  explicit DhtService(size_t shards = 16);

  Status Handle(rpc::Method method, Slice payload,
                std::string* response) override;

  KvStore& store() { return store_; }
  const KvStore& store() const { return store_; }

 private:
  KvStore store_;
};

}  // namespace blobseer::dht

#endif  // BLOBSEER_DHT_SERVICE_H_
