#include "dht/client.h"

#include "common/logging.h"
#include "dht/messages.h"
#include "rpc/call.h"

namespace blobseer::dht {

DhtClient::DhtClient(rpc::Transport* transport, std::vector<std::string> nodes,
                     DhtClientOptions options)
    : transport_(transport),
      nodes_(std::move(nodes)),
      options_(options),
      placement_(options.placement == "ring"
                     ? MakeRingPlacement(nodes_.size())
                     : MakeStaticPlacement(nodes_.size())),
      pool_(transport_, options.channels_per_endpoint) {
  BS_CHECK(!nodes_.empty()) << "DhtClient requires at least one node";
}

Status DhtClient::Put(Slice key, Slice value) {
  PutRequest req{key.ToString(), value.ToString()};
  Status first_error;
  size_t ok_count = 0;
  for (size_t node : placement_->ReplicaNodes(key, options_.replication)) {
    auto ch = pool_.Get(nodes_[node]);
    if (!ch.ok()) {
      if (first_error.ok()) first_error = ch.status();
      continue;
    }
    PutResponse rsp;
    Status s = rpc::CallMethod(ch->get(), rpc::Method::kDhtPut, req, &rsp);
    if (s.ok()) {
      ok_count++;
    } else if (first_error.ok()) {
      first_error = s;
    }
  }
  // Write succeeds if at least one replica accepted it; readers fall back
  // across replicas in the same order.
  if (ok_count > 0) return Status::OK();
  return first_error.ok() ? Status::Unavailable("dht put") : first_error;
}

Status DhtClient::Get(Slice key, std::string* value) {
  GetRequest req{key.ToString()};
  Status last = Status::NotFound("dht key");
  for (size_t node : placement_->ReplicaNodes(key, options_.replication)) {
    auto ch = pool_.Get(nodes_[node]);
    if (!ch.ok()) {
      last = ch.status();
      continue;
    }
    GetResponse rsp;
    Status s = rpc::CallMethod(ch->get(), rpc::Method::kDhtGet, req, &rsp);
    if (s.ok()) {
      *value = std::move(rsp.value);
      return Status::OK();
    }
    last = s;
  }
  return last;
}

Future<Unit> DhtClient::PutAsync(Slice key, Slice value) {
  auto req = PutRequest{key.ToString(), value.ToString()};
  std::vector<Future<PutResponse>> calls;
  Status first_error;
  for (size_t node : placement_->ReplicaNodes(key, options_.replication)) {
    auto ch = pool_.Get(nodes_[node]);
    if (!ch.ok()) {
      if (first_error.ok()) first_error = ch.status();
      continue;
    }
    calls.push_back(rpc::CallMethodAsync<PutRequest, PutResponse>(
        ch->get(), rpc::Method::kDhtPut, req));
  }
  if (calls.empty()) {
    return MakeReadyFuture(first_error.ok() ? Status::Unavailable("dht put")
                                            : first_error);
  }
  return WhenAll(std::move(calls))
      .Then([first_error](Result<std::vector<Result<PutResponse>>> all)
                -> Status {
        if (!all.ok()) return all.status();
        Status first = first_error;
        for (const auto& r : *all) {
          if (r.ok()) return Status::OK();
          if (first.ok()) first = r.status();
        }
        return first.ok() ? Status::Unavailable("dht put") : first;
      });
}

Future<std::string> DhtClient::GetAsync(Slice key) {
  GetRequest req{key.ToString()};
  auto try_replica = [this](const GetRequest& r,
                            size_t node) -> Future<std::string> {
    auto ch = pool_.Get(nodes_[node]);
    if (!ch.ok()) return MakeReadyFuture<std::string>(ch.status());
    return rpc::CallMethodAsync<GetRequest, GetResponse>(
               ch->get(), rpc::Method::kDhtGet, r)
        .Then([](Result<GetResponse> rsp) -> Result<std::string> {
          if (!rsp.ok()) return rsp.status();
          return std::move(rsp->value);
        });
  };
  // Fallback chain in placement order: each later replica is consulted only
  // after the previous attempt resolved with an error.
  std::vector<size_t> replicas =
      placement_->ReplicaNodes(key, options_.replication);
  if (replicas.empty())
    return MakeReadyFuture<std::string>(Status::NotFound("dht key"));
  Future<std::string> f = try_replica(req, replicas[0]);
  for (size_t i = 1; i < replicas.size(); i++) {
    f = f.Then([try_replica, req, node = replicas[i]](
                   Result<std::string> r) -> Future<std::string> {
      if (r.ok()) return MakeReadyFuture<std::string>(std::move(r));
      return try_replica(req, node);
    });
  }
  return f;
}

Status DhtClient::Delete(Slice key) {
  DeleteRequest req{key.ToString()};
  Status first_error;
  for (size_t node : placement_->ReplicaNodes(key, options_.replication)) {
    auto ch = pool_.Get(nodes_[node]);
    if (!ch.ok()) {
      if (first_error.ok()) first_error = ch.status();
      continue;
    }
    DeleteResponse rsp;
    Status s = rpc::CallMethod(ch->get(), rpc::Method::kDhtDelete, req, &rsp);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Status DhtClient::TotalStats(uint64_t* keys, uint64_t* bytes) {
  *keys = 0;
  *bytes = 0;
  for (const auto& addr : nodes_) {
    auto ch = pool_.Get(addr);
    if (!ch.ok()) return ch.status();
    StatsRequest req;
    StatsResponse rsp;
    BS_RETURN_NOT_OK(
        rpc::CallMethod(ch->get(), rpc::Method::kDhtStats, req, &rsp));
    *keys += rsp.keys;
    *bytes += rsp.bytes;
  }
  return Status::OK();
}

}  // namespace blobseer::dht
