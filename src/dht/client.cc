#include "dht/client.h"

#include "common/logging.h"
#include "rpc/call.h"

namespace blobseer::dht {

namespace {

// Reconnect-once on Unavailable for binding transports (TCP, inproc): a
// pooled channel opened before an endpoint restart keeps failing even when
// the endpoint is serving again, so the pool entry is dropped and the call
// retried on a fresh connection. KV operations are idempotent, so the
// retry is safe; simnet resolves endpoints per call and opts out via
// binds_at_connect().
template <typename Req, typename Rsp>
Status CallNode(rpc::ChannelPool* pool, const std::string& address,
                rpc::Method method, const Req& req, Rsp* rsp) {
  auto ch = pool->Get(address);
  if (!ch.ok()) return ch.status();
  Status s = rpc::CallMethod(ch->get(), method, req, rsp);
  if (!s.IsUnavailable() || !pool->binding()) return s;
  pool->Invalidate(address);
  ch = pool->Get(address);
  if (!ch.ok()) return s;
  *rsp = Rsp{};
  return rpc::CallMethod(ch->get(), method, req, rsp);
}

template <typename Req, typename Rsp>
Future<Rsp> CallNodeAsync(rpc::ChannelPool* pool, const std::string& address,
                          rpc::Method method, const Req& req) {
  auto ch = pool->Get(address);
  if (!ch.ok()) return MakeReadyFuture<Rsp>(ch.status());
  // The request is shared with the retry continuation, so the bytes are
  // serialized twice at most but copied into the closure once.
  auto shared = std::make_shared<Req>(req);
  return rpc::CallMethodAsync<Req, Rsp>(ch->get(), method, *shared)
      .Then([pool, address, method, shared](Result<Rsp> r) -> Future<Rsp> {
        if (r.ok() || !r.status().IsUnavailable() || !pool->binding())
          return MakeReadyFuture<Rsp>(std::move(r));
        pool->Invalidate(address);
        auto retry = pool->Get(address);
        if (!retry.ok()) return MakeReadyFuture<Rsp>(std::move(r));
        return rpc::CallMethodAsync<Req, Rsp>(retry->get(), method, *shared);
      });
}

}  // namespace

DhtClient::DhtClient(rpc::Transport* transport, std::vector<std::string> nodes,
                     DhtClientOptions options)
    : transport_(transport),
      nodes_(std::move(nodes)),
      options_(options),
      placement_(options.placement == "ring"
                     ? MakeRingPlacement(nodes_.size())
                     : MakeStaticPlacement(nodes_.size())),
      pool_(transport_, options.channels_per_endpoint) {
  BS_CHECK(!nodes_.empty()) << "DhtClient requires at least one node";
}

Status DhtClient::Put(Slice key, Slice value) {
  PutRequest req{key.ToString(), value.ToString()};
  Status first_error;
  size_t ok_count = 0;
  for (size_t node : placement_->ReplicaNodes(key, options_.replication)) {
    PutResponse rsp;
    Status s =
        CallNode(&pool_, nodes_[node], rpc::Method::kDhtPut, req, &rsp);
    if (s.ok()) {
      ok_count++;
    } else if (first_error.ok()) {
      first_error = s;
    }
  }
  // Write succeeds if at least one replica accepted it; readers fall back
  // across replicas in the same order.
  if (ok_count > 0) return Status::OK();
  return first_error.ok() ? Status::Unavailable("dht put") : first_error;
}

Status DhtClient::Get(Slice key, std::string* value) {
  GetRequest req{key.ToString()};
  Status last = Status::NotFound("dht key");
  for (size_t node : placement_->ReplicaNodes(key, options_.replication)) {
    GetResponse rsp;
    Status s =
        CallNode(&pool_, nodes_[node], rpc::Method::kDhtGet, req, &rsp);
    if (s.ok()) {
      *value = std::move(rsp.value);
      return Status::OK();
    }
    last = s;
  }
  return last;
}

Status DhtClient::Cas(Slice key, Slice expected, Slice value,
                      bool expect_absent, bool* applied,
                      std::string* current) {
  *applied = false;
  current->clear();
  std::vector<size_t> replicas =
      placement_->ReplicaNodes(key, options_.replication);
  if (replicas.empty()) return Status::Unavailable("dht cas: no nodes");
  CasRequest req{key.ToString(), expected.ToString(), value.ToString(),
                 expect_absent};
  CasResponse rsp;
  // The first placement replica is the linearization point: the conditional
  // write runs only there, under that node's shard lock.
  BS_RETURN_NOT_OK(
      CallNode(&pool_, nodes_[replicas[0]], rpc::Method::kDhtCas, req, &rsp));
  *applied = rsp.applied;
  *current = std::move(rsp.current);
  if (!rsp.applied) return Status::OK();
  // Best-effort fan-out of the accepted value to the tail replicas; the
  // authoritative first copy is already durable and readers try it first.
  PutRequest put{req.key, req.value};
  for (size_t i = 1; i < replicas.size(); i++) {
    PutResponse pr;
    (void)CallNode(&pool_, nodes_[replicas[i]], rpc::Method::kDhtPut, put,
                   &pr);
  }
  return Status::OK();
}

Future<CasResponse> DhtClient::CasAsync(Slice key, Slice expected,
                                        Slice value, bool expect_absent) {
  std::vector<size_t> replicas =
      placement_->ReplicaNodes(key, options_.replication);
  if (replicas.empty())
    return MakeReadyFuture<CasResponse>(Status::Unavailable("dht cas"));
  CasRequest req{key.ToString(), expected.ToString(), value.ToString(),
                 expect_absent};
  Future<CasResponse> f = CallNodeAsync<CasRequest, CasResponse>(
      &pool_, nodes_[replicas[0]], rpc::Method::kDhtCas, req);
  if (replicas.size() == 1) return f;
  // Propagate an applied CAS to the tail replicas before resolving, so a
  // caller observing success never races its own propagation.
  return f.Then([this, key = req.key, value = req.value,
                 replicas](Result<CasResponse> r) -> Future<CasResponse> {
    if (!r.ok() || !r->applied)
      return MakeReadyFuture<CasResponse>(std::move(r));
    auto rsp = std::make_shared<CasResponse>(std::move(r).ValueUnsafe());
    PutRequest put{key, value};
    std::vector<Future<PutResponse>> tail;
    for (size_t i = 1; i < replicas.size(); i++) {
      tail.push_back(CallNodeAsync<PutRequest, PutResponse>(
          &pool_, nodes_[replicas[i]], rpc::Method::kDhtPut, put));
    }
    return WhenAll(std::move(tail))
        .Then([rsp](Result<std::vector<Result<PutResponse>>>)
                  -> Result<CasResponse> { return std::move(*rsp); });
  });
}

Future<Unit> DhtClient::PutAsync(Slice key, Slice value) {
  auto req = PutRequest{key.ToString(), value.ToString()};
  std::vector<Future<PutResponse>> calls;
  for (size_t node : placement_->ReplicaNodes(key, options_.replication)) {
    calls.push_back(CallNodeAsync<PutRequest, PutResponse>(
        &pool_, nodes_[node], rpc::Method::kDhtPut, req));
  }
  if (calls.empty()) return MakeReadyFuture(Status::Unavailable("dht put"));
  return WhenAll(std::move(calls))
      .Then([](Result<std::vector<Result<PutResponse>>> all) -> Status {
        if (!all.ok()) return all.status();
        Status first;
        for (const auto& r : *all) {
          if (r.ok()) return Status::OK();
          if (first.ok()) first = r.status();
        }
        return first.ok() ? Status::Unavailable("dht put") : first;
      });
}

Future<std::string> DhtClient::GetAsync(Slice key) {
  GetRequest req{key.ToString()};
  auto try_replica = [this](const GetRequest& r,
                            size_t node) -> Future<std::string> {
    return CallNodeAsync<GetRequest, GetResponse>(
               &pool_, nodes_[node], rpc::Method::kDhtGet, r)
        .Then([](Result<GetResponse> rsp) -> Result<std::string> {
          if (!rsp.ok()) return rsp.status();
          return std::move(rsp->value);
        });
  };
  // Fallback chain in placement order: each later replica is consulted only
  // after the previous attempt resolved with an error.
  std::vector<size_t> replicas =
      placement_->ReplicaNodes(key, options_.replication);
  if (replicas.empty())
    return MakeReadyFuture<std::string>(Status::NotFound("dht key"));
  Future<std::string> f = try_replica(req, replicas[0]);
  for (size_t i = 1; i < replicas.size(); i++) {
    f = f.Then([try_replica, req, node = replicas[i]](
                   Result<std::string> r) -> Future<std::string> {
      if (r.ok()) return MakeReadyFuture<std::string>(std::move(r));
      return try_replica(req, node);
    });
  }
  return f;
}

Status DhtClient::Delete(Slice key) {
  DeleteRequest req{key.ToString()};
  Status first_error;
  for (size_t node : placement_->ReplicaNodes(key, options_.replication)) {
    DeleteResponse rsp;
    Status s =
        CallNode(&pool_, nodes_[node], rpc::Method::kDhtDelete, req, &rsp);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Future<Unit> DhtClient::DeleteAsync(Slice key) {
  DeleteRequest req{key.ToString()};
  std::vector<Future<DeleteResponse>> calls;
  for (size_t node : placement_->ReplicaNodes(key, options_.replication)) {
    calls.push_back(CallNodeAsync<DeleteRequest, DeleteResponse>(
        &pool_, nodes_[node], rpc::Method::kDhtDelete, req));
  }
  if (calls.empty()) return MakeReadyFuture(Status::OK());
  return WhenAll(std::move(calls))
      .Then([](Result<std::vector<Result<DeleteResponse>>> all) -> Status {
        if (!all.ok()) return all.status();
        for (const auto& r : *all) {
          if (!r.ok()) return r.status();
        }
        return Status::OK();
      });
}

Status DhtClient::TotalStats(uint64_t* keys, uint64_t* bytes) {
  *keys = 0;
  *bytes = 0;
  for (const auto& addr : nodes_) {
    StatsRequest req;
    StatsResponse rsp;
    BS_RETURN_NOT_OK(
        CallNode(&pool_, addr, rpc::Method::kDhtStats, req, &rsp));
    *keys += rsp.keys;
    *bytes += rsp.bytes;
  }
  return Status::OK();
}

}  // namespace blobseer::dht
