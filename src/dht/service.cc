#include "dht/service.h"

#include "dht/messages.h"
#include "rpc/call.h"

namespace blobseer::dht {

DhtService::DhtService(size_t shards) : store_(shards) {}

Status DhtService::Handle(rpc::Method method, Slice payload,
                          std::string* response) {
  using rpc::DispatchTyped;
  switch (method) {
    case rpc::Method::kDhtPut:
      return DispatchTyped<PutRequest, PutResponse>(
          payload, response, [this](const PutRequest& req, PutResponse*) {
            return store_.Put(Slice(req.key), Slice(req.value));
          });
    case rpc::Method::kDhtGet:
      return DispatchTyped<GetRequest, GetResponse>(
          payload, response, [this](const GetRequest& req, GetResponse* rsp) {
            return store_.Get(Slice(req.key), &rsp->value);
          });
    case rpc::Method::kDhtDelete:
      return DispatchTyped<DeleteRequest, DeleteResponse>(
          payload, response, [this](const DeleteRequest& req, DeleteResponse*) {
            return store_.Delete(Slice(req.key));
          });
    case rpc::Method::kDhtCas:
      return DispatchTyped<CasRequest, CasResponse>(
          payload, response, [this](const CasRequest& req, CasResponse* rsp) {
            return store_.Cas(Slice(req.key), Slice(req.expected),
                              Slice(req.value), req.expect_absent,
                              &rsp->applied, &rsp->present, &rsp->current);
          });
    case rpc::Method::kDhtMultiGet:
      return DispatchTyped<MultiGetRequest, MultiGetResponse>(
          payload, response,
          [this](const MultiGetRequest& req, MultiGetResponse* rsp) {
            rsp->found.reserve(req.keys.size());
            for (const auto& k : req.keys) {
              std::string v;
              if (store_.Get(Slice(k), &v).ok()) {
                rsp->found.push_back(1);
                rsp->values.push_back(std::move(v));
              } else {
                rsp->found.push_back(0);
              }
            }
            return Status::OK();
          });
    case rpc::Method::kDhtStats:
      return DispatchTyped<StatsRequest, StatsResponse>(
          payload, response, [this](const StatsRequest&, StatsResponse* rsp) {
            StoreStats st = store_.GetStats();
            rsp->keys = st.keys;
            rsp->bytes = st.bytes;
            rsp->puts = st.puts;
            rsp->gets = st.gets;
            rsp->hits = st.hits;
            return Status::OK();
          });
    default:
      return Status::NotSupported("dht method");
  }
}

}  // namespace blobseer::dht
