#include "dht/placement.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace blobseer::dht {

std::vector<size_t> Placement::ReplicaNodes(Slice key, size_t replicas) const {
  size_t n = num_nodes();
  if (replicas > n) replicas = n;
  std::vector<size_t> out;
  out.reserve(replicas);
  size_t primary = NodeFor(key);
  for (size_t i = 0; i < replicas; i++) out.push_back((primary + i) % n);
  return out;
}

StaticPlacement::StaticPlacement(size_t num_nodes) : num_nodes_(num_nodes) {
  BS_CHECK(num_nodes > 0) << "placement over zero nodes";
}

size_t StaticPlacement::NodeFor(Slice key) const {
  return static_cast<size_t>(Fnv1a64(key) % num_nodes_);
}

RingPlacement::RingPlacement(size_t num_nodes, size_t vnodes_per_node)
    : num_nodes_(num_nodes) {
  BS_CHECK(num_nodes > 0) << "placement over zero nodes";
  ring_.reserve(num_nodes * vnodes_per_node);
  for (uint32_t node = 0; node < num_nodes; node++) {
    for (size_t v = 0; v < vnodes_per_node; v++) {
      uint64_t h = Mix64(HashCombine(node + 1, v + 1));
      ring_.emplace_back(h, node);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t RingPlacement::NodeFor(Slice key) const {
  uint64_t h = Fnv1a64(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, uint32_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<size_t> RingPlacement::ReplicaNodes(Slice key,
                                                size_t replicas) const {
  size_t n = num_nodes();
  if (replicas > n) replicas = n;
  std::vector<size_t> out;
  uint64_t h = Fnv1a64(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, uint32_t{0}));
  // Walk the ring collecting distinct owners, wrapping at the end.
  for (size_t steps = 0; steps < ring_.size() && out.size() < replicas;
       steps++) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

std::unique_ptr<Placement> MakeStaticPlacement(size_t num_nodes) {
  return std::make_unique<StaticPlacement>(num_nodes);
}
std::unique_ptr<Placement> MakeRingPlacement(size_t num_nodes,
                                             size_t vnodes_per_node) {
  return std::make_unique<RingPlacement>(num_nodes, vnodes_per_node);
}

}  // namespace blobseer::dht
