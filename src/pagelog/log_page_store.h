// Log-structured durable page store: append-only segment files, an
// in-memory PageId index rebuilt by scanning on open, batched group-commit
// fdatasync, and segment compaction driven by version-GC deletes.
//
// Compared to the one-file-per-page FilePageStore this amortizes the
// per-page inode + metadata flush into sequential appends with one
// fdatasync per flush window shared by all concurrent writers — the
// layout ForkBase-style chunk stores use, and the remedy Sears & van Ingen
// prescribe for file-per-object fragmentation at scale.
#ifndef BLOBSEER_PAGELOG_LOG_PAGE_STORE_H_
#define BLOBSEER_PAGELOG_LOG_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "provider/page_store.h"

namespace blobseer::pagelog {

struct LogPageStoreOptions {
  /// A segment is sealed and a new one opened once appending the next record
  /// would push it past this size (a single oversized record still fits).
  uint64_t segment_target_bytes = 64ull << 20;

  /// When true (the default) every Put/Delete is durable before it returns:
  /// writers entering during an in-flight fdatasync coalesce into the next
  /// one (leader-based group commit). When false the store only syncs on
  /// segment seal and compaction — the paper's RAM-provider throughput mode
  /// with a durability window.
  bool sync = true;

  /// Compact() rewrites sealed segments whose dead-payload ratio (deleted or
  /// superseded duplicate records) is at least this threshold.
  double compact_min_dead_ratio = 0.5;

  /// When > 0, a Delete that leaves any sealed segment at or above this
  /// dead-payload ratio triggers an inline Compact() — how the GC
  /// sweeper's tombstone storms reclaim disk without an external
  /// compaction driver. This knob decides *when* compaction runs;
  /// compact_min_dead_ratio still decides *which* segments it rewrites.
  /// 0 (the default) keeps compaction manual.
  double compact_dead_ratio = 0;

  /// Raw-I/O backend for the append path: "psync" (buffered pwrite +
  /// fdatasync, the portable baseline), "uring" (batched io_uring
  /// submissions), or "uring-direct" (io_uring + O_DIRECT aligned writes).
  /// Empty consults the BLOBSEER_IO_BACKEND environment variable, then
  /// defaults to "psync". Unknown or kernel-unsupported backends fall back
  /// to psync with a logged note — segment files are byte-identical across
  /// backends either way.
  std::string io_backend;

  /// Staging arena for the uring backend: bytes accumulated between flushes
  /// (and the registered-buffer size). With sync=false this bounds the
  /// process-crash loss window on top of the usual page-cache window.
  uint64_t staging_bytes = 2ull << 20;
};

/// Opens (creating or recovering) a log-structured store rooted at `dir`.
/// Recovery scans every segment, truncates a torn tail record (short or
/// CRC-mismatched) and rebuilds the index; an unrecoverable I/O error is
/// deferred and reported by every subsequent operation.
std::unique_ptr<provider::PageStore> MakeLogPageStore(
    const std::string& dir, LogPageStoreOptions opts = {});

}  // namespace blobseer::pagelog

#endif  // BLOBSEER_PAGELOG_LOG_PAGE_STORE_H_
