// Pluggable raw-I/O seam under the log-structured page store.
//
// The store's hot path is "append records, then make them durable as one
// group-commit window". IoBackend abstracts how those bytes reach the disk:
//
//   * psync — the portable baseline: one buffered pwrite per record part
//     and one fdatasync per flush, exactly the code the store ran before
//     the seam existed (zero behavior change).
//   * uring — Linux io_uring: records are staged into a registered,
//     page-aligned arena (a memcpy, no syscall), and a flush submits the
//     whole staged window as one chained submission — a WRITE_FIXED SQE
//     linked to an fdatasync SQE, so an entire group-commit window costs
//     one io_uring_enter instead of 2 syscalls per record plus a sync.
//     Optionally opens the append fd with O_DIRECT and rewrites the tail
//     block with aligned boundaries (reads always use the buffered fd).
//
// Selection is by name ("psync", "uring", "uring-direct"); unknown or
// unsupported names fall back to psync with a logged note, so a store
// directory is always openable regardless of kernel support.
#ifndef BLOBSEER_PAGELOG_IO_BACKEND_H_
#define BLOBSEER_PAGELOG_IO_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace blobseer::pagelog {

/// Raw-I/O counters, surfaced through PageStoreStats so the syscall savings
/// of a batched backend are observable end to end.
struct IoBackendStats {
  /// Batched submission calls: io_uring_enter calls for uring; every
  /// pwrite/fdatasync syscall for psync (its "batch" is one operation).
  uint64_t io_submissions = 0;
  /// Individual I/O operations submitted (SQEs for uring; equal to
  /// io_submissions for psync).
  uint64_t io_sqes = 0;
  /// File bytes written through the append path (O_DIRECT alignment
  /// padding included — it hits the device too).
  uint64_t bytes_written = 0;
  /// pread/preadv syscalls issued by the read path (arena-served staged
  /// reads don't count — they cost no syscall).
  uint64_t read_syscalls = 0;
};

struct IoBackendOptions {
  /// uring only: open the append fd with O_DIRECT and write block-aligned
  /// spans (the staging arena keeps the partial tail block so it can be
  /// rewritten). Falls back to buffered writes when the filesystem
  /// rejects O_DIRECT.
  bool direct_io = false;
  /// Staging arena capacity. Appends larger than the arena stream through
  /// it in chunks; a bigger arena means fewer, larger write submissions on
  /// the open-durability-window path.
  uint64_t staging_bytes = 2ull << 20;
};

/// One active append target at a time (the store's active segment), plus
/// positional reads against any segment fd. Appends and reads may be called
/// concurrently from multiple threads; Flush is internally serialized.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  /// Resolved backend name ("psync" / "uring" / "uring-direct").
  virtual const char* name() const = 0;

  /// Makes `fd` (open R/W, `size` valid bytes, living at `path`) the active
  /// append target. Any previous target is flushed and finalized first.
  virtual Status BeginAppend(int fd, const std::string& path,
                             uint64_t size) = 0;

  /// Appends a record (header + payload) at `off`, which must equal the
  /// current logical end of the active file. psync writes through
  /// immediately; uring stages for the next Flush.
  virtual Status Append(uint64_t off, Slice header, Slice payload) = 0;

  /// Writes any staged bytes and makes the active file durable — the
  /// group-commit flush. One batched submission for uring (chained
  /// write + fdatasync), pwrites + fdatasync for psync.
  virtual Status Flush() = 0;

  /// Rolls the active file back to `size` logical bytes after a failed
  /// append: discards staged bytes past it and truncates the file if any
  /// were already written.
  virtual Status TruncateActive(uint64_t size) = 0;

  /// Flushes the active file and restores its physical size to the logical
  /// end (drops O_DIRECT alignment padding). Called on clean shutdown.
  virtual Status FinishAppend() = 0;

  /// Drops the active append target without touching the file (failed
  /// segment creation cleanup).
  virtual void AbandonActive() = 0;

  /// Positional read with context-rich errors; serves the staged tail of
  /// the active file from memory when the bytes have not reached the file
  /// yet.
  virtual Status Pread(int fd, char* p, size_t n, uint64_t off,
                       const std::string& path) = 0;

  virtual IoBackendStats stats() const = 0;
};

/// True when this kernel accepts io_uring_setup (cached probe).
bool IoUringSupported();

std::unique_ptr<IoBackend> MakePsyncIoBackend();

/// nullptr when io_uring is unavailable (compiled out, or io_uring_setup
/// fails at runtime) — callers fall back to psync.
std::unique_ptr<IoBackend> MakeUringIoBackend(const IoBackendOptions& opts);

/// Resolves a backend spec with automatic fallback: "" consults the
/// BLOBSEER_IO_BACKEND environment variable, then defaults to "psync".
/// "uring" / "uring-direct" fall back to psync (with a logged note) when
/// the kernel lacks io_uring. Never returns nullptr.
std::unique_ptr<IoBackend> MakeIoBackend(const std::string& spec,
                                         const IoBackendOptions& opts = {});

/// Shared low-level helpers with context-rich errors: loop until the full
/// range is transferred; short reads report path, offset and byte counts so
/// torn-tail truncation reports are actionable.
Status PwriteFull(int fd, const char* p, size_t n, uint64_t off,
                  const std::string& path);
Status PreadFull(int fd, char* p, size_t n, uint64_t off,
                 const std::string& path);

}  // namespace blobseer::pagelog

#endif  // BLOBSEER_PAGELOG_IO_BACKEND_H_
