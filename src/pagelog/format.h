// On-disk format of the log-structured page store (see
// docs/pagelog_format.md for the full specification and recovery rules).
//
// A store directory holds numbered append-only segment files. Each segment
// starts with a 16-byte segment header and is followed by records. Every
// record is a fixed 32-byte header optionally followed by a payload; the
// header carries a CRC-32C over the typed fields plus the payload so that a
// torn tail (power loss mid-append) or bit rot is detected on open.
//
// All integers are little-endian at fixed offsets.
#ifndef BLOBSEER_PAGELOG_FORMAT_H_
#define BLOBSEER_PAGELOG_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/hash.h"
#include "common/slice.h"
#include "common/string_util.h"
#include "common/types.h"

namespace blobseer::pagelog {

inline constexpr uint32_t kSegmentMagic = 0x5347'4C50;  // "PLGS"
inline constexpr uint32_t kRecordMagic = 0x5243'4C50;   // "PLCR"
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr size_t kSegmentHeaderSize = 16;
inline constexpr size_t kRecordHeaderSize = 32;

enum RecordType : uint32_t {
  kRecordPut = 1,     ///< header + page payload
  kRecordDelete = 2,  ///< header only (len == 0); tombstone for version GC
};

/// Decoded record header. `crc` covers header bytes [8, 32) — type, len,
/// page id — followed by the payload bytes.
struct RecordHeader {
  uint32_t type = 0;
  uint32_t len = 0;
  PageId id;
  uint32_t crc = 0;
};

namespace wire {

// Explicit little-endian byte order so store directories are portable
// across hosts (memcpy of the native representation would not be).
inline void PutU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; i++) p[i] = static_cast<char>(v >> (8 * i));
}
inline void PutU64(char* p, uint64_t v) {
  for (int i = 0; i < 8; i++) p[i] = static_cast<char>(v >> (8 * i));
}
inline uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; i++)
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return v;
}
inline uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; i++)
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return v;
}

}  // namespace wire

/// Segment file name for sequence number `seq` ("segment-00000001.log").
inline std::string SegmentFileName(uint32_t seq) {
  return StrFormat("segment-%08u.log", seq);
}

/// Serializes the 16-byte segment header: [magic][format version][seq].
inline void EncodeSegmentHeader(uint32_t seq, char out[kSegmentHeaderSize]) {
  wire::PutU32(out + 0, kSegmentMagic);
  wire::PutU32(out + 4, kFormatVersion);
  wire::PutU64(out + 8, seq);
}

/// Returns false if magic or version mismatch.
inline bool DecodeSegmentHeader(const char in[kSegmentHeaderSize],
                                uint64_t* seq) {
  if (wire::GetU32(in + 0) != kSegmentMagic) return false;
  if (wire::GetU32(in + 4) != kFormatVersion) return false;
  *seq = wire::GetU64(in + 8);
  return true;
}

/// Serializes the 32-byte record header and computes the record CRC:
///   [0]  u32 magic
///   [4]  u32 crc32c over bytes [8,32) + payload
///   [8]  u32 type
///   [12] u32 payload length
///   [16] u64 page id hi
///   [24] u64 page id lo
inline void EncodeRecordHeader(RecordType type, const PageId& id,
                               Slice payload, char out[kRecordHeaderSize]) {
  wire::PutU32(out + 0, kRecordMagic);
  wire::PutU32(out + 8, type);
  wire::PutU32(out + 12, static_cast<uint32_t>(payload.size()));
  wire::PutU64(out + 16, id.hi);
  wire::PutU64(out + 24, id.lo);
  uint32_t crc = Crc32cExtend(0, out + 8, kRecordHeaderSize - 8);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  wire::PutU32(out + 4, crc);
}

/// Decodes a record header; returns false on magic mismatch. CRC validation
/// needs the payload and is done by the caller via RecordCrcMatches.
inline bool DecodeRecordHeader(const char in[kRecordHeaderSize],
                               RecordHeader* out) {
  if (wire::GetU32(in + 0) != kRecordMagic) return false;
  out->crc = wire::GetU32(in + 4);
  out->type = wire::GetU32(in + 8);
  out->len = wire::GetU32(in + 12);
  out->id.hi = wire::GetU64(in + 16);
  out->id.lo = wire::GetU64(in + 24);
  return true;
}

/// Recomputes the CRC of a decoded header + payload and compares.
inline bool RecordCrcMatches(const char header[kRecordHeaderSize],
                             const RecordHeader& h, Slice payload) {
  uint32_t crc = Crc32cExtend(0, header + 8, kRecordHeaderSize - 8);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  return crc == h.crc;
}

}  // namespace blobseer::pagelog

#endif  // BLOBSEER_PAGELOG_FORMAT_H_
