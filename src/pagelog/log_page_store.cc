#include "pagelog/log_page_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "pagelog/format.h"
#include "pagelog/io_backend.h"

namespace blobseer::pagelog {

namespace {

using provider::PageStore;
using provider::PageStoreStats;

/// Upper bound accepted for a record payload during recovery; anything
/// larger is treated as a corrupt length field.
constexpr uint64_t kMaxRecordPayload = 1ull << 30;

/// Chunk size for sequential segment scans (recovery, compaction).
constexpr size_t kScanChunk = 256u << 10;

Status ErrnoError(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}

/// One on-disk segment. The fd stays open for the Segment's lifetime so
/// concurrent readers (and compaction) can keep serving a segment even
/// after its file has been unlinked; the destructor closes it.
struct Segment {
  uint32_t seq = 0;
  int fd = -1;
  std::string path;
  uint64_t size = 0;  ///< append offset == bytes of valid records + header
  /// Payload bytes of all put records in the file vs. those still indexed;
  /// the difference is reclaimable garbage (delete tombstones and duplicate
  /// put records carry no live payload).
  uint64_t total_payload = 0;
  uint64_t live_payload = 0;

  ~Segment() {
    if (fd >= 0) ::close(fd);
  }
  double DeadRatio() const {
    if (total_payload == 0) return size > kSegmentHeaderSize ? 1.0 : 0.0;
    return 1.0 - static_cast<double>(live_payload) /
                     static_cast<double>(total_payload);
  }
};

/// Buffered sequential reader for segment scans: bytes come out of a
/// kScanChunk staging buffer refilled with large backend reads, so a scan
/// costs O(file_size / kScanChunk) syscalls instead of two per record.
/// Payloads bigger than a chunk bypass the buffer and read straight into
/// the destination.
class ChunkReader {
 public:
  ChunkReader(IoBackend* io, int fd, const std::string& path,
              uint64_t file_size)
      : io_(io), fd_(fd), path_(path), file_size_(file_size) {}

  Status Read(uint64_t off, char* dst, size_t n) {
    while (n > 0) {
      if (off >= buf_off_ && off < buf_off_ + buf_len_) {
        size_t take = buf_off_ + buf_len_ - off;
        if (take > n) take = n;
        std::memcpy(dst, buffer_.data() + (off - buf_off_), take);
        off += take;
        dst += take;
        n -= take;
        continue;
      }
      if (off + n > file_size_) {
        return Status::Corruption(StrFormat(
            "short read: %s @%llu: %llu bytes past EOF", path_.c_str(),
            static_cast<unsigned long long>(off),
            static_cast<unsigned long long>(off + n - file_size_)));
      }
      if (n >= kScanChunk) return io_->Pread(fd_, dst, n, off, path_);
      size_t fill = kScanChunk;
      if (fill > file_size_ - off) fill = file_size_ - off;
      buffer_.resize(fill);
      BS_RETURN_NOT_OK(io_->Pread(fd_, buffer_.data(), fill, off, path_));
      buf_off_ = off;
      buf_len_ = fill;
    }
    return Status::OK();
  }

 private:
  IoBackend* io_;
  int fd_;
  const std::string& path_;
  uint64_t file_size_;
  std::string buffer_;
  uint64_t buf_off_ = 0;
  size_t buf_len_ = 0;
};

/// Walks the records of a segment file, invoking `fn(header, payload_offset,
/// payload)` for every structurally valid record, and returns the byte offset
/// of the first torn/corrupt record (== `file_size` when the tail is clean).
using RecordFn =
    std::function<void(const RecordHeader&, uint64_t, const std::string&)>;

uint64_t ScanRecords(IoBackend* io, int fd, const std::string& path,
                     uint64_t file_size, const RecordFn& fn) {
  ChunkReader reader(io, fd, path, file_size);
  uint64_t off = kSegmentHeaderSize;
  char header[kRecordHeaderSize];
  std::string payload;
  while (off + kRecordHeaderSize <= file_size) {
    if (!reader.Read(off, header, kRecordHeaderSize).ok()) return off;
    RecordHeader h;
    if (!DecodeRecordHeader(header, &h)) return off;
    if (h.len > kMaxRecordPayload) return off;
    if (off + kRecordHeaderSize + h.len > file_size) return off;
    payload.resize(h.len);
    if (h.len > 0 &&
        !reader.Read(off + kRecordHeaderSize, payload.data(), h.len).ok())
      return off;
    if (!RecordCrcMatches(header, h, Slice(payload))) return off;
    fn(h, off + kRecordHeaderSize, payload);
    off += kRecordHeaderSize + h.len;
  }
  return off;
}

class LogPageStore : public PageStore {
 public:
  LogPageStore(std::string dir, LogPageStoreOptions opts)
      : dir_(std::move(dir)), opts_(opts) {
    IoBackendOptions io_opts;
    io_opts.staging_bytes = opts_.staging_bytes;
    io_ = MakeIoBackend(opts_.io_backend, io_opts);
    init_error_ = Open();
    if (!init_error_.ok()) {
      BS_LOG(Error) << "pagelog open " << dir_
                    << " failed: " << init_error_.ToString();
    } else {
      BS_LOG(Info) << "pagelog " << dir_ << " using io backend "
                   << io_->name();
    }
  }

  ~LogPageStore() override {
    // Best-effort durability on clean shutdown when running with sync off;
    // also writes back any uring-staged tail and trims O_DIRECT padding.
    if (init_error_.ok() && active_ && active_->fd >= 0) {
      Status s = io_->FinishAppend();
      if (!s.ok()) {
        BS_LOG(Warn) << "pagelog shutdown flush of " << dir_
                     << " failed: " << s.ToString()
                     << " (records in the open durability window may be lost)";
      }
    }
    if (dir_fd_ >= 0) ::close(dir_fd_);
  }

  Status Put(const PageId& id, Slice data) override {
    BS_RETURN_NOT_OK(init_error_);
    uint64_t seq = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.writes++;
      auto it = index_.find(id);
      if (it != index_.end()) {
        if (it->second.len != data.size())
          return Status::AlreadyExists(
              "page object rewritten with new content: " + id.ToString());
        // Idempotent replay of a retried RPC — but the original append may
        // not be durable yet (its sync failed or is still in flight), so
        // the replay must still wait for a covering flush before acking.
        seq = append_seq_;
      } else {
        Entry e;
        BS_RETURN_NOT_OK(AppendLocked(kRecordPut, id, data, &e));
        index_.emplace(id, e);
        active_->live_payload += data.size();
        stats_.pages++;
        stats_.bytes += data.size();
        seq = append_seq_;
      }
    }
    if (opts_.sync) return SyncTo(seq);
    return Status::OK();
  }

  Status Read(const PageId& id, uint64_t offset, uint64_t len,
              std::string* out) override {
    BS_RETURN_NOT_OK(init_error_);
    Entry e;
    std::shared_ptr<Segment> seg;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.reads++;
      auto it = index_.find(id);
      if (it == index_.end()) return Status::NotFound("page " + id.ToString());
      e = it->second;
      seg = segments_.at(e.seq);
    }
    BS_RETURN_NOT_OK(provider::CheckReadRange(e.len, offset, &len));
    out->resize(len);
    if (len == 0) return Status::OK();
    // Record payloads are immutable once indexed, so the read needs no store
    // lock; the shared_ptr keeps the fd usable even if compaction unlinks the
    // file, and the backend serves any still-staged tail bytes from memory.
    return io_->Pread(seg->fd, out->data(), len, e.offset + offset, seg->path)
        .WithContext("page " + id.ToString());
  }

  Status Delete(const PageId& id) override {
    BS_RETURN_NOT_OK(init_error_);
    uint64_t seq = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.deletes++;
      auto it = index_.find(id);
      if (it == index_.end()) {
        // Idempotent retry: an earlier Delete may have appended the
        // tombstone without its sync completing, so still wait for a
        // covering flush before acking.
        seq = append_seq_;
      } else {
        Entry e = it->second;
        // Tombstone payload names the segment holding the put record it
        // kills, so a tombstone replayed out of original order (after
        // compaction re-logs it) can never delete a newer incarnation of
        // the id.
        char target[8];
        wire::PutU64(target, e.seq);
        Entry ignored;
        BS_RETURN_NOT_OK(
            AppendLocked(kRecordDelete, id, Slice(target, 8), &ignored));
        // A crashed compaction can leave duplicate put records for this id
        // in other segments (found at recovery); each needs its own
        // tombstone or the id resurrects once the indexed record's segment
        // is compacted away.
        auto ex = extra_puts_.find(id);
        if (ex != extra_puts_.end()) {
          for (uint32_t dup_seq : ex->second) {
            if (segments_.count(dup_seq) == 0) continue;
            wire::PutU64(target, dup_seq);
            BS_RETURN_NOT_OK(
                AppendLocked(kRecordDelete, id, Slice(target, 8), &ignored));
          }
          extra_puts_.erase(ex);
        }
        index_.erase(id);
        auto seg = segments_.find(e.seq);
        if (seg != segments_.end()) seg->second->live_payload -= e.len;
        stats_.pages--;
        stats_.bytes -= e.len;
        seq = append_seq_;
      }
    }
    if (opts_.sync) BS_RETURN_NOT_OK(SyncTo(seq));
    return MaybeAutoCompact();
  }

  /// Delete-driven compaction trigger (compact_dead_ratio > 0): runs a
  /// full Compact() once any sealed segment crossed the threshold.
  /// Serialized by Compact()'s own lock, so concurrent deletes just queue.
  Status MaybeAutoCompact() {
    if (opts_.compact_dead_ratio <= 0) return Status::OK();
    bool trigger = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [seq, seg] : segments_) {
        if (seg == active_) continue;
        if (seg->DeadRatio() >= opts_.compact_dead_ratio) {
          trigger = true;
          break;
        }
      }
    }
    return trigger ? Compact() : Status::OK();
  }

  Status Compact() override {
    BS_RETURN_NOT_OK(init_error_);
    // One compaction at a time; readers and writers stay concurrent.
    std::lock_guard<std::mutex> compact_lock(compact_mu_);

    std::vector<std::shared_ptr<Segment>> victims;
    std::set<uint32_t> victim_seqs;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [seq, seg] : segments_) {
        if (seg == active_) continue;
        if (seg->DeadRatio() >= opts_.compact_min_dead_ratio) {
          victims.push_back(seg);
          victim_seqs.insert(seq);
        }
      }
    }

    for (const auto& victim : victims) {
      BS_RETURN_NOT_OK(CompactSegment(*victim, victim_seqs));
      // Copies and re-logged tombstones must be durable before the only
      // other copy of the data disappears.
      BS_RETURN_NOT_OK(SyncActive());
      std::string path = dir_ + "/" + SegmentFileName(victim->seq);
      {
        std::lock_guard<std::mutex> lock(mu_);
        segments_.erase(victim->seq);
        // Duplicate records the victim held are gone with its file.
        for (auto ex = extra_puts_.begin(); ex != extra_puts_.end();) {
          auto& v = ex->second;
          v.erase(std::remove(v.begin(), v.end(), victim->seq), v.end());
          ex = v.empty() ? extra_puts_.erase(ex) : std::next(ex);
        }
        stats_.compactions++;
      }
      if (::unlink(path.c_str()) != 0)
        return ErrnoError("unlink " + path);
      BS_RETURN_NOT_OK(SyncDir());
    }
    return Status::OK();
  }

  PageStoreStats GetStats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    PageStoreStats st = stats_;
    st.segments = segments_.size();
    st.dead_bytes = 0;
    for (const auto& [seq, seg] : segments_)
      st.dead_bytes += seg->total_payload - seg->live_payload;
    IoBackendStats io = io_->stats();
    st.io_submissions = io.io_submissions;
    st.io_sqes = io.io_sqes;
    st.bytes_written = io.bytes_written;
    st.read_syscalls = io.read_syscalls;
    return st;
  }

 private:
  struct Entry {
    uint32_t seq = 0;      ///< segment holding the record
    uint64_t offset = 0;   ///< payload offset within the segment file
    uint32_t len = 0;      ///< payload length
  };

  /// Creates the store directory (and parents), opens/recovers segments.
  Status Open() {
    std::string partial;
    for (const char c : dir_ + "/") {
      if (c == '/' && !partial.empty()) ::mkdir(partial.c_str(), 0755);
      partial.push_back(c);
    }
    dir_fd_ = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd_ < 0) return ErrnoError("open dir " + dir_);

    std::vector<uint32_t> seqs;
    DIR* d = ::opendir(dir_.c_str());
    if (!d) return ErrnoError("opendir " + dir_);
    while (struct dirent* ent = ::readdir(d)) {
      unsigned seq = 0;
      char trailer = 0;
      if (::sscanf(ent->d_name, "segment-%8u.lo%c", &seq, &trailer) == 2 &&
          trailer == 'g')
        seqs.push_back(seq);
    }
    ::closedir(d);
    std::sort(seqs.begin(), seqs.end());

    Stopwatch recovery_timer;
    for (uint32_t seq : seqs) BS_RETURN_NOT_OK(RecoverSegment(seq));
    if (!seqs.empty()) stats_.recovery_us = recovery_timer.ElapsedMicros();
    if (segments_.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      BS_RETURN_NOT_OK(CreateSegmentLocked(1));
    } else {
      active_ = segments_.rbegin()->second;
      BS_RETURN_NOT_OK(
          io_->BeginAppend(active_->fd, active_->path, active_->size));
    }
    return Status::OK();
  }

  /// Opens one existing segment, replays its records into the index and
  /// truncates a torn tail. Called in ascending segment order.
  Status RecoverSegment(uint32_t seq) {
    std::string path = dir_ + "/" + SegmentFileName(seq);
    int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) return ErrnoError("open " + path);
    auto seg = std::make_shared<Segment>();
    seg->seq = seq;
    seg->fd = fd;
    seg->path = path;

    struct stat st;
    if (::fstat(fd, &st) != 0) return ErrnoError("fstat " + path);
    uint64_t file_size = static_cast<uint64_t>(st.st_size);

    char header[kSegmentHeaderSize];
    uint64_t hdr_seq = 0;
    bool header_ok =
        file_size >= kSegmentHeaderSize &&
        io_->Pread(fd, header, kSegmentHeaderSize, 0, path).ok() &&
        DecodeSegmentHeader(header, &hdr_seq) && hdr_seq == seq;
    if (!header_ok) {
      // A segment whose header never hit the disk holds nothing durable;
      // reset it to an empty segment.
      BS_LOG(Warn) << "pagelog: resetting segment with bad header: " << path;
      if (::ftruncate(fd, 0) != 0) return ErrnoError("ftruncate " + path);
      EncodeSegmentHeader(seq, header);
      BS_RETURN_NOT_OK(PwriteFull(fd, header, kSegmentHeaderSize, 0, path));
      file_size = kSegmentHeaderSize;
    }

    segments_.emplace(seq, seg);
    uint64_t valid_end = ScanRecords(
        io_.get(), fd, path, file_size,
        [&](const RecordHeader& h, uint64_t payload_off,
            const std::string& payload) {
          if (h.type == kRecordPut) {
            seg->total_payload += h.len;
            auto [it, inserted] = index_.try_emplace(
                h.id, Entry{seq, payload_off, h.len});
            if (inserted) {
              seg->live_payload += h.len;
              stats_.pages++;
              stats_.bytes += h.len;
            } else {
              // Duplicate left by a crashed compaction copy: dead bytes,
              // but remember it so a future Delete can tombstone every
              // on-disk incarnation of the id.
              auto& extras = extra_puts_[h.id];
              if (std::find(extras.begin(), extras.end(), seq) ==
                  extras.end())
                extras.push_back(seq);
            }
          } else if (h.type == kRecordDelete && payload.size() == 8) {
            uint64_t target = wire::GetU64(payload.data());
            auto it = index_.find(h.id);
            if (it != index_.end() && it->second.seq == target) {
              auto home = segments_.find(it->second.seq);
              if (home != segments_.end())
                home->second->live_payload -= it->second.len;
              stats_.pages--;
              stats_.bytes -= it->second.len;
              index_.erase(it);
            }
            DropExtra(h.id, static_cast<uint32_t>(target));
          }
        });
    if (valid_end < file_size) {
      BS_LOG(Warn) << "pagelog: dropping torn tail of " << path << " at byte "
                   << valid_end << " (file size " << file_size << ")";
      if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0)
        return ErrnoError("ftruncate " + path);
    }
    seg->size = valid_end;
    return Status::OK();
  }

  Status CreateSegmentLocked(uint32_t seq) {
    std::string path = dir_ + "/" + SegmentFileName(seq);
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoError("open " + path);
    auto seg = std::make_shared<Segment>();
    seg->seq = seq;
    seg->fd = fd;
    seg->path = path;
    BS_RETURN_NOT_OK(io_->BeginAppend(fd, path, 0));
    char header[kSegmentHeaderSize];
    EncodeSegmentHeader(seq, header);
    Status s = io_->Append(0, Slice(header, kSegmentHeaderSize), Slice());
    if (!s.ok()) {
      io_->AbandonActive();
      ::unlink(path.c_str());
      return s;
    }
    seg->size = kSegmentHeaderSize;
    // Persist the directory entry so the segment file itself survives a
    // crash (its records are made durable by the group-commit syncs).
    if (::fsync(dir_fd_) != 0) return ErrnoError("fsync dir " + dir_);
    stats_.syncs++;
    segments_.emplace(seq, seg);
    active_ = seg;
    return Status::OK();
  }

  /// Seals the active segment (flushing it) and opens the next one.
  Status RotateLocked() {
    BS_RETURN_NOT_OK(io_->Flush());
    stats_.syncs++;
    return CreateSegmentLocked(active_->seq + 1);
  }

  /// Appends one record to the active segment (rotating first if the target
  /// size would be exceeded) and bumps the append sequence number. Caller
  /// holds mu_ and updates index/live accounting.
  Status AppendLocked(RecordType type, const PageId& id, Slice payload,
                      Entry* out) {
    uint64_t rec_size = kRecordHeaderSize + payload.size();
    if (active_->size > kSegmentHeaderSize &&
        active_->size + rec_size > opts_.segment_target_bytes)
      BS_RETURN_NOT_OK(RotateLocked());

    char header[kRecordHeaderSize];
    EncodeRecordHeader(type, id, payload, header);
    uint64_t off = active_->size;
    Status s = io_->Append(off, Slice(header, kRecordHeaderSize), payload);
    if (!s.ok()) {
      // Roll back the partial record so the in-memory size keeps matching
      // the valid (written or staged) prefix.
      Status rb = io_->TruncateActive(off);
      if (!rb.ok()) {
        BS_LOG(Warn) << "pagelog: append rollback of " << active_->path
                     << " failed: " << rb.ToString();
      }
      return s;
    }
    active_->size += rec_size;
    if (type == kRecordPut) active_->total_payload += payload.size();
    append_seq_++;
    out->seq = active_->seq;
    out->offset = off + kRecordHeaderSize;
    out->len = static_cast<uint32_t>(payload.size());
    return Status::OK();
  }

  /// Group commit: blocks until every record appended up to sequence number
  /// `seq` is durable. The first waiter becomes the leader and issues one
  /// fdatasync covering everything appended so far; writers arriving while
  /// it is in flight coalesce into the next flush.
  Status SyncTo(uint64_t seq) {
    std::unique_lock<std::mutex> l(sync_mu_);
    while (synced_seq_ < seq) {
      if (sync_in_flight_) {
        sync_cv_.wait(l);
        continue;
      }
      sync_in_flight_ = true;
      uint64_t target;
      {
        std::lock_guard<std::mutex> lock(mu_);
        target = append_seq_;
      }
      l.unlock();
      // Records up to `target` are either staged for the active segment or
      // in a segment that was already flushed when it was sealed, so one
      // backend flush covers them all.
      Status fs = io_->Flush();
      l.lock();
      sync_in_flight_ = false;
      sync_cv_.notify_all();
      if (!fs.ok()) return fs;
      if (target > synced_seq_) synced_seq_ = target;
      std::lock_guard<std::mutex> lock(mu_);
      stats_.syncs++;
    }
    return Status::OK();
  }

  /// Unconditional flush of the active segment (compaction durability).
  Status SyncActive() {
    BS_RETURN_NOT_OK(io_->Flush());
    std::lock_guard<std::mutex> lock(mu_);
    stats_.syncs++;
    return Status::OK();
  }

  Status SyncDir() {
    if (::fsync(dir_fd_) != 0) return ErrnoError("fsync dir " + dir_);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.syncs++;
    return Status::OK();
  }

  /// Rewrites the live records of `victim` into the active segment and
  /// re-logs the tombstones other surviving segments still depend on.
  Status CompactSegment(const Segment& victim,
                        const std::set<uint32_t>& victim_seqs) {
    Status io = Status::OK();
    ScanRecords(
        io_.get(), victim.fd, victim.path, victim.size,
        [&](const RecordHeader& h, uint64_t payload_off,
            const std::string& payload) {
          if (!io.ok()) return;
          std::lock_guard<std::mutex> lock(mu_);
          if (h.type == kRecordPut) {
            auto it = index_.find(h.id);
            // Copy only if the index still points at exactly this record
            // (a concurrent Delete may have killed it mid-pass).
            if (it == index_.end() || it->second.seq != victim.seq ||
                it->second.offset != payload_off)
              return;
            Entry moved;
            io = AppendLocked(kRecordPut, h.id, Slice(payload), &moved);
            if (!io.ok()) return;
            it->second = moved;
            active_->live_payload += h.len;
            // Until the victim file is actually unlinked there are two
            // on-disk put records for this id; track the old one so a
            // Delete after a failed/crashed pass still tombstones it
            // (Compact()'s cleanup drops the marker once the unlink lands).
            auto& extras = extra_puts_[h.id];
            if (std::find(extras.begin(), extras.end(), victim.seq) ==
                extras.end())
              extras.push_back(victim.seq);
          } else if (h.type == kRecordDelete && payload.size() == 8) {
            uint64_t target = wire::GetU64(payload.data());
            // The tombstone is still load-bearing if the segment holding the
            // put record it kills survives this pass: without it, recovery
            // would resurrect the deleted page.
            if (segments_.count(static_cast<uint32_t>(target)) == 0 ||
                victim_seqs.count(static_cast<uint32_t>(target)) != 0)
              return;
            Entry ignored;
            io = AppendLocked(kRecordDelete, h.id, Slice(payload), &ignored);
          }
        });
    return io;
  }

  const std::string dir_;
  const LogPageStoreOptions opts_;
  std::unique_ptr<IoBackend> io_;
  Status init_error_;
  int dir_fd_ = -1;

  /// Removes a recovered-duplicate marker once its record is tombstoned or
  /// its segment disappears.
  void DropExtra(const PageId& id, uint32_t seq) {
    auto ex = extra_puts_.find(id);
    if (ex == extra_puts_.end()) return;
    auto& v = ex->second;
    v.erase(std::remove(v.begin(), v.end(), seq), v.end());
    if (v.empty()) extra_puts_.erase(ex);
  }

  mutable std::mutex mu_;
  std::unordered_map<PageId, Entry> index_;
  /// Segments of duplicate put records found during recovery (crashed
  /// compaction leftovers), keyed by page id; normally empty.
  std::unordered_map<PageId, std::vector<uint32_t>> extra_puts_;
  std::map<uint32_t, std::shared_ptr<Segment>> segments_;
  std::shared_ptr<Segment> active_;
  uint64_t append_seq_ = 0;
  PageStoreStats stats_;

  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  uint64_t synced_seq_ = 0;
  bool sync_in_flight_ = false;

  std::mutex compact_mu_;
};

}  // namespace

std::unique_ptr<provider::PageStore> MakeLogPageStore(
    const std::string& dir, LogPageStoreOptions opts) {
  return std::make_unique<LogPageStore>(dir, opts);
}

}  // namespace blobseer::pagelog
