#include "pagelog/log_page_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "pagelog/format.h"

namespace blobseer::pagelog {

namespace {

using provider::PageStore;
using provider::PageStoreStats;

/// Upper bound accepted for a record payload during recovery; anything
/// larger is treated as a corrupt length field.
constexpr uint64_t kMaxRecordPayload = 1ull << 30;

Status ErrnoError(const std::string& what) {
  return Status::IOError(what + ": " + strerror(errno));
}

Status PwriteFull(int fd, const char* p, size_t n, uint64_t off) {
  while (n > 0) {
    ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pwrite");
    }
    p += w;
    n -= static_cast<size_t>(w);
    off += static_cast<uint64_t>(w);
  }
  return Status::OK();
}

Status PreadFull(int fd, char* p, size_t n, uint64_t off) {
  while (n > 0) {
    ssize_t r = ::pread(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pread");
    }
    if (r == 0) return Status::Corruption("short read");
    p += r;
    n -= static_cast<size_t>(r);
    off += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

/// One on-disk segment. The fd stays open for the Segment's lifetime so
/// concurrent readers (and compaction) can keep serving a segment even
/// after its file has been unlinked; the destructor closes it.
struct Segment {
  uint32_t seq = 0;
  int fd = -1;
  uint64_t size = 0;  ///< append offset == bytes of valid records + header
  /// Payload bytes of all put records in the file vs. those still indexed;
  /// the difference is reclaimable garbage (delete tombstones and duplicate
  /// put records carry no live payload).
  uint64_t total_payload = 0;
  uint64_t live_payload = 0;

  ~Segment() {
    if (fd >= 0) ::close(fd);
  }
  double DeadRatio() const {
    if (total_payload == 0) return size > kSegmentHeaderSize ? 1.0 : 0.0;
    return 1.0 - static_cast<double>(live_payload) /
                     static_cast<double>(total_payload);
  }
};

/// Walks the records of a segment file, invoking `fn(header, payload_offset,
/// payload)` for every structurally valid record, and returns the byte offset
/// of the first torn/corrupt record (== `file_size` when the tail is clean).
using RecordFn =
    std::function<void(const RecordHeader&, uint64_t, const std::string&)>;

uint64_t ScanRecords(int fd, uint64_t file_size, const RecordFn& fn) {
  uint64_t off = kSegmentHeaderSize;
  char header[kRecordHeaderSize];
  std::string payload;
  while (off + kRecordHeaderSize <= file_size) {
    if (!PreadFull(fd, header, kRecordHeaderSize, off).ok()) return off;
    RecordHeader h;
    if (!DecodeRecordHeader(header, &h)) return off;
    if (h.len > kMaxRecordPayload) return off;
    if (off + kRecordHeaderSize + h.len > file_size) return off;
    payload.resize(h.len);
    if (h.len > 0 &&
        !PreadFull(fd, payload.data(), h.len, off + kRecordHeaderSize).ok())
      return off;
    if (!RecordCrcMatches(header, h, Slice(payload))) return off;
    fn(h, off + kRecordHeaderSize, payload);
    off += kRecordHeaderSize + h.len;
  }
  return off;
}

class LogPageStore : public PageStore {
 public:
  LogPageStore(std::string dir, LogPageStoreOptions opts)
      : dir_(std::move(dir)), opts_(opts) {
    init_error_ = Open();
    if (!init_error_.ok()) {
      BS_LOG(Error) << "pagelog open " << dir_
                    << " failed: " << init_error_.ToString();
    }
  }

  ~LogPageStore() override {
    // Best-effort durability on clean shutdown when running with sync off.
    if (init_error_.ok() && active_ && active_->fd >= 0)
      (void)::fdatasync(active_->fd);
    if (dir_fd_ >= 0) ::close(dir_fd_);
  }

  Status Put(const PageId& id, Slice data) override {
    BS_RETURN_NOT_OK(init_error_);
    uint64_t seq = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.writes++;
      auto it = index_.find(id);
      if (it != index_.end()) {
        if (it->second.len != data.size())
          return Status::AlreadyExists(
              "page object rewritten with new content: " + id.ToString());
        // Idempotent replay of a retried RPC — but the original append may
        // not be durable yet (its sync failed or is still in flight), so
        // the replay must still wait for a covering flush before acking.
        seq = append_seq_;
      } else {
        Entry e;
        BS_RETURN_NOT_OK(AppendLocked(kRecordPut, id, data, &e));
        index_.emplace(id, e);
        active_->live_payload += data.size();
        stats_.pages++;
        stats_.bytes += data.size();
        seq = append_seq_;
      }
    }
    if (opts_.sync) return SyncTo(seq);
    return Status::OK();
  }

  Status Read(const PageId& id, uint64_t offset, uint64_t len,
              std::string* out) override {
    BS_RETURN_NOT_OK(init_error_);
    Entry e;
    std::shared_ptr<Segment> seg;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.reads++;
      auto it = index_.find(id);
      if (it == index_.end()) return Status::NotFound("page " + id.ToString());
      e = it->second;
      seg = segments_.at(e.seq);
    }
    BS_RETURN_NOT_OK(provider::CheckReadRange(e.len, offset, &len));
    out->resize(len);
    if (len == 0) return Status::OK();
    // Record payloads are immutable once indexed, so the pread needs no lock;
    // the shared_ptr keeps the fd usable even if compaction unlinks the file.
    return PreadFull(seg->fd, out->data(), len, e.offset + offset)
        .WithContext("page " + id.ToString());
  }

  Status Delete(const PageId& id) override {
    BS_RETURN_NOT_OK(init_error_);
    uint64_t seq = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.deletes++;
      auto it = index_.find(id);
      if (it == index_.end()) {
        // Idempotent retry: an earlier Delete may have appended the
        // tombstone without its sync completing, so still wait for a
        // covering flush before acking.
        seq = append_seq_;
      } else {
        Entry e = it->second;
        // Tombstone payload names the segment holding the put record it
        // kills, so a tombstone replayed out of original order (after
        // compaction re-logs it) can never delete a newer incarnation of
        // the id.
        char target[8];
        wire::PutU64(target, e.seq);
        Entry ignored;
        BS_RETURN_NOT_OK(
            AppendLocked(kRecordDelete, id, Slice(target, 8), &ignored));
        // A crashed compaction can leave duplicate put records for this id
        // in other segments (found at recovery); each needs its own
        // tombstone or the id resurrects once the indexed record's segment
        // is compacted away.
        auto ex = extra_puts_.find(id);
        if (ex != extra_puts_.end()) {
          for (uint32_t dup_seq : ex->second) {
            if (segments_.count(dup_seq) == 0) continue;
            wire::PutU64(target, dup_seq);
            BS_RETURN_NOT_OK(
                AppendLocked(kRecordDelete, id, Slice(target, 8), &ignored));
          }
          extra_puts_.erase(ex);
        }
        index_.erase(id);
        auto seg = segments_.find(e.seq);
        if (seg != segments_.end()) seg->second->live_payload -= e.len;
        stats_.pages--;
        stats_.bytes -= e.len;
        seq = append_seq_;
      }
    }
    if (opts_.sync) BS_RETURN_NOT_OK(SyncTo(seq));
    return MaybeAutoCompact();
  }

  /// Delete-driven compaction trigger (compact_dead_ratio > 0): runs a
  /// full Compact() once any sealed segment crossed the threshold.
  /// Serialized by Compact()'s own lock, so concurrent deletes just queue.
  Status MaybeAutoCompact() {
    if (opts_.compact_dead_ratio <= 0) return Status::OK();
    bool trigger = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [seq, seg] : segments_) {
        if (seg == active_) continue;
        if (seg->DeadRatio() >= opts_.compact_dead_ratio) {
          trigger = true;
          break;
        }
      }
    }
    return trigger ? Compact() : Status::OK();
  }

  Status Compact() override {
    BS_RETURN_NOT_OK(init_error_);
    // One compaction at a time; readers and writers stay concurrent.
    std::lock_guard<std::mutex> compact_lock(compact_mu_);

    std::vector<std::shared_ptr<Segment>> victims;
    std::set<uint32_t> victim_seqs;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [seq, seg] : segments_) {
        if (seg == active_) continue;
        if (seg->DeadRatio() >= opts_.compact_min_dead_ratio) {
          victims.push_back(seg);
          victim_seqs.insert(seq);
        }
      }
    }

    for (const auto& victim : victims) {
      BS_RETURN_NOT_OK(CompactSegment(*victim, victim_seqs));
      // Copies and re-logged tombstones must be durable before the only
      // other copy of the data disappears.
      BS_RETURN_NOT_OK(SyncActive());
      std::string path = dir_ + "/" + SegmentFileName(victim->seq);
      {
        std::lock_guard<std::mutex> lock(mu_);
        segments_.erase(victim->seq);
        // Duplicate records the victim held are gone with its file.
        for (auto ex = extra_puts_.begin(); ex != extra_puts_.end();) {
          auto& v = ex->second;
          v.erase(std::remove(v.begin(), v.end(), victim->seq), v.end());
          ex = v.empty() ? extra_puts_.erase(ex) : std::next(ex);
        }
        stats_.compactions++;
      }
      if (::unlink(path.c_str()) != 0)
        return ErrnoError("unlink " + path);
      BS_RETURN_NOT_OK(SyncDir());
    }
    return Status::OK();
  }

  PageStoreStats GetStats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    PageStoreStats st = stats_;
    st.segments = segments_.size();
    st.dead_bytes = 0;
    for (const auto& [seq, seg] : segments_)
      st.dead_bytes += seg->total_payload - seg->live_payload;
    return st;
  }

 private:
  struct Entry {
    uint32_t seq = 0;      ///< segment holding the record
    uint64_t offset = 0;   ///< payload offset within the segment file
    uint32_t len = 0;      ///< payload length
  };

  /// Creates the store directory (and parents), opens/recovers segments.
  Status Open() {
    std::string partial;
    for (const char c : dir_ + "/") {
      if (c == '/' && !partial.empty()) ::mkdir(partial.c_str(), 0755);
      partial.push_back(c);
    }
    dir_fd_ = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
    if (dir_fd_ < 0) return ErrnoError("open dir " + dir_);

    std::vector<uint32_t> seqs;
    DIR* d = ::opendir(dir_.c_str());
    if (!d) return ErrnoError("opendir " + dir_);
    while (struct dirent* ent = ::readdir(d)) {
      unsigned seq = 0;
      char trailer = 0;
      if (::sscanf(ent->d_name, "segment-%8u.lo%c", &seq, &trailer) == 2 &&
          trailer == 'g')
        seqs.push_back(seq);
    }
    ::closedir(d);
    std::sort(seqs.begin(), seqs.end());

    for (uint32_t seq : seqs) BS_RETURN_NOT_OK(RecoverSegment(seq));
    if (segments_.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      BS_RETURN_NOT_OK(CreateSegmentLocked(1));
    } else {
      active_ = segments_.rbegin()->second;
    }
    return Status::OK();
  }

  /// Opens one existing segment, replays its records into the index and
  /// truncates a torn tail. Called in ascending segment order.
  Status RecoverSegment(uint32_t seq) {
    std::string path = dir_ + "/" + SegmentFileName(seq);
    int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) return ErrnoError("open " + path);
    auto seg = std::make_shared<Segment>();
    seg->seq = seq;
    seg->fd = fd;

    struct stat st;
    if (::fstat(fd, &st) != 0) return ErrnoError("fstat " + path);
    uint64_t file_size = static_cast<uint64_t>(st.st_size);

    char header[kSegmentHeaderSize];
    uint64_t hdr_seq = 0;
    bool header_ok = file_size >= kSegmentHeaderSize &&
                     PreadFull(fd, header, kSegmentHeaderSize, 0).ok() &&
                     DecodeSegmentHeader(header, &hdr_seq) && hdr_seq == seq;
    if (!header_ok) {
      // A segment whose header never hit the disk holds nothing durable;
      // reset it to an empty segment.
      BS_LOG(Warn) << "pagelog: resetting segment with bad header: " << path;
      if (::ftruncate(fd, 0) != 0) return ErrnoError("ftruncate " + path);
      EncodeSegmentHeader(seq, header);
      BS_RETURN_NOT_OK(PwriteFull(fd, header, kSegmentHeaderSize, 0));
      file_size = kSegmentHeaderSize;
    }

    segments_.emplace(seq, seg);
    uint64_t valid_end = ScanRecords(
        fd, file_size,
        [&](const RecordHeader& h, uint64_t payload_off,
            const std::string& payload) {
          if (h.type == kRecordPut) {
            seg->total_payload += h.len;
            auto [it, inserted] = index_.try_emplace(
                h.id, Entry{seq, payload_off, h.len});
            if (inserted) {
              seg->live_payload += h.len;
              stats_.pages++;
              stats_.bytes += h.len;
            } else {
              // Duplicate left by a crashed compaction copy: dead bytes,
              // but remember it so a future Delete can tombstone every
              // on-disk incarnation of the id.
              auto& extras = extra_puts_[h.id];
              if (std::find(extras.begin(), extras.end(), seq) ==
                  extras.end())
                extras.push_back(seq);
            }
          } else if (h.type == kRecordDelete && payload.size() == 8) {
            uint64_t target = wire::GetU64(payload.data());
            auto it = index_.find(h.id);
            if (it != index_.end() && it->second.seq == target) {
              auto home = segments_.find(it->second.seq);
              if (home != segments_.end())
                home->second->live_payload -= it->second.len;
              stats_.pages--;
              stats_.bytes -= it->second.len;
              index_.erase(it);
            }
            DropExtra(h.id, static_cast<uint32_t>(target));
          }
        });
    if (valid_end < file_size) {
      BS_LOG(Warn) << "pagelog: dropping torn tail of " << path << " at byte "
                   << valid_end << " (file size " << file_size << ")";
      if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0)
        return ErrnoError("ftruncate " + path);
    }
    seg->size = valid_end;
    return Status::OK();
  }

  Status CreateSegmentLocked(uint32_t seq) {
    std::string path = dir_ + "/" + SegmentFileName(seq);
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoError("open " + path);
    auto seg = std::make_shared<Segment>();
    seg->seq = seq;
    seg->fd = fd;
    char header[kSegmentHeaderSize];
    EncodeSegmentHeader(seq, header);
    Status s = PwriteFull(fd, header, kSegmentHeaderSize, 0);
    if (!s.ok()) {
      ::unlink(path.c_str());
      return s;
    }
    seg->size = kSegmentHeaderSize;
    // Persist the directory entry so the segment file itself survives a
    // crash (its records are made durable by the group-commit syncs).
    if (::fsync(dir_fd_) != 0) return ErrnoError("fsync dir " + dir_);
    stats_.syncs++;
    segments_.emplace(seq, seg);
    active_ = seg;
    return Status::OK();
  }

  /// Seals the active segment (flushing it) and opens the next one.
  Status RotateLocked() {
    if (::fdatasync(active_->fd) != 0) return ErrnoError("fdatasync segment");
    stats_.syncs++;
    return CreateSegmentLocked(active_->seq + 1);
  }

  /// Appends one record to the active segment (rotating first if the target
  /// size would be exceeded) and bumps the append sequence number. Caller
  /// holds mu_ and updates index/live accounting.
  Status AppendLocked(RecordType type, const PageId& id, Slice payload,
                      Entry* out) {
    uint64_t rec_size = kRecordHeaderSize + payload.size();
    if (active_->size > kSegmentHeaderSize &&
        active_->size + rec_size > opts_.segment_target_bytes)
      BS_RETURN_NOT_OK(RotateLocked());

    char header[kRecordHeaderSize];
    EncodeRecordHeader(type, id, payload, header);
    uint64_t off = active_->size;
    Status s = PwriteFull(active_->fd, header, kRecordHeaderSize, off);
    if (s.ok() && !payload.empty())
      s = PwriteFull(active_->fd, payload.data(), payload.size(),
                     off + kRecordHeaderSize);
    if (!s.ok()) {
      // Roll back the partial record so the in-memory size keeps matching
      // the on-disk valid prefix.
      (void)::ftruncate(active_->fd, static_cast<off_t>(off));
      return s;
    }
    active_->size += rec_size;
    if (type == kRecordPut) active_->total_payload += payload.size();
    append_seq_++;
    out->seq = active_->seq;
    out->offset = off + kRecordHeaderSize;
    out->len = static_cast<uint32_t>(payload.size());
    return Status::OK();
  }

  /// Group commit: blocks until every record appended up to sequence number
  /// `seq` is durable. The first waiter becomes the leader and issues one
  /// fdatasync covering everything appended so far; writers arriving while
  /// it is in flight coalesce into the next flush.
  Status SyncTo(uint64_t seq) {
    std::unique_lock<std::mutex> l(sync_mu_);
    while (synced_seq_ < seq) {
      if (sync_in_flight_) {
        sync_cv_.wait(l);
        continue;
      }
      sync_in_flight_ = true;
      uint64_t target;
      std::shared_ptr<Segment> seg;
      {
        std::lock_guard<std::mutex> lock(mu_);
        target = append_seq_;
        seg = active_;
      }
      l.unlock();
      // Records up to `target` are either in `seg` or in a segment that was
      // already flushed when it was sealed, so one fdatasync covers them all.
      int rc = ::fdatasync(seg->fd);
      l.lock();
      sync_in_flight_ = false;
      sync_cv_.notify_all();
      if (rc != 0) return ErrnoError("fdatasync segment");
      if (target > synced_seq_) synced_seq_ = target;
      std::lock_guard<std::mutex> lock(mu_);
      stats_.syncs++;
    }
    return Status::OK();
  }

  /// Unconditional flush of the active segment (compaction durability).
  Status SyncActive() {
    std::shared_ptr<Segment> seg;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seg = active_;
    }
    if (::fdatasync(seg->fd) != 0) return ErrnoError("fdatasync segment");
    std::lock_guard<std::mutex> lock(mu_);
    stats_.syncs++;
    return Status::OK();
  }

  Status SyncDir() {
    if (::fsync(dir_fd_) != 0) return ErrnoError("fsync dir " + dir_);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.syncs++;
    return Status::OK();
  }

  /// Rewrites the live records of `victim` into the active segment and
  /// re-logs the tombstones other surviving segments still depend on.
  Status CompactSegment(const Segment& victim,
                        const std::set<uint32_t>& victim_seqs) {
    Status io = Status::OK();
    ScanRecords(
        victim.fd, victim.size,
        [&](const RecordHeader& h, uint64_t payload_off,
            const std::string& payload) {
          if (!io.ok()) return;
          std::lock_guard<std::mutex> lock(mu_);
          if (h.type == kRecordPut) {
            auto it = index_.find(h.id);
            // Copy only if the index still points at exactly this record
            // (a concurrent Delete may have killed it mid-pass).
            if (it == index_.end() || it->second.seq != victim.seq ||
                it->second.offset != payload_off)
              return;
            Entry moved;
            io = AppendLocked(kRecordPut, h.id, Slice(payload), &moved);
            if (!io.ok()) return;
            it->second = moved;
            active_->live_payload += h.len;
            // Until the victim file is actually unlinked there are two
            // on-disk put records for this id; track the old one so a
            // Delete after a failed/crashed pass still tombstones it
            // (Compact()'s cleanup drops the marker once the unlink lands).
            auto& extras = extra_puts_[h.id];
            if (std::find(extras.begin(), extras.end(), victim.seq) ==
                extras.end())
              extras.push_back(victim.seq);
          } else if (h.type == kRecordDelete && payload.size() == 8) {
            uint64_t target = wire::GetU64(payload.data());
            // The tombstone is still load-bearing if the segment holding the
            // put record it kills survives this pass: without it, recovery
            // would resurrect the deleted page.
            if (segments_.count(static_cast<uint32_t>(target)) == 0 ||
                victim_seqs.count(static_cast<uint32_t>(target)) != 0)
              return;
            Entry ignored;
            io = AppendLocked(kRecordDelete, h.id, Slice(payload), &ignored);
          }
        });
    return io;
  }

  const std::string dir_;
  const LogPageStoreOptions opts_;
  Status init_error_;
  int dir_fd_ = -1;

  /// Removes a recovered-duplicate marker once its record is tombstoned or
  /// its segment disappears.
  void DropExtra(const PageId& id, uint32_t seq) {
    auto ex = extra_puts_.find(id);
    if (ex == extra_puts_.end()) return;
    auto& v = ex->second;
    v.erase(std::remove(v.begin(), v.end(), seq), v.end());
    if (v.empty()) extra_puts_.erase(ex);
  }

  mutable std::mutex mu_;
  std::unordered_map<PageId, Entry> index_;
  /// Segments of duplicate put records found during recovery (crashed
  /// compaction leftovers), keyed by page id; normally empty.
  std::unordered_map<PageId, std::vector<uint32_t>> extra_puts_;
  std::map<uint32_t, std::shared_ptr<Segment>> segments_;
  std::shared_ptr<Segment> active_;
  uint64_t append_seq_ = 0;
  PageStoreStats stats_;

  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  uint64_t synced_seq_ = 0;
  bool sync_in_flight_ = false;

  std::mutex compact_mu_;
};

}  // namespace

std::unique_ptr<provider::PageStore> MakeLogPageStore(
    const std::string& dir, LogPageStoreOptions opts) {
  return std::make_unique<LogPageStore>(dir, opts);
}

}  // namespace blobseer::pagelog
