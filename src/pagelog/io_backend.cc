#include "pagelog/io_backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "common/string_util.h"

#if defined(__linux__)
#include <sys/syscall.h>
#if __has_include(<linux/io_uring.h>) && defined(__NR_io_uring_setup) && \
    defined(__NR_io_uring_enter) && defined(__NR_io_uring_register)
#include <linux/io_uring.h>
#define BLOBSEER_HAS_IO_URING 1
#endif
#endif

namespace blobseer::pagelog {

namespace {

Status ErrnoStatus(const char* op, const std::string& path, uint64_t off) {
  int e = errno;
  return Status::IOError(StrFormat("%s %s @%llu: %s", op, path.c_str(),
                                   static_cast<unsigned long long>(off),
                                   std::strerror(e)));
}

}  // namespace

Status PwriteFull(int fd, const char* p, size_t n, uint64_t off,
                  const std::string& path) {
  while (n > 0) {
    ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pwrite", path, off);
    }
    p += w;
    n -= static_cast<size_t>(w);
    off += static_cast<uint64_t>(w);
  }
  return Status::OK();
}

Status PreadFull(int fd, char* p, size_t n, uint64_t off,
                 const std::string& path) {
  while (n > 0) {
    ssize_t r = ::pread(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread", path, off);
    }
    if (r == 0) {
      return Status::Corruption(
          StrFormat("short read: %s @%llu: %zu bytes past EOF", path.c_str(),
                    static_cast<unsigned long long>(off), n));
    }
    p += r;
    n -= static_cast<size_t>(r);
    off += static_cast<uint64_t>(r);
  }
  return Status::OK();
}

namespace {

// ---------------------------------------------------------------------------
// psync: the pre-seam code path, verbatim. Every Append issues buffered
// pwrites immediately; Flush is one fdatasync. Exists so "psync" stores are
// bit-for-bit and syscall-for-syscall what PR 2 shipped.
// ---------------------------------------------------------------------------

class PsyncBackend final : public IoBackend {
 public:
  const char* name() const override { return "psync"; }

  Status BeginAppend(int fd, const std::string& path, uint64_t size) override {
    std::lock_guard<std::mutex> l(mu_);
    fd_ = fd;
    path_ = path;
    (void)size;
    return Status::OK();
  }

  Status Append(uint64_t off, Slice header, Slice payload) override {
    int fd;
    std::string path;
    {
      std::lock_guard<std::mutex> l(mu_);
      fd = fd_;
      path = path_;
    }
    BS_RETURN_NOT_OK(PwriteFull(fd, header.data(), header.size(), off, path));
    Bump(1, header.size());
    if (!payload.empty()) {
      BS_RETURN_NOT_OK(PwriteFull(fd, payload.data(), payload.size(),
                                  off + header.size(), path));
      Bump(1, payload.size());
    }
    return Status::OK();
  }

  Status Flush() override {
    int fd;
    std::string path;
    {
      std::lock_guard<std::mutex> l(mu_);
      fd = fd_;
      path = path_;
    }
    if (fd < 0) return Status::OK();
    Bump(1, 0);
    if (::fdatasync(fd) < 0) return ErrnoStatus("fdatasync", path, 0);
    return Status::OK();
  }

  Status TruncateActive(uint64_t size) override {
    std::lock_guard<std::mutex> l(mu_);
    if (fd_ < 0) return Status::OK();
    if (::ftruncate(fd_, static_cast<off_t>(size)) < 0) {
      return ErrnoStatus("ftruncate", path_, size);
    }
    return Status::OK();
  }

  Status FinishAppend() override { return Flush(); }

  void AbandonActive() override {
    std::lock_guard<std::mutex> l(mu_);
    fd_ = -1;
    path_.clear();
  }

  Status Pread(int fd, char* p, size_t n, uint64_t off,
               const std::string& path) override {
    reads_.fetch_add(1, std::memory_order_relaxed);
    return PreadFull(fd, p, n, off, path);
  }

  IoBackendStats stats() const override {
    IoBackendStats s;
    s.io_submissions = subs_.load(std::memory_order_relaxed);
    s.io_sqes = s.io_submissions;
    s.bytes_written = bytes_.load(std::memory_order_relaxed);
    s.read_syscalls = reads_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  void Bump(uint64_t calls, uint64_t bytes) {
    subs_.fetch_add(calls, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  std::mutex mu_;  // guards fd_/path_ against BeginAppend vs leader Flush
  int fd_ = -1;
  std::string path_;
  std::atomic<uint64_t> subs_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> reads_{0};
};

#ifdef BLOBSEER_HAS_IO_URING

// ---------------------------------------------------------------------------
// uring: appends are memcpys into a registered staging arena; a flush turns
// the whole staged window into one io_uring submission — a single
// WRITE(_FIXED) SQE chained (IOSQE_IO_LINK) to an fdatasync SQE — so a
// group-commit window costs one io_uring_enter instead of two pwrite
// syscalls per record plus a sync. Optional O_DIRECT opens a second
// write-only fd and keeps spans block-aligned by rewriting the partial tail
// block from the arena; reads and truncates stay on the buffered fd, and
// FinishAppend trims alignment padding so files are byte-identical to psync.
//
// Lock order: store mu_ -> flush_mu_ -> io_mu_. flush_mu_ serializes ring
// use; io_mu_ guards the arena watermarks:
//
//   base_off_ ......... file offset of arena byte 0 (block-aligned when
//                       O_DIRECT is active, so arena offsets stay aligned)
//   written_end_ ...... file bytes below this are on the file
//   end_ .............. logical end of file; [written_end_, end_) is staged
//
// Crash-durability note: staged bytes live only in the arena until the next
// flush, so with sync=false the process-crash loss window is bounded by
// staging_bytes (psync's window is the kernel page cache instead). With
// sync=true every Put is flushed before it is acknowledged — same guarantee
// as psync.
// ---------------------------------------------------------------------------

constexpr uint64_t kDirectAlign = 4096;

uint64_t AlignDown(uint64_t v, uint64_t a) { return v & ~(a - 1); }
uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }

int UringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int UringEnter(int fd, unsigned to_submit, unsigned min_complete,
               unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int UringRegister(int fd, unsigned op, const void* arg, unsigned nr) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, op, arg, nr));
}

class UringBackend final : public IoBackend {
 public:
  explicit UringBackend(const IoBackendOptions& opts)
      : direct_(opts.direct_io),
        cap_(AlignUp(opts.staging_bytes < (64 << 10) ? (64 << 10)
                                                     : opts.staging_bytes,
                     kDirectAlign)) {}

  ~UringBackend() override {
    if (wfd_ >= 0 && wfd_ != fd_) ::close(wfd_);
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_len_);
    if (cq_mm_ != nullptr && cq_mm_ != sq_mm_) ::munmap(cq_mm_, cq_mm_len_);
    if (sq_mm_ != nullptr) ::munmap(sq_mm_, sq_mm_len_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
    if (arena_ != nullptr) ::munmap(arena_, cap_);
  }

  /// Sets up the ring and the staging arena; false leaves the object unusable
  /// (the factory returns nullptr and callers fall back to psync).
  bool Init() {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = UringSetup(kRingEntries, &p);
    if (ring_fd_ < 0) return false;

    size_t sq_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    size_t cq_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    bool single = false;
#ifdef IORING_FEAT_SINGLE_MMAP
    single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
#endif
    if (single && cq_sz > sq_sz) sq_sz = cq_sz;
    sq_mm_len_ = sq_sz;
    sq_mm_ = ::mmap(nullptr, sq_sz, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_mm_ == MAP_FAILED) {
      sq_mm_ = nullptr;
      return false;
    }
    if (single) {
      cq_mm_ = sq_mm_;
      cq_mm_len_ = sq_mm_len_;
    } else {
      cq_mm_len_ = cq_sz;
      cq_mm_ = ::mmap(nullptr, cq_sz, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_mm_ == MAP_FAILED) {
        cq_mm_ = nullptr;
        return false;
      }
    }
    sqes_len_ = p.sq_entries * sizeof(io_uring_sqe);
    void* sqes = ::mmap(nullptr, sqes_len_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) return false;
    sqes_ = static_cast<io_uring_sqe*>(sqes);

    char* sq = static_cast<char*>(sq_mm_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    char* cq = static_cast<char*>(cq_mm_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);

    void* arena = ::mmap(nullptr, cap_, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (arena == MAP_FAILED) return false;
    arena_ = static_cast<char*>(arena);

    // Registered buffers save per-op pin/unpin; kernels with tight memlock
    // accounting may refuse, in which case plain WRITE SQEs work the same.
    struct iovec iov;
    iov.iov_base = arena_;
    iov.iov_len = cap_;
    fixed_ = UringRegister(ring_fd_, IORING_REGISTER_BUFFERS, &iov, 1) == 0;
    return true;
  }

  const char* name() const override { return direct_ ? "uring-direct" : "uring"; }

  Status BeginAppend(int fd, const std::string& path, uint64_t size) override {
    std::lock_guard<std::mutex> fl(flush_mu_);
    if (fd_ >= 0) {
      BS_RETURN_NOT_OK(WriteStagedLocked(false));
      BS_RETURN_NOT_OK(TrimPaddingLocked());
      if (wfd_ != fd_) ::close(wfd_);
    }
    std::lock_guard<std::mutex> il(io_mu_);
    fd_ = fd;
    wfd_ = fd;
    path_ = path;
    direct_active_ = false;
    if (direct_) {
      int t = ::open(path.c_str(), O_WRONLY | O_DIRECT | O_CLOEXEC);
      if (t >= 0) {
        wfd_ = t;
        direct_active_ = true;
      } else {
        BS_LOG(Warn) << "O_DIRECT unavailable for " << path << " ("
                     << std::strerror(errno) << "); writing buffered";
      }
    }
    written_end_ = size;
    end_ = size;
    base_off_ = direct_active_ ? AlignDown(size, kDirectAlign) : size;
    if (direct_active_ && size > base_off_) {
      // Prime the arena with the partial tail block so the next aligned
      // write can rewrite it in place.
      Status st = PreadFull(fd_, arena_, size - base_off_, base_off_, path_);
      if (!st.ok()) {
        ::close(wfd_);
        wfd_ = fd_;
        direct_active_ = false;
        base_off_ = size;
      }
    }
    return Status::OK();
  }

  Status Append(uint64_t off, Slice header, Slice payload) override {
    std::unique_lock<std::mutex> il(io_mu_);
    if (fd_ < 0) return Status::Internal("uring append with no active file");
    if (off != end_) {
      return Status::Internal(StrFormat(
          "non-contiguous uring append: off=%llu logical end=%llu",
          static_cast<unsigned long long>(off),
          static_cast<unsigned long long>(end_)));
    }
    BS_RETURN_NOT_OK(StageLocked(il, header));
    BS_RETURN_NOT_OK(StageLocked(il, payload));
    return Status::OK();
  }

  Status Flush() override {
    std::lock_guard<std::mutex> fl(flush_mu_);
    if (fd_ < 0) return Status::OK();
    return WriteStagedLocked(true);
  }

  Status TruncateActive(uint64_t size) override {
    std::lock_guard<std::mutex> fl(flush_mu_);
    std::lock_guard<std::mutex> il(io_mu_);
    if (fd_ < 0) return Status::OK();
    if (size >= written_end_ && size <= end_) {
      end_ = size;  // only staged bytes past `size` — drop them
      return Status::OK();
    }
    if (::ftruncate(fd_, static_cast<off_t>(size)) < 0) {
      return ErrnoStatus("ftruncate", path_, size);
    }
    written_end_ = size;
    end_ = size;
    base_off_ = direct_active_ ? AlignDown(size, kDirectAlign) : size;
    if (direct_active_ && size > base_off_) {
      BS_RETURN_NOT_OK(
          PreadFull(fd_, arena_, size - base_off_, base_off_, path_));
    }
    return Status::OK();
  }

  Status FinishAppend() override {
    std::lock_guard<std::mutex> fl(flush_mu_);
    if (fd_ < 0) return Status::OK();
    BS_RETURN_NOT_OK(WriteStagedLocked(true));
    return TrimPaddingLocked();
  }

  void AbandonActive() override {
    std::lock_guard<std::mutex> fl(flush_mu_);
    std::lock_guard<std::mutex> il(io_mu_);
    if (wfd_ >= 0 && wfd_ != fd_) ::close(wfd_);
    fd_ = -1;
    wfd_ = -1;
    path_.clear();
    base_off_ = written_end_ = end_ = 0;
  }

  Status Pread(int fd, char* p, size_t n, uint64_t off,
               const std::string& path) override {
    {
      std::lock_guard<std::mutex> il(io_mu_);
      if (fd == fd_ && fd >= 0 && off + n > written_end_) {
        // Tail bytes are staged: serve them from the arena, fall through to
        // the file for the on-disk prefix (immutable once written).
        if (off + n > end_) {
          return Status::Corruption(StrFormat(
              "short read: %s @%llu: %llu bytes past staged end",
              path.c_str(), static_cast<unsigned long long>(off),
              static_cast<unsigned long long>(off + n - end_)));
        }
        uint64_t split = off > written_end_ ? off : written_end_;
        std::memcpy(p + (split - off), arena_ + (split - base_off_),
                    off + n - split);
        if (split == off) return Status::OK();
        n = split - off;
      }
    }
    reads_.fetch_add(1, std::memory_order_relaxed);
    return PreadFull(fd, p, n, off, path);
  }

  IoBackendStats stats() const override {
    IoBackendStats s;
    s.io_submissions = subs_.load(std::memory_order_relaxed);
    s.io_sqes = sqes_n_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_.load(std::memory_order_relaxed);
    s.read_syscalls = reads_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static constexpr unsigned kRingEntries = 8;

  /// Copies one slice into the arena, writing staged bytes back (without
  /// sync) whenever the arena fills; handles slices larger than the arena by
  /// streaming. io_mu_ is held on entry and exit.
  Status StageLocked(std::unique_lock<std::mutex>& il, Slice s) {
    const char* p = s.data();
    size_t n = s.size();
    while (n > 0) {
      uint64_t space = cap_ - (end_ - base_off_);
      if (space == 0) {
        il.unlock();
        {
          std::lock_guard<std::mutex> fl(flush_mu_);
          Status st = WriteStagedLocked(false);
          if (!st.ok()) {
            il.lock();
            return st;
          }
        }
        il.lock();
        continue;
      }
      size_t take = n < space ? n : static_cast<size_t>(space);
      std::memcpy(arena_ + (end_ - base_off_), p, take);
      end_ += take;
      p += take;
      n -= take;
    }
    return Status::OK();
  }

  /// Writes the staged window as one chained submission (write SQE linked to
  /// an fdatasync SQE when `datasync`). Requires flush_mu_; takes io_mu_
  /// only to snapshot and to advance watermarks, so appends keep staging
  /// while the kernel works. Falls back to buffered pwrite + fdatasync on
  /// any ring-level failure.
  Status WriteStagedLocked(bool datasync) {
    uint64_t we, e, b;
    int wfd;
    bool direct;
    {
      std::lock_guard<std::mutex> il(io_mu_);
      we = written_end_;
      e = end_;
      b = base_off_;
      wfd = wfd_;
      direct = direct_active_;
    }
    if (we == e && !datasync) return Status::OK();

    unsigned k = 0;
    uint64_t foff = 0, flen = 0;
    if (we != e) {
      if (direct) {
        foff = AlignDown(we, kDirectAlign);
        flen = AlignUp(e, kDirectAlign) - foff;
      } else {
        foff = we;
        flen = e - we;
      }
      io_uring_sqe* w = NextSqe(k++);
      w->opcode = fixed_ ? IORING_OP_WRITE_FIXED : IORING_OP_WRITE;
      w->fd = wfd;
      w->addr = reinterpret_cast<uint64_t>(arena_ + (foff - b));
      w->len = static_cast<unsigned>(flen);
      w->off = foff;
      if (datasync) w->flags |= IOSQE_IO_LINK;
    }
    if (datasync) {
      io_uring_sqe* f = NextSqe(k++);
      f->opcode = IORING_OP_FSYNC;
      f->fd = wfd;
      f->fsync_flags = IORING_FSYNC_DATASYNC;
    }

    int res[2] = {0, 0};
    Status st = SubmitAndWait(k, res);
    bool write_ok = st.ok();
    if (write_ok && we != e) {
      if (res[0] < 0) {
        errno = -res[0];
        st = ErrnoStatus("uring write", path_, foff);
        write_ok = false;
      } else if (static_cast<uint64_t>(res[0]) < flen) {
        // Short write: finish the span with buffered pwrite, then force a
        // plain fdatasync since the linked fsync was cancelled or stale.
        write_ok = false;
        st = Status::OK();
      }
    }
    if (!write_ok) {
      if (!st.ok()) {
        BS_LOG(Warn) << "uring submission failed (" << st.ToString()
                     << "); falling back to buffered pwrite";
      }
      BS_RETURN_NOT_OK(PwriteFull(fd_, arena_ + (we - b), e - we, we, path_));
      subs_.fetch_add(1, std::memory_order_relaxed);
      sqes_n_.fetch_add(1, std::memory_order_relaxed);
      if (datasync) {
        if (::fdatasync(fd_) < 0) return ErrnoStatus("fdatasync", path_, 0);
        subs_.fetch_add(1, std::memory_order_relaxed);
        sqes_n_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (datasync && res[k - 1] < 0) {
      errno = -res[k - 1];
      return ErrnoStatus("uring fdatasync", path_, 0);
    }
    bytes_.fetch_add(write_ok ? flen : e - we, std::memory_order_relaxed);

    std::lock_guard<std::mutex> il(io_mu_);
    written_end_ = e;
    // Compact: keep the (aligned) tail so the next write can rewrite its
    // block; concurrent appends may have grown end_ past the snapshot, so
    // move everything still live. memmove runs under io_mu_, the same lock
    // appenders hold while memcpying.
    uint64_t nb = direct_active_ ? AlignDown(e, kDirectAlign) : e;
    if (nb > b) {
      std::memmove(arena_, arena_ + (nb - b), end_ - nb);
      base_off_ = nb;
    }
    return Status::OK();
  }

  /// Fills SQE slot `i` of the current batch (zeroed, user_data = i).
  io_uring_sqe* NextSqe(unsigned i) {
    unsigned tail = *sq_tail_ + i;
    unsigned idx = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->user_data = i;
    sq_array_[idx] = idx;
    return sqe;
  }

  /// Publishes `k` SQEs, submits and waits for all completions in (normally)
  /// one io_uring_enter, and scatters cqe->res by user_data into `res`.
  Status SubmitAndWait(unsigned k, int* res) {
    if (k == 0) return Status::OK();
    __atomic_store_n(sq_tail_, *sq_tail_ + k, __ATOMIC_RELEASE);
    unsigned submitted = 0, done = 0;
    while (submitted < k) {
      int r = UringEnter(ring_fd_, k - submitted, k, IORING_ENTER_GETEVENTS);
      subs_.fetch_add(1, std::memory_order_relaxed);
      if (r < 0) {
        if (errno == EINTR) {
          // The kernel may have consumed SQEs before the signal; recount.
          submitted =
              k - (*sq_tail_ - __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE));
          continue;
        }
        return ErrnoStatus("io_uring_enter", path_, 0);
      }
      submitted += static_cast<unsigned>(r);
    }
    sqes_n_.fetch_add(k, std::memory_order_relaxed);
    while (done < k) {
      unsigned head = *cq_head_;
      unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == tail) {
        int r = UringEnter(ring_fd_, 0, k - done, IORING_ENTER_GETEVENTS);
        subs_.fetch_add(1, std::memory_order_relaxed);
        if (r < 0 && errno != EINTR) {
          return ErrnoStatus("io_uring_enter(wait)", path_, 0);
        }
        continue;
      }
      while (head != tail && done < k) {
        const io_uring_cqe* cqe = &cqes_[head & cq_mask_];
        if (cqe->user_data < 2) res[cqe->user_data] = cqe->res;
        head++;
        done++;
      }
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    }
    return Status::OK();
  }

  /// Drops O_DIRECT alignment padding past the logical end. Requires
  /// flush_mu_ with nothing staged.
  Status TrimPaddingLocked() {
    std::lock_guard<std::mutex> il(io_mu_);
    if (!direct_active_ || fd_ < 0) return Status::OK();
    if (::ftruncate(fd_, static_cast<off_t>(end_)) < 0) {
      return ErrnoStatus("ftruncate", path_, end_);
    }
    return Status::OK();
  }

  const bool direct_;
  const uint64_t cap_;

  int ring_fd_ = -1;
  void* sq_mm_ = nullptr;
  size_t sq_mm_len_ = 0;
  void* cq_mm_ = nullptr;
  size_t cq_mm_len_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_len_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  bool fixed_ = false;
  char* arena_ = nullptr;

  std::mutex flush_mu_;  // serializes ring use; taken before io_mu_
  std::mutex io_mu_;     // guards arena watermarks + active-file fields
  int fd_ = -1;
  int wfd_ = -1;
  std::string path_;
  bool direct_active_ = false;
  uint64_t base_off_ = 0;
  uint64_t written_end_ = 0;
  uint64_t end_ = 0;

  std::atomic<uint64_t> subs_{0};
  std::atomic<uint64_t> sqes_n_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> reads_{0};
};

#endif  // BLOBSEER_HAS_IO_URING

}  // namespace

bool IoUringSupported() {
#ifdef BLOBSEER_HAS_IO_URING
  static const bool supported = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    int fd = UringSetup(2, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
#else
  return false;
#endif
}

std::unique_ptr<IoBackend> MakePsyncIoBackend() {
  return std::make_unique<PsyncBackend>();
}

std::unique_ptr<IoBackend> MakeUringIoBackend(const IoBackendOptions& opts) {
#ifdef BLOBSEER_HAS_IO_URING
  auto b = std::make_unique<UringBackend>(opts);
  if (!b->Init()) return nullptr;
  return b;
#else
  (void)opts;
  return nullptr;
#endif
}

std::unique_ptr<IoBackend> MakeIoBackend(const std::string& spec,
                                         const IoBackendOptions& opts) {
  std::string s = spec;
  if (s.empty()) {
    const char* env = std::getenv("BLOBSEER_IO_BACKEND");
    if (env != nullptr && env[0] != '\0') s = env;
  }
  if (s.empty() || s == "psync") return MakePsyncIoBackend();
  if (s == "uring" || s == "uring-direct") {
    IoBackendOptions o = opts;
    if (s == "uring-direct") o.direct_io = true;
    auto b = MakeUringIoBackend(o);
    if (b != nullptr) return b;
    BS_LOG(Warn) << "io backend '" << s
                 << "' unavailable (io_uring unsupported on this kernel); "
                    "falling back to psync";
    return MakePsyncIoBackend();
  }
  BS_LOG(Warn) << "unknown io backend '" << s << "'; falling back to psync";
  return MakePsyncIoBackend();
}

}  // namespace blobseer::pagelog
