#include "vmanager/core.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/tree_layout.h"

namespace blobseer::vmanager {

VersionManagerCore::~VersionManagerCore() {
  // Fire remaining subscriptions outside mu_ — a callback may touch other
  // locks (it must not touch this core; there is no core left to touch).
  std::map<uint64_t, PublishWaiter> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphans.swap(waiters_);
  }
  for (auto& [token, w] : orphans)
    w.done(Status::Unavailable("version manager shutting down"));
}

Result<BlobDescriptor> VersionManagerCore::CreateBlob(uint64_t psize) {
  if (psize == 0 || !IsPow2(psize) || psize > (1ull << 30)) {
    return Status::InvalidArgument(
        StrFormat("page size must be a power of two in [1, 2^30], got %llu",
                  static_cast<unsigned long long>(psize)));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto blob = std::make_unique<BlobMeta>();
  blob->id = next_blob_id_++;
  blob->psize = psize;
  blob->ancestry.push_back(AncestrySegment{blob->id, kMaxVersion});
  BlobDescriptor desc;
  desc.id = blob->id;
  desc.psize = psize;
  desc.ancestry = blob->ancestry;
  blobs_.emplace(blob->id, std::move(blob));
  return desc;
}

VersionManagerCore::BlobMeta* VersionManagerCore::FindLocked(BlobId id) {
  auto it = blobs_.find(id);
  return it == blobs_.end() ? nullptr : it->second.get();
}

Result<BlobDescriptor> VersionManagerCore::OpenBlob(BlobId id,
                                                    Version* published,
                                                    uint64_t* published_size) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  BlobDescriptor desc;
  desc.id = blob->id;
  desc.psize = blob->psize;
  desc.ancestry = blob->ancestry;
  if (published) *published = blob->published;
  if (published_size) *published_size = blob->published_size;
  return desc;
}

Result<uint64_t> VersionManagerCore::SizeOfVersionLocked(BlobMeta* blob,
                                                         Version v) {
  if (v == 0) return uint64_t{0};
  BlobMeta* cur = blob;
  while (v <= cur->branch_version) {
    cur = FindLocked(cur->parent);
    if (!cur) return Status::Internal("broken branch ancestry");
  }
  auto it = cur->updates.find(v);
  if (it == cur->updates.end())
    return Status::NotFound(StrFormat("version %llu never assigned",
                                      static_cast<unsigned long long>(v)));
  return it->second.size_after;
}

std::vector<BorderEntry> VersionManagerCore::ComputeBordersLocked(
    BlobMeta* blob, Version vw, const Extent& range, uint64_t old_size,
    uint64_t new_size) {
  std::vector<Extent> targets =
      UpdateBorderBlocks(range, new_size, blob->psize);
  for (const Extent& e :
       EdgePageBlocks(range, old_size, blob->psize)) {
    targets.push_back(e);
  }
  std::vector<BorderEntry> out;
  if (targets.empty()) return out;

  // In-flight updates are the assigned-but-unpublished versions below vw
  // (paper 4.2). Scan newest-first so the first hit is the right label.
  // Aborted (unrepaired) updates still count: their node set will exist
  // with zero-fill semantics once repaired, and publication order ensures
  // readers never observe the gap.
  auto lo = blob->updates.upper_bound(blob->published);
  auto hi = blob->updates.lower_bound(vw);
  for (const Extent& block : targets) {
    Version found = kNoVersion;
    for (auto it = std::make_reverse_iterator(hi),
              rend = std::make_reverse_iterator(lo);
         it != rend; ++it) {
      const UpdateRecord& rec = it->second;
      if (NodeSetContains(block, rec.range, rec.size_after,
                                blob->psize)) {
        found = it->first;
        break;
      }
    }
    if (found != kNoVersion) out.push_back(BorderEntry{block, found});
  }
  return out;
}

Result<AssignTicket> VersionManagerCore::AssignVersion(BlobId id,
                                                       bool is_append,
                                                       uint64_t offset,
                                                       uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  if (size == 0) return Status::InvalidArgument("update of zero bytes");

  uint64_t old_size = blob->last_assigned_size;
  if (is_append) {
    offset = old_size;
  } else if (offset > old_size) {
    return Status::OutOfRange(StrFormat(
        "write offset %llu beyond blob size %llu",
        static_cast<unsigned long long>(offset),
        static_cast<unsigned long long>(old_size)));
  }
  uint64_t new_size = std::max(old_size, offset + size);

  Version vw = blob->last_assigned + 1;
  AssignTicket ticket;
  ticket.version = vw;
  ticket.offset = offset;
  ticket.size = size;
  ticket.old_size = old_size;
  ticket.new_size = new_size;
  ticket.published = blob->published;
  ticket.published_size = blob->published_size;
  ticket.borders =
      ComputeBordersLocked(blob, vw, ticket.range(), old_size, new_size);

  UpdateRecord rec;
  rec.range = ticket.range();
  rec.size_after = new_size;
  rec.assigned_at_us = clock_->NowMicros();
  // Pin the published frontier this update's borders resolve through: its
  // tree must stay walkable until the update publishes or aborts.
  rec.ref_floor = blob->published;
  blob->updates.emplace(vw, rec);
  blob->last_assigned = vw;
  blob->last_assigned_size = new_size;
  total_assigned_++;
  return ticket;
}

void VersionManagerCore::AdvancePublishedLocked(
    BlobMeta* blob, std::vector<std::function<void(Status)>>* fired) {
  bool advanced = false;
  for (;;) {
    auto it = blob->updates.find(blob->published + 1);
    if (it == blob->updates.end() || !it->second.completed) break;
    blob->published = it->first;
    blob->published_size = it->second.size_after;
    total_published_++;
    advanced = true;
  }
  if (!advanced) return;
  publish_cv_.notify_all();
  // Detach every subscription the new frontier satisfies; the caller
  // invokes them with OK after releasing mu_.
  while (!blob->waiter_index.empty() &&
         blob->waiter_index.begin()->first <= blob->published) {
    auto idx = blob->waiter_index.begin();
    auto w = waiters_.find(idx->second);
    if (w != waiters_.end()) {
      fired->push_back(std::move(w->second.done));
      waiters_.erase(w);
    }
    blob->waiter_index.erase(idx);
  }
}

Status VersionManagerCore::NotifySuccess(BlobId id, Version version) {
  std::vector<std::function<void(Status)>> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    BlobMeta* blob = FindLocked(id);
    if (!blob) return Status::NotFound("blob " + std::to_string(id));
    if (version <= blob->published) return Status::OK();  // idempotent replay
    auto it = blob->updates.find(version);
    if (it == blob->updates.end())
      return Status::NotFound("version never assigned");
    it->second.completed = true;
    AdvancePublishedLocked(blob, &fired);
  }
  for (auto& done : fired) done(Status::OK());
  return Status::OK();
}

Result<AbortOutcome> VersionManagerCore::AbortUpdate(BlobId id,
                                                     Version version) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  if (version <= blob->published)
    return Status::FailedPrecondition("version already published");
  auto it = blob->updates.find(version);
  if (it == blob->updates.end())
    return Status::NotFound("version never assigned");
  if (it->second.completed)
    return Status::FailedPrecondition("metadata already written");

  AbortOutcome outcome;
  if (version == blob->last_assigned && !it->second.aborted) {
    // Newest assigned version: nothing can reference its node set yet, so
    // the registration is simply retracted.
    blob->updates.erase(it);
    blob->last_assigned = version - 1;
    auto sz = SizeOfVersionLocked(blob, blob->last_assigned);
    if (!sz.ok()) return sz.status();
    blob->last_assigned_size = *sz;
    total_aborted_++;
    outcome.retracted = true;
    return outcome;
  }

  // Later versions may already border-link to this node set: repair it as a
  // zero-filled update so every referenced key exists (DESIGN.md 3.3).
  UpdateRecord& rec = it->second;
  if (!rec.aborted) {
    rec.aborted = true;
    total_aborted_++;
  }
  auto old_size = SizeOfVersionLocked(blob, version - 1);
  if (!old_size.ok()) return old_size.status();
  AssignTicket repair;
  repair.version = version;
  repair.offset = rec.range.offset;
  repair.size = rec.range.size;
  repair.old_size = *old_size;
  repair.new_size = rec.size_after;
  repair.published = blob->published;
  repair.published_size = blob->published_size;
  repair.borders = ComputeBordersLocked(blob, version, rec.range, *old_size,
                                        rec.size_after);
  outcome.retracted = false;
  outcome.repair = std::move(repair);
  return outcome;
}

Status VersionManagerCore::GetRecent(BlobId id, Version* version,
                                     uint64_t* size) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  *version = blob->published;
  *size = blob->published_size;
  return Status::OK();
}

Result<uint64_t> VersionManagerCore::GetSize(BlobId id, Version version) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  if (version > blob->published)
    return Status::NotFound(StrFormat(
        "version %llu not published", static_cast<unsigned long long>(version)));
  // A discarded snapshot is unreadable through every blob that could reach
  // it — its pages and tree nodes may already be swept.
  if (DiscardedLocked(blob, version))
    return Status::NotFound(StrFormat(
        "version %llu discarded", static_cast<unsigned long long>(version)));
  return SizeOfVersionLocked(blob, version);
}

Status VersionManagerCore::AwaitPublished(BlobId id, Version version,
                                          uint64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  auto published = [&] { return blob->published >= version; };
  if (published()) return Status::OK();
  if (timeout_us == 0) return Status::TimedOut("not yet published");
  if (timeout_us == UINT64_MAX) {
    // "Forever" must not pass through chrono::microseconds — the uint64 max
    // becomes a negative int64 duration and times out instantly.
    publish_cv_.wait(lock, published);
    return Status::OK();
  }
  if (publish_cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                           published)) {
    return Status::OK();
  }
  return Status::TimedOut("not yet published");
}

uint64_t VersionManagerCore::SubscribePublished(
    BlobId id, Version version, std::function<void(Status)> done) {
  Status inline_outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    BlobMeta* blob = FindLocked(id);
    if (!blob) {
      inline_outcome = Status::NotFound("blob " + std::to_string(id));
    } else if (blob->published >= version) {
      inline_outcome = Status::OK();
    } else {
      uint64_t token = next_waiter_token_++;
      waiters_.emplace(token,
                       PublishWaiter{id, version, std::move(done)});
      blob->waiter_index.emplace(version, token);
      return token;
    }
  }
  done(std::move(inline_outcome));
  return 0;
}

bool VersionManagerCore::CancelWaiter(uint64_t token, const Status& outcome) {
  std::function<void(Status)> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = waiters_.find(token);
    if (it == waiters_.end()) return false;  // already fired
    done = std::move(it->second.done);
    BlobMeta* blob = FindLocked(it->second.id);
    if (blob) {
      auto [lo, hi] = blob->waiter_index.equal_range(it->second.version);
      for (auto idx = lo; idx != hi; ++idx) {
        if (idx->second == token) {
          blob->waiter_index.erase(idx);
          break;
        }
      }
    }
    waiters_.erase(it);
  }
  done(outcome);
  return true;
}

bool VersionManagerCore::HasWaiter(uint64_t token) const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.count(token) != 0;
}

size_t VersionManagerCore::waiter_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

Result<BlobDescriptor> VersionManagerCore::Branch(BlobId id, Version version) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  if (version > blob->published)
    return Status::FailedPrecondition("branch point not published");
  if (DiscardedLocked(blob, version))
    return Status::FailedPrecondition("branch point discarded");
  auto size = SizeOfVersionLocked(blob, version);
  if (!size.ok()) return size.status();

  auto child = std::make_unique<BlobMeta>();
  child->id = next_blob_id_++;
  child->psize = blob->psize;
  child->parent = blob->id;
  child->branch_version = version;
  child->published = version;
  child->published_size = *size;
  child->last_assigned = version;
  child->last_assigned_size = *size;
  for (const AncestrySegment& seg : blob->ancestry) {
    if (seg.up_to < version) {
      child->ancestry.push_back(seg);
    } else {
      child->ancestry.push_back(AncestrySegment{seg.origin, version});
      break;
    }
  }
  child->ancestry.push_back(AncestrySegment{child->id, kMaxVersion});

  BlobDescriptor desc;
  desc.id = child->id;
  desc.psize = child->psize;
  desc.ancestry = child->ancestry;
  blobs_.emplace(child->id, std::move(child));
  return desc;
}

bool VersionManagerCore::PinnedLocked(const BlobMeta* blob,
                                      Version version) const {
  if (version == blob->published) return true;  // latest readable snapshot
  // Branch points: a child's whole history below its branch version
  // resolves through this snapshot's tree.
  for (const auto& [id, other] : blobs_) {
    if (other->parent == blob->id && other->branch_version == version)
      return true;
  }
  // In-flight updates border-link against the tree of the snapshot that was
  // published when they were assigned; that tree must stay walkable.
  for (auto it = blob->updates.upper_bound(blob->published);
       it != blob->updates.end(); ++it) {
    if (it->second.ref_floor == version) return true;
  }
  return false;
}

bool VersionManagerCore::DiscardedLocked(BlobMeta* blob, Version version) {
  if (version == 0) return false;
  BlobMeta* cur = blob;
  while (version <= cur->branch_version) {
    cur = FindLocked(cur->parent);
    if (!cur) return false;
  }
  auto it = cur->updates.find(version);
  return it != cur->updates.end() && it->second.discarded;
}

Status VersionManagerCore::SetRetention(BlobId id,
                                        const lifecycle::RetentionPolicy& p) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  blob->retention = p;
  return Status::OK();
}

Result<lifecycle::RetentionPolicy> VersionManagerCore::GetRetention(BlobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  return blob->retention;
}

Result<std::vector<VersionInfo>> VersionManagerCore::ListVersions(BlobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  std::vector<VersionInfo> out;
  out.reserve(blob->updates.size());
  for (const auto& [v, rec] : blob->updates) {
    VersionInfo info;
    info.version = v;
    info.size = rec.size_after;
    info.assigned_at_us = rec.assigned_at_us;
    info.published = v <= blob->published;
    info.discarded = rec.discarded;
    info.pinned = PinnedLocked(blob, v);
    out.push_back(info);
  }
  return out;
}

Result<std::vector<BlobId>> VersionManagerCore::ListBlobs() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BlobId> out;
  out.reserve(blobs_.size());
  for (const auto& [id, blob] : blobs_) out.push_back(id);
  return out;
}

Status VersionManagerCore::DiscardVersion(BlobId id, Version version) {
  std::lock_guard<std::mutex> lock(mu_);
  BlobMeta* blob = FindLocked(id);
  if (!blob) return Status::NotFound("blob " + std::to_string(id));
  if (version == 0 || version <= blob->branch_version)
    return Status::FailedPrecondition(
        "version not owned by this blob (discard it on its owner)");
  auto it = blob->updates.find(version);
  if (it == blob->updates.end())
    return Status::NotFound("version never assigned");
  if (version > blob->published)
    return Status::FailedPrecondition("version not published");
  if (it->second.discarded) return Status::OK();  // idempotent
  if (PinnedLocked(blob, version))
    return Status::FailedPrecondition(StrFormat(
        "version %llu pinned (latest, branch point, or in-flight floor)",
        static_cast<unsigned long long>(version)));
  // The record stays: ancestry size walks, publication bookkeeping and
  // border math still need it — only readability and GC liveness change.
  it->second.discarded = true;
  total_discarded_++;
  return Status::OK();
}

VmStats VersionManagerCore::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  VmStats st;
  st.blobs = blobs_.size();
  st.assigned = total_assigned_;
  st.published = total_published_;
  st.aborted = total_aborted_;
  st.discarded = total_discarded_;
  st.sync_waiters = waiters_.size();
  return st;
}

}  // namespace blobseer::vmanager
