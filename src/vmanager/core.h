// Version manager core logic, transport-free (paper sections 3.1, 4.2).
//
// The version manager is the system's only serialization point. It assigns
// totally-ordered snapshot versions to updates, tracks in-flight updates so
// it can hand writers the *partial border sets* that let concurrent
// WRITE/APPEND metadata writes proceed without waiting for each other, and
// publishes versions in order once their metadata is written — which is
// what makes every primitive atomic in the sense of [Guerraoui et al.].
#ifndef BLOBSEER_VMANAGER_CORE_H_
#define BLOBSEER_VMANAGER_CORE_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/blob_descriptor.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"
#include "lifecycle/retention.h"

namespace blobseer::vmanager {

/// Resolution of one border (or edge-page) block against the in-flight
/// updates the version manager knows about.
struct BorderEntry {
  Extent block;
  Version version = kNoVersion;

  friend bool operator==(const BorderEntry&, const BorderEntry&) = default;

  void EncodeTo(BinaryWriter* w) const {
    w->PutExtent(block);
    w->PutU64(version);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetExtent(&block));
    return r->GetU64(&version);
  }
};

/// Everything a writer needs to build the metadata of its new snapshot:
/// its assigned version, the resolved range, and border help (paper 4.2:
/// "the version manager will supply the problematic tree nodes ... directly
/// to the writer at the moment it is assigned a new snapshot version").
struct AssignTicket {
  Version version = kNoVersion;
  uint64_t offset = 0;    ///< resolved byte offset (== request for WRITE)
  uint64_t size = 0;      ///< update length in bytes
  uint64_t old_size = 0;  ///< blob size of snapshot version-1
  uint64_t new_size = 0;  ///< blob size after this update
  Version published = 0;  ///< latest published version at assign time
  uint64_t published_size = 0;
  /// Border + edge-page blocks resolvable only through in-flight updates.
  std::vector<BorderEntry> borders;

  Extent range() const { return Extent{offset, size}; }

  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(version);
    w->PutU64(offset);
    w->PutU64(size);
    w->PutU64(old_size);
    w->PutU64(new_size);
    w->PutU64(published);
    w->PutU64(published_size);
    PutVector(w, borders);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&version));
    BS_RETURN_NOT_OK(r->GetU64(&offset));
    BS_RETURN_NOT_OK(r->GetU64(&size));
    BS_RETURN_NOT_OK(r->GetU64(&old_size));
    BS_RETURN_NOT_OK(r->GetU64(&new_size));
    BS_RETURN_NOT_OK(r->GetU64(&published));
    BS_RETURN_NOT_OK(r->GetU64(&published_size));
    return GetVector(r, &borders);
  }
};

/// Result of AbortUpdate: either the version was retracted outright (it was
/// the newest assigned, nobody could have referenced it), or it must be
/// repaired as a zero-filled update using the returned ticket before it can
/// be published (see DESIGN.md section 3.3).
struct AbortOutcome {
  bool retracted = false;
  AssignTicket repair;

  void EncodeTo(BinaryWriter* w) const {
    w->PutBool(retracted);
    repair.EncodeTo(w);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetBool(&retracted));
    return repair.DecodeFrom(r);
  }
};

struct VmStats {
  uint64_t blobs = 0;
  uint64_t assigned = 0;
  uint64_t published = 0;
  uint64_t aborted = 0;
  uint64_t discarded = 0;
  uint64_t sync_waiters = 0;  ///< parked publication subscriptions
};

/// One version's lifecycle facts, as reported by ListVersions (the GC
/// sweeper feeds these to lifecycle::ExpiredVersions and walks the
/// segment trees of the survivors).
struct VersionInfo {
  Version version = kNoVersion;
  uint64_t size = 0;  ///< blob size of this snapshot
  uint64_t assigned_at_us = 0;
  bool published = false;
  bool discarded = false;
  /// Latest published, a child's branch point, or an in-flight update's
  /// published frontier — DiscardVersion refuses these.
  bool pinned = false;

  friend bool operator==(const VersionInfo&, const VersionInfo&) = default;

  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(version);
    w->PutU64(size);
    w->PutU64(assigned_at_us);
    w->PutBool(published);
    w->PutBool(discarded);
    w->PutBool(pinned);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&version));
    BS_RETURN_NOT_OK(r->GetU64(&size));
    BS_RETURN_NOT_OK(r->GetU64(&assigned_at_us));
    BS_RETURN_NOT_OK(r->GetBool(&published));
    BS_RETURN_NOT_OK(r->GetBool(&discarded));
    return r->GetBool(&pinned);
  }
};

/// Thread-safe version manager state machine.
class VersionManagerCore {
 public:
  /// `clock` stamps assignment times for age-based retention; nullptr means
  /// the real clock. Must outlive the core.
  explicit VersionManagerCore(Clock* clock = nullptr)
      : clock_(clock ? clock : RealClock::Default()) {}

  /// Fails every still-parked publication waiter with Unavailable.
  ~VersionManagerCore();

  /// Creates a blob with the given page size (power of two) and an empty,
  /// already-published snapshot 0.
  Result<BlobDescriptor> CreateBlob(uint64_t psize);

  /// Returns the descriptor plus current published version and size.
  Result<BlobDescriptor> OpenBlob(BlobId id, Version* published,
                                  uint64_t* published_size);

  /// Registers an update and assigns it the next version (paper WRITE step
  /// 10 / APPEND). For appends the offset is chosen by the manager: the
  /// size of snapshot version-1. Fails with OutOfRange if a WRITE offset
  /// lies beyond that size.
  Result<AssignTicket> AssignVersion(BlobId id, bool is_append,
                                     uint64_t offset, uint64_t size);

  /// Marks an update's metadata as durably written; publishes it (and any
  /// successors unblocked by it) in version order.
  Status NotifySuccess(BlobId id, Version version);

  /// Abandons an assigned, unpublished update (writer crash/failure path).
  Result<AbortOutcome> AbortUpdate(BlobId id, Version version);

  /// GET_RECENT: latest published version; guarantees v >= any version
  /// published before this call.
  Status GetRecent(BlobId id, Version* version, uint64_t* size);

  /// GET_SIZE of a *published* snapshot; NotFound if unpublished.
  Result<uint64_t> GetSize(BlobId id, Version version);

  /// Blocks up to timeout_us until `version` is published (0 = non-blocking
  /// probe, UINT64_MAX = forever). OK when published, TimedOut otherwise.
  Status AwaitPublished(BlobId id, Version version, uint64_t timeout_us);

  /// Non-blocking publication subscription (the server-push path behind
  /// AwaitPublished RPCs). If the outcome is already decided — version
  /// published (OK) or blob missing (NotFound) — `done` is invoked inline
  /// and 0 is returned. Otherwise the waiter parks in the registry and a
  /// non-zero token is returned; `done` fires exactly once, with OK when
  /// publication reaches `version`, or with the status a later CancelWaiter
  /// supplies (timeout watchdog, shutdown). A version retracted by
  /// AbortUpdate keeps its waiters parked: the version number is reassigned
  /// to the next update, and the waiter resolves when that one publishes.
  /// `done` runs under no core lock but may run on the publisher's thread —
  /// keep it cheap.
  uint64_t SubscribePublished(BlobId id, Version version,
                              std::function<void(Status)> done);

  /// Completes a parked waiter with `outcome`; returns false when the token
  /// is unknown (already fired). Safe to race with publication.
  bool CancelWaiter(uint64_t token, const Status& outcome);

  /// True while the token's waiter is still parked.
  bool HasWaiter(uint64_t token) const;

  /// Parked publication waiters (exposed as VmStats.sync_waiters).
  size_t waiter_count() const;

  /// BRANCH: new blob identical to `id` up to and including published
  /// version `version` (paper section 2.1).
  Result<BlobDescriptor> Branch(BlobId id, Version version);

  /// Stores the blob's retention policy (replacing any previous one). The
  /// policy is advisory state: the GC sweeper reads it back and turns it
  /// into DiscardVersion calls, so policy and manual deletion share a path.
  Status SetRetention(BlobId id, const lifecycle::RetentionPolicy& policy);
  Result<lifecycle::RetentionPolicy> GetRetention(BlobId id);

  /// Lifecycle facts for every version this blob owns (versions above its
  /// branch point), ascending. Version 0 (the empty snapshot) has no record
  /// and is never listed — it owns no pages or tree nodes.
  Result<std::vector<VersionInfo>> ListVersions(BlobId id);

  /// Every live blob id, ascending (the GC sweeper's enumeration).
  Result<std::vector<BlobId>> ListBlobs();

  /// Marks a published snapshot discarded: reads of it fail NotFound and
  /// the GC sweeper may reclaim its unshared pages and tree nodes. Refuses
  /// (FailedPrecondition) versions this blob does not own, unpublished
  /// versions, and pinned ones (latest published, child branch points,
  /// in-flight published frontiers). Idempotent on re-discard.
  Status DiscardVersion(BlobId id, Version version);

  VmStats GetStats() const;

 private:
  struct UpdateRecord {
    Extent range;
    uint64_t size_after = 0;
    bool completed = false;
    bool aborted = false;
    bool discarded = false;
    uint64_t assigned_at_us = 0;
    /// blob->published at assign time: the snapshot whose tree this update
    /// border-links against. Pinned until this update publishes or aborts.
    Version ref_floor = 0;
  };

  struct BlobMeta {
    BlobId id = kInvalidBlobId;
    uint64_t psize = 0;
    BlobId parent = kInvalidBlobId;
    Version branch_version = 0;  ///< versions <= this belong to ancestors
    Version published = 0;
    uint64_t published_size = 0;
    Version last_assigned = 0;
    uint64_t last_assigned_size = 0;
    std::map<Version, UpdateRecord> updates;  ///< versions > branch_version
    std::vector<AncestrySegment> ancestry;
    lifecycle::RetentionPolicy retention;
    /// Parked subscription tokens keyed by the version they wait for;
    /// drained (lowest first) as `published` advances past each key.
    std::multimap<Version, uint64_t> waiter_index;
  };

  /// One parked AwaitPublished subscription.
  struct PublishWaiter {
    BlobId id = kInvalidBlobId;
    Version version = kNoVersion;
    std::function<void(Status)> done;
  };

  BlobMeta* FindLocked(BlobId id);
  /// True when `version` must never be discarded from `blob`: the latest
  /// published snapshot, a child blob's branch point, or the published
  /// frontier an in-flight (unpublished) update border-links against.
  bool PinnedLocked(const BlobMeta* blob, Version version) const;
  /// True when the (possibly ancestor-owned) version has been discarded.
  bool DiscardedLocked(BlobMeta* blob, Version version);
  /// Size of (possibly ancestor-owned) version v; requires v assigned.
  Result<uint64_t> SizeOfVersionLocked(BlobMeta* blob, Version v);
  /// Builds the partial border set for an update (range, new_size) at
  /// assign time, scanning in-flight updates newest-first.
  std::vector<BorderEntry> ComputeBordersLocked(BlobMeta* blob, Version vw,
                                                const Extent& range,
                                                uint64_t old_size,
                                                uint64_t new_size);
  /// Advances `published` over completed successors; collects the `done`
  /// callbacks of waiters this satisfies into `*fired` (never invoked under
  /// mu_ — the caller runs them after unlocking, since an inline-transport
  /// callback may re-enter the core).
  void AdvancePublishedLocked(BlobMeta* blob,
                              std::vector<std::function<void(Status)>>* fired);

  Clock* clock_;
  mutable std::mutex mu_;
  std::condition_variable publish_cv_;
  std::map<BlobId, std::unique_ptr<BlobMeta>> blobs_;
  std::map<uint64_t, PublishWaiter> waiters_;  ///< token -> subscription
  uint64_t next_waiter_token_ = 1;
  BlobId next_blob_id_ = 1;
  uint64_t total_assigned_ = 0;
  uint64_t total_published_ = 0;
  uint64_t total_aborted_ = 0;
  uint64_t total_discarded_ = 0;
};

}  // namespace blobseer::vmanager

#endif  // BLOBSEER_VMANAGER_CORE_H_
