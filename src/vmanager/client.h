// Typed client for the version manager. Every method has an async variant
// returning Future<T>; the sync form is a thin wait over the same RPC.
#ifndef BLOBSEER_VMANAGER_CLIENT_H_
#define BLOBSEER_VMANAGER_CLIENT_H_

#include <string>

#include "common/blob_descriptor.h"
#include "common/future.h"
#include "common/result.h"
#include "rpc/channel_pool.h"
#include "vmanager/core.h"

namespace blobseer::vmanager {

/// OpenBlob outcome: descriptor plus the published frontier at open time.
struct OpenInfo {
  BlobDescriptor descriptor;
  Version published = 0;
  uint64_t published_size = 0;
};

class VersionManagerClient {
 public:
  VersionManagerClient(rpc::Transport* transport, std::string address,
                       size_t channels = 2);

  Result<BlobDescriptor> CreateBlob(uint64_t psize);
  Result<BlobDescriptor> OpenBlob(BlobId id, Version* published,
                                  uint64_t* published_size);
  Result<AssignTicket> AssignVersion(BlobId id, bool is_append,
                                     uint64_t offset, uint64_t size);
  Status NotifySuccess(BlobId id, Version version);
  Result<AbortOutcome> AbortUpdate(BlobId id, Version version);
  Result<RecentVersion> GetRecent(BlobId id);
  Result<uint64_t> GetSize(BlobId id, Version version);
  /// Returns OK / TimedOut like the core call.
  Status AwaitPublished(BlobId id, Version version, uint64_t timeout_us);
  Result<BlobDescriptor> Branch(BlobId id, Version version);
  Result<VmStats> GetStats();

  /// Version lifecycle (docs/lifecycle.md). Sync only: the GC sweeper
  /// drives these from its own background loop.
  Status SetRetention(BlobId id, const lifecycle::RetentionPolicy& policy);
  Result<lifecycle::RetentionPolicy> GetRetention(BlobId id);
  Result<std::vector<VersionInfo>> ListVersions(BlobId id);
  Status DiscardVersion(BlobId id, Version version);
  Result<std::vector<BlobId>> ListBlobs();

  Future<BlobDescriptor> CreateBlobAsync(uint64_t psize);
  Future<OpenInfo> OpenBlobAsync(BlobId id);
  Future<AssignTicket> AssignVersionAsync(BlobId id, bool is_append,
                                          uint64_t offset, uint64_t size);
  Future<Unit> NotifySuccessAsync(BlobId id, Version version);
  Future<AbortOutcome> AbortUpdateAsync(BlobId id, Version version);
  Future<RecentVersion> GetRecentAsync(BlobId id);
  Future<uint64_t> GetSizeAsync(BlobId id, Version version);
  /// Resolves OK once published, TimedOut after `timeout_us` (server-push:
  /// the server parks a subscription and answers from the publisher, so no
  /// thread is held on either side and the shared channel pool stays usable
  /// — responses are matched by correlation id, not arrival order).
  Future<Unit> AwaitPublishedAsync(BlobId id, Version version,
                                   uint64_t timeout_us);

  const std::string& address() const { return address_; }

 private:
  Result<rpc::Channel*> Chan();

  std::string address_;
  rpc::ChannelPool pool_;
};

}  // namespace blobseer::vmanager

#endif  // BLOBSEER_VMANAGER_CLIENT_H_
