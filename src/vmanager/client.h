// Typed client for the version manager.
#ifndef BLOBSEER_VMANAGER_CLIENT_H_
#define BLOBSEER_VMANAGER_CLIENT_H_

#include <string>

#include "common/blob_descriptor.h"
#include "common/result.h"
#include "rpc/channel_pool.h"
#include "vmanager/core.h"

namespace blobseer::vmanager {

class VersionManagerClient {
 public:
  VersionManagerClient(rpc::Transport* transport, std::string address,
                       size_t channels = 2);

  Result<BlobDescriptor> CreateBlob(uint64_t psize);
  Result<BlobDescriptor> OpenBlob(BlobId id, Version* published,
                                  uint64_t* published_size);
  Result<AssignTicket> AssignVersion(BlobId id, bool is_append,
                                     uint64_t offset, uint64_t size);
  Status NotifySuccess(BlobId id, Version version);
  Result<AbortOutcome> AbortUpdate(BlobId id, Version version);
  Status GetRecent(BlobId id, Version* version, uint64_t* size);
  Result<uint64_t> GetSize(BlobId id, Version version);
  /// Returns OK / TimedOut like the core call.
  Status AwaitPublished(BlobId id, Version version, uint64_t timeout_us);
  Result<BlobDescriptor> Branch(BlobId id, Version version);
  Result<VmStats> GetStats();

  const std::string& address() const { return address_; }

 private:
  std::string address_;
  rpc::ChannelPool pool_;
};

}  // namespace blobseer::vmanager

#endif  // BLOBSEER_VMANAGER_CLIENT_H_
