// RPC adapter for the version manager core.
#ifndef BLOBSEER_VMANAGER_SERVICE_H_
#define BLOBSEER_VMANAGER_SERVICE_H_

#include "rpc/transport.h"
#include "vmanager/core.h"

namespace blobseer::vmanager {

class VersionManagerService : public rpc::ServiceHandler {
 public:
  /// `clock` feeds assignment timestamps for age-based retention (nullptr =
  /// real clock); sim harnesses pass their virtual clock.
  explicit VersionManagerService(Clock* clock = nullptr) : core_(clock) {}

  Status Handle(rpc::Method method, Slice payload,
                std::string* response) override;

  VersionManagerCore& core() { return core_; }

 private:
  VersionManagerCore core_;
};

}  // namespace blobseer::vmanager

#endif  // BLOBSEER_VMANAGER_SERVICE_H_
