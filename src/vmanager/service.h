// RPC adapter for the version manager core.
//
// AwaitPublished is served on the async path: instead of parking a server
// thread in a condvar wait, the handler registers a publication subscription
// in the core and completes the RPC from the publisher (server-push). An
// optional timer executor runs the per-subscription timeout watchdog; without
// one, finite-timeout awaits fall back to the blocking wait.
#ifndef BLOBSEER_VMANAGER_SERVICE_H_
#define BLOBSEER_VMANAGER_SERVICE_H_

#include <memory>

#include "common/executor.h"
#include "rpc/transport.h"
#include "vmanager/core.h"

namespace blobseer::vmanager {

class VersionManagerService : public rpc::ServiceHandler {
 public:
  /// `clock` feeds assignment timestamps and watchdog sleeps (nullptr =
  /// real clock; sim harnesses pass their virtual clock). `timer_executor`
  /// hosts timeout watchdogs for parked awaits; it must outlive the
  /// service, though watchdogs themselves may outlive it by holding the
  /// core alive. nullptr disables the push path for finite timeouts.
  explicit VersionManagerService(Clock* clock = nullptr,
                                 Executor* timer_executor = nullptr)
      : core_(std::make_shared<VersionManagerCore>(clock)),
        clock_(clock ? clock : RealClock::Default()),
        timer_executor_(timer_executor) {}

  Status Handle(rpc::Method method, Slice payload,
                std::string* response) override;

  /// Parks AwaitPublished as a core subscription; everything else routes to
  /// the synchronous Handle.
  void HandleAsync(rpc::Method method, Slice payload,
                   rpc::HandlerDone done) override;

  VersionManagerCore& core() { return *core_; }

 private:
  // shared_ptr: timeout watchdogs capture the core and may legitimately
  // outlive the service (the core destructor fails their waiters, turning
  // the watchdog into a no-op).
  std::shared_ptr<VersionManagerCore> core_;
  Clock* clock_;
  Executor* timer_executor_;
};

}  // namespace blobseer::vmanager

#endif  // BLOBSEER_VMANAGER_SERVICE_H_
