#include "vmanager/client.h"

#include "rpc/call.h"
#include "vmanager/messages.h"

namespace blobseer::vmanager {

VersionManagerClient::VersionManagerClient(rpc::Transport* transport,
                                           std::string address,
                                           size_t channels)
    : address_(std::move(address)), pool_(transport, channels) {}

Result<rpc::Channel*> VersionManagerClient::Chan() {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  return ch->get();
}

Result<BlobDescriptor> VersionManagerClient::CreateBlob(uint64_t psize) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  CreateBlobRequest req{psize};
  CreateBlobResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmCreateBlob, req, &rsp));
  return std::move(rsp.descriptor);
}

Future<BlobDescriptor> VersionManagerClient::CreateBlobAsync(uint64_t psize) {
  auto ch = Chan();
  if (!ch.ok()) return MakeReadyFuture<BlobDescriptor>(ch.status());
  return rpc::CallMethodAsync<CreateBlobRequest, CreateBlobResponse>(
             *ch, rpc::Method::kVmCreateBlob, CreateBlobRequest{psize})
      .Then([](Result<CreateBlobResponse> rsp) -> Result<BlobDescriptor> {
        if (!rsp.ok()) return rsp.status();
        return std::move(rsp->descriptor);
      });
}

Result<BlobDescriptor> VersionManagerClient::OpenBlob(BlobId id,
                                                      Version* published,
                                                      uint64_t* published_size) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  OpenBlobRequest req{id};
  OpenBlobResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmOpenBlob, req, &rsp));
  if (published) *published = rsp.published;
  if (published_size) *published_size = rsp.published_size;
  return std::move(rsp.descriptor);
}

Future<OpenInfo> VersionManagerClient::OpenBlobAsync(BlobId id) {
  auto ch = Chan();
  if (!ch.ok()) return MakeReadyFuture<OpenInfo>(ch.status());
  return rpc::CallMethodAsync<OpenBlobRequest, OpenBlobResponse>(
             *ch, rpc::Method::kVmOpenBlob, OpenBlobRequest{id})
      .Then([](Result<OpenBlobResponse> rsp) -> Result<OpenInfo> {
        if (!rsp.ok()) return rsp.status();
        return OpenInfo{std::move(rsp->descriptor), rsp->published,
                        rsp->published_size};
      });
}

Result<AssignTicket> VersionManagerClient::AssignVersion(BlobId id,
                                                         bool is_append,
                                                         uint64_t offset,
                                                         uint64_t size) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  AssignRequest req{id, is_append, offset, size};
  AssignResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmAssignVersion, req, &rsp));
  return std::move(rsp.ticket);
}

Future<AssignTicket> VersionManagerClient::AssignVersionAsync(BlobId id,
                                                              bool is_append,
                                                              uint64_t offset,
                                                              uint64_t size) {
  auto ch = Chan();
  if (!ch.ok()) return MakeReadyFuture<AssignTicket>(ch.status());
  return rpc::CallMethodAsync<AssignRequest, AssignResponse>(
             *ch, rpc::Method::kVmAssignVersion,
             AssignRequest{id, is_append, offset, size})
      .Then([](Result<AssignResponse> rsp) -> Result<AssignTicket> {
        if (!rsp.ok()) return rsp.status();
        return std::move(rsp->ticket);
      });
}

Status VersionManagerClient::NotifySuccess(BlobId id, Version version) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  NotifyRequest req{id, version};
  NotifyResponse rsp;
  return rpc::CallMethod(*ch, rpc::Method::kVmNotifySuccess, req, &rsp);
}

Future<Unit> VersionManagerClient::NotifySuccessAsync(BlobId id,
                                                      Version version) {
  auto ch = Chan();
  if (!ch.ok()) return MakeReadyFuture(ch.status());
  return rpc::CallMethodAsync<NotifyRequest, NotifyResponse>(
             *ch, rpc::Method::kVmNotifySuccess, NotifyRequest{id, version})
      .Then([](Result<NotifyResponse> rsp) { return rsp.status(); });
}

Result<AbortOutcome> VersionManagerClient::AbortUpdate(BlobId id,
                                                       Version version) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  AbortRequest req{id, version};
  AbortResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmAbortUpdate, req, &rsp));
  return std::move(rsp.outcome);
}

Future<AbortOutcome> VersionManagerClient::AbortUpdateAsync(BlobId id,
                                                            Version version) {
  auto ch = Chan();
  if (!ch.ok()) return MakeReadyFuture<AbortOutcome>(ch.status());
  return rpc::CallMethodAsync<AbortRequest, AbortResponse>(
             *ch, rpc::Method::kVmAbortUpdate, AbortRequest{id, version})
      .Then([](Result<AbortResponse> rsp) -> Result<AbortOutcome> {
        if (!rsp.ok()) return rsp.status();
        return std::move(rsp->outcome);
      });
}

Result<RecentVersion> VersionManagerClient::GetRecent(BlobId id) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  GetRecentRequest req{id};
  GetRecentResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmGetRecent, req, &rsp));
  return RecentVersion{rsp.version, rsp.size};
}

Future<RecentVersion> VersionManagerClient::GetRecentAsync(BlobId id) {
  auto ch = Chan();
  if (!ch.ok()) return MakeReadyFuture<RecentVersion>(ch.status());
  return rpc::CallMethodAsync<GetRecentRequest, GetRecentResponse>(
             *ch, rpc::Method::kVmGetRecent, GetRecentRequest{id})
      .Then([](Result<GetRecentResponse> rsp) -> Result<RecentVersion> {
        if (!rsp.ok()) return rsp.status();
        return RecentVersion{rsp->version, rsp->size};
      });
}

Result<uint64_t> VersionManagerClient::GetSize(BlobId id, Version version) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  GetSizeRequest req{id, version};
  GetSizeResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmGetSize, req, &rsp));
  return rsp.size;
}

Future<uint64_t> VersionManagerClient::GetSizeAsync(BlobId id,
                                                    Version version) {
  auto ch = Chan();
  if (!ch.ok()) return MakeReadyFuture<uint64_t>(ch.status());
  return rpc::CallMethodAsync<GetSizeRequest, GetSizeResponse>(
             *ch, rpc::Method::kVmGetSize, GetSizeRequest{id, version})
      .Then([](Result<GetSizeResponse> rsp) -> Result<uint64_t> {
        if (!rsp.ok()) return rsp.status();
        return rsp->size;
      });
}

Status VersionManagerClient::AwaitPublished(BlobId id, Version version,
                                            uint64_t timeout_us) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  AwaitRequest req{id, version, timeout_us};
  AwaitResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmAwaitPublished, req, &rsp));
  return rsp.published ? Status::OK() : Status::TimedOut("not published");
}

Future<Unit> VersionManagerClient::AwaitPublishedAsync(BlobId id,
                                                       Version version,
                                                       uint64_t timeout_us) {
  auto ch = Chan();
  if (!ch.ok()) return MakeReadyFuture(ch.status());
  return rpc::CallMethodAsync<AwaitRequest, AwaitResponse>(
             *ch, rpc::Method::kVmAwaitPublished,
             AwaitRequest{id, version, timeout_us})
      .Then([](Result<AwaitResponse> rsp) -> Status {
        if (!rsp.ok()) return rsp.status();
        return rsp->published ? Status::OK()
                              : Status::TimedOut("not published");
      });
}

Result<BlobDescriptor> VersionManagerClient::Branch(BlobId id,
                                                    Version version) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  BranchRequest req{id, version};
  BranchResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmBranch, req, &rsp));
  return std::move(rsp.descriptor);
}

Result<VmStats> VersionManagerClient::GetStats() {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  VmStatsRequest req;
  VmStatsResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmStats, req, &rsp));
  VmStats st;
  st.blobs = rsp.blobs;
  st.assigned = rsp.assigned;
  st.published = rsp.published;
  st.aborted = rsp.aborted;
  st.discarded = rsp.discarded;
  st.sync_waiters = rsp.sync_waiters;
  return st;
}

Status VersionManagerClient::SetRetention(
    BlobId id, const lifecycle::RetentionPolicy& policy) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  SetRetentionRequest req{id, policy};
  SetRetentionResponse rsp;
  return rpc::CallMethod(*ch, rpc::Method::kVmSetRetention, req, &rsp);
}

Result<lifecycle::RetentionPolicy> VersionManagerClient::GetRetention(
    BlobId id) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  GetRetentionRequest req{id};
  GetRetentionResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmGetRetention, req, &rsp));
  return rsp.policy;
}

Result<std::vector<VersionInfo>> VersionManagerClient::ListVersions(BlobId id) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  ListVersionsRequest req{id};
  ListVersionsResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmListVersions, req, &rsp));
  return std::move(rsp.versions);
}

Status VersionManagerClient::DiscardVersion(BlobId id, Version version) {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  DiscardVersionRequest req{id, version};
  DiscardVersionResponse rsp;
  return rpc::CallMethod(*ch, rpc::Method::kVmDiscardVersion, req, &rsp);
}

Result<std::vector<BlobId>> VersionManagerClient::ListBlobs() {
  auto ch = Chan();
  if (!ch.ok()) return ch.status();
  ListBlobsRequest req;
  ListBlobsResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(*ch, rpc::Method::kVmListBlobs, req, &rsp));
  return std::move(rsp.blobs);
}

}  // namespace blobseer::vmanager
