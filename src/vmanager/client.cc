#include "vmanager/client.h"

#include "rpc/call.h"
#include "vmanager/messages.h"

namespace blobseer::vmanager {

VersionManagerClient::VersionManagerClient(rpc::Transport* transport,
                                           std::string address,
                                           size_t channels)
    : address_(std::move(address)), pool_(transport, channels) {}

Result<BlobDescriptor> VersionManagerClient::CreateBlob(uint64_t psize) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  CreateBlobRequest req{psize};
  CreateBlobResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kVmCreateBlob, req, &rsp));
  return std::move(rsp.descriptor);
}

Result<BlobDescriptor> VersionManagerClient::OpenBlob(BlobId id,
                                                      Version* published,
                                                      uint64_t* published_size) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  OpenBlobRequest req{id};
  OpenBlobResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kVmOpenBlob, req, &rsp));
  if (published) *published = rsp.published;
  if (published_size) *published_size = rsp.published_size;
  return std::move(rsp.descriptor);
}

Result<AssignTicket> VersionManagerClient::AssignVersion(BlobId id,
                                                         bool is_append,
                                                         uint64_t offset,
                                                         uint64_t size) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  AssignRequest req{id, is_append, offset, size};
  AssignResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kVmAssignVersion, req, &rsp));
  return std::move(rsp.ticket);
}

Status VersionManagerClient::NotifySuccess(BlobId id, Version version) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  NotifyRequest req{id, version};
  NotifyResponse rsp;
  return rpc::CallMethod(ch->get(), rpc::Method::kVmNotifySuccess, req, &rsp);
}

Result<AbortOutcome> VersionManagerClient::AbortUpdate(BlobId id,
                                                       Version version) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  AbortRequest req{id, version};
  AbortResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kVmAbortUpdate, req, &rsp));
  return std::move(rsp.outcome);
}

Status VersionManagerClient::GetRecent(BlobId id, Version* version,
                                       uint64_t* size) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  GetRecentRequest req{id};
  GetRecentResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kVmGetRecent, req, &rsp));
  *version = rsp.version;
  *size = rsp.size;
  return Status::OK();
}

Result<uint64_t> VersionManagerClient::GetSize(BlobId id, Version version) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  GetSizeRequest req{id, version};
  GetSizeResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kVmGetSize, req, &rsp));
  return rsp.size;
}

Status VersionManagerClient::AwaitPublished(BlobId id, Version version,
                                            uint64_t timeout_us) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  AwaitRequest req{id, version, timeout_us};
  AwaitResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kVmAwaitPublished, req, &rsp));
  return rsp.published ? Status::OK() : Status::TimedOut("not published");
}

Result<BlobDescriptor> VersionManagerClient::Branch(BlobId id,
                                                    Version version) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  BranchRequest req{id, version};
  BranchResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kVmBranch, req, &rsp));
  return std::move(rsp.descriptor);
}

Result<VmStats> VersionManagerClient::GetStats() {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  VmStatsRequest req;
  VmStatsResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kVmStats, req, &rsp));
  VmStats st;
  st.blobs = rsp.blobs;
  st.assigned = rsp.assigned;
  st.published = rsp.published;
  st.aborted = rsp.aborted;
  return st;
}

}  // namespace blobseer::vmanager
