// Wire messages for the version manager service.
#ifndef BLOBSEER_VMANAGER_MESSAGES_H_
#define BLOBSEER_VMANAGER_MESSAGES_H_

#include "common/blob_descriptor.h"
#include "common/serde.h"
#include "vmanager/core.h"

namespace blobseer::vmanager {

struct CreateBlobRequest {
  uint64_t psize = 0;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(psize); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&psize); }
};

struct CreateBlobResponse {
  BlobDescriptor descriptor;
  void EncodeTo(BinaryWriter* w) const { descriptor.EncodeTo(w); }
  Status DecodeFrom(BinaryReader* r) { return descriptor.DecodeFrom(r); }
};

struct OpenBlobRequest {
  BlobId id = kInvalidBlobId;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(id); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&id); }
};

struct OpenBlobResponse {
  BlobDescriptor descriptor;
  Version published = 0;
  uint64_t published_size = 0;
  void EncodeTo(BinaryWriter* w) const {
    descriptor.EncodeTo(w);
    w->PutU64(published);
    w->PutU64(published_size);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(descriptor.DecodeFrom(r));
    BS_RETURN_NOT_OK(r->GetU64(&published));
    return r->GetU64(&published_size);
  }
};

struct AssignRequest {
  BlobId id = kInvalidBlobId;
  bool is_append = false;
  uint64_t offset = 0;
  uint64_t size = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutBool(is_append);
    w->PutU64(offset);
    w->PutU64(size);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    BS_RETURN_NOT_OK(r->GetBool(&is_append));
    BS_RETURN_NOT_OK(r->GetU64(&offset));
    return r->GetU64(&size);
  }
};

struct AssignResponse {
  AssignTicket ticket;
  void EncodeTo(BinaryWriter* w) const { ticket.EncodeTo(w); }
  Status DecodeFrom(BinaryReader* r) { return ticket.DecodeFrom(r); }
};

struct NotifyRequest {
  BlobId id = kInvalidBlobId;
  Version version = kNoVersion;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutU64(version);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    return r->GetU64(&version);
  }
};

struct NotifyResponse {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct AbortRequest {
  BlobId id = kInvalidBlobId;
  Version version = kNoVersion;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutU64(version);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    return r->GetU64(&version);
  }
};

struct AbortResponse {
  AbortOutcome outcome;
  void EncodeTo(BinaryWriter* w) const { outcome.EncodeTo(w); }
  Status DecodeFrom(BinaryReader* r) { return outcome.DecodeFrom(r); }
};

struct GetRecentRequest {
  BlobId id = kInvalidBlobId;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(id); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&id); }
};

struct GetRecentResponse {
  Version version = 0;
  uint64_t size = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(version);
    w->PutU64(size);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&version));
    return r->GetU64(&size);
  }
};

struct GetSizeRequest {
  BlobId id = kInvalidBlobId;
  Version version = kNoVersion;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutU64(version);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    return r->GetU64(&version);
  }
};

struct GetSizeResponse {
  uint64_t size = 0;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(size); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&size); }
};

struct AwaitRequest {
  BlobId id = kInvalidBlobId;
  Version version = kNoVersion;
  uint64_t timeout_us = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutU64(version);
    w->PutU64(timeout_us);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    BS_RETURN_NOT_OK(r->GetU64(&version));
    return r->GetU64(&timeout_us);
  }
};

struct AwaitResponse {
  bool published = false;
  void EncodeTo(BinaryWriter* w) const { w->PutBool(published); }
  Status DecodeFrom(BinaryReader* r) { return r->GetBool(&published); }
};

struct BranchRequest {
  BlobId id = kInvalidBlobId;
  Version version = kNoVersion;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutU64(version);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    return r->GetU64(&version);
  }
};

struct BranchResponse {
  BlobDescriptor descriptor;
  void EncodeTo(BinaryWriter* w) const { descriptor.EncodeTo(w); }
  Status DecodeFrom(BinaryReader* r) { return descriptor.DecodeFrom(r); }
};

struct VmStatsRequest {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct VmStatsResponse {
  uint64_t blobs = 0;
  uint64_t assigned = 0;
  uint64_t published = 0;
  uint64_t aborted = 0;
  uint64_t discarded = 0;
  uint64_t sync_waiters = 0;  ///< parked AwaitPublished subscriptions
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(blobs);
    w->PutU64(assigned);
    w->PutU64(published);
    w->PutU64(aborted);
    w->PutU64(discarded);
    w->PutU64(sync_waiters);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&blobs));
    BS_RETURN_NOT_OK(r->GetU64(&assigned));
    BS_RETURN_NOT_OK(r->GetU64(&published));
    BS_RETURN_NOT_OK(r->GetU64(&aborted));
    // Gated trailing decodes: older peers omit these fields.
    if (r->remaining() == 0) return Status::OK();
    BS_RETURN_NOT_OK(r->GetU64(&discarded));
    if (r->remaining() == 0) return Status::OK();
    return r->GetU64(&sync_waiters);
  }
};

struct SetRetentionRequest {
  BlobId id = kInvalidBlobId;
  lifecycle::RetentionPolicy policy;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    policy.EncodeTo(w);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    return policy.DecodeFrom(r);
  }
};

struct SetRetentionResponse {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct GetRetentionRequest {
  BlobId id = kInvalidBlobId;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(id); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&id); }
};

struct GetRetentionResponse {
  lifecycle::RetentionPolicy policy;
  void EncodeTo(BinaryWriter* w) const { policy.EncodeTo(w); }
  Status DecodeFrom(BinaryReader* r) { return policy.DecodeFrom(r); }
};

struct ListVersionsRequest {
  BlobId id = kInvalidBlobId;
  void EncodeTo(BinaryWriter* w) const { w->PutU64(id); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU64(&id); }
};

struct ListVersionsResponse {
  std::vector<VersionInfo> versions;
  void EncodeTo(BinaryWriter* w) const { PutVector(w, versions); }
  Status DecodeFrom(BinaryReader* r) { return GetVector(r, &versions); }
};

struct DiscardVersionRequest {
  BlobId id = kInvalidBlobId;
  Version version = kNoVersion;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(id);
    w->PutU64(version);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&id));
    return r->GetU64(&version);
  }
};

struct DiscardVersionResponse {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct ListBlobsRequest {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct ListBlobsResponse {
  std::vector<BlobId> blobs;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU32(static_cast<uint32_t>(blobs.size()));
    for (BlobId id : blobs) w->PutU64(id);
  }
  Status DecodeFrom(BinaryReader* r) {
    uint32_t n = 0;
    BS_RETURN_NOT_OK(r->GetU32(&n));
    if (static_cast<uint64_t>(n) * 8 > r->remaining())
      return Status::Corruption("blob count exceeds payload");
    blobs.resize(n);
    for (auto& id : blobs) BS_RETURN_NOT_OK(r->GetU64(&id));
    return Status::OK();
  }
};

}  // namespace blobseer::vmanager

#endif  // BLOBSEER_VMANAGER_MESSAGES_H_
