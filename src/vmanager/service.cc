#include "vmanager/service.h"

#include "rpc/call.h"
#include "vmanager/messages.h"

namespace blobseer::vmanager {

Status VersionManagerService::Handle(rpc::Method method, Slice payload,
                                     std::string* response) {
  using rpc::DispatchTyped;
  switch (method) {
    case rpc::Method::kVmCreateBlob:
      return DispatchTyped<CreateBlobRequest, CreateBlobResponse>(
          payload, response,
          [this](const CreateBlobRequest& req, CreateBlobResponse* rsp) {
            auto d = core_->CreateBlob(req.psize);
            if (!d.ok()) return d.status();
            rsp->descriptor = std::move(d).ValueUnsafe();
            return Status::OK();
          });
    case rpc::Method::kVmOpenBlob:
      return DispatchTyped<OpenBlobRequest, OpenBlobResponse>(
          payload, response,
          [this](const OpenBlobRequest& req, OpenBlobResponse* rsp) {
            auto d = core_->OpenBlob(req.id, &rsp->published,
                                    &rsp->published_size);
            if (!d.ok()) return d.status();
            rsp->descriptor = std::move(d).ValueUnsafe();
            return Status::OK();
          });
    case rpc::Method::kVmAssignVersion:
      return DispatchTyped<AssignRequest, AssignResponse>(
          payload, response,
          [this](const AssignRequest& req, AssignResponse* rsp) {
            auto t = core_->AssignVersion(req.id, req.is_append, req.offset,
                                         req.size);
            if (!t.ok()) return t.status();
            rsp->ticket = std::move(t).ValueUnsafe();
            return Status::OK();
          });
    case rpc::Method::kVmNotifySuccess:
      return DispatchTyped<NotifyRequest, NotifyResponse>(
          payload, response, [this](const NotifyRequest& req, NotifyResponse*) {
            return core_->NotifySuccess(req.id, req.version);
          });
    case rpc::Method::kVmAbortUpdate:
      return DispatchTyped<AbortRequest, AbortResponse>(
          payload, response, [this](const AbortRequest& req, AbortResponse* rsp) {
            auto o = core_->AbortUpdate(req.id, req.version);
            if (!o.ok()) return o.status();
            rsp->outcome = std::move(o).ValueUnsafe();
            return Status::OK();
          });
    case rpc::Method::kVmGetRecent:
      return DispatchTyped<GetRecentRequest, GetRecentResponse>(
          payload, response,
          [this](const GetRecentRequest& req, GetRecentResponse* rsp) {
            return core_->GetRecent(req.id, &rsp->version, &rsp->size);
          });
    case rpc::Method::kVmGetSize:
      return DispatchTyped<GetSizeRequest, GetSizeResponse>(
          payload, response,
          [this](const GetSizeRequest& req, GetSizeResponse* rsp) {
            auto s = core_->GetSize(req.id, req.version);
            if (!s.ok()) return s.status();
            rsp->size = *s;
            return Status::OK();
          });
    case rpc::Method::kVmAwaitPublished:
      return DispatchTyped<AwaitRequest, AwaitResponse>(
          payload, response, [this](const AwaitRequest& req, AwaitResponse* rsp) {
            Status s = core_->AwaitPublished(req.id, req.version, req.timeout_us);
            if (s.ok()) {
              rsp->published = true;
              return Status::OK();
            }
            if (s.IsTimedOut()) {
              rsp->published = false;
              return Status::OK();
            }
            return s;
          });
    case rpc::Method::kVmBranch:
      return DispatchTyped<BranchRequest, BranchResponse>(
          payload, response, [this](const BranchRequest& req, BranchResponse* rsp) {
            auto d = core_->Branch(req.id, req.version);
            if (!d.ok()) return d.status();
            rsp->descriptor = std::move(d).ValueUnsafe();
            return Status::OK();
          });
    case rpc::Method::kVmStats:
      return DispatchTyped<VmStatsRequest, VmStatsResponse>(
          payload, response, [this](const VmStatsRequest&, VmStatsResponse* rsp) {
            VmStats st = core_->GetStats();
            rsp->blobs = st.blobs;
            rsp->assigned = st.assigned;
            rsp->published = st.published;
            rsp->aborted = st.aborted;
            rsp->discarded = st.discarded;
            rsp->sync_waiters = st.sync_waiters;
            return Status::OK();
          });
    case rpc::Method::kVmSetRetention:
      return DispatchTyped<SetRetentionRequest, SetRetentionResponse>(
          payload, response,
          [this](const SetRetentionRequest& req, SetRetentionResponse*) {
            return core_->SetRetention(req.id, req.policy);
          });
    case rpc::Method::kVmGetRetention:
      return DispatchTyped<GetRetentionRequest, GetRetentionResponse>(
          payload, response,
          [this](const GetRetentionRequest& req, GetRetentionResponse* rsp) {
            auto p = core_->GetRetention(req.id);
            if (!p.ok()) return p.status();
            rsp->policy = *p;
            return Status::OK();
          });
    case rpc::Method::kVmListVersions:
      return DispatchTyped<ListVersionsRequest, ListVersionsResponse>(
          payload, response,
          [this](const ListVersionsRequest& req, ListVersionsResponse* rsp) {
            auto v = core_->ListVersions(req.id);
            if (!v.ok()) return v.status();
            rsp->versions = std::move(v).ValueUnsafe();
            return Status::OK();
          });
    case rpc::Method::kVmDiscardVersion:
      return DispatchTyped<DiscardVersionRequest, DiscardVersionResponse>(
          payload, response,
          [this](const DiscardVersionRequest& req, DiscardVersionResponse*) {
            return core_->DiscardVersion(req.id, req.version);
          });
    case rpc::Method::kVmListBlobs:
      return DispatchTyped<ListBlobsRequest, ListBlobsResponse>(
          payload, response,
          [this](const ListBlobsRequest&, ListBlobsResponse* rsp) {
            auto b = core_->ListBlobs();
            if (!b.ok()) return b.status();
            rsp->blobs = std::move(b).ValueUnsafe();
            return Status::OK();
          });
    default:
      return Status::NotSupported("vmanager method");
  }
}

void VersionManagerService::HandleAsync(rpc::Method method, Slice payload,
                                        rpc::HandlerDone done) {
  if (method != rpc::Method::kVmAwaitPublished) {
    ServiceHandler::HandleAsync(method, payload, std::move(done));
    return;
  }
  AwaitRequest req;
  {
    BinaryReader r(payload);
    Status ds = req.DecodeFrom(&r);
    if (ds.ok()) ds = r.ExpectEnd();
    if (!ds.ok()) {
      done(std::move(ds), std::string());
      return;
    }
  }
  // A probe never parks; a finite timeout needs a watchdog, so without a
  // timer executor the blocking wait is the only correct behavior left.
  bool finite = req.timeout_us != UINT64_MAX;
  if (req.timeout_us == 0 || (finite && timer_executor_ == nullptr)) {
    std::string response;
    Status st = Handle(method, payload, &response);
    done(std::move(st), std::move(response));
    return;
  }

  auto respond = [done = std::move(done)](Status s) {
    AwaitResponse rsp;
    if (s.ok()) {
      rsp.published = true;
    } else if (s.IsTimedOut()) {
      rsp.published = false;
    } else {
      done(std::move(s), std::string());
      return;
    }
    BinaryWriter w;
    rsp.EncodeTo(&w);
    done(Status::OK(), std::move(w).TakeBuffer());
  };

  uint64_t token = core_->SubscribePublished(req.id, req.version,
                                             std::move(respond));
  if (token == 0 || !finite) return;  // resolved inline, or waits forever

  // Timeout watchdog: sleeps in bounded chunks so a real-clock teardown
  // never stalls behind a long timeout, and re-checks the registry so a
  // subscription resolved by publication costs nothing further. Captures
  // the core by shared_ptr — it may outrun the service.
  timer_executor_->Schedule(
      [core = core_, clock = clock_, token, remaining = req.timeout_us]() mutable {
        constexpr uint64_t kChunkUs = 50 * 1000;
        while (remaining > 0 && core->HasWaiter(token)) {
          uint64_t chunk = remaining < kChunkUs ? remaining : kChunkUs;
          clock->SleepForMicros(chunk);
          remaining -= chunk;
        }
        core->CancelWaiter(token, Status::TimedOut("not yet published"));
      });
}

}  // namespace blobseer::vmanager
