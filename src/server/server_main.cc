// Standalone BlobSeer daemon: hosts any combination of roles on one TCP
// endpoint (the paper co-deploys a data provider and a metadata provider
// per node).
//
// Usage:
//   blobseer_server --listen=0.0.0.0:7700 --roles=vmanager,pmanager
//   blobseer_server --listen=0.0.0.0:7701 --roles=provider,meta
//       --pmanager=vmhost:7700 --store=log:/var/lib/blobseer
//
// --store selects the provider page engine: "memory" (default), "null",
// "file:<dir>" (one fsynced file per page), or "log:<dir>" (log-structured
// segment store with group-commit durability; see docs/pagelog_format.md).
// --io-backend selects the raw-I/O path of a "log:" store: "psync"
// (default), "uring" (batched io_uring submissions), or "uring-direct"
// (io_uring + O_DIRECT); unknown or kernel-unsupported values fall back to
// psync with a logged note. Empty consults BLOBSEER_IO_BACKEND.
// --compact-interval=SECONDS (0 = off, the default) runs a background
// PageStore::Compact() pass on that period so deleted pages are reclaimed
// without an operator in the loop.
//
// Liveness (docs/liveness.md): --heartbeat-interval=SECONDS (0 = off) makes
// a provider beat to its --pmanager on that period; on the pmanager role,
// --suspect-after=SECONDS / --dead-after=SECONDS (0 = detector off) arm the
// failure detector that excludes silent providers from page allocation.
//
// Version lifecycle (docs/lifecycle.md): on the pmanager role,
// --gc-interval=SECONDS (0 = off) hosts the retention/GC sweeper; it needs
// --vmanager=host:port and --meta-nodes=host:port,... to walk metadata and
// discard expired versions. --gc-max-sweep=N bounds pages swept per pass.
// --compact-dead-ratio=R (0 = off) makes a "log:" store auto-compact after
// GC deletes once a sealed segment's dead-payload ratio reaches R.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "dht/service.h"
#include "pagelog/log_page_store.h"
#include "pmanager/client.h"
#include "pmanager/service.h"
#include "provider/service.h"
#include "rpc/service.h"
#include "rpc/tcp.h"
#include "vmanager/service.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& def) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; i++) {
    if (blobseer::StartsWith(argv[i], prefix))
      return std::string(argv[i]).substr(prefix.size());
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blobseer;

  std::string listen = FlagValue(argc, argv, "listen", "127.0.0.1:7700");
  std::string roles = FlagValue(argc, argv, "roles", "provider,meta");
  std::string pm_addr = FlagValue(argc, argv, "pmanager", "");
  std::string store_spec = FlagValue(argc, argv, "store", "memory");
  std::string io_backend = FlagValue(argc, argv, "io-backend", "");
  std::string allocation = FlagValue(argc, argv, "allocation", "round_robin");
  uint64_t capacity =
      strtoull(FlagValue(argc, argv, "capacity", "0").c_str(), nullptr, 10);
  uint64_t compact_interval_sec = strtoull(
      FlagValue(argc, argv, "compact-interval", "0").c_str(), nullptr, 10);
  double compact_dead_ratio = strtod(
      FlagValue(argc, argv, "compact-dead-ratio", "0").c_str(), nullptr);
  uint64_t gc_interval_sec = strtoull(
      FlagValue(argc, argv, "gc-interval", "0").c_str(), nullptr, 10);
  uint64_t gc_max_sweep = strtoull(
      FlagValue(argc, argv, "gc-max-sweep", "256").c_str(), nullptr, 10);
  std::string vm_addr = FlagValue(argc, argv, "vmanager", "");
  std::string meta_nodes = FlagValue(argc, argv, "meta-nodes", "");
  uint64_t heartbeat_interval_sec = strtoull(
      FlagValue(argc, argv, "heartbeat-interval", "0").c_str(), nullptr, 10);
  uint64_t suspect_after_sec = strtoull(
      FlagValue(argc, argv, "suspect-after", "0").c_str(), nullptr, 10);
  uint64_t dead_after_sec = strtoull(
      FlagValue(argc, argv, "dead-after", "0").c_str(), nullptr, 10);
  // --dead-after alone still arms the detector (suspect_after == 0 would
  // silently disable it otherwise); the service treats dead <= suspect as
  // suspect x3, resolved here too so the banner states effective values.
  if (suspect_after_sec == 0 && dead_after_sec > 0) {
    suspect_after_sec = dead_after_sec / 3 > 0 ? dead_after_sec / 3 : 1;
  }
  if (suspect_after_sec > 0 && dead_after_sec <= suspect_after_sec) {
    dead_after_sec = 3 * suspect_after_sec;
  }

  // Declared before the services so they outlive the compaction/heartbeat
  // loops the services stop in their destructors.
  std::unique_ptr<ThreadPoolExecutor> compaction_executor;
  std::unique_ptr<ThreadPoolExecutor> heartbeat_executor;
  std::unique_ptr<ThreadPoolExecutor> gc_executor;
  std::unique_ptr<ThreadPoolExecutor> vm_executor;
  rpc::TcpTransport transport;
  auto composite = std::make_shared<rpc::CompositeHandler>();
  bool has_provider = false;
  std::shared_ptr<provider::ProviderService> provider_service;
  std::shared_ptr<pmanager::ProviderManagerService> pmanager_service;

  for (const std::string& role : StrSplit(roles, ',')) {
    if (role == "vmanager") {
      // Watchdog executor for parked AwaitPublished subscriptions.
      vm_executor = std::make_unique<ThreadPoolExecutor>(4);
      composite->Register(400,
                          std::make_shared<vmanager::VersionManagerService>(
                              nullptr, vm_executor.get()));
    } else if (role == "pmanager") {
      pmanager_service = std::make_shared<pmanager::ProviderManagerService>(
          pmanager::MakeStrategy(allocation), RealClock::Default(),
          pmanager::LivenessOptions{suspect_after_sec * 1000 * 1000,
                                    dead_after_sec * 1000 * 1000});
      composite->Register(300, pmanager_service);
      if (suspect_after_sec > 0) {
        printf("failure detector armed: suspect after %llu s, dead after "
               "%llu s\n",
               static_cast<unsigned long long>(suspect_after_sec),
               static_cast<unsigned long long>(dead_after_sec));
      }
    } else if (role == "meta") {
      composite->Register(100, std::make_shared<dht::DhtService>());
    } else if (role == "provider") {
      std::unique_ptr<provider::PageStore> store;
      if (store_spec == "null") {
        store = provider::MakeNullPageStore();
      } else if (StartsWith(store_spec, "file:")) {
        store = provider::MakeFilePageStore(store_spec.substr(5));
      } else if (StartsWith(store_spec, "log:")) {
        pagelog::LogPageStoreOptions lo;
        lo.compact_dead_ratio = compact_dead_ratio;
        lo.io_backend = io_backend;
        store = pagelog::MakeLogPageStore(store_spec.substr(4), lo);
      } else {
        store = provider::MakeMemoryPageStore();
      }
      provider_service =
          std::make_shared<provider::ProviderService>(std::move(store));
      if (compact_interval_sec > 0) {
        compaction_executor = std::make_unique<ThreadPoolExecutor>(1);
        provider_service->StartPeriodicCompaction(
            compaction_executor.get(), compact_interval_sec * 1000 * 1000);
        printf("background compaction every %llu s\n",
               static_cast<unsigned long long>(compact_interval_sec));
      }
      composite->Register(200, provider_service);
      has_provider = true;
    } else if (!role.empty()) {
      fprintf(stderr, "unknown role: %s\n", role.c_str());
      return 2;
    }
  }

  auto bound = transport.Serve(listen, composite);
  if (!bound.ok()) {
    fprintf(stderr, "serve failed: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  printf("blobseer_server listening on %s (roles: %s)\n", bound->c_str(),
         roles.c_str());
  fflush(stdout);

  if (pmanager_service && gc_interval_sec > 0) {
    if (vm_addr.empty() || meta_nodes.empty()) {
      fprintf(stderr,
              "--gc-interval requires --vmanager=host:port and "
              "--meta-nodes=host:port,...\n");
      return 2;
    }
    std::vector<std::string> dht_nodes;
    for (const std::string& n : StrSplit(meta_nodes, ','))
      if (!n.empty()) dht_nodes.push_back(n);
    lifecycle::GcOptions go;
    go.interval_us = gc_interval_sec * 1000 * 1000;
    go.max_sweep_per_pass = gc_max_sweep;
    gc_executor = std::make_unique<ThreadPoolExecutor>(1);
    pmanager_service->StartGcSweeper(gc_executor.get(), RealClock::Default(),
                                     &transport, vm_addr, dht_nodes,
                                     dht::DhtClientOptions{}, go);
    printf("gc sweeper every %llu s (max %llu pages/pass) against %s\n",
           static_cast<unsigned long long>(gc_interval_sec),
           static_cast<unsigned long long>(gc_max_sweep), vm_addr.c_str());
    fflush(stdout);
  }

  if (has_provider) {
    if (pm_addr.empty()) {
      fprintf(stderr, "provider role requires --pmanager=host:port\n");
      return 2;
    }
    pmanager::ProviderManagerClient pm(&transport, pm_addr);
    auto id = pm.Register(*bound, capacity);
    if (!id.ok()) {
      fprintf(stderr, "provider registration failed: %s\n",
              id.status().ToString().c_str());
      return 1;
    }
    printf("registered as provider %u with %s\n", *id, pm_addr.c_str());
    if (heartbeat_interval_sec > 0) {
      heartbeat_executor = std::make_unique<ThreadPoolExecutor>(1);
      provider::HeartbeatConfig hb;
      hb.transport = &transport;
      hb.pmanager_address = pm_addr;
      hb.self_address = *bound;
      hb.capacity_pages = capacity;
      hb.id = *id;
      hb.interval_us = heartbeat_interval_sec * 1000 * 1000;
      provider_service->StartHeartbeat(heartbeat_executor.get(),
                                       RealClock::Default(), std::move(hb));
      printf("heartbeating every %llu s\n",
             static_cast<unsigned long long>(heartbeat_interval_sec));
    }
    fflush(stdout);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    RealClock::Default()->SleepForMicros(200 * 1000);
  }
  printf("shutting down\n");
  if (provider_service) {
    // Final page-store statistics, including the log-structured backend
    // extension fields (mirrored by the provider Stats RPC).
    provider::PageStoreStats st = provider_service->store().GetStats();
    printf("provider stats: pages=%llu bytes=%llu writes=%llu reads=%llu "
           "deletes=%llu segments=%llu dead_bytes=%llu syncs=%llu "
           "compactions=%llu io_submissions=%llu io_sqes=%llu "
           "bytes_written=%llu read_syscalls=%llu recovery_us=%llu\n",
           static_cast<unsigned long long>(st.pages),
           static_cast<unsigned long long>(st.bytes),
           static_cast<unsigned long long>(st.writes),
           static_cast<unsigned long long>(st.reads),
           static_cast<unsigned long long>(st.deletes),
           static_cast<unsigned long long>(st.segments),
           static_cast<unsigned long long>(st.dead_bytes),
           static_cast<unsigned long long>(st.syncs),
           static_cast<unsigned long long>(st.compactions),
           static_cast<unsigned long long>(st.io_submissions),
           static_cast<unsigned long long>(st.io_sqes),
           static_cast<unsigned long long>(st.bytes_written),
           static_cast<unsigned long long>(st.read_syscalls),
           static_cast<unsigned long long>(st.recovery_us));
  }
  return 0;
}
