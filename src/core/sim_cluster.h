// BlobSeer deployed on the simulated Grid'5000-style cluster: the topology
// of the paper's evaluation (section 5) — version manager and provider
// manager on dedicated nodes, a data provider and a metadata (DHT) provider
// co-deployed on every other node, clients on dedicated or co-deployed
// nodes — running the real client/service code over simnet.
#ifndef BLOBSEER_CORE_SIM_CLUSTER_H_
#define BLOBSEER_CORE_SIM_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "client/blob_client.h"
#include "dht/service.h"
#include "pmanager/client.h"
#include "pmanager/service.h"
#include "provider/service.h"
#include "simnet/network.h"
#include "simnet/sim.h"
#include "simnet/transport.h"
#include "vmanager/service.h"

namespace blobseer::core {

struct SimClusterOptions {
  /// Nodes hosting a data provider; a metadata provider is co-deployed on
  /// each (paper section 5 deployment).
  size_t num_provider_nodes = 50;
  /// Extra dedicated client nodes (readers in Figure 2(b) instead run
  /// co-deployed on provider nodes).
  size_t num_client_nodes = 1;
  /// Metadata (DHT) providers are co-deployed on the first
  /// `num_dht_nodes` provider nodes; 0 = one on every provider node (the
  /// paper deployment). 1000-provider campaigns cap this so the metadata
  /// ring stays a realistic size instead of scaling with the data fleet.
  size_t num_dht_nodes = 0;
  simnet::SimNetworkOptions net;
  /// Service cost model (calibrated in EXPERIMENTS.md).
  double provider_cpu_us = 1300.0;
  size_t provider_concurrency = 1;
  double dht_cpu_us = 40.0;
  double manager_cpu_us = 20.0;
  std::string page_store = "null";
  std::string allocation = "round_robin";
  /// Page replica count applied to clients built via NewClient.
  uint32_t replication = 1;
  /// Write quorum applied to clients built via NewClient (0 = all
  /// replicas; see ClientOptions::write_quorum).
  uint32_t write_quorum = 0;
  /// Heartbeat-driven liveness in virtual time (all 0 = disabled). Each
  /// provider node runs a sender sim task beating every
  /// `heartbeat_interval_us`; the provider manager (on the sim clock)
  /// marks providers suspect/dead after `suspect_after_us`/`dead_after_us`
  /// without a beat and excludes them from allocation (docs/liveness.md).
  uint64_t heartbeat_interval_us = 0;
  uint64_t suspect_after_us = 0;
  uint64_t dead_after_us = 0;
  /// Background re-replication in virtual time (0 = disabled): the provider
  /// manager runs a rebuilder pass every `rebuild_interval_us`, copying
  /// pages off dead/draining providers (docs/page_locations.md).
  uint64_t rebuild_interval_us = 0;
  size_t rebuild_max_moves = 64;
  bool rebuild_rebalance = true;
  /// Version-lifecycle GC in virtual time (0 = disabled): the provider
  /// manager hosts a GcSweeper pass every `gc_interval_us`, evaluating
  /// retention policies and sweeping discarded versions
  /// (docs/lifecycle.md).
  uint64_t gc_interval_us = 0;
  size_t gc_max_sweep = 256;
};

/// Must be constructed from inside SimScheduler::Run (provider registration
/// issues simulated RPCs).
class SimCluster {
 public:
  SimCluster(simnet::SimScheduler* sched, const SimClusterOptions& options);

  /// Node ids.
  uint32_t vm_node() const { return 0; }
  uint32_t pm_node() const { return 1; }
  uint32_t provider_node(size_t i) const { return 2 + static_cast<uint32_t>(i); }
  uint32_t client_node(size_t i) const {
    return 2 + static_cast<uint32_t>(options_.num_provider_nodes + i);
  }
  size_t num_provider_nodes() const { return options_.num_provider_nodes; }

  /// Builds a client whose blocking behaviour, clock and executor are wired
  /// for virtual time. The client issues RPCs from whichever sim task calls
  /// it (set the task's node id to place it).
  std::unique_ptr<client::BlobClient> NewClient(
      client::ClientOptions base = {});

  simnet::SimScheduler& sched() { return *sched_; }
  simnet::SimNetwork& net() { return *net_; }
  simnet::SimTransport& transport() { return *transport_; }
  simnet::SimClock& clock() { return *clock_; }
  simnet::SimExecutor& executor() { return *executor_; }

  /// Direct service access for tests/inspection (mirrors EmbeddedCluster).
  vmanager::VersionManagerService& vmanager() { return *vm_service_; }
  pmanager::ProviderManagerService& pmanager() { return *pm_service_; }
  provider::ProviderService& provider(size_t i) {
    return *provider_services_[i];
  }

  const std::string& vm_address() const { return vm_address_; }
  const std::string& pm_address() const { return pm_address_; }
  const std::vector<std::string>& dht_addresses() const {
    return dht_addresses_;
  }
  const std::vector<std::string>& provider_addresses() const {
    return provider_addresses_;
  }

  /// Kills one data provider endpoint (failure-injection tests): calls on
  /// it observe Unavailable from then on. The node's heartbeat sender dies
  /// with it (process-death semantics).
  Status StopProvider(size_t index);

  /// Kills a whole wave of providers at (nearly) the same virtual instant:
  /// every victim's heartbeat stop is requested first, then the endpoints
  /// are unserved and the senders joined — the joins overlap one beat
  /// interval for the wave instead of serializing one per victim, which is
  /// what makes 1000-provider kill waves affordable. Returns the first
  /// error, having attempted every index.
  Status StopProviders(const std::vector<size_t>& indices);

  /// Restarts a stopped provider on its original address (same service
  /// instance, so an in-memory store survives like a durable disk would):
  /// serves the endpoint again, re-registers with the provider manager
  /// (same id) and re-arms the heartbeat sender when heartbeats are on.
  Status RestartProvider(size_t index);

  /// Marks provider `index` draining (no new allocations; the rebuilder
  /// moves its pages off). Poll until `drained` before StopProvider.
  Result<pmanager::DecommissionResponse> Decommission(size_t index);

  ProviderId provider_id(size_t index) const { return provider_ids_[index]; }

  /// Scripted heartbeat loss without process death: while `lost`, the
  /// provider's RPCs to the provider manager (heartbeats, re-registrations)
  /// are dropped in the network; data-path RPCs to the provider are
  /// unaffected. Drives the suspect state deterministically.
  void SetHeartbeatLoss(size_t index, bool lost);

  /// Stops every provider's heartbeat sender. Called by the destructor so
  /// a simulation with heartbeats enabled terminates (the scheduler runs
  /// until no task remains).
  void StopHeartbeats();

  ~SimCluster();

 private:
  void StartProviderHeartbeat(size_t index);

  simnet::SimScheduler* sched_;
  SimClusterOptions options_;
  std::unique_ptr<simnet::SimNetwork> net_;
  std::unique_ptr<simnet::SimTransport> transport_;
  std::unique_ptr<simnet::SimClock> clock_;
  std::unique_ptr<simnet::SimExecutor> executor_;

  std::shared_ptr<vmanager::VersionManagerService> vm_service_;
  std::shared_ptr<pmanager::ProviderManagerService> pm_service_;
  std::vector<std::shared_ptr<dht::DhtService>> dht_services_;
  std::vector<std::shared_ptr<provider::ProviderService>> provider_services_;

  std::unique_ptr<pmanager::ProviderManagerClient> pm_client_;

  std::string vm_address_;
  std::string pm_address_;
  std::vector<std::string> dht_addresses_;
  std::vector<std::string> provider_addresses_;
  std::vector<ProviderId> provider_ids_;
  simnet::SimServiceProfile provider_profile_;
};

}  // namespace blobseer::core

#endif  // BLOBSEER_CORE_SIM_CLUSTER_H_
