#include "core/sim_cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "pmanager/client.h"

namespace blobseer::core {

SimCluster::SimCluster(simnet::SimScheduler* sched,
                       const SimClusterOptions& options)
    : sched_(sched), options_(options) {
  size_t total_nodes =
      2 + options.num_provider_nodes + options.num_client_nodes;
  net_ = std::make_unique<simnet::SimNetwork>(sched_, total_nodes,
                                              options.net);
  transport_ = std::make_unique<simnet::SimTransport>(sched_, net_.get());
  clock_ = std::make_unique<simnet::SimClock>(sched_);
  executor_ = std::make_unique<simnet::SimExecutor>(sched_);

  simnet::SimServiceProfile manager_profile{options.manager_cpu_us, 1};
  simnet::SimServiceProfile dht_profile{options.dht_cpu_us, 4};
  simnet::SimServiceProfile provider_profile{options.provider_cpu_us,
                                             options.provider_concurrency};

  vm_service_ = std::make_shared<vmanager::VersionManagerService>(
      clock_.get(), executor_.get());
  vm_address_ = simnet::SimTransport::MakeAddress(vm_node(), "vmanager");
  transport_->SetServiceProfile(vm_address_, manager_profile);
  BS_CHECK(transport_->Serve(vm_address_, vm_service_).ok());

  pm_service_ = std::make_shared<pmanager::ProviderManagerService>(
      pmanager::MakeStrategy(options.allocation), clock_.get(),
      pmanager::LivenessOptions{options.suspect_after_us,
                                options.dead_after_us});
  pm_address_ = simnet::SimTransport::MakeAddress(pm_node(), "pmanager");
  transport_->SetServiceProfile(pm_address_, manager_profile);
  BS_CHECK(transport_->Serve(pm_address_, pm_service_).ok());

  provider_profile_ = provider_profile;
  pm_client_ = std::make_unique<pmanager::ProviderManagerClient>(
      transport_.get(), pm_address_);
  const size_t dht_nodes =
      options.num_dht_nodes == 0
          ? options.num_provider_nodes
          : std::min(options.num_dht_nodes, options.num_provider_nodes);
  for (size_t i = 0; i < options.num_provider_nodes; i++) {
    uint32_t node = provider_node(i);

    if (i < dht_nodes) {
      auto dht_svc = std::make_shared<dht::DhtService>();
      std::string dht_addr = simnet::SimTransport::MakeAddress(node, "meta");
      transport_->SetServiceProfile(dht_addr, dht_profile);
      BS_CHECK(transport_->Serve(dht_addr, dht_svc).ok());
      dht_services_.push_back(std::move(dht_svc));
      dht_addresses_.push_back(std::move(dht_addr));
    }

    auto prov_svc = std::make_shared<provider::ProviderService>(
        options.page_store == "memory" ? provider::MakeMemoryPageStore()
                                       : provider::MakeNullPageStore());
    std::string prov_addr =
        simnet::SimTransport::MakeAddress(node, "provider");
    transport_->SetServiceProfile(prov_addr, provider_profile);
    BS_CHECK(transport_->Serve(prov_addr, prov_svc).ok());
    provider_services_.push_back(std::move(prov_svc));
    provider_addresses_.push_back(prov_addr);
    auto id = pm_client_->Register(prov_addr, 0);
    BS_CHECK(id.ok()) << id.status().ToString();
    provider_ids_.push_back(*id);
    StartProviderHeartbeat(i);
  }

  if (options.rebuild_interval_us > 0) {
    locator::RebuildOptions ro;
    ro.interval_us = options.rebuild_interval_us;
    ro.max_moves_per_pass = options.rebuild_max_moves;
    ro.rebalance = options.rebuild_rebalance;
    // The rebuilder loop is a sim task; spawn it from the provider
    // manager's node so its copy/CAS RPCs originate there in the network
    // model. Default DhtClientOptions so CAS placement matches clients'.
    uint32_t caller_node = sched_->CurrentNode();
    sched_->SetCurrentNode(pm_node());
    pm_service_->StartRebuilder(executor_.get(), clock_.get(),
                                transport_.get(), dht_addresses_,
                                dht::DhtClientOptions{}, ro);
    sched_->SetCurrentNode(caller_node);
  }

  if (options.gc_interval_us > 0) {
    lifecycle::GcOptions go;
    go.interval_us = options.gc_interval_us;
    go.max_sweep_per_pass = options.gc_max_sweep;
    // Like the rebuilder: the sweeper loop is a sim task spawned from the
    // provider manager's node so its walk/delete RPCs originate there.
    uint32_t caller_node = sched_->CurrentNode();
    sched_->SetCurrentNode(pm_node());
    pm_service_->StartGcSweeper(executor_.get(), clock_.get(),
                                transport_.get(), vm_address_, dht_addresses_,
                                dht::DhtClientOptions{}, go);
    sched_->SetCurrentNode(caller_node);
  }
}

SimCluster::~SimCluster() {
  // The sweeper and rebuilder loops must stop before the scheduler can
  // drain (they would otherwise re-arm forever in virtual time), and
  // before heartbeats so a final pass still sees a live provider
  // directory. The sweeper must also report drained: a pass outliving
  // Stop would race cluster teardown.
  BS_CHECK(pm_service_->StopGcSweeper());
  pm_service_->StopRebuilder();
  StopHeartbeats();
}

void SimCluster::StartProviderHeartbeat(size_t index) {
  if (options_.heartbeat_interval_us == 0) return;
  provider::HeartbeatConfig config;
  config.transport = transport_.get();
  config.pmanager_address = pm_address_;
  config.self_address = provider_addresses_[index];
  config.capacity_pages = 0;
  config.id = provider_ids_[index];
  config.interval_us = options_.heartbeat_interval_us;
  // Stagger first beats across the interval: n synchronized senders would
  // otherwise all fire on the same virtual tick forever, serializing n
  // RPCs through the provider manager at every beat boundary.
  config.initial_delay_us =
      1 + (index * options_.heartbeat_interval_us) /
              std::max<size_t>(options_.num_provider_nodes, 1);
  // The sender loop is a sim task spawned via the executor; tasks inherit
  // the spawner's node, so place the caller on the provider's node for the
  // duration of the call — its beats then originate from that node in the
  // network model.
  uint32_t caller_node = sched_->CurrentNode();
  sched_->SetCurrentNode(provider_node(index));
  provider_services_[index]->StartHeartbeat(executor_.get(), clock_.get(),
                                            std::move(config));
  sched_->SetCurrentNode(caller_node);
}

void SimCluster::StopHeartbeats() {
  // Two-phase: request every stop, then join. Each join waits at most one
  // beat interval, and the requested flags let those waits overlap —
  // serial StopHeartbeat calls would cost ~n/2 intervals at n providers.
  for (auto& svc : provider_services_) svc->RequestStopHeartbeat();
  for (auto& svc : provider_services_) svc->StopHeartbeat();
}

std::unique_ptr<client::BlobClient> SimCluster::NewClient(
    client::ClientOptions base) {
  base.replication = std::max(base.replication, options_.replication);
  if (base.write_quorum == 0) base.write_quorum = options_.write_quorum;
  return std::make_unique<client::BlobClient>(
      transport_.get(), vm_address_, pm_address_, dht_addresses_, base,
      clock_.get(), executor_.get());
}

Status SimCluster::StopProvider(size_t index) {
  if (index >= provider_addresses_.size())
    return Status::InvalidArgument("provider index");
  // Process-death semantics: the heartbeat dies with the endpoint (this
  // blocks the calling sim task for up to one beat interval).
  provider_services_[index]->StopHeartbeat();
  return transport_->StopServing(provider_addresses_[index]);
}

Status SimCluster::StopProviders(const std::vector<size_t>& indices) {
  Status first = Status::OK();
  for (size_t index : indices) {
    if (index >= provider_addresses_.size()) {
      if (first.ok()) first = Status::InvalidArgument("provider index");
      continue;
    }
    provider_services_[index]->RequestStopHeartbeat();
  }
  for (size_t index : indices) {
    if (index >= provider_addresses_.size()) continue;
    provider_services_[index]->StopHeartbeat();
    Status s = transport_->StopServing(provider_addresses_[index]);
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

Status SimCluster::RestartProvider(size_t index) {
  if (index >= provider_addresses_.size())
    return Status::InvalidArgument("provider index");
  const std::string& addr = provider_addresses_[index];
  transport_->SetServiceProfile(addr, provider_profile_);
  auto served = transport_->Serve(addr, provider_services_[index]);
  if (!served.ok()) return served.status();
  // Same address -> same id; registration also flips the record alive.
  auto id = pm_client_->Register(addr, 0);
  if (!id.ok()) return id.status();
  provider_ids_[index] = *id;
  StartProviderHeartbeat(index);
  return Status::OK();
}

Result<pmanager::DecommissionResponse> SimCluster::Decommission(size_t index) {
  if (index >= provider_ids_.size())
    return Status::InvalidArgument("provider index");
  return pm_client_->Decommission(provider_ids_[index]);
}

void SimCluster::SetHeartbeatLoss(size_t index, bool lost) {
  transport_->SetDropCallsFrom(provider_node(index), pm_address_, lost);
}

}  // namespace blobseer::core
