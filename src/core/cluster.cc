#include "core/cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "pagelog/log_page_store.h"
#include "pmanager/client.h"

namespace blobseer::core {

namespace {

std::unique_ptr<provider::PageStore> MakeStore(const ClusterOptions& options,
                                               size_t index) {
  const std::string& spec = options.page_store;
  if (spec == "null") return provider::MakeNullPageStore();
  if (StartsWith(spec, "file:")) {
    return provider::MakeFilePageStore(
        StrFormat("%s/provider-%zu", spec.substr(5).c_str(), index));
  }
  if (StartsWith(spec, "log:")) {
    pagelog::LogPageStoreOptions lo;
    lo.compact_dead_ratio = options.log_compact_dead_ratio;
    lo.io_backend = options.io_backend;
    if (options.log_segment_target_bytes > 0)
      lo.segment_target_bytes = options.log_segment_target_bytes;
    return pagelog::MakeLogPageStore(
        StrFormat("%s/provider-%zu", spec.substr(4).c_str(), index), lo);
  }
  return provider::MakeMemoryPageStore();
}

}  // namespace

Result<std::unique_ptr<EmbeddedCluster>> EmbeddedCluster::Start(
    const ClusterOptions& options) {
  if (options.num_providers == 0 || options.num_meta == 0)
    return Status::InvalidArgument("cluster needs providers and meta nodes");

  std::unique_ptr<EmbeddedCluster> c(new EmbeddedCluster());
  c->options_ = options;
  if (options.transport == "tcp") {
    c->tcp_ = std::make_unique<rpc::TcpTransport>();
    c->transport_ = c->tcp_.get();
  } else if (options.transport == "inproc") {
    c->inproc_ = std::make_unique<rpc::InProcNetwork>();
    c->transport_ = c->inproc_.get();
  } else {
    return Status::InvalidArgument("unknown transport: " + options.transport);
  }
  const bool tcp = c->tcp_ != nullptr;
  auto bind_addr = [&](const std::string& name) {
    return tcp ? std::string("127.0.0.1:0") : "inproc://" + name;
  };

  // Version manager and provider manager on dedicated endpoints (the paper
  // deploys each on a dedicated node).
  c->vm_executor_ = std::make_unique<ThreadPoolExecutor>(2);
  c->vm_service_ = std::make_shared<vmanager::VersionManagerService>(
      nullptr, c->vm_executor_.get());
  {
    auto addr = c->transport_->Serve(bind_addr("vmanager"), c->vm_service_);
    if (!addr.ok()) return addr.status();
    c->vm_address_ = std::move(addr).ValueUnsafe();
  }
  c->pm_service_ = std::make_shared<pmanager::ProviderManagerService>(
      pmanager::MakeStrategy(options.allocation), RealClock::Default(),
      pmanager::LivenessOptions{options.suspect_after_us,
                                options.dead_after_us});
  {
    auto addr = c->transport_->Serve(bind_addr("pmanager"), c->pm_service_);
    if (!addr.ok()) return addr.status();
    c->pm_address_ = std::move(addr).ValueUnsafe();
  }

  for (size_t i = 0; i < options.num_meta; i++) {
    auto svc = std::make_shared<dht::DhtService>(options.dht_shards);
    auto addr =
        c->transport_->Serve(bind_addr(StrFormat("meta-%zu", i)), svc);
    if (!addr.ok()) return addr.status();
    c->dht_services_.push_back(std::move(svc));
    c->dht_addresses_.push_back(std::move(addr).ValueUnsafe());
  }

  c->pm_client_ = std::make_unique<pmanager::ProviderManagerClient>(
      c->transport_, c->pm_address_);
  // One worker per heartbeat sender loop (each parks its thread between
  // beats) plus spares for providers added later, plus one for the
  // rebuilder loop.
  size_t workers =
      (options.heartbeat_interval_us > 0 ? options.num_providers + 4 : 0) +
      (options.rebuild_interval_us > 0 ? 1 : 0) +
      (options.gc_interval_us > 0 ? 1 : 0);
  if (workers > 0)
    c->hb_executor_ = std::make_unique<ThreadPoolExecutor>(workers);
  for (size_t i = 0; i < options.num_providers; i++) {
    auto svc = std::make_shared<provider::ProviderService>(MakeStore(options, i));
    auto addr =
        c->transport_->Serve(bind_addr(StrFormat("provider-%zu", i)), svc);
    if (!addr.ok()) return addr.status();
    c->provider_services_.push_back(std::move(svc));
    c->provider_addresses_.push_back(std::move(addr).ValueUnsafe());
    auto id = c->pm_client_->Register(c->provider_addresses_.back(),
                                      options.provider_capacity_pages);
    if (!id.ok()) return id.status();
    c->provider_ids_.push_back(*id);
    BS_RETURN_NOT_OK(c->StartProviderHeartbeat(i));
  }
  if (options.rebuild_interval_us > 0) {
    locator::RebuildOptions ro;
    ro.interval_us = options.rebuild_interval_us;
    ro.max_moves_per_pass = options.rebuild_max_moves;
    ro.rebalance = options.rebuild_rebalance;
    // Default DhtClientOptions: the rebuilder's CAS placement must match
    // the clients', which also run defaults (placement is positional over
    // the same node list).
    c->pm_service_->StartRebuilder(c->hb_executor_.get(),
                                   RealClock::Default(), c->transport_,
                                   c->dht_addresses_, dht::DhtClientOptions{},
                                   ro);
  }
  if (options.gc_interval_us > 0) {
    lifecycle::GcOptions go;
    go.interval_us = options.gc_interval_us;
    go.max_sweep_per_pass = options.gc_max_sweep;
    c->pm_service_->StartGcSweeper(c->hb_executor_.get(), RealClock::Default(),
                                   c->transport_, c->vm_address_,
                                   c->dht_addresses_, dht::DhtClientOptions{},
                                   go);
  }
  return c;
}

Status EmbeddedCluster::StartProviderHeartbeat(size_t index) {
  if (options_.heartbeat_interval_us == 0) return Status::OK();
  provider::HeartbeatConfig config;
  config.transport = transport_;
  config.pmanager_address = pm_address_;
  config.self_address = provider_addresses_[index];
  config.capacity_pages = options_.provider_capacity_pages;
  config.id = provider_ids_[index];
  config.interval_us = options_.heartbeat_interval_us;
  provider_services_[index]->StartHeartbeat(
      hb_executor_.get(), RealClock::Default(), std::move(config));
  return Status::OK();
}

EmbeddedCluster::~EmbeddedCluster() {
  if (!transport_) return;
  // Stop the sweeper and rebuilder before tearing down endpoints: a pass
  // in flight would otherwise race teardown with doomed RPCs. The sweeper
  // must report drained — a pass (or any of its delete RPCs) outliving
  // Stop would use-after-free the transport.
  if (pm_service_) {
    BS_CHECK(pm_service_->StopGcSweeper());
    pm_service_->StopRebuilder();
  }
  (void)transport_->StopServing(vm_address_);
  (void)transport_->StopServing(pm_address_);
  for (const auto& a : dht_addresses_) (void)transport_->StopServing(a);
  for (const auto& a : provider_addresses_) (void)transport_->StopServing(a);
}

Result<std::unique_ptr<client::BlobClient>> EmbeddedCluster::NewClient(
    client::ClientOptions options) {
  options.replication = std::max(options.replication, options_.replication);
  if (options.write_quorum == 0) options.write_quorum = options_.write_quorum;
  return std::make_unique<client::BlobClient>(
      transport_, vm_address_, pm_address_, dht_addresses_, options);
}

Status EmbeddedCluster::TotalProviderUsage(uint64_t* pages,
                                           uint64_t* bytes) const {
  *pages = 0;
  *bytes = 0;
  for (const auto& svc : provider_services_) {
    provider::PageStoreStats st = svc->store().GetStats();
    *pages += st.pages;
    *bytes += st.bytes;
  }
  return Status::OK();
}

Status EmbeddedCluster::TotalMetadataUsage(uint64_t* keys,
                                           uint64_t* bytes) const {
  *keys = 0;
  *bytes = 0;
  for (const auto& svc : dht_services_) {
    dht::StoreStats st = svc->store().GetStats();
    *keys += st.keys;
    *bytes += st.bytes;
  }
  return Status::OK();
}

Status EmbeddedCluster::StopProvider(size_t index) {
  if (index >= provider_addresses_.size())
    return Status::InvalidArgument("provider index");
  // Process-death semantics: the endpoint dies and so does its heartbeat,
  // so the failure detector can notice.
  provider_services_[index]->StopHeartbeat();
  return transport_->StopServing(provider_addresses_[index]);
}

Status EmbeddedCluster::RestartProvider(size_t index) {
  if (index >= provider_addresses_.size())
    return Status::InvalidArgument("provider index");
  auto addr = transport_->Serve(provider_addresses_[index],
                                provider_services_[index]);
  if (!addr.ok()) return addr.status();
  // Same address -> the provider manager hands back the same id and marks
  // the record alive again.
  auto id = pm_client_->Register(provider_addresses_[index],
                                 options_.provider_capacity_pages);
  if (!id.ok()) return id.status();
  provider_ids_[index] = *id;
  return StartProviderHeartbeat(index);
}

Result<size_t> EmbeddedCluster::AddProvider() {
  const bool tcp = tcp_ != nullptr;
  size_t index = provider_services_.size();
  auto svc = std::make_shared<provider::ProviderService>(
      MakeStore(options_, index));
  auto addr = transport_->Serve(
      tcp ? std::string("127.0.0.1:0")
          : StrFormat("inproc://provider-%zu", index),
      svc);
  if (!addr.ok()) return addr.status();
  provider_services_.push_back(std::move(svc));
  provider_addresses_.push_back(std::move(addr).ValueUnsafe());
  auto id = pm_client_->Register(provider_addresses_.back(),
                                 options_.provider_capacity_pages);
  if (!id.ok()) return id.status();
  provider_ids_.push_back(*id);
  // The heartbeat executor was sized with spare workers for a few joins.
  BS_RETURN_NOT_OK(StartProviderHeartbeat(index));
  return index;
}

Result<pmanager::DecommissionResponse> EmbeddedCluster::Decommission(
    size_t index) {
  if (index >= provider_ids_.size())
    return Status::InvalidArgument("provider index");
  return pm_client_->Decommission(provider_ids_[index]);
}

}  // namespace blobseer::core
