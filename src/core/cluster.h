// Embedded BlobSeer cluster: starts a version manager, a provider manager,
// N data providers and M metadata (DHT) providers on one transport, wiring
// the deployment the paper describes (section 3.1) into one process for
// tests, examples and benchmarks. With transport = "tcp" the same topology
// runs over real sockets on loopback.
#ifndef BLOBSEER_CORE_CLUSTER_H_
#define BLOBSEER_CORE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "client/blob_client.h"
#include "client/blob_handle.h"
#include "common/executor.h"
#include "common/result.h"
#include "dht/service.h"
#include "pmanager/client.h"
#include "pmanager/service.h"
#include "provider/service.h"
#include "rpc/inproc.h"
#include "rpc/tcp.h"
#include "vmanager/service.h"

namespace blobseer::core {

struct ClusterOptions {
  size_t num_providers = 4;
  size_t num_meta = 4;
  /// "inproc" or "tcp" (loopback, ephemeral ports).
  std::string transport = "inproc";
  /// "memory", "null", "file:<directory>", or "log:<directory>" (durable
  /// log-structured store; each provider gets a provider-N subdirectory).
  std::string page_store = "memory";
  /// Allocation strategy name (see pmanager/strategy.h).
  std::string allocation = "round_robin";
  /// Page replica count applied to clients built via NewClient (clients may
  /// still override upward through their own options).
  uint32_t replication = 1;
  /// Write quorum applied to clients built via NewClient (0 = all
  /// replicas; see ClientOptions::write_quorum).
  uint32_t write_quorum = 0;
  /// Heartbeat-driven liveness (all three 0 = disabled, the default).
  /// Every provider sends a pmanager Heartbeat each `heartbeat_interval_us`
  /// (real-clock pacing on a cluster-owned executor); the provider manager
  /// marks providers suspect/dead after `suspect_after_us`/`dead_after_us`
  /// without one and excludes them from allocation (docs/liveness.md).
  uint64_t heartbeat_interval_us = 0;
  uint64_t suspect_after_us = 0;
  uint64_t dead_after_us = 0;
  /// Background re-replication: when `rebuild_interval_us` > 0 the provider
  /// manager runs a rebuilder pass every interval that copies pages off
  /// dead/draining providers onto live ones (and, with `rebuild_rebalance`,
  /// evens page counts after a join). Requires heartbeats for dead
  /// detection. See docs/page_locations.md.
  uint64_t rebuild_interval_us = 0;
  size_t rebuild_max_moves = 64;
  bool rebuild_rebalance = true;
  /// Version-lifecycle GC (docs/lifecycle.md): when `gc_interval_us` > 0
  /// the provider manager hosts a GcSweeper that evaluates retention
  /// policies and mark-and-sweeps discarded versions every interval. With
  /// 0, tests and benches can still host one via pmanager().StartGcSweeper
  /// (loop disabled) and drive RunOnePass deterministically.
  uint64_t gc_interval_us = 0;
  size_t gc_max_sweep = 256;
  /// Dead-payload ratio that auto-compacts "log:" page stores after GC
  /// deletes (LogPageStoreOptions::compact_dead_ratio; 0 = manual).
  double log_compact_dead_ratio = 0;
  /// Segment seal threshold for "log:" page stores (0 = backend default).
  /// Benches shrink it so GC deletes land in sealed segments and the
  /// auto-compaction path above actually runs at test scale.
  uint64_t log_segment_target_bytes = 0;
  /// Raw-I/O backend for "log:" page stores: "psync", "uring",
  /// "uring-direct", or "" to consult BLOBSEER_IO_BACKEND / default to
  /// psync (LogPageStoreOptions::io_backend; unsupported values fall back
  /// to psync with a logged note).
  std::string io_backend;
  uint64_t provider_capacity_pages = 0;  // 0 = unbounded
  size_t dht_shards = 16;
};

class EmbeddedCluster {
 public:
  static Result<std::unique_ptr<EmbeddedCluster>> Start(
      const ClusterOptions& options);
  ~EmbeddedCluster();

  EmbeddedCluster(const EmbeddedCluster&) = delete;
  EmbeddedCluster& operator=(const EmbeddedCluster&) = delete;

  rpc::Transport* transport() { return transport_; }
  const std::string& vmanager_address() const { return vm_address_; }
  const std::string& pmanager_address() const { return pm_address_; }
  const std::vector<std::string>& dht_addresses() const {
    return dht_addresses_;
  }
  const std::vector<std::string>& provider_addresses() const {
    return provider_addresses_;
  }

  /// New client bound to this cluster.
  Result<std::unique_ptr<client::BlobClient>> NewClient(
      client::ClientOptions options = {});

  /// Direct service access for tests/inspection.
  vmanager::VersionManagerService& vmanager() { return *vm_service_; }
  pmanager::ProviderManagerService& pmanager() { return *pm_service_; }
  dht::DhtService& dht(size_t i) { return *dht_services_[i]; }
  provider::ProviderService& provider(size_t i) { return *provider_services_[i]; }
  size_t num_providers() const { return provider_services_.size(); }
  size_t num_meta() const { return dht_services_.size(); }

  /// Aggregate physical storage across providers (space-overhead benches).
  Status TotalProviderUsage(uint64_t* pages, uint64_t* bytes) const;
  /// Aggregate metadata usage across DHT nodes.
  Status TotalMetadataUsage(uint64_t* keys, uint64_t* bytes) const;

  /// Kills one data provider endpoint (failure-injection tests); also
  /// silences its heartbeat sender, like a process death would.
  Status StopProvider(size_t index);

  /// Restarts a stopped provider on its original address: serves the
  /// endpoint again, re-registers with the provider manager (same id, same
  /// address) and re-arms the heartbeat sender when heartbeats are on.
  Status RestartProvider(size_t index);

  /// Adds a fresh provider to the running cluster (join-under-churn tests);
  /// returns its index.
  Result<size_t> AddProvider();

  /// Marks provider `index` draining (no new allocations; the rebuilder
  /// moves its pages off). Poll until `drained` before StopProvider.
  Result<pmanager::DecommissionResponse> Decommission(size_t index);

  ProviderId provider_id(size_t index) const { return provider_ids_[index]; }

 private:
  EmbeddedCluster() = default;

  Status StartProviderHeartbeat(size_t index);

  ClusterOptions options_;
  std::unique_ptr<rpc::InProcNetwork> inproc_;
  std::unique_ptr<rpc::TcpTransport> tcp_;
  rpc::Transport* transport_ = nullptr;
  // Declared before the services: heartbeat loops run on this executor and
  // are stopped by the service destructors, so it must outlive them.
  std::unique_ptr<ThreadPoolExecutor> hb_executor_;
  // AwaitPublished timeout watchdogs; same ordering constraint.
  std::unique_ptr<ThreadPoolExecutor> vm_executor_;
  std::unique_ptr<pmanager::ProviderManagerClient> pm_client_;

  std::shared_ptr<vmanager::VersionManagerService> vm_service_;
  std::shared_ptr<pmanager::ProviderManagerService> pm_service_;
  std::vector<std::shared_ptr<dht::DhtService>> dht_services_;
  std::vector<std::shared_ptr<provider::ProviderService>> provider_services_;

  std::string vm_address_;
  std::string pm_address_;
  std::vector<std::string> dht_addresses_;
  std::vector<std::string> provider_addresses_;
  std::vector<ProviderId> provider_ids_;
};

}  // namespace blobseer::core

#endif  // BLOBSEER_CORE_CLUSTER_H_
