// Embedded BlobSeer cluster: starts a version manager, a provider manager,
// N data providers and M metadata (DHT) providers on one transport, wiring
// the deployment the paper describes (section 3.1) into one process for
// tests, examples and benchmarks. With transport = "tcp" the same topology
// runs over real sockets on loopback.
#ifndef BLOBSEER_CORE_CLUSTER_H_
#define BLOBSEER_CORE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "client/blob_client.h"
#include "client/blob_handle.h"
#include "common/result.h"
#include "dht/service.h"
#include "pmanager/service.h"
#include "provider/service.h"
#include "rpc/inproc.h"
#include "rpc/tcp.h"
#include "vmanager/service.h"

namespace blobseer::core {

struct ClusterOptions {
  size_t num_providers = 4;
  size_t num_meta = 4;
  /// "inproc" or "tcp" (loopback, ephemeral ports).
  std::string transport = "inproc";
  /// "memory", "null", "file:<directory>", or "log:<directory>" (durable
  /// log-structured store; each provider gets a provider-N subdirectory).
  std::string page_store = "memory";
  /// Allocation strategy name (see pmanager/strategy.h).
  std::string allocation = "round_robin";
  /// Page replica count applied to clients built via NewClient (clients may
  /// still override upward through their own options).
  uint32_t replication = 1;
  uint64_t provider_capacity_pages = 0;  // 0 = unbounded
  size_t dht_shards = 16;
};

class EmbeddedCluster {
 public:
  static Result<std::unique_ptr<EmbeddedCluster>> Start(
      const ClusterOptions& options);
  ~EmbeddedCluster();

  EmbeddedCluster(const EmbeddedCluster&) = delete;
  EmbeddedCluster& operator=(const EmbeddedCluster&) = delete;

  rpc::Transport* transport() { return transport_; }
  const std::string& vmanager_address() const { return vm_address_; }
  const std::string& pmanager_address() const { return pm_address_; }
  const std::vector<std::string>& dht_addresses() const {
    return dht_addresses_;
  }
  const std::vector<std::string>& provider_addresses() const {
    return provider_addresses_;
  }

  /// New client bound to this cluster.
  Result<std::unique_ptr<client::BlobClient>> NewClient(
      client::ClientOptions options = {});

  /// Direct service access for tests/inspection.
  vmanager::VersionManagerService& vmanager() { return *vm_service_; }
  pmanager::ProviderManagerService& pmanager() { return *pm_service_; }
  dht::DhtService& dht(size_t i) { return *dht_services_[i]; }
  provider::ProviderService& provider(size_t i) { return *provider_services_[i]; }
  size_t num_providers() const { return provider_services_.size(); }
  size_t num_meta() const { return dht_services_.size(); }

  /// Aggregate physical storage across providers (space-overhead benches).
  Status TotalProviderUsage(uint64_t* pages, uint64_t* bytes) const;
  /// Aggregate metadata usage across DHT nodes.
  Status TotalMetadataUsage(uint64_t* keys, uint64_t* bytes) const;

  /// Kills one data provider endpoint (failure-injection tests).
  Status StopProvider(size_t index);

 private:
  EmbeddedCluster() = default;

  ClusterOptions options_;
  std::unique_ptr<rpc::InProcNetwork> inproc_;
  std::unique_ptr<rpc::TcpTransport> tcp_;
  rpc::Transport* transport_ = nullptr;

  std::shared_ptr<vmanager::VersionManagerService> vm_service_;
  std::shared_ptr<pmanager::ProviderManagerService> pm_service_;
  std::vector<std::shared_ptr<dht::DhtService>> dht_services_;
  std::vector<std::shared_ptr<provider::ProviderService>> provider_services_;

  std::string vm_address_;
  std::string pm_address_;
  std::vector<std::string> dht_addresses_;
  std::vector<std::string> provider_addresses_;
};

}  // namespace blobseer::core

#endif  // BLOBSEER_CORE_CLUSTER_H_
