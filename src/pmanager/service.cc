#include "pmanager/service.h"

#include <algorithm>

#include "pmanager/messages.h"
#include "rpc/call.h"

namespace blobseer::pmanager {

ProviderManagerService::ProviderManagerService(
    std::unique_ptr<AllocationStrategy> strategy, Clock* clock,
    LivenessOptions liveness)
    : strategy_(std::move(strategy)),
      clock_(clock ? clock : RealClock::Default()),
      liveness_(liveness) {
  // A dead threshold at or below the suspect threshold would skip the
  // suspect state entirely; keep the state machine three-phased.
  if (liveness_.suspect_after_us != 0 &&
      liveness_.dead_after_us <= liveness_.suspect_after_us) {
    liveness_.dead_after_us = 3 * liveness_.suspect_after_us;
  }
}

ProviderManagerService::~ProviderManagerService() {
  StopGcSweeper();
  StopRebuilder();
}

void ProviderManagerService::RefreshLivenessLocked() const {
  if (liveness_.suspect_after_us == 0) return;  // detector disabled
  const uint64_t now = clock_->NowMicros();
  for (ProviderRecord& r : records_) {
    const uint64_t age = now - r.last_heartbeat_us;
    if (age >= liveness_.dead_after_us) {
      r.liveness = Liveness::kDead;
    } else if (age >= liveness_.suspect_after_us) {
      r.liveness = Liveness::kSuspect;
    } else {
      r.liveness = Liveness::kAlive;
    }
  }
}

std::vector<ProviderRecord> ProviderManagerService::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  RefreshLivenessLocked();
  return records_;
}

std::vector<locator::ProviderView> ProviderManagerService::ProviderViews()
    const {
  std::vector<locator::ProviderView> views;
  std::lock_guard<std::mutex> lock(mu_);
  RefreshLivenessLocked();
  views.reserve(records_.size());
  for (const ProviderRecord& r : records_) {
    locator::ProviderView v;
    v.id = r.id;
    v.address = r.address;
    v.draining = r.draining;
    v.alive = r.liveness == Liveness::kAlive && !r.draining;
    v.up = r.liveness != Liveness::kDead;
    views.push_back(std::move(v));
  }
  return views;
}

void ProviderManagerService::StartRebuilder(Executor* executor, Clock* clock,
                                            rpc::Transport* transport,
                                            std::vector<std::string> dht_nodes,
                                            dht::DhtClientOptions dht_options,
                                            locator::RebuildOptions options) {
  StopRebuilder();
  rebuilder_ = std::make_unique<locator::Rebuilder>(
      &table_, [this] { return ProviderViews(); }, transport,
      std::move(dht_nodes), dht_options, options);
  rebuilder_->Start(executor, clock);
}

void ProviderManagerService::StopRebuilder() {
  if (!rebuilder_) return;
  rebuilder_->Stop();
  rebuilder_.reset();
}

void ProviderManagerService::StartGcSweeper(
    Executor* executor, Clock* clock, rpc::Transport* transport,
    std::string vm_address, std::vector<std::string> dht_nodes,
    dht::DhtClientOptions dht_options, lifecycle::GcOptions options) {
  StopGcSweeper();
  gc_sweeper_ = std::make_unique<lifecycle::GcSweeper>(
      &table_, [this] { return ProviderViews(); }, transport,
      std::move(vm_address), std::move(dht_nodes), dht_options, options);
  gc_sweeper_->Start(executor, clock);
}

bool ProviderManagerService::StopGcSweeper() {
  if (!gc_sweeper_) return true;
  gc_sweeper_->Stop();
  const bool drained = gc_sweeper_->Drained();
  gc_sweeper_.reset();
  return drained;
}

Status ProviderManagerService::Handle(rpc::Method method, Slice payload,
                                      std::string* response) {
  using rpc::DispatchTyped;
  switch (method) {
    case rpc::Method::kPmRegister:
      return DispatchTyped<RegisterRequest, RegisterResponse>(
          payload, response,
          [this](const RegisterRequest& req, RegisterResponse* rsp) {
            if (req.address.empty())
              return Status::InvalidArgument("empty provider address");
            std::lock_guard<std::mutex> lock(mu_);
            const uint64_t now = clock_->NowMicros();
            // Re-registration of the same address refreshes liveness and
            // keeps the id stable (provider restart). Resolved through the
            // address index — a linear registry scan here turns the bring-up
            // of an n-provider cluster into O(n^2).
            auto it = ids_by_address_.find(req.address);
            if (it != ids_by_address_.end()) {
              ProviderRecord& r = records_[it->second];
              r.liveness = Liveness::kAlive;
              r.last_heartbeat_us = now;
              r.capacity_pages = req.capacity_pages;
              // An operator bringing a drained provider back rejoins it
              // to the allocation pool.
              r.draining = false;
              rsp->id = r.id;
              return Status::OK();
            }
            ProviderRecord rec;
            rec.id = static_cast<ProviderId>(records_.size());
            rec.address = req.address;
            rec.capacity_pages = req.capacity_pages;
            rec.last_heartbeat_us = now;
            ids_by_address_.emplace(rec.address, rec.id);
            records_.push_back(std::move(rec));
            rsp->id = static_cast<ProviderId>(records_.size() - 1);
            return Status::OK();
          });
    case rpc::Method::kPmHeartbeat:
      return DispatchTyped<HeartbeatRequest, HeartbeatResponse>(
          payload, response,
          [this](const HeartbeatRequest& req, HeartbeatResponse*) {
            std::lock_guard<std::mutex> lock(mu_);
            // NotFound tells the sender to re-register (a restarted
            // provider manager has an empty registry).
            if (req.id >= records_.size())
              return Status::NotFound("provider id");
            records_[req.id].liveness = Liveness::kAlive;
            records_[req.id].last_heartbeat_us = clock_->NowMicros();
            // Trust the provider's own count over our optimistic estimate.
            records_[req.id].allocated_pages = req.stored_pages;
            return Status::OK();
          });
    case rpc::Method::kPmAllocate:
      return DispatchTyped<AllocateRequest, AllocateResponse>(
          payload, response,
          [this](const AllocateRequest& req, AllocateResponse* rsp) {
            if (req.num_pages == 0)
              return Status::InvalidArgument("allocate zero pages");
            // The leaf wire format stores the replica count as one byte.
            if (req.replication == 0 || req.replication > 255)
              return Status::InvalidArgument("replication factor out of range");
            std::lock_guard<std::mutex> lock(mu_);
            if (records_.empty())
              return Status::Unavailable("no providers registered");
            // Allocation-time exclusion: every strategy sees the current
            // failure-detector verdicts, so expired providers drop out of
            // the rotation here, not at write time.
            RefreshLivenessLocked();
            // Strategies charge allocated_pages (and retire full providers)
            // as they pick — that is the only record state they mutate. So
            // snapshot just the allocation counters and roll them back on a
            // partial allocation: failed requests leave no phantom load
            // behind, and a large registry no longer pays a full record
            // copy (address strings included) per allocation RPC.
            alloc_rollback_.resize(records_.size());
            for (size_t i = 0; i < records_.size(); i++)
              alloc_rollback_[i] = records_[i].allocated_pages;
            rsp->replicas =
                strategy_->Allocate(&records_, req.num_pages, req.replication);
            bool satisfied = rsp->replicas.size() == req.num_pages;
            for (const auto& set : rsp->replicas) {
              if (set.size() != req.replication) satisfied = false;
            }
            if (!satisfied) {
              for (size_t i = 0; i < alloc_rollback_.size(); i++)
                records_[i].allocated_pages = alloc_rollback_[i];
              return Status::Unavailable(
                  rsp->replicas.size() != req.num_pages
                      ? "insufficient provider capacity"
                      : "fewer live providers than replication factor");
            }
            allocations_ +=
                static_cast<uint64_t>(req.num_pages) * req.replication;
            return Status::OK();
          });
    case rpc::Method::kPmDirectory:
      return DispatchTyped<DirectoryRequest, DirectoryResponse>(
          payload, response,
          [this](const DirectoryRequest&, DirectoryResponse* rsp) {
            std::lock_guard<std::mutex> lock(mu_);
            // The directory stays complete — readers need the addresses of
            // suspect/dead providers for failover attempts and repair.
            rsp->entries.reserve(records_.size());
            for (const auto& r : records_) {
              rsp->entries.push_back(DirectoryEntry{r.id, r.address});
            }
            return Status::OK();
          });
    case rpc::Method::kPmReportLocations:
      return DispatchTyped<ReportLocationsRequest, ReportLocationsResponse>(
          payload, response,
          [this](const ReportLocationsRequest& req, ReportLocationsResponse*) {
            for (const auto& info : req.added) {
              table_.Record(info.pid,
                            locator::LocationEntry{info.epoch, info.providers});
            }
            for (const PageId& pid : req.removed) table_.Forget(pid);
            return Status::OK();
          });
    case rpc::Method::kPmDecommission:
      return DispatchTyped<DecommissionRequest, DecommissionResponse>(
          payload, response,
          [this](const DecommissionRequest& req, DecommissionResponse* rsp) {
            {
              std::lock_guard<std::mutex> lock(mu_);
              if (req.id >= records_.size())
                return Status::NotFound("provider id");
              records_[req.id].draining = true;
            }
            // Idempotent poll: the first call marks the provider draining,
            // every call reports how many pages still reference it. The
            // rebuilder loop does the actual moving.
            rsp->remaining_pages = table_.CountOn(req.id);
            rsp->drained = rsp->remaining_pages == 0;
            return Status::OK();
          });
    case rpc::Method::kPmStats:
      return DispatchTyped<PmStatsRequest, PmStatsResponse>(
          payload, response,
          [this](const PmStatsRequest&, PmStatsResponse* rsp) {
            std::vector<char> usable;  // by provider id: page has this member
            {
              std::lock_guard<std::mutex> lock(mu_);
              RefreshLivenessLocked();
              rsp->providers = records_.size();
              rsp->allocations = allocations_;
              usable.resize(records_.size(), 0);
              for (const auto& r : records_) {
                switch (r.liveness) {
                  case Liveness::kAlive: rsp->alive++; break;
                  case Liveness::kSuspect: rsp->suspect++; break;
                  case Liveness::kDead: rsp->dead++; break;
                }
                if (r.draining) rsp->draining++;
                usable[r.id] =
                    r.liveness != Liveness::kDead && !r.draining;
              }
              if (!records_.empty()) {
                auto [mn, mx] = std::minmax_element(
                    records_.begin(), records_.end(),
                    [](const ProviderRecord& a, const ProviderRecord& b) {
                      return a.allocated_pages < b.allocated_pages;
                    });
                rsp->min_allocated = mn->allocated_pages;
                rsp->max_allocated = mx->allocated_pages;
              }
            }
            // Location-table scan outside mu_ (the table has its own lock):
            // a page is under-replicated when any member is dead, draining
            // or unknown — exactly the rebuilder's backlog.
            for (const auto& [pid, entry] : table_.Snapshot()) {
              rsp->located_pages++;
              for (ProviderId m : entry.providers) {
                if (m >= usable.size() || !usable[m]) {
                  rsp->under_replicated++;
                  break;
                }
              }
            }
            if (rebuilder_) {
              locator::RebuildStats rs = rebuilder_->GetStats();
              rsp->rebuilt_pages =
                  rs.pages_rebuilt + rs.pages_drained + rs.pages_rebalanced;
            }
            if (gc_sweeper_) {
              lifecycle::GcStats gs = gc_sweeper_->GetStats();
              rsp->gc_passes = gs.passes;
              rsp->gc_versions_discarded = gs.versions_discarded;
              rsp->gc_versions_retired = gs.versions_retired;
              rsp->gc_pages_swept = gs.pages_swept;
            }
            return Status::OK();
          });
    default:
      return Status::NotSupported("pmanager method");
  }
}

}  // namespace blobseer::pmanager
