#include "pmanager/service.h"

#include <algorithm>

#include "pmanager/messages.h"
#include "rpc/call.h"

namespace blobseer::pmanager {

ProviderManagerService::ProviderManagerService(
    std::unique_ptr<AllocationStrategy> strategy)
    : strategy_(std::move(strategy)) {}

std::vector<ProviderRecord> ProviderManagerService::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

Status ProviderManagerService::Handle(rpc::Method method, Slice payload,
                                      std::string* response) {
  using rpc::DispatchTyped;
  switch (method) {
    case rpc::Method::kPmRegister:
      return DispatchTyped<RegisterRequest, RegisterResponse>(
          payload, response,
          [this](const RegisterRequest& req, RegisterResponse* rsp) {
            if (req.address.empty())
              return Status::InvalidArgument("empty provider address");
            std::lock_guard<std::mutex> lock(mu_);
            // Re-registration of the same address refreshes liveness and
            // keeps the id stable (provider restart).
            for (auto& r : records_) {
              if (r.address == req.address) {
                r.alive = true;
                r.capacity_pages = req.capacity_pages;
                rsp->id = r.id;
                return Status::OK();
              }
            }
            ProviderRecord rec;
            rec.id = static_cast<ProviderId>(records_.size());
            rec.address = req.address;
            rec.capacity_pages = req.capacity_pages;
            records_.push_back(rec);
            rsp->id = rec.id;
            return Status::OK();
          });
    case rpc::Method::kPmHeartbeat:
      return DispatchTyped<HeartbeatRequest, HeartbeatResponse>(
          payload, response,
          [this](const HeartbeatRequest& req, HeartbeatResponse*) {
            std::lock_guard<std::mutex> lock(mu_);
            if (req.id >= records_.size())
              return Status::NotFound("provider id");
            records_[req.id].alive = true;
            // Trust the provider's own count over our optimistic estimate.
            records_[req.id].allocated_pages = req.stored_pages;
            return Status::OK();
          });
    case rpc::Method::kPmAllocate:
      return DispatchTyped<AllocateRequest, AllocateResponse>(
          payload, response,
          [this](const AllocateRequest& req, AllocateResponse* rsp) {
            if (req.num_pages == 0)
              return Status::InvalidArgument("allocate zero pages");
            // The leaf wire format stores the replica count as one byte.
            if (req.replication == 0 || req.replication > 255)
              return Status::InvalidArgument("replication factor out of range");
            std::lock_guard<std::mutex> lock(mu_);
            if (records_.empty())
              return Status::Unavailable("no providers registered");
            // Strategies charge allocated_pages (and retire full providers)
            // as they pick; run them on a scratch copy and commit only a
            // fully-satisfied allocation, so failed requests leave no
            // phantom load behind.
            std::vector<ProviderRecord> scratch = records_;
            rsp->replicas =
                strategy_->Allocate(&scratch, req.num_pages, req.replication);
            if (rsp->replicas.size() != req.num_pages)
              return Status::Unavailable("insufficient provider capacity");
            for (const auto& set : rsp->replicas) {
              if (set.size() != req.replication)
                return Status::Unavailable(
                    "fewer live providers than replication factor");
            }
            records_ = std::move(scratch);
            allocations_ +=
                static_cast<uint64_t>(req.num_pages) * req.replication;
            return Status::OK();
          });
    case rpc::Method::kPmDirectory:
      return DispatchTyped<DirectoryRequest, DirectoryResponse>(
          payload, response,
          [this](const DirectoryRequest&, DirectoryResponse* rsp) {
            std::lock_guard<std::mutex> lock(mu_);
            rsp->entries.reserve(records_.size());
            for (const auto& r : records_) {
              rsp->entries.push_back(DirectoryEntry{r.id, r.address});
            }
            return Status::OK();
          });
    case rpc::Method::kPmStats:
      return DispatchTyped<PmStatsRequest, PmStatsResponse>(
          payload, response,
          [this](const PmStatsRequest&, PmStatsResponse* rsp) {
            std::lock_guard<std::mutex> lock(mu_);
            rsp->providers = records_.size();
            rsp->allocations = allocations_;
            if (!records_.empty()) {
              auto [mn, mx] = std::minmax_element(
                  records_.begin(), records_.end(),
                  [](const ProviderRecord& a, const ProviderRecord& b) {
                    return a.allocated_pages < b.allocated_pages;
                  });
              rsp->min_allocated = mn->allocated_pages;
              rsp->max_allocated = mx->allocated_pages;
            }
            return Status::OK();
          });
    default:
      return Status::NotSupported("pmanager method");
  }
}

}  // namespace blobseer::pmanager
