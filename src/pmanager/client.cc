#include "pmanager/client.h"

#include "rpc/call.h"

namespace blobseer::pmanager {

ProviderManagerClient::ProviderManagerClient(rpc::Transport* transport,
                                             std::string address,
                                             size_t channels)
    : transport_(transport),
      address_(std::move(address)),
      pool_(transport_, channels) {}

// Reconnect-once on Unavailable for binding transports: a channel pooled
// before a provider-manager restart stays broken, so drop it and retry on
// a fresh connection. Register and Heartbeat are idempotent; a duplicated
// Allocate can over-charge allocated_pages transiently, which the next
// heartbeat's stored-page count corrects.
template <typename Req, typename Rsp>
Status ProviderManagerClient::Call(rpc::Method method, const Req& req,
                                   Rsp* rsp) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  Status s = rpc::CallMethod(ch->get(), method, req, rsp);
  if (!s.IsUnavailable() || !pool_.binding()) return s;
  pool_.Invalidate(address_);
  ch = pool_.Get(address_);
  if (!ch.ok()) return s;
  *rsp = Rsp{};
  return rpc::CallMethod(ch->get(), method, req, rsp);
}

template <typename Req, typename Rsp>
Future<Rsp> ProviderManagerClient::CallAsync(rpc::Method method,
                                             const Req& req) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return MakeReadyFuture<Rsp>(ch.status());
  auto shared = std::make_shared<Req>(req);
  return rpc::CallMethodAsync<Req, Rsp>(ch->get(), method, *shared)
      .Then([this, method, shared](Result<Rsp> r) -> Future<Rsp> {
        if (r.ok() || !r.status().IsUnavailable() || !pool_.binding())
          return MakeReadyFuture<Rsp>(std::move(r));
        pool_.Invalidate(address_);
        auto retry = pool_.Get(address_);
        if (!retry.ok()) return MakeReadyFuture<Rsp>(std::move(r));
        return rpc::CallMethodAsync<Req, Rsp>(retry->get(), method, *shared);
      });
}

Result<ProviderId> ProviderManagerClient::Register(
    const std::string& provider_address, uint64_t capacity_pages) {
  RegisterRequest req{provider_address, capacity_pages};
  RegisterResponse rsp;
  BS_RETURN_NOT_OK(Call(rpc::Method::kPmRegister, req, &rsp));
  return rsp.id;
}

Status ProviderManagerClient::Heartbeat(ProviderId id, uint64_t pages,
                                        uint64_t bytes) {
  HeartbeatRequest req{id, pages, bytes};
  HeartbeatResponse rsp;
  return Call(rpc::Method::kPmHeartbeat, req, &rsp);
}

Result<std::vector<std::vector<ProviderId>>>
ProviderManagerClient::AllocateReplicated(uint32_t num_pages,
                                          uint32_t replication) {
  AllocateRequest req{num_pages, replication};
  AllocateResponse rsp;
  BS_RETURN_NOT_OK(Call(rpc::Method::kPmAllocate, req, &rsp));
  return std::move(rsp.replicas);
}

Status ProviderManagerClient::ReportLocations(
    const ReportLocationsRequest& req) {
  ReportLocationsResponse rsp;
  return Call(rpc::Method::kPmReportLocations, req, &rsp);
}

Future<Unit> ProviderManagerClient::ReportLocationsAsync(
    ReportLocationsRequest req) {
  return CallAsync<ReportLocationsRequest, ReportLocationsResponse>(
             rpc::Method::kPmReportLocations, req)
      .Then([](Result<ReportLocationsResponse> r) -> Status {
        return r.status();
      });
}

Result<DecommissionResponse> ProviderManagerClient::Decommission(
    ProviderId id) {
  DecommissionRequest req{id};
  DecommissionResponse rsp;
  BS_RETURN_NOT_OK(Call(rpc::Method::kPmDecommission, req, &rsp));
  return rsp;
}

Future<std::vector<std::vector<ProviderId>>>
ProviderManagerClient::AllocateReplicatedAsync(uint32_t num_pages,
                                               uint32_t replication) {
  return CallAsync<AllocateRequest, AllocateResponse>(
             rpc::Method::kPmAllocate, AllocateRequest{num_pages, replication})
      .Then([](Result<AllocateResponse> rsp)
                -> Result<std::vector<std::vector<ProviderId>>> {
        if (!rsp.ok()) return rsp.status();
        return std::move(rsp->replicas);
      });
}

Result<std::string> ProviderManagerClient::CachedAddress(ProviderId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(id);
  if (it == directory_.end())
    return Status::NotFound("provider id " + std::to_string(id));
  return it->second;
}

Result<std::string> ProviderManagerClient::ResolveAddress(ProviderId id) {
  auto cached = CachedAddress(id);
  if (cached.ok()) return cached;
  auto dir = FetchDirectory();
  if (!dir.ok()) return dir.status();
  return CachedAddress(id);
}

Future<std::string> ProviderManagerClient::ResolveAddressAsync(ProviderId id) {
  auto cached = CachedAddress(id);
  if (cached.ok()) return MakeReadyFuture<std::string>(std::move(cached));
  return CallAsync<DirectoryRequest, DirectoryResponse>(
             rpc::Method::kPmDirectory, DirectoryRequest{})
      .Then([this, id](Result<DirectoryResponse> rsp) -> Result<std::string> {
        if (!rsp.ok()) return rsp.status();
        {
          std::lock_guard<std::mutex> lock(mu_);
          for (const auto& e : rsp->entries) directory_[e.id] = e.address;
        }
        return CachedAddress(id);
      });
}

Result<PmStatsResponse> ProviderManagerClient::FetchStats() {
  PmStatsRequest req;
  PmStatsResponse rsp;
  BS_RETURN_NOT_OK(Call(rpc::Method::kPmStats, req, &rsp));
  return rsp;
}

Result<std::vector<DirectoryEntry>> ProviderManagerClient::FetchDirectory() {
  DirectoryRequest req;
  DirectoryResponse rsp;
  BS_RETURN_NOT_OK(Call(rpc::Method::kPmDirectory, req, &rsp));
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : rsp.entries) directory_[e.id] = e.address;
  return std::move(rsp.entries);
}

}  // namespace blobseer::pmanager
