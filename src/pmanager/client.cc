#include "pmanager/client.h"

#include "rpc/call.h"

namespace blobseer::pmanager {

ProviderManagerClient::ProviderManagerClient(rpc::Transport* transport,
                                             std::string address,
                                             size_t channels)
    : transport_(transport),
      address_(std::move(address)),
      pool_(transport_, channels) {}

Result<ProviderId> ProviderManagerClient::Register(
    const std::string& provider_address, uint64_t capacity_pages) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  RegisterRequest req{provider_address, capacity_pages};
  RegisterResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kPmRegister, req, &rsp));
  return rsp.id;
}

Status ProviderManagerClient::Heartbeat(ProviderId id, uint64_t pages,
                                        uint64_t bytes) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  HeartbeatRequest req{id, pages, bytes};
  HeartbeatResponse rsp;
  return rpc::CallMethod(ch->get(), rpc::Method::kPmHeartbeat, req, &rsp);
}

Result<std::vector<ProviderId>> ProviderManagerClient::Allocate(
    uint32_t num_pages) {
  auto sets = AllocateReplicated(num_pages, 1);
  if (!sets.ok()) return sets.status();
  std::vector<ProviderId> out;
  out.reserve(sets->size());
  for (const auto& set : *sets)
    out.push_back(set.empty() ? kInvalidProvider : set[0]);
  return out;
}

Result<std::vector<std::vector<ProviderId>>>
ProviderManagerClient::AllocateReplicated(uint32_t num_pages,
                                          uint32_t replication) {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  AllocateRequest req{num_pages, replication};
  AllocateResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kPmAllocate, req, &rsp));
  return std::move(rsp.replicas);
}

Future<std::vector<std::vector<ProviderId>>>
ProviderManagerClient::AllocateReplicatedAsync(uint32_t num_pages,
                                               uint32_t replication) {
  auto ch = pool_.Get(address_);
  if (!ch.ok())
    return MakeReadyFuture<std::vector<std::vector<ProviderId>>>(ch.status());
  return rpc::CallMethodAsync<AllocateRequest, AllocateResponse>(
             ch->get(), rpc::Method::kPmAllocate,
             AllocateRequest{num_pages, replication})
      .Then([](Result<AllocateResponse> rsp)
                -> Result<std::vector<std::vector<ProviderId>>> {
        if (!rsp.ok()) return rsp.status();
        return std::move(rsp->replicas);
      });
}

Result<std::string> ProviderManagerClient::CachedAddress(ProviderId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = directory_.find(id);
  if (it == directory_.end())
    return Status::NotFound("provider id " + std::to_string(id));
  return it->second;
}

Result<std::string> ProviderManagerClient::ResolveAddress(ProviderId id) {
  auto cached = CachedAddress(id);
  if (cached.ok()) return cached;
  auto dir = FetchDirectory();
  if (!dir.ok()) return dir.status();
  return CachedAddress(id);
}

Future<std::string> ProviderManagerClient::ResolveAddressAsync(ProviderId id) {
  auto cached = CachedAddress(id);
  if (cached.ok()) return MakeReadyFuture<std::string>(std::move(cached));
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return MakeReadyFuture<std::string>(ch.status());
  return rpc::CallMethodAsync<DirectoryRequest, DirectoryResponse>(
             ch->get(), rpc::Method::kPmDirectory, DirectoryRequest{})
      .Then([this, id](Result<DirectoryResponse> rsp) -> Result<std::string> {
        if (!rsp.ok()) return rsp.status();
        {
          std::lock_guard<std::mutex> lock(mu_);
          for (const auto& e : rsp->entries) directory_[e.id] = e.address;
        }
        return CachedAddress(id);
      });
}

Result<PmStatsResponse> ProviderManagerClient::FetchStats() {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  PmStatsRequest req;
  PmStatsResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kPmStats, req, &rsp));
  return rsp;
}

Result<std::vector<DirectoryEntry>> ProviderManagerClient::FetchDirectory() {
  auto ch = pool_.Get(address_);
  if (!ch.ok()) return ch.status();
  DirectoryRequest req;
  DirectoryResponse rsp;
  BS_RETURN_NOT_OK(
      rpc::CallMethod(ch->get(), rpc::Method::kPmDirectory, req, &rsp));
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : rsp.entries) directory_[e.id] = e.address;
  return std::move(rsp.entries);
}

}  // namespace blobseer::pmanager
