// Typed client for the provider manager.
#ifndef BLOBSEER_PMANAGER_CLIENT_H_
#define BLOBSEER_PMANAGER_CLIENT_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/future.h"
#include "common/result.h"
#include "pmanager/messages.h"
#include "rpc/channel_pool.h"

namespace blobseer::pmanager {

class ProviderManagerClient {
 public:
  ProviderManagerClient(rpc::Transport* transport, std::string address,
                        size_t channels = 2);

  Result<ProviderId> Register(const std::string& provider_address,
                              uint64_t capacity_pages);
  Status Heartbeat(ProviderId id, uint64_t pages, uint64_t bytes);

  /// Asks for a replica set of `replication` distinct providers per page
  /// (primary first). Fails with Unavailable when fewer live providers than
  /// `replication` are registered. This is the only allocation surface —
  /// unreplicated callers pass replication = 1.
  Result<std::vector<std::vector<ProviderId>>> AllocateReplicated(
      uint32_t num_pages, uint32_t replication);

  /// Feeds the provider manager's location table (best-effort: the DHT
  /// entries remain authoritative, this view only drives rebuilds).
  Status ReportLocations(const ReportLocationsRequest& req);
  Future<Unit> ReportLocationsAsync(ReportLocationsRequest req);

  /// Marks a provider draining and reports how many pages still reference
  /// it. Poll until `drained` before retiring the process.
  Result<DecommissionResponse> Decommission(ProviderId id);

  /// Resolves a provider id to its endpoint address, refreshing the cached
  /// directory on miss.
  Result<std::string> ResolveAddress(ProviderId id);

  /// Forces a directory refresh and returns it.
  Result<std::vector<DirectoryEntry>> FetchDirectory();

  /// Registry statistics, including the failure detector's current
  /// alive/suspect/dead counts and the location-table health counters
  /// (tools, tests and churn harnesses).
  Result<PmStatsResponse> FetchStats();

  /// Async variants used by the client pipeline; a directory cache hit
  /// resolves the address future immediately.
  Future<std::vector<std::vector<ProviderId>>> AllocateReplicatedAsync(
      uint32_t num_pages, uint32_t replication);
  Future<std::string> ResolveAddressAsync(ProviderId id);

 private:
  template <typename Req, typename Rsp>
  Status Call(rpc::Method method, const Req& req, Rsp* rsp);
  template <typename Req, typename Rsp>
  Future<Rsp> CallAsync(rpc::Method method, const Req& req);

  Result<std::string> CachedAddress(ProviderId id);
  rpc::Transport* transport_;
  std::string address_;
  rpc::ChannelPool pool_;
  std::mutex mu_;
  std::map<ProviderId, std::string> directory_;
};

}  // namespace blobseer::pmanager

#endif  // BLOBSEER_PMANAGER_CLIENT_H_
