// Wire messages for the provider manager service.
#ifndef BLOBSEER_PMANAGER_MESSAGES_H_
#define BLOBSEER_PMANAGER_MESSAGES_H_

#include <string>
#include <vector>

#include "common/serde.h"

namespace blobseer::pmanager {

struct RegisterRequest {
  std::string address;
  uint64_t capacity_pages = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutString(address);
    w->PutU64(capacity_pages);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetString(&address));
    return r->GetU64(&capacity_pages);
  }
};

struct RegisterResponse {
  ProviderId id = kInvalidProvider;
  void EncodeTo(BinaryWriter* w) const { w->PutU32(id); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU32(&id); }
};

struct HeartbeatRequest {
  ProviderId id = kInvalidProvider;
  uint64_t stored_pages = 0;
  uint64_t stored_bytes = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU32(id);
    w->PutU64(stored_pages);
    w->PutU64(stored_bytes);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU32(&id));
    BS_RETURN_NOT_OK(r->GetU64(&stored_pages));
    return r->GetU64(&stored_bytes);
  }
};

struct HeartbeatResponse {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct AllocateRequest {
  uint32_t num_pages = 0;
  /// Distinct providers requested per page (the page's replica set).
  uint32_t replication = 1;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU32(num_pages);
    w->PutU32(replication);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU32(&num_pages));
    return r->GetU32(&replication);
  }
};

struct AllocateResponse {
  /// One replica set per requested page; each set lists `replication`
  /// distinct providers, primary first.
  std::vector<std::vector<ProviderId>> replicas;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU32(static_cast<uint32_t>(replicas.size()));
    for (const auto& set : replicas) {
      w->PutU32(static_cast<uint32_t>(set.size()));
      for (ProviderId p : set) w->PutU32(p);
    }
  }
  Status DecodeFrom(BinaryReader* r) {
    uint32_t n;
    BS_RETURN_NOT_OK(r->GetU32(&n));
    if (static_cast<uint64_t>(n) * 4 > r->remaining())
      return Status::Corruption("page count exceeds payload");
    replicas.resize(n);
    for (auto& set : replicas) {
      uint32_t cnt;
      BS_RETURN_NOT_OK(r->GetU32(&cnt));
      if (static_cast<uint64_t>(cnt) * 4 > r->remaining())
        return Status::Corruption("replica count exceeds payload");
      set.resize(cnt);
      for (auto& p : set) BS_RETURN_NOT_OK(r->GetU32(&p));
    }
    return Status::OK();
  }
};

struct DirectoryEntry {
  ProviderId id = kInvalidProvider;
  std::string address;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU32(id);
    w->PutString(address);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU32(&id));
    return r->GetString(&address);
  }
};

struct DirectoryRequest {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct DirectoryResponse {
  std::vector<DirectoryEntry> entries;
  void EncodeTo(BinaryWriter* w) const { PutVector(w, entries); }
  Status DecodeFrom(BinaryReader* r) { return GetVector(r, &entries); }
};

/// One page's location as known to the reporter (a client that just stored
/// it, or a reader that seeded a pre-v3 page).
struct PageLocationInfo {
  PageId pid;
  uint64_t epoch = 0;
  std::vector<ProviderId> providers;
  void EncodeTo(BinaryWriter* w) const {
    w->PutPageId(pid);
    w->PutU64(epoch);
    w->PutU32(static_cast<uint32_t>(providers.size()));
    for (ProviderId p : providers) w->PutU32(p);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetPageId(&pid));
    BS_RETURN_NOT_OK(r->GetU64(&epoch));
    uint32_t n;
    BS_RETURN_NOT_OK(r->GetU32(&n));
    if (static_cast<uint64_t>(n) * 4 > r->remaining())
      return Status::Corruption("replica count exceeds payload");
    providers.resize(n);
    for (auto& p : providers) BS_RETURN_NOT_OK(r->GetU32(&p));
    return Status::OK();
  }
};

/// Feeds the provider manager's location table: `added` after storing or
/// seeding pages, `removed` after deleting them. Best-effort from clients —
/// the DHT entries stay authoritative; this view only drives rebuilds.
struct ReportLocationsRequest {
  std::vector<PageLocationInfo> added;
  std::vector<PageId> removed;
  void EncodeTo(BinaryWriter* w) const {
    PutVector(w, added);
    w->PutU32(static_cast<uint32_t>(removed.size()));
    for (const PageId& pid : removed) w->PutPageId(pid);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(GetVector(r, &added));
    uint32_t n;
    BS_RETURN_NOT_OK(r->GetU32(&n));
    if (static_cast<uint64_t>(n) * 16 > r->remaining())
      return Status::Corruption("removed count exceeds payload");
    removed.resize(n);
    for (auto& pid : removed) BS_RETURN_NOT_OK(r->GetPageId(&pid));
    return Status::OK();
  }
};

struct ReportLocationsResponse {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

/// Marks a provider draining and reports drain progress. Idempotent: poll
/// until `drained`, then the process can be retired safely.
struct DecommissionRequest {
  ProviderId id = kInvalidProvider;
  void EncodeTo(BinaryWriter* w) const { w->PutU32(id); }
  Status DecodeFrom(BinaryReader* r) { return r->GetU32(&id); }
};

struct DecommissionResponse {
  /// Pages whose replica set still includes the draining provider.
  uint64_t remaining_pages = 0;
  bool drained = false;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(remaining_pages);
    w->PutBool(drained);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&remaining_pages));
    return r->GetBool(&drained);
  }
};

struct PmStatsRequest {
  void EncodeTo(BinaryWriter*) const {}
  Status DecodeFrom(BinaryReader*) { return Status::OK(); }
};

struct PmStatsResponse {
  uint64_t providers = 0;
  uint64_t allocations = 0;
  uint64_t min_allocated = 0;
  uint64_t max_allocated = 0;
  /// Failure-detector verdicts at the time of the call (alive + suspect +
  /// dead == providers). With the detector disabled everyone is alive.
  uint64_t alive = 0;
  uint64_t suspect = 0;
  uint64_t dead = 0;
  /// Location-table view: providers being drained, pages with a known
  /// location, pages whose replica set includes a dead / draining /
  /// unknown provider (the rebuilder's backlog), and pages the rebuilder
  /// has moved so far. `under_replicated == 0` means replication is fully
  /// healed — churn harnesses poll exactly that.
  uint64_t draining = 0;
  uint64_t located_pages = 0;
  uint64_t under_replicated = 0;
  uint64_t rebuilt_pages = 0;
  /// GC sweeper counters (zero when no sweeper is hosted); appended after
  /// the replication fields, decoded only when present so a new client can
  /// read an old server's response.
  uint64_t gc_passes = 0;
  uint64_t gc_versions_discarded = 0;
  uint64_t gc_versions_retired = 0;
  uint64_t gc_pages_swept = 0;
  void EncodeTo(BinaryWriter* w) const {
    w->PutU64(providers);
    w->PutU64(allocations);
    w->PutU64(min_allocated);
    w->PutU64(max_allocated);
    w->PutU64(alive);
    w->PutU64(suspect);
    w->PutU64(dead);
    w->PutU64(draining);
    w->PutU64(located_pages);
    w->PutU64(under_replicated);
    w->PutU64(rebuilt_pages);
    w->PutU64(gc_passes);
    w->PutU64(gc_versions_discarded);
    w->PutU64(gc_versions_retired);
    w->PutU64(gc_pages_swept);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU64(&providers));
    BS_RETURN_NOT_OK(r->GetU64(&allocations));
    BS_RETURN_NOT_OK(r->GetU64(&min_allocated));
    BS_RETURN_NOT_OK(r->GetU64(&max_allocated));
    BS_RETURN_NOT_OK(r->GetU64(&alive));
    BS_RETURN_NOT_OK(r->GetU64(&suspect));
    BS_RETURN_NOT_OK(r->GetU64(&dead));
    BS_RETURN_NOT_OK(r->GetU64(&draining));
    BS_RETURN_NOT_OK(r->GetU64(&located_pages));
    BS_RETURN_NOT_OK(r->GetU64(&under_replicated));
    BS_RETURN_NOT_OK(r->GetU64(&rebuilt_pages));
    if (r->remaining() == 0) return Status::OK();
    BS_RETURN_NOT_OK(r->GetU64(&gc_passes));
    BS_RETURN_NOT_OK(r->GetU64(&gc_versions_discarded));
    BS_RETURN_NOT_OK(r->GetU64(&gc_versions_retired));
    return r->GetU64(&gc_pages_swept);
  }
};

}  // namespace blobseer::pmanager

#endif  // BLOBSEER_PMANAGER_MESSAGES_H_
