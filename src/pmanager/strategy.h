// Page-to-provider allocation strategies. The paper notes the provider
// manager's distribution strategy "plays a central role in minimizing
// conflicts that lead to serialization" (section 4.3); we implement the
// even-distribution scheme it describes plus common alternatives for the
// ablation benches. Every strategy allocates *replica sets*: `r` distinct
// providers per page (section 3.1 keeps data available under churn by
// replicating each page), spread in registration order for round-robin and
// by load for the load-aware schemes.
#ifndef BLOBSEER_PMANAGER_STRATEGY_H_
#define BLOBSEER_PMANAGER_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace blobseer::pmanager {

/// Failure-detector verdict for one provider (GFS-style chunkserver
/// heartbeats): `kAlive` while beats arrive on time, `kSuspect` after
/// `suspect_after` without one, `kDead` after `dead_after`. Derived from
/// `last_heartbeat_us` by the provider manager, so a provider that resumes
/// beating flaps back to alive without re-registration.
enum class Liveness : uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

/// Provider manager's view of one registered data provider.
struct ProviderRecord {
  ProviderId id = kInvalidProvider;
  std::string address;
  uint64_t capacity_pages = 0;  // 0 = unbounded
  uint64_t allocated_pages = 0;
  Liveness liveness = Liveness::kAlive;
  /// Clock reading of the last Register/Heartbeat (provider-manager clock).
  uint64_t last_heartbeat_us = 0;
  /// Decommission in progress: the provider still serves reads while the
  /// rebuilder moves its pages away, but receives no new allocations.
  /// Cleared if the provider re-registers.
  bool draining = false;
};

/// Distinct providers holding one page's replicas; [0] is the primary
/// (writers store to all, readers try in order).
using ReplicaSet = std::vector<ProviderId>;

/// Chooses a replica set of `r` distinct providers for each of `n` pages.
/// Implementations may assume the records vector is non-empty, must update
/// `allocated_pages` once per replica they place, and return sets of
/// min(r, eligible providers) members — callers requiring exactly `r`
/// check set sizes. Fewer than `n` sets are returned only when no eligible
/// provider remains at all.
///
/// Liveness contract (shared by every strategy): `kDead` providers are
/// never selected; `kSuspect` providers are excluded while at least `r`
/// alive providers are eligible and only join the candidate pool when live
/// capacity drops below `r` (Dynamo-style sloppy membership — better to
/// write to a suspect than to fail the update).
class AllocationStrategy {
 public:
  virtual ~AllocationStrategy() = default;
  virtual std::vector<ReplicaSet> Allocate(std::vector<ProviderRecord>* records,
                                           size_t n, size_t r) = 0;
  virtual const char* name() const = 0;
};

/// Cycles through providers in registration order: the paper's
/// even-distribution scheme. Replicas are the next r distinct providers in
/// the cycle (chained-declustering spread). Deterministic and perfectly
/// balanced for equal-size pages.
std::unique_ptr<AllocationStrategy> MakeRoundRobinStrategy();

/// Uniform random choice (sets sampled without replacement).
std::unique_ptr<AllocationStrategy> MakeRandomStrategy(uint64_t seed = 42);

/// Always picks the providers with the fewest allocated pages.
std::unique_ptr<AllocationStrategy> MakeLeastLoadedStrategy();

/// Power-of-two-choices: samples two providers per replica and keeps the
/// less loaded one; near-optimal balance at O(1) cost.
std::unique_ptr<AllocationStrategy> MakePowerOfTwoStrategy(uint64_t seed = 42);

/// Factory by name: "round_robin", "random", "least_loaded", "power_of_two".
std::unique_ptr<AllocationStrategy> MakeStrategy(const std::string& name);

}  // namespace blobseer::pmanager

#endif  // BLOBSEER_PMANAGER_STRATEGY_H_
