// Page-to-provider allocation strategies. The paper notes the provider
// manager's distribution strategy "plays a central role in minimizing
// conflicts that lead to serialization" (section 4.3); we implement the
// even-distribution scheme it describes plus common alternatives for the
// ablation benches.
#ifndef BLOBSEER_PMANAGER_STRATEGY_H_
#define BLOBSEER_PMANAGER_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace blobseer::pmanager {

/// Provider manager's view of one registered data provider.
struct ProviderRecord {
  ProviderId id = kInvalidProvider;
  std::string address;
  uint64_t capacity_pages = 0;  // 0 = unbounded
  uint64_t allocated_pages = 0;
  bool alive = true;
};

/// Chooses `n` providers (repeats allowed when n exceeds the number of
/// providers) for the pages of one update. Implementations may assume the
/// records vector is non-empty and must update `allocated_pages` for the
/// providers they pick.
class AllocationStrategy {
 public:
  virtual ~AllocationStrategy() = default;
  virtual std::vector<ProviderId> Allocate(std::vector<ProviderRecord>* records,
                                           size_t n) = 0;
  virtual const char* name() const = 0;
};

/// Cycles through providers in registration order: the paper's
/// even-distribution scheme. Deterministic and perfectly balanced for
/// equal-size pages.
std::unique_ptr<AllocationStrategy> MakeRoundRobinStrategy();

/// Uniform random choice.
std::unique_ptr<AllocationStrategy> MakeRandomStrategy(uint64_t seed = 42);

/// Always picks the providers with the fewest allocated pages.
std::unique_ptr<AllocationStrategy> MakeLeastLoadedStrategy();

/// Power-of-two-choices: samples two providers per page and keeps the less
/// loaded one; near-optimal balance at O(1) cost.
std::unique_ptr<AllocationStrategy> MakePowerOfTwoStrategy(uint64_t seed = 42);

/// Factory by name: "round_robin", "random", "least_loaded", "power_of_two".
std::unique_ptr<AllocationStrategy> MakeStrategy(const std::string& name);

}  // namespace blobseer::pmanager

#endif  // BLOBSEER_PMANAGER_STRATEGY_H_
