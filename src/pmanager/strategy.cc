#include "pmanager/strategy.h"

#include <algorithm>
#include <limits>

namespace blobseer::pmanager {

namespace {

/// Candidate pool for one Allocate call: `elig` holds the indices a
/// strategy may pick from (alive and under capacity), `reserve` holds the
/// suspects (missed heartbeats, not yet declared dead) withheld while at
/// least `r` alive providers remain. TopUp admits the reserve the moment
/// live capacity drops below `r` — including mid-allocation, when alive
/// providers retire at capacity — so replica sets can still reach `r`
/// members during a partial outage (Dynamo-style sloppy membership). Dead
/// providers are never eligible.
struct EligiblePool {
  std::vector<size_t> elig;
  std::vector<size_t> reserve;
  void TopUp(size_t r) {
    if (elig.size() >= r || reserve.empty()) return;
    elig.insert(elig.end(), reserve.begin(), reserve.end());
    reserve.clear();
  }
};

EligiblePool MakeEligiblePool(const std::vector<ProviderRecord>& recs,
                              size_t r) {
  EligiblePool pool;
  pool.elig.reserve(recs.size());
  for (size_t i = 0; i < recs.size(); i++) {
    const ProviderRecord& rec = recs[i];
    if (rec.liveness == Liveness::kDead) continue;
    // Draining providers are being emptied for decommission: allocating to
    // them would race the rebuilder, so they are as ineligible as the dead.
    if (rec.draining) continue;
    if (rec.capacity_pages != 0 && rec.allocated_pages >= rec.capacity_pages)
      continue;
    if (rec.liveness == Liveness::kSuspect) {
      pool.reserve.push_back(i);
    } else {
      pool.elig.push_back(i);
    }
  }
  pool.TopUp(r);
  return pool;
}

/// Charges one page replica to records[idx]; removes it from `elig` (by
/// value) if that filled it to capacity.
void ChargeAndMaybeRetire(std::vector<ProviderRecord>* records, size_t idx,
                          std::vector<size_t>* elig) {
  ProviderRecord& r = (*records)[idx];
  r.allocated_pages++;
  if (r.capacity_pages != 0 && r.allocated_pages >= r.capacity_pages) {
    auto it = std::find(elig->begin(), elig->end(), idx);
    if (it != elig->end()) elig->erase(it);
  }
}

/// Emits one page's replica set from the record indices selected into
/// `picked`, charging each replica.
ReplicaSet CommitSet(std::vector<ProviderRecord>* records,
                     const std::vector<size_t>& picked,
                     std::vector<size_t>* elig) {
  ReplicaSet set;
  set.reserve(picked.size());
  for (size_t idx : picked) {
    set.push_back((*records)[idx].id);
    ChargeAndMaybeRetire(records, idx, elig);
  }
  return set;
}

class RoundRobinStrategy : public AllocationStrategy {
 public:
  std::vector<ReplicaSet> Allocate(std::vector<ProviderRecord>* records,
                                   size_t n, size_t r) override {
    std::vector<ReplicaSet> out;
    out.reserve(n);
    EligiblePool pool = MakeEligiblePool(*records, r);
    std::vector<size_t>& elig = pool.elig;
    std::vector<size_t> picked;
    for (size_t k = 0; k < n; k++) {
      pool.TopUp(r);
      if (elig.empty()) break;
      // Replicas are the next r distinct providers in registration-cycle
      // order (chained-declustering spread); the cursor advances one slot
      // per page so consecutive pages land on consecutive primaries.
      size_t take = std::min(r, elig.size());
      picked.clear();
      for (size_t j = 0; j < take; j++)
        picked.push_back(elig[(cursor_ + j) % elig.size()]);
      cursor_++;
      out.push_back(CommitSet(records, picked, &elig));
    }
    return out;
  }
  const char* name() const override { return "round_robin"; }

 private:
  size_t cursor_ = 0;
};

class RandomStrategy : public AllocationStrategy {
 public:
  explicit RandomStrategy(uint64_t seed) : rng_(seed) {}
  std::vector<ReplicaSet> Allocate(std::vector<ProviderRecord>* records,
                                   size_t n, size_t r) override {
    std::vector<ReplicaSet> out;
    out.reserve(n);
    EligiblePool pool = MakeEligiblePool(*records, r);
    std::vector<size_t>& elig = pool.elig;
    std::vector<size_t> scratch, picked;
    for (size_t k = 0; k < n; k++) {
      pool.TopUp(r);
      if (elig.empty()) break;
      // Sample without replacement: partial Fisher-Yates over the eligible
      // set gives r distinct uniform picks at O(r) swaps.
      size_t take = std::min(r, elig.size());
      scratch = elig;
      picked.clear();
      for (size_t j = 0; j < take; j++) {
        std::swap(scratch[j], scratch[j + rng_.Uniform(scratch.size() - j)]);
        picked.push_back(scratch[j]);
      }
      out.push_back(CommitSet(records, picked, &elig));
    }
    return out;
  }
  const char* name() const override { return "random"; }

 private:
  Rng rng_;
};

class LeastLoadedStrategy : public AllocationStrategy {
 public:
  std::vector<ReplicaSet> Allocate(std::vector<ProviderRecord>* records,
                                   size_t n, size_t r) override {
    std::vector<ReplicaSet> out;
    out.reserve(n);
    EligiblePool pool = MakeEligiblePool(*records, r);
    std::vector<size_t>& elig = pool.elig;
    std::vector<size_t> scratch, picked;
    for (size_t k = 0; k < n; k++) {
      pool.TopUp(r);
      if (elig.empty()) break;
      // Selection sort of the r least-loaded providers into the prefix.
      size_t take = std::min(r, elig.size());
      scratch = elig;
      picked.clear();
      for (size_t j = 0; j < take; j++) {
        size_t best = j;
        for (size_t p = j + 1; p < scratch.size(); p++) {
          if ((*records)[scratch[p]].allocated_pages <
              (*records)[scratch[best]].allocated_pages) {
            best = p;
          }
        }
        std::swap(scratch[j], scratch[best]);
        picked.push_back(scratch[j]);
      }
      out.push_back(CommitSet(records, picked, &elig));
    }
    return out;
  }
  const char* name() const override { return "least_loaded"; }
};

class PowerOfTwoStrategy : public AllocationStrategy {
 public:
  explicit PowerOfTwoStrategy(uint64_t seed) : rng_(seed) {}
  std::vector<ReplicaSet> Allocate(std::vector<ProviderRecord>* records,
                                   size_t n, size_t r) override {
    std::vector<ReplicaSet> out;
    out.reserve(n);
    EligiblePool pool = MakeEligiblePool(*records, r);
    std::vector<size_t>& elig = pool.elig;
    std::vector<size_t> scratch, picked;
    for (size_t k = 0; k < n; k++) {
      pool.TopUp(r);
      if (elig.empty()) break;
      // Two choices among the not-yet-picked suffix per replica, keeping
      // the set distinct by swapping winners into the prefix.
      size_t take = std::min(r, elig.size());
      scratch = elig;
      picked.clear();
      for (size_t j = 0; j < take; j++) {
        size_t pa = j + rng_.Uniform(scratch.size() - j);
        size_t pb = j + rng_.Uniform(scratch.size() - j);
        size_t pos = (*records)[scratch[pa]].allocated_pages <=
                             (*records)[scratch[pb]].allocated_pages
                         ? pa
                         : pb;
        std::swap(scratch[j], scratch[pos]);
        picked.push_back(scratch[j]);
      }
      out.push_back(CommitSet(records, picked, &elig));
    }
    return out;
  }
  const char* name() const override { return "power_of_two"; }

 private:
  Rng rng_;
};

}  // namespace

std::unique_ptr<AllocationStrategy> MakeRoundRobinStrategy() {
  return std::make_unique<RoundRobinStrategy>();
}
std::unique_ptr<AllocationStrategy> MakeRandomStrategy(uint64_t seed) {
  return std::make_unique<RandomStrategy>(seed);
}
std::unique_ptr<AllocationStrategy> MakeLeastLoadedStrategy() {
  return std::make_unique<LeastLoadedStrategy>();
}
std::unique_ptr<AllocationStrategy> MakePowerOfTwoStrategy(uint64_t seed) {
  return std::make_unique<PowerOfTwoStrategy>(seed);
}

std::unique_ptr<AllocationStrategy> MakeStrategy(const std::string& name) {
  if (name == "random") return MakeRandomStrategy();
  if (name == "least_loaded") return MakeLeastLoadedStrategy();
  if (name == "power_of_two") return MakePowerOfTwoStrategy();
  return MakeRoundRobinStrategy();
}

}  // namespace blobseer::pmanager
