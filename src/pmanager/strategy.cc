#include "pmanager/strategy.h"

#include <algorithm>
#include <limits>

namespace blobseer::pmanager {

namespace {

/// Indices of records that are alive and under capacity.
std::vector<size_t> EligibleIndices(const std::vector<ProviderRecord>& recs) {
  std::vector<size_t> out;
  out.reserve(recs.size());
  for (size_t i = 0; i < recs.size(); i++) {
    const ProviderRecord& r = recs[i];
    if (!r.alive) continue;
    if (r.capacity_pages != 0 && r.allocated_pages >= r.capacity_pages)
      continue;
    out.push_back(i);
  }
  return out;
}

/// Charges one page to records[idx]; removes it from `elig` (position
/// `pos`) if that filled it to capacity. Returns whether it was removed.
bool ChargeAndMaybeRetire(std::vector<ProviderRecord>* records, size_t idx,
                          std::vector<size_t>* elig, size_t pos) {
  ProviderRecord& r = (*records)[idx];
  r.allocated_pages++;
  if (r.capacity_pages != 0 && r.allocated_pages >= r.capacity_pages) {
    elig->erase(elig->begin() + static_cast<ptrdiff_t>(pos));
    return true;
  }
  return false;
}

class RoundRobinStrategy : public AllocationStrategy {
 public:
  std::vector<ProviderId> Allocate(std::vector<ProviderRecord>* records,
                                   size_t n) override {
    std::vector<ProviderId> out;
    out.reserve(n);
    std::vector<size_t> elig = EligibleIndices(*records);
    for (size_t k = 0; k < n; k++) {
      if (elig.empty()) break;
      size_t pos = cursor_ % elig.size();
      size_t idx = elig[pos];
      out.push_back((*records)[idx].id);
      if (!ChargeAndMaybeRetire(records, idx, &elig, pos)) cursor_++;
    }
    return out;
  }
  const char* name() const override { return "round_robin"; }

 private:
  size_t cursor_ = 0;
};

class RandomStrategy : public AllocationStrategy {
 public:
  explicit RandomStrategy(uint64_t seed) : rng_(seed) {}
  std::vector<ProviderId> Allocate(std::vector<ProviderRecord>* records,
                                   size_t n) override {
    std::vector<ProviderId> out;
    out.reserve(n);
    std::vector<size_t> elig = EligibleIndices(*records);
    for (size_t k = 0; k < n; k++) {
      if (elig.empty()) break;
      size_t pos = rng_.Uniform(elig.size());
      size_t idx = elig[pos];
      out.push_back((*records)[idx].id);
      ChargeAndMaybeRetire(records, idx, &elig, pos);
    }
    return out;
  }
  const char* name() const override { return "random"; }

 private:
  Rng rng_;
};

class LeastLoadedStrategy : public AllocationStrategy {
 public:
  std::vector<ProviderId> Allocate(std::vector<ProviderRecord>* records,
                                   size_t n) override {
    std::vector<ProviderId> out;
    out.reserve(n);
    std::vector<size_t> elig = EligibleIndices(*records);
    for (size_t k = 0; k < n; k++) {
      if (elig.empty()) break;
      size_t best_pos = 0;
      for (size_t p = 1; p < elig.size(); p++) {
        if ((*records)[elig[p]].allocated_pages <
            (*records)[elig[best_pos]].allocated_pages) {
          best_pos = p;
        }
      }
      size_t idx = elig[best_pos];
      out.push_back((*records)[idx].id);
      ChargeAndMaybeRetire(records, idx, &elig, best_pos);
    }
    return out;
  }
  const char* name() const override { return "least_loaded"; }
};

class PowerOfTwoStrategy : public AllocationStrategy {
 public:
  explicit PowerOfTwoStrategy(uint64_t seed) : rng_(seed) {}
  std::vector<ProviderId> Allocate(std::vector<ProviderRecord>* records,
                                   size_t n) override {
    std::vector<ProviderId> out;
    out.reserve(n);
    std::vector<size_t> elig = EligibleIndices(*records);
    for (size_t k = 0; k < n; k++) {
      if (elig.empty()) break;
      size_t pa = rng_.Uniform(elig.size());
      size_t pb = rng_.Uniform(elig.size());
      size_t pos = (*records)[elig[pa]].allocated_pages <=
                           (*records)[elig[pb]].allocated_pages
                       ? pa
                       : pb;
      size_t idx = elig[pos];
      out.push_back((*records)[idx].id);
      ChargeAndMaybeRetire(records, idx, &elig, pos);
    }
    return out;
  }
  const char* name() const override { return "power_of_two"; }

 private:
  Rng rng_;
};

}  // namespace

std::unique_ptr<AllocationStrategy> MakeRoundRobinStrategy() {
  return std::make_unique<RoundRobinStrategy>();
}
std::unique_ptr<AllocationStrategy> MakeRandomStrategy(uint64_t seed) {
  return std::make_unique<RandomStrategy>(seed);
}
std::unique_ptr<AllocationStrategy> MakeLeastLoadedStrategy() {
  return std::make_unique<LeastLoadedStrategy>();
}
std::unique_ptr<AllocationStrategy> MakePowerOfTwoStrategy(uint64_t seed) {
  return std::make_unique<PowerOfTwoStrategy>(seed);
}

std::unique_ptr<AllocationStrategy> MakeStrategy(const std::string& name) {
  if (name == "random") return MakeRandomStrategy();
  if (name == "least_loaded") return MakeLeastLoadedStrategy();
  if (name == "power_of_two") return MakePowerOfTwoStrategy();
  return MakeRoundRobinStrategy();
}

}  // namespace blobseer::pmanager
