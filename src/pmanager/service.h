// Provider manager service: provider registration and page allocation
// (paper section 3.1).
#ifndef BLOBSEER_PMANAGER_SERVICE_H_
#define BLOBSEER_PMANAGER_SERVICE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "pmanager/strategy.h"
#include "rpc/transport.h"

namespace blobseer::pmanager {

class ProviderManagerService : public rpc::ServiceHandler {
 public:
  explicit ProviderManagerService(
      std::unique_ptr<AllocationStrategy> strategy = MakeRoundRobinStrategy());

  Status Handle(rpc::Method method, Slice payload,
                std::string* response) override;

  /// Snapshot of the registry (for tests and tools).
  std::vector<ProviderRecord> Records() const;

 private:
  mutable std::mutex mu_;
  std::vector<ProviderRecord> records_;
  std::unique_ptr<AllocationStrategy> strategy_;
  uint64_t allocations_ = 0;
};

}  // namespace blobseer::pmanager

#endif  // BLOBSEER_PMANAGER_SERVICE_H_
