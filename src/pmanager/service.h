// Provider manager service: provider registration, heartbeat-driven
// liveness, page allocation (paper section 3.1) and — through the location
// table it feeds to the rebuilder — detector-triggered re-replication.
#ifndef BLOBSEER_PMANAGER_SERVICE_H_
#define BLOBSEER_PMANAGER_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"
#include "lifecycle/gc_sweeper.h"
#include "locator/rebuilder.h"
#include "locator/table.h"
#include "pmanager/strategy.h"
#include "rpc/transport.h"

namespace blobseer::pmanager {

/// Failure-detector thresholds. A provider that has not heartbeated for
/// `suspect_after_us` becomes kSuspect (excluded from allocation while at
/// least r alive providers remain); after `dead_after_us` it becomes kDead
/// (never allocated). `suspect_after_us == 0` disables the detector — every
/// registered provider stays kAlive forever, the pre-heartbeat behaviour —
/// so clusters that run no heartbeat senders keep working unchanged.
struct LivenessOptions {
  uint64_t suspect_after_us = 0;
  uint64_t dead_after_us = 0;
};

class ProviderManagerService : public rpc::ServiceHandler {
 public:
  /// `clock` defaults to the real clock; the simulator injects its
  /// virtual-time clock so liveness expiry is deterministic.
  explicit ProviderManagerService(
      std::unique_ptr<AllocationStrategy> strategy = MakeRoundRobinStrategy(),
      Clock* clock = nullptr, LivenessOptions liveness = {});
  ~ProviderManagerService() override;

  Status Handle(rpc::Method method, Slice payload,
                std::string* response) override;

  /// Snapshot of the registry with liveness freshly derived from heartbeat
  /// ages (for tests and tools).
  std::vector<ProviderRecord> Records() const;

  /// Registry snapshot in the rebuilder's vocabulary: `alive` marks
  /// eligible move targets (heartbeating, not draining), `up` marks usable
  /// copy sources (not declared dead).
  std::vector<locator::ProviderView> ProviderViews() const;

  /// Starts the background re-replication loop against this service's
  /// location table. `dht_nodes`/`dht_options` must match what clients use
  /// so the CAS linearization point agrees. Call StopRebuilder() before
  /// tearing down the transport.
  void StartRebuilder(Executor* executor, Clock* clock,
                      rpc::Transport* transport,
                      std::vector<std::string> dht_nodes,
                      dht::DhtClientOptions dht_options,
                      locator::RebuildOptions options);
  void StopRebuilder();

  /// Starts the version-lifecycle GC sweeper (docs/lifecycle.md) against
  /// this service's location table, mirroring the rebuilder's hosting:
  /// same executor/clock pair, same dht placement contract. `vm_address`
  /// is the version manager the sweeper evaluates retention against.
  void StartGcSweeper(Executor* executor, Clock* clock,
                      rpc::Transport* transport, std::string vm_address,
                      std::vector<std::string> dht_nodes,
                      dht::DhtClientOptions dht_options,
                      lifecycle::GcOptions options);
  /// Stops the sweeper loop. Returns true when the sweeper drained (no
  /// pass or delete RPC still in flight — always, given Stop joins the
  /// loop) or was never started; harness teardown asserts on it before
  /// tearing down the transport under the sweeper.
  bool StopGcSweeper();

  locator::PageLocationTable* location_table() { return &table_; }
  locator::Rebuilder* rebuilder() { return rebuilder_.get(); }
  lifecycle::GcSweeper* gc_sweeper() { return gc_sweeper_.get(); }

 private:
  /// Re-derives every record's liveness from its heartbeat age. Idempotent
  /// and monotonic in the clock: a provider that resumes beating flips back
  /// to kAlive on its next heartbeat without re-registration.
  void RefreshLivenessLocked() const;

  mutable std::mutex mu_;
  mutable std::vector<ProviderRecord> records_;
  /// Address -> index into records_ (ids are dense and never removed), so
  /// (re-)registration stays O(1) at 1000-provider bring-up.
  std::unordered_map<std::string, ProviderId> ids_by_address_;
  /// Reusable allocated_pages snapshot for allocation rollback (guarded by
  /// mu_; kept as a member to avoid a per-RPC allocation).
  std::vector<uint64_t> alloc_rollback_;
  std::unique_ptr<AllocationStrategy> strategy_;
  Clock* clock_;
  LivenessOptions liveness_;
  uint64_t allocations_ = 0;

  // Authoritative page-location view (fed by client reports and rebuilder
  // moves); lives here so Decommission and the stats endpoint can answer
  // "which pages still reference provider X" without touching the DHT.
  locator::PageLocationTable table_;
  std::unique_ptr<locator::Rebuilder> rebuilder_;
  std::unique_ptr<lifecycle::GcSweeper> gc_sweeper_;
};

}  // namespace blobseer::pmanager

#endif  // BLOBSEER_PMANAGER_SERVICE_H_
