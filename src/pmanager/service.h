// Provider manager service: provider registration, heartbeat-driven
// liveness and page allocation (paper section 3.1).
#ifndef BLOBSEER_PMANAGER_SERVICE_H_
#define BLOBSEER_PMANAGER_SERVICE_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "pmanager/strategy.h"
#include "rpc/transport.h"

namespace blobseer::pmanager {

/// Failure-detector thresholds. A provider that has not heartbeated for
/// `suspect_after_us` becomes kSuspect (excluded from allocation while at
/// least r alive providers remain); after `dead_after_us` it becomes kDead
/// (never allocated). `suspect_after_us == 0` disables the detector — every
/// registered provider stays kAlive forever, the pre-heartbeat behaviour —
/// so clusters that run no heartbeat senders keep working unchanged.
struct LivenessOptions {
  uint64_t suspect_after_us = 0;
  uint64_t dead_after_us = 0;
};

class ProviderManagerService : public rpc::ServiceHandler {
 public:
  /// `clock` defaults to the real clock; the simulator injects its
  /// virtual-time clock so liveness expiry is deterministic.
  explicit ProviderManagerService(
      std::unique_ptr<AllocationStrategy> strategy = MakeRoundRobinStrategy(),
      Clock* clock = nullptr, LivenessOptions liveness = {});

  Status Handle(rpc::Method method, Slice payload,
                std::string* response) override;

  /// Snapshot of the registry with liveness freshly derived from heartbeat
  /// ages (for tests and tools).
  std::vector<ProviderRecord> Records() const;

 private:
  /// Re-derives every record's liveness from its heartbeat age. Idempotent
  /// and monotonic in the clock: a provider that resumes beating flips back
  /// to kAlive on its next heartbeat without re-registration.
  void RefreshLivenessLocked() const;

  mutable std::mutex mu_;
  mutable std::vector<ProviderRecord> records_;
  std::unique_ptr<AllocationStrategy> strategy_;
  Clock* clock_;
  LivenessOptions liveness_;
  uint64_t allocations_ = 0;
};

}  // namespace blobseer::pmanager

#endif  // BLOBSEER_PMANAGER_SERVICE_H_
