#include "locator/location.h"

#include "common/string_util.h"

namespace blobseer::locator {

std::string LocationKey(const PageId& pid) {
  BinaryWriter w;
  w.PutU8('L');  // namespace tag: page location entry
  w.PutPageId(pid);
  return std::move(w).TakeBuffer();
}

void LocationEntry::EncodeTo(BinaryWriter* w) const {
  w->PutU64(epoch);
  w->PutU32(static_cast<uint32_t>(providers.size()));
  for (ProviderId p : providers) w->PutU32(p);
  w->PutU32(refs);
  w->PutU64(hash_hi);
  w->PutU64(hash_lo);
}

Status LocationEntry::DecodeFrom(BinaryReader* r) {
  BS_RETURN_NOT_OK(r->GetU64(&epoch));
  uint32_t n = 0;
  BS_RETURN_NOT_OK(r->GetU32(&n));
  if (static_cast<uint64_t>(n) * 4 > r->remaining())
    return Status::Corruption("location replica count exceeds payload");
  providers.resize(n);
  for (auto& p : providers) BS_RETURN_NOT_OK(r->GetU32(&p));
  // Gated trailing decode: entries written before the lifecycle subsystem
  // end here and imply one reference and no content hash.
  refs = 1;
  hash_hi = 0;
  hash_lo = 0;
  if (r->remaining() == 0) return Status::OK();
  BS_RETURN_NOT_OK(r->GetU32(&refs));
  BS_RETURN_NOT_OK(r->GetU64(&hash_hi));
  return r->GetU64(&hash_lo);
}

std::string LocationEntry::ToString() const {
  std::string out = StrFormat(
      "loc{epoch=%llu refs=%u r=%zu [",
      static_cast<unsigned long long>(epoch), refs, providers.size());
  for (size_t i = 0; i < providers.size(); i++) {
    if (i > 0) out += ' ';
    out += StrFormat("%u", providers[i]);
  }
  out += "]}";
  return out;
}

namespace {

std::string EncodeEntry(const LocationEntry& entry) {
  BinaryWriter w;
  entry.EncodeTo(&w);
  return std::move(w).TakeBuffer();
}

Result<LocationEntry> DecodeEntry(const std::string& bytes) {
  BinaryReader r{Slice(bytes)};
  LocationEntry entry;
  BS_RETURN_NOT_OK(entry.DecodeFrom(&r));
  if (!entry.valid()) return Status::Corruption("invalid location entry");
  return entry;
}

}  // namespace

LocationIndex::LocationIndex(dht::DhtClient* dht, size_t cache_capacity)
    : dht_(dht), capacity_(cache_capacity) {}

bool LocationIndex::CacheLookup(const PageId& pid, LocationEntry* entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(pid);
  if (it == cache_.end()) {
    stats_.misses++;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *entry = it->second->second;
  stats_.hits++;
  return true;
}

void LocationIndex::CacheInsert(const PageId& pid,
                                const LocationEntry& entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(pid);
  if (it != cache_.end()) {
    // Keep the higher epoch: a stale resolve racing a fresh CAS result must
    // not roll the cache backwards.
    if (entry.epoch >= it->second->second.epoch) it->second->second = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(pid, entry);
  cache_[pid] = lru_.begin();
  if (cache_.size() > capacity_) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

Result<LocationEntry> LocationIndex::Resolve(const PageId& pid) {
  LocationEntry entry;
  if (CacheLookup(pid, &entry)) return entry;
  std::string bytes;
  BS_RETURN_NOT_OK(dht_->Get(Slice(LocationKey(pid)), &bytes));
  Result<LocationEntry> decoded = DecodeEntry(bytes);
  if (decoded.ok()) CacheInsert(pid, *decoded);
  return decoded;
}

Future<LocationEntry> LocationIndex::ResolveAsync(const PageId& pid) {
  LocationEntry entry;
  if (CacheLookup(pid, &entry))
    return MakeReadyFuture<LocationEntry>(std::move(entry));
  return dht_->GetAsync(Slice(LocationKey(pid)))
      .Then([this, pid](Result<std::string> bytes) -> Result<LocationEntry> {
        if (!bytes.ok()) return bytes.status();
        Result<LocationEntry> decoded = DecodeEntry(*bytes);
        if (decoded.ok()) CacheInsert(pid, *decoded);
        return decoded;
      });
}

Status LocationIndex::Publish(const PageId& pid,
                              std::vector<ProviderId> providers,
                              uint64_t hash_hi, uint64_t hash_lo) {
  LocationEntry entry{1, std::move(providers), 1, hash_hi, hash_lo};
  BS_RETURN_NOT_OK(dht_->Put(Slice(LocationKey(pid)), Slice(EncodeEntry(entry))));
  CacheInsert(pid, entry);
  return Status::OK();
}

Future<Unit> LocationIndex::PublishAsync(const PageId& pid,
                                         std::vector<ProviderId> providers,
                                         uint64_t hash_hi, uint64_t hash_lo) {
  auto entry = std::make_shared<LocationEntry>(
      LocationEntry{1, std::move(providers), 1, hash_hi, hash_lo});
  return dht_->PutAsync(Slice(LocationKey(pid)), Slice(EncodeEntry(*entry)))
      .Then([this, pid, entry](Result<Unit> r) -> Result<Unit> {
        if (r.ok()) CacheInsert(pid, *entry);
        return r;
      });
}

Result<LocationEntry> LocationIndex::Seed(
    const PageId& pid, const std::vector<ProviderId>& providers) {
  LocationEntry entry{1, providers};
  bool applied = false;
  std::string current;
  BS_RETURN_NOT_OK(dht_->Cas(Slice(LocationKey(pid)), Slice(),
                             Slice(EncodeEntry(entry)),
                             /*expect_absent=*/true, &applied, &current));
  if (!applied) {
    // Someone else seeded or relocated first; their entry is authoritative.
    Result<LocationEntry> stored = DecodeEntry(current);
    if (!stored.ok()) return stored;
    CacheInsert(pid, *stored);
    return stored;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.seeds++;
  }
  CacheInsert(pid, entry);
  return entry;
}

Future<LocationEntry> LocationIndex::SeedAsync(
    const PageId& pid, std::vector<ProviderId> providers) {
  auto entry = std::make_shared<LocationEntry>(
      LocationEntry{1, std::move(providers)});
  return dht_
      ->CasAsync(Slice(LocationKey(pid)), Slice(), Slice(EncodeEntry(*entry)),
                 /*expect_absent=*/true)
      .Then([this, pid,
             entry](Result<dht::CasResponse> r) -> Result<LocationEntry> {
        if (!r.ok()) return r.status();
        if (!r->applied) {
          Result<LocationEntry> stored = DecodeEntry(r->current);
          if (!stored.ok()) return stored;
          CacheInsert(pid, *stored);
          return stored;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          stats_.seeds++;
        }
        CacheInsert(pid, *entry);
        return std::move(*entry);
      });
}

Result<LocationEntry> LocationIndex::CompareAndSwap(
    const PageId& pid, const LocationEntry& expected,
    std::vector<ProviderId> next) {
  // Replica moves carry the refcount and content hash through unchanged.
  LocationEntry installed = expected;
  installed.providers = std::move(next);
  return CompareAndSwapEntry(pid, expected, std::move(installed));
}

Result<LocationEntry> LocationIndex::CompareAndSwapEntry(
    const PageId& pid, const LocationEntry& expected, LocationEntry next) {
  next.epoch = expected.epoch + 1;
  bool applied = false;
  std::string current;
  BS_RETURN_NOT_OK(dht_->Cas(Slice(LocationKey(pid)),
                             Slice(EncodeEntry(expected)),
                             Slice(EncodeEntry(next)),
                             /*expect_absent=*/false, &applied, &current));
  if (applied) {
    CacheInsert(pid, next);
    return next;
  }
  Invalidate(pid);
  if (current.empty()) return Status::NotFound("location entry deleted");
  Result<LocationEntry> stored = DecodeEntry(current);
  if (stored.ok()) CacheInsert(pid, *stored);
  return Status::Aborted("location entry changed: " +
                         (stored.ok() ? stored->ToString() : current));
}

Future<LocationEntry> LocationIndex::CompareAndSwapEntryAsync(
    const PageId& pid, const LocationEntry& expected, LocationEntry next) {
  next.epoch = expected.epoch + 1;
  auto installed = std::make_shared<LocationEntry>(std::move(next));
  return dht_
      ->CasAsync(Slice(LocationKey(pid)), Slice(EncodeEntry(expected)),
                 Slice(EncodeEntry(*installed)),
                 /*expect_absent=*/false)
      .Then([this, pid,
             installed](Result<dht::CasResponse> r) -> Result<LocationEntry> {
        if (!r.ok()) return r.status();
        if (r->applied) {
          CacheInsert(pid, *installed);
          return std::move(*installed);
        }
        Invalidate(pid);
        if (r->current.empty())
          return Status::NotFound("location entry deleted");
        Result<LocationEntry> stored = DecodeEntry(r->current);
        if (stored.ok()) CacheInsert(pid, *stored);
        return Status::Aborted("location entry changed: " +
                               (stored.ok() ? stored->ToString()
                                            : r->current));
      });
}

Result<LocationEntry> LocationIndex::AdjustRefs(const PageId& pid,
                                                int32_t delta,
                                                int max_retries) {
  for (int attempt = 0;; attempt++) {
    // Always a fresh DHT read: the CAS below must expect the authoritative
    // bytes, and a cached entry may be epochs behind.
    std::string bytes;
    Status got = dht_->Get(Slice(LocationKey(pid)), &bytes);
    if (!got.ok()) {
      Invalidate(pid);
      return got;
    }
    Result<LocationEntry> cur = DecodeEntry(bytes);
    if (!cur.ok()) return cur.status();
    if (cur->condemned())
      return Status::FailedPrecondition("location entry condemned");
    LocationEntry next = *cur;
    next.refs = delta < 0 && uint32_t(-delta) >= next.refs
                    ? 0
                    : next.refs + uint32_t(delta);
    Result<LocationEntry> swapped =
        CompareAndSwapEntry(pid, *cur, std::move(next));
    if (swapped.ok() || !swapped.status().IsAborted() ||
        attempt >= max_retries) {
      return swapped;
    }
  }
}

Future<LocationEntry> LocationIndex::AdjustRefsAsync(const PageId& pid,
                                                     int32_t delta,
                                                     int max_retries) {
  return dht_->GetAsync(Slice(LocationKey(pid)))
      .Then([this, pid, delta,
             max_retries](Result<std::string> bytes) -> Future<LocationEntry> {
        if (!bytes.ok()) {
          Invalidate(pid);
          return MakeReadyFuture<LocationEntry>(bytes.status());
        }
        Result<LocationEntry> cur = DecodeEntry(*bytes);
        if (!cur.ok()) return MakeReadyFuture<LocationEntry>(cur.status());
        if (cur->condemned()) {
          return MakeReadyFuture<LocationEntry>(
              Status::FailedPrecondition("location entry condemned"));
        }
        LocationEntry next = *cur;
        next.refs = delta < 0 && uint32_t(-delta) >= next.refs
                        ? 0
                        : next.refs + uint32_t(delta);
        return CompareAndSwapEntryAsync(pid, *cur, std::move(next))
            .Then([this, pid, delta, max_retries](
                      Result<LocationEntry> swapped) -> Future<LocationEntry> {
              if (swapped.ok() || !swapped.status().IsAborted() ||
                  max_retries == 0) {
                return MakeReadyFuture<LocationEntry>(std::move(swapped));
              }
              return AdjustRefsAsync(pid, delta, max_retries - 1);
            });
      });
}

Status LocationIndex::DeleteEntry(const PageId& pid) {
  Status s = dht_->Delete(Slice(LocationKey(pid)));
  Invalidate(pid);
  return s;
}

Future<Unit> LocationIndex::DeleteEntryAsync(const PageId& pid) {
  return dht_->DeleteAsync(Slice(LocationKey(pid)))
      .Then([this, pid](Result<Unit> r) -> Result<Unit> {
        Invalidate(pid);
        return r;
      });
}

void LocationIndex::Invalidate(const PageId& pid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(pid);
  if (it == cache_.end()) return;
  lru_.erase(it->second);
  cache_.erase(it);
  stats_.invalidations++;
}

void LocationIndex::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.invalidations += cache_.size();
  cache_.clear();
  lru_.clear();
}

LocationIndexStats LocationIndex::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace blobseer::locator
