#include "locator/rebuilder.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "provider/messages.h"
#include "rpc/call.h"

namespace blobseer::locator {

namespace {

// Same reconnect-once-on-Unavailable idiom as the DHT client: page ops are
// idempotent, and on binding transports a pooled channel can go stale when
// a provider restarts under the same address.
template <typename Req, typename Rsp>
Status CallProvider(rpc::ChannelPool* pool, const std::string& address,
                    rpc::Method method, const Req& req, Rsp* rsp) {
  auto ch = pool->Get(address);
  if (!ch.ok()) return ch.status();
  Status s = rpc::CallMethod(ch->get(), method, req, rsp);
  if (!s.IsUnavailable() || !pool->binding()) return s;
  pool->Invalidate(address);
  ch = pool->Get(address);
  if (!ch.ok()) return s;
  *rsp = Rsp{};
  return rpc::CallMethod(ch->get(), method, req, rsp);
}

}  // namespace

struct Rebuilder::Loop {
  std::atomic<bool> stop{false};
  std::shared_ptr<WaitEvent> done;
};

Rebuilder::Rebuilder(PageLocationTable* table, ProvidersFn providers,
                     rpc::Transport* transport,
                     std::vector<std::string> dht_nodes,
                     dht::DhtClientOptions dht_options, RebuildOptions options)
    : table_(table),
      providers_(std::move(providers)),
      options_(options),
      dht_(transport, std::move(dht_nodes), dht_options),
      // No location cache: every CAS must start from the authoritative
      // entry, and the table already memoizes what this process learned.
      index_(&dht_, /*cache_capacity=*/0),
      providers_pool_(transport, /*channels_per_endpoint=*/1) {}

Rebuilder::~Rebuilder() { Stop(); }

Status Rebuilder::MovePage(
    const PageId& pid, LocationEntry* entry, ProviderId from, ProviderId to,
    const std::unordered_map<ProviderId, ProviderView>& views) {
  // Copy sources: surviving members first, the vacated provider itself as
  // a last resort (it is still up for drain and rebalance moves).
  std::vector<const ProviderView*> sources;
  for (ProviderId m : entry->providers) {
    if (m == from) continue;
    auto it = views.find(m);
    if (it != views.end() && it->second.up) sources.push_back(&it->second);
  }
  auto from_it = views.find(from);
  const bool from_up = from_it != views.end() && from_it->second.up;
  if (from_up) sources.push_back(&from_it->second);

  provider::ReadRequest read{pid, 0, 0};
  provider::ReadResponse page;
  Status rs = Status::Unavailable("no live replica to copy from");
  for (const ProviderView* src : sources) {
    page = provider::ReadResponse{};
    rs = CallProvider(&providers_pool_, src->address,
                      rpc::Method::kProviderRead, read, &page);
    if (rs.ok()) break;
  }
  if (!rs.ok()) {
    // A NotFound here means the page object is missing on a live source,
    // not that the location entry vanished — keep the distinction for the
    // caller, which treats NotFound as "entry deleted".
    return rs.IsNotFound() ? Status::Unavailable(rs.message()) : rs;
  }

  auto to_it = views.find(to);
  if (to_it == views.end())
    return Status::Internal("rebuild target not in provider view");
  provider::WriteRequest write{pid, std::move(page.data)};
  provider::WriteResponse wrsp;
  BS_RETURN_NOT_OK(CallProvider(&providers_pool_, to_it->second.address,
                                rpc::Method::kProviderWrite, write, &wrsp));

  // Commit: the location entry flips to the new set in one CAS, so readers
  // either see the old set (and fail over off the bad member) or the new
  // one (where the copy already exists).
  std::vector<ProviderId> next = entry->providers;
  std::replace(next.begin(), next.end(), from, to);
  Result<LocationEntry> installed =
      index_.CompareAndSwap(pid, *entry, std::move(next));
  if (!installed.ok()) {
    if (installed.status().IsNotFound()) {
      // The GC sweeper deleted the entry between our read and the CAS: the
      // copy we just wrote is unreachable garbage — remove it so it cannot
      // leak on the target provider.
      provider::DeleteRequest del{pid};
      provider::DeleteResponse drsp;
      (void)CallProvider(&providers_pool_, to_it->second.address,
                         rpc::Method::kProviderDelete, del, &drsp);
    }
    return installed.status();
  }
  *entry = *installed;
  table_->Record(pid, *entry);

  if (from_up) {
    provider::DeleteRequest del{pid};
    provider::DeleteResponse drsp;
    (void)CallProvider(&providers_pool_, from_it->second.address,
                       rpc::Method::kProviderDelete, del, &drsp);
  }
  return Status::OK();
}

size_t Rebuilder::RunOnePass() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.passes++;
  }
  std::unordered_map<ProviderId, ProviderView> views;
  std::unordered_map<ProviderId, size_t> load;  // alive move targets only
  for (ProviderView& v : providers_()) {
    if (v.alive) load[v.id] = 0;
    views.emplace(v.id, std::move(v));
  }
  auto pages = table_->Snapshot();
  for (const auto& [pid, entry] : pages) {
    for (ProviderId m : entry.providers) {
      auto it = load.find(m);
      if (it != load.end()) it->second++;
    }
  }

  auto pick_target =
      [&](const std::vector<ProviderId>& members) -> ProviderId {
    ProviderId best = kInvalidProvider;
    size_t best_load = std::numeric_limits<size_t>::max();
    for (const auto& [id, l] : load) {
      if (std::find(members.begin(), members.end(), id) != members.end())
        continue;
      // Tie-break by id for reproducible placement under virtual time.
      if (l < best_load || (l == best_load && id < best)) {
        best = id;
        best_load = l;
      }
    }
    return best;
  };

  size_t moves = 0;
  // Heal dead members and drain draining ones, page by page.
  for (auto& [pid, entry] : pages) {
    if (moves >= options_.max_moves_per_pass) break;
    if (entry.condemned()) continue;  // GC owns this page now
    bool rescan = true;
    while (rescan && moves < options_.max_moves_per_pass) {
      rescan = false;
      for (ProviderId m : entry.providers) {
        auto it = views.find(m);
        const bool bad = it == views.end() || !it->second.up;
        const bool drain = !bad && it->second.draining;
        if (!bad && !drain) continue;
        ProviderId target = pick_target(entry.providers);
        if (target == kInvalidProvider) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          stats_.failed_moves++;
          continue;
        }
        Status s = MovePage(pid, &entry, m, target, views);
        if (s.ok()) {
          load[target]++;
          moves++;
          std::lock_guard<std::mutex> lock(stats_mu_);
          (drain ? stats_.pages_drained : stats_.pages_rebuilt)++;
          rescan = true;  // the member list changed; re-scan the entry
          break;
        }
        if (s.IsAborted()) {
          // A concurrent relocation won the CAS: learn the fresh entry and
          // re-scan it — the conflict may already have healed this member.
          {
            std::lock_guard<std::mutex> lock(stats_mu_);
            stats_.cas_conflicts++;
          }
          Result<LocationEntry> fresh = index_.Resolve(pid);
          if (fresh.ok()) {
            if (fresh->condemned()) {
              // The conflicting CAS was the GC sweeper condemning the page;
              // leave it to the sweeper's physical deletes.
              table_->Forget(pid);
              break;
            }
            entry = *fresh;
            table_->Record(pid, entry);
            rescan = true;
          }
          break;
        }
        if (s.IsNotFound()) {
          table_->Forget(pid);  // entry deleted under us (page GC'd)
          break;
        }
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.failed_moves++;
      }
    }
  }

  // Rebalance: push pages from the most- to the least-loaded provider
  // while the spread exceeds one page (how fresh joiners pick up load).
  while (options_.rebalance && moves < options_.max_moves_per_pass) {
    ProviderId hi = kInvalidProvider, lo = kInvalidProvider;
    size_t hi_load = 0, lo_load = std::numeric_limits<size_t>::max();
    for (const auto& [id, l] : load) {
      if (hi == kInvalidProvider || l > hi_load) hi = id, hi_load = l;
      if (lo == kInvalidProvider || l < lo_load) lo = id, lo_load = l;
    }
    if (hi == kInvalidProvider || lo == kInvalidProvider ||
        hi_load <= lo_load + 1) {
      break;
    }
    bool moved = false;
    for (auto& [pid, entry] : pages) {
      if (entry.condemned()) continue;
      const auto& p = entry.providers;
      if (std::find(p.begin(), p.end(), hi) == p.end()) continue;
      if (std::find(p.begin(), p.end(), lo) != p.end()) continue;
      Status s = MovePage(pid, &entry, hi, lo, views);
      if (s.ok()) {
        load[hi]--;
        load[lo]++;
        moves++;
        moved = true;
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.pages_rebalanced++;
        break;
      }
      if (s.IsAborted()) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.cas_conflicts++;
        continue;
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.failed_moves++;
    }
    if (!moved) break;
  }
  return moves;
}

void Rebuilder::Start(Executor* executor, Clock* clock) {
  if (options_.interval_us == 0 || loop_) return;
  auto loop = std::make_shared<Loop>();
  loop->done = executor->MakeWaitEvent();
  loop_ = loop;
  executor->Schedule([this, loop, clock] {
    while (!loop->stop.load(std::memory_order_acquire)) {
      clock->SleepForMicros(options_.interval_us);
      if (loop->stop.load(std::memory_order_acquire)) break;
      // Errors inside a pass are per-move and already counted; the loop
      // itself never aborts.
      (void)RunOnePass();
    }
    loop->done->Signal();
  });
}

void Rebuilder::Stop() {
  if (!loop_) return;
  loop_->stop.store(true, std::memory_order_release);
  loop_->done->Await();
  loop_.reset();
}

RebuildStats Rebuilder::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace blobseer::locator
