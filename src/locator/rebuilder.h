// Background re-replication driven by the failure detector: when a provider
// is declared dead, its pages are rebuilt onto different live providers from
// surviving replicas; draining providers are emptied the same way; and an
// optional rebalance pass spreads load onto newly joined providers. Every
// move commits by CAS on the page's location entry, so concurrent rebuilds
// and client-visible state stay consistent.
#ifndef BLOBSEER_LOCATOR_REBUILDER_H_
#define BLOBSEER_LOCATOR_REBUILDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/executor.h"
#include "dht/client.h"
#include "locator/location.h"
#include "locator/table.h"
#include "rpc/channel_pool.h"

namespace blobseer::locator {

/// Rebuilder's snapshot of one provider, derived from the provider
/// manager's registry + liveness state.
struct ProviderView {
  ProviderId id = kInvalidProvider;
  std::string address;
  /// Eligible as a move target: heartbeating (kAlive) and not draining.
  bool alive = false;
  /// Usable as a copy source: not declared dead (suspect still counts).
  bool up = false;
  bool draining = false;
};

struct RebuildOptions {
  /// Loop pacing; 0 disables the background loop (RunOnePass still works).
  uint64_t interval_us = 0;
  /// Per-pass budget: bounds the burst of copy traffic one pass may create.
  size_t max_moves_per_pass = 64;
  /// Also migrate pages toward the least-loaded providers when the spread
  /// exceeds one page (how joined providers pick up existing load).
  bool rebalance = true;
};

struct RebuildStats {
  uint64_t passes = 0;
  uint64_t pages_rebuilt = 0;      // replaced a dead replica
  uint64_t pages_drained = 0;      // moved off a draining provider
  uint64_t pages_rebalanced = 0;   // moved for load spread
  uint64_t failed_moves = 0;
  uint64_t cas_conflicts = 0;
};

class Rebuilder {
 public:
  using ProvidersFn = std::function<std::vector<ProviderView>()>;

  /// `table` must outlive the rebuilder; `providers` is polled at the start
  /// of each pass (the provider manager's registry under its lock). The
  /// rebuilder runs its own DHT client so CAS placement matches what
  /// clients compute — `dht_options` must equal theirs.
  Rebuilder(PageLocationTable* table, ProvidersFn providers,
            rpc::Transport* transport, std::vector<std::string> dht_nodes,
            dht::DhtClientOptions dht_options, RebuildOptions options);
  ~Rebuilder();

  /// One scan of the location table: heal entries with dead members, drain
  /// entries on draining providers, then rebalance. Returns the number of
  /// pages moved. Safe to call directly from tests (no loop required).
  size_t RunOnePass();

  /// Starts / stops the periodic pass loop on `executor`, paced by `clock`
  /// (real or simulated). No-op when options.interval_us is 0.
  void Start(Executor* executor, Clock* clock);
  void Stop();

  RebuildStats GetStats() const;
  LocationIndex* index() { return &index_; }

 private:
  struct Loop;

  /// Copies `pid` onto `to`, CASes `from`→`to` in the location entry, and
  /// deletes the vacated copy when its provider is still reachable. On
  /// success `*entry` becomes the installed entry.
  Status MovePage(const PageId& pid, LocationEntry* entry, ProviderId from,
                  ProviderId to,
                  const std::unordered_map<ProviderId, ProviderView>& views);

  PageLocationTable* table_;
  ProvidersFn providers_;
  RebuildOptions options_;
  dht::DhtClient dht_;
  LocationIndex index_;
  rpc::ChannelPool providers_pool_;

  mutable std::mutex stats_mu_;
  RebuildStats stats_;

  std::shared_ptr<Loop> loop_;
};

}  // namespace blobseer::locator

#endif  // BLOBSEER_LOCATOR_REBUILDER_H_
