// Page-location indirection: maps stable PageIds to the replica set that
// currently holds the page. Metadata leaves (format v3) store only PageIds;
// the location entries live in the DHT under their own key namespace, so
// the failure detector can move replicas without rewriting any metadata
// tree node.
#ifndef BLOBSEER_LOCATOR_LOCATION_H_
#define BLOBSEER_LOCATOR_LOCATION_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/future.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"
#include "dht/client.h"

namespace blobseer::locator {

/// DHT key for a page's location entry ('L' namespace tag, mirroring the
/// metadata node 'N' namespace).
std::string LocationKey(const PageId& pid);

/// Where a page's replicas currently live. `epoch` increments on every
/// relocation; it is the compare-and-swap token that serializes concurrent
/// rebuilds and lets caches detect staleness.
struct LocationEntry {
  uint64_t epoch = 0;
  std::vector<ProviderId> providers;
  /// Dedup reference count: the number of store events referencing this
  /// page (1 from the original publish, +1 per content-hash adoption).
  /// 0 means the GC sweeper condemned the entry — the page is being
  /// physically deleted and must not be adopted (docs/lifecycle.md).
  uint32_t refs = 1;
  /// Content hash the page was deduplicated under (0/0 = none); lets the
  /// sweeper clean the 'H' namespace mapping when the page dies.
  uint64_t hash_hi = 0;
  uint64_t hash_lo = 0;

  friend bool operator==(const LocationEntry&, const LocationEntry&) = default;

  bool valid() const { return epoch != 0 && !providers.empty(); }
  bool condemned() const { return refs == 0; }

  void EncodeTo(BinaryWriter* w) const;
  Status DecodeFrom(BinaryReader* r);
  std::string ToString() const;
};

struct LocationIndexStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  uint64_t seeds = 0;
};

/// Client view of the location index: resolve with a small LRU cache in
/// front of the DHT, publish entries for freshly written pages, seed entries
/// for pages whose replica set is still embedded in pre-v3 metadata, and
/// CAS entries when moving replicas. Thread-safe.
class LocationIndex {
 public:
  /// `dht` must outlive the index. `cache_capacity` of 0 disables caching.
  LocationIndex(dht::DhtClient* dht, size_t cache_capacity);

  /// Current replica set for `pid`, from cache or the DHT. NotFound when no
  /// entry exists (pre-v3 page not yet seeded, or deleted page).
  Result<LocationEntry> Resolve(const PageId& pid);
  Future<LocationEntry> ResolveAsync(const PageId& pid);

  /// Installs the entry for a freshly written page at epoch 1 with refs=1.
  /// A plain put: PageIds are minted client-locally and never reused, so no
  /// other writer can race this key. `hash_hi`/`hash_lo` record the content
  /// hash the page is addressed by when dedup is on (0/0 = none).
  Status Publish(const PageId& pid, std::vector<ProviderId> providers,
                 uint64_t hash_hi = 0, uint64_t hash_lo = 0);
  Future<Unit> PublishAsync(const PageId& pid,
                            std::vector<ProviderId> providers,
                            uint64_t hash_hi = 0, uint64_t hash_lo = 0);

  /// Creates the entry for a pre-v3 page from the replica set embedded in
  /// its metadata leaf (create-if-absent CAS). If another reader or the
  /// rebuilder got there first, the already-stored entry wins and is
  /// returned — callers always end up with the authoritative one.
  Result<LocationEntry> Seed(const PageId& pid,
                             const std::vector<ProviderId>& providers);
  Future<LocationEntry> SeedAsync(const PageId& pid,
                                  std::vector<ProviderId> providers);

  /// Atomically replaces `expected` with `{expected.epoch + 1, next}`.
  /// Returns the installed entry on success; Aborted when the stored entry
  /// no longer matches (a concurrent relocation won — re-resolve and
  /// retry); NotFound when the entry was deleted underneath.
  Result<LocationEntry> CompareAndSwap(const PageId& pid,
                                       const LocationEntry& expected,
                                       std::vector<ProviderId> next);

  /// Full-entry CAS: installs `next` (with epoch forced to
  /// `expected.epoch + 1`) iff the stored bytes still equal `expected`.
  /// Same failure contract as CompareAndSwap. The GC sweeper condemns
  /// entries through this (refs -> 0) so any concurrent adoption — which
  /// must itself CAS a refs bump — fails one side of the race cleanly.
  Result<LocationEntry> CompareAndSwapEntry(const PageId& pid,
                                            const LocationEntry& expected,
                                            LocationEntry next);
  Future<LocationEntry> CompareAndSwapEntryAsync(const PageId& pid,
                                                 const LocationEntry& expected,
                                                 LocationEntry next);

  /// Atomically adds `delta` to the entry's dedup refcount (fresh DHT read,
  /// never the cache), retrying lost CAS races up to `max_retries` times.
  /// Returns the installed entry. FailedPrecondition when the entry is
  /// condemned (refs == 0): the caller must not adopt this page.
  Result<LocationEntry> AdjustRefs(const PageId& pid, int32_t delta,
                                   int max_retries = 4);
  Future<LocationEntry> AdjustRefsAsync(const PageId& pid, int32_t delta,
                                        int max_retries = 4);

  /// Deletes the entry outright (physical cleanup after a condemn; also the
  /// failed-write cleanup path). Plain delete, caller serializes.
  Status DeleteEntry(const PageId& pid);
  Future<Unit> DeleteEntryAsync(const PageId& pid);

  /// Drops one / every cached entry. Readers invalidate a page on replica
  /// failover so the next resolve re-fetches the (possibly moved) entry.
  void Invalidate(const PageId& pid);
  void InvalidateAll();

  LocationIndexStats GetStats() const;
  dht::DhtClient* dht() { return dht_; }

 private:
  bool CacheLookup(const PageId& pid, LocationEntry* entry);
  void CacheInsert(const PageId& pid, const LocationEntry& entry);

  dht::DhtClient* dht_;
  size_t capacity_;

  mutable std::mutex mu_;
  // LRU: most-recent at front.
  std::list<std::pair<PageId, LocationEntry>> lru_;
  std::unordered_map<PageId,
                     std::list<std::pair<PageId, LocationEntry>>::iterator>
      cache_;
  LocationIndexStats stats_;
};

}  // namespace blobseer::locator

#endif  // BLOBSEER_LOCATOR_LOCATION_H_
