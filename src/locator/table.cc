#include "locator/table.h"

#include <algorithm>

namespace blobseer::locator {

void PageLocationTable::Record(const PageId& pid, const LocationEntry& entry) {
  if (!entry.valid()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(pid);
  if (it == pages_.end()) {
    pages_.emplace(pid, entry);
  } else if (entry.epoch >= it->second.epoch) {
    it->second = entry;
  }
}

void PageLocationTable::Forget(const PageId& pid) {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.erase(pid);
}

bool PageLocationTable::Lookup(const PageId& pid, LocationEntry* entry) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(pid);
  if (it == pages_.end()) return false;
  *entry = it->second;
  return true;
}

std::vector<PageId> PageLocationTable::PagesOn(ProviderId id) const {
  std::vector<PageId> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pid, entry] : pages_) {
    if (std::find(entry.providers.begin(), entry.providers.end(), id) !=
        entry.providers.end()) {
      out.push_back(pid);
    }
  }
  return out;
}

size_t PageLocationTable::CountOn(ProviderId id) const {
  size_t n = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [pid, entry] : pages_) {
    if (std::find(entry.providers.begin(), entry.providers.end(), id) !=
        entry.providers.end()) {
      n++;
    }
  }
  return n;
}

size_t PageLocationTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

std::vector<std::pair<PageId, LocationEntry>> PageLocationTable::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {pages_.begin(), pages_.end()};
}

}  // namespace blobseer::locator
