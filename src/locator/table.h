// The provider manager's authoritative in-memory view of page locations,
// built from client reports and rebuilder moves. The DHT holds the entries
// clients resolve; this table exists so the rebuilder can answer "which
// pages live on provider X" without scanning the DHT.
#ifndef BLOBSEER_LOCATOR_TABLE_H_
#define BLOBSEER_LOCATOR_TABLE_H_

#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "locator/location.h"

namespace blobseer::locator {

class PageLocationTable {
 public:
  /// Installs or refreshes an entry. Stale epochs are ignored so an
  /// out-of-order client report cannot roll back a rebuilder move.
  void Record(const PageId& pid, const LocationEntry& entry);

  /// Drops a page (deleted by its writer's cleanup or garbage collection).
  void Forget(const PageId& pid);

  /// Current entry for a page; false when unknown.
  bool Lookup(const PageId& pid, LocationEntry* entry) const;

  /// Pages whose replica set includes `id`.
  std::vector<PageId> PagesOn(ProviderId id) const;
  size_t CountOn(ProviderId id) const;

  size_t size() const;
  std::vector<std::pair<PageId, LocationEntry>> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<PageId, LocationEntry> pages_;
};

}  // namespace blobseer::locator

#endif  // BLOBSEER_LOCATOR_TABLE_H_
