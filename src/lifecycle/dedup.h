// Content-hash page dedup (docs/lifecycle.md). Pages are addressed on
// write by a 128-bit content hash in the DHT's 'H' namespace: the first
// writer of a given page body claims the hash with a create-if-absent CAS
// mapping it to the PageId it just stored; later writers of identical
// bytes adopt that PageId (bumping the location entry's refcount) instead
// of storing a duplicate copy.
//
// The hash is NOT cryptographic — it is a fast 128-bit mix (FNV-1a + CRC32C
// folded through a finalizer), so adversarial collisions are constructible.
// Dedup is therefore opt-in per client (ClientOptions::dedup, default off)
// and meant for trusted workloads where space matters more than collision
// paranoia.
#ifndef BLOBSEER_LIFECYCLE_DEDUP_H_
#define BLOBSEER_LIFECYCLE_DEDUP_H_

#include <cstdint>
#include <string>

#include "common/hash.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"

namespace blobseer::lifecycle {

struct ContentHash {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator==(const ContentHash&, const ContentHash&) = default;

  /// 0/0 is reserved as "no hash" in LocationEntry; HashPage never emits it.
  bool valid() const { return hi != 0 || lo != 0; }
};

/// Hashes one page body. Two independent passes (FNV-1a and CRC32C) are
/// mixed so a single weak function's collisions do not collapse the
/// 128-bit space to 64 bits.
inline ContentHash HashPage(Slice data) {
  ContentHash h;
  h.hi = Fnv1a64(data);
  h.lo = Mix64(h.hi ^ ((uint64_t{Crc32c(data)} << 32) | data.size()));
  if (!h.valid()) h.lo = 1;  // keep 0/0 reserved
  return h;
}

/// DHT key for a content hash ('H' namespace, alongside 'N' nodes and
/// 'L' location entries).
inline std::string HashKey(uint64_t hi, uint64_t lo) {
  BinaryWriter w;
  w.PutU8('H');
  w.PutU64(hi);
  w.PutU64(lo);
  return std::move(w).TakeBuffer();
}

inline std::string HashKey(const ContentHash& h) { return HashKey(h.hi, h.lo); }

/// Value stored under an 'H' key: the PageId holding the bytes.
inline std::string EncodeHashTarget(const PageId& pid) {
  BinaryWriter w;
  w.PutPageId(pid);
  return std::move(w).TakeBuffer();
}

inline Result<PageId> DecodeHashTarget(const std::string& bytes) {
  BinaryReader r{Slice(bytes)};
  PageId pid;
  BS_RETURN_NOT_OK(r.GetPageId(&pid));
  BS_RETURN_NOT_OK(r.ExpectEnd());
  if (!pid.valid()) return Status::Corruption("hash target pid invalid");
  return pid;
}

}  // namespace blobseer::lifecycle

#endif  // BLOBSEER_LIFECYCLE_DEDUP_H_
