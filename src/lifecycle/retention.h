// Version retention policies (ROADMAP item 2: version lifecycle).
//
// A policy is stored per blob by the version manager and evaluated by the
// GC sweeper: `keep_last_k` bounds the number of published snapshots kept,
// `keep_younger_than_us` keeps every snapshot younger than an age. A
// version survives when *either* rule protects it; with both fields 0 the
// policy is disabled and nothing ever expires (the pre-lifecycle default).
// Expiry never touches versions the manager reports as pinned: the latest
// published snapshot, branch points of child blobs, and the published
// frontier in-flight updates border-link against (see docs/lifecycle.md).
//
// Header-only so the version manager can evaluate policies without linking
// the lifecycle library (mirroring how locator uses provider/messages.h).
#ifndef BLOBSEER_LIFECYCLE_RETENTION_H_
#define BLOBSEER_LIFECYCLE_RETENTION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "common/types.h"

namespace blobseer::lifecycle {

struct RetentionPolicy {
  /// Keep the newest k published snapshots (0 = unlimited by count).
  uint32_t keep_last_k = 0;
  /// Keep every snapshot assigned less than this long ago (0 = no age rule).
  uint64_t keep_younger_than_us = 0;

  friend bool operator==(const RetentionPolicy&,
                         const RetentionPolicy&) = default;

  /// A disabled policy retains everything.
  bool enabled() const { return keep_last_k != 0 || keep_younger_than_us != 0; }

  void EncodeTo(BinaryWriter* w) const {
    w->PutU32(keep_last_k);
    w->PutU64(keep_younger_than_us);
  }
  Status DecodeFrom(BinaryReader* r) {
    BS_RETURN_NOT_OK(r->GetU32(&keep_last_k));
    return r->GetU64(&keep_younger_than_us);
  }
};

/// Everything the evaluator needs to know about one version. The version
/// manager's ListVersions reports exactly this shape (vmanager::VersionInfo
/// extends it with the snapshot size).
struct VersionFacts {
  Version version = kNoVersion;
  uint64_t assigned_at_us = 0;
  bool published = false;
  bool discarded = false;
  /// Latest published snapshot, a child blob's branch point, or the
  /// published frontier some in-flight update border-links against —
  /// never expirable regardless of policy.
  bool pinned = false;
};

/// Versions the policy says to discard, oldest first. Only published,
/// not-yet-discarded, unpinned versions are candidates; `keep_last_k`
/// ranks over all published non-discarded versions (pinned ones included,
/// so "keep the newest 4" means the 4 newest readable snapshots).
inline std::vector<Version> ExpiredVersions(const RetentionPolicy& policy,
                                            std::vector<VersionFacts> facts,
                                            uint64_t now_us) {
  std::vector<Version> expired;
  if (!policy.enabled()) return expired;
  std::sort(facts.begin(), facts.end(),
            [](const VersionFacts& a, const VersionFacts& b) {
              return a.version > b.version;  // newest first
            });
  uint32_t rank = 0;  // 1-based rank among published non-discarded versions
  for (const VersionFacts& f : facts) {
    if (!f.published || f.discarded) continue;
    rank++;
    if (f.pinned) continue;
    if (policy.keep_last_k != 0 && rank <= policy.keep_last_k) continue;
    if (policy.keep_younger_than_us != 0 &&
        now_us - f.assigned_at_us < policy.keep_younger_than_us) {
      continue;
    }
    expired.push_back(f.version);
  }
  std::reverse(expired.begin(), expired.end());  // oldest first
  return expired;
}

}  // namespace blobseer::lifecycle

#endif  // BLOBSEER_LIFECYCLE_RETENTION_H_
