#include "lifecycle/gc_sweeper.h"

#include <algorithm>
#include <utility>

#include "common/tree_layout.h"
#include "lifecycle/dedup.h"
#include "lifecycle/retention.h"
#include "provider/messages.h"
#include "rpc/call.h"

namespace blobseer::lifecycle {

namespace {

// Same reconnect-once-on-Unavailable idiom as the rebuilder: deletes are
// idempotent, and on binding transports a pooled channel can go stale when
// a provider restarts under the same address.
template <typename Req, typename Rsp>
Status CallProvider(rpc::ChannelPool* pool, const std::string& address,
                    rpc::Method method, const Req& req, Rsp* rsp) {
  auto ch = pool->Get(address);
  if (!ch.ok()) return ch.status();
  Status s = rpc::CallMethod(ch->get(), method, req, rsp);
  if (!s.IsUnavailable() || !pool->binding()) return s;
  pool->Invalidate(address);
  ch = pool->Get(address);
  if (!ch.ok()) return s;
  *rsp = Rsp{};
  return rpc::CallMethod(ch->get(), method, req, rsp);
}

// RAII over the pass-active flag so every RunOnePass exit path (including
// the strict-mark aborts) leaves Drained() true.
class PassGuard {
 public:
  explicit PassGuard(std::atomic<bool>* flag) : flag_(flag) {
    flag_->store(true, std::memory_order_release);
  }
  ~PassGuard() { flag_->store(false, std::memory_order_release); }

 private:
  std::atomic<bool>* flag_;
};

}  // namespace

struct GcSweeper::Loop {
  std::atomic<bool> stop{false};
  std::shared_ptr<WaitEvent> done;
};

GcSweeper::GcSweeper(locator::PageLocationTable* table, ProvidersFn providers,
                     rpc::Transport* transport, std::string vm_address,
                     std::vector<std::string> dht_nodes,
                     dht::DhtClientOptions dht_options, GcOptions options)
    : table_(table),
      providers_(std::move(providers)),
      options_(options),
      vm_(transport, std::move(vm_address), /*channels=*/1),
      dht_(transport, std::move(dht_nodes), dht_options),
      index_(&dht_, /*cache_capacity=*/0),
      meta_(&dht_, /*executor=*/nullptr,
            meta::MetaClientOptions{/*cache_enabled=*/false,
                                    /*cache_capacity=*/0, /*fanout=*/1}),
      providers_pool_(transport, /*channels_per_endpoint=*/1) {}

GcSweeper::~GcSweeper() { Stop(); }

Status GcSweeper::WalkVersion(const BranchAncestry& ancestry, Version version,
                              uint64_t size, uint64_t psize, bool tolerant,
                              std::set<std::string>* nodes,
                              std::unordered_set<PageId>* pids) {
  if (version == 0 || version == kNoVersion || size == 0) return Status::OK();
  struct Frame {
    Extent block;
    Version label;
  };
  std::vector<Frame> stack;
  stack.push_back({Extent{0, RootSizeBytes(size, psize)}, version});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.label == kNoVersion) continue;  // never-written hole
    meta::NodeKey key{ancestry.Resolve(f.label), f.label, f.block};
    // The accumulator set doubles as the visited set: a node already
    // recorded had its whole subtree (and leaf chain) recorded too.
    if (!nodes->insert(key.ToDhtKey()).second) continue;
    Result<meta::MetaNode> node = meta_.GetNode(key);
    if (!node.ok()) {
      if (tolerant && node.status().IsNotFound()) continue;
      return node.status();
    }
    if (node->is_leaf()) {
      for (const meta::PageFragment& frag : node->fragments) {
        if (frag.pid.valid()) pids->insert(frag.pid);
      }
      // Leaf chains reach older leaves that plain descent from this root
      // never labels — both candidate and mark walks must follow them all
      // the way down, or chained pages leak (candidates) or get collected
      // while reachable (mark).
      if (f.label != node->prev_version)
        stack.push_back({f.block, node->prev_version});
    } else if (!IsLeafBlock(f.block, psize)) {
      stack.push_back({LeftChildBlock(f.block), node->left_version});
      stack.push_back({RightChildBlock(f.block), node->right_version});
    }
  }
  return Status::OK();
}

Status GcSweeper::SweepPage(
    const PageId& pid,
    const std::unordered_map<ProviderId, locator::ProviderView>& views) {
  Result<locator::LocationEntry> entry = index_.Resolve(pid);
  if (!entry.ok()) return entry.status();  // NotFound = already swept
  locator::LocationEntry condemned = *entry;
  if (!condemned.condemned()) {
    // Condemn: full-entry CAS to refs = 0. A racing dedup adoption bumps
    // refs through its own CAS, so exactly one side wins; Aborted here
    // means the page just became live again — leave it to the next pass,
    // whose mark walk will see the adopter's version.
    condemned.refs = 0;
    Result<locator::LocationEntry> cas =
        index_.CompareAndSwapEntry(pid, *entry, condemned);
    if (!cas.ok()) return cas.status();
    condemned = *cas;
  }
  // Physical deletes, best effort on reachable providers: a provider that
  // is down keeps its (condemned, unreadable) copy until its pagelog is
  // compacted away or it re-registers and the entry re-resolves NotFound.
  for (ProviderId m : condemned.providers) {
    auto it = views.find(m);
    if (it == views.end() || !it->second.up) continue;
    provider::DeleteRequest del{pid};
    provider::DeleteResponse drsp;
    (void)CallProvider(&providers_pool_, it->second.address,
                       rpc::Method::kProviderDelete, del, &drsp);
  }
  // Drop the 'H' mapping if it still points at this page (a losing
  // adopter may already have repaired it to a fresh PageId — leave that).
  if (condemned.hash_hi != 0 || condemned.hash_lo != 0) {
    std::string hkey = HashKey(condemned.hash_hi, condemned.hash_lo);
    std::string cur;
    if (dht_.Get(Slice(hkey), &cur).ok()) {
      Result<PageId> target = DecodeHashTarget(cur);
      if (target.ok() && *target == pid) {
        if (dht_.Delete(Slice(hkey)).ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          stats_.hash_links_removed++;
        }
      }
    }
  }
  // The entry goes last: a crash before this point leaves a condemned
  // entry the next pass finds and finishes (every step above is
  // idempotent).
  (void)index_.DeleteEntry(pid);
  table_->Forget(pid);
  return Status::OK();
}

Status GcSweeper::RunOnePass(uint64_t now_us) {
  PassGuard active(&pass_active_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.passes++;
  }

  Result<std::vector<BlobId>> blob_ids = vm_.ListBlobs();
  if (!blob_ids.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.errors++;
    return blob_ids.status();
  }

  // Phase 1: retention. Expired versions are discarded through the same
  // vmanager call manual deletion uses; losing a race with a concurrent
  // pin (FailedPrecondition) just means the version survives this pass.
  struct BlobScan {
    BlobDescriptor desc;
    std::vector<vmanager::VersionInfo> versions;
  };
  std::vector<BlobScan> scans;
  bool have_candidates = false;
  for (BlobId id : *blob_ids) {
    Result<BlobDescriptor> desc = vm_.OpenBlob(id, nullptr, nullptr);
    if (!desc.ok()) {
      if (desc.status().IsNotFound()) continue;
      std::lock_guard<std::mutex> lock(mu_);
      stats_.errors++;
      return desc.status();
    }
    Result<std::vector<vmanager::VersionInfo>> versions = vm_.ListVersions(id);
    if (!versions.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.errors++;
      return versions.status();
    }
    if (options_.apply_retention) {
      Result<RetentionPolicy> policy = vm_.GetRetention(id);
      if (policy.ok() && policy->enabled()) {
        std::vector<VersionFacts> facts;
        facts.reserve(versions->size());
        for (const vmanager::VersionInfo& vi : *versions) {
          facts.push_back({vi.version, vi.assigned_at_us, vi.published,
                           vi.discarded, vi.pinned});
        }
        for (Version v : ExpiredVersions(*policy, facts, now_us)) {
          Status s = vm_.DiscardVersion(id, v);
          if (s.ok()) {
            for (vmanager::VersionInfo& vi : *versions) {
              if (vi.version == v) vi.discarded = true;
            }
            std::lock_guard<std::mutex> lock(mu_);
            stats_.versions_discarded++;
          }
          // FailedPrecondition (pinned since we listed) or NotFound: skip.
        }
      }
    }
    BlobScan scan{std::move(desc).ValueUnsafe(),
                  std::move(versions).ValueUnsafe()};
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const vmanager::VersionInfo& vi : scan.versions) {
        if (vi.discarded && !retired_.count({scan.desc.id, vi.version}))
          have_candidates = true;
      }
    }
    scans.push_back(std::move(scan));
  }
  if (!have_candidates) return Status::OK();

  // Phase 2: candidate walks over discarded, not-yet-retired versions.
  // Tolerant: earlier (possibly truncated) passes already deleted some of
  // this metadata. Non-NotFound failures abort — an unreachable DHT node
  // would silently shrink the candidate set and strand its pages forever.
  std::set<std::string> candidate_nodes;
  std::unordered_set<PageId> candidate_pids;
  std::vector<std::pair<BlobId, Version>> sweeping;
  for (const BlobScan& scan : scans) {
    BranchAncestry ancestry = scan.desc.Ancestry();
    for (const vmanager::VersionInfo& vi : scan.versions) {
      if (!vi.discarded) continue;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (retired_.count({scan.desc.id, vi.version})) continue;
      }
      Status s = WalkVersion(ancestry, vi.version, vi.size, scan.desc.psize,
                             /*tolerant=*/true, &candidate_nodes,
                             &candidate_pids);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.errors++;
        return s;
      }
      sweeping.push_back({scan.desc.id, vi.version});
    }
  }
  if (sweeping.empty()) return Status::OK();

  // Phase 3: mark. Every published, non-discarded version of every blob is
  // live — global, because dedup shares pages across blobs. Strict: a pass
  // must never sweep against a partial live set.
  std::set<std::string> live_nodes;
  std::unordered_set<PageId> live_pids;
  for (const BlobScan& scan : scans) {
    BranchAncestry ancestry = scan.desc.Ancestry();
    for (const vmanager::VersionInfo& vi : scan.versions) {
      if (!vi.published || vi.discarded) continue;
      Status s = WalkVersion(ancestry, vi.version, vi.size, scan.desc.psize,
                             /*tolerant=*/false, &live_nodes, &live_pids);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.errors++;
        return s;
      }
    }
  }

  for (const PageId& pid : live_pids) candidate_pids.erase(pid);
  for (const std::string& key : live_nodes) candidate_nodes.erase(key);

  // Phase 4: sweep pages, budgeted.
  std::unordered_map<ProviderId, locator::ProviderView> views;
  for (locator::ProviderView& v : providers_()) views.emplace(v.id, std::move(v));
  size_t budget = options_.max_sweep_per_pass;
  bool truncated = false;
  for (const PageId& pid : candidate_pids) {
    if (budget == 0) {
      truncated = true;
      break;
    }
    Status s = SweepPage(pid, views);
    std::lock_guard<std::mutex> lock(mu_);
    if (s.ok()) {
      stats_.pages_swept++;
      budget--;
    } else if (s.IsAborted()) {
      stats_.pages_deferred++;
    } else if (!s.IsNotFound()) {
      stats_.errors++;
    }
  }

  // Phase 5: retire tree nodes — only when the page sweep completed, since
  // deleting a version's root strands whatever pages were left unswept.
  if (truncated) return Status::OK();
  for (const std::string& key : candidate_nodes) {
    Status s = dht_.Delete(Slice(key));
    std::lock_guard<std::mutex> lock(mu_);
    if (s.ok() || s.IsNotFound()) {
      stats_.nodes_retired++;
    } else {
      stats_.errors++;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::pair<BlobId, Version>& bv : sweeping) {
      retired_.insert(bv);
      stats_.versions_retired++;
    }
  }
  return Status::OK();
}

void GcSweeper::Start(Executor* executor, Clock* clock) {
  if (options_.interval_us == 0 || loop_) return;
  auto loop = std::make_shared<Loop>();
  loop->done = executor->MakeWaitEvent();
  loop_ = loop;
  executor->Schedule([this, loop, clock] {
    while (!loop->stop.load(std::memory_order_acquire)) {
      clock->SleepForMicros(options_.interval_us);
      if (loop->stop.load(std::memory_order_acquire)) break;
      // Pass errors are counted in stats; the loop itself never aborts.
      (void)RunOnePass(clock->NowMicros());
    }
    loop->done->Signal();
  });
}

void GcSweeper::Stop() {
  if (!loop_) return;
  loop_->stop.store(true, std::memory_order_release);
  loop_->done->Await();
  loop_.reset();
}

GcStats GcSweeper::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace blobseer::lifecycle
