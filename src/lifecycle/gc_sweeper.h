// Version lifecycle: retention-driven garbage collection (docs/lifecycle.md).
//
// The sweeper is hosted by the provider manager next to the rebuilder and
// runs mark-and-sweep passes over the whole store:
//
//   1. retention  — evaluate each blob's RetentionPolicy against its version
//                   history and DiscardVersion() the expired ones (the same
//                   vmanager path manual deletion uses);
//   2. candidates — walk the segment-tree roots of discarded versions
//                   (NotFound-tolerant: earlier passes already deleted some
//                   of this metadata) collecting node keys and PageIds;
//   3. mark       — walk every published, non-discarded version of every
//                   blob, strictly (any failure aborts the pass: sweeping
//                   with an incomplete live set would delete live data);
//   4. sweep      — for each candidate page not in the live set, condemn its
//                   location entry (full-entry CAS to refs = 0, so a racing
//                   dedup adoption — which must CAS a refs bump — loses on
//                   exactly one side), physically delete the replicas
//                   (pagelog tombstones that feed compaction), drop the 'H'
//                   hash mapping if it still points at the page, and delete
//                   the entry; then retire the candidate tree nodes.
//
// Nodes are swept only when the page sweep completed within budget:
// deleting a version's root first would orphan pages the next pass could no
// longer enumerate. A crash between the two phases leaks only bounded
// metadata (re-walked and retired by the next pass).
#ifndef BLOBSEER_LIFECYCLE_GC_SWEEPER_H_
#define BLOBSEER_LIFECYCLE_GC_SWEEPER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/blob_descriptor.h"
#include "common/clock.h"
#include "common/executor.h"
#include "common/result.h"
#include "common/types.h"
#include "dht/client.h"
#include "locator/location.h"
#include "locator/rebuilder.h"
#include "locator/table.h"
#include "meta/meta_client.h"
#include "rpc/channel_pool.h"
#include "vmanager/client.h"

namespace blobseer::lifecycle {

struct GcOptions {
  /// Loop pacing; 0 disables the background loop (RunOnePass still works).
  uint64_t interval_us = 0;
  /// Per-pass page budget: bounds the burst of delete traffic one pass may
  /// create. A truncated pass keeps the version roots so the remainder is
  /// re-enumerated next pass.
  size_t max_sweep_per_pass = 256;
  /// Evaluate retention policies into DiscardVersion calls. Off, the
  /// sweeper only collects versions discarded explicitly.
  bool apply_retention = true;
};

struct GcStats {
  uint64_t passes = 0;
  uint64_t versions_discarded = 0;  // expired by policy, this sweeper
  uint64_t versions_retired = 0;    // metadata fully swept
  uint64_t pages_swept = 0;         // condemned + physically deleted
  uint64_t pages_deferred = 0;      // condemn CAS lost (adoption raced)
  uint64_t nodes_retired = 0;       // tree nodes deleted from the DHT
  uint64_t hash_links_removed = 0;  // 'H' mappings cleaned
  uint64_t errors = 0;
};

class GcSweeper {
 public:
  using ProvidersFn = locator::Rebuilder::ProvidersFn;

  /// `table` must outlive the sweeper; `providers` is polled per pass. The
  /// sweeper runs its own DHT client — `dht_options` must match what
  /// clients use, for identical key placement.
  GcSweeper(locator::PageLocationTable* table, ProvidersFn providers,
            rpc::Transport* transport, std::string vm_address,
            std::vector<std::string> dht_nodes,
            dht::DhtClientOptions dht_options, GcOptions options);
  ~GcSweeper();

  /// One mark-and-sweep pass at time `now_us` (retention ages are measured
  /// against it). Safe to call directly from tests and benches (no loop
  /// required). Returns the first hard error, or OK — per-page failures are
  /// counted in stats and retried next pass, they do not fail the pass.
  Status RunOnePass(uint64_t now_us);

  /// Starts / stops the periodic pass loop on `executor`, paced by `clock`
  /// (real or simulated). No-op when options.interval_us is 0. Stop joins
  /// the loop, so after it returns no pass (and none of its delete RPCs)
  /// is still in flight — harness teardown asserts Drained().
  void Start(Executor* executor, Clock* clock);
  void Stop();

  /// True when no pass is executing. Guaranteed after Stop(); harnesses
  /// check it before tearing down the transport under the sweeper.
  bool Drained() const { return !pass_active_.load(std::memory_order_acquire); }

  GcStats GetStats() const;

 private:
  struct Loop;

  /// Collects the node keys and page ids reachable from (blob, version).
  /// Tolerant walks skip NotFound nodes (already-swept metadata); strict
  /// walks fail on any error. Nodes already in `nodes` are not re-walked.
  Status WalkVersion(const BranchAncestry& ancestry, Version version,
                     uint64_t size, uint64_t psize, bool tolerant,
                     std::set<std::string>* nodes,
                     std::unordered_set<PageId>* pids);

  /// Condemns and physically deletes one page. OK = swept; Aborted = a
  /// concurrent refs CAS won (deferred to next pass); NotFound = already
  /// gone.
  Status SweepPage(
      const PageId& pid,
      const std::unordered_map<ProviderId, locator::ProviderView>& views);

  locator::PageLocationTable* table_;
  ProvidersFn providers_;
  GcOptions options_;
  vmanager::VersionManagerClient vm_;
  dht::DhtClient dht_;
  // No location cache: condemn CAS must start from the authoritative entry.
  locator::LocationIndex index_;
  // Cache off and no executor: the sweeper only uses the synchronous
  // GetNode path, and cached nodes of retired versions would be garbage.
  meta::MetaClient meta_;
  rpc::ChannelPool providers_pool_;

  std::atomic<bool> pass_active_{false};

  mutable std::mutex mu_;
  GcStats stats_;
  // Versions whose metadata this sweeper already retired — skipped when
  // re-listed (the vmanager keeps discarded records forever for ancestry
  // math). Purely an optimization: re-walking them is harmless.
  std::set<std::pair<BlobId, Version>> retired_;

  std::shared_ptr<Loop> loop_;
};

}  // namespace blobseer::lifecycle

#endif  // BLOBSEER_LIFECYCLE_GC_SWEEPER_H_
