// Fixed-footprint latency histogram (HDR-style log buckets, ~6% relative
// error) and a bucketed throughput timeline. Both merge across workers so a
// campaign's per-runner measurements aggregate into one report; both work
// identically under real and virtual clocks since they only consume
// microsecond timestamps.
#ifndef BLOBSEER_WORKLOAD_HISTOGRAM_H_
#define BLOBSEER_WORKLOAD_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace blobseer::workload {

/// Latency histogram over microsecond values. Values < 16 land in exact
/// buckets; above that, each power-of-two octave splits into 16 linear
/// sub-buckets, bounding relative error to 1/16.
class LatencyHistogram {
 public:
  static constexpr size_t kSub = 16;       // sub-buckets per octave
  static constexpr size_t kGroups = 61;    // linear range + octaves 4..63
  static constexpr size_t kBuckets = kGroups * kSub;

  void Record(uint64_t us) {
    buckets_[BucketFor(us)]++;
    count_++;
    sum_ += double(us);
    max_ = std::max(max_, us);
    min_ = std::min(min_, us);
  }

  void Merge(const LatencyHistogram& o) {
    for (size_t i = 0; i < kBuckets; i++) buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    max_ = std::max(max_, o.max_);
    min_ = std::min(min_, o.min_);
  }

  uint64_t count() const { return count_; }
  uint64_t max_us() const { return count_ ? max_ : 0; }
  uint64_t min_us() const { return count_ ? min_ : 0; }
  double mean_us() const { return count_ ? sum_ / double(count_) : 0.0; }

  /// Value at quantile p in [0, 1] (upper bound of the containing bucket,
  /// clamped to the observed max). 0 when empty.
  uint64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    uint64_t target = uint64_t(p * double(count_));
    if (target < 1) target = 1;
    if (target > count_) target = count_;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; i++) {
      seen += buckets_[i];
      if (seen >= target) return std::min(BucketUpper(i), max_);
    }
    return max_;
  }

 private:
  static size_t BucketFor(uint64_t us) {
    if (us < kSub) return size_t(us);
    int msb = 63 - __builtin_clzll(us);  // >= 4 here
    size_t group = size_t(msb) - 3;      // [16,32) => 1, [32,64) => 2, ...
    size_t sub = size_t(us >> (msb - 4)) & (kSub - 1);
    return group * kSub + sub;
  }

  static uint64_t BucketUpper(size_t bucket) {
    size_t group = bucket / kSub;
    size_t sub = bucket % kSub;
    if (group == 0) return sub;
    int msb = int(group) + 3;
    uint64_t base = (uint64_t(kSub) + sub) << (msb - 4);
    return base + ((uint64_t(1) << (msb - 4)) - 1);
  }

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = UINT64_MAX;
  double sum_ = 0.0;
};

/// Ops + bytes completed per fixed time bucket, measured from a shared
/// epoch so per-worker timelines align when merged. Capped at kMaxBuckets;
/// later completions fold into the final bucket rather than growing
/// without bound.
class Timeline {
 public:
  static constexpr size_t kMaxBuckets = 4096;

  void Init(uint64_t epoch_us, uint64_t bucket_us) {
    epoch_us_ = epoch_us;
    bucket_us_ = bucket_us ? bucket_us : 1;
  }

  void Record(uint64_t now_us, uint64_t bytes) {
    uint64_t rel = now_us > epoch_us_ ? now_us - epoch_us_ : 0;
    size_t idx = std::min(size_t(rel / bucket_us_), kMaxBuckets - 1);
    if (idx >= ops_.size()) {
      ops_.resize(idx + 1, 0);
      bytes_.resize(idx + 1, 0);
    }
    ops_[idx]++;
    bytes_[idx] += bytes;
  }

  /// Merging requires matching epoch/bucket (the driver hands every worker
  /// the same ones); mismatched timelines are folded bucket-by-bucket
  /// anyway, which is the best available alignment.
  void Merge(const Timeline& o) {
    if (o.ops_.size() > ops_.size()) {
      ops_.resize(o.ops_.size(), 0);
      bytes_.resize(o.bytes_.size(), 0);
    }
    for (size_t i = 0; i < o.ops_.size(); i++) {
      ops_[i] += o.ops_[i];
      bytes_[i] += o.bytes_[i];
    }
  }

  uint64_t epoch_us() const { return epoch_us_; }
  uint64_t bucket_us() const { return bucket_us_; }
  const std::vector<uint64_t>& ops() const { return ops_; }
  const std::vector<uint64_t>& bytes() const { return bytes_; }

 private:
  uint64_t epoch_us_ = 0;
  uint64_t bucket_us_ = 1000000;
  std::vector<uint64_t> ops_;
  std::vector<uint64_t> bytes_;
};

}  // namespace blobseer::workload

#endif  // BLOBSEER_WORKLOAD_HISTOGRAM_H_
