#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/string_util.h"

namespace blobseer::workload {
namespace {

/// Zipfian rank sampler over n items: P(rank) proportional to
/// 1/(rank+1)^theta, sampled by binary search over the precomputed CDF.
/// Rebuilt when the active-tenant set changes (churn is rare, n is small).
class ZipfPicker {
 public:
  void Reset(size_t n, double theta) {
    cdf_.resize(n);
    double acc = 0.0;
    for (size_t i = 0; i < n; i++) {
      acc += 1.0 / std::pow(double(i + 1), theta);
      cdf_[i] = acc;
    }
  }

  size_t Pick(Rng& rng) const {
    double u = rng.NextDouble() * cdf_.back();
    size_t i = std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin();
    return std::min(i, cdf_.size() - 1);
  }

 private:
  std::vector<double> cdf_;
};

/// Evenly spreads `count` event indices across [begin, end).
std::vector<uint64_t> SpreadPoints(uint64_t count, uint64_t begin,
                                   uint64_t end) {
  std::vector<uint64_t> points;
  if (count == 0 || end <= begin) return points;
  uint64_t span = end - begin;
  for (uint64_t i = 0; i < count; i++) {
    points.push_back(begin + (i + 1) * span / (count + 1));
  }
  return points;
}

uint64_t RangeInclusive(Rng& rng, uint64_t lo, uint64_t hi) {
  return lo + rng.Uniform(hi - lo + 1);
}

}  // namespace

std::string Op::DebugString() const {
  switch (kind) {
    case OpKind::kCreate:
      return StrFormat("create t%u pages=%llu salt=%016llx", tenant,
                       (unsigned long long)pages, (unsigned long long)salt);
    case OpKind::kAppend:
      return StrFormat("append t%u pages=%llu salt=%016llx", tenant,
                       (unsigned long long)pages, (unsigned long long)salt);
    case OpKind::kWrite:
      return StrFormat("write t%u pages=%llu off=%uppm salt=%016llx", tenant,
                       (unsigned long long)pages, offset_ppm,
                       (unsigned long long)salt);
    case OpKind::kRead:
      return StrFormat("read%s t%u pages=%llu off=%uppm lag=%u",
                       flash ? "*" : "", tenant, (unsigned long long)pages,
                       offset_ppm, version_lag);
    case OpKind::kDepart:
      return StrFormat("depart t%u", tenant);
  }
  return "?";
}

std::string Schedule::Canonical() const {
  std::string out;
  for (const Op& op : ops) {
    out += op.DebugString();
    out += "\n";
  }
  return out;
}

uint64_t Schedule::Fingerprint() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : Canonical()) {
    h ^= uint8_t(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Schedule GenerateSchedule(const WorkloadSpec& spec) {
  Schedule sched;
  Rng rng(spec.seed);
  ZipfPicker zipf;

  // Active tenants ordered by popularity: creation order, hottest first.
  std::vector<uint32_t> active;
  uint32_t next_tenant = 0;
  auto create = [&](uint32_t t) {
    Op op;
    op.kind = OpKind::kCreate;
    op.tenant = t;
    op.pages = spec.initial_pages;
    op.salt = rng.Next();
    sched.ops.push_back(op);
    active.push_back(t);
  };
  for (uint64_t i = 0; i < spec.tenants; i++) create(next_tenant++);
  zipf.Reset(active.size(), spec.zipf_theta);

  std::vector<uint64_t> arrivals = SpreadPoints(spec.arrivals, 0, spec.ops);
  // Departures run in the second half so arriving tenants can cover them.
  std::vector<uint64_t> departures =
      SpreadPoints(spec.departures, spec.ops / 2, spec.ops);
  size_t next_arrival = 0;
  size_t next_departure = 0;
  uint64_t flash_at = spec.ops + 1;
  if (spec.flash_crowd_at >= 0.0 && spec.flash_crowd_ops > 0) {
    flash_at = uint64_t(spec.flash_crowd_at * double(spec.ops));
  }

  auto read_op = [&](uint32_t t, bool flash) {
    Op op;
    op.kind = OpKind::kRead;
    op.tenant = t;
    op.pages = RangeInclusive(rng, spec.read_pages_min, spec.read_pages_max);
    op.offset_ppm = uint32_t(rng.Uniform(1000000));
    op.version_lag =
        flash ? 0 : uint32_t(rng.Uniform(spec.version_lag_max + 1));
    op.flash = flash;
    sched.ops.push_back(op);
  };

  for (uint64_t k = 0; k < spec.ops; k++) {
    while (next_arrival < arrivals.size() && arrivals[next_arrival] == k) {
      next_arrival++;
      create(next_tenant++);
      zipf.Reset(active.size(), spec.zipf_theta);
    }
    while (next_departure < departures.size() &&
           departures[next_departure] == k) {
      next_departure++;
      if (active.size() <= 1) continue;
      // Retire a non-hottest tenant so the flash-crowd target survives.
      size_t idx = 1 + rng.Uniform(active.size() - 1);
      Op op;
      op.kind = OpKind::kDepart;
      op.tenant = active[idx];
      sched.ops.push_back(op);
      active.erase(active.begin() + idx);
      zipf.Reset(active.size(), spec.zipf_theta);
    }
    if (k == flash_at) {
      for (uint64_t j = 0; j < spec.flash_crowd_ops; j++) {
        read_op(active.front(), /*flash=*/true);
      }
    }

    uint32_t tenant = active[zipf.Pick(rng)];
    if (rng.NextDouble() < spec.read_fraction) {
      read_op(tenant, /*flash=*/false);
    } else {
      Op op;
      op.tenant = tenant;
      op.pages =
          RangeInclusive(rng, spec.write_pages_min, spec.write_pages_max);
      op.salt = rng.Next();
      if (rng.NextDouble() < spec.append_fraction) {
        op.kind = OpKind::kAppend;
      } else {
        op.kind = OpKind::kWrite;
        op.offset_ppm = uint32_t(rng.Uniform(1000000));
      }
      sched.ops.push_back(op);
    }
  }
  return sched;
}

std::string MakePayload(uint64_t salt, size_t len) {
  std::string out;
  out.resize(len);
  uint64_t x = salt ? salt : 0x9e3779b97f4a7c15ULL;
  size_t i = 0;
  while (i < len) {
    x = Mix64(x);
    for (int b = 0; b < 8 && i < len; b++, i++) {
      out[i] = char('a' + ((x >> (b * 8)) % 26));
    }
  }
  return out;
}

}  // namespace blobseer::workload
