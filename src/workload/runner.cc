#include "workload/runner.h"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "common/string_util.h"

namespace blobseer::workload {

void WorkloadReport::Merge(const WorkloadReport& o) {
  ops_issued += o.ops_issued;
  creates += o.creates;
  reads += o.reads;
  appends += o.appends;
  writes += o.writes;
  departures += o.departures;
  read_bytes += o.read_bytes;
  written_bytes += o.written_bytes;
  verify_failures += o.verify_failures;
  verified_reads += o.verified_reads;
  not_found_reads += o.not_found_reads;
  read_errors += o.read_errors;
  write_errors += o.write_errors;
  read_latency.Merge(o.read_latency);
  write_latency.Merge(o.write_latency);
  timeline.Merge(o.timeline);
  if (o.start_us && (start_us == 0 || o.start_us < start_us)) {
    start_us = o.start_us;
  }
  end_us = std::max(end_us, o.end_us);
}

WorkloadRunner::WorkloadRunner(client::BlobClient* client, Clock* clock,
                               RunnerOptions options)
    : client_(client), clock_(clock), opts_(options) {
  if (opts_.window == 0) opts_.window = 1;
  if (opts_.keep_versions == 0) opts_.keep_versions = 1;
}

Status WorkloadRunner::Run(const WorkloadSpec& spec,
                           const Schedule& schedule) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    report_.start_us = clock_->NowMicros();
    report_.timeline.Init(opts_.epoch_us ? opts_.epoch_us : report_.start_us,
                          opts_.timeline_bucket_us);
  }
  Status result = Status::OK();
  for (const Op& op : schedule.ops) {
    if (op.kind == OpKind::kCreate) {
      Status s = HandleCreate(spec, op);
      if (!s.ok()) {
        result = s;
        break;
      }
      continue;
    }
    if (op.kind == OpKind::kDepart) {
      std::lock_guard<std::mutex> lock(mu_);
      if (op.tenant < tenants_.size() && tenants_[op.tenant]) {
        tenants_[op.tenant]->departed = true;
        report_.departures++;
      }
      continue;
    }
    const bool mutating = op.kind != OpKind::kRead;
    if (opts_.think_time_us > 0) clock_->SleepForMicros(opts_.think_time_us);
    for (;;) {
      Tenant* t = nullptr;
      Future<Unit> tick;
      bool issue = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        t = op.tenant < tenants_.size() ? tenants_[op.tenant].get() : nullptr;
        if (t == nullptr) break;  // schedule invariant: created before use
        if (inflight_ < opts_.window && (!mutating || !t->write_busy)) {
          inflight_++;
          report_.ops_issued++;
          if (mutating) t->write_busy = true;
          issue = true;
        } else {
          tick = ArmTickLocked();
        }
      }
      if (issue) {
        if (mutating) {
          IssueMutation(t, op, spec.psize);
        } else {
          IssueRead(t, op, spec.psize);
        }
        break;
      }
      tick.Wait(client_->executor());
    }
  }
  // Drain every in-flight op before returning — completion callbacks
  // capture `this` and tenant pointers.
  for (;;) {
    Future<Unit> tick;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (inflight_ == 0) break;
      tick = ArmTickLocked();
    }
    tick.Wait(client_->executor());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    report_.end_us = clock_->NowMicros();
  }
  return result;
}

Status WorkloadRunner::HandleCreate(const WorkloadSpec& spec, const Op& op) {
  auto id = client_->Create(spec.psize);
  if (!id.ok()) return id.status();
  std::string init = MakePayload(op.salt, op.pages * spec.psize);
  auto v = client_->Append(*id, Slice(init));
  if (!v.ok()) return v.status();
  Status s = client_->Sync(*id, *v, opts_.sync_timeout_us);
  if (!s.ok()) return s;

  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.size() <= op.tenant) tenants_.resize(op.tenant + 1);
  auto t = std::make_unique<Tenant>();
  t->id = *id;
  t->latest = *v;
  t->latest_content = std::move(init);
  t->published.emplace(*v,
                       std::make_shared<const std::string>(t->latest_content));
  tenants_[op.tenant] = std::move(t);
  report_.creates++;
  return Status::OK();
}

void WorkloadRunner::IssueRead(Tenant* t, const Op& op, uint64_t psize) {
  Version version = 0;
  std::shared_ptr<const std::string> expect;
  uint64_t off = 0;
  uint64_t len = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!t->published.empty()) {
      auto it = t->published.rbegin();
      for (uint32_t lag = op.version_lag;
           lag > 0 && std::next(it) != t->published.rend(); lag--) {
        ++it;
      }
      version = it->first;
      expect = it->second;
      uint64_t vsize = expect->size();
      uint64_t size_pages = (vsize + psize - 1) / psize;
      uint64_t off_page = uint64_t(op.offset_ppm) * size_pages / 1000000;
      if (off_page >= size_pages) off_page = size_pages - 1;
      off = off_page * psize;
      len = std::min(op.pages * psize, vsize - off);
    }
  }
  if (!expect || len == 0) {  // unreachable: creates publish >= 1 page
    FinishOne();
    return;
  }
  const uint64_t issued = clock_->NowMicros();
  client_->ReadAsync(t->id, version, off, len)
      .Then([this, expect, off, len, issued](Result<std::string> r)
                -> Result<Unit> {
        {
          std::lock_guard<std::mutex> lock(mu_);
          const uint64_t now = clock_->NowMicros();
          if (r.ok()) {
            report_.reads++;
            report_.read_bytes += r->size();
            if (opts_.verify_reads) {
              bool match =
                  r->size() == len &&
                  std::memcmp(r->data(), expect->data() + off, len) == 0;
              if (match) {
                report_.verified_reads++;
              } else {
                report_.verify_failures++;
              }
            }
            report_.read_latency.Record(now - issued);
            report_.timeline.Record(now, len);
          } else if (r.status().IsNotFound()) {
            report_.not_found_reads++;
          } else {
            report_.read_errors++;
          }
        }
        FinishOne();
        return Result<Unit>(Unit{});
      });
}

void WorkloadRunner::IssueMutation(Tenant* t, const Op& op, uint64_t psize) {
  const bool append = op.kind == OpKind::kAppend;
  uint64_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!append) {
      // write_busy serializes mutations per tenant, so latest_content is
      // exactly the preceding snapshot this write lands on.
      uint64_t size_pages = (t->latest_content.size() + psize - 1) / psize;
      uint64_t off_page =
          size_pages ? uint64_t(op.offset_ppm) * size_pages / 1000000 : 0;
      if (size_pages && off_page >= size_pages) off_page = size_pages - 1;
      offset = off_page * psize;
    }
  }
  auto payload = std::make_shared<const std::string>(
      MakePayload(op.salt, op.pages * psize));
  const uint64_t issued = clock_->NowMicros();
  const BlobId id = t->id;
  Future<Version> f = append ? client_->AppendAsync(id, Slice(*payload))
                             : client_->WriteAsync(id, Slice(*payload), offset);
  f.Then([this, t, payload, offset, append, issued,
          id](Result<Version> r) -> Future<Unit> {
    if (!r.ok()) {
      OnMutationSettled(t, payload, offset, append, issued, 0, r.status());
      return MakeReadyFuture(Status::OK());
    }
    const Version v = *r;
    // The reference model only exposes published versions to reads, so
    // chain the publication wait into the op before settling it.
    return client_->SyncAsync(id, v, opts_.sync_timeout_us)
        .Then([this, t, payload, offset, append, issued,
               v](Result<Unit> s) -> Result<Unit> {
          OnMutationSettled(t, payload, offset, append, issued, v,
                            s.ok() ? Status::OK() : s.status());
          return Result<Unit>(Unit{});
        });
  });
}

void WorkloadRunner::OnMutationSettled(
    Tenant* t, std::shared_ptr<const std::string> payload, uint64_t offset,
    bool append, uint64_t issued_us, Version version, const Status& status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t now = clock_->NowMicros();
    t->write_busy = false;
    if (status.ok()) {
      std::string next = t->latest_content;
      uint64_t off = append ? next.size() : offset;
      if (off + payload->size() > next.size()) {
        next.resize(off + payload->size(), '\0');
      }
      next.replace(off, payload->size(), *payload);
      t->latest = version;
      t->latest_content = std::move(next);
      t->published.emplace(
          version, std::make_shared<const std::string>(t->latest_content));
      while (t->published.size() > opts_.keep_versions) {
        t->published.erase(t->published.begin());
      }
      (append ? report_.appends : report_.writes)++;
      report_.written_bytes += payload->size();
      report_.write_latency.Record(now - issued_us);
      report_.timeline.Record(now, payload->size());
    } else {
      // Failed mutations are retracted client-side (no size change, the
      // version number is consumed but never published) — the reference
      // model tracks successes only.
      report_.write_errors++;
    }
  }
  FinishOne();
}

void WorkloadRunner::FinishOne() {
  std::optional<Promise<Unit>> wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_--;
    if (tick_) {
      wake = std::move(*tick_);
      tick_.reset();
    }
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (wake) wake->Set(Unit{});
}

Future<Unit> WorkloadRunner::ArmTickLocked() {
  tick_.emplace();
  return tick_->GetFuture();
}

Status WorkloadRunner::VerifyRetained(bool allow_not_found,
                                      uint64_t* versions_checked) {
  std::vector<std::tuple<BlobId, Version, std::shared_ptr<const std::string>>>
      targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& t : tenants_) {
      if (!t) continue;
      for (const auto& [v, content] : t->published) {
        targets.emplace_back(t->id, v, content);
      }
    }
  }
  uint64_t checked = 0;
  for (const auto& [id, version, content] : targets) {
    std::string out;
    Status s = client_->Read(id, version, 0, content->size(), &out);
    if (!s.ok()) {
      if (allow_not_found && s.IsNotFound()) continue;
      return s.WithContext(StrFormat("verify blob %llu v%llu",
                                     (unsigned long long)id,
                                     (unsigned long long)version));
    }
    if (out != *content) {
      std::lock_guard<std::mutex> lock(mu_);
      report_.verify_failures++;
      return Status::Corruption(StrFormat(
          "verify blob %llu v%llu: %zu bytes read, content mismatch",
          (unsigned long long)id, (unsigned long long)version, out.size()));
    }
    checked++;
  }
  if (versions_checked) *versions_checked = checked;
  return Status::OK();
}

}  // namespace blobseer::workload
