// Executes a generated schedule through the async BlobClient API: a closed
// loop with a bounded in-flight window, per-tenant write serialization, and
// a pruned reference model (last-K published versions per tenant, full
// contents) that every read is byte-verified against. Works unchanged on
// real threads (embedded/TCP harnesses) and on simnet tasks under virtual
// time — the only clock it consults is the injected one.
#ifndef BLOBSEER_WORKLOAD_RUNNER_H_
#define BLOBSEER_WORKLOAD_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "client/blob_client.h"
#include "common/clock.h"
#include "common/future.h"
#include "workload/generator.h"
#include "workload/histogram.h"
#include "workload/spec.h"

namespace blobseer::workload {

struct RunnerOptions {
  /// Max ops in flight from this runner (the closed-loop window).
  size_t window = 32;
  /// Byte-verify every read against the reference model.
  bool verify_reads = true;
  /// Published versions retained per tenant for lagged reads + final
  /// verification (bounds reference-model memory).
  size_t keep_versions = 8;
  /// Throughput timeline resolution.
  uint64_t timeline_bucket_us = 1000000;
  /// Shared timeline origin across workers (0 = this runner's start time).
  uint64_t epoch_us = 0;
  /// Publication-wait timeout chained after each mutation; keeps a stuck
  /// publish from wedging the loop (it becomes a counted write error).
  uint64_t sync_timeout_us = 120 * 1000 * 1000;
  /// Pacing: sleep this long before issuing each scheduled op (0 = issue
  /// as fast as the window allows). Chaos campaigns use this to stretch
  /// traffic across failure-detection and rebuild windows in virtual time.
  uint64_t think_time_us = 0;
};

/// Aggregated outcome of one runner (mergeable across workers).
struct WorkloadReport {
  uint64_t ops_issued = 0;
  uint64_t creates = 0;
  uint64_t reads = 0;
  uint64_t appends = 0;
  uint64_t writes = 0;
  uint64_t departures = 0;
  uint64_t read_bytes = 0;
  uint64_t written_bytes = 0;

  /// Reads that returned success but the wrong bytes — the campaign-level
  /// correctness gate. Must be zero.
  uint64_t verify_failures = 0;
  uint64_t verified_reads = 0;
  /// Clean NotFound on a read (acceptable under chaos).
  uint64_t not_found_reads = 0;
  /// Reads failing with anything other than NotFound.
  uint64_t read_errors = 0;
  /// Mutations that failed (client retracts them; the reference model only
  /// tracks successes, matching the repo's failed-write semantics).
  uint64_t write_errors = 0;

  LatencyHistogram read_latency;
  LatencyHistogram write_latency;
  Timeline timeline;

  uint64_t start_us = 0;
  uint64_t end_us = 0;
  double elapsed_seconds() const {
    return end_us > start_us ? double(end_us - start_us) / 1e6 : 0.0;
  }

  void Merge(const WorkloadReport& o);
};

class WorkloadRunner {
 public:
  WorkloadRunner(client::BlobClient* client, Clock* clock,
                 RunnerOptions options = {});

  /// Executes `schedule` (generated from `spec`) and blocks until every op
  /// completed. Returns the first setup failure (blob creation); per-op
  /// read/write failures are counted in the report instead of aborting.
  /// Call at most once per runner.
  Status Run(const WorkloadSpec& spec, const Schedule& schedule);

  /// Re-reads every retained published version of every tenant and
  /// byte-compares against the reference model. NotFound counts as clean
  /// only when `allow_not_found` (post-chaos campaigns). Returns the first
  /// mismatch as an error.
  Status VerifyRetained(bool allow_not_found, uint64_t* versions_checked);

  const WorkloadReport& report() const { return report_; }

  /// Ops completed so far — safe to poll from another task/thread while
  /// Run is in progress (chaos controllers trigger off this).
  uint64_t completed_ops() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  struct Tenant {
    BlobId id = 0;
    bool write_busy = false;
    bool departed = false;
    Version latest = 0;
    std::string latest_content;
    /// Retained published versions: full reference contents.
    std::map<Version, std::shared_ptr<const std::string>> published;
  };

  Status HandleCreate(const WorkloadSpec& spec, const Op& op);
  void IssueRead(Tenant* t, const Op& op, uint64_t psize);
  void IssueMutation(Tenant* t, const Op& op, uint64_t psize);
  void OnMutationSettled(Tenant* t, std::shared_ptr<const std::string> payload,
                         uint64_t offset, bool append, uint64_t issued_us,
                         Version version, const Status& status);
  /// Completion bookkeeping: frees a window slot and wakes the issue loop.
  void FinishOne();
  /// Parks the issue loop until the next completion fires. Must be called
  /// with a tick already armed under `mu_`.
  Future<Unit> ArmTickLocked();

  client::BlobClient* client_;
  Clock* clock_;
  RunnerOptions opts_;

  std::mutex mu_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  size_t inflight_ = 0;
  std::optional<Promise<Unit>> tick_;
  WorkloadReport report_;
  std::atomic<uint64_t> completed_{0};
};

}  // namespace blobseer::workload

#endif  // BLOBSEER_WORKLOAD_RUNNER_H_
