// Deterministic schedule expansion: a WorkloadSpec + seed becomes a flat
// vector of ops (creates, zipfian-addressed reads/appends/writes, flash
// crowd bursts, tenant arrivals/departures). The expansion is pure — no
// clocks, no global state — so the same spec always yields a byte-identical
// schedule, which is what makes campaign artifacts comparable across PRs.
#ifndef BLOBSEER_WORKLOAD_GENERATOR_H_
#define BLOBSEER_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/spec.h"

namespace blobseer::workload {

enum class OpKind : uint8_t {
  kCreate,  // create blob `tenant` + initial append of `pages` pages
  kAppend,  // append `pages` pages of payload derived from `salt`
  kWrite,   // overwrite `pages` pages at a position derived from offset_ppm
  kRead,    // read `pages` pages of version latest-`version_lag`
  kDepart,  // tenant stops receiving traffic (blob stays readable)
};

/// One scheduled operation. Positions are stored as parts-per-million of
/// the target blob/version size and resolved against the reference model at
/// execution time, so the schedule stays pure data.
struct Op {
  OpKind kind = OpKind::kRead;
  uint32_t tenant = 0;
  uint64_t pages = 0;
  uint32_t offset_ppm = 0;
  uint32_t version_lag = 0;
  uint64_t salt = 0;      // payload seed for mutations
  bool flash = false;     // part of a flash-crowd burst

  std::string DebugString() const;
};

struct Schedule {
  std::vector<Op> ops;

  /// Canonical one-op-per-line rendering; byte-identical across runs of the
  /// same spec. The determinism tests diff this directly.
  std::string Canonical() const;

  /// FNV-1a over Canonical() — a stable schedule identity for JSON echo.
  uint64_t Fingerprint() const;
};

/// Expands `spec` into its schedule. The spec must Validate().
Schedule GenerateSchedule(const WorkloadSpec& spec);

/// Deterministic payload bytes for a mutation op (salt + length identify
/// the content). The runner and any external verifier must agree on this.
std::string MakePayload(uint64_t salt, size_t len);

}  // namespace blobseer::workload

#endif  // BLOBSEER_WORKLOAD_GENERATOR_H_
