// Declarative workload specification: a small key=value vocabulary (scenario
// presets, zipfian skew, reader/writer mix, flash crowds, tenant churn) that
// fully determines a traffic schedule given a seed. Specs load from `.wl`
// files or CLI-style key=value overrides; the same spec + seed always
// expands to a byte-identical op schedule (see generator.h).
#ifndef BLOBSEER_WORKLOAD_SPEC_H_
#define BLOBSEER_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace blobseer::workload {

/// One workload campaign, fully described. Every field participates in
/// schedule generation, so two equal specs generate identical schedules.
struct WorkloadSpec {
  /// Preset this spec started from: mixed | append_stream | scan |
  /// flash_crowd | tenant_churn. Informational after preset expansion.
  std::string scenario = "mixed";

  uint64_t seed = 42;

  /// Blobs created up front. Popularity is zipfian by creation order:
  /// tenant 0 is the hottest.
  uint64_t tenants = 8;
  /// Page size for every blob (bytes, power of two).
  uint64_t psize = 4096;
  /// Pages appended to each blob at creation, so reads always have data.
  uint64_t initial_pages = 4;

  /// Scheduled ops after setup (reads + appends + writes).
  uint64_t ops = 512;
  /// Fraction of scheduled ops that are reads; the rest mutate.
  double read_fraction = 0.7;
  /// Zipf exponent for blob popularity (0 = uniform).
  double zipf_theta = 0.9;
  /// Fraction of mutations that append; the rest are in-place writes at a
  /// page-aligned offset inside the blob.
  double append_fraction = 0.8;

  uint64_t read_pages_min = 1;
  uint64_t read_pages_max = 4;
  uint64_t write_pages_min = 1;
  uint64_t write_pages_max = 4;

  /// Reads target a published version up to this many versions behind the
  /// latest successful one (uniform in [0, version_lag_max]).
  uint64_t version_lag_max = 3;

  /// Flash crowd: at this fraction of the schedule (<0 disables), inject
  /// `flash_crowd_ops` back-to-back reads of the hottest blob.
  double flash_crowd_at = -1.0;
  uint64_t flash_crowd_ops = 0;

  /// Tenant churn: this many blobs arrive (are created mid-run, entering
  /// the popularity ranking as coldest) / depart (stop receiving traffic),
  /// spread evenly across the schedule.
  uint64_t arrivals = 0;
  uint64_t departures = 0;

  /// Expands a named preset into a spec. Unknown name => InvalidArgument.
  static Result<WorkloadSpec> Preset(const std::string& name);

  /// Applies one `key=value` override. Unknown key or unparsable value =>
  /// InvalidArgument. `scenario` re-expands the preset in place, so apply
  /// it before other overrides.
  Status Set(const std::string& key, const std::string& value);

  /// Loads a `.wl` file: one `key = value` per line, `#` comments. A
  /// `scenario` line (wherever it appears) selects the preset first; the
  /// remaining lines override it in file order.
  static Result<WorkloadSpec> ParseFile(const std::string& path);

  /// Same grammar as ParseFile, from an in-memory string.
  static Result<WorkloadSpec> Parse(const std::string& text);

  /// Sanity checks (psize power of two, fractions in range, min<=max...).
  Status Validate() const;

  /// Every field as (key, rendered value), in stable order — for echoing
  /// the spec into bench JSON/config dumps.
  std::vector<std::pair<std::string, std::string>> Items() const;

  std::string DebugString() const;

  /// Known preset names, for --help text.
  static const std::vector<std::string>& PresetNames();
};

}  // namespace blobseer::workload

#endif  // BLOBSEER_WORKLOAD_SPEC_H_
