#include "workload/spec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace blobseer::workload {
namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

Status ParseU64(const std::string& key, const std::string& value,
                uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  uint64_t v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("workload spec: %s wants an integer, got '%s'", key.c_str(),
                  value.c_str()));
  }
  *out = v;
  return Status::OK();
}

Status ParseF64(const std::string& key, const std::string& value,
                double* out) {
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(value.c_str(), &end);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("workload spec: %s wants a number, got '%s'", key.c_str(),
                  value.c_str()));
  }
  *out = v;
  return Status::OK();
}

}  // namespace

const std::vector<std::string>& WorkloadSpec::PresetNames() {
  static const std::vector<std::string> kNames = {
      "mixed", "append_stream", "scan", "flash_crowd", "tenant_churn"};
  return kNames;
}

Result<WorkloadSpec> WorkloadSpec::Preset(const std::string& name) {
  WorkloadSpec s;  // defaults are the "mixed" preset
  s.scenario = name;
  if (name == "mixed") {
    return s;
  }
  if (name == "append_stream") {
    // Many small log streams: 1-page appends dominate, reads tail the logs.
    s.tenants = 16;
    s.initial_pages = 1;
    s.read_fraction = 0.2;
    s.append_fraction = 1.0;
    s.write_pages_min = 1;
    s.write_pages_max = 1;
    s.read_pages_min = 1;
    s.read_pages_max = 2;
    s.zipf_theta = 0.6;
    return s;
  }
  if (name == "scan") {
    // Few huge objects, large sequential-ish reads, occasional rewrites.
    s.tenants = 2;
    s.initial_pages = 64;
    s.read_fraction = 0.95;
    s.append_fraction = 0.3;
    s.read_pages_min = 16;
    s.read_pages_max = 32;
    s.write_pages_min = 4;
    s.write_pages_max = 8;
    s.zipf_theta = 0.3;
    return s;
  }
  if (name == "flash_crowd") {
    s.flash_crowd_at = 0.5;
    s.flash_crowd_ops = 64;
    return s;
  }
  if (name == "tenant_churn") {
    s.tenants = 6;
    s.arrivals = 4;
    s.departures = 4;
    return s;
  }
  return Status::InvalidArgument(
      StrFormat("workload spec: unknown scenario '%s'", name.c_str()));
}

Status WorkloadSpec::Set(const std::string& key, const std::string& value) {
  if (key == "scenario") {
    auto preset = Preset(value);
    if (!preset.ok()) return preset.status();
    *this = *preset;
    return Status::OK();
  }
  if (key == "seed") return ParseU64(key, value, &seed);
  if (key == "tenants") return ParseU64(key, value, &tenants);
  if (key == "psize") return ParseU64(key, value, &psize);
  if (key == "initial_pages") return ParseU64(key, value, &initial_pages);
  if (key == "ops") return ParseU64(key, value, &ops);
  if (key == "read_fraction") return ParseF64(key, value, &read_fraction);
  if (key == "zipf_theta") return ParseF64(key, value, &zipf_theta);
  if (key == "append_fraction") return ParseF64(key, value, &append_fraction);
  if (key == "read_pages_min") return ParseU64(key, value, &read_pages_min);
  if (key == "read_pages_max") return ParseU64(key, value, &read_pages_max);
  if (key == "write_pages_min") return ParseU64(key, value, &write_pages_min);
  if (key == "write_pages_max") return ParseU64(key, value, &write_pages_max);
  if (key == "version_lag_max") return ParseU64(key, value, &version_lag_max);
  if (key == "flash_crowd_at") return ParseF64(key, value, &flash_crowd_at);
  if (key == "flash_crowd_ops") return ParseU64(key, value, &flash_crowd_ops);
  if (key == "arrivals") return ParseU64(key, value, &arrivals);
  if (key == "departures") return ParseU64(key, value, &departures);
  return Status::InvalidArgument(
      StrFormat("workload spec: unknown key '%s'", key.c_str()));
}

Result<WorkloadSpec> WorkloadSpec::Parse(const std::string& text) {
  // First pass: the scenario preset is the base, wherever the line sits.
  std::vector<std::pair<std::string, std::string>> entries;
  std::string scenario = "mixed";
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    lineno++;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(StrFormat(
          "workload spec line %zu: expected key = value, got '%s'", lineno,
          line.c_str()));
    }
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (key == "scenario") {
      scenario = value;
    } else {
      entries.emplace_back(std::move(key), std::move(value));
    }
  }
  auto spec = Preset(scenario);
  if (!spec.ok()) return spec.status();
  for (const auto& [key, value] : entries) {
    Status s = spec->Set(key, value);
    if (!s.ok()) return s;
  }
  Status s = spec->Validate();
  if (!s.ok()) return s;
  return spec;
}

Result<WorkloadSpec> WorkloadSpec::ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError(
        StrFormat("workload spec: cannot open '%s'", path.c_str()));
  }
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str());
}

Status WorkloadSpec::Validate() const {
  if (tenants == 0) {
    return Status::InvalidArgument("workload spec: tenants must be >= 1");
  }
  if (psize == 0 || (psize & (psize - 1)) != 0) {
    return Status::InvalidArgument(
        "workload spec: psize must be a power of two");
  }
  if (initial_pages == 0) {
    return Status::InvalidArgument(
        "workload spec: initial_pages must be >= 1");
  }
  if (read_fraction < 0.0 || read_fraction > 1.0 || append_fraction < 0.0 ||
      append_fraction > 1.0) {
    return Status::InvalidArgument(
        "workload spec: fractions must be in [0, 1]");
  }
  if (zipf_theta < 0.0) {
    return Status::InvalidArgument("workload spec: zipf_theta must be >= 0");
  }
  if (read_pages_min == 0 || read_pages_min > read_pages_max ||
      write_pages_min == 0 || write_pages_min > write_pages_max) {
    return Status::InvalidArgument(
        "workload spec: page ranges need 1 <= min <= max");
  }
  if (flash_crowd_at > 1.0) {
    return Status::InvalidArgument(
        "workload spec: flash_crowd_at must be <= 1");
  }
  if (departures >= tenants + arrivals) {
    return Status::InvalidArgument(
        "workload spec: departures must leave at least one tenant");
  }
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> WorkloadSpec::Items() const {
  std::vector<std::pair<std::string, std::string>> items;
  auto u = [&](const char* k, uint64_t v) {
    items.emplace_back(k, StrFormat("%llu", (unsigned long long)v));
  };
  auto f = [&](const char* k, double v) {
    items.emplace_back(k, StrFormat("%g", v));
  };
  items.emplace_back("scenario", scenario);
  u("seed", seed);
  u("tenants", tenants);
  u("psize", psize);
  u("initial_pages", initial_pages);
  u("ops", ops);
  f("read_fraction", read_fraction);
  f("zipf_theta", zipf_theta);
  f("append_fraction", append_fraction);
  u("read_pages_min", read_pages_min);
  u("read_pages_max", read_pages_max);
  u("write_pages_min", write_pages_min);
  u("write_pages_max", write_pages_max);
  u("version_lag_max", version_lag_max);
  f("flash_crowd_at", flash_crowd_at);
  u("flash_crowd_ops", flash_crowd_ops);
  u("arrivals", arrivals);
  u("departures", departures);
  return items;
}

std::string WorkloadSpec::DebugString() const {
  std::string out;
  for (const auto& [key, value] : Items()) {
    out += key;
    out += " = ";
    out += value;
    out += "\n";
  }
  return out;
}

}  // namespace blobseer::workload
