#include "common/thread_pool.h"

namespace blobseer {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_--;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace blobseer
