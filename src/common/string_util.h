// Small string helpers (printf-style formatting, byte humanization).
#ifndef BLOBSEER_COMMON_STRING_UTIL_H_
#define BLOBSEER_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace blobseer {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "64.0 KiB", "1.5 GiB", ...
std::string HumanBytes(uint64_t bytes);

/// "117.5 MB/s" style rate formatting (decimal megabytes, like the paper).
std::string HumanRateMBps(double bytes_per_sec);

/// Joins parts with a separator.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_STRING_UTIL_H_
