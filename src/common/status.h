// Arrow/RocksDB-style Status: no exceptions cross public API boundaries.
#ifndef BLOBSEER_COMMON_STATUS_H_
#define BLOBSEER_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace blobseer {

enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnavailable = 6,
  kTimedOut = 7,
  kCorruption = 8,
  kIOError = 9,
  kNotSupported = 10,
  kAborted = 11,
  kCancelled = 12,
  kInternal = 13,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Operation outcome carrying a code and an optional message. The OK status
/// is represented with a null state pointer so that the common success path
/// costs one pointer move.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& o) { *this = o; }
  Status& operator=(const Status& o) {
    state_ = o.state_ ? std::make_unique<State>(*o.state_) : nullptr;
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status AlreadyExists(std::string m = "") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m = "") {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unavailable(std::string m = "") {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status TimedOut(std::string m = "") {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status Corruption(std::string m = "") {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status IOError(std::string m = "") {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status NotSupported(std::string m = "") {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status Aborted(std::string m = "") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Cancelled(std::string m = "") {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(StatusCode::kInternal, std::move(m));
  }
  /// Rebuilds a status from its wire representation (see rpc/wire.h).
  static Status FromCode(StatusCode code, std::string m) {
    return Status(code, std::move(m));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  std::string ToString() const;

  /// Appends context to the message, keeping the code. Useful when
  /// propagating errors up through layers.
  Status WithContext(const std::string& ctx) const {
    if (ok()) return *this;
    return Status(code(), ctx + ": " + message());
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

/// Propagates a non-OK status to the caller.
#define BS_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::blobseer::Status _st = (expr);           \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Propagates a non-OK status with an added context prefix.
#define BS_RETURN_NOT_OK_CTX(expr, ctx)        \
  do {                                         \
    ::blobseer::Status _st = (expr);           \
    if (!_st.ok()) return _st.WithContext(ctx); \
  } while (0)

#define BS_CONCAT_IMPL(a, b) a##b
#define BS_CONCAT(a, b) BS_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the status.
#define BS_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto BS_CONCAT(_res_, __LINE__) = (expr);                   \
  if (!BS_CONCAT(_res_, __LINE__).ok())                       \
    return BS_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(BS_CONCAT(_res_, __LINE__)).ValueUnsafe()

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_STATUS_H_
