// Fixed-size worker pool for the client library's parallel page and
// metadata I/O.
#ifndef BLOBSEER_COMMON_THREAD_POOL_H_
#define BLOBSEER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace blobseer {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs as soon as a worker is free.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_THREAD_POOL_H_
