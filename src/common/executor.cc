#include "common/executor.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "common/thread_pool.h"

namespace blobseer {

Status SerialExecutor::ParallelFor(size_t n, size_t /*max_parallel*/,
                                   const std::function<Status(size_t)>& fn) {
  Status first;
  for (size_t i = 0; i < n; i++) {
    Status s = fn(i);
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

ThreadPoolExecutor::ThreadPoolExecutor(size_t threads)
    : pool_(std::make_unique<ThreadPool>(threads)) {}

ThreadPoolExecutor::~ThreadPoolExecutor() = default;

void ThreadPoolExecutor::Schedule(std::function<void()> fn) {
  pool_->Submit(std::move(fn));
}

Status ThreadPoolExecutor::ParallelFor(
    size_t n, size_t max_parallel, const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  if (max_parallel == 0) max_parallel = pool_->num_threads();

  // Shared-ownership state: straggler task copies (submitted but finding no
  // index left) may run after this frame returns, so the synchronization
  // state must outlive the call.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    size_t next = 0;
    size_t done = 0;
    size_t n;
    const std::function<Status(size_t)>* fn;
    Status first;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->fn = &fn;

  // Window-of-max_parallel scheduling: `initial` workers each loop pulling
  // the next unclaimed index, bounding in-flight work without
  // materializing n closures.
  size_t initial = n < max_parallel ? n : max_parallel;
  auto worker = [state]() {
    for (;;) {
      size_t i;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->next >= state->n) return;
        i = state->next++;
      }
      // fn is guaranteed alive: indices are only handed out before done==n,
      // and the caller does not return until done==n.
      Status s = (*state->fn)(i);
      std::lock_guard<std::mutex> lock(state->mu);
      if (!s.ok() && state->first.ok()) state->first = s;
      state->done++;
      if (state->done == state->n) {
        state->cv.notify_all();
        return;
      }
    }
  };
  for (size_t i = 0; i < initial; i++) pool_->Submit(worker);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->n; });
  return state->first;
}

}  // namespace blobseer
