// Promise/Future: the asynchronous counterpart of Result<T>.
//
// A Future<T> resolves exactly once to a Result<T> (value or Status). It is
// single-consumer: attach one continuation with Then/OnReady, or block for
// the result with Wait. Completion never busy-waits — a continuation runs
// on the thread that fulfills the promise, or is handed to an Executor when
// one is supplied ("executor-aware dispatch"), and Wait parks the caller on
// a WaitEvent built by the executor (real condvar on OS threads, virtual
// condition under simnet).
//
// Threading model (see docs/client_api.md):
//  * Then(fn) / OnReady(cb) with no executor: fn runs inline — on the
//    attaching thread if the future is already resolved, otherwise on
//    whichever thread calls Promise::Set (for RPC-backed futures that is
//    the transport completion thread / sim task). Keep such continuations
//    short and non-blocking.
//  * Then(executor, fn): fn is Schedule'd on the executor instead.
//  * A Promise dropped without Set resolves its future to Internal
//    ("promise abandoned"), so chains cannot hang on a leaked stage.
#ifndef BLOBSEER_COMMON_FUTURE_H_
#define BLOBSEER_COMMON_FUTURE_H_

#include <cassert>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "common/status.h"

namespace blobseer {

/// Value carried by futures of operations that only report a Status.
struct Unit {};

template <typename T>
class Future;
template <typename T>
class Promise;

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::optional<Result<T>> result;
  bool fulfilled = false;
  bool callback_attached = false;
  Executor* callback_executor = nullptr;
  std::function<void(Result<T>)> callback;

  void Fulfill(Result<T> r) {
    std::function<void(Result<T>)> cb;
    Executor* ex = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu);
      assert(!fulfilled && "promise fulfilled twice");
      if (fulfilled) return;
      fulfilled = true;
      if (callback) {
        cb = std::move(callback);
        callback = nullptr;
        ex = callback_executor;
      } else {
        result.emplace(std::move(r));
        return;
      }
    }
    Dispatch(ex, std::move(cb), std::move(r));
  }

  void Attach(Executor* ex, std::function<void(Result<T>)> cb) {
    {
      std::lock_guard<std::mutex> lock(mu);
      assert(!callback_attached && "future consumed twice");
      callback_attached = true;
      if (!result.has_value()) {
        callback_executor = ex;
        callback = std::move(cb);
        return;
      }
    }
    // Already resolved: result is immutable now, no lock needed to take it.
    Dispatch(ex, std::move(cb), std::move(*result));
  }

  static void Dispatch(Executor* ex, std::function<void(Result<T>)> cb,
                       Result<T> r) {
    if (ex == nullptr) {
      cb(std::move(r));
      return;
    }
    // Wrap in shared_ptr: std::function requires copyable targets.
    auto boxed = std::make_shared<Result<T>>(std::move(r));
    ex->Schedule([cb = std::move(cb), boxed] { cb(std::move(*boxed)); });
  }
};

/// Maps a continuation's return type onto the resulting future:
/// Result<U> -> Future<U>, Future<U> -> Future<U> (flattened),
/// Status -> Future<Unit>, plain U -> Future<U>.
template <typename R>
struct ContinuationTraits {
  using Value = R;
  static void Feed(Promise<Value>& p, R&& r);
};
template <typename U>
struct ContinuationTraits<Result<U>> {
  using Value = U;
  static void Feed(Promise<Value>& p, Result<U>&& r);
};
template <>
struct ContinuationTraits<Status> {
  using Value = Unit;
  static void Feed(Promise<Unit>& p, Status&& s);
};
template <typename U>
struct ContinuationTraits<Future<U>> {
  using Value = U;
  static void Feed(Promise<Value>& p, Future<U>&& f);
};

}  // namespace internal

/// Write side. Copyable (shared state); Set must be called at most once
/// across all copies. If every copy is destroyed without Set, the future
/// resolves to Internal("promise abandoned").
template <typename T>
class Promise {
 public:
  Promise()
      : state_(std::make_shared<internal::FutureState<T>>()),
        guard_(MakeGuard(state_)) {}

  /// Resolves the future. Continuations attached without an executor run
  /// inline on this thread before Set returns.
  void Set(Result<T> r) { state_->Fulfill(std::move(r)); }
  void Set(T value) { Set(Result<T>(std::move(value))); }
  void Set(Status s) { Set(Result<T>(std::move(s))); }

  Future<T> GetFuture() { return Future<T>(state_); }

 private:
  static std::shared_ptr<void> MakeGuard(
      std::shared_ptr<internal::FutureState<T>> state) {
    // Deleter fires when the last Promise copy dies: an abandoned promise
    // (error path dropped a stage) resolves instead of hanging the chain.
    return std::shared_ptr<void>(nullptr, [state = std::move(state)](void*) {
      bool fulfilled;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        fulfilled = state->fulfilled;
      }
      if (!fulfilled)
        state->Fulfill(Result<T>(Status::Internal("promise abandoned")));
    });
  }

  std::shared_ptr<internal::FutureState<T>> state_;
  std::shared_ptr<void> guard_;
};

/// Read side. Single-consumer: exactly one of OnReady / Then / Wait may be
/// called, exactly once.
template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  /// True once the result is available (racy by nature; useful in tests).
  bool Ready() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->result.has_value();
  }

  /// Core primitive: invoke `cb` with the result. With `ex == nullptr` the
  /// callback runs inline (see threading model above); otherwise it is
  /// Schedule'd on `ex`.
  void OnReady(Executor* ex, std::function<void(Result<T>)> cb) {
    state_->Attach(ex, std::move(cb));
  }

  /// Chains a continuation. `fn` receives Result<T> and may return
  /// Result<U>, Future<U> (flattened), Status (maps to Future<Unit>) or a
  /// plain value U. Errors are NOT short-circuited: `fn` always runs and
  /// decides how to propagate (return `r.status()` to pass errors through).
  template <typename F>
  auto Then(Executor* ex, F fn)
      -> Future<typename internal::ContinuationTraits<
          std::invoke_result_t<F, Result<T>>>::Value> {
    using Traits =
        internal::ContinuationTraits<std::invoke_result_t<F, Result<T>>>;
    Promise<typename Traits::Value> p;
    auto out = p.GetFuture();
    OnReady(ex, [fn = std::move(fn), p](Result<T> r) mutable {
      auto next = fn(std::move(r));
      Traits::Feed(p, std::move(next));
    });
    return out;
  }
  template <typename F>
  auto Then(F fn) {
    return Then(nullptr, std::move(fn));
  }

  /// Blocks until resolution and returns the result. `ex` supplies the
  /// parking primitive (pass the environment's executor when calling from
  /// a simnet task); nullptr uses a plain condvar, which is correct on any
  /// real thread.
  Result<T> Wait(Executor* ex = nullptr) {
    {
      // Fast path: already resolved.
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->result.has_value() && !state_->callback_attached) {
        state_->callback_attached = true;
        return std::move(*state_->result);
      }
    }
    std::shared_ptr<WaitEvent> event =
        ex ? ex->MakeWaitEvent() : std::make_unique<CondVarWaitEvent>();
    auto slot = std::make_shared<std::optional<Result<T>>>();
    // Inline attach: runs on the fulfilling thread; only stores + signals.
    // The callback shares ownership of the event so a signal racing this
    // frame's return can never touch a destroyed event.
    OnReady(nullptr, [slot, event](Result<T> r) {
      slot->emplace(std::move(r));
      event->Signal();
    });
    event->Await();
    return std::move(**slot);
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
Future<T> MakeReadyFuture(Result<T> r) {
  Promise<T> p;
  auto f = p.GetFuture();
  p.Set(std::move(r));
  return f;
}
template <typename T>
Future<T> MakeReadyFuture(T value) {
  return MakeReadyFuture<T>(Result<T>(std::move(value)));
}
inline Future<Unit> MakeReadyFuture(Status s) {
  Promise<Unit> p;
  auto f = p.GetFuture();
  if (s.ok())
    p.Set(Unit{});
  else
    p.Set(std::move(s));
  return f;
}

namespace internal {

template <typename R>
void ContinuationTraits<R>::Feed(Promise<R>& p, R&& r) {
  p.Set(Result<R>(std::move(r)));
}
template <typename U>
void ContinuationTraits<Result<U>>::Feed(Promise<U>& p, Result<U>&& r) {
  p.Set(std::move(r));
}
inline void ContinuationTraits<Status>::Feed(Promise<Unit>& p, Status&& s) {
  if (s.ok())
    p.Set(Unit{});
  else
    p.Set(std::move(s));
}
template <typename U>
void ContinuationTraits<Future<U>>::Feed(Promise<U>& p, Future<U>&& f) {
  f.OnReady(nullptr, [p](Result<U> r) mutable { p.Set(std::move(r)); });
}

}  // namespace internal

/// Resolves once every input future has resolved, with all results in input
/// order. Never fails itself — per-element errors are in the elements.
/// The combinator for fan-out/fan-in stages (StorePages, FetchPieces, ...).
template <typename T>
Future<std::vector<Result<T>>> WhenAll(std::vector<Future<T>> futures) {
  Promise<std::vector<Result<T>>> p;
  auto out = p.GetFuture();
  if (futures.empty()) {
    p.Set(std::vector<Result<T>>{});
    return out;
  }
  struct JoinState {
    std::mutex mu;
    std::vector<std::optional<Result<T>>> slots;
    size_t remaining;
    Promise<std::vector<Result<T>>> promise;
  };
  auto join = std::make_shared<JoinState>();
  join->slots.resize(futures.size());
  join->remaining = futures.size();
  join->promise = p;
  for (size_t i = 0; i < futures.size(); i++) {
    futures[i].OnReady(nullptr, [join, i](Result<T> r) {
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(join->mu);
        join->slots[i].emplace(std::move(r));
        last = --join->remaining == 0;
      }
      if (!last) return;
      std::vector<Result<T>> results;
      results.reserve(join->slots.size());
      for (auto& s : join->slots) results.push_back(std::move(*s));
      join->promise.Set(std::move(results));
    });
  }
  return out;
}

/// First non-OK status across a WhenAll result set (OK when all succeeded).
template <typename T>
Status FirstError(const std::vector<Result<T>>& results) {
  for (const auto& r : results) {
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_FUTURE_H_
