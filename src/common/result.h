// Result<T>: value-or-Status, mirroring arrow::Result.
#ifndef BLOBSEER_COMMON_RESULT_H_
#define BLOBSEER_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace blobseer {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Construction from a value yields ok(); construction from
/// a Status requires that status to be non-OK.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) status_ = Status::Internal("Result from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// Returns the value; must only be called when ok().
  T& ValueUnsafe() & {
    assert(ok());
    return *value_;
  }
  const T& ValueUnsafe() const& {
    assert(ok());
    return *value_;
  }
  T&& ValueUnsafe() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return ValueUnsafe(); }
  const T& operator*() const& { return ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }

  /// Moves the value out or returns `fallback` when in error state.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_RESULT_H_
