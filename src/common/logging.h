// Minimal leveled logging. Controlled by BLOBSEER_LOG_LEVEL env var
// (trace|debug|info|warn|error|off) or SetLogLevel().
#ifndef BLOBSEER_COMMON_LOGGING_H_
#define BLOBSEER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace blobseer {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

void EmitLog(LogLevel level, const char* file, int line,
             const std::string& msg);

/// Stream-collecting helper behind the BS_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace blobseer

#define BS_LOG(level)                                                       \
  if (::blobseer::LogLevel::k##level < ::blobseer::GetLogLevel()) {        \
  } else                                                                    \
    ::blobseer::internal::LogMessage(::blobseer::LogLevel::k##level,       \
                                     __FILE__, __LINE__)                   \
        .stream()

/// Invariant check that survives NDEBUG; aborts with a message.
#define BS_CHECK(cond)                                                     \
  if (cond) {                                                              \
  } else                                                                   \
    ::blobseer::internal::CheckFailure(__FILE__, __LINE__, #cond).stream()

namespace blobseer::internal {
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* cond);
  [[noreturn]] ~CheckFailure();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};
}  // namespace blobseer::internal

#endif  // BLOBSEER_COMMON_LOGGING_H_
