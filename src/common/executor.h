// Parallel-execution strategy abstraction. The client library expresses its
// page/metadata fan-out as ParallelFor over closures and its future
// continuations as Schedule'd tasks; the binding to real threads
// (ThreadPoolExecutor), the calling thread (SerialExecutor) or simulated
// threads (simnet::SimExecutor) is injected.
#ifndef BLOBSEER_COMMON_EXECUTOR_H_
#define BLOBSEER_COMMON_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace blobseer {

class ThreadPool;

/// One-shot binary event used to park a thread until an async completion
/// fires (the sync-over-async bridge in Future::Wait). Signal-before-Await
/// is allowed; Await returns immediately then.
class WaitEvent {
 public:
  virtual ~WaitEvent() = default;
  virtual void Signal() = 0;
  virtual void Await() = 0;
};

/// WaitEvent over a real mutex/condvar — correct on OS threads, forbidden on
/// simnet tasks (it would block the whole virtual-time scheduler; see
/// simnet/sim.h rules). SimExecutor overrides MakeWaitEvent accordingly.
class CondVarWaitEvent : public WaitEvent {
 public:
  void Signal() override {
    // Notify with the lock held: a waiter returning from Await (and
    // possibly destroying this event) can only proceed after the signaler
    // has released the mutex. Callers that signal from another thread
    // must still keep the event alive through shared ownership (see
    // Future::Wait).
    std::lock_guard<std::mutex> lock(mu_);
    signaled_ = true;
    cv_.notify_all();
  }
  void Await() override {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return signaled_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool signaled_ = false;
};

/// Runs batches of independent tasks (ParallelFor) and single detached
/// tasks (Schedule, used to dispatch future continuations off the
/// completing thread).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Executes tasks [0, n) by invoking `fn(i)`; at most `max_parallel`
  /// run concurrently (0 means implementation default). Collects the first
  /// non-OK status (all tasks always run to completion).
  virtual Status ParallelFor(size_t n, size_t max_parallel,
                             const std::function<Status(size_t)>& fn) = 0;

  /// Runs `fn` exactly once, possibly on another thread. Ordering between
  /// scheduled tasks is unspecified. The default runs inline.
  virtual void Schedule(std::function<void()> fn) { fn(); }

  /// Event suitable for blocking the *calling* environment of this executor
  /// (real condvar by default; virtual-time condition under simnet).
  virtual std::unique_ptr<WaitEvent> MakeWaitEvent() {
    return std::make_unique<CondVarWaitEvent>();
  }
};

/// Runs everything inline on the calling thread. Deterministic; used in
/// unit tests and as a safe fallback.
class SerialExecutor : public Executor {
 public:
  Status ParallelFor(size_t n, size_t max_parallel,
                     const std::function<Status(size_t)>& fn) override;
};

/// Fans tasks out over a shared ThreadPool.
class ThreadPoolExecutor : public Executor {
 public:
  /// Creates an executor owning a pool of `threads` workers.
  explicit ThreadPoolExecutor(size_t threads);
  ~ThreadPoolExecutor() override;

  Status ParallelFor(size_t n, size_t max_parallel,
                     const std::function<Status(size_t)>& fn) override;
  void Schedule(std::function<void()> fn) override;

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_EXECUTOR_H_
