// Parallel-execution strategy abstraction. The client library expresses its
// page/metadata fan-out as ParallelFor over closures; the binding to real
// threads (ThreadPoolExecutor), the calling thread (SerialExecutor) or
// simulated threads (simnet::SimExecutor) is injected.
#ifndef BLOBSEER_COMMON_EXECUTOR_H_
#define BLOBSEER_COMMON_EXECUTOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"

namespace blobseer {

class ThreadPool;

/// Runs a batch of independent tasks, each returning a Status, and reports
/// the first failure (all tasks always run to completion).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Executes tasks [0, n) by invoking `fn(i)`; at most `max_parallel`
  /// run concurrently (0 means implementation default). Collects the first
  /// non-OK status.
  virtual Status ParallelFor(size_t n, size_t max_parallel,
                             const std::function<Status(size_t)>& fn) = 0;
};

/// Runs everything inline on the calling thread. Deterministic; used in
/// unit tests and as a safe fallback.
class SerialExecutor : public Executor {
 public:
  Status ParallelFor(size_t n, size_t max_parallel,
                     const std::function<Status(size_t)>& fn) override;
};

/// Fans tasks out over a shared ThreadPool.
class ThreadPoolExecutor : public Executor {
 public:
  /// Creates an executor owning a pool of `threads` workers.
  explicit ThreadPoolExecutor(size_t threads);
  ~ThreadPoolExecutor() override;

  Status ParallelFor(size_t n, size_t max_parallel,
                     const std::function<Status(size_t)>& fn) override;

 private:
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace blobseer

#endif  // BLOBSEER_COMMON_EXECUTOR_H_
