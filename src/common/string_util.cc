#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace blobseer {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    u++;
  }
  return StrFormat(u == 0 ? "%.0f %s" : "%.1f %s", v, kUnits[u]);
}

std::string HumanRateMBps(double bytes_per_sec) {
  return StrFormat("%.1f MB/s", bytes_per_sec / 1e6);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); i++) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace blobseer
