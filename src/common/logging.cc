#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace blobseer {

namespace {

LogLevel ParseLevel(const char* s) {
  if (!s) return LogLevel::kWarn;
  if (!strcmp(s, "trace")) return LogLevel::kTrace;
  if (!strcmp(s, "debug")) return LogLevel::kDebug;
  if (!strcmp(s, "info")) return LogLevel::kInfo;
  if (!strcmp(s, "warn")) return LogLevel::kWarn;
  if (!strcmp(s, "error")) return LogLevel::kError;
  if (!strcmp(s, "off")) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& LevelVar() {
  static std::atomic<int> level{
      static_cast<int>(ParseLevel(std::getenv("BLOBSEER_LOG_LEVEL")))};
  return level;
}

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?";
  }
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelVar().load()); }
void SetLogLevel(LogLevel level) { LevelVar().store(static_cast<int>(level)); }

namespace internal {

void EmitLog(LogLevel level, const char* file, int line,
             const std::string& msg) {
  static std::mutex mu;
  const char* base = strrchr(file, '/');
  base = base ? base + 1 : file;
  std::lock_guard<std::mutex> lock(mu);
  fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
          msg.c_str());
}

CheckFailure::CheckFailure(const char* file, int line, const char* cond) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << cond << " ";
}

CheckFailure::~CheckFailure() {
  fprintf(stderr, "%s\n", stream_.str().c_str());
  fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace blobseer
