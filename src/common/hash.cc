#include "common/hash.h"

namespace blobseer {

uint64_t Fnv1a64(Slice data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < data.size(); i++) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace blobseer
